package drift

import (
	"math"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/precoding"
	"copa/internal/rng"
)

func TestStepRho(t *testing.T) {
	if r := StepRho(0, 0.01); r != 1 {
		t.Fatalf("speed 0 rho = %g, want exactly 1", r)
	}
	if r := StepRho(1.5, 0); r != 1 {
		t.Fatalf("dt 0 rho = %g, want exactly 1", r)
	}
	ped := StepRho(Pedestrian.SpeedMps, 0.005)
	if ped <= 0 || ped >= 1 {
		t.Fatalf("pedestrian 5ms rho = %g, want in (0,1)", ped)
	}
	veh := StepRho(Vehicular.SpeedMps, 0.005)
	if veh < 0 || veh >= ped {
		t.Fatalf("vehicular 5ms rho = %g, want in [0, %g)", veh, ped)
	}
	// Faster movement decorrelates more for small arguments.
	if StepRho(1.5, 0.001) <= StepRho(3.0, 0.001) {
		t.Fatal("rho should decrease with speed before the first J0 zero")
	}
	if DopplerHz(Vehicular.SpeedMps) <= DopplerHz(Pedestrian.SpeedMps) {
		t.Fatal("Doppler shift should grow with speed")
	}
}

func linksEqual(a, b *channel.Link) bool {
	if len(a.Subcarriers) != len(b.Subcarriers) {
		return false
	}
	for k := range a.Subcarriers {
		ma, mb := a.Subcarriers[k], b.Subcarriers[k]
		if ma.Rows != mb.Rows || ma.Cols != mb.Cols {
			return false
		}
		for i := range ma.Data {
			if ma.Data[i] != mb.Data[i] {
				return false
			}
		}
	}
	return true
}

func TestModelSpeedZeroIsByteIdentical(t *testing.T) {
	dep := channel.DeploymentAt(41, channel.Scenario4x2, 0)
	before := [2][2]*channel.Link{}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			before[i][j] = dep.H[i][j].Clone()
		}
	}
	m := NewModel(dep, 0, 7)
	for s := 0; s < 50; s++ {
		m.Advance(5 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !linksEqual(before[i][j], dep.H[i][j]) {
				t.Fatalf("speed 0 mutated H[%d][%d]", i, j)
			}
		}
	}
}

func TestModelDeterministicAndDrifting(t *testing.T) {
	mk := func() *Model {
		return NewModel(channel.DeploymentAt(42, channel.Scenario4x2, 0), Pedestrian.SpeedMps, 9)
	}
	a, b := mk(), mk()
	init := a.Dep.H[0][0].Clone()
	for s := 0; s < 20; s++ {
		a.Advance(5 * time.Millisecond)
		b.Advance(5 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !linksEqual(a.Dep.H[i][j], b.Dep.H[i][j]) {
				t.Fatalf("same-seed models diverged on H[%d][%d]", i, j)
			}
		}
	}
	if linksEqual(init, a.Dep.H[0][0]) {
		t.Fatal("pedestrian model did not move the channel")
	}
	// Gauss–Markov evolution preserves the large-scale statistics: the
	// mean gain should stay within a few dB of where it started.
	if d := math.Abs(a.Dep.H[0][0].AverageGainDB() - init.AverageGainDB()); d > 6 {
		t.Fatalf("mean gain moved %0.1f dB over 100 ms of walking", d)
	}
}

func TestModelReassociateRedrawsBothLinks(t *testing.T) {
	m := NewModel(channel.DeploymentAt(43, channel.Scenario4x2, 0), 0, 11)
	keepH00 := m.Dep.H[0][0].Clone()
	old01 := m.Dep.H[0][1].Clone()
	old11 := m.Dep.H[1][1].Clone()
	gain01 := m.Dep.H[0][1].MeanGainLinear
	m.Reassociate(1)
	if linksEqual(old01, m.Dep.H[0][1]) || linksEqual(old11, m.Dep.H[1][1]) {
		t.Fatal("reassociation left a link toward client 1 unchanged")
	}
	if !linksEqual(keepH00, m.Dep.H[0][0]) {
		t.Fatal("reassociation of client 1 touched client 0's channel")
	}
	if m.Dep.H[0][1].MeanGainLinear != gain01 {
		t.Fatal("reassociation changed the large-scale gain")
	}
}

func TestTimelineDeterministicAndSorted(t *testing.T) {
	a := NewTimeline(5, 10*time.Second, 0.5, 0.1)
	b := NewTimeline(5, 10*time.Second, 0.5, 0.1)
	if len(a.Events) == 0 {
		t.Fatal("no events drawn at these rates")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same-seed timelines differ: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
		if i > 0 && a.Events[i].At < a.Events[i-1].At {
			t.Fatal("timeline not sorted")
		}
	}
	if empty := NewTimeline(5, 10*time.Second, 0, 0); len(empty.Events) != 0 {
		t.Fatalf("rate-0 timeline has %d events", len(empty.Events))
	}
}

func TestTimelineDue(t *testing.T) {
	tl := Timeline{Events: []Event{
		{At: 10 * time.Millisecond},
		{At: 20 * time.Millisecond},
		{At: 30 * time.Millisecond},
	}}
	if got := tl.Due(10*time.Millisecond, 30*time.Millisecond); len(got) != 2 {
		t.Fatalf("Due(10,30] returned %d events, want 2 (exclusive lower bound)", len(got))
	}
	if got := tl.Due(0, 5*time.Millisecond); len(got) != 0 {
		t.Fatalf("Due(0,5] returned %d events, want 0", len(got))
	}
}

func TestDetectorBaselinesEstimationBias(t *testing.T) {
	d := Detector{ThresholdDB: 1}
	// Prediction runs on noisy CSI: a constant 2 dB optimism must not
	// trigger as long as it stays constant.
	pred, real := 100e6, 100e6/math.Pow(10, 0.2)
	d.Rebase(pred, real)
	if d.Drifted(pred, real) {
		t.Fatal("constant bias triggered the detector")
	}
	// The realized throughput sagging another 1.5 dB must trigger.
	if !d.Drifted(pred, real/math.Pow(10, 0.15)) {
		t.Fatal("1.5 dB excursion did not trigger at a 1 dB threshold")
	}
	if d.Excursion(pred, real) != 0 {
		t.Fatalf("excursion at the baseline = %g, want exactly 0", d.Excursion(pred, real))
	}
}

func TestNullResidualCertificate(t *testing.T) {
	src := rng.New(77)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-60))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-65))
	p, err := precoding.Nulling(own, cross, 2)
	if err != nil {
		t.Fatal(err)
	}
	// On the CSI it was computed from, the plan nulls to numerical
	// precision.
	if res := NullResidualDB(cross, p); res > -100 {
		t.Fatalf("fresh nulling residual %0.1f dB, want < -100 dB", res)
	}
	// After heavy drift the certificate must be revoked at any sane
	// threshold.
	drifted := cross.Clone()
	drifted.EvolveRho(rng.New(3), 0.2)
	if res := NullResidualDB(drifted, p); res < -30 {
		t.Fatalf("residual after heavy drift %0.1f dB, want > -30 dB", res)
	}
}
