// Package drift models time-evolving channels and the online controller
// that keeps a COPA pair's allocation fresh as they move (ROADMAP:
// "Time: mobility, CSI drift, and incremental re-allocation").
//
// The physical layer is a Doppler-filtered tap-evolution model: each
// tapped-delay link advances by one AR(1) step per control tick, with
// the per-step correlation set to the Jakes autocorrelation
// J₀(2π·f_d·Δt) of the mobile's speed. On top of it, a deterministic
// event timeline injects client re-associations and AP churn. The
// control layer is a drift detector plus re-allocation loop
// (Controller) that compares realized against predicted throughput and
// — on threshold crossing — either re-allocates incrementally
// (warm-started Equi-SNR, cached nulling plans, delta-CSI frames) or
// falls back to a full ITS exchange.
package drift

import (
	"math"

	"copa/internal/channel"
)

// Profile names a mobility speed from the evaluation's sweep axis.
type Profile struct {
	Name     string
	SpeedMps float64
}

// The standard mobility profiles: static clients (the paper's testbed),
// walking speed, and urban-vehicular speed.
var (
	Static     = Profile{Name: "static", SpeedMps: 0}
	Pedestrian = Profile{Name: "pedestrian", SpeedMps: 1.5}
	Vehicular  = Profile{Name: "vehicular", SpeedMps: 13.9}
)

// Profiles lists the named profiles in increasing speed order.
func Profiles() []Profile { return []Profile{Static, Pedestrian, Vehicular} }

// DopplerHz returns the maximum Doppler shift f_d = v·f_c/c at the
// simulation's carrier frequency.
func DopplerHz(speedMps float64) float64 {
	return speedMps * channel.CarrierFrequencyHz / channel.SpeedOfLight
}

// StepRho returns the per-step tap correlation for one dt-second
// evolution step at the given speed: the Jakes autocorrelation
// J₀(2π·f_d·Δt), clamped to [0, 1]. Beyond the first zero of J₀ the
// fading is effectively decorrelated, so the clamp at 0 yields i.i.d.
// redraws rather than the (unphysical for a WSS model step) negative
// correlation. Speed 0 (or dt ≤ 0) returns exactly 1, which
// Link.EvolveRho treats as a strict no-op — the foundation of the
// controller's speed-0 byte-identity guarantee.
func StepRho(speedMps, dtSeconds float64) float64 {
	if speedMps <= 0 || dtSeconds <= 0 {
		return 1
	}
	rho := math.J0(2 * math.Pi * DopplerHz(speedMps) * dtSeconds)
	if rho < 0 {
		return 0
	}
	if rho > 1 {
		return 1
	}
	return rho
}
