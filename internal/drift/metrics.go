package drift

import "copa/internal/obs"

var (
	// mFullExchanges counts full ITS renegotiations (including each
	// controller's initial exchange).
	mFullExchanges = obs.C("copa.drift.full_exchanges")
	// mIncremental counts warm-started in-place re-allocations.
	mIncremental = obs.C("copa.drift.incremental_reallocs")
	// mCertRevocations counts nullspace-certificate revocations.
	mCertRevocations = obs.C("copa.drift.cert_revocations")
	// mDriftTriggers counts detector threshold crossings.
	mDriftTriggers = obs.C("copa.drift.detector_triggers")
	// mEvents counts applied timeline events.
	mEvents = obs.C("copa.drift.events")
	// mCSIBytes / mDeltaBytes are the wire sizes of full and delta CSI
	// frames.
	mCSIBytes   = obs.H("copa.drift.full_csi_bytes", obs.LinearBuckets(0, 256, 17))
	mDeltaBytes = obs.H("copa.drift.delta_csi_bytes", obs.LinearBuckets(0, 256, 17))
)
