package drift

import (
	"math"
	"sort"
	"time"

	"copa/internal/rng"
)

// EventKind classifies a timeline event.
type EventKind int

const (
	// EventReassoc: a client departs and a new association appears —
	// both links toward that client are redrawn and the pair must
	// re-negotiate from fresh CSI.
	EventReassoc EventKind = iota
	// EventAPChurn: an AP restarts (power cycle, channel switch). No
	// physical channel changes, but every cached plan, CSI frame and
	// session on that AP is invalidated.
	EventAPChurn
)

func (k EventKind) String() string {
	switch k {
	case EventReassoc:
		return "reassoc"
	case EventAPChurn:
		return "ap-churn"
	}
	return "unknown"
}

// Event is one discrete occurrence on the timeline.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Node is the client index for EventReassoc, the AP index for
	// EventAPChurn.
	Node int
}

// Timeline is a deterministic, time-sorted event sequence: the same
// (seed, duration, rates) always yields the identical sequence, which
// the CI drift-smoke job asserts across two independent runs.
type Timeline struct {
	Events []Event
}

// NewTimeline draws a Poisson event timeline: client re-associations at
// reassocPerSec per client and AP churn at churnPerSec per AP, gaps
// drawn as independent exponentials from stateless per-(kind, node)
// streams. A rate ≤ 0 disables that process entirely (zero draws, so a
// rate-0 timeline is empty no matter the duration).
func NewTimeline(seed int64, duration time.Duration, reassocPerSec, churnPerSec float64) Timeline {
	var tl Timeline
	draw := func(kind EventKind, node int, rate float64) {
		if rate <= 0 {
			return
		}
		src := rng.NewSub(seed, pathEvents, uint64(kind), uint64(node))
		t := time.Duration(0)
		for {
			gap := -math.Log(1-src.Float64()) / rate
			t += time.Duration(gap * float64(time.Second))
			if t >= duration {
				return
			}
			tl.Events = append(tl.Events, Event{At: t, Kind: kind, Node: node})
		}
	}
	for n := 0; n < 2; n++ {
		draw(EventReassoc, n, reassocPerSec)
		draw(EventAPChurn, n, churnPerSec)
	}
	sort.SliceStable(tl.Events, func(a, b int) bool {
		ea, eb := tl.Events[a], tl.Events[b]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		return ea.Node < eb.Node
	})
	return tl
}

// Due returns the events with At in (after, upTo] — the ones a control
// tick moving time from `after` to `upTo` must apply.
func (tl Timeline) Due(after, upTo time.Duration) []Event {
	lo := sort.Search(len(tl.Events), func(i int) bool { return tl.Events[i].At > after })
	hi := sort.Search(len(tl.Events), func(i int) bool { return tl.Events[i].At > upTo })
	return tl.Events[lo:hi]
}
