package drift

import (
	"time"

	"copa/internal/channel"
	"copa/internal/rng"
)

// Model advances a deployment's physical channels through time. All
// randomness is drawn from stateless rng.Derive streams keyed by (seed,
// step, link), so the evolution is a pure function of (initial
// deployment, seed, step sequence): replaying the same steps in a
// second run — or re-materializing a single step on another worker —
// reproduces the exact same channel trajectory.
type Model struct {
	Dep *channel.Deployment
	// SpeedMps is the clients' speed; 0 freezes the channels entirely
	// (every Advance is a no-op, bit for bit).
	SpeedMps float64

	seed int64
	step int64
}

// Stream tags for the model's rng paths (the third path element).
const (
	pathEvolve  = 0x0d  // per-(step, link) AR(1) innovations
	pathReassoc = 0x4e  // client re-association redraws
	pathEvents  = 0xe7  // timeline event-gap draws
	pathMeasure = 0xc51 // controller CSI measurement noise
)

// NewModel wraps a deployment in a drift model. The deployment is
// evolved in place.
func NewModel(dep *channel.Deployment, speedMps float64, seed int64) *Model {
	return &Model{Dep: dep, SpeedMps: speedMps, seed: seed}
}

// Step returns the number of Advance calls performed so far.
func (m *Model) Step() int64 { return m.step }

// Advance evolves all five links (four AP→client channels plus the
// AP↔AP control link) by one dt step at the model's speed. At speed 0
// the links are untouched — EvolveRho(ρ=1) is a strict no-op — but the
// step counter still advances, keeping event/measurement streams
// aligned across speeds.
func (m *Model) Advance(dt time.Duration) {
	m.step++
	rho := StepRho(m.SpeedMps, dt.Seconds())
	if rho >= 1 {
		return
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m.Dep.H[i][j].EvolveRho(rng.NewSub(m.seed, pathEvolve, uint64(m.step), uint64(i*2+j)), rho)
		}
	}
	m.Dep.APLink.EvolveRho(rng.NewSub(m.seed, pathEvolve, uint64(m.step), 4), rho)
}

// Reassociate models client j leaving and re-appearing elsewhere in the
// cell (or a different client associating): both channels toward the
// client are redrawn as fresh small-scale fading at the deployment's
// large-scale gains. Deterministic in (seed, step, j).
func (m *Model) Reassociate(j int) {
	for i := 0; i < 2; i++ {
		old := m.Dep.H[i][j]
		src := rng.NewSub(m.seed, pathReassoc, uint64(m.step), uint64(i*2+j))
		m.Dep.H[i][j] = channel.NewLink(src, old.NRx(), old.NTx(), old.MeanGainLinear)
	}
}

// MeasureCSI returns the controller's noisy estimate of the channel
// from AP i to client j at the current step, drawn from a stateless
// stream so a given (seed, step, link) always measures the same
// realization.
func (m *Model) MeasureCSI(imp channel.Impairments, i, j int) *channel.Link {
	src := rng.NewSub(m.seed, pathMeasure, uint64(m.step), uint64(i*2+j))
	return imp.EstimateCSI(src, m.Dep.H[i][j])
}
