package drift

import (
	"math"

	"copa/internal/channel"
	"copa/internal/linalg"
	"copa/internal/precoding"
)

// Detector watches the gap between the throughput the last allocation
// predicted and what the true channels actually deliver. Because
// prediction runs on noisy CSI estimates, the gap is non-zero even on a
// frozen channel; what signals drift is the gap MOVING away from where
// it sat right after the allocation was computed. The detector
// therefore baselines the gap at every (re-)allocation and triggers on
// the excursion from that baseline — on a static channel the realized
// and predicted values are both exactly constant, so the excursion is
// exactly zero and the detector provably never fires.
type Detector struct {
	// ThresholdDB is the excursion (in dB) of the realized/predicted
	// throughput ratio from its post-allocation baseline that triggers
	// re-allocation.
	ThresholdDB float64

	baseline float64
	primed   bool
}

// gapDB compresses realized-vs-predicted into a single dB figure.
// Zeros are clamped to a floor so a dead allocation (realized 0) shows
// up as a huge, finite excursion rather than a NaN.
func gapDB(predicted, realized float64) float64 {
	const floor = 1e-3 // bits/s; anything below is "off"
	if predicted < floor {
		predicted = floor
	}
	if realized < floor {
		realized = floor
	}
	return 10 * math.Log10(realized/predicted)
}

// Rebase records the gap observed immediately after a fresh allocation
// as the new baseline.
func (d *Detector) Rebase(predicted, realized float64) {
	d.baseline = gapDB(predicted, realized)
	d.primed = true
}

// Excursion returns the current deviation (dB, ≥ 0) from the baseline.
func (d *Detector) Excursion(predicted, realized float64) float64 {
	if !d.primed {
		return math.Inf(1) // no allocation yet: always re-allocate
	}
	return math.Abs(gapDB(predicted, realized) - d.baseline)
}

// Drifted reports whether the excursion crosses the threshold.
func (d *Detector) Drifted(predicted, realized float64) bool {
	return d.Excursion(predicted, realized) > d.ThresholdDB
}

// NullResidualDB is the nullspace certificate: the leakage of a cached
// nulling precoder evaluated against FRESH cross-channel CSI, as
// Σ‖H_k·W_k‖²_F / Σ‖H_k‖²_F in dB. A precoder computed on the same CSI
// nulls to numerical precision (≈ −300 dB); as the channel drifts the
// residual climbs. While it stays below the revocation threshold the
// cached plan still effectively protects the other client and the
// incremental path may reuse it; above, the certificate is revoked and
// the pair must renegotiate precoders from scratch.
func NullResidualDB(cross *channel.Link, p *precoding.Precoder) float64 {
	var leak, tot float64
	for k, h := range cross.Subcarriers {
		w := p.PerSubcarrier[k]
		for r := 0; r < h.Rows; r++ {
			for c := 0; c < w.Cols; c++ {
				var acc complex128
				for t := 0; t < h.Cols; t++ {
					acc += h.Data[r*h.Cols+t] * w.Data[t*w.Cols+c]
				}
				leak += real(acc)*real(acc) + imag(acc)*imag(acc)
			}
		}
		tot += frobSq(h)
	}
	if tot <= 0 {
		return math.Inf(-1)
	}
	if leak <= 0 {
		return -300
	}
	return 10 * math.Log10(leak/tot)
}

func frobSq(m *linalg.Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}
