package drift

import (
	"fmt"
	"math"
	"time"

	"copa/internal/channel"
	"copa/internal/core"
	"copa/internal/csi"
	"copa/internal/mac"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Config parameterizes the online re-allocation controller.
type Config struct {
	Impairments channel.Impairments
	Mode        strategy.Mode
	// SpeedMps is the mobility speed driving the Doppler model.
	SpeedMps float64
	// Step is the control-loop tick. Defaults to 5 ms.
	Step time.Duration
	// ThresholdDB is the drift detector's excursion threshold.
	// Defaults to 1 dB.
	ThresholdDB float64
	// CertThresholdDB is the nullspace-certificate revocation level: a
	// cached nulling plan whose leakage on fresh CSI exceeds this is
	// discarded and the pair renegotiates fully. Defaults to −15 dB —
	// above the ~−30 dB residual floor that fresh measurement noise
	// alone induces, and the level at which leakage becomes comparable
	// to the staleness impairment the predictor already budgets for.
	CertThresholdDB float64
	// ReassocPerSec / ChurnPerSec are the Poisson rates of the event
	// timeline (per client / per AP). Zero disables.
	ReassocPerSec float64
	ChurnPerSec   float64
	// AirtimeUS is the data airtime each ITS exchange negotiates for.
	// Defaults to the MAC TXOP.
	AirtimeUS uint32
	// Seed drives every stream the controller touches (evolution,
	// events, measurements, exchanges).
	Seed int64
}

// DefaultConfig returns the standard controller settings.
func DefaultConfig() Config {
	return Config{
		Impairments:     channel.DefaultImpairments(),
		Mode:            strategy.ModeMax,
		Step:            5 * time.Millisecond,
		ThresholdDB:     1.0,
		CertThresholdDB: -15,
		AirtimeUS:       uint32(mac.TxOp.Microseconds()),
	}
}

func (c *Config) fillDefaults() {
	if c.Step <= 0 {
		c.Step = 5 * time.Millisecond
	}
	if c.ThresholdDB <= 0 {
		c.ThresholdDB = 1.0
	}
	if c.CertThresholdDB == 0 {
		c.CertThresholdDB = -15
	}
	if c.AirtimeUS == 0 {
		c.AirtimeUS = uint32(mac.TxOp.Microseconds())
	}
}

// Stats accumulates what the controller did over a run.
type Stats struct {
	// Steps is the number of control ticks executed.
	Steps int
	// Exchanges counts full ITS exchanges, including the initial one;
	// Renegotiations counts only the drift/event-triggered ones
	// (Exchanges − 1 once the controller has started). At speed 0 with
	// no events, Renegotiations is provably zero: EvolveRho(ρ=1) leaves
	// the channels bit-identical, so realized and predicted throughput
	// are exactly constant and the detector's excursion is exactly 0.
	Exchanges      int
	Renegotiations int
	// Incremental counts warm-started in-place re-allocations that
	// reused the cached nulling plans without an ITS exchange.
	Incremental int
	// CertRevocations counts incremental attempts aborted because the
	// cached nulling plan's leakage on fresh CSI crossed the
	// certificate threshold.
	CertRevocations int
	// Events counts applied timeline events; Fallbacks counts
	// exchanges that exhausted retries and reverted to CSMA.
	Events    int
	Fallbacks int
	// ControlBytes sums ITS frame bytes; FullCSIBytes and
	// DeltaCSIBytes sum the CSI payloads of full frames and delta
	// frames respectively.
	ControlBytes  int
	FullCSIBytes  int
	DeltaCSIBytes int
	// RealizedBits integrates the pair's aggregate realized throughput
	// over the run; Elapsed is the simulated time covered.
	RealizedBits float64
	Elapsed      time.Duration
}

// MeanAggregate returns the run's realized aggregate throughput in
// bits/s.
func (s *Stats) MeanAggregate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return s.RealizedBits / s.Elapsed.Seconds()
}

// Controller runs the drift detector + re-allocation loop over one
// evolving pair. It is single-goroutine and fully deterministic in
// (deployment, Config.Seed).
type Controller struct {
	cfg   Config
	pair  *core.Pair
	model *Model
	tl    Timeline
	det   Detector

	tx        [2]*precoding.Transmission
	prec      [2]*precoding.Precoder
	alloc     *power.Result
	warmDrops [][]int
	baseCSI   [2]*channel.Link // cross links at the last full frame
	epoch     int64
	conc      bool
	needFull  bool
	predicted float64

	// onIncremental, when set (tests only), observes every incremental
	// re-allocation with the exact sender CSI it solved from — the hook
	// behind the "incremental tracks the from-scratch solve" tolerance
	// test.
	onIncremental func(senders [2]power.SenderCSI, res *power.Result)

	stats Stats
}

// NewController builds a controller over a deployment (evolved in
// place) for a run of the given duration (the duration bounds the event
// timeline; Run may be called for less).
func NewController(dep *channel.Deployment, duration time.Duration, cfg Config) *Controller {
	cfg.fillDefaults()
	return &Controller{
		cfg:      cfg,
		pair:     core.NewPair(dep, cfg.Impairments, strategy.DefaultCoherence, cfg.Mode, rng.NewSub(cfg.Seed, 0xd21f)),
		model:    NewModel(dep, cfg.SpeedMps, cfg.Seed),
		tl:       NewTimeline(cfg.Seed, duration, cfg.ReassocPerSec, cfg.ChurnPerSec),
		det:      Detector{ThresholdDB: cfg.ThresholdDB},
		needFull: true,
	}
}

// Stats returns the accumulated run statistics.
func (c *Controller) Stats() *Stats { return &c.stats }

// Transmissions returns the pair's current transmissions (nil entries
// while in CSMA fallback).
func (c *Controller) Transmissions() [2]*precoding.Transmission { return c.tx }

// realized scores the current transmissions on the TRUE channels,
// mirroring core.Pair.MeasuredThroughputs' concurrent arithmetic.
func (c *Controller) realized() float64 {
	if c.tx[0] == nil && c.tx[1] == nil {
		thr := c.pair.CSMAThroughputs()
		return thr[0] + thr[1]
	}
	noise := channel.NoisePerSubcarrierMW()
	ovm := mac.DefaultOverheadModel()
	var sum float64
	if c.conc {
		oh := ovm.COPAConcOverhead(strategy.DefaultCoherence)
		for j := 0; j < 2; j++ {
			g := power.GoodputFor(c.pair.Truth.H[j][j], c.tx[j], c.pair.Truth.H[1-j][j], c.tx[1-j], noise)
			sum += g * (1 - oh - mac.DataOverheadFraction)
		}
		return sum
	}
	oh := ovm.COPASeqOverhead(strategy.DefaultCoherence)
	for j := 0; j < 2; j++ {
		if c.tx[j] == nil {
			continue
		}
		g := power.GoodputFor(c.pair.Truth.H[j][j], c.tx[j], nil, nil, noise)
		sum += g * 0.5 * (1 - oh - mac.DataOverheadFraction)
	}
	return sum
}

// fullExchange runs a complete ITS exchange: fresh CSI everywhere, new
// precoders, full CSI frames on the wire.
func (c *Controller) fullExchange() error {
	mFullExchanges.Inc()
	c.pair.MeasureCSI()
	s, err := c.pair.RunExchange(c.cfg.AirtimeUS)
	if err != nil {
		return fmt.Errorf("drift: exchange at t=%v: %w", c.pair.Clock(), err)
	}
	if c.stats.Exchanges > 0 {
		c.stats.Renegotiations++
	}
	c.stats.Exchanges++
	c.stats.ControlBytes += s.ControlBytes
	c.needFull = false
	c.alloc = nil
	c.warmDrops = nil
	c.prec = [2]*precoding.Precoder{}
	c.baseCSI = [2]*channel.Link{}
	if s.Fallback {
		c.stats.Fallbacks++
		c.tx = [2]*precoding.Transmission{}
		c.conc = false
		r := c.realized()
		c.predicted = r
		c.det.Rebase(c.predicted, r)
		return nil
	}
	c.tx = s.Tx
	c.conc = s.Concurrent
	c.predicted = s.Outcome.Predicted[0] + s.Outcome.Predicted[1]
	if s.Concurrent {
		// Cache the plan the incremental path will reuse: precoders,
		// the power result as a warm start, and the full CSI frames as
		// the delta base.
		c.prec = [2]*precoding.Precoder{s.Tx[0].Precoder, s.Tx[1].Precoder}
		c.alloc = &power.Result{Tx: []*precoding.Transmission{s.Tx[0], s.Tx[1]}}
		c.warmDrops = [][]int{
			make([]int, s.Tx[0].Precoder.Streams),
			make([]int, s.Tx[1].Precoder.Streams),
		}
		c.epoch++
		for i := 0; i < 2; i++ {
			cross := c.model.MeasureCSI(c.cfg.Impairments, i, 1-i)
			c.baseCSI[i] = cross
			if frame, err := csi.EncodeLink(cross); err == nil {
				c.stats.FullCSIBytes += len(frame)
				mCSIBytes.ObserveInt(len(frame))
			}
		}
	}
	c.det.Rebase(c.predicted, c.realized())
	return nil
}

// incremental re-allocates power in place: fresh CSI measurements,
// cached precoders, warm-started Equi-SNR, delta-CSI frames. Falls back
// to a full exchange when the nullspace certificate is revoked.
func (c *Controller) incremental() error {
	var fresh [2][2]*channel.Link
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			fresh[i][j] = c.model.MeasureCSI(c.cfg.Impairments, i, j)
		}
	}
	// Nullspace certificate: the cached plan must still null the OTHER
	// client on the fresh estimates.
	for i := 0; i < 2; i++ {
		if res := NullResidualDB(fresh[i][1-i], c.prec[i]); res > c.cfg.CertThresholdDB {
			c.stats.CertRevocations++
			mCertRevocations.Inc()
			return c.fullExchange()
		}
	}
	mIncremental.Inc()
	budget := channel.TotalTxBudgetMW()
	senders := [2]power.SenderCSI{
		{Own: fresh[0][0], Cross: fresh[0][1], Precoder: c.prec[0], BudgetMW: budget},
		{Own: fresh[1][1], Cross: fresh[1][0], Precoder: c.prec[1], BudgetMW: budget},
	}
	pcfg := power.DefaultConfig()
	pcfg.Impairments = c.cfg.Impairments
	// Previous-epoch state enters through the drop-level hints: each
	// Equi-SNR inner scan warm-starts at the previous power vector's
	// drop level, which skips the water-level search yet provably
	// returns the bit-identical allocation. The previous power grids
	// deliberately do NOT seed the Jacobi sweep: under drift the
	// best-response trajectory from equal split dominates the one from
	// the stale optimum (measured 10–26% higher aggregate on
	// pedestrian-drifted estimates). The speedup comes from Patience:
	// the trajectory typically peaks within the first sweeps, so early
	// stopping cuts the mean sweep count from 12 to ~3.4 while staying
	// within the documented tolerance of the from-scratch solve
	// (median exact, p90 ≈ 3%; see DESIGN §14).
	pcfg.WarmDrops = c.warmDrops
	pcfg.Patience = 2
	res := power.Concurrent(senders, pcfg)
	if c.onIncremental != nil {
		c.onIncremental(senders, res)
	}

	// Delta frames: each AP ships its cross-channel diff against the
	// last full frame.
	nextEpoch := c.epoch + 1
	for i := 0; i < 2; i++ {
		if c.baseCSI[i] == nil {
			continue
		}
		frame, err := csi.EncodeDelta(c.baseCSI[i].Subcarriers, fresh[i][1-i].Subcarriers, c.epoch, nextEpoch)
		if err == nil {
			c.stats.DeltaCSIBytes += len(frame)
			mDeltaBytes.ObserveInt(len(frame))
		}
	}
	c.epoch = nextEpoch

	c.alloc = res
	c.tx = [2]*precoding.Transmission{res.Tx[0], res.Tx[1]}
	c.conc = true
	oh := mac.DefaultOverheadModel().COPAConcOverhead(strategy.DefaultCoherence)
	c.predicted = (res.Goodput[0] + res.Goodput[1]) * (1 - oh - mac.DataOverheadFraction)
	c.stats.Incremental++
	c.det.Rebase(c.predicted, c.realized())
	return nil
}

// Tick advances the world by one control step and runs the detector /
// re-allocation logic.
func (c *Controller) Tick() error {
	if c.needFull {
		if err := c.fullExchange(); err != nil {
			return err
		}
	}
	before := c.pair.Clock()
	c.model.Advance(c.cfg.Step)
	// Move the pair's virtual clock only: the model owns channel
	// evolution (coherence +Inf makes Pair.Advance a pure clock move).
	c.pair.Advance(c.cfg.Step, math.Inf(1))
	now := c.pair.Clock()

	for _, ev := range c.tl.Due(before, now) {
		c.stats.Events++
		mEvents.Inc()
		switch ev.Kind {
		case EventReassoc:
			c.model.Reassociate(ev.Node)
		case EventAPChurn:
			// No physical change, but every cached plan on that AP —
			// and hence the pair's joint plan — is gone.
			c.alloc = nil
			c.prec = [2]*precoding.Precoder{}
		}
		c.needFull = true
	}

	r := c.realized()
	c.stats.RealizedBits += r * c.cfg.Step.Seconds()
	c.stats.Elapsed += c.cfg.Step
	c.stats.Steps++

	switch {
	case c.needFull:
		if err := c.fullExchange(); err != nil {
			return err
		}
	case c.det.Drifted(c.predicted, r):
		mDriftTriggers.Inc()
		if c.conc && c.prec[0] != nil && c.prec[1] != nil && c.alloc != nil {
			if err := c.incremental(); err != nil {
				return err
			}
		} else {
			if err := c.fullExchange(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run executes ticks until the given duration of virtual time has
// elapsed and returns the accumulated stats.
func (c *Controller) Run(duration time.Duration) (*Stats, error) {
	for c.stats.Elapsed < duration {
		if err := c.Tick(); err != nil {
			return nil, err
		}
	}
	return &c.stats, nil
}
