package drift

import (
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/core"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/strategy"
)

func txEqual(a, b *precoding.Transmission) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.PowerMW) != len(b.PowerMW) {
		return false
	}
	for k := range a.PowerMW {
		if len(a.PowerMW[k]) != len(b.PowerMW[k]) {
			return false
		}
		for s := range a.PowerMW[k] {
			if a.PowerMW[k][s] != b.PowerMW[k][s] {
				return false
			}
		}
	}
	pa, pb := a.Precoder.PerSubcarrier, b.Precoder.PerSubcarrier
	if len(pa) != len(pb) {
		return false
	}
	for k := range pa {
		for i := range pa[k].Data {
			if pa[k].Data[i] != pb[k].Data[i] {
				return false
			}
		}
	}
	return true
}

// TestControllerSpeedZeroNeverRenegotiates is the acceptance criterion:
// at speed 0 with no events the controller performs exactly the initial
// exchange and never again — and its transmissions are byte-identical
// to what the static (non-drift) path computes on the same pair.
func TestControllerSpeedZeroNeverRenegotiates(t *testing.T) {
	const seed = 21
	cfg := DefaultConfig()
	cfg.SpeedMps = 0
	cfg.Seed = seed

	dep := channel.DeploymentAt(seed, channel.Scenario4x2, 0)
	ctl := NewController(dep, 400*time.Millisecond, cfg)
	stats, err := ctl.Run(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Renegotiations != 0 || stats.Incremental != 0 || stats.CertRevocations != 0 {
		t.Fatalf("speed 0 re-allocated: %+v", *stats)
	}
	if stats.Exchanges != 1 {
		t.Fatalf("speed 0 ran %d exchanges, want exactly the initial one", stats.Exchanges)
	}
	if stats.Events != 0 {
		t.Fatalf("rate-0 timeline produced %d events", stats.Events)
	}

	// The static path: a plain pair on an identical deployment, one
	// exchange, no controller. Same seed path ⇒ same CSI noise, same
	// leader election, same allocation — byte-identical transmissions.
	dep2 := channel.DeploymentAt(seed, channel.Scenario4x2, 0)
	pair := core.NewPair(dep2, cfg.Impairments, strategy.DefaultCoherence, cfg.Mode, rng.NewSub(seed, 0xd21f))
	pair.MeasureCSI()
	s, err := pair.RunExchange(cfg.AirtimeUS)
	if err != nil {
		t.Fatal(err)
	}
	got := ctl.Transmissions()
	for i := 0; i < 2; i++ {
		if !txEqual(got[i], s.Tx[i]) {
			t.Fatalf("controller Tx[%d] differs from the static path", i)
		}
	}
}

// TestControllerDeterministicAcrossRuns: two identically-seeded runs at
// vehicular speed with events enabled must agree on every statistic —
// the CI drift-smoke job's second assertion.
func TestControllerDeterministicAcrossRuns(t *testing.T) {
	run := func() Stats {
		cfg := DefaultConfig()
		cfg.SpeedMps = Vehicular.SpeedMps
		cfg.Seed = 33
		cfg.ReassocPerSec = 10
		cfg.ChurnPerSec = 5
		dep := channel.DeploymentAt(33, channel.Scenario4x2, 0)
		ctl := NewController(dep, 150*time.Millisecond, cfg)
		stats, err := ctl.Run(150 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return *stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identically-seeded runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Events == 0 {
		t.Fatal("event timeline never fired at these rates")
	}
}

// TestControllerMobilityTriggersReallocation: at pedestrian speed the
// channels drift, so the controller must re-allocate at least once and
// keep the realized throughput positive.
func TestControllerMobilityTriggersReallocation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpeedMps = Pedestrian.SpeedMps
	cfg.Seed = 55
	cfg.ThresholdDB = 0.5
	dep := channel.DeploymentAt(55, channel.Scenario4x2, 0)
	ctl := NewController(dep, 400*time.Millisecond, cfg)
	stats, err := ctl.Run(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incremental+stats.Renegotiations == 0 {
		t.Fatalf("walking for 400 ms never re-allocated: %+v", *stats)
	}
	if stats.MeanAggregate() <= 0 {
		t.Fatal("no realized throughput")
	}
}

// TestIncrementalTracksFromScratch: every incremental re-allocation
// must land within tolerance of the cold from-scratch 12-sweep solve on
// the exact same sender CSI (same precoders, same measurements). The
// incremental solve follows the identical trajectory (drop-level hints
// are bit-identical) but stops early once the best-so-far stops
// improving (Patience 2), so it can miss rare late-peak instances; the
// documented tolerance (DESIGN §14) is 20% per epoch worst-case and 5%
// on average across epochs.
func TestIncrementalTracksFromScratch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpeedMps = Pedestrian.SpeedMps
	cfg.Seed = 91
	cfg.ThresholdDB = 0.5
	dep := channel.DeploymentAt(91, channel.Scenario4x2, 0)
	ctl := NewController(dep, time.Second, cfg)

	checked := 0
	relSum := 0.0
	ctl.onIncremental = func(senders [2]power.SenderCSI, res *power.Result) {
		pcfg := power.DefaultConfig()
		pcfg.Impairments = cfg.Impairments
		cold := power.Concurrent(senders, pcfg)
		warmAgg, coldAgg := res.Aggregate(), cold.Aggregate()
		if coldAgg <= 0 {
			return
		}
		rel := (coldAgg - warmAgg) / coldAgg
		if rel > 0.20 {
			t.Errorf("incremental aggregate %0.3g vs cold %0.3g: %.2f%% off (worst-case tolerance 20%%)",
				warmAgg, coldAgg, rel*100)
		}
		relSum += rel
		checked++
	}
	for ctl.Stats().Elapsed < time.Second && checked < 3 {
		if err := ctl.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if checked == 0 {
		t.Skip("no incremental re-allocation occurred in 1 s at pedestrian speed")
	}
	if mean := relSum / float64(checked); mean > 0.05 {
		t.Errorf("mean incremental shortfall %.2f%% across %d epochs (tolerance 5%%)", mean*100, checked)
	}
}

// TestControllerChurnForcesFullExchange: AP churn invalidates every
// cached plan, so the next re-allocation must be a full exchange even
// when the channel barely moved.
func TestControllerChurnForcesFullExchange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpeedMps = 0
	cfg.Seed = 13
	cfg.ChurnPerSec = 20 // several churns in a short run
	dep := channel.DeploymentAt(13, channel.Scenario4x2, 0)
	ctl := NewController(dep, 500*time.Millisecond, cfg)
	stats, err := ctl.Run(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 {
		t.Fatal("churn timeline never fired")
	}
	if stats.Renegotiations == 0 {
		t.Fatal("churn events did not force renegotiation")
	}
	if stats.Incremental != 0 {
		t.Fatalf("static channel performed %d incremental re-allocations", stats.Incremental)
	}
}
