package channel

import (
	"math"
	"testing"

	"copa/internal/rng"
)

func TestMeasureCoherenceTimeMatchesModel(t *testing.T) {
	// The Gauss–Markov evolution decorrelates with exp(−t/tc); the 1/e
	// crossing should land near the configured tc.
	for _, tc := range []float64{0.020, 0.050, 0.200} {
		var sum float64
		const trials = 6
		for trial := 0; trial < trials; trial++ {
			src := rng.New(int64(100*tc*1000) + int64(trial))
			link := NewLink(src.Split(1), 2, 4, 1)
			got := MeasureCoherenceTime(src.Split(2), link, tc, tc/20, 200)
			sum += got
		}
		mean := sum / trials
		if math.Abs(mean-tc)/tc > 0.35 {
			t.Errorf("tc=%.0f ms: measured %.1f ms (>35%% off)", tc*1e3, mean*1e3)
		}
	}
}

func TestMeasureCoherenceTimeStatic(t *testing.T) {
	src := rng.New(9)
	link := NewLink(src.Split(1), 1, 1, 1)
	got := MeasureCoherenceTime(src.Split(2), link, math.Inf(1), 0.010, 50)
	if !math.IsInf(got, 1) {
		t.Errorf("static channel measured tc=%g", got)
	}
}

func TestMeasureCoherenceTimeZeroChannel(t *testing.T) {
	link := &Link{Subcarriers: NewLink(rng.New(1), 1, 1, 1).Subcarriers}
	for _, h := range link.Subcarriers {
		for i := range h.Data {
			h.Data[i] = 0
		}
	}
	if !math.IsInf(MeasureCoherenceTime(rng.New(2), link, 0.05, 0.01, 10), 1) {
		t.Error("zero channel should report +Inf")
	}
}
