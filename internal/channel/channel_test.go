package channel

import (
	"math"
	"testing"
	"testing/quick"

	"copa/internal/ofdm"
	"copa/internal/rng"
)

func TestUnits(t *testing.T) {
	if got := DBToLinear(0); got != 1 {
		t.Errorf("DBToLinear(0) = %g", got)
	}
	if got := DBToLinear(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("DBToLinear(10) = %g", got)
	}
	if got := LinearToDB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("LinearToDB(100) = %g", got)
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
	if got := DBmToMilliwatts(0); got != 1 {
		t.Errorf("DBmToMilliwatts(0) = %g", got)
	}
	if got := MilliwattsToDBm(DBmToMilliwatts(15)); math.Abs(got-15) > 1e-12 {
		t.Errorf("dBm round trip = %g", got)
	}
}

func TestWavelength(t *testing.T) {
	// ≈12.4 cm at 2.412 GHz — the paper's "one radio wavelength" 12.5 cm.
	if wl := Wavelength(); wl < 0.12 || wl > 0.13 {
		t.Errorf("wavelength = %g m", wl)
	}
}

func TestCoherenceTime(t *testing.T) {
	// Paper: 28 ms at 4 km/h and 112 ms at 1 km/h with m = 0.25.
	got4 := CoherenceTime(4000.0 / 3600)
	if math.Abs(got4-0.028) > 0.002 {
		t.Errorf("tc(4 km/h) = %g s, want ≈0.028", got4)
	}
	got1 := CoherenceTime(1000.0 / 3600)
	if math.Abs(got1-0.112) > 0.008 {
		t.Errorf("tc(1 km/h) = %g s, want ≈0.112", got1)
	}
	if !math.IsInf(CoherenceTime(0), 1) {
		t.Error("static environment should have infinite tc")
	}
}

func TestTapPowersNormalized(t *testing.T) {
	p := tapPowers()
	if len(p) != NumTaps {
		t.Fatalf("len = %d", len(p))
	}
	var sum float64
	for i, v := range p {
		if v <= 0 {
			t.Errorf("tap %d power %g", i, v)
		}
		if i > 0 && v >= p[i-1] {
			t.Errorf("PDP not decaying at tap %d", i)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PDP sums to %g", sum)
	}
}

func TestNewLinkShapeAndGain(t *testing.T) {
	src := rng.New(42)
	const gainDB = -60.0
	// Average over many draws: mean per-entry power ≈ gain.
	var sum float64
	n := 0
	for trial := 0; trial < 40; trial++ {
		l := NewLink(src.Split(uint64(trial)), 2, 4, DBToLinear(gainDB))
		if len(l.Subcarriers) != ofdm.NumSubcarriers {
			t.Fatalf("subcarrier count = %d", len(l.Subcarriers))
		}
		if l.NRx() != 2 || l.NTx() != 4 {
			t.Fatalf("shape %dx%d", l.NRx(), l.NTx())
		}
		for _, h := range l.Subcarriers {
			for _, v := range h.Data {
				sum += real(v)*real(v) + imag(v)*imag(v)
				n++
			}
		}
	}
	meanDB := LinearToDB(sum / float64(n))
	if math.Abs(meanDB-gainDB) > 1.0 {
		t.Errorf("mean gain = %.2f dB, want %.1f±1", meanDB, gainDB)
	}
}

func TestLinkFrequencySelectivity(t *testing.T) {
	// Multipath must produce material per-subcarrier variation (Fig. 2
	// shows ≳15 dB swings). Check the spread of per-subcarrier gains.
	src := rng.New(7)
	l := NewLink(src, 1, 1, 1)
	min, max := math.Inf(1), math.Inf(-1)
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		g := l.SubcarrierGainDB(k, 0, 0)
		min = math.Min(min, g)
		max = math.Max(max, g)
	}
	if max-min < 6 {
		t.Errorf("fading spread only %.1f dB; expected deep frequency selectivity", max-min)
	}
}

func TestLinkTranspose(t *testing.T) {
	src := rng.New(3)
	l := NewLink(src, 2, 3, 1)
	r := l.Transpose()
	if r.NRx() != 3 || r.NTx() != 2 {
		t.Fatalf("transpose shape %dx%d", r.NRx(), r.NTx())
	}
	for k := range l.Subcarriers {
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				if l.Subcarriers[k].At(i, j) != r.Subcarriers[k].At(j, i) {
					t.Fatalf("transpose mismatch at k=%d", k)
				}
			}
		}
	}
}

func TestLinkScale(t *testing.T) {
	src := rng.New(5)
	l := NewLink(src, 2, 2, DBToLinear(-50))
	s := l.Scale(DBToLinear(-10))
	wantDB := l.AverageGainDB() - 10
	if got := s.AverageGainDB(); math.Abs(got-wantDB) > 1e-9 {
		t.Errorf("scaled gain = %.2f dB, want %.2f", got, wantDB)
	}
	// Original untouched.
	if math.Abs(l.MeanGainLinear-DBToLinear(-50)) > 1e-15 {
		t.Error("Scale mutated the original link")
	}
}

func TestLinkEvolveDecorrelates(t *testing.T) {
	src := rng.New(11)
	l := NewLink(src, 1, 1, 1)
	orig := l.Clone()

	// Short step: nearly unchanged.
	short := l.Clone()
	short.Evolve(src.Split(1), 0.001, 0.100)
	var diffShort, diffLong float64
	long := l.Clone()
	long.Evolve(src.Split(2), 1.0, 0.100) // ten coherence times

	for k := range orig.Subcarriers {
		ds := short.Subcarriers[k].Sub(orig.Subcarriers[k]).FrobeniusNorm()
		dl := long.Subcarriers[k].Sub(orig.Subcarriers[k]).FrobeniusNorm()
		diffShort += ds
		diffLong += dl
	}
	if diffShort >= diffLong {
		t.Errorf("evolution not progressive: short=%g long=%g", diffShort, diffLong)
	}
	// Power preserved on long evolution (fresh Rayleigh draw).
	if g := long.AverageGainDB(); math.Abs(g) > 4 {
		t.Errorf("evolved gain drifted to %.1f dB", g)
	}
	// Infinite coherence time: no change at all.
	still := l.Clone()
	still.Evolve(src.Split(3), 1.0, math.Inf(1))
	for k := range still.Subcarriers {
		if !still.Subcarriers[k].Equal(l.Subcarriers[k], 0) {
			t.Fatal("static channel changed")
		}
	}
}

func TestPathLoss(t *testing.T) {
	a := Point{0, 0}
	if pl := PathLossDB(a, Point{0.5, 0}); math.Abs(pl-referenceLossDB) > 1e-9 {
		t.Errorf("sub-metre distance should clamp to reference loss, got %g", pl)
	}
	pl10 := PathLossDB(a, Point{10, 0})
	pl20 := PathLossDB(a, Point{20, 0})
	if pl20 <= pl10 {
		t.Error("path loss not increasing with distance")
	}
	// Doubling distance adds ≈ 30·log10(2) ≈ 9 dB plus possibly one wall.
	delta := pl20 - pl10
	if delta < 9 || delta > 9+2*wallLossDB+1 {
		t.Errorf("10→20 m delta = %.1f dB", delta)
	}
}

func TestDeploymentEnvelope(t *testing.T) {
	// Fig. 9: signal −30…−70 dBm, interference mostly below signal.
	deps := GenerateTestbed(1, Scenario4x2, 60)
	below := 0
	for _, d := range deps {
		for j := 0; j < 2; j++ {
			if d.SignalDBm[j] < -70 || d.SignalDBm[j] > -30 {
				t.Errorf("signal %g dBm out of range", d.SignalDBm[j])
			}
			if d.InterferenceDBm[j] < d.SignalDBm[j] {
				below++
			}
		}
	}
	frac := float64(below) / float64(2*len(deps))
	if frac < 0.6 || frac > 0.98 {
		t.Errorf("interference below signal in %.0f%% of clients; want usually but not always", frac*100)
	}
}

func TestDeploymentDeterministic(t *testing.T) {
	a := GenerateTestbed(5, Scenario1x1, 3)
	b := GenerateTestbed(5, Scenario1x1, 3)
	for i := range a {
		if a[i].SignalDBm != b[i].SignalDBm || a[i].InterferenceDBm != b[i].InterferenceDBm {
			t.Fatal("same seed produced different testbeds")
		}
		for k := range a[i].H[0][0].Subcarriers {
			if !a[i].H[0][0].Subcarriers[k].Equal(b[i].H[0][0].Subcarriers[k], 0) {
				t.Fatal("same seed produced different channels")
			}
		}
	}
}

func TestDeploymentChannelMatchesDeclaredPower(t *testing.T) {
	deps := GenerateTestbed(2, Scenario4x2, 12)
	for _, d := range deps {
		for j := 0; j < 2; j++ {
			gotSig := d.H[j][j].AverageGainDB() + MaxTxPowerDBm
			if math.Abs(gotSig-d.SignalDBm[j]) > 6 {
				t.Errorf("client %d: channel gain implies %.1f dBm, declared %.1f",
					j, gotSig, d.SignalDBm[j])
			}
		}
	}
}

func TestScaleInterference(t *testing.T) {
	d := GenerateTestbed(3, Scenario4x2, 1)[0]
	w := d.ScaleInterference(-10)
	if math.Abs((d.InterferenceDBm[0]-10)-w.InterferenceDBm[0]) > 1e-9 {
		t.Error("interference power not scaled")
	}
	if math.Abs(w.H[0][1].AverageGainDB()-(d.H[0][1].AverageGainDB()-10)) > 1e-9 {
		t.Error("cross channel not scaled")
	}
	if !w.H[0][0].Subcarriers[0].Equal(d.H[0][0].Subcarriers[0], 0) {
		t.Error("signal channel must be unchanged")
	}
}

func TestEstimateCSIErrorScales(t *testing.T) {
	src := rng.New(21)
	l := NewLink(src, 2, 4, DBToLinear(-60))
	imp := Impairments{CSIErrorDB: -20, TxEVMDB: -35}
	est := imp.EstimateCSI(src.Split(1), l)
	var errPow, chanPow float64
	for k := range l.Subcarriers {
		errPow += math.Pow(est.Subcarriers[k].Sub(l.Subcarriers[k]).FrobeniusNorm(), 2)
		chanPow += math.Pow(l.Subcarriers[k].FrobeniusNorm(), 2)
	}
	gotDB := LinearToDB(errPow / chanPow)
	if math.Abs(gotDB-(-20)) > 2.5 {
		t.Errorf("CSI error = %.1f dB rel. channel, want ≈ -20", gotDB)
	}
	// Perfect hardware: estimate equals truth.
	perfect := PerfectHardware().EstimateCSI(src.Split(2), l)
	for k := range l.Subcarriers {
		if perfect.Subcarriers[k].Sub(l.Subcarriers[k]).MaxAbs() > 1e-12*l.Subcarriers[k].MaxAbs()+1e-30 {
			t.Fatal("perfect hardware should estimate exactly")
		}
	}
}

func TestBudgets(t *testing.T) {
	if got := TotalTxBudgetMW(); math.Abs(got-DBmToMilliwatts(15)) > 1e-12 {
		t.Errorf("total budget = %g", got)
	}
	if math.Abs(TxBudgetPerSubcarrierMW()*ofdm.NumSubcarriers-TotalTxBudgetMW()) > 1e-12 {
		t.Error("per-subcarrier budget inconsistent")
	}
	// Per-subcarrier SNR sanity: −60 dBm signal → ≈25 dB SNR at the
	// WARP-class noise floor.
	snr := LinearToDB(DBmToMilliwatts(-60) / ofdm.NumSubcarriers / NoisePerSubcarrierMW())
	if math.Abs(snr-25) > 0.5 {
		t.Errorf("per-subcarrier SNR at -60 dBm = %.1f dB", snr)
	}
}

func TestQuickPathLossMonotone(t *testing.T) {
	f := func(d1Raw, d2Raw uint16) bool {
		d1 := 1 + float64(d1Raw%300)/10
		d2 := 1 + float64(d2Raw%300)/10
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		a := Point{0, 0}
		return PathLossDB(a, Point{d1, 0}) <= PathLossDB(a, Point{d2, 0})+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNewDeployment4x2(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDeployment(src.Split(uint64(i)), Scenario4x2)
	}
}
