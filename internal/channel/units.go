// Package channel simulates the indoor wireless propagation environment
// the COPA paper measures with WARP radios: frequency-selective MIMO
// multipath channels (tapped delay line with exponential power-delay
// profile), log-distance path loss with wall attenuation and shadowing,
// office topology generation matching the paper's Fig. 9 envelope,
// temporal channel evolution at a configurable coherence time, and the
// hardware impairments (CSI estimation error, transmit EVM noise, carrier
// leakage) that limit nulling in practice (§2.2).
package channel

import "math"

// Radio and environment constants used throughout the simulator. They
// mirror the paper's experimental setup (§4.1).
const (
	// MaxTxPowerDBm is the total transmit power budget per sender.
	MaxTxPowerDBm = 15.0

	// NoiseFloorDBm is the thermal noise plus receiver noise figure over
	// the full 20 MHz channel: −174 dBm/Hz + 73 dB + 16 dB NF. The high
	// noise figure matches WARP v2-class SDR front ends (commodity Wi-Fi
	// silicon is nearer 7 dB); it places the testbed's post-nulling SINRs
	// in the rate-sensitive region the paper reports (Fig. 4).
	NoiseFloorDBm = -85.0

	// CarrierFrequencyHz is the 2.4 GHz ISM band carrier.
	CarrierFrequencyHz = 2.412e9

	// LeakageFloorDB is the adjacent-carrier leakage relative to a
	// subcarrier's nominal power: even a "dropped" subcarrier radiates
	// this much (Maxim 2829 datasheet; §3.2).
	LeakageFloorDB = -27.0
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// Wavelength returns the carrier wavelength in metres (≈12.5 cm at 2.4 GHz).
func Wavelength() float64 { return SpeedOfLight / CarrierFrequencyHz }

// DBToLinear converts a dB ratio to a linear ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear ratio to dB. Non-positive input maps to -Inf.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// DBmToMilliwatts converts a power in dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts a power in milliwatts to dBm.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// CoherenceTime returns the channel coherence time in seconds for a host
// moving at speed v (m/s): tc = m·λ/v with the paper's conservative
// m = 0.25 (§3.1). Infinite for a static environment.
func CoherenceTime(speedMps float64) float64 {
	if speedMps <= 0 {
		return math.Inf(1)
	}
	const m = 0.25
	return m * Wavelength() / speedMps
}
