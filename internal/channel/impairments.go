package channel

import (
	"math"

	"copa/internal/linalg"
	"copa/internal/rng"
)

// Impairments models the hardware noise sources §2.2 identifies as the
// cause of residual interference after nulling: receiver noise when
// measuring CSI, and transmitter noise/imperfections when sending the
// nulled signal. Both are expressed relative to the channel (CSI error)
// or the transmitted signal (TX EVM).
type Impairments struct {
	// CSIErrorDB is the per-entry CSI estimation error power relative to
	// the true channel entry's average power (dB, negative). It captures
	// receiver noise during channel measurement and any staleness.
	CSIErrorDB float64

	// TxEVMDB is the transmitter error-vector magnitude: uncorrelated
	// noise radiated at this power relative to the intended signal (dB,
	// negative). It bounds how deep a null can be even with perfect CSI.
	TxEVMDB float64

	// StalenessDB is the additional CSI error present by the time a
	// precoder computed from a measurement is actually transmitted: the
	// channel keeps evolving between measurement and use (the paper's
	// WARP pipeline has a 2–3 s lag; a live system has up to a coherence
	// time). Micro-benchmarks that measure nulling immediately after
	// sounding (Fig. 3) see only CSIErrorDB; end-to-end throughput
	// (Figs. 10–13) sees the combined error.
	StalenessDB float64

	// NullVarSigmaDB is the standard deviation (dB) of a log-normal,
	// frequency-correlated multiplier on the CSI error process. §2.2
	// observes that per-subcarrier nulling efficacy "may vary
	// significantly from subcarrier to subcarrier, even though averaged
	// across subcarriers, nulling reduces interference well": the
	// aggregate of front-end effects a Gaussian error cannot capture
	// (phase noise, IQ imbalance, quantization, aging) widens the
	// per-subcarrier null-depth distribution without moving its dB mean.
	NullVarSigmaDB float64
}

// DefaultImpairments reflects a WARP-class radio: CSI measured at ~30 dB
// effective SNR and a −35 dB transmit EVM. Together with the −27 dB
// leakage floor these calibrate nulling to the paper's Fig. 3: ≈27 dB
// mean INR reduction, ≈8 dB collateral SNR loss.
func DefaultImpairments() Impairments {
	return Impairments{CSIErrorDB: -28, TxEVMDB: -30, StalenessDB: -18, NullVarSigmaDB: 9}
}

// PerfectHardware disables all impairments (idealized nulling).
func PerfectHardware() Impairments {
	return Impairments{CSIErrorDB: -300, TxEVMDB: -300, StalenessDB: -300}
}

// Aged returns the impairment set as seen with CSI that is frac of a
// coherence time old (frac = 0 is a fresh measurement, 1 a full coherence
// time): the staleness error power grows linearly, tripling at frac = 1.
// The map is deterministic, which is what makes quantized CSI ages
// cacheable (internal/serve) and sweepable (internal/campaign).
func (imp Impairments) Aged(frac float64) Impairments {
	if frac <= 0 {
		return imp
	}
	out := imp
	out.StalenessDB = LinearToDB(DBToLinear(imp.StalenessDB) * (1 + 3*frac))
	return out
}

// Stale returns the impairment set as seen at transmission time: the CSI
// error grows to include the channel evolution since measurement.
func (imp Impairments) Stale() Impairments {
	out := imp
	combined := DBToLinear(imp.CSIErrorDB) + DBToLinear(imp.StalenessDB)
	out.CSIErrorDB = LinearToDB(combined)
	return out
}

// EstimateCSI returns the noisy channel estimate a sender holds for the
// true link. The error is not white across subcarriers: in practice it is
// dominated by channel evolution between measurement and use (plus
// measurement noise filtered through the same multipath), so it is itself
// a frequency-selective multipath process — drawn here as an independent
// tapped-delay-line channel at CSIErrorDB relative to the link's mean
// antenna-pair gain. This structure matters: it produces contiguous runs
// of subcarriers where nulls formed on the estimate are shallow, which is
// exactly the per-subcarrier variability §2.2 measures (Fig. 4).
func (imp Impairments) EstimateCSI(src *rng.Source, true_ *Link) *Link {
	errGain := DBToLinear(imp.CSIErrorDB) * true_.MeanGainLinear
	errChan := NewLink(src, true_.NRx(), true_.NTx(), errGain)
	factors := imp.nullVarFactors(src, len(true_.Subcarriers))
	est := true_.Clone()
	for k, h := range est.Subcarriers {
		e := errChan.Subcarriers[k]
		f := complex(factors[k], 0)
		for i := range h.Data {
			h.Data[i] += f * e.Data[i]
		}
	}
	// Taps no longer match the perturbed frequency response; the
	// estimate is only used in the frequency domain.
	est.Taps = nil
	return est
}

// nullVarFactors draws the per-subcarrier log-normal amplitude multiplier
// for the CSI error process: a Gaussian dB-process, smoothed over a few
// adjacent subcarriers (front-end effects are band-correlated), with the
// set normalized to unit mean power so CSIErrorDB keeps its meaning as
// the mean error level.
func (imp Impairments) nullVarFactors(src *rng.Source, n int) []float64 {
	out := make([]float64, n)
	if imp.NullVarSigmaDB <= 0 {
		for k := range out {
			out[k] = 1
		}
		return out
	}
	raw := make([]float64, n)
	for k := range raw {
		raw[k] = src.Norm()
	}
	// Moving-average smoothing (window 5), then rescale to the target
	// dB standard deviation.
	const w = 2
	sm := make([]float64, n)
	for k := range sm {
		var sum float64
		cnt := 0
		for d := -w; d <= w; d++ {
			if k+d >= 0 && k+d < n {
				sum += raw[k+d]
				cnt++
			}
		}
		sm[k] = sum / float64(cnt)
	}
	var mean, varsum float64
	for _, v := range sm {
		mean += v
	}
	mean /= float64(n)
	for _, v := range sm {
		varsum += (v - mean) * (v - mean)
	}
	sd := 1.0
	if varsum > 0 {
		sd = math.Sqrt(varsum / float64(n))
	}
	var powSum float64
	for k := range out {
		db := (sm[k] - mean) / sd * imp.NullVarSigmaDB
		out[k] = math.Pow(10, db/20)
		powSum += out[k] * out[k]
	}
	// Normalize mean power to 1.
	scale := math.Sqrt(float64(n) / powSum)
	for k := range out {
		out[k] *= scale
	}
	return out
}

// TxNoiseCovariance returns the covariance scale of the transmitter's EVM
// noise for a sender radiating total power txPowerMW on a subcarrier: the
// noise is white across transmit antennas with this per-antenna variance,
// and propagates through the true channel to every receiver — including
// ones the signal was nulled toward.
func (imp Impairments) TxNoiseCovariance(txPowerMW float64, nTx int) float64 {
	if nTx <= 0 {
		return 0
	}
	return DBToLinear(imp.TxEVMDB) * txPowerMW / float64(nTx)
}

// InterferenceCovariance builds the Nr×Nr covariance matrix of the
// interference a receiver sees from a sender transmitting symbol
// covariance Q (Nt×Nt, typically P·ppᴴ summed over streams) through true
// channel h, plus that sender's TX EVM noise. Used by MMSE SINR
// computation in the precoding package.
func InterferenceCovariance(h *linalg.Matrix, q *linalg.Matrix, txEVMVarPerAntenna float64) *linalg.Matrix {
	// H·Q·Hᴴ + evmVar·H·Hᴴ
	cov := h.Mul(q).Mul(h.H())
	if txEVMVarPerAntenna > 0 {
		hhh := h.Mul(h.H()).Scale(complex(txEVMVarPerAntenna, 0))
		cov = cov.Add(hhh)
	}
	return cov
}
