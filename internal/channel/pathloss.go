package channel

import "math"

// Path-loss model parameters for an indoor office at 2.4 GHz: log-distance
// with exponent 3.0 beyond a 1 m reference, ~40 dB reference loss, light
// internal walls every few metres, and log-normal shadowing.
const (
	// referenceLossDB is the free-space path loss at 1 m, 2.4 GHz.
	referenceLossDB = 40.0

	// pathLossExponent for an indoor office with partitions.
	pathLossExponent = 3.0

	// wallEveryMetres approximates the density of internal partitions:
	// one wall per this many metres of separation.
	wallEveryMetres = 6.0

	// wallLossDB is the attenuation per internal wall.
	wallLossDB = 4.0

	// maxWalls caps the wall count on any path.
	maxWalls = 3

	// shadowingSigmaDB is the standard deviation of log-normal shadowing.
	shadowingSigmaDB = 4.0
)

// Point is a position on the office floor plan, in metres.
type Point struct{ X, Y float64 }

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// PathLossDB returns the deterministic path loss in dB between two points:
// log-distance loss plus wall attenuation (shadowing is added separately
// by the topology generator so it can be drawn reproducibly per link).
func PathLossDB(a, b Point) float64 {
	d := a.Distance(b)
	if d < 1 {
		d = 1
	}
	walls := math.Min(math.Floor(d/wallEveryMetres), maxWalls)
	return referenceLossDB + 10*pathLossExponent*math.Log10(d) + walls*wallLossDB
}

// ReceivedPowerDBm returns the average received power for a transmit power
// txDBm over a path with loss plDB and shadowing shadowDB (positive
// shadowDB means deeper shadow, i.e. less received power).
func ReceivedPowerDBm(txDBm, plDB, shadowDB float64) float64 {
	return txDBm - plDB - shadowDB
}
