package channel

import (
	"math"
	"testing"

	"copa/internal/linalg"
	"copa/internal/rng"
)

func TestStaleCombinesErrors(t *testing.T) {
	imp := Impairments{CSIErrorDB: -28, TxEVMDB: -30, StalenessDB: -18}
	stale := imp.Stale()
	// Combined power: 10^-2.8 + 10^-1.8 ≈ 10^-1.76.
	want := LinearToDB(DBToLinear(-28) + DBToLinear(-18))
	if math.Abs(stale.CSIErrorDB-want) > 1e-9 {
		t.Errorf("stale error %.2f dB, want %.2f", stale.CSIErrorDB, want)
	}
	// Other fields untouched.
	if stale.TxEVMDB != -30 || stale.StalenessDB != -18 {
		t.Error("Stale mutated unrelated fields")
	}
	// Perfect hardware stays essentially perfect.
	p := PerfectHardware().Stale()
	if p.CSIErrorDB > -250 {
		t.Errorf("perfect hardware staleness: %.1f dB", p.CSIErrorDB)
	}
}

func TestNullVarFactorsNormalization(t *testing.T) {
	imp := Impairments{NullVarSigmaDB: 9}
	src := rng.New(5)
	f := imp.nullVarFactors(src, 52)
	if len(f) != 52 {
		t.Fatal("length")
	}
	var pow float64
	spread := false
	for _, v := range f {
		if v <= 0 {
			t.Fatal("non-positive factor")
		}
		pow += v * v
		if v > 1.5 || v < 0.67 {
			spread = true
		}
	}
	if math.Abs(pow/52-1) > 1e-9 {
		t.Errorf("mean power %.3f, want 1", pow/52)
	}
	if !spread {
		t.Error("σ=9 dB factors should vary materially")
	}
	// σ=0: all ones.
	flat := Impairments{}.nullVarFactors(src, 10)
	for _, v := range flat {
		if v != 1 {
			t.Fatal("σ=0 should give unit factors")
		}
	}
}

func TestTxNoiseCovariance(t *testing.T) {
	imp := Impairments{TxEVMDB: -30}
	v := imp.TxNoiseCovariance(10, 4)
	want := DBToLinear(-30) * 10 / 4
	if math.Abs(v-want) > 1e-15 {
		t.Errorf("cov %g want %g", v, want)
	}
	if imp.TxNoiseCovariance(10, 0) != 0 {
		t.Error("zero antennas should give zero")
	}
}

func TestInterferenceCovariance(t *testing.T) {
	h := linalg.FromRows([][]complex128{{1, 0}, {0, 2}})
	q := linalg.Identity(2).Scale(3)
	cov := InterferenceCovariance(h, q, 0.5)
	// H·Q·Hᴴ = diag(3, 12); + 0.5·H·Hᴴ = diag(0.5, 2) → diag(3.5, 14).
	if math.Abs(real(cov.At(0, 0))-3.5) > 1e-12 || math.Abs(real(cov.At(1, 1))-14) > 1e-12 {
		t.Errorf("cov = %v", cov)
	}
}

func TestWithoutRxAntenna(t *testing.T) {
	src := rng.New(7)
	l := NewLink(src, 3, 4, 1)
	r := l.WithoutRxAntenna(1)
	if r.NRx() != 2 || r.NTx() != 4 {
		t.Fatalf("shape %dx%d", r.NRx(), r.NTx())
	}
	for k := range l.Subcarriers {
		for c := 0; c < 4; c++ {
			if r.Subcarriers[k].At(0, c) != l.Subcarriers[k].At(0, c) {
				t.Fatal("row 0 should be preserved")
			}
			if r.Subcarriers[k].At(1, c) != l.Subcarriers[k].At(2, c) {
				t.Fatal("row 2 should shift to row 1")
			}
		}
	}
	if len(r.Taps) != len(l.Taps) {
		t.Error("taps not carried over")
	}
}

func TestMultiDeploymentEvolveAndString(t *testing.T) {
	src := rng.New(9)
	dep, err := NewMultiDeployment(src.Split(1), Scenario4x2, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := dep.H[0][0].Subcarriers[0].Clone()
	dep.Evolve(src.Split(2), 0.1, 0.030)
	if before.Equal(dep.H[0][0].Subcarriers[0], 1e-12) {
		t.Error("Evolve did not move the channels")
	}
	d2 := NewDeployment(src.Split(3), Scenario1x1)
	if d2.String() == "" {
		t.Error("empty String()")
	}
	if got := BudgetForAntennasMW(0); got != TotalTxBudgetMW() {
		t.Errorf("zero antennas budget %g", got)
	}
	if got := BudgetForAntennasMW(4); math.Abs(got-4*TotalTxBudgetMW()) > 1e-12 {
		t.Errorf("4-antenna budget %g", got)
	}
}
