package channel

import "time"

// CSI-age bucketing shared by the serving layer (internal/serve cache
// keys) and the online controller (internal/drift validity horizons).
// Both must agree on where a bucket boundary falls: serve derives a cache
// key from a bucket and drift derives an allocation's validity horizon
// from the same boundary, so an epoch that straddled a bucket would let a
// cached allocation outlive the staleness level it was computed for.

// AgeBucket quantizes a CSI age against the coherence time into one of
// buckets+1 steps: ages in [0, coherence) map linearly onto buckets
// 0..buckets−1 and ages at or beyond one coherence time all land in
// bucket `buckets`. Non-positive ages (and degenerate coherence or
// bucket counts) are bucket 0.
func AgeBucket(age, coherence time.Duration, buckets int) int {
	if age <= 0 || coherence <= 0 || buckets <= 0 {
		return 0
	}
	b := int(int64(buckets) * int64(age) / int64(coherence))
	if b > buckets {
		b = buckets
	}
	return b
}

// BucketStart returns the age at which a bucket begins — the inverse of
// AgeBucket's quantization, used to turn a bucket index back into the
// validity horizon it implies (the bucket after this one starts at
// BucketStart(bucket+1, ...)).
func BucketStart(bucket int, coherence time.Duration, buckets int) time.Duration {
	if bucket <= 0 || buckets <= 0 {
		return 0
	}
	return time.Duration(int64(coherence) * int64(bucket) / int64(buckets))
}

// AgedForBucket returns the impairment set for a quantized CSI-age
// bucket out of `buckets` steps per coherence time: bucket 0 is a fresh
// measurement, bucket `buckets` a full coherence time old (see Aged).
func (imp Impairments) AgedForBucket(bucket, buckets int) Impairments {
	if buckets <= 0 {
		return imp
	}
	return imp.Aged(float64(bucket) / float64(buckets))
}
