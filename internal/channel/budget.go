package channel

import "copa/internal/ofdm"

// NoisePerSubcarrierMW returns the receiver noise power per data
// subcarrier in milliwatts, taking the full-channel noise floor as spread
// evenly over the data subcarriers.
func NoisePerSubcarrierMW() float64 {
	return DBmToMilliwatts(NoiseFloorDBm) / ofdm.NumSubcarriers
}

// TxBudgetPerSubcarrierMW returns the nominal per-subcarrier transmit
// power in milliwatts when the total budget is split equally, which is how
// status-quo Wi-Fi senders operate (§2).
func TxBudgetPerSubcarrierMW() float64 {
	return DBmToMilliwatts(MaxTxPowerDBm) / ofdm.NumSubcarriers
}

// TotalTxBudgetMW returns one RF chain's transmit power in milliwatts.
func TotalTxBudgetMW() float64 { return DBmToMilliwatts(MaxTxPowerDBm) }

// BudgetForAntennasMW returns a sender's total transmit power: each RF
// chain has its own MaxTxPowerDBm power amplifier, so the budget scales
// with the antenna count (§4.3: "the power budget with four antennas is
// 4x higher than in the [single-antenna] scenario").
func BudgetForAntennasMW(nAntennas int) float64 {
	if nAntennas < 1 {
		nAntennas = 1
	}
	return float64(nAntennas) * DBmToMilliwatts(MaxTxPowerDBm)
}
