package channel

import (
	"math"
	"math/cmplx"

	"copa/internal/rng"
)

// MeasureCoherenceTime empirically estimates a link's coherence time the
// way a real system would: sound the channel repeatedly while it evolves,
// correlate each snapshot against the first, and report the lag at which
// the complex temporal autocorrelation decays to 1/e. It both validates
// the Gauss–Markov evolution model (the estimate should match the
// configured coherence time) and provides the online measurement a COPA
// AP would use to size its CSI refresh interval (§3.1).
//
// The link is evolved destructively; pass a Clone if the original matters.
// stepSec is the sounding interval; maxSteps bounds the experiment.
// Returns +Inf if the correlation never decays below 1/e within the
// horizon.
func MeasureCoherenceTime(src *rng.Source, link *Link, coherenceSec, stepSec float64, maxSteps int) float64 {
	ref := link.Clone()
	refPow := 0.0
	for _, h := range ref.Subcarriers {
		for _, v := range h.Data {
			refPow += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	if refPow == 0 {
		return math.Inf(1)
	}
	threshold := 1 / math.E
	for step := 1; step <= maxSteps; step++ {
		link.Evolve(src.Split(uint64(step)), stepSec, coherenceSec)
		var inner complex128
		for k := range ref.Subcarriers {
			a, b := ref.Subcarriers[k], link.Subcarriers[k]
			for i := range a.Data {
				inner += cmplx.Conj(a.Data[i]) * b.Data[i]
			}
		}
		corr := cmplx.Abs(inner) / refPow
		if corr < threshold {
			// Linear interpolation inside the last step would need the
			// previous correlation; the step granularity is the caller's
			// choice of resolution.
			return float64(step) * stepSec
		}
	}
	return math.Inf(1)
}
