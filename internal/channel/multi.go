package channel

import (
	"fmt"

	"copa/internal/rng"
)

// MultiDeployment is a generalization of Deployment to n AP/client pairs
// sharing the floor — the ">2 senders" setting §3.1 discusses. Pair i is
// AP i serving client i; H[i][j] is the channel from AP i to client j.
type MultiDeployment struct {
	Scenario Scenario
	Pairs    int

	AP     []Point
	Client []Point

	// H[i][j]: AP i → client j.
	H [][]*Link

	// APGainDB[i][j] is the mean AP i → AP j link gain (dB), used to
	// decide who can hear whose ITS frames.
	APGainDB [][]float64

	// SignalDBm[j] is client j's mean received power from its own AP.
	SignalDBm []float64
}

// NewMultiDeployment draws n AP/client pairs on the office floor. Each
// pair is placed like a Deployment's: APs spread out, clients near their
// own AP, the usual path loss and shadowing on every AP→client path.
func NewMultiDeployment(src *rng.Source, sc Scenario, n int) (*MultiDeployment, error) {
	if n < 2 {
		return nil, fmt.Errorf("channel: a multi-deployment needs ≥2 pairs, got %d", n)
	}
	d := &MultiDeployment{
		Scenario:  sc,
		Pairs:     n,
		AP:        make([]Point, n),
		Client:    make([]Point, n),
		SignalDBm: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		for attempt := 0; ; attempt++ {
			if i == 0 {
				d.AP[0] = Point{src.Uniform(2, floorWidth-2), src.Uniform(2, floorHeight-2)}
			} else {
				d.AP[i] = randomPointNear(src, d.AP[i-1], minAPSep, maxAPSep)
			}
			d.Client[i] = randomPointNear(src, d.AP[i], minClientDist, maxClientDist)
			sig := ReceivedPowerDBm(MaxTxPowerDBm, PathLossDB(d.AP[i], d.Client[i]), src.Norm()*shadowingSigmaDB)
			if sig >= -70 && sig <= -30 {
				d.SignalDBm[i] = sig
				break
			}
			if attempt > 10000 {
				return nil, fmt.Errorf("channel: multi-deployment placement failed for pair %d", i)
			}
		}
	}
	d.H = make([][]*Link, n)
	d.APGainDB = make([][]float64, n)
	for i := 0; i < n; i++ {
		d.H[i] = make([]*Link, n)
		d.APGainDB[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var rxDBm float64
			if i == j {
				rxDBm = d.SignalDBm[j]
			} else {
				rxDBm = ReceivedPowerDBm(MaxTxPowerDBm, PathLossDB(d.AP[i], d.Client[j]), src.Norm()*shadowingSigmaDB)
			}
			gain := DBToLinear(rxDBm - MaxTxPowerDBm)
			d.H[i][j] = NewLink(src.Split(uint64(1000+i*n+j)), sc.ClientAntennas, sc.APAntennas, gain)
			if i != j {
				d.APGainDB[i][j] = -PathLossDB(d.AP[i], d.AP[j])
			}
		}
	}
	return d, nil
}

// Sub extracts the two-pair view (leader pair a, follower pair b) as a
// standard Deployment, sharing the underlying links.
func (d *MultiDeployment) Sub(a, b int) *Deployment {
	return &Deployment{
		Scenario: d.Scenario,
		AP:       [2]Point{d.AP[a], d.AP[b]},
		Client:   [2]Point{d.Client[a], d.Client[b]},
		H: [2][2]*Link{
			{d.H[a][a], d.H[a][b]},
			{d.H[b][a], d.H[b][b]},
		},
		SignalDBm:       [2]float64{d.SignalDBm[a], d.SignalDBm[b]},
		InterferenceDBm: [2]float64{d.H[b][a].AverageGainDB() + MaxTxPowerDBm, d.H[a][b].AverageGainDB() + MaxTxPowerDBm},
	}
}

// Evolve advances every link by dt seconds at the given coherence time.
func (d *MultiDeployment) Evolve(src *rng.Source, dt, coherence float64) {
	for i := range d.H {
		for j := range d.H[i] {
			d.H[i][j].Evolve(src.Split(uint64(i*d.Pairs+j)), dt, coherence)
		}
	}
}
