package channel

import (
	"fmt"
	"math"

	"copa/internal/rng"
)

// Scenario names an antenna configuration from the paper's evaluation.
type Scenario struct {
	Name           string
	APAntennas     int
	ClientAntennas int
	// Streams is the number of MIMO streams each AP sends to its client
	// when not otherwise constrained (min of client antennas and what
	// the AP can support).
	Streams int
}

// The three scenarios of §4.
var (
	// Scenario1x1: two single-antenna APs, two single-antenna clients.
	Scenario1x1 = Scenario{Name: "1x1", APAntennas: 1, ClientAntennas: 1, Streams: 1}

	// Scenario4x2: the "constrained" case — four-antenna APs can send
	// two streams each and still null at both antennas of the other
	// client.
	Scenario4x2 = Scenario{Name: "4x2", APAntennas: 4, ClientAntennas: 2, Streams: 2}

	// Scenario3x2: the "overconstrained" case — three-antenna APs lack
	// the degrees of freedom to send two streams and null completely.
	Scenario3x2 = Scenario{Name: "3x2", APAntennas: 3, ClientAntennas: 2, Streams: 2}
)

// Office floor-plan dimensions (metres), mirroring the paper's mix of
// open-plan space, offices and corridors.
const (
	floorWidth  = 40.0
	floorHeight = 25.0

	minClientDist = 1.5  // shortest AP→own-client link
	maxClientDist = 13.0 // longest AP→own-client link
	minAPSep      = 4.0  // APs are in different homes/offices
	maxAPSep      = 15.0
)

// Deployment is one concrete topology: two AP/client pairs with all four
// AP→client channels, the AP→AP channel, and the bookkeeping needed to
// reproduce the paper's per-topology statistics.
type Deployment struct {
	Scenario Scenario

	// Node positions on the floor plan.
	AP     [2]Point
	Client [2]Point

	// H[i][j] is the frequency-selective channel from AP i to client j.
	H [2][2]*Link

	// APLink is the channel between the two APs (used by the ITS
	// exchange; both directions via reciprocity).
	APLink *Link

	// SignalDBm[j] is the mean received power at client j from its own
	// AP; InterferenceDBm[j] the mean received power from the other AP.
	// These are the coordinates of one point in Fig. 9.
	SignalDBm       [2]float64
	InterferenceDBm [2]float64
}

// String summarizes the deployment.
func (d *Deployment) String() string {
	return fmt.Sprintf("%s sig=[%.1f %.1f]dBm int=[%.1f %.1f]dBm",
		d.Scenario.Name, d.SignalDBm[0], d.SignalDBm[1],
		d.InterferenceDBm[0], d.InterferenceDBm[1])
}

// randomPointNear picks a point at distance in [lo, hi] from p, uniform in
// angle, clamped to the floor plan.
func randomPointNear(src *rng.Source, p Point, lo, hi float64) Point {
	d := src.Uniform(lo, hi)
	theta := src.Uniform(0, 2*math.Pi)
	q := Point{p.X + d*math.Cos(theta), p.Y + d*math.Sin(theta)}
	q.X = math.Max(0, math.Min(floorWidth, q.X))
	q.Y = math.Max(0, math.Min(floorHeight, q.Y))
	return q
}

// NewDeployment draws one topology for the given scenario. Placement and
// acceptance are calibrated to the paper's methodology (§4.1): short and
// long links both occur, and the signal of interest is usually — but not
// always — stronger than the interference (Fig. 9's envelope).
func NewDeployment(src *rng.Source, sc Scenario) *Deployment {
	for attempt := 0; ; attempt++ {
		d := &Deployment{Scenario: sc}
		d.AP[0] = Point{src.Uniform(2, floorWidth-2), src.Uniform(2, floorHeight-2)}
		d.Client[0] = randomPointNear(src, d.AP[0], minClientDist, maxClientDist)
		d.AP[1] = randomPointNear(src, d.AP[0], minAPSep, maxAPSep)
		d.Client[1] = randomPointNear(src, d.AP[1], minClientDist, maxClientDist)

		// Draw per-link shadowing and compute mean received powers.
		var shadow [2][2]float64
		ok := true
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				shadow[i][j] = src.Norm() * shadowingSigmaDB
				rx := ReceivedPowerDBm(MaxTxPowerDBm, PathLossDB(d.AP[i], d.Client[j]), shadow[i][j])
				if i == j {
					d.SignalDBm[j] = rx
				} else {
					d.InterferenceDBm[j] = rx
				}
			}
		}

		// Keep signal strengths inside the testbed's observed range.
		for j := 0; j < 2; j++ {
			if d.SignalDBm[j] < -70 || d.SignalDBm[j] > -30 {
				ok = false
			}
			if d.InterferenceDBm[j] < -78 || d.InterferenceDBm[j] > -25 {
				ok = false
			}
		}
		// Bias toward signal > interference, without excluding the
		// reverse entirely ("usually, but not always, closer to their
		// own AP").
		if ok {
			for j := 0; j < 2; j++ {
				if d.InterferenceDBm[j] > d.SignalDBm[j] && !src.Bool(0.45) {
					ok = false
				}
			}
		}
		if !ok {
			if attempt > 10000 {
				panic("channel: topology sampler failed to converge")
			}
			continue
		}

		// Draw the frequency-selective channels at the chosen scales.
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				var rxDBm float64
				if i == j {
					rxDBm = d.SignalDBm[j]
				} else {
					rxDBm = d.InterferenceDBm[j]
				}
				gain := DBToLinear(rxDBm - MaxTxPowerDBm)
				d.H[i][j] = NewLink(src.Split(uint64(16+i*2+j)), sc.ClientAntennas, sc.APAntennas, gain)
			}
		}
		apGain := DBToLinear(-PathLossDB(d.AP[0], d.AP[1]))
		d.APLink = NewLink(src.Split(99), sc.APAntennas, sc.APAntennas, apGain)
		return d
	}
}

// ScaleInterference returns a copy of the deployment with both
// cross-channels (AP i → client j≠i) attenuated by deltaDB (negative
// weakens interference). This reproduces the paper's Fig. 12 emulation,
// which re-ran all 4×2 traces with interference reduced 10 dB.
func (d *Deployment) ScaleInterference(deltaDB float64) *Deployment {
	out := *d
	factor := DBToLinear(deltaDB)
	out.H[0][1] = d.H[0][1].Scale(factor)
	out.H[1][0] = d.H[1][0].Scale(factor)
	out.InterferenceDBm[0] = d.InterferenceDBm[0] + deltaDB
	out.InterferenceDBm[1] = d.InterferenceDBm[1] + deltaDB
	return &out
}

// DeploymentAt draws topology i of the testbed identified by (seed,
// scenario). The substream is derived statelessly from (seed, i), so any
// topology can be materialized in isolation — a sharded campaign evaluating
// topology i on any worker, in any order, sees exactly the deployment that
// GenerateTestbed(seed, sc, n)[i] would return.
func DeploymentAt(seed int64, sc Scenario, i int) *Deployment {
	return NewDeployment(rng.NewSub(seed, uint64(i)), sc)
}

// GenerateTestbed draws n independent topologies for a scenario, seeded
// deterministically: the same (seed, scenario, n) always yields the same
// testbed, like re-visiting the same building.
func GenerateTestbed(seed int64, sc Scenario, n int) []*Deployment {
	out := make([]*Deployment, n)
	for i := range out {
		out[i] = DeploymentAt(seed, sc, i)
	}
	return out
}
