package channel

import (
	"testing"

	"copa/internal/rng"
)

// TestRecomputeSubcarrierAllocBudget pins the tap-DFT refresh at zero
// steady-state allocations: the twiddle plan is cached by tap count and
// the frequency-response matrix storage is reused in place.
func TestRecomputeSubcarrierAllocBudget(t *testing.T) {
	l := NewLink(rng.New(9), 2, 4, DBToLinear(-55))
	for k := range l.Subcarriers {
		l.RecomputeSubcarrier(k) // warm the plan cache
	}
	allocs := testing.AllocsPerRun(50, func() {
		for k := range l.Subcarriers {
			l.RecomputeSubcarrier(k)
		}
	})
	if allocs != 0 {
		t.Errorf("RecomputeSubcarrier: %v allocs/run in steady state, want 0", allocs)
	}
}

// TestRecomputeSubcarrierMatchesInitial checks a recompute reproduces the
// link's original frequency response exactly when the taps are unchanged.
func TestRecomputeSubcarrierMatchesInitial(t *testing.T) {
	l := NewLink(rng.New(10), 2, 4, DBToLinear(-55))
	want := make([][]complex128, len(l.Subcarriers))
	for k, h := range l.Subcarriers {
		want[k] = append([]complex128(nil), h.Data...)
	}
	for k := range l.Subcarriers {
		l.RecomputeSubcarrier(k)
		for i, v := range l.Subcarriers[k].Data {
			if v != want[k][i] {
				t.Fatalf("sc %d elem %d drifted: %v != %v", k, i, v, want[k][i])
			}
		}
	}
}
