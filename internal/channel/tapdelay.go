package channel

import (
	"math"
	"math/cmplx"
	"sync"

	"copa/internal/linalg"
	"copa/internal/ofdm"
	"copa/internal/rng"
)

// TDL parameters for an indoor office: 8 resolvable taps at the 50 ns
// sample spacing of a 20 MHz channel with ≈50 ns RMS delay spread. These
// values produce the deep, narrow-band per-subcarrier fades of the paper's
// Fig. 2.
const (
	// NumTaps is the number of resolvable multipath taps.
	NumTaps = 8

	// rmsDelaySpreadTaps is the RMS delay spread expressed in units of
	// the 50 ns sample period.
	rmsDelaySpreadTaps = 1.5
)

// tapPowers returns the exponential power-delay profile, normalized so the
// taps sum to unit power.
func tapPowers() []float64 {
	p := make([]float64, NumTaps)
	var sum float64
	for l := range p {
		p[l] = math.Exp(-float64(l) / rmsDelaySpreadTaps)
		sum += p[l]
	}
	for l := range p {
		p[l] /= sum
	}
	return p
}

// Link is a frequency-selective MIMO channel between one sender and one
// receiver: one Nr×Nt complex matrix per OFDM data subcarrier. Matrix
// entries are amplitude gains: received power on subcarrier k for a unit
// transmit vector x is ‖H[k]·x‖².
type Link struct {
	// Subcarriers[k] is the channel matrix on data subcarrier k.
	Subcarriers []*linalg.Matrix

	// Taps holds the underlying time-domain taps, taps[l] an Nr×Nt
	// matrix, retained so the channel can be evolved in time.
	Taps []*linalg.Matrix

	// MeanGainLinear is the average per-subcarrier power gain of the
	// link (linear, per TX–RX antenna pair), i.e. the path-loss scale
	// the taps were drawn with.
	MeanGainLinear float64

	// plan is the cached DFT twiddle plan for this link's tap count,
	// fetched lazily on the first frequency-response computation.
	plan *dftPlan
}

// dftPlan holds the precomputed DFT twiddle factors for one tap count:
// w[k*taps+tap] = e^{-2πi·bin(k)·tap/64}. Plans are immutable and shared
// process-wide; every link with the same tap count reuses one plan.
type dftPlan struct {
	taps int
	w    []complex128
}

var (
	dftPlanMu sync.Mutex
	dftPlans  map[int]*dftPlan
)

// dftPlanFor returns the (possibly cached) twiddle plan for a tap count.
func dftPlanFor(taps int) *dftPlan {
	dftPlanMu.Lock()
	defer dftPlanMu.Unlock()
	if p, ok := dftPlans[taps]; ok {
		return p
	}
	p := &dftPlan{taps: taps, w: make([]complex128, ofdm.NumSubcarriers*taps)}
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		bin := dataSubcarrierBin(k)
		for tap := 0; tap < taps; tap++ {
			p.w[k*taps+tap] = cmplx.Exp(complex(0, -2*math.Pi*float64(bin)*float64(tap)/ofdm.FFTSize))
		}
	}
	if dftPlans == nil {
		dftPlans = make(map[int]*dftPlan)
	}
	dftPlans[taps] = p
	return p
}

// NRx returns the number of receive antennas.
func (l *Link) NRx() int { return l.Subcarriers[0].Rows }

// NTx returns the number of transmit antennas.
func (l *Link) NTx() int { return l.Subcarriers[0].Cols }

// AntennaCorrelation is the adjacent-element spatial correlation of
// colocated antenna arrays (exponential Kronecker model, ρ^|i−j|).
// Half-wavelength-spaced elements in an indoor office exhibit substantial
// correlation; without it, i.i.d. Rayleigh fading gives MIMO links an
// unrealistically flat effective frequency response, hiding the
// per-subcarrier variability COPA exploits (Fig. 4).
const AntennaCorrelation = 0.4

// correlationRoot returns the Cholesky factor of the n×n exponential
// correlation matrix R[i][j] = ρ^|i−j| (identity for n = 1).
func correlationRoot(n int, rho float64) *linalg.Matrix {
	r := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.Set(i, j, complex(math.Pow(rho, math.Abs(float64(i-j))), 0))
		}
	}
	l, err := r.Cholesky()
	if err != nil {
		// ρ < 1 keeps R positive definite; this cannot happen for the
		// constants used here.
		panic("channel: correlation matrix not PD: " + err.Error())
	}
	return l
}

// NewLink draws a random frequency-selective Nr×Nt link whose average
// per-antenna-pair power gain is gainLinear (e.g. 10^(−pathLossDB/10)).
// Fading is Rayleigh per tap with an exponential power-delay profile and
// Kronecker spatial correlation across both antenna arrays.
func NewLink(src *rng.Source, nRx, nTx int, gainLinear float64) *Link {
	pdp := tapPowers()
	lRx := correlationRoot(nRx, AntennaCorrelation)
	lTx := correlationRoot(nTx, AntennaCorrelation)
	taps := make([]*linalg.Matrix, NumTaps)
	for l := 0; l < NumTaps; l++ {
		g := linalg.NewMatrix(nRx, nTx)
		variance := pdp[l] * gainLinear
		for i := range g.Data {
			g.Data[i] = src.CN(variance)
		}
		// H = L_rx · G · L_txᵀ preserves per-entry variance (diag(R)=1)
		// while correlating rows and columns.
		taps[l] = lRx.Mul(g).Mul(lTx.T())
	}
	link := &Link{Taps: taps, MeanGainLinear: gainLinear}
	link.recomputeFrequencyResponse()
	return link
}

// recomputeFrequencyResponse rebuilds the per-subcarrier matrices from the
// time-domain taps via the DFT over the 64-point FFT grid, evaluated at
// the data subcarrier bins. Existing subcarrier matrices are reused.
func (l *Link) recomputeFrequencyResponse() {
	if len(l.Subcarriers) != ofdm.NumSubcarriers {
		l.Subcarriers = make([]*linalg.Matrix, ofdm.NumSubcarriers)
	}
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		l.RecomputeSubcarrier(k)
	}
}

// RecomputeSubcarrier rebuilds the frequency response of data subcarrier k
// from the time-domain taps using the cached twiddle plan, reusing the
// existing matrix storage when shapes match: allocation-free in steady
// state (e.g. when re-evaluating an evolved channel).
func (l *Link) RecomputeSubcarrier(k int) {
	nRx, nTx := l.Taps[0].Rows, l.Taps[0].Cols
	plan := l.plan
	if plan == nil || plan.taps != len(l.Taps) {
		plan = dftPlanFor(len(l.Taps))
		l.plan = plan
	}
	h := l.Subcarriers[k]
	if h == nil || h.Rows != nRx || h.Cols != nTx {
		h = linalg.NewMatrix(nRx, nTx)
		l.Subcarriers[k] = h
	} else {
		clear(h.Data)
	}
	for tap := range l.Taps {
		w := plan.w[k*plan.taps+tap]
		for i, v := range l.Taps[tap].Data {
			h.Data[i] += v * w
		}
	}
}

// dataSubcarrierBin maps data subcarrier index k ∈ [0, 52) to its FFT bin
// in [-26, 26] skipping DC, mirroring 802.11n's 20 MHz HT layout.
func dataSubcarrierBin(k int) int {
	bin := k - ofdm.NumSubcarriers/2
	if bin >= 0 {
		bin++ // skip DC
	}
	return bin
}

// SubcarrierGainDB returns the power gain in dB of entry (rx, tx) on data
// subcarrier k.
func (l *Link) SubcarrierGainDB(k, rx, tx int) float64 {
	g := cmplx.Abs(l.Subcarriers[k].At(rx, tx))
	return LinearToDB(g * g)
}

// AverageGainDB returns the link's mean per-antenna-pair power gain in dB,
// averaged over subcarriers and antenna pairs.
func (l *Link) AverageGainDB() float64 {
	var sum float64
	n := 0
	for _, h := range l.Subcarriers {
		for _, v := range h.Data {
			sum += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	return LinearToDB(sum / float64(n))
}

// Transpose returns the reciprocal link (receiver and sender roles
// swapped): H_rev[k] = H[k]ᵀ, per over-the-air reciprocity (§3.1).
func (l *Link) Transpose() *Link {
	taps := make([]*linalg.Matrix, len(l.Taps))
	for i, t := range l.Taps {
		taps[i] = t.T()
	}
	out := &Link{Taps: taps, MeanGainLinear: l.MeanGainLinear}
	out.Subcarriers = make([]*linalg.Matrix, len(l.Subcarriers))
	for k, h := range l.Subcarriers {
		out.Subcarriers[k] = h.T()
	}
	return out
}

// Clone deep-copies the link.
func (l *Link) Clone() *Link {
	taps := make([]*linalg.Matrix, len(l.Taps))
	for i, t := range l.Taps {
		taps[i] = t.Clone()
	}
	subs := make([]*linalg.Matrix, len(l.Subcarriers))
	for i, h := range l.Subcarriers {
		subs[i] = h.Clone()
	}
	return &Link{Taps: taps, Subcarriers: subs, MeanGainLinear: l.MeanGainLinear}
}

// Scale multiplies the link's amplitude response by √factor (i.e. its
// power gain by factor), returning a new link. Used for the Fig. 12
// "interference −10 dB" emulation.
func (l *Link) Scale(powerFactor float64) *Link {
	amp := complex(math.Sqrt(powerFactor), 0)
	out := l.Clone()
	for _, t := range out.Taps {
		for i := range t.Data {
			t.Data[i] *= amp
		}
	}
	for _, h := range out.Subcarriers {
		for i := range h.Data {
			h.Data[i] *= amp
		}
	}
	out.MeanGainLinear *= powerFactor
	return out
}

// WithoutRxAntenna returns a copy of the link with receive antenna idx
// removed — the client-side view after COPA's shut-down-antenna (SDA)
// rank reduction in the overconstrained case (§3.4).
func (l *Link) WithoutRxAntenna(idx int) *Link {
	keep := make([]int, 0, l.NRx()-1)
	for r := 0; r < l.NRx(); r++ {
		if r != idx {
			keep = append(keep, r)
		}
	}
	out := &Link{MeanGainLinear: l.MeanGainLinear}
	if l.Taps != nil {
		out.Taps = make([]*linalg.Matrix, len(l.Taps))
		for i, t := range l.Taps {
			out.Taps[i] = t.RowsSlice(keep...)
		}
	}
	out.Subcarriers = make([]*linalg.Matrix, len(l.Subcarriers))
	for i, h := range l.Subcarriers {
		out.Subcarriers[i] = h.RowsSlice(keep...)
	}
	return out
}

// Evolve advances the channel in time by dt seconds under a first-order
// Gauss–Markov model: each tap decorrelates with the channel coherence
// time tc, tap ← ρ·tap + √(1−ρ²)·innovation, preserving per-tap power.
// ρ = exp(−dt/tc) ≈ the envelope autocorrelation decay. The frequency
// response is recomputed.
func (l *Link) Evolve(src *rng.Source, dt, coherenceTime float64) {
	if math.IsInf(coherenceTime, 1) || dt <= 0 {
		return
	}
	l.EvolveRho(src, math.Exp(-dt/coherenceTime))
}

// EvolveRho is the AR(1) evolution step with an explicit per-step tap
// correlation ρ ∈ [0, 1]: tap ← ρ·tap + √(1−ρ²)·innovation, preserving
// per-tap power, with the innovation drawn under the same Kronecker
// spatial correlation as the original realization. Callers that model a
// specific Doppler spectrum (internal/drift uses the Jakes-shaped
// ρ = J₀(2π·f_d·dt)) supply ρ directly instead of the Gauss–Markov
// exp(−dt/tc). ρ ≥ 1 is a no-op — a static channel (speed 0) is not
// touched at all, so its realization stays byte-identical.
func (l *Link) EvolveRho(src *rng.Source, rho float64) {
	if rho >= 1 {
		return
	}
	if rho < 0 {
		rho = 0
	}
	inno := math.Sqrt(1 - rho*rho)
	pdp := tapPowers()
	nRx, nTx := l.Taps[0].Rows, l.Taps[0].Cols
	lRx := correlationRoot(nRx, AntennaCorrelation)
	lTx := correlationRoot(nTx, AntennaCorrelation)
	for tap := 0; tap < NumTaps; tap++ {
		variance := pdp[tap] * l.MeanGainLinear
		g := linalg.NewMatrix(nRx, nTx)
		for i := range g.Data {
			g.Data[i] = src.CN(variance)
		}
		fresh := lRx.Mul(g).Mul(lTx.T())
		m := l.Taps[tap]
		for i := range m.Data {
			m.Data[i] = complex(rho, 0)*m.Data[i] + complex(inno, 0)*fresh.Data[i]
		}
	}
	l.recomputeFrequencyResponse()
}
