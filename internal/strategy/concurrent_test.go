package strategy

import (
	"sync"
	"testing"

	"copa/internal/channel"
	"copa/internal/rng"
)

// TestEvaluatorsConcurrently checks the workspace design's isolation
// guarantee: evaluators do not share scratch, so two of them may run in
// parallel (one per goroutine) and must produce exactly the results a
// serial run does. Run under -race this also proves the DFT plan cache's
// locking is sound.
func TestEvaluatorsConcurrently(t *testing.T) {
	build := func(seed int64) *Evaluator {
		src := rng.New(seed)
		dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
		return NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
	}

	// Serial reference.
	want := make([]map[Kind]Outcome, 2)
	for i := range want {
		outs, err := build(int64(100 + i)).EvaluateAll()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = outs
	}

	// Same evaluations, two goroutines with separate evaluators.
	got := make([]map[Kind]Outcome, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = build(int64(100 + i)).EvaluateAll()
		}(i)
	}
	wg.Wait()

	for i := range got {
		if errs[i] != nil {
			t.Fatalf("evaluator %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("evaluator %d: %d outcomes, want %d", i, len(got[i]), len(want[i]))
		}
		for k, w := range want[i] {
			g, ok := got[i][k]
			if !ok {
				t.Fatalf("evaluator %d: missing %v", i, k)
			}
			if g != w {
				t.Errorf("evaluator %d %v: concurrent run drifted:\n got %+v\nwant %+v", i, k, g, w)
			}
		}
	}
}
