package strategy

import (
	"testing"

	"copa/internal/channel"
	"copa/internal/rng"
)

// TestSingleAntennaConcurrencyIsOFDMA reproduces §4.2's observation about
// the 1×1 scenario: when COPA selects concurrent transmission without
// nulling (impossible with one antenna), what it has actually built is a
// form of OFDMA — the Equi-SINR allocation steers the two APs away from
// each other in frequency, so many subcarriers end up used by only one
// AP.
func TestSingleAntennaConcurrencyIsOFDMA(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		src := rng.New(500 + seed)
		dep := channel.NewDeployment(src.Split(1), channel.Scenario1x1)
		ev := NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
		outs, err := ev.EvaluateAll()
		if err != nil {
			t.Fatal(err)
		}
		choice := Select(ModeMax, outs)
		if choice.Kind != KindConcBF {
			continue
		}
		tx0, tx1, err := ev.TransmissionsFor(choice)
		if err != nil {
			t.Fatal(err)
		}
		found = true

		both, only0, only1, neither := 0, 0, 0, 0
		for k := range tx0.PowerMW {
			a := tx0.PowerMW[k][0] > 0
			b := tx1.PowerMW[k][0] > 0
			switch {
			case a && b:
				both++
			case a:
				only0++
			case b:
				only1++
			default:
				neither++
			}
		}
		t.Logf("seed %d: both=%d only-AP1=%d only-AP2=%d neither=%d",
			seed, both, only0, only1, neither)
		// The OFDMA signature: a meaningful set of subcarriers is
		// exclusive to one AP.
		if only0+only1 == 0 {
			t.Errorf("concurrent 1x1 chose full overlap everywhere; expected frequency separation")
		}
	}
	if !found {
		t.Skip("no 1x1 topology selected concurrency in 40 seeds")
	}
}

// TestConcurrentNullingDropsAreComplementary checks the §3.2 incentive for
// dropping: a subcarrier one AP abandons becomes (nearly)
// interference-free for the other, so drops should not be wasted — the
// peer should usually keep using them.
func TestConcurrentNullingDropsAreComplementary(t *testing.T) {
	checked := 0
	reused, droppedTotal := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		src := rng.New(700 + seed)
		dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
		ev := NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
		if _, err := ev.EvaluateNulling(KindConcNull); err != nil {
			continue
		}
		tx0, tx1, err := ev.TransmissionsFor(Outcome{Kind: KindConcNull})
		if err != nil {
			t.Fatal(err)
		}
		checked++
		for k := range tx0.PowerMW {
			for s := range tx0.PowerMW[k] {
				if tx0.PowerMW[k][s] == 0 {
					droppedTotal++
					for s2 := range tx1.PowerMW[k] {
						if tx1.PowerMW[k][s2] > 0 {
							reused++
							break
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no nulling-feasible topologies")
	}
	if droppedTotal > 0 && float64(reused)/float64(droppedTotal) < 0.5 {
		t.Errorf("only %d/%d dropped cells reused by the peer", reused, droppedTotal)
	}
	t.Logf("dropped cells: %d, reused by peer: %d", droppedTotal, reused)
}
