package strategy

import (
	"fmt"
	"math"
	"os"
	"sort"
	"testing"

	"copa/internal/channel"
	"copa/internal/rng"
)

func TestRegenGolden(t *testing.T) {
	if os.Getenv("REGEN_GOLDEN") == "" {
		t.Skip("set REGEN_GOLDEN=1 to print a fresh golden table")
	}
	for _, name := range []string{"4x2", "1x1", "3x2"} {
		src := rng.New(42)
		dep := channel.NewDeployment(src.Split(1), goldenScenarios[name])
		ev := NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
		outs, err := ev.EvaluateAll()
		if err != nil {
			t.Fatal(err)
		}
		kinds := make([]Kind, 0, len(outs))
		for k := range outs {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		fmt.Printf("\t%q: {\n", name)
		for _, k := range kinds {
			o := outs[k]
			fmt.Printf("\t\t{Kind(%d), %v, %v, %#016x, %#016x, %#016x, %#016x},\n",
				int(k), o.Concurrent, o.SDA,
				math.Float64bits(o.PerClient[0]), math.Float64bits(o.PerClient[1]),
				math.Float64bits(o.Predicted[0]), math.Float64bits(o.Predicted[1]))
		}
		fmt.Printf("\t},\n")
	}
}
