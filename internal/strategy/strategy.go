// Package strategy implements COPA's "choose best strategy" stage (Fig. 8
// and §3.3–§3.5): it evaluates every medium-access strategy available to a
// pair of interfering AP/client pairs — sequential CSMA, COPA-SEQ,
// vanilla nulling, concurrent beamforming with power allocation, and
// concurrent nulling with power allocation (with shut-down-antenna rank
// reduction when the topology is overconstrained) — and selects the
// winner under either the throughput-maximizing or the
// incentive-compatible ("fair") policy.
package strategy

import (
	"fmt"

	"copa/internal/mac"
)

// Kind identifies a medium-access strategy.
type Kind int

// The strategies of Fig. 8 (plus the overconstrained SDA variants).
const (
	// KindCSMA is stock 802.11n: SVD beamforming, equal power on every
	// subcarrier, senders take turns.
	KindCSMA Kind = iota
	// KindCOPASeq is sequential transmission with Equi-SINR power
	// allocation and subcarrier selection.
	KindCOPASeq
	// KindNull is vanilla nulling: concurrent transmission with nulling
	// precoders but equal power and no subcarrier selection.
	KindNull
	// KindConcBF is concurrent transmission with beamforming precoders
	// and Equi-SINR allocation — no nulling (the only concurrent option
	// for single-antenna APs).
	KindConcBF
	// KindConcNull is full COPA concurrency: nulling precoders plus
	// Equi-SINR allocation and subcarrier selection.
	KindConcNull
)

// String names the strategy as in the paper's figures.
func (k Kind) String() string {
	switch k {
	case KindCSMA:
		return "CSMA"
	case KindCOPASeq:
		return "COPA-SEQ"
	case KindNull:
		return "Null"
	case KindConcBF:
		return "Conc-BF"
	case KindConcNull:
		return "Conc-Null"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mode selects the policy for picking among strategies (§3.5).
type Mode int

// Selection policies.
const (
	// ModeMax maximizes aggregate throughput, even if one client ends up
	// worse off than it would be sequentially.
	ModeMax Mode = iota
	// ModeFair is incentive-compatible: a concurrent strategy is chosen
	// only if neither client's throughput falls below what sequential
	// transmission with power allocation would give it.
	ModeFair
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeFair {
		return "fair"
	}
	return "max"
}

// Outcome is one strategy's evaluation on one topology.
type Outcome struct {
	Kind Kind
	// Concurrent reports whether both APs transmit at once.
	Concurrent bool
	// SDA reports whether a receive antenna was shut down (§3.4).
	SDA bool
	// PerClient[j] is client j's effective throughput in bits/s,
	// including airtime share and MAC overhead.
	PerClient [2]float64
	// Predicted mirrors PerClient but computed on the CSI estimates the
	// leader decides from; selection uses Predicted, figures report
	// PerClient (measured on the true channels).
	Predicted [2]float64
}

// Aggregate is the sum of both clients' effective throughputs.
func (o Outcome) Aggregate() float64 { return o.PerClient[0] + o.PerClient[1] }

// PredictedAggregate sums the predicted per-client throughputs.
func (o Outcome) PredictedAggregate() float64 { return o.Predicted[0] + o.Predicted[1] }

// effective converts PHY goodput into effective throughput: airtime share
// (0.5 for alternating sequential senders, 1.0 for concurrent) minus the
// scheme's MAC overhead and the common data-path overhead.
func effective(goodputBps, share, schemeOverhead float64) float64 {
	eff := goodputBps * share * (1 - schemeOverhead - mac.DataOverheadFraction)
	if eff < 0 {
		return 0
	}
	return eff
}

// Select applies the COPA decision rule (§3.3, §3.5) to a set of
// evaluated strategies: among COPA's candidate strategies (COPA-SEQ and
// the concurrent options — vanilla CSMA and vanilla nulling are baselines,
// not candidates), pick the aggregate-throughput maximizer. In ModeFair a
// concurrent candidate is admissible only if, on predicted throughputs,
// neither client does worse than under COPA-SEQ. Selection is on
// Predicted values (the leader only knows estimates).
func Select(mode Mode, outcomes map[Kind]Outcome) Outcome {
	seq, ok := outcomes[KindCOPASeq]
	if !ok {
		panic("strategy: COPA-SEQ outcome is required for selection")
	}
	best := seq
	defer func() {
		mSelections.Inc()
		if mode >= 0 && int(mode) < len(selectedKinds) && best.Kind >= 0 && int(best.Kind) < len(selectedKinds[0]) {
			selectedKinds[mode][best.Kind].Inc()
		}
	}()
	for _, k := range []Kind{KindConcBF, KindConcNull} {
		o, ok := outcomes[k]
		if !ok {
			continue
		}
		if mode == ModeFair {
			if o.Predicted[0] < seq.Predicted[0] || o.Predicted[1] < seq.Predicted[1] {
				continue
			}
		}
		if o.PredictedAggregate() > best.PredictedAggregate() {
			best = o
		}
	}
	return best
}
