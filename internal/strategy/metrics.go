package strategy

import "copa/internal/obs"

// slug converts a Kind to a stable metric-name fragment.
func slug(k Kind) string {
	switch k {
	case KindCSMA:
		return "csma"
	case KindCOPASeq:
		return "copa_seq"
	case KindNull:
		return "null"
	case KindConcBF:
		return "conc_bf"
	case KindConcNull:
		return "conc_null"
	}
	return "unknown"
}

// Pre-resolved handles, indexed by Kind (and Mode for selections) so
// the evaluator never builds a metric name at run time.
var (
	evalTimers    [KindConcNull + 1]*obs.Timer
	selectedKinds [2][KindConcNull + 1]*obs.Counter

	// mEvalAllSeconds times one full EvaluateAll pass over a topology.
	mEvalAllSeconds = obs.T("copa.strategy.evaluate_all_seconds")
	// mNullingInfeasible counts topologies where no nulling plan exists.
	mNullingInfeasible = obs.C("copa.strategy.nulling_infeasible")
	// mSelections counts Select invocations across both modes.
	mSelections = obs.C("copa.strategy.selections")
)

func init() {
	for k := KindCSMA; k <= KindConcNull; k++ {
		evalTimers[k] = obs.T("copa.strategy.eval_seconds." + slug(k))
		for _, m := range []Mode{ModeMax, ModeFair} {
			selectedKinds[m][k] = obs.C("copa.strategy.selected." + m.String() + "." + slug(k))
		}
	}
}
