package strategy

import (
	"math"
	"testing"

	"copa/internal/channel"
	"copa/internal/precoding"
	"copa/internal/rng"
)

func evaluatorFor(t *testing.T, seed int64, sc channel.Scenario) *Evaluator {
	t.Helper()
	src := rng.New(seed)
	dep := channel.NewDeployment(src.Split(1), sc)
	return NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
}

func TestEvaluateCSMABasics(t *testing.T) {
	ev := evaluatorFor(t, 1, channel.Scenario4x2)
	o, err := ev.EvaluateCSMA()
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindCSMA || o.Concurrent || o.SDA {
		t.Errorf("outcome flags: %+v", o)
	}
	// 4×2 sequential: aggregate bounded by 2×65 Mb/s halved, less
	// overhead — and strictly positive on a healthy topology.
	if o.Aggregate() <= 0 || o.Aggregate() > 130e6 {
		t.Errorf("aggregate = %.1f Mb/s", o.Aggregate()/1e6)
	}
}

func TestCOPASeqAtLeastCSMA(t *testing.T) {
	// COPA-SEQ starts from CSMA's configuration and only reallocates
	// power, so across topologies it should essentially never lose
	// (modulo CSI noise) — §4.2 says it always wins in their testbed.
	losses := 0
	for seed := int64(0); seed < 8; seed++ {
		ev := evaluatorFor(t, 10+seed, channel.Scenario4x2)
		csma, err := ev.EvaluateCSMA()
		if err != nil {
			t.Fatal(err)
		}
		seq, err := ev.EvaluateCOPASeq()
		if err != nil {
			t.Fatal(err)
		}
		// Compare PHY conditions only: same airtime model except the
		// ITS overhead, so require no catastrophic loss.
		if seq.Aggregate() < csma.Aggregate()*0.92 {
			losses++
		}
	}
	if losses > 1 {
		t.Errorf("COPA-SEQ materially lost to CSMA in %d/8 topologies", losses)
	}
}

func TestNullingInfeasibleFor1x1(t *testing.T) {
	ev := evaluatorFor(t, 3, channel.Scenario1x1)
	if _, err := ev.EvaluateNulling(KindNull); err == nil {
		t.Error("nulling should be infeasible for 1x1")
	}
	out, err := ev.EvaluateAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out[KindNull]; ok {
		t.Error("1x1 outcome set should not contain Null")
	}
	if _, ok := out[KindConcNull]; ok {
		t.Error("1x1 outcome set should not contain Conc-Null")
	}
	for _, k := range []Kind{KindCSMA, KindCOPASeq, KindConcBF} {
		if _, ok := out[k]; !ok {
			t.Errorf("1x1 missing %v", k)
		}
	}
}

func TestNulling4x2NoSDA(t *testing.T) {
	ev := evaluatorFor(t, 4, channel.Scenario4x2)
	o, err := ev.EvaluateNulling(KindConcNull)
	if err != nil {
		t.Fatal(err)
	}
	if o.SDA {
		t.Error("4x2 is fully constrained; no SDA expected")
	}
	if !o.Concurrent {
		t.Error("nulling outcome must be concurrent")
	}
}

func TestNulling3x2UsesSDA(t *testing.T) {
	ev := evaluatorFor(t, 5, channel.Scenario3x2)
	o, err := ev.EvaluateNulling(KindNull)
	if err != nil {
		t.Fatal(err)
	}
	if !o.SDA {
		t.Error("3x2 should trigger shut-down-antenna")
	}
	if o.Aggregate() < 0 {
		t.Error("negative aggregate")
	}
}

func TestEvaluateAll4x2HasEverything(t *testing.T) {
	ev := evaluatorFor(t, 6, channel.Scenario4x2)
	out, err := ev.EvaluateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{KindCSMA, KindCOPASeq, KindNull, KindConcBF, KindConcNull} {
		if _, ok := out[k]; !ok {
			t.Errorf("missing %v", k)
		}
	}
}

func TestSelectMaxPicksAggregateWinner(t *testing.T) {
	outs := map[Kind]Outcome{
		KindCOPASeq:  {Kind: KindCOPASeq, PerClient: [2]float64{30e6, 30e6}, Predicted: [2]float64{30e6, 30e6}},
		KindConcNull: {Kind: KindConcNull, Concurrent: true, PerClient: [2]float64{80e6, 10e6}, Predicted: [2]float64{80e6, 10e6}},
	}
	got := Select(ModeMax, outs)
	if got.Kind != KindConcNull {
		t.Errorf("max mode picked %v", got.Kind)
	}
}

func TestSelectFairRejectsLosers(t *testing.T) {
	outs := map[Kind]Outcome{
		KindCOPASeq:  {Kind: KindCOPASeq, PerClient: [2]float64{30e6, 30e6}, Predicted: [2]float64{30e6, 30e6}},
		KindConcNull: {Kind: KindConcNull, Concurrent: true, PerClient: [2]float64{80e6, 10e6}, Predicted: [2]float64{80e6, 10e6}},
	}
	got := Select(ModeFair, outs)
	if got.Kind != KindCOPASeq {
		t.Errorf("fair mode picked %v despite client 1 losing", got.Kind)
	}
	// If nobody loses, fair mode embraces concurrency.
	outs[KindConcNull] = Outcome{Kind: KindConcNull, Concurrent: true,
		PerClient: [2]float64{50e6, 35e6}, Predicted: [2]float64{50e6, 35e6}}
	got = Select(ModeFair, outs)
	if got.Kind != KindConcNull {
		t.Errorf("fair mode rejected a win-win: %v", got.Kind)
	}
}

func TestSelectFairNeverBelowSeq(t *testing.T) {
	// Property over real evaluations: the fair choice never predicts a
	// client below its COPA-SEQ throughput.
	for seed := int64(0); seed < 6; seed++ {
		ev := evaluatorFor(t, 40+seed, channel.Scenario4x2)
		outs, err := ev.EvaluateAll()
		if err != nil {
			t.Fatal(err)
		}
		choice := Select(ModeFair, outs)
		seq := outs[KindCOPASeq]
		for j := 0; j < 2; j++ {
			if choice.Predicted[j] < seq.Predicted[j]-1 {
				t.Errorf("seed %d: fair choice predicts client %d at %.1f < seq %.1f Mb/s",
					seed, j, choice.Predicted[j]/1e6, seq.Predicted[j]/1e6)
			}
		}
	}
}

func TestSelectMaxAtLeastFair(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ev := evaluatorFor(t, 60+seed, channel.Scenario4x2)
		outs, err := ev.EvaluateAll()
		if err != nil {
			t.Fatal(err)
		}
		max := Select(ModeMax, outs)
		fair := Select(ModeFair, outs)
		if max.PredictedAggregate() < fair.PredictedAggregate()-1 {
			t.Errorf("seed %d: max %.1f < fair %.1f Mb/s", seed,
				max.PredictedAggregate()/1e6, fair.PredictedAggregate()/1e6)
		}
	}
}

func TestMultiDecoderAtLeastSingle(t *testing.T) {
	ev := evaluatorFor(t, 7, channel.Scenario4x2)
	single, err := ev.EvaluateCSMA()
	if err != nil {
		t.Fatal(err)
	}
	ev.MultiDecoder = true
	multi, err := ev.EvaluateCSMA()
	if err != nil {
		t.Fatal(err)
	}
	if multi.Aggregate() < single.Aggregate()*0.98 {
		t.Errorf("multi-decoder %.1f < single %.1f Mb/s",
			multi.Aggregate()/1e6, single.Aggregate()/1e6)
	}
}

func TestOutcomeHelpers(t *testing.T) {
	o := Outcome{PerClient: [2]float64{1, 2}, Predicted: [2]float64{3, 4}}
	if o.Aggregate() != 3 || o.PredictedAggregate() != 7 {
		t.Error("aggregate helpers wrong")
	}
	if effective(100, 0.5, 0.1) >= 50 {
		t.Error("effective must subtract overhead")
	}
	if effective(100, 1, 2) != 0 {
		t.Error("effective must clamp at zero")
	}
	if math.Signbit(effective(0, 1, 0)) {
		t.Error("effective(0) should be +0")
	}
}

func TestKindModeStrings(t *testing.T) {
	if KindCSMA.String() != "CSMA" || KindConcNull.String() != "Conc-Null" {
		t.Error("kind strings")
	}
	if ModeFair.String() != "fair" || ModeMax.String() != "max" {
		t.Error("mode strings")
	}
}

func TestNewEvaluatorFromCSIAndMeasure(t *testing.T) {
	// The protocol path: an evaluator built from estimates only, whose
	// Predicted and PerClient coincide, then re-measured on a real
	// deployment.
	src := rng.New(81)
	dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
	imp := channel.DefaultImpairments()
	var est [2][2]*channel.Link
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			est[i][j] = imp.EstimateCSI(src.Split(uint64(10+i*2+j)), dep.H[i][j])
		}
	}
	ev := NewEvaluatorFromCSI(channel.Scenario4x2, est, imp)
	out, err := ev.EvaluateCSMA()
	if err != nil {
		t.Fatal(err)
	}
	if out.Aggregate() <= 0 {
		t.Error("no throughput")
	}
	tx0, tx1, err := ev.TransmissionsFor(out)
	if err != nil {
		t.Fatal(err)
	}
	measured := ev.MeasureOnDeployment(dep, [2]*precoding.Transmission{tx0, tx1}, false, 0.03)
	if measured[0] <= 0 || measured[1] <= 0 {
		t.Errorf("measured = %v", measured)
	}
}

func TestEvaluateCSMADirectMapWorseOrEqual(t *testing.T) {
	ev := evaluatorFor(t, 91, channel.Scenario4x2)
	bf, err := ev.EvaluateCSMA()
	if err != nil {
		t.Fatal(err)
	}
	dm, err := ev.EvaluateCSMADirectMap()
	if err != nil {
		t.Fatal(err)
	}
	if dm.Aggregate() > bf.Aggregate()*1.05 {
		t.Errorf("direct map (%.1f) should not beat beamforming (%.1f)",
			dm.Aggregate()/1e6, bf.Aggregate()/1e6)
	}
}

func TestKindStringsComplete(t *testing.T) {
	for _, k := range []Kind{KindCSMA, KindCOPASeq, KindNull, KindConcBF, KindConcNull} {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("kind %d string %q", int(k), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind fallback")
	}
	if Mode(9).String() != "max" {
		t.Error("unknown mode should read as max")
	}
}
