package strategy

import (
	"math"
	"sort"
	"testing"

	"copa/internal/channel"
	"copa/internal/rng"
)

// goldenRow pins one strategy outcome on a fixed-seed deployment.
type goldenRow struct {
	kind      Kind
	conc, sda bool
	pc0, pc1  uint64 // math.Float64bits of PerClient
	pr0, pr1  uint64 // math.Float64bits of Predicted
}

// goldenOutcomes pin every outcome field of the fixed-seed deployments
// to the last bit. They were captured with:
//
//	src := rng.New(42)
//	dep := channel.NewDeployment(src.Split(1), sc)
//	ev := NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
//	outs, _ := ev.EvaluateAll()
//
// and recording math.Float64bits of every outcome field. Any drift here
// means a floating-point operation was reordered somewhere in the
// pipeline and must be either reverted or deliberately re-baselined.
//
// Re-baseline note (batched eigensolver kernels, DESIGN §13): the 4x2
// and 3x2 rows were re-captured when precoding moved to the batched
// Gram-eig SVD path. The batched kernels compute the same orthonormal
// factors via a different (closed-form / batched-Jacobi) operation
// order, which shifts precoder entries by O(1e-8) and the throughput
// outcomes below by a few ulps. Equivalence to the scalar reference is
// enforced separately by internal/precoding's kernel-equivalence suite
// (kernelEquivTol = 1e-6) in the CI kernel-equivalence matrix. The 1x1
// rows were unchanged by the re-baseline. To re-capture after another
// deliberate numeric change: REGEN_GOLDEN=1 go test ./internal/strategy
// -run TestRegenGolden -v.
var goldenOutcomes = map[string][]goldenRow{
	"4x2": {
		{Kind(0), false, false, 0x4188b32d3f672070, 0x418b6210c0d877a6, 0x41889cba9b5ea9c2, 0x418b62110568b3d3},
		{Kind(1), false, false, 0x418a6ec9fc50bdae, 0x418b222856172067, 0x418a6c7ee7882ba9, 0x418b22285617209d},
		{Kind(2), true, false, 0x4149424aa76c688a, 0x418563bcdfab73b0, 0x413eb686d9f40d71, 0x418701b79effa543},
		{Kind(3), true, false, 0x41685f7b308d43ae, 0x4184c7bff010656e, 0x41694e140be3d6b7, 0x41867e67ef943c1e},
		{Kind(4), true, false, 0x417275cca5f9aff3, 0x4191a6f8b2e2ad23, 0x41782b7673a4d0da, 0x4191f90c4d18eb0d},
	},
	"1x1": {
		{Kind(0), false, false, 0x415e43a395259f04, 0x4168b8a383f25896, 0x4160d731ae9c5492, 0x416dc5c690075f93},
		{Kind(1), false, false, 0x41611d429649df4d, 0x417a0f4eb9b4635d, 0x4168beded158b56a, 0x417a13a2302c82c0},
		{Kind(3), true, false, 0x41555d5cefa1615d, 0x4170da2f6eb8b822, 0x415562df47bf84ff, 0x4170d9c4b26e8511},
	},
	"3x2": {
		{Kind(0), false, false, 0x4184c294ec7432d7, 0x41889edb1675ce0c, 0x4185120e89e61644, 0x4188a0ea102d1707},
		{Kind(1), false, false, 0x4186f54384bc7463, 0x418b220d36161c79, 0x4186edcb8ceeb37e, 0x418b2213d0c02ed7},
		{Kind(2), true, true, 0x415727a8ae5bc1d7, 0x41800a9a1e131e18, 0x415a60ca5eae7504, 0x4180089c140fd095},
		{Kind(3), true, false, 0x41514f7450a4a8e2, 0x417a951fece6ffaa, 0x4150e991af60af6d, 0x417a8e0f5fd9b2b8},
		{Kind(4), true, true, 0x4178f4cfd104e678, 0x418ab2ca153c5eee, 0x4174701b93398848, 0x418b3920045f5abe},
	},
}

var goldenScenarios = map[string]channel.Scenario{
	"4x2": channel.Scenario4x2,
	"1x1": channel.Scenario1x1,
	"3x2": channel.Scenario3x2,
}

// fmaProbe holds operands chosen so that a*b+c is exactly -1 when the
// compiler contracts it into a fused multiply-add and exactly 0 when the
// product is rounded first: (2²⁷+1)(2²⁷−1) = 2⁵⁴−1 rounds to 2⁵⁴ in
// float64. Package-level vars keep the expression out of constant folding
// so it is evaluated by the same codegen the pipeline gets.
var fmaProbe = struct{ a, b, c float64 }{0x1p27 + 1, 0x1p27 - 1, -0x1p54}

// fmaContracted reports whether this build fuses a*b+c. True on
// FMA-native GOARCHes (arm64, ppc64, s390x) and on amd64 when built with
// GOAMD64=v3 or higher; false on default amd64 builds. Probed at runtime
// rather than keyed on runtime.GOARCH so the golden comparison stays
// bit-exact precisely when the codegen makes that possible.
var fmaContracted = fmaProbe.a*fmaProbe.b+fmaProbe.c != 0

// matchBits reports whether got reproduces the pinned bits. On builds
// without multiply-add contraction the match must be exact; on FMA
// builds the compiler may contract a*b+c, so a tight relative tolerance
// is used instead.
func matchBits(got float64, want uint64) bool {
	if !fmaContracted {
		return math.Float64bits(got) == want
	}
	w := math.Float64frombits(want)
	if got == w {
		return true
	}
	return math.Abs(got-w) <= 1e-9*math.Max(math.Abs(got), math.Abs(w))
}

// TestGoldenOutcomes proves the allocation-free evaluation path is
// numerically identical to the seed implementation: same strategies
// feasible, same Concurrent/SDA flags, same per-client and predicted
// throughputs to the last bit (on amd64).
func TestGoldenOutcomes(t *testing.T) {
	for name, rows := range goldenOutcomes {
		t.Run(name, func(t *testing.T) {
			src := rng.New(42)
			dep := channel.NewDeployment(src.Split(1), goldenScenarios[name])
			ev := NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
			outs, err := ev.EvaluateAll()
			if err != nil {
				t.Fatalf("EvaluateAll: %v", err)
			}
			kinds := make([]Kind, 0, len(outs))
			for k := range outs {
				kinds = append(kinds, k)
			}
			sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
			if len(kinds) != len(rows) {
				t.Fatalf("got %d outcomes, want %d", len(kinds), len(rows))
			}
			for i, row := range rows {
				if kinds[i] != row.kind {
					t.Fatalf("outcome %d: kind %v, want %v", i, kinds[i], row.kind)
				}
				o := outs[row.kind]
				if o.Concurrent != row.conc || o.SDA != row.sda {
					t.Errorf("%v: conc=%v sda=%v, want conc=%v sda=%v",
						row.kind, o.Concurrent, o.SDA, row.conc, row.sda)
				}
				checks := []struct {
					name string
					got  float64
					want uint64
				}{
					{"PerClient[0]", o.PerClient[0], row.pc0},
					{"PerClient[1]", o.PerClient[1], row.pc1},
					{"Predicted[0]", o.Predicted[0], row.pr0},
					{"Predicted[1]", o.Predicted[1], row.pr1},
				}
				for _, c := range checks {
					if !matchBits(c.got, c.want) {
						t.Errorf("%v %s = %v (bits %#x), want bits %#x (%v)",
							row.kind, c.name, c.got, math.Float64bits(c.got),
							c.want, math.Float64frombits(c.want))
					}
				}
			}
		})
	}
}
