package strategy

import (
	"math"
	"runtime"
	"sort"
	"testing"

	"copa/internal/channel"
	"copa/internal/rng"
)

// goldenRow pins one strategy outcome on a fixed-seed deployment.
type goldenRow struct {
	kind      Kind
	conc, sda bool
	pc0, pc1  uint64 // math.Float64bits of PerClient
	pr0, pr1  uint64 // math.Float64bits of Predicted
}

// goldenOutcomes were captured from the seed implementation (before the
// workspace refactor) with:
//
//	src := rng.New(42)
//	dep := channel.NewDeployment(src.Split(1), sc)
//	ev := NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
//	outs, _ := ev.EvaluateAll()
//
// and recording math.Float64bits of every outcome field. The refactor is
// required to be bit-for-bit identical, so any drift here means a
// floating-point operation was reordered somewhere in the pipeline.
var goldenOutcomes = map[string][]goldenRow{
	"4x2": {
		{Kind(0), false, false, 0x4188b32d3f672084, 0x418b6210c0d877a6, 0x41889cba9b5ea9c3, 0x418b62110568b3d3},
		{Kind(1), false, false, 0x418a6ec9fc50bdaf, 0x418b222856172067, 0x418a6c7ee7882ba2, 0x418b22285617209d},
		{Kind(2), true, false, 0x4149424aa76c6f94, 0x418563bcdfab73b0, 0x413eb686d9f40d26, 0x418701b79effa2a5},
		{Kind(3), true, false, 0x41685f7b308d4299, 0x4184c7bff0106740, 0x41694e140be3d6ac, 0x41867e67ef943e35},
		{Kind(4), true, false, 0x417275cca5f9aff1, 0x4191a6f8b2e2ad0c, 0x41782b7673a4d136, 0x4191f90c4d18eb0e},
	},
	"1x1": {
		{Kind(0), false, false, 0x415e43a395259f04, 0x4168b8a383f25896, 0x4160d731ae9c5492, 0x416dc5c690075f93},
		{Kind(1), false, false, 0x41611d429649df4d, 0x417a0f4eb9b4635d, 0x4168beded158b56a, 0x417a13a2302c82c0},
		{Kind(3), true, false, 0x41555d5cefa1615d, 0x4170da2f6eb8b822, 0x415562df47bf84ff, 0x4170d9c4b26e8511},
	},
	"3x2": {
		{Kind(0), false, false, 0x4184c294ec7432eb, 0x41889edb1675ce03, 0x4185120e89e6163d, 0x4188a0ea102d170b},
		{Kind(1), false, false, 0x4186f54384bc7461, 0x418b220d36161c79, 0x4186edcb8ceeb381, 0x418b2213d0c02ed7},
		{Kind(2), true, true, 0x415727a8ae5bc1e8, 0x41800a9a1e131e18, 0x415a60ca5eae7510, 0x4180089c140fd094},
		{Kind(3), true, false, 0x41514f7450a4a8aa, 0x417a951fece6ffa9, 0x4150e991af60af1f, 0x417a8e0f5fd9b2c1},
		{Kind(4), true, true, 0x4178f4cfd104e660, 0x418ab2ca153c5efa, 0x4174701b933987fa, 0x418b3920045f5ad0},
	},
}

var goldenScenarios = map[string]channel.Scenario{
	"4x2": channel.Scenario4x2,
	"1x1": channel.Scenario1x1,
	"3x2": channel.Scenario3x2,
}

// matchBits reports whether got reproduces the pinned bits. On amd64 Go
// never fuses multiply-adds, so the match must be exact; on FMA targets
// (arm64, ppc64, s390x) the compiler may contract a*b+c, so a tight
// relative tolerance is used instead.
func matchBits(got float64, want uint64) bool {
	if runtime.GOARCH == "amd64" {
		return math.Float64bits(got) == want
	}
	w := math.Float64frombits(want)
	if got == w {
		return true
	}
	return math.Abs(got-w) <= 1e-9*math.Max(math.Abs(got), math.Abs(w))
}

// TestGoldenOutcomes proves the allocation-free evaluation path is
// numerically identical to the seed implementation: same strategies
// feasible, same Concurrent/SDA flags, same per-client and predicted
// throughputs to the last bit (on amd64).
func TestGoldenOutcomes(t *testing.T) {
	for name, rows := range goldenOutcomes {
		t.Run(name, func(t *testing.T) {
			src := rng.New(42)
			dep := channel.NewDeployment(src.Split(1), goldenScenarios[name])
			ev := NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
			outs, err := ev.EvaluateAll()
			if err != nil {
				t.Fatalf("EvaluateAll: %v", err)
			}
			kinds := make([]Kind, 0, len(outs))
			for k := range outs {
				kinds = append(kinds, k)
			}
			sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
			if len(kinds) != len(rows) {
				t.Fatalf("got %d outcomes, want %d", len(kinds), len(rows))
			}
			for i, row := range rows {
				if kinds[i] != row.kind {
					t.Fatalf("outcome %d: kind %v, want %v", i, kinds[i], row.kind)
				}
				o := outs[row.kind]
				if o.Concurrent != row.conc || o.SDA != row.sda {
					t.Errorf("%v: conc=%v sda=%v, want conc=%v sda=%v",
						row.kind, o.Concurrent, o.SDA, row.conc, row.sda)
				}
				checks := []struct {
					name string
					got  float64
					want uint64
				}{
					{"PerClient[0]", o.PerClient[0], row.pc0},
					{"PerClient[1]", o.PerClient[1], row.pc1},
					{"Predicted[0]", o.Predicted[0], row.pr0},
					{"Predicted[1]", o.Predicted[1], row.pr1},
				}
				for _, c := range checks {
					if !matchBits(c.got, c.want) {
						t.Errorf("%v %s = %v (bits %#x), want bits %#x (%v)",
							row.kind, c.name, c.got, math.Float64bits(c.got),
							c.want, math.Float64frombits(c.want))
					}
				}
			}
		})
	}
}
