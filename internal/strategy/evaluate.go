package strategy

import (
	"errors"
	"fmt"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/rng"
)

// Evaluator evaluates every strategy on one topology. Precoders and power
// allocations are always computed from noisy CSI estimates (what the
// leader actually knows); outcomes are then measured both on those
// estimates (Predicted — what the leader decides from) and on the true
// channels (PerClient — what the clients actually experience).
type Evaluator struct {
	// Truth is the physical topology.
	Truth *channel.Deployment
	// Est[i][j] is the estimated channel AP i → client j.
	Est [2][2]*channel.Link
	// Impairments used both for CSI estimation and TX noise.
	Impairments channel.Impairments
	// Alloc configures the power allocation iteration.
	Alloc power.Config
	// Overhead is the MAC overhead model.
	Overhead mac.OverheadModel
	// Coherence is the channel coherence time used to amortize ITS
	// payloads (the paper evaluates with 30 ms).
	Coherence time.Duration
	// MultiDecoder switches throughput prediction to one decoder per
	// subcarrier (Fig. 14).
	MultiDecoder bool

	// tx remembers the transmissions computed for each evaluated
	// strategy so a selected outcome can actually be transmitted.
	tx map[Kind][2]*precoding.Transmission

	// ws is the evaluator's scratch arena: SINR evaluation, power
	// allocation, and precoder construction all carve their scratch from
	// it, so repeated evaluations are allocation-free in steady state. It
	// is lazily created and makes the evaluator single-goroutine (use one
	// Evaluator per goroutine).
	ws *precoding.Workspace
	// bf caches SVD beamforming precoders by stream count: CSMA,
	// COPA-SEQ, and ConcBF all beamform from the same estimates, so the
	// SVDs only need to run once. Valid because Est is fixed after
	// construction.
	bf map[int][2]*precoding.Precoder
	// nulls caches the nulling plan and setup per follower designation:
	// KindNull and KindConcNull share precoders and reduced link sets.
	nulls map[int]*nullingState
}

// DefaultCoherence is the paper's evaluation setting (§4.1).
const DefaultCoherence = 30 * time.Millisecond

// NewEvaluator estimates CSI for all four links of the deployment and
// returns a ready evaluator. src seeds the CSI measurement noise.
func NewEvaluator(dep *channel.Deployment, imp channel.Impairments, src *rng.Source) *Evaluator {
	ev := &Evaluator{
		Truth:       dep,
		Impairments: imp,
		Alloc:       power.DefaultConfig(),
		Overhead:    mac.DefaultOverheadModel(),
		Coherence:   DefaultCoherence,
	}
	ev.Alloc.Impairments = imp
	// End-to-end evaluation sees stale CSI: the channel has moved on by
	// the time a precoder computed from a measurement hits the air.
	stale := imp.Stale()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			ev.Est[i][j] = stale.EstimateCSI(src.Split(uint64(i*2+j)), dep.H[i][j])
		}
	}
	return ev
}

// NewEvaluatorFromCSI builds an evaluator for a node that only has channel
// estimates (no ground truth) — the leader AP's situation during an ITS
// exchange. "Truth" is taken to be the estimates themselves, so PerClient
// and Predicted coincide; callers measure realized throughput separately
// once the transmissions meet the physical channel.
func NewEvaluatorFromCSI(sc channel.Scenario, est [2][2]*channel.Link, imp channel.Impairments) *Evaluator {
	dep := &channel.Deployment{Scenario: sc, H: est}
	ev := &Evaluator{
		Truth:       dep,
		Est:         est,
		Impairments: imp,
		Alloc:       power.DefaultConfig(),
		Overhead:    mac.DefaultOverheadModel(),
		Coherence:   DefaultCoherence,
	}
	ev.Alloc.Impairments = imp
	return ev
}

// MeasureOnDeployment measures the effective per-client throughputs a pair
// of transmissions achieves on a ground-truth deployment, with the given
// airtime model. Used to score protocol-negotiated transmissions after
// the fact.
func (ev *Evaluator) MeasureOnDeployment(dep *channel.Deployment, tx [2]*precoding.Transmission, concurrent bool, schemeOverhead float64) [2]float64 {
	l := links{{dep.H[0][0], dep.H[0][1]}, {dep.H[1][0], dep.H[1][1]}}
	return ev.pairThroughputs(l, tx, concurrent, schemeOverhead, false)
}

// UseWorkspace installs a caller-owned scratch arena in place of the
// lazily created private one, so a worker serving many evaluations can
// reuse one arena's chunks across evaluators (internal/serve does this
// per pool worker). DESIGN §8's rules carry over: the workspace — and
// therefore the evaluator — stays single-goroutine, the arena must hold
// no live carves when installed, and the evaluator owns it (including
// resetting it) until the evaluator is discarded. It must be called
// before the first evaluation.
func (ev *Evaluator) UseWorkspace(ws *precoding.Workspace) {
	if ev.ws != nil {
		panic("strategy: UseWorkspace after evaluation started")
	}
	ev.ws = ws
	ev.Alloc.Scratch = ws
}

// workspace returns the evaluator's scratch arena, creating it on first
// use and wiring it into the power-allocation config so every layer of an
// evaluation shares one arena.
func (ev *Evaluator) workspace() *precoding.Workspace {
	if ev.ws == nil {
		ev.ws = &precoding.Workspace{}
		ev.Alloc.Scratch = ev.ws
	}
	return ev.ws
}

// goodput evaluates one client's PHY goodput with the configured decoder
// model. It resets the evaluator workspace, so callers must not hold
// workspace-carved values across a call.
func (ev *Evaluator) goodput(own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission) float64 {
	ws := ev.workspace()
	ws.Reset()
	if ev.MultiDecoder {
		return power.MultiDecoderGoodputForWS(ws, own, tx, cross, crossTx, ev.Alloc.NoisePerSCMW)
	}
	return power.GoodputForWS(ws, own, tx, cross, crossTx, ev.Alloc.NoisePerSCMW)
}

// links is a 2×2 channel set (truth or estimates), possibly with a
// client's antenna shut down.
type links [2][2]*channel.Link

// reduced returns the link set with client f's antenna `shut` removed.
func (l links) reduced(f, shut int) links {
	out := l
	out[0][f] = l[0][f].WithoutRxAntenna(shut)
	out[1][f] = l[1][f].WithoutRxAntenna(shut)
	return out
}

// pairThroughputs measures both clients' effective throughputs for a pair
// of transmissions over a link set. When predicted is true the evaluation
// runs on CSI estimates, and the cross transmission is augmented with the
// expected nulling residual implied by the known CSI error level — a
// leader that scored its nulls against the estimate they were derived
// from would forecast perfect cancellation (§3.3's "not so easy").
func (ev *Evaluator) pairThroughputs(l links, tx [2]*precoding.Transmission, concurrent bool, schemeOverhead float64, predicted bool) [2]float64 {
	share := 1.0
	if !concurrent {
		share = 0.5
	}
	var out [2]float64
	for j := 0; j < 2; j++ {
		var cross *channel.Link
		var crossTx *precoding.Transmission
		if concurrent {
			cross, crossTx = l[1-j][j], tx[1-j]
			if predicted {
				// The leader budgets for the measurement error it knows
				// about plus a partial allowance for aging — it cannot
				// know the actual staleness at transmission time, which
				// is why §3.3 notes predicting the winner "is not so
				// easy". Half the staleness power is the calibrated
				// middle ground.
				errLin := channel.DBToLinear(ev.Impairments.CSIErrorDB) +
					0.5*channel.DBToLinear(ev.Impairments.StalenessDB)
				crossTx = crossTx.WithExpectedResidual(errLin)
			}
		}
		g := ev.goodput(l[j][j], tx[j], cross, crossTx)
		out[j] = effective(g, share, schemeOverhead)
	}
	return out
}

// truthLinks returns the ground-truth link set.
func (ev *Evaluator) truthLinks() links {
	return links{{ev.Truth.H[0][0], ev.Truth.H[0][1]}, {ev.Truth.H[1][0], ev.Truth.H[1][1]}}
}

// estLinks returns the estimated link set.
func (ev *Evaluator) estLinks() links { return ev.Est }

// budgetMW is the per-AP transmit budget for the scenario (one PA per
// antenna).
func (ev *Evaluator) budgetMW() float64 {
	return channel.BudgetForAntennasMW(ev.Truth.Scenario.APAntennas)
}

// equalSplitTx builds status-quo transmissions for the given precoders.
func (ev *Evaluator) equalSplitTx(p [2]*precoding.Precoder) [2]*precoding.Transmission {
	var tx [2]*precoding.Transmission
	for i := 0; i < 2; i++ {
		powers := precoding.EqualSplit(len(ev.Truth.H[0][0].Subcarriers), p[i].Streams, ev.budgetMW())
		tx[i] = precoding.NewTransmission(p[i], powers, ev.Impairments)
	}
	return tx
}

// beamformers builds per-AP SVD beamforming precoders from estimates.
// Results are cached by stream count (Est is fixed after construction),
// so the three beamforming strategies share one SVD pass.
func (ev *Evaluator) beamformers(streams int) ([2]*precoding.Precoder, error) {
	if p, ok := ev.bf[streams]; ok {
		return p, nil
	}
	var p [2]*precoding.Precoder
	ws := ev.workspace()
	for i := 0; i < 2; i++ {
		bf, err := precoding.BeamformingInto(ws, nil, ev.Est[i][i], streams)
		if err != nil {
			return p, err
		}
		p[i] = bf
	}
	if ev.bf == nil {
		ev.bf = make(map[int][2]*precoding.Precoder)
	}
	ev.bf[streams] = p
	return p, nil
}

// outcome assembles an Outcome by measuring the same transmissions on
// truth and on estimates, and remembers the transmissions for later
// retrieval via TransmissionsFor.
func (ev *Evaluator) outcome(kind Kind, concurrent, sda bool, truth, est links, tx [2]*precoding.Transmission, overhead float64) Outcome {
	if ev.tx == nil {
		ev.tx = make(map[Kind][2]*precoding.Transmission)
	}
	if _, seen := ev.tx[kind]; !seen {
		// For SDA strategies evaluated under both follower designations,
		// keep the first (the canonical follower-1 assignment): a real
		// exchange transmits exactly one of them.
		ev.tx[kind] = tx
	}
	return Outcome{
		Kind:       kind,
		Concurrent: concurrent,
		SDA:        sda,
		PerClient:  ev.pairThroughputs(truth, tx, concurrent, overhead, false),
		Predicted:  ev.pairThroughputs(est, tx, concurrent, overhead, true),
	}
}

// TransmissionsFor returns the (AP0, AP1) transmissions computed when the
// given outcome's strategy was evaluated. It errors if that strategy has
// not been evaluated on this evaluator.
func (ev *Evaluator) TransmissionsFor(o Outcome) (*precoding.Transmission, *precoding.Transmission, error) {
	pair, ok := ev.tx[o.Kind]
	if !ok {
		return nil, nil, fmt.Errorf("strategy: %v was not evaluated", o.Kind)
	}
	return pair[0], pair[1], nil
}

// EvaluateCSMA measures the sequential baseline: 802.11n with implicit
// transmit beamforming (as the paper's testbed links achieve — §4.1
// assumes each AP already knows its own client's channel), equal power on
// every subcarrier, senders taking turns. COPA-SEQ differs only by the
// Equi-SINR power allocation and subcarrier selection, which is why the
// paper calls this baseline COPA-SEQ's "starting point".
func (ev *Evaluator) EvaluateCSMA() (Outcome, error) {
	defer evalTimers[KindCSMA].Begin().End()
	p, err := ev.beamformers(ev.Truth.Scenario.Streams)
	if err != nil {
		return Outcome{}, err
	}
	tx := ev.equalSplitTx(p)
	return ev.outcome(KindCSMA, false, false, ev.truthLinks(), ev.estLinks(), tx, mac.CSMACTSOverhead()), nil
}

// EvaluateCSMADirectMap measures a harsher baseline: stock 802.11n with
// no transmit-side CSI at all (direct-mapped / spatially expanded
// streams). Kept for ablation — the paper's CSMA numbers indicate its
// baseline benefited from implicit beamforming.
func (ev *Evaluator) EvaluateCSMADirectMap() (Outcome, error) {
	sc := ev.Truth.Scenario
	dm := precoding.DirectMap(sc.APAntennas, sc.Streams, len(ev.Truth.H[0][0].Subcarriers))
	tx := ev.equalSplitTx([2]*precoding.Precoder{dm, dm})
	return ev.outcome(KindCSMA, false, false, ev.truthLinks(), ev.estLinks(), tx, mac.CSMACTSOverhead()), nil
}

// EvaluateCOPASeq measures sequential transmission with per-stream power
// allocation and subcarrier selection.
func (ev *Evaluator) EvaluateCOPASeq() (Outcome, error) {
	defer evalTimers[KindCOPASeq].Begin().End()
	p, err := ev.beamformers(ev.Truth.Scenario.Streams)
	if err != nil {
		return Outcome{}, err
	}
	var tx [2]*precoding.Transmission
	for i := 0; i < 2; i++ {
		res := power.Sequential(power.SenderCSI{
			Own: ev.Est[i][i], Precoder: p[i], BudgetMW: ev.budgetMW(),
		}, ev.Alloc)
		tx[i] = res.Tx[0]
	}
	oh := ev.Overhead.COPASeqOverhead(ev.Coherence)
	return ev.outcome(KindCOPASeq, false, false, ev.truthLinks(), ev.estLinks(), tx, oh), nil
}

// EvaluateConcBF measures concurrent transmission with beamforming
// precoders and joint Equi-SINR allocation (no nulling).
func (ev *Evaluator) EvaluateConcBF() (Outcome, error) {
	defer evalTimers[KindConcBF].Begin().End()
	p, err := ev.beamformers(ev.Truth.Scenario.Streams)
	if err != nil {
		return Outcome{}, err
	}
	res := power.Concurrent([2]power.SenderCSI{
		{Own: ev.Est[0][0], Cross: ev.Est[0][1], Precoder: p[0], BudgetMW: ev.budgetMW()},
		{Own: ev.Est[1][1], Cross: ev.Est[1][0], Precoder: p[1], BudgetMW: ev.budgetMW()},
	}, ev.Alloc)
	tx := [2]*precoding.Transmission{res.Tx[0], res.Tx[1]}
	oh := ev.Overhead.COPAConcOverhead(ev.Coherence)
	return ev.outcome(KindConcBF, true, false, ev.truthLinks(), ev.estLinks(), tx, oh), nil
}

// ErrNullingInfeasible is returned when no nulling configuration exists
// for the scenario (e.g. single-antenna APs).
var ErrNullingInfeasible = errors.New("strategy: nulling infeasible in this scenario")

// nullingPlan describes a feasible nulling configuration: per-AP stream
// counts, and which client (if any) shuts which antenna.
type nullingPlan struct {
	streams  [2]int
	sdaOn    int // client index with a shut antenna, -1 if none
	shutIdx  int
	overcons bool
}

// planNulling determines how the pair can null (§3.3, §3.4): full-rank if
// the APs have enough antennas; otherwise shut one antenna of the
// follower's client and reduce that AP to the remaining rank.
func (ev *Evaluator) planNulling(follower int) (nullingPlan, error) {
	sc := ev.Truth.Scenario
	full := precoding.NullingDOF(sc.APAntennas, sc.ClientAntennas)
	if full >= sc.Streams {
		return nullingPlan{streams: [2]int{sc.Streams, sc.Streams}, sdaOn: -1}, nil
	}
	if sc.ClientAntennas < 2 {
		mNullingInfeasible.Inc()
		return nullingPlan{}, ErrNullingInfeasible
	}
	// SDA: follower's client drops to ClientAntennas−1 antennas. The
	// leader nulls at the reduced antenna set; the follower sends fewer
	// streams and nulls at the full other client.
	reduced := sc.ClientAntennas - 1
	leaderDOF := precoding.NullingDOF(sc.APAntennas, reduced)
	followerDOF := precoding.NullingDOF(sc.APAntennas, sc.ClientAntennas)
	if leaderDOF < sc.Streams || followerDOF < reduced {
		mNullingInfeasible.Inc()
		return nullingPlan{}, ErrNullingInfeasible
	}
	plan := nullingPlan{sdaOn: follower, overcons: true}
	plan.streams[1-follower] = sc.Streams
	plan.streams[follower] = reduced
	// Shut the antenna with the worse estimated gain from its own AP.
	own := ev.Est[follower][follower]
	worst, worstGain := 0, 1e300
	for r := 0; r < own.NRx(); r++ {
		var g float64
		for k := range own.Subcarriers {
			v := own.Subcarriers[k].Row(r)
			for _, x := range v {
				g += real(x)*real(x) + imag(x)*imag(x)
			}
		}
		if g < worstGain {
			worst, worstGain = r, g
		}
	}
	plan.shutIdx = worst
	return plan, nil
}

// nullingSetup builds nulling precoders and (possibly reduced) link sets
// for a plan.
func (ev *Evaluator) nullingSetup(plan nullingPlan) (truth, est links, p [2]*precoding.Precoder, err error) {
	truth, est = ev.truthLinks(), ev.estLinks()
	if plan.sdaOn >= 0 {
		truth = truth.reduced(plan.sdaOn, plan.shutIdx)
		est = est.reduced(plan.sdaOn, plan.shutIdx)
	}
	ws := ev.workspace()
	for i := 0; i < 2; i++ {
		p[i], err = precoding.NullingInto(ws, nil, est[i][i], est[i][1-i], plan.streams[i])
		if err != nil {
			return truth, est, p, err
		}
	}
	return truth, est, p, nil
}

// nullingState is the cached result of planning and setting up nulling
// for one follower designation.
type nullingState struct {
	plan       nullingPlan
	truth, est links
	p          [2]*precoding.Precoder
	err        error
}

// nullingStateFor returns the (cached) nulling plan and setup for a
// follower designation; infeasibility is cached too.
func (ev *Evaluator) nullingStateFor(follower int) (*nullingState, error) {
	if st, ok := ev.nulls[follower]; ok {
		return st, st.err
	}
	st := &nullingState{}
	st.plan, st.err = ev.planNulling(follower)
	if st.err == nil {
		st.truth, st.est, st.p, st.err = ev.nullingSetup(st.plan)
	}
	if ev.nulls == nil {
		ev.nulls = make(map[int]*nullingState)
	}
	ev.nulls[follower] = st
	return st, st.err
}

// evaluateNullVariant evaluates vanilla nulling (equal power) or COPA
// concurrent nulling (joint allocation) for one follower designation.
func (ev *Evaluator) evaluateNullVariant(kind Kind, follower int) (Outcome, error) {
	st, err := ev.nullingStateFor(follower)
	if err != nil {
		return Outcome{}, err
	}
	plan, truth, est, p := st.plan, st.truth, st.est, st.p
	var tx [2]*precoding.Transmission
	if kind == KindNull {
		tx = ev.equalSplitTx(p)
	} else {
		res := power.Concurrent([2]power.SenderCSI{
			{Own: est[0][0], Cross: est[0][1], Precoder: p[0], BudgetMW: ev.budgetMW()},
			{Own: est[1][1], Cross: est[1][0], Precoder: p[1], BudgetMW: ev.budgetMW()},
		}, ev.Alloc)
		tx = [2]*precoding.Transmission{res.Tx[0], res.Tx[1]}
	}
	oh := ev.Overhead.COPAConcOverhead(ev.Coherence)
	return ev.outcome(kind, true, plan.sdaOn >= 0, truth, est, tx, oh), nil
}

// averageOutcomes merges the two follower designations of an SDA
// strategy: DCF randomness makes each AP lead half the time, so the
// asymmetry cancels in expectation (§3.4).
func averageOutcomes(a, b Outcome) Outcome {
	out := a
	for j := 0; j < 2; j++ {
		out.PerClient[j] = (a.PerClient[j] + b.PerClient[j]) / 2
		out.Predicted[j] = (a.Predicted[j] + b.Predicted[j]) / 2
	}
	return out
}

// EvaluateNulling evaluates KindNull or KindConcNull, averaging over
// follower designations when SDA makes the outcome asymmetric.
func (ev *Evaluator) EvaluateNulling(kind Kind) (Outcome, error) {
	if kind != KindNull && kind != KindConcNull {
		return Outcome{}, errors.New("strategy: EvaluateNulling wants KindNull or KindConcNull")
	}
	defer evalTimers[kind].Begin().End()
	a, err := ev.evaluateNullVariant(kind, 1)
	if err != nil {
		return Outcome{}, err
	}
	if !a.SDA {
		return a, nil
	}
	b, err := ev.evaluateNullVariant(kind, 0)
	if err != nil {
		return a, nil // fall back to the single feasible designation
	}
	return averageOutcomes(a, b), nil
}

// EvaluateAll runs every strategy applicable to the scenario and returns
// the outcomes by kind. Infeasible strategies (nulling for single-antenna
// APs) are simply absent.
func (ev *Evaluator) EvaluateAll() (map[Kind]Outcome, error) {
	defer mEvalAllSeconds.Begin().End()
	out := make(map[Kind]Outcome)
	csma, err := ev.EvaluateCSMA()
	if err != nil {
		return nil, err
	}
	out[KindCSMA] = csma
	seq, err := ev.EvaluateCOPASeq()
	if err != nil {
		return nil, err
	}
	out[KindCOPASeq] = seq
	conc, err := ev.EvaluateConcBF()
	if err != nil {
		return nil, err
	}
	out[KindConcBF] = conc
	for _, k := range []Kind{KindNull, KindConcNull} {
		o, err := ev.EvaluateNulling(k)
		if err == nil {
			out[k] = o
		}
	}
	return out, nil
}
