package campaign

import "math"

// Moments is an online count/mean/variance accumulator (Welford's
// algorithm) with an exact parallel merge (Chan et al.). Two Moments
// built from disjoint sample streams merge into precisely the Moments a
// single pass over the concatenated stream (in that order) would
// produce, so shard-local accumulators combine without retaining
// samples. Determinism caveat: floating-point merge is not commutative,
// so the engine always merges shards in ascending unit order.
type Moments struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	// M2 is the sum of squared deviations from the running mean
	// (variance numerator).
	M2 float64 `json:"m2"`
}

// Add folds one sample in.
func (m *Moments) Add(v float64) {
	m.N++
	delta := v - m.Mean
	m.Mean += delta / float64(m.N)
	m.M2 += delta * (v - m.Mean)
}

// Merge folds another accumulator in, as if o's samples were appended
// to m's stream.
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	n := float64(m.N + o.N)
	delta := o.Mean - m.Mean
	m.Mean += delta * float64(o.N) / n
	m.M2 += o.M2 + delta*delta*float64(m.N)*float64(o.N)/n
	m.N += o.N
}

// Variance is the population variance (0 below two samples).
func (m Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	return m.M2 / float64(m.N)
}

// StdDev is the population standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }
