package campaign

import (
	"math"
	"testing"

	"copa/internal/rng"
)

func naiveMeanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	return mean, variance / float64(len(xs))
}

func TestMomentsMatchesNaive(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 5000)
	var m Moments
	for i := range xs {
		xs[i] = math.Exp(src.Norm()) * 1e8 // lognormal, throughput-scale
		m.Add(xs[i])
	}
	mean, variance := naiveMeanVar(xs)
	if rel := math.Abs(m.Mean-mean) / mean; rel > 1e-12 {
		t.Errorf("mean off by %.2e relative", rel)
	}
	if rel := math.Abs(m.Variance()-variance) / variance; rel > 1e-9 {
		t.Errorf("variance off by %.2e relative", rel)
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	// Splitting a stream at any point and merging must agree with the
	// one-pass accumulator to floating-point noise, and the merge of a
	// fixed partition must be exactly reproducible (same arithmetic →
	// same bits), which is what engine determinism rests on.
	src := rng.New(2)
	xs := make([]float64, 1000)
	var whole Moments
	for i := range xs {
		xs[i] = src.Uniform(-5, 50)
		whole.Add(xs[i])
	}
	for _, cut := range []int{0, 1, 500, 999, 1000} {
		var a, b Moments
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N != whole.N {
			t.Fatalf("cut %d: N %d != %d", cut, a.N, whole.N)
		}
		if rel := math.Abs(a.Mean-whole.Mean) / math.Abs(whole.Mean); rel > 1e-12 {
			t.Errorf("cut %d: merged mean off by %.2e relative", cut, rel)
		}
		if rel := math.Abs(a.M2-whole.M2) / whole.M2; rel > 1e-9 {
			t.Errorf("cut %d: merged M2 off by %.2e relative", cut, rel)
		}

		// Bit-exact reproducibility of the same merge.
		var a2, b2 Moments
		for _, x := range xs[:cut] {
			a2.Add(x)
		}
		for _, x := range xs[cut:] {
			b2.Add(x)
		}
		a2.Merge(b2)
		if a2 != a {
			t.Fatalf("cut %d: identical merge not bit-identical", cut)
		}
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	b.Add(3)
	b.Add(5)
	a.Merge(b) // empty ← non-empty adopts
	if a != b {
		t.Fatal("merge into empty did not adopt")
	}
	before := a
	a.Merge(Moments{}) // non-empty ← empty is a no-op
	if a != before {
		t.Fatal("merging empty changed the accumulator")
	}
}
