package campaign

import (
	"context"
	"path/filepath"
	"testing"

	"copa/internal/obs"
)

// TestCampaignTraceStitching runs a checkpointed campaign under a
// caller-rooted trace and checks the hierarchy: campaign.run is a
// child of the caller, every unit and checkpoint span hangs off
// campaign.run, and their counts match the spec's unit count.
func TestCampaignTraceStitching(t *testing.T) {
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "trace.jsonl")

	ctx, root := obs.StartSpan(context.Background(), "caller")
	if _, err := Run(ctx, spec, Options{Workers: 2, Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	rootSC := root.Context()
	root.End()
	if !rootSC.Valid() {
		t.Skip("trace sampling disabled in this process")
	}

	spans := obs.Tracing().TraceSpans(rootSC.TraceID.String())
	var runID string
	units, checkpoints := 0, 0
	for _, s := range spans {
		if s.Name == "campaign.run" {
			runID = s.ID
			if s.Parent != rootSC.SpanID.String() {
				t.Errorf("campaign.run parented to %q, want caller %q", s.Parent, rootSC.SpanID)
			}
		}
	}
	if runID == "" {
		t.Fatalf("campaign.run missing from trace; got %d spans", len(spans))
	}
	for _, s := range spans {
		switch s.Name {
		case "campaign.unit":
			units++
			if s.Parent != runID {
				t.Errorf("campaign.unit parented to %q, want campaign.run %q", s.Parent, runID)
			}
			if unitAttr(s) == "" {
				t.Error("campaign.unit span missing unit attribute")
			}
		case "campaign.checkpoint":
			checkpoints++
			if s.Parent != runID {
				t.Errorf("campaign.checkpoint parented to %q, want campaign.run %q", s.Parent, runID)
			}
		}
	}
	if want := spec.Units(); units != want || checkpoints != want {
		t.Errorf("got %d unit spans and %d checkpoint spans, want %d of each", units, checkpoints, want)
	}
}

func unitAttr(s obs.SpanRecord) string {
	for _, a := range s.Attrs {
		if a.Key == "unit" {
			return a.Value
		}
	}
	return ""
}

// TestCampaignShardProgressGauges checks the per-shard completion
// gauges land at 1.0 after a full run and that the ETA gauge returns
// to zero with no work remaining.
func TestCampaignShardProgressGauges(t *testing.T) {
	spec := testSpec()
	if _, err := Run(context.Background(), spec, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	for sh, g := range ShardGauges(spec.Shards) {
		if v := g.Value(); v != 1.0 {
			t.Errorf("shard %d progress = %v, want 1.0", sh, v)
		}
	}
	if v := mETASeconds.Value(); v != 0 {
		t.Errorf("eta_seconds = %v after completion, want 0", v)
	}
}
