package campaign

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"copa/internal/obs"
	"copa/internal/precoding"
)

// Options configure one engine run without affecting its results:
// worker count, checkpointing, and resume change only wall time and
// durability, never a byte of the final aggregates.
type Options struct {
	// Workers is the number of evaluator goroutines, each owning one
	// scratch arena (default: GOMAXPROCS).
	Workers int
	// Checkpoint is the JSONL journal path; empty disables
	// checkpointing.
	Checkpoint string
	// Resume loads an existing checkpoint instead of failing on it.
	Resume bool
	// OnProgress, when non-nil, is called from the collector after
	// every completed unit (for CLI progress lines; obs metrics are
	// always maintained).
	OnProgress func(done, total int)
	// ProgressEvery, when positive, makes the collector log a progress
	// line (done/total, units/s, ETA) at most once per interval.
	ProgressEvery time.Duration
}

// Progress is the collector's running view of a campaign, passed to
// the periodic log line and mirrored into the copa.campaign.* gauges.
type Progress struct {
	Done, Total int
	// UnitsPerSec is the completion rate of THIS run (resumed units
	// journaled by a prior run don't count toward the rate).
	UnitsPerSec float64
	// ETA is the remaining wall time at the current rate (0 until the
	// first unit of this run completes).
	ETA time.Duration
}

// Run executes a campaign to completion: it shards the spec's scenario
// space into units, skips units already journaled in the checkpoint,
// fans the rest out over the worker pool, journals each as it
// completes, and merges everything in ascending unit order. Cancelling
// ctx stops the engine promptly — in-flight units abort unjournaled,
// completed ones are already durable — and returns ctx.Err(); a later
// Resume run recomputes only what is missing and returns aggregates
// byte-identical to an uninterrupted run.
func Run(ctx context.Context, spec Spec, opt Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var span cSpan
	ctx, span = startCSpan(ctx, "campaign.run")
	var runErr error
	defer func() { span.EndErr(runErr) }()
	mRuns.Inc()

	total := spec.Units()
	results := make([]*UnitResult, total)
	var jnl *Journal
	if opt.Checkpoint != "" {
		var done map[int]*UnitResult
		var err error
		jnl, done, err = OpenJournal(opt.Checkpoint, spec, opt.Resume)
		if err != nil {
			runErr = err
			return nil, err
		}
		defer jnl.Close()
		for u, res := range done {
			results[u] = res
		}
		mUnitsResumed.Add(uint64(len(done)))
	}

	// The feeder owns the unit queue; workers pull units, evaluate,
	// and push onto out; the collector (this goroutine) journals and
	// stores. A worker error or ctx cancellation closes stop, which
	// ends the feeder — workers then drain the closed feed and exit,
	// closing out via the WaitGroup.
	feed := make(chan int)
	out := make(chan *UnitResult)
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort()
	}
	checkCancel := func() error {
		select {
		case <-stop:
			return context.Canceled
		default:
			return ctx.Err()
		}
	}

	go func() { // feeder
		defer close(feed)
		for u := 0; u < total; u++ {
			if results[u] != nil {
				continue // already journaled by a prior run
			}
			select {
			case feed <- u:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { // worker: one arena for its whole lifetime
			defer wg.Done()
			ws := &precoding.Workspace{}
			for u := range feed {
				mUnitsInFlight.Add(1)
				usp := obs.ChildSpan(ctx, "campaign.unit")
				usp.SetAttr("unit", strconv.Itoa(u))
				sample := mUnitSeconds.Begin()
				res, err := EvalUnit(spec, u, ws, checkCancel)
				sample.End()
				usp.EndErr(err)
				mUnitsInFlight.Add(-1)
				if err != nil {
					if err != context.Canceled && ctx.Err() == nil {
						mUnitsFailed.Inc()
						fail(err)
					}
					continue
				}
				select {
				case out <- res:
				case <-stop:
					// Collector gone (error path); drop the unit.
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Collector: journal and store every unit that finishes, including
	// ones completing after cancellation — work already paid for
	// becomes durable, which is what makes kill-and-resume cheap.
	started := time.Now()
	completed := 0
	unitsPerShard := spec.Cells()
	shardDone := make([]int, spec.Shards)
	gauges := ShardGauges(spec.Shards)
	for u := range total {
		if results[u] != nil {
			completed++
			_, _, sh := spec.UnitCoord(u)
			shardDone[sh]++
		}
	}
	for sh, g := range gauges {
		g.Set(float64(shardDone[sh]) / float64(unitsPerShard))
	}
	resumed := completed
	lastLog := started
	for res := range out {
		results[res.Unit] = res
		completed++
		mUnitsDone.Inc()
		_, _, sh := spec.UnitCoord(res.Unit)
		shardDone[sh]++
		gauges[sh].Set(float64(shardDone[sh]) / float64(unitsPerShard))

		// Rate and ETA count only THIS run's completions: resumed units
		// were paid for by a previous process and would inflate both.
		prog := Progress{Done: completed, Total: total}
		if elapsed := time.Since(started).Seconds(); elapsed > 0 {
			prog.UnitsPerSec = float64(completed-resumed) / elapsed
		}
		if prog.UnitsPerSec > 0 {
			prog.ETA = time.Duration(float64(total-completed) / prog.UnitsPerSec * float64(time.Second))
		}
		mUnitsPerSec.Set(prog.UnitsPerSec)
		mETASeconds.Set(prog.ETA.Seconds())

		if jnl != nil {
			ckSpan := obs.ChildSpan(ctx, "campaign.checkpoint")
			err := jnl.Record(res)
			ckSpan.EndErr(err)
			if err != nil {
				fail(fmt.Errorf("campaign: journaling unit %d: %w", res.Unit, err))
			}
			mCheckpointUnix.Set(float64(time.Now().Unix()))
		}
		if opt.OnProgress != nil {
			opt.OnProgress(completed, total)
		}
		if opt.ProgressEvery > 0 && (time.Since(lastLog) >= opt.ProgressEvery || completed == total) {
			lastLog = time.Now()
			obs.Logger().Info("campaign progress",
				"done", completed, "total", total,
				"units_per_sec", fmt.Sprintf("%.2f", prog.UnitsPerSec),
				"eta", prog.ETA.Round(time.Second).String())
		}
	}
	abort() // release any worker blocked on out after an error

	if err := ctx.Err(); err != nil {
		runErr = err
		return nil, err
	}
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		runErr = err
		return nil, err
	}
	if completed != total {
		runErr = fmt.Errorf("campaign: %d/%d units completed", completed, total)
		return nil, runErr
	}
	return finalize(spec, results), nil
}

// finalize merges per-unit aggregates in ascending unit order — the
// one fixed order that makes the floating-point Moments merge, and
// therefore the serialized Result, byte-identical across worker
// counts, interleavings, and resumes.
func finalize(spec Spec, results []*UnitResult) *Result {
	res := &Result{Spec: spec, Units: len(results), Columns: make(map[string]*Column)}
	for _, ur := range results {
		MergeUnit(res.Columns, ur)
	}
	return res
}

// MergeUnit folds one unit's aggregates into the accumulator map,
// creating columns on first sight. It visits the unit's columns in
// sorted name order, so callers that feed units in ascending unit order
// — the engine's finalizer and the fleet coordinator's streaming merge
// — produce identical floating-point results and identical bytes.
func MergeUnit(into map[string]*Column, ur *UnitResult) {
	for _, name := range sortedColNames(ur.Columns) {
		c, ok := into[name]
		if !ok {
			c = NewColumn()
			into[name] = c
		}
		c.Merge(ur.Columns[name])
	}
}

func sortedColNames(cols map[string]*Column) []string {
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	// Insertion sort: column sets are small (a handful of schemes).
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
