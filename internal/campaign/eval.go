package campaign

import (
	"fmt"

	"copa/internal/channel"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Scheme names match the paper's figure legends. They live here so the
// campaign engine and internal/testbed (which aliases them) agree on
// column naming without an import cycle.
const (
	SchemeCSMA     = "CSMA"
	SchemeCOPASeq  = "COPA-SEQ"
	SchemeNull     = "Null" // "Null+SDA" in the overconstrained scenario
	SchemeCOPAFair = "COPA fair"
	SchemeCOPA     = "COPA"
	SchemeCOPAPF   = "COPA+ fair"
	SchemeCOPAP    = "COPA+"
)

// AllSchemes lists scheme names in the paper's presentation order.
var AllSchemes = []string{
	SchemeCSMA, SchemeCOPASeq, SchemeNull,
	SchemeCOPAFair, SchemeCOPA, SchemeCOPAPF, SchemeCOPAP,
}

// EvalOptions tune one topology evaluation.
type EvalOptions struct {
	// MultiDecoder evaluates with per-subcarrier rate selection.
	MultiDecoder bool
	// SkipCOPAPlus disables the mercury/water-filling variants.
	SkipCOPAPlus bool
	// Workspace, when non-nil, is the caller-owned scratch arena every
	// evaluator pass carves from (DESIGN §8: one workspace per
	// goroutine). It is Reset before each pass; outcomes never alias
	// workspace memory, so the scalars extracted here stay valid.
	Workspace *precoding.Workspace
}

// EvaluateTopology runs every scheme on one deployment and returns the
// aggregate (both clients) effective throughput in bits/s per scheme.
// This is the single evaluation kernel behind both the serial testbed
// harness and the sharded campaign engine: given equal (dep, imp, src)
// it produces bit-identical outcomes in both, which is what lets a
// campaign reproduce `copasim`'s figures exactly. The src.Split call
// sequence is therefore part of the contract — do not reorder it.
func EvaluateTopology(dep *channel.Deployment, imp channel.Impairments, src *rng.Source, opt EvalOptions) (map[string]float64, error) {
	out := make(map[string]float64)

	if opt.Workspace != nil {
		opt.Workspace.Reset()
	}
	ev := strategy.NewEvaluator(dep, imp, src.Split(1))
	ev.MultiDecoder = opt.MultiDecoder
	if opt.Workspace != nil {
		ev.UseWorkspace(opt.Workspace)
	}
	outs, err := ev.EvaluateAll()
	if err != nil {
		return nil, fmt.Errorf("evaluate %s: %w", dep, err)
	}
	out[SchemeCSMA] = outs[strategy.KindCSMA].Aggregate()
	out[SchemeCOPASeq] = outs[strategy.KindCOPASeq].Aggregate()
	if o, ok := outs[strategy.KindNull]; ok {
		out[SchemeNull] = o.Aggregate()
	}
	out[SchemeCOPA] = strategy.Select(strategy.ModeMax, outs).Aggregate()
	out[SchemeCOPAFair] = strategy.Select(strategy.ModeFair, outs).Aggregate()

	if !opt.SkipCOPAPlus {
		// COPA+: same pipeline with iterated mercury/water-filling as the
		// inner allocator (trace-driven in the paper for the same reason
		// it is slower here: §4.2).
		if opt.Workspace != nil {
			opt.Workspace.Reset()
		}
		evp := strategy.NewEvaluator(dep, imp, src.Split(1))
		evp.MultiDecoder = opt.MultiDecoder
		if opt.Workspace != nil {
			evp.UseWorkspace(opt.Workspace)
		}
		evp.Alloc.Inner = power.MercuryBest
		evp.Alloc.MaxIters = 3
		plusOuts, err := evp.EvaluateAll()
		if err != nil {
			return nil, fmt.Errorf("evaluate COPA+ %s: %w", dep, err)
		}
		// COPA+ *adds* the mercury/water-filling allocations to the
		// strategy set COPA selects from (§4.2), so for each mode the
		// choice is whichever of the two pipelines predicts higher.
		pick := func(mode strategy.Mode) float64 {
			base := strategy.Select(mode, outs)
			plus := strategy.Select(mode, plusOuts)
			if plus.PredictedAggregate() > base.PredictedAggregate() {
				return plus.Aggregate()
			}
			return base.Aggregate()
		}
		out[SchemeCOPAP] = pick(strategy.ModeMax)
		out[SchemeCOPAPF] = pick(strategy.ModeFair)
	}
	return out, nil
}

// EvalUnit computes one work unit: every topology in the unit's shard
// range, evaluated under the unit's (profile, age) cell, folded into
// fresh per-column aggregates. Everything it consumes derives
// statelessly from the spec, so any worker computing unit u — on any
// run, after any resume — produces identical bytes. checkCancel is
// polled between topologies so cancellation aborts mid-unit without
// journaling a partial result.
func EvalUnit(spec Spec, u int, ws *precoding.Workspace, checkCancel func() error) (*UnitResult, error) {
	p, age, shard := spec.UnitCoord(u)
	prof := spec.Profiles[p]
	imp := prof.Impairments.Aged(float64(age) / float64(spec.AgeBuckets))
	lo, hi := spec.shardRange(shard)
	res := &UnitResult{Unit: u, Columns: make(map[string]*Column)}
	opt := EvalOptions{
		MultiDecoder: spec.MultiDecoder,
		SkipCOPAPlus: spec.SkipCOPAPlus,
		Workspace:    ws,
	}
	fig9 := p == 0 && age == 0
	for i := lo; i < hi; i++ {
		if err := checkCancel(); err != nil {
			return nil, err
		}
		dep := channel.DeploymentAt(spec.Seed, spec.Scenario, i)
		if spec.InterferenceDeltaDB != 0 {
			dep = dep.ScaleInterference(spec.InterferenceDeltaDB)
		}
		// The evaluation stream depends on the topology index only, so
		// every grid cell sees identical CSI-noise draws — profile/age
		// comparisons are paired, and cell (0,0) reproduces the serial
		// testbed harness sample for sample.
		src := rng.NewSub(spec.Seed^evalSeedXor, uint64(i))
		out, err := EvaluateTopology(dep, imp, src, opt)
		if err != nil {
			return nil, fmt.Errorf("unit %d topology %d: %w", u, i, err)
		}
		for scheme, v := range out {
			res.col(ColumnName(prof.Name, age, scheme)).Add(v)
		}
		if fig9 {
			for j := 0; j < 2; j++ {
				res.col(ColFig9Signal).Add(dep.SignalDBm[j])
				res.col(ColFig9Interference).Add(dep.InterferenceDBm[j])
			}
		}
		mTopologies.Inc()
	}
	return res, nil
}
