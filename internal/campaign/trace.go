package campaign

import (
	"context"

	"copa/internal/obs"
)

// cSpan is the campaign's span handle: hierarchical when the caller's
// context carries a sampled trace (copacampaign roots one per run),
// flat otherwise — so library callers and benchmarks that never start
// a trace pay only the registry's flat-span cost.
type cSpan struct {
	flat obs.Span
	hier *obs.ActiveSpan
}

// startCSpan opens a span named name. With a sampled trace in ctx it
// returns a hierarchical child and a context carrying it (so unit and
// checkpoint spans nest under it); otherwise it falls back to a flat
// registry span and the context is returned unchanged.
func startCSpan(ctx context.Context, name string) (context.Context, cSpan) {
	if sp := obs.ChildSpan(ctx, name); sp != nil {
		return obs.ContextWithSpan(ctx, sp.Context()), cSpan{hier: sp}
	}
	return ctx, cSpan{flat: obs.Trace(name)}
}

func (s cSpan) End() {
	if s.hier != nil {
		s.hier.End()
		return
	}
	s.flat.End()
}

func (s cSpan) EndErr(err error) {
	if s.hier != nil {
		s.hier.EndErr(err)
		return
	}
	s.flat.End()
}
