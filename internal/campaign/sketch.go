package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// sketchSubBuckets is the number of log-linear sub-buckets per binary
// order of magnitude. The relative width of one bucket is
// 1/(2·sketchSubBuckets) ≈ 0.39%, so any quantile read off the sketch is
// within ±0.2% (half a bucket, midpoint rule) of some true sample —
// far below the resolution the figures print at.
const sketchSubBuckets = 128

// keyBias shifts encoded magnitude keys away from zero so the sign of
// the encoded key is the sign of the value. Frexp exponents of float64
// fit in 11 bits, so |posKey| < 2^11·sketchSubBuckets ≪ keyBias.
const keyBias = 1 << 22

// Sketch is a mergeable log-linear quantile sketch: each finite sample
// increments one of a sparse set of constant-relative-width buckets, so
// a column's full CDF is recoverable to bucket resolution without
// retaining any samples. Merging adds bucket counts — commutative,
// associative, and exact in integers — so merged aggregates are
// byte-identical regardless of worker count, interleaving, or resume.
//
// Buckets are keyed by sign and magnitude: v = f·2^e (Frexp, f ∈
// [0.5, 1)) lands in sub-bucket s = ⌊(f−0.5)·2B⌋ of exponent e, encoded
// as ±(e·B + s + keyBias); zero and non-finite samples count separately.
// The encoding preserves order (more negative keys ↔ more negative
// values), so quantiles are a single ascending walk.
type Sketch struct {
	zero    uint64
	buckets map[int32]uint64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch { return &Sketch{buckets: make(map[int32]uint64)} }

// keyOf encodes a nonzero finite value's bucket.
func keyOf(v float64) int32 {
	neg := v < 0
	if neg {
		v = -v
	}
	f, e := math.Frexp(v)
	k := int32(e)*sketchSubBuckets + int32((f-0.5)*2*sketchSubBuckets) + keyBias
	if neg {
		return -k
	}
	return k
}

// bucketMid returns the midpoint value of the bucket an encoded key
// names — the representative returned for quantiles falling in it.
func bucketMid(key int32) float64 {
	if key == 0 {
		return 0
	}
	sign := 1.0
	if key < 0 {
		sign, key = -1, -key
	}
	pk := key - keyBias
	e := pk / sketchSubBuckets
	s := pk % sketchSubBuckets
	if s < 0 { // floor division for negative exponents
		e--
		s += sketchSubBuckets
	}
	mid := 0.5 + (float64(s)+0.5)/(2*sketchSubBuckets)
	return sign * math.Ldexp(mid, int(e))
}

// Add folds one sample in. Zero and non-finite values land in the exact
// bucket (they carry no magnitude information worth 0.4% precision).
func (s *Sketch) Add(v float64) {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		s.zero++
		return
	}
	if s.buckets == nil {
		s.buckets = make(map[int32]uint64)
	}
	s.buckets[keyOf(v)]++
}

// Merge adds o's counts into s.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	s.zero += o.zero
	if len(o.buckets) > 0 && s.buckets == nil {
		s.buckets = make(map[int32]uint64)
	}
	for k, c := range o.buckets {
		s.buckets[k] += c
	}
}

// Count is the total number of samples folded in.
func (s *Sketch) Count() uint64 {
	n := s.zero
	for _, c := range s.buckets {
		n += c
	}
	return n
}

// sortedKeys returns every occupied bucket key in ascending value
// order, with 0 standing in for the zero/non-finite bucket.
func (s *Sketch) sortedKeys() []int32 {
	keys := make([]int32, 0, len(s.buckets)+1)
	for k := range s.buckets {
		keys = append(keys, k)
	}
	if s.zero > 0 {
		keys = append(keys, 0)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func (s *Sketch) countOf(key int32) uint64 {
	if key == 0 {
		return s.zero
	}
	return s.buckets[key]
}

// Quantile returns the q-th quantile (q in [0, 1]) as the midpoint of
// the bucket holding rank q·(n−1) — within half a bucket's relative
// width of the exact sample quantile.
func (s *Sketch) Quantile(q float64) float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n-1)
	var cum float64
	keys := s.sortedKeys()
	for _, k := range keys {
		cum += float64(s.countOf(k))
		if cum > rank {
			return bucketMid(k)
		}
	}
	return bucketMid(keys[len(keys)-1])
}

// CDFPoint is one step of the sketch's cumulative distribution.
type CDFPoint struct {
	Value float64
	P     float64
}

// CDF returns the sketch's cumulative distribution, one point per
// occupied bucket (value = bucket midpoint, P = fraction ≤ it).
func (s *Sketch) CDF() []CDFPoint {
	n := s.Count()
	if n == 0 {
		return nil
	}
	keys := s.sortedKeys()
	out := make([]CDFPoint, len(keys))
	var cum uint64
	for i, k := range keys {
		cum += s.countOf(k)
		out[i] = CDFPoint{Value: bucketMid(k), P: float64(cum) / float64(n)}
	}
	return out
}

// sketchJSON is the stable wire form: zero count plus [key, count]
// pairs in ascending key order, so identical sketches marshal to
// identical bytes.
type sketchJSON struct {
	Zero    uint64     `json:"zero"`
	Buckets [][2]int64 `json:"buckets"`
}

// MarshalJSON emits the deterministic sparse form.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	js := sketchJSON{Zero: s.zero, Buckets: make([][2]int64, 0, len(s.buckets))}
	for _, k := range s.sortedKeys() {
		if k == 0 {
			continue
		}
		js.Buckets = append(js.Buckets, [2]int64{int64(k), int64(s.buckets[k])})
	}
	return json.Marshal(js)
}

// UnmarshalJSON restores the sparse form.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var js sketchJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	s.zero = js.Zero
	s.buckets = make(map[int32]uint64, len(js.Buckets))
	for _, kv := range js.Buckets {
		if kv[0] == 0 || kv[1] < 0 {
			return fmt.Errorf("campaign: invalid sketch bucket %v", kv)
		}
		s.buckets[int32(kv[0])] += uint64(kv[1])
	}
	return nil
}
