package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The checkpoint journal is line-delimited JSON: a header line binding
// the file to a spec fingerprint, then one line per completed work
// unit carrying that unit's full aggregates. Appending a line after
// each unit makes the journal a prefix-complete record: a campaign
// killed at any instant resumes by replaying the good prefix and
// recomputing only units with no line. A torn final line (the process
// died mid-write) is detected and truncated away — everything before
// it is intact by construction.

// journalVersion guards the on-disk format.
const journalVersion = 1

// journalHeader is the first line of every checkpoint file.
type journalHeader struct {
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
	Spec        Spec   `json:"spec"`
}

// Journal appends completed units to the checkpoint file.
type Journal struct {
	f *os.File
	w *bufio.Writer
}

// OpenJournal opens (or creates) the checkpoint at path for spec.
// Resume selects whether an existing file is loaded or an error: a
// fresh campaign refuses to silently clobber a prior checkpoint unless
// it is told to resume it. The returned map holds the units already
// completed (empty for a fresh file).
func OpenJournal(path string, spec Spec, resume bool) (*Journal, map[int]*UnitResult, error) {
	fp := spec.Fingerprint()
	done := make(map[int]*UnitResult)

	if _, err := os.Stat(path); err == nil {
		if !resume {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s exists; pass resume to continue it or remove it", path)
		}
		goodBytes, units, err := loadJournal(path, spec, fp)
		if err != nil {
			return nil, nil, err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, err
		}
		// Drop a torn tail so the next append starts on a line boundary.
		if err := f.Truncate(goodBytes); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(goodBytes, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &Journal{f: f, w: bufio.NewWriter(f)}, units, nil
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{f: f, w: bufio.NewWriter(f)}
	if err := j.writeLine(journalHeader{V: journalVersion, Fingerprint: fp, Spec: spec}); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, done, nil
}

// loadJournal parses a checkpoint, returning the byte length of the
// valid prefix and the units it records. A header that fails to parse
// or belongs to a different spec is an error; a trailing partial line
// is tolerated (it marks the cut point).
func loadJournal(path string, spec Spec, fingerprint string) (int64, map[int]*UnitResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	units := make(map[int]*UnitResult)
	var offset int64
	first := true
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := data[:nl]
		if first {
			var hdr journalHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return 0, nil, fmt.Errorf("campaign: checkpoint %s: bad header: %w", path, err)
			}
			if hdr.V != journalVersion {
				return 0, nil, fmt.Errorf("campaign: checkpoint %s: version %d, want %d", path, hdr.V, journalVersion)
			}
			if hdr.Fingerprint != fingerprint {
				return 0, nil, fmt.Errorf("campaign: checkpoint %s was written by a different campaign spec (fingerprint %.12s…, want %.12s…)", path, hdr.Fingerprint, fingerprint)
			}
			first = false
		} else {
			var u UnitResult
			if err := json.Unmarshal(line, &u); err != nil {
				break // torn or corrupt tail line: truncate here
			}
			if u.Unit < 0 || u.Unit >= spec.Units() || u.Columns == nil {
				break
			}
			units[u.Unit] = &u
		}
		offset += int64(nl) + 1
		data = data[nl+1:]
	}
	if first {
		return 0, nil, fmt.Errorf("campaign: checkpoint %s has no valid header", path)
	}
	return offset, units, nil
}

// writeLine appends one JSON line and flushes it to the OS, so a
// completed unit survives any subsequent kill of the process.
func (j *Journal) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// Record journals one completed unit.
func (j *Journal) Record(u *UnitResult) error { return j.writeLine(u) }

// Close flushes and closes the file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
