package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"copa/internal/channel"
	"copa/internal/obs"
)

// testSpec is a small but non-trivial campaign: two grid cells, three
// shards, uneven shard sizes (7 topologies over 3 shards).
func testSpec() Spec {
	return Spec{
		Seed:       42,
		Scenario:   channel.Scenario1x1,
		Topologies: 7,
		Shards:     3,
		Profiles: []Profile{
			{Name: "default", Impairments: channel.DefaultImpairments()},
			{Name: "perfect", Impairments: channel.PerfectHardware()},
		},
		AgeBuckets:   1,
		SkipCOPAPlus: true,
	}
}

func marshal(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSpecValidate(t *testing.T) {
	base := testSpec()
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string // substring of the error, "" for valid
	}{
		{"valid", func(s *Spec) {}, ""},
		{"zero topologies", func(s *Spec) { s.Topologies = 0 }, "topologies"},
		{"negative topologies", func(s *Spec) { s.Topologies = -3 }, "topologies"},
		{"zero shards", func(s *Spec) { s.Shards = 0 }, "shards"},
		{"shards exceed topologies", func(s *Spec) { s.Shards = 8 }, "exceed"},
		{"no profiles", func(s *Spec) { s.Profiles = nil }, "profile"},
		{"empty profile name", func(s *Spec) { s.Profiles[0].Name = "" }, "profile name"},
		{"slash in profile name", func(s *Spec) { s.Profiles[0].Name = "a/b" }, "slash"},
		{"duplicate profile name", func(s *Spec) { s.Profiles[1].Name = "default" }, "duplicate"},
		{"zero age buckets", func(s *Spec) { s.AgeBuckets = 0 }, "age buckets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Profiles = append([]Profile(nil), base.Profiles...)
			tc.mutate(&s)
			err := s.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestShardRangePartition(t *testing.T) {
	s := testSpec()
	next := 0
	for sh := 0; sh < s.Shards; sh++ {
		lo, hi := s.shardRange(sh)
		if lo != next {
			t.Fatalf("shard %d starts at %d, want %d", sh, lo, next)
		}
		if hi <= lo {
			t.Fatalf("shard %d empty: [%d,%d)", sh, lo, hi)
		}
		next = hi
	}
	if next != s.Topologies {
		t.Fatalf("shards cover [0,%d), want [0,%d)", next, s.Topologies)
	}

	seen := make(map[[3]int]bool)
	for u := 0; u < s.Units(); u++ {
		p, a, sh := s.UnitCoord(u)
		if p < 0 || p >= len(s.Profiles) || a < 0 || a >= s.AgeBuckets || sh < 0 || sh >= s.Shards {
			t.Fatalf("unit %d decodes out of range: (%d,%d,%d)", u, p, a, sh)
		}
		key := [3]int{p, a, sh}
		if seen[key] {
			t.Fatalf("unit %d repeats coordinate %v", u, key)
		}
		seen[key] = true
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	var outs [][]byte
	for _, workers := range []int{1, 8} {
		res, err := Run(context.Background(), spec, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Units != spec.Units() {
			t.Fatalf("workers=%d: %d units, want %d", workers, res.Units, spec.Units())
		}
		outs = append(outs, marshal(t, res))
	}
	if string(outs[0]) != string(outs[1]) {
		t.Fatal("results differ between -workers 1 and -workers 8")
	}

	// Sanity on the content: every scheme column holds one sample per
	// topology, and the Fig. 9 columns exist exactly once (cell 0 only).
	res := &Result{}
	if err := json.Unmarshal(outs[0], res); err != nil {
		t.Fatal(err)
	}
	for _, name := range res.ColumnNames() {
		col := res.Column(name)
		if strings.HasPrefix(name, "fig9/") {
			if col.Moments.N == 0 {
				t.Errorf("column %s is empty", name)
			}
			continue
		}
		if col.Moments.N != uint64(spec.Topologies) {
			t.Errorf("column %s has %d samples, want %d", name, col.Moments.N, spec.Topologies)
		}
		if n := col.Sketch.Count(); n != col.Moments.N {
			t.Errorf("column %s: sketch count %d != moments count %d", name, n, col.Moments.N)
		}
	}
	if res.Column(ColFig9Signal) == nil || res.Column(ColFig9Interference) == nil {
		t.Error("Fig. 9 columns missing")
	}
}

func TestRunKillAndResumeGolden(t *testing.T) {
	spec := testSpec()
	golden, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, golden)

	ckpt := filepath.Join(t.TempDir(), "campaign.jsonl")

	// Phase 1: cancel after the second completed unit — the engine must
	// return the context error with those units already journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, spec, Options{
		Workers:    2,
		Checkpoint: ckpt,
		OnProgress: func(done, total int) {
			if done == 2 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 3 { // header + the two units that triggered the cancel
		t.Fatalf("checkpoint has %d lines after cancel, want ≥ 3", lines)
	}
	if lines-1 >= spec.Units() {
		t.Fatalf("checkpoint already complete (%d units); cancel came too late to test resume", lines-1)
	}

	// Phase 2: resume. Only the missing units are recomputed; the final
	// aggregates must be byte-identical to the uninterrupted run.
	var resumedFrom int
	res, err := Run(context.Background(), spec, Options{
		Workers:    2,
		Checkpoint: ckpt,
		Resume:     true,
		OnProgress: func(done, total int) {
			if resumedFrom == 0 {
				resumedFrom = done
			}
		},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := marshal(t, res); string(got) != string(want) {
		t.Fatal("resumed result differs from uninterrupted run")
	}
	if resumedFrom <= 2 {
		t.Errorf("first progress callback at %d units; journaled units were recomputed", resumedFrom)
	}

	// Phase 3: resuming a complete checkpoint recomputes nothing and
	// still reproduces the bytes.
	res, err = Run(context.Background(), spec, Options{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(t, res); string(got) != string(want) {
		t.Fatal("resume of complete checkpoint differs")
	}
}

func TestRunRefusesExistingCheckpointWithoutResume(t *testing.T) {
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "campaign.jsonl")
	if err := os.WriteFile(ckpt, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), spec, Options{Checkpoint: ckpt})
	if err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("error %v, want checkpoint-exists refusal", err)
	}
}

func TestRunRefusesForeignCheckpoint(t *testing.T) {
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "campaign.jsonl")
	if _, err := Run(context.Background(), spec, Options{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = 43
	_, err := Run(context.Background(), other, Options{Checkpoint: ckpt, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("error %v, want fingerprint mismatch", err)
	}
}

func TestRunToleratesTornTail(t *testing.T) {
	spec := testSpec()
	want := func() []byte {
		res, err := Run(context.Background(), spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return marshal(t, res)
	}()

	for _, tail := range []string{
		`{"unit":1,"colu`,                     // killed mid-write: no newline
		"not json at all\n",                   // corrupt but newline-terminated
		`{"unit":999999,"columns":{}}` + "\n", // parseable but out of range
	} {
		ckpt := filepath.Join(t.TempDir(), "campaign.jsonl")
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Run(ctx, spec, Options{
			Workers:    1,
			Checkpoint: ckpt,
			OnProgress: func(done, total int) {
				if done == 1 {
					cancel()
				}
			},
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("cancelled run returned %v", err)
		}
		f, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		res, err := Run(context.Background(), spec, Options{Checkpoint: ckpt, Resume: true})
		if err != nil {
			t.Fatalf("tail %q: resume failed: %v", tail, err)
		}
		if got := marshal(t, res); string(got) != string(want) {
			t.Fatalf("tail %q: resumed result differs from clean run", tail)
		}
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, testSpec(), Options{})
	if err != context.Canceled {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

func TestRunInvalidSpec(t *testing.T) {
	spec := testSpec()
	spec.Shards = 0
	if _, err := Run(context.Background(), spec, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRunMaintainsObsMetrics(t *testing.T) {
	spec := testSpec()
	before := obs.Default().Snapshot()
	if _, err := Run(context.Background(), spec, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	after := obs.Default().Snapshot()
	for _, name := range []string{"copa.campaign.runs", "copa.campaign.units_done", "copa.campaign.topologies"} {
		if after.Counters[name] <= before.Counters[name] {
			t.Errorf("%s did not advance (%d -> %d)", name, before.Counters[name], after.Counters[name])
		}
	}
	if got, want := after.Counters["copa.campaign.units_done"]-before.Counters["copa.campaign.units_done"], uint64(spec.Units()); got != want {
		t.Errorf("units_done advanced by %d, want %d", got, want)
	}
	if _, ok := after.Gauges["copa.campaign.units_per_sec"]; !ok {
		t.Error("units_per_sec gauge missing")
	}
}
