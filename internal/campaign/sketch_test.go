package campaign

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"copa/internal/rng"
)

// exactQuantile is the nearest-rank sample quantile the sketch
// approximates (rank q·(n−1), no interpolation).
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(q * float64(len(sorted)-1))
	return sorted[rank]
}

func TestSketchQuantileAccuracy(t *testing.T) {
	// The documented bound: any quantile is the midpoint of the bucket
	// holding the exact nearest-rank sample, so it is within half a
	// bucket's relative width (1/(2·subBuckets) ≈ 0.4%) of it.
	src := rng.New(3)
	const n = 50000
	xs := make([]float64, n)
	sk := NewSketch()
	for i := range xs {
		xs[i] = math.Exp(src.Norm()*0.8) * 1e8
		sk.Add(xs[i])
	}
	sort.Float64s(xs)
	const bound = 1.0 / (2 * sketchSubBuckets)
	for _, q := range []float64{0, 0.01, 0.10, 0.50, 0.90, 0.99, 1} {
		got := sk.Quantile(q)
		want := exactQuantile(xs, q)
		if rel := math.Abs(got-want) / want; rel > bound {
			t.Errorf("q=%.2f: sketch %.6g vs exact %.6g (rel %.5f > %.5f)", q, got, want, rel, bound)
		}
	}
}

func TestSketchMergeAccuracy(t *testing.T) {
	// Aggregates merged from arbitrary partitions must equal the
	// single-stream sketch exactly (counts are integers), and their
	// quantiles must stay within the documented error of the exact
	// sample quantiles.
	src := rng.New(4)
	const n, parts = 20000, 7
	xs := make([]float64, n)
	whole := NewSketch()
	shards := make([]*Sketch, parts)
	for i := range shards {
		shards[i] = NewSketch()
	}
	for i := range xs {
		xs[i] = src.Uniform(-90, -20) // dBm-scale, exercises negatives
		whole.Add(xs[i])
		shards[i%parts].Add(xs[i])
	}
	merged := NewSketch()
	for _, s := range shards {
		merged.Merge(s)
	}
	a, _ := json.Marshal(whole)
	b, _ := json.Marshal(merged)
	if string(a) != string(b) {
		t.Fatal("merged sketch differs from single-stream sketch")
	}
	// Merge order must not matter either.
	backwards := NewSketch()
	for i := parts - 1; i >= 0; i-- {
		backwards.Merge(shards[i])
	}
	c, _ := json.Marshal(backwards)
	if string(a) != string(c) {
		t.Fatal("sketch merge is order-dependent")
	}

	sort.Float64s(xs)
	const bound = 1.0 / (2 * sketchSubBuckets)
	for _, q := range []float64{0.05, 0.25, 0.50, 0.75, 0.95} {
		got := merged.Quantile(q)
		want := exactQuantile(xs, q)
		if rel := math.Abs(got-want) / math.Abs(want); rel > bound {
			t.Errorf("q=%.2f: merged %.6g vs exact %.6g (rel %.5f > %.5f)", q, got, want, rel, bound)
		}
	}
}

func TestSketchSignsAndZero(t *testing.T) {
	sk := NewSketch()
	for _, v := range []float64{-4, -2, 0, 0, 2, 4} {
		sk.Add(v)
	}
	if n := sk.Count(); n != 6 {
		t.Fatalf("count %d, want 6", n)
	}
	if q := sk.Quantile(0.5); math.Abs(q) > 0.01 {
		t.Errorf("median %g, want ≈0", q)
	}
	if q := sk.Quantile(0); q > -3.9 {
		t.Errorf("min-quantile %g, want ≈-4", q)
	}
	if q := sk.Quantile(1); q < 3.9 {
		t.Errorf("max-quantile %g, want ≈4", q)
	}
	cdf := sk.CDF()
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value <= cdf[i-1].Value || cdf[i].P < cdf[i-1].P {
			t.Fatalf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
	if last := cdf[len(cdf)-1]; last.P != 1 {
		t.Errorf("CDF ends at %g, want 1", last.P)
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	src := rng.New(5)
	sk := NewSketch()
	for i := 0; i < 1000; i++ {
		sk.Add(src.Uniform(-1e9, 1e9))
	}
	sk.Add(0)
	data, err := json.Marshal(sk)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, _ := json.Marshal(&back)
	if string(data) != string(data2) {
		t.Fatal("JSON round-trip not stable")
	}
	if back.Count() != sk.Count() {
		t.Fatalf("count %d after round-trip, want %d", back.Count(), sk.Count())
	}
}

func TestSketchBucketRelativeWidth(t *testing.T) {
	// Every value must land in a bucket whose midpoint is within the
	// documented relative error, across magnitudes and signs.
	for _, v := range []float64{1e-12, 0.37, 1, 1.5, 2, 1e6, 8.25e9, -3.7e-5, -42} {
		mid := bucketMid(keyOf(v))
		if rel := math.Abs(mid-v) / math.Abs(v); rel > 1.0/(2*sketchSubBuckets) {
			t.Errorf("v=%g: midpoint %g off by %.5f relative", v, mid, rel)
		}
	}
}
