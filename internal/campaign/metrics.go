package campaign

import (
	"fmt"

	"copa/internal/obs"
)

// Handles resolved once at init; workers and the collector only touch
// atomics on the hot path.
var (
	mRuns          = obs.C("copa.campaign.runs")
	mUnitsDone     = obs.C("copa.campaign.units_done")
	mUnitsFailed   = obs.C("copa.campaign.units_failed")
	mUnitsResumed  = obs.C("copa.campaign.units_resumed")
	mUnitsInFlight = obs.G("copa.campaign.units_in_flight")
	mTopologies    = obs.C("copa.campaign.topologies")
	mUnitSeconds   = obs.T("copa.campaign.unit_seconds")
	// mUnitsPerSec is the collector's running completion rate for this
	// campaign (units finished / elapsed wall time).
	mUnitsPerSec = obs.G("copa.campaign.units_per_sec")
	// mCheckpointUnix is the wall time of the last journal append;
	// checkpoint age is "now − this".
	mCheckpointUnix = obs.G("copa.campaign.checkpoint_last_write_unixsec")
	// mETASeconds is the collector's remaining-work estimate at the
	// current completion rate (0 until the first unit of a run lands).
	mETASeconds = obs.G("copa.campaign.eta_seconds")
)

// ShardGauges resolves one completion-fraction gauge per shard index,
// named copa.campaign.shard_progress.s<k>. Shard counts are small and
// stable across a process's campaigns, so repeated Run calls resolve
// the same handles.
func ShardGauges(shards int) []*obs.Gauge {
	gs := make([]*obs.Gauge, shards)
	for sh := range gs {
		gs[sh] = obs.G(fmt.Sprintf("copa.campaign.shard_progress.s%d", sh))
	}
	return gs
}
