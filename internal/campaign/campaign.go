// Package campaign is the sweep-orchestration subsystem: it shards a
// scenario space (topology seeds × impairment profiles × CSI-age grid)
// into deterministic work units, fans the units out over a worker pool
// of reusable evaluation arenas, streams per-unit results into
// mergeable online aggregates (Moments + quantile Sketch — no
// per-sample retention, so a 100k-topology campaign runs in bounded
// memory), and journals completed units to a JSONL checkpoint so a
// killed campaign resumes exactly where it stopped.
//
// The key invariant is stateless substream derivation: topology i's
// deployment and evaluation RNG streams derive from (campaign seed, i)
// via rng.Derive, never from execution order. Unit results are
// therefore bit-identical regardless of worker count, interleaving, or
// resume, and the engine merges them in ascending unit order, so the
// final aggregates — and their JSON serialization — are byte-identical
// across all of those too.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"copa/internal/channel"
)

// Profile is one named impairment calibration in the sweep grid.
type Profile struct {
	Name        string              `json:"name"`
	Impairments channel.Impairments `json:"impairments"`
}

// DefaultProfiles is the single-profile grid matching the paper's
// WARP-class calibration.
func DefaultProfiles() []Profile {
	return []Profile{{Name: "default", Impairments: channel.DefaultImpairments()}}
}

// evalSeedXor separates the evaluation-stream family from the
// deployment-stream family, which derives directly from Seed. Must
// match internal/testbed's RunScenario for campaign results to be
// bit-identical with the serial harness.
const evalSeedXor = 0x5eed

// Spec fully describes a campaign: the scenario space and its
// sharding. Two campaigns with equal Specs produce byte-identical
// aggregates; the checkpoint journal embeds a fingerprint of the Spec
// so a resume against different parameters fails loudly instead of
// merging incompatible results.
type Spec struct {
	// Seed is the campaign master seed: topology i is
	// channel.DeploymentAt(Seed, Scenario, i) everywhere.
	Seed int64 `json:"seed"`
	// Scenario is the antenna configuration.
	Scenario channel.Scenario `json:"scenario"`
	// Topologies is the population size per grid cell.
	Topologies int `json:"topologies"`
	// Shards splits each cell's topology range into Shards contiguous
	// work units — the granularity of scheduling and checkpointing.
	Shards int `json:"shards"`
	// Profiles is the impairment axis of the grid.
	Profiles []Profile `json:"profiles"`
	// AgeBuckets is the CSI-age axis: bucket a evaluates with
	// Impairments.Aged(a/AgeBuckets), so bucket 0 is fresh CSI.
	// At least 1.
	AgeBuckets int `json:"age_buckets"`
	// InterferenceDeltaDB scales all cross-channels (−10 reproduces
	// the Fig. 12 weak-interference emulation).
	InterferenceDeltaDB float64 `json:"interference_delta_db,omitempty"`
	// SkipCOPAPlus disables the (expensive) mercury/water-filling
	// variants.
	SkipCOPAPlus bool `json:"skip_copa_plus,omitempty"`
	// MultiDecoder evaluates with per-subcarrier rate selection.
	MultiDecoder bool `json:"multi_decoder,omitempty"`
}

// DefaultSpec mirrors the paper's evaluation shape: 30 topologies,
// WARP-class impairments, fresh CSI, one shard per four topologies.
func DefaultSpec(seed int64) Spec {
	return Spec{
		Seed:       seed,
		Scenario:   channel.Scenario4x2,
		Topologies: 30,
		Shards:     8,
		Profiles:   DefaultProfiles(),
		AgeBuckets: 1,
	}
}

// Validate rejects specs the engine cannot shard deterministically.
func (s Spec) Validate() error {
	if s.Topologies < 1 {
		return fmt.Errorf("campaign: topologies must be ≥ 1 (got %d)", s.Topologies)
	}
	if s.Shards < 1 {
		return fmt.Errorf("campaign: shards must be ≥ 1 (got %d)", s.Shards)
	}
	if s.Shards > s.Topologies {
		return fmt.Errorf("campaign: shards (%d) exceed topologies (%d)", s.Shards, s.Topologies)
	}
	if len(s.Profiles) == 0 {
		return fmt.Errorf("campaign: at least one impairment profile required")
	}
	seen := make(map[string]bool, len(s.Profiles))
	for _, p := range s.Profiles {
		if p.Name == "" || strings.ContainsRune(p.Name, '/') {
			return fmt.Errorf("campaign: profile name %q must be non-empty and slash-free", p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("campaign: duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if s.AgeBuckets < 1 {
		return fmt.Errorf("campaign: age buckets must be ≥ 1 (got %d)", s.AgeBuckets)
	}
	return nil
}

// Cells is the number of (profile, age) grid cells.
func (s Spec) Cells() int { return len(s.Profiles) * s.AgeBuckets }

// Units is the total number of work units: every cell split into
// Shards topology ranges.
func (s Spec) Units() int { return s.Cells() * s.Shards }

// UnitCoord decodes unit u into its grid coordinates.
func (s Spec) UnitCoord(u int) (profile, age, shard int) {
	cell := u / s.Shards
	return cell / s.AgeBuckets, cell % s.AgeBuckets, u % s.Shards
}

// shardRange is shard sh's half-open topology index range. Ranges
// partition [0, Topologies) with sizes differing by at most one.
func (s Spec) shardRange(sh int) (lo, hi int) {
	return sh * s.Topologies / s.Shards, (sh + 1) * s.Topologies / s.Shards
}

// Fingerprint is a stable hash of everything that determines the
// campaign's results, used to pair checkpoints with their spec. It
// hashes the canonical JSON form, which is deterministic (struct
// fields marshal in declaration order).
func (s Spec) Fingerprint() string {
	data, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("campaign: spec not marshalable: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ColumnName names the aggregate column for one (profile, age, scheme)
// cell: "<profile>/age<a>/<scheme>".
func ColumnName(profile string, age int, scheme string) string {
	return fmt.Sprintf("%s/age%d/%s", profile, age, scheme)
}

// Fig. 9 columns: the deployment scatter aggregated as CDFs (one
// sample per client). They depend only on the topology population, so
// only grid cell 0 contributes them.
const (
	ColFig9Signal       = "fig9/signal_dbm"
	ColFig9Interference = "fig9/interference_dbm"
)

// Column is one mergeable aggregate stream: online moments plus a
// quantile sketch. Values are throughput in bits/s for scheme columns
// and dBm for the Fig. 9 columns.
type Column struct {
	Moments
	Sketch *Sketch `json:"sketch"`
}

// NewColumn returns an empty column.
func NewColumn() *Column { return &Column{Sketch: NewSketch()} }

// Add folds one sample into both aggregates.
func (c *Column) Add(v float64) {
	c.Moments.Add(v)
	c.Sketch.Add(v)
}

// Merge folds another column in (o's samples after c's).
func (c *Column) Merge(o *Column) {
	c.Moments.Merge(o.Moments)
	c.Sketch.Merge(o.Sketch)
}

// UnitResult is one completed work unit's aggregates — what workers
// emit, the journal records, and the finalizer merges.
type UnitResult struct {
	Unit    int                `json:"unit"`
	Columns map[string]*Column `json:"columns"`
}

// col returns (creating if needed) a named column.
func (r *UnitResult) col(name string) *Column {
	c, ok := r.Columns[name]
	if !ok {
		c = NewColumn()
		r.Columns[name] = c
	}
	return c
}

// Result is a completed campaign: the spec and every merged column.
// Serialize with MarshalIndent — map keys sort, floats round-trip, so
// equal campaigns yield byte-identical files.
type Result struct {
	Spec    Spec               `json:"spec"`
	Units   int                `json:"units"`
	Columns map[string]*Column `json:"columns"`
}

// Column returns the named column, or nil.
func (r *Result) Column(name string) *Column { return r.Columns[name] }

// SchemeColumn returns the (profile, age, scheme) column, or nil.
func (r *Result) SchemeColumn(profile string, age int, scheme string) *Column {
	return r.Columns[ColumnName(profile, age, scheme)]
}

// ColumnNames lists the columns in sorted order.
func (r *Result) ColumnNames() []string {
	names := make([]string, 0, len(r.Columns))
	for n := range r.Columns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
