package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5} {
		a := randomMatrix(r, n, n)
		if got := Identity(n).Mul(a); !got.Equal(a, 1e-12) {
			t.Errorf("I·A != A for n=%d", n)
		}
		if got := a.Mul(Identity(n)); !got.Equal(a, 1e-12) {
			t.Errorf("A·I != A for n=%d", n)
		}
	}
}

func TestMulShapes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randomMatrix(r, 2, 3)
	b := randomMatrix(r, 3, 4)
	c := a.Mul(b)
	if c.Rows != 2 || c.Cols != 4 {
		t.Fatalf("got shape %dx%d, want 2x4", c.Rows, c.Cols)
	}
	// Spot-check one element against a manual dot product.
	var want complex128
	for k := 0; k < 3; k++ {
		want += a.At(1, k) * b.At(k, 2)
	}
	if cmplx.Abs(c.At(1, 2)-want) > 1e-12 {
		t.Errorf("element mismatch: got %v want %v", c.At(1, 2), want)
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestHermitianTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomMatrix(r, 3, 5)
	h := a.H()
	if h.Rows != 5 || h.Cols != 3 {
		t.Fatalf("H shape %dx%d, want 5x3", h.Rows, h.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if h.At(j, i) != cmplx.Conj(a.At(i, j)) {
				t.Fatalf("H[%d,%d] != conj(A[%d,%d])", j, i, i, j)
			}
		}
	}
	if !a.H().H().Equal(a, 0) {
		t.Error("(Aᴴ)ᴴ != A")
	}
}

func TestAddSubScale(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randomMatrix(r, 3, 3)
	b := randomMatrix(r, 3, 3)
	if !a.Add(b).Sub(b).Equal(a, 1e-12) {
		t.Error("(A+B)-B != A")
	}
	if !a.Scale(2).Sub(a).Equal(a, 1e-12) {
		t.Error("2A-A != A")
	}
}

func TestColRowAccessors(t *testing.T) {
	a := FromRows([][]complex128{
		{1, 2, 3},
		{4, 5, 6},
	})
	col := a.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Errorf("Col(1) = %v", col)
	}
	row := a.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	sub := a.ColsSlice(2, 0)
	if sub.At(0, 0) != 3 || sub.At(1, 1) != 4 {
		t.Errorf("ColsSlice = %v", sub)
	}
	rsub := a.RowsSlice(1)
	if rsub.Rows != 1 || rsub.At(0, 0) != 4 {
		t.Errorf("RowsSlice = %v", rsub)
	}
	a2 := a.Clone()
	a2.SetCol(0, []complex128{9, 9})
	if a2.At(0, 0) != 9 || a.At(0, 0) != 1 {
		t.Error("SetCol/Clone aliasing")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("‖A‖_F = %g, want 5", got)
	}
	if NewMatrix(0, 0).FrobeniusNorm() != 0 {
		t.Error("empty norm should be 0")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	got := a.MulVec([]complex128{1, 1i})
	if cmplx.Abs(got[0]-(1+2i)) > 1e-12 || cmplx.Abs(got[1]-(3+4i)) > 1e-12 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestDotNorm(t *testing.T) {
	a := []complex128{1, 1i}
	b := []complex128{1i, 1}
	// aᴴ·b = conj(1)·1i + conj(1i)·1 = 1i − 1i = 0
	if d := Dot(a, b); cmplx.Abs(d) > 1e-12 {
		t.Errorf("Dot = %v, want 0", d)
	}
	if n := Norm2(a); math.Abs(n-math.Sqrt2) > 1e-12 {
		t.Errorf("Norm2 = %g", n)
	}
}

// Property: matrix multiplication is associative.
func TestQuickMulAssociative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a, b, c := randomMatrix(r, n, n), randomMatrix(r, n, n), randomMatrix(r, n, n)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equal(right, 1e-9*math.Max(1, left.MaxAbs()))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᴴ = Bᴴ·Aᴴ.
func TestQuickMulHermitian(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a, b := randomMatrix(r, m, k), randomMatrix(r, k, n)
		return a.Mul(b).H().Equal(b.H().Mul(a.H()), 1e-10)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	_ = FromRows([][]complex128{{1 + 2i}}).String()
	_ = NewMatrix(0, 0).String()
}
