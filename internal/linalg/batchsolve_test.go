package linalg

import (
	"math/rand"
	"testing"
)

// kernelEquivTol is the documented kernel-equivalence bound (DESIGN §13)
// the batched solver must hold against the scalar SolveWS reference.
// The N ≤ 4 kernel is additionally held to bit-identity — it replays
// luWS's exact operation order.
const kernelEquivTol = 1e-6

// randomSolveBatch fills a batch (and parallel scalar inputs) with
// well-conditioned random systems; slot `sing` (when ≥ 0) is made
// exactly singular.
func randomSolveBatch(ws *Workspace, r *rand.Rand, n, count, sing int) (SolveBatch, []*Matrix, [][]complex128) {
	b := ws.NewSolveBatch(n, count)
	ms := make([]*Matrix, count)
	bs := make([][]complex128, count)
	for k := 0; k < count; k++ {
		m := NewMatrix(n, n)
		rhs := make([]complex128, n)
		for i := 0; i < n; i++ {
			rhs[i] = complex(r.NormFloat64(), r.NormFloat64())
			for j := 0; j < n; j++ {
				v := complex(r.NormFloat64(), r.NormFloat64())
				if i == j {
					// Diagonal dominance keeps every slot well-conditioned.
					v += complex(float64(2*n), 0)
				}
				m.Set(i, j, v)
			}
		}
		if k == sing {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, 0)
				}
			}
		}
		ms[k], bs[k] = m, rhs
		for i := 0; i < n; i++ {
			b.SetB(k, i, rhs[i])
			for j := 0; j < n; j++ {
				b.SetA(k, i, j, m.At(i, j))
			}
		}
	}
	return b, ms, bs
}

// TestSolveBatchMatchesScalar checks every batch slot against a private
// scalar SolveWS run: bit-identical for the N ≤ 4 in-register kernel,
// kernelEquivTol for the generic fallback.
func TestSolveBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		const count = 37
		var ws Workspace
		sing := count / 2
		b, ms, bs := randomSolveBatch(&ws, r, n, count, sing)
		b.Solve(&ws)
		for k := 0; k < count; k++ {
			var sws Workspace
			x, err := ms[k].SolveWS(&sws, bs[k])
			if k == sing {
				if err == nil {
					t.Fatalf("n=%d: scalar path solved the singular slot", n)
				}
				if !b.Singular[k] {
					t.Errorf("n=%d slot %d: batch missed the singular system", n, k)
				}
				continue
			}
			if err != nil {
				t.Fatalf("n=%d slot %d: scalar SolveWS: %v", n, k, err)
			}
			if b.Singular[k] {
				t.Errorf("n=%d slot %d: batch flagged a solvable system singular", n, k)
				continue
			}
			for i := 0; i < n; i++ {
				got, want := b.XAt(k, i), x[i]
				if n <= 4 {
					if got != want {
						t.Errorf("n=%d slot %d x[%d]: batch %v != scalar %v (bit-identity)", n, k, i, got, want)
					}
					continue
				}
				if d := cabs(got - want); d > kernelEquivTol {
					t.Errorf("n=%d slot %d x[%d]: |batch-scalar| = %g > %g", n, k, i, d, kernelEquivTol)
				}
			}
		}
	}
}

// TestSolveBatchSingularSlotIsolated: a singular slot must not disturb
// its neighbours (the whole point of per-slot Singular flags).
func TestSolveBatchSingularSlotIsolated(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var ws Workspace
	b, ms, bs := randomSolveBatch(&ws, r, 3, 8, 3)
	b.Solve(&ws)
	for k := 0; k < 8; k++ {
		if k == 3 {
			continue
		}
		var sws Workspace
		x, err := ms[k].SolveWS(&sws, bs[k])
		if err != nil {
			t.Fatalf("slot %d: %v", k, err)
		}
		for i := 0; i < 3; i++ {
			if b.XAt(k, i) != x[i] {
				t.Fatalf("slot %d drifted from scalar after singular neighbour", k)
			}
		}
	}
	for i := 0; i < 3; i++ {
		if b.XAt(3, i) != 0 {
			t.Errorf("singular slot x[%d] = %v, want 0", i, b.XAt(3, i))
		}
	}
}

func cabs(v complex128) float64 {
	re, im := real(v), imag(v)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re > im {
		return re
	}
	return im
}
