package linalg

import (
	"math"
	"math/cmplx"
)

// svdEps is the relative off-diagonal tolerance at which the one-sided
// Jacobi iteration is considered converged.
const svdEps = 1e-13

// svdMaxSweeps bounds the Jacobi iteration. The matrices in this codebase
// are at most a handful of antennas on a side, for which Jacobi converges
// in well under ten sweeps; the bound only guards against pathological
// floating-point behaviour.
const svdMaxSweeps = 64

// SVD computes the full singular value decomposition A = U·Σ·Vᴴ using
// one-sided Jacobi rotations, which are numerically robust for the small,
// possibly rank-deficient channel matrices used in precoding.
//
// U is Rows×Rows unitary, V is Cols×Cols unitary, and s holds the
// min(Rows, Cols) singular values in descending order.
func (m *Matrix) SVD() (u *Matrix, s []float64, v *Matrix) {
	var ws Workspace
	uw, sw, vw := m.SVDWS(&ws)
	return uw.Clone(), append([]float64(nil), sw...), vw.Clone()
}

// SVDWS is SVD with all scratch and result storage carved from ws:
// allocation-free once ws has warmed up. The returned matrices and slice
// live in ws (see Workspace ownership rules).
func (m *Matrix) SVDWS(ws *Workspace) (u *Matrix, s []float64, v *Matrix) {
	rows, cols := m.Rows, m.Cols
	b := ws.Clone(m) // working copy whose columns are orthogonalized in place
	v = ws.Identity(cols)

	// Columns whose norm falls below this floor (relative to ‖A‖_F) are
	// numerically zero: rotating them against each other only churns
	// rounding noise, and at subnormal magnitudes the phase computation
	// loses unitarity. They are excluded from rotations and convergence.
	floor := 1e-14 * m.FrobeniusNorm()

	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				var alpha, beta float64
				var gamma complex128
				for r := 0; r < rows; r++ {
					ap := b.Data[r*cols+p]
					aq := b.Data[r*cols+q]
					alpha += real(ap)*real(ap) + imag(ap)*imag(ap)
					beta += real(aq)*real(aq) + imag(aq)*imag(aq)
					gamma += cmplx.Conj(ap) * aq
				}
				if alpha <= floor*floor || beta <= floor*floor {
					continue
				}
				g := cmplx.Abs(gamma)
				if g <= svdEps*math.Sqrt(alpha*beta) {
					continue
				}
				off += g / math.Sqrt(alpha*beta)

				// Phase-align column q so the pair inner product becomes
				// real, then apply a classic real Jacobi rotation.
				phase := gamma / complex(g, 0) // e^{iφ}
				zeta := (beta - alpha) / (2 * g)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t

				cc := complex(c, 0)
				sc := complex(sn, 0)
				phConj := cmplx.Conj(phase)
				for r := 0; r < rows; r++ {
					ap := b.Data[r*cols+p]
					aq := b.Data[r*cols+q] * phConj
					b.Data[r*cols+p] = cc*ap - sc*aq
					b.Data[r*cols+q] = sc*ap + cc*aq
				}
				for r := 0; r < cols; r++ {
					vp := v.Data[r*cols+p]
					vq := v.Data[r*cols+q] * phConj
					v.Data[r*cols+p] = cc*vp - sc*vq
					v.Data[r*cols+q] = sc*vp + cc*vq
				}
			}
		}
		if off < svdEps {
			break
		}
	}

	// Column norms are the singular values; sort descending.
	norms := ws.Float64s(cols)
	for c := 0; c < cols; c++ {
		var nn float64
		for r := 0; r < rows; r++ {
			x := b.Data[r*cols+c]
			nn += real(x)*real(x) + imag(x)*imag(x)
		}
		norms[c] = math.Sqrt(nn)
	}
	order := ws.Ints(cols)
	for i := range order {
		order[i] = i
	}
	SortOrderDesc(order, norms)

	bs := ws.ColsSlice(b, order)
	v = ws.ColsSlice(v, order)
	sorted := ws.Float64s(cols)
	for i, idx := range order {
		sorted[i] = norms[idx]
	}

	nsv := rows
	if cols < rows {
		nsv = cols
	}
	s = sorted[:nsv]

	// Build U: normalized non-degenerate columns of the rotated matrix,
	// completed to a full orthonormal basis of C^rows.
	u = ws.Matrix(rows, rows)
	smax := 0.0
	if cols > 0 {
		smax = sorted[0]
	}
	col := 0
	for c := 0; c < nsv && col < rows; c++ {
		if sorted[c] > 1e-14*math.Max(1, smax) {
			for r := 0; r < rows; r++ {
				u.Data[r*rows+col] = bs.Data[r*cols+c] / complex(sorted[c], 0)
			}
			col++
		}
	}
	completeBasis(ws, u, col)
	return u, s, v
}

// completeBasis fills columns [have, n) of the n×n matrix u with an
// orthonormal completion of its first `have` (already orthonormal) columns,
// using Gram–Schmidt against the canonical basis. Scratch comes from ws.
func completeBasis(ws *Workspace, u *Matrix, have int) {
	n := u.Rows
	for col := have; col < n; col++ {
		for try := 0; try < n; try++ {
			cand := ws.Complex(n)
			cand[try] = 1
			// Orthogonalize against all existing columns (twice, for
			// numerical hygiene).
			for pass := 0; pass < 2; pass++ {
				for c := 0; c < col; c++ {
					var proj complex128
					for r := 0; r < n; r++ {
						proj += cmplx.Conj(u.Data[r*n+c]) * cand[r]
					}
					for r := 0; r < n; r++ {
						cand[r] -= proj * u.Data[r*n+c]
					}
				}
			}
			if nrm := Norm2(cand); nrm > 1e-6 {
				for r := 0; r < n; r++ {
					cand[r] /= complex(nrm, 0)
				}
				u.SetCol(col, cand)
				break
			}
		}
	}
}

// Rank returns the numerical rank of m: the number of singular values
// exceeding tol relative to the largest singular value.
func (m *Matrix) Rank(tol float64) int {
	var ws Workspace
	_, s, _ := m.SVDWS(&ws)
	if len(s) == 0 || s[0] == 0 {
		return 0
	}
	rank := 0
	for _, sv := range s {
		if sv > tol*s[0] {
			rank++
		}
	}
	return rank
}

// Nullspace returns an orthonormal basis for the right nullspace of m:
// a Cols×k matrix N with m·N ≈ 0, where k = Cols − rank(m). Singular values
// below tol relative to the largest are treated as zero. The returned
// matrix has zero columns when m has full column rank.
func (m *Matrix) Nullspace(tol float64) *Matrix {
	var ws Workspace
	return m.NullspaceWS(&ws, tol).Clone()
}

// NullspaceWS is Nullspace with all storage carved from ws. The returned
// matrix lives in ws (see Workspace ownership rules).
func (m *Matrix) NullspaceWS(ws *Workspace, tol float64) *Matrix {
	_, s, v := m.SVDWS(ws)
	smax := 0.0
	if len(s) > 0 {
		smax = s[0]
	}
	rank := 0
	for _, sv := range s {
		if smax > 0 && sv > tol*smax {
			rank++
		}
	}
	idx := ws.Ints(m.Cols - rank)
	for c := rank; c < m.Cols; c++ {
		idx[c-rank] = c
	}
	return ws.ColsSlice(v, idx)
}
