package linalg

import (
	"math/rand"
	"testing"
)

// TestWorkspaceKernelAllocBudgets pins the steady-state allocation budget
// of the workspace-backed kernels at zero: after one warm-up call grows
// the arena chunks, repeated Reset+call cycles must not allocate.
func TestWorkspaceKernelAllocBudgets(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomMatrix(r, 4, 4)
	herm := a.Mul(a.H()) // Hermitian PSD
	tall := randomMatrix(r, 4, 3)
	wide := tall.H()
	rhs := make([]complex128, 4)
	for i := range rhs {
		rhs[i] = complex(r.NormFloat64(), r.NormFloat64())
	}

	kernels := []struct {
		name string
		run  func(ws *Workspace)
	}{
		{"EigHermitianWS", func(ws *Workspace) { herm.EigHermitianWS(ws) }},
		{"SVDWS", func(ws *Workspace) { tall.SVDWS(ws) }},
		{"QRWS", func(ws *Workspace) { tall.QRWS(ws) }},
		{"SolveWS", func(ws *Workspace) {
			if _, err := herm.SolveWS(ws, rhs); err != nil {
				t.Fatalf("SolveWS: %v", err)
			}
		}},
		{"NullspaceWS", func(ws *Workspace) { wide.NullspaceWS(ws, 1e-9) }},
	}
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			var ws Workspace
			k.run(&ws) // warm up the arena
			allocs := testing.AllocsPerRun(100, func() {
				ws.Reset()
				k.run(&ws)
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocs/run in steady state, want 0", k.name, allocs)
			}
		})
	}
}

// TestWorkspaceCarveReuse checks that reused carves come back zeroed and
// that Reset actually rewinds rather than growing.
func TestWorkspaceCarveReuse(t *testing.T) {
	var ws Workspace
	c := ws.Complex(8)
	for i := range c {
		c[i] = complex(float64(i)+1, 0)
	}
	f := ws.Float64s(5)
	for i := range f {
		f[i] = float64(i) + 1
	}
	ws.Reset()
	c2 := ws.Complex(8)
	for i, v := range c2 {
		if v != 0 {
			t.Fatalf("reused complex carve not cleared at %d: %v", i, v)
		}
	}
	if &c[0] != &c2[0] {
		t.Error("Reset did not rewind the complex arena to the same storage")
	}
	f2 := ws.Float64s(5)
	for i, v := range f2 {
		if v != 0 {
			t.Fatalf("reused float carve not cleared at %d: %v", i, v)
		}
	}
}
