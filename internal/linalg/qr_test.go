package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkQR(t *testing.T, a *Matrix) {
	t.Helper()
	q, r := a.QR()
	if q.Rows != a.Rows || q.Cols != a.Rows {
		t.Fatalf("Q shape %dx%d", q.Rows, q.Cols)
	}
	if r.Rows != a.Rows || r.Cols != a.Cols {
		t.Fatalf("R shape %dx%d", r.Rows, r.Cols)
	}
	if !q.H().Mul(q).IsIdentity(1e-9) {
		t.Error("Q not unitary")
	}
	// R upper triangular.
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < r.Cols && j < i; j++ {
			if cmplx.Abs(r.At(i, j)) > 1e-10 {
				t.Fatalf("R[%d,%d] = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
	scale := math.Max(1, a.MaxAbs())
	if !q.Mul(r).Equal(a, 1e-9*scale) {
		t.Error("QR != A")
	}
}

func TestQRShapes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 1}, {3, 3}, {4, 2}, {2, 4}, {5, 3}, {3, 5}, {4, 4}} {
		checkQR(t, randomMatrix(r, dims[0], dims[1]))
	}
}

func TestQRZeroAndRankDeficient(t *testing.T) {
	checkQR(t, NewMatrix(3, 2))
	a := FromRows([][]complex128{
		{1, 2, 1},
		{2, 4, 2},
		{1i, 2i, 1i},
	})
	checkQR(t, a)
}

func TestQuickQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(5), 1+r.Intn(5)
		a := randomMatrix(r, rows, cols)
		q, rr := a.QR()
		scale := math.Max(1, a.MaxAbs())
		return q.H().Mul(q).IsIdentity(1e-8) && q.Mul(rr).Equal(a, 1e-8*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNullspaceQRAgreesWithSVD(t *testing.T) {
	// Both nullspace computations must span the same subspace: the
	// projector N·Nᴴ must match.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + r.Intn(3)
		cols := rows + 1 + r.Intn(3)
		a := randomMatrix(r, rows, cols)
		n1 := a.Nullspace(1e-10)
		n2 := a.NullspaceQR(1e-10)
		if n1.Cols != n2.Cols {
			t.Fatalf("dims differ: SVD %d vs QR %d", n1.Cols, n2.Cols)
		}
		if a.Mul(n2).MaxAbs() > 1e-8*math.Max(1, a.MaxAbs()) {
			t.Fatal("QR nullspace not annihilated by A")
		}
		p1 := n1.Mul(n1.H())
		p2 := n2.Mul(n2.H())
		if !p1.Equal(p2, 1e-7) {
			t.Fatal("nullspace projectors differ between SVD and QR")
		}
	}
}

func BenchmarkQR4x4(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.QR()
	}
}
