package linalg

import (
	"math"
	"math/cmplx"
)

// EigHermitian computes the eigendecomposition of a Hermitian matrix
// m = V·diag(λ)·Vᴴ via the classical two-sided Jacobi method: eigenvalues
// in descending order, V unitary with eigenvectors as columns. Covariance
// matrices (receive covariance, interference-plus-noise) are the intended
// inputs; behaviour on non-Hermitian matrices is undefined.
func (m *Matrix) EigHermitian() (eigs []float64, v *Matrix) {
	var ws Workspace
	e, vv := m.EigHermitianWS(&ws)
	return append([]float64(nil), e...), vv.Clone()
}

// offDiagAbsSum is the Jacobi convergence functional: the sum of
// off-diagonal element magnitudes of a.
func offDiagAbsSum(a *Matrix) float64 {
	n := a.Rows
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += cmplx.Abs(a.At(i, j))
			}
		}
	}
	return s
}

// EigHermitianWS is EigHermitian with all scratch and result storage carved
// from ws: allocation-free once ws has warmed up. The returned slice and
// matrix live in ws (see Workspace ownership rules).
func (m *Matrix) EigHermitianWS(ws *Workspace) (eigs []float64, v *Matrix) {
	n := m.Rows
	if m.Cols != n {
		panic("linalg: EigHermitian requires a square matrix")
	}
	a := ws.Clone(m)
	v = ws.Identity(n)

	scale := math.Max(m.MaxAbs(), 1e-300)
	for sweep := 0; sweep < 64 && offDiagAbsSum(a) > 1e-13*scale*float64(n*n); sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				g := cmplx.Abs(apq)
				if g <= 1e-15*scale {
					continue
				}
				app := real(a.At(p, p))
				aqq := real(a.At(q, q))
				// Phase-align then rotate, as in the one-sided SVD.
				phase := apq / complex(g, 0)
				zeta := (aqq - app) / (2 * g)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				cc := complex(c, 0)
				sc := complex(s, 0) * phase

				// A ← Jᴴ A J with J acting on columns/rows p, q.
				for i := 0; i < n; i++ {
					aip := a.At(i, p)
					aiq := a.At(i, q)
					a.Set(i, p, cc*aip-cmplx.Conj(sc)*aiq)
					a.Set(i, q, sc*aip+cc*aiq)
				}
				for i := 0; i < n; i++ {
					api := a.At(p, i)
					aqi := a.At(q, i)
					a.Set(p, i, cc*api-sc*aqi)
					a.Set(q, i, cmplx.Conj(sc)*api+cc*aqi)
				}
				for i := 0; i < n; i++ {
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, cc*vip-cmplx.Conj(sc)*viq)
					v.Set(i, q, sc*vip+cc*viq)
				}
			}
		}
	}

	diag := ws.Float64s(n)
	order := ws.Ints(n)
	for i := range diag {
		diag[i] = real(a.At(i, i))
		order[i] = i
	}
	SortOrderDesc(order, diag)
	sorted := ws.Float64s(n)
	for i, idx := range order {
		sorted[i] = diag[idx]
	}
	return sorted, ws.ColsSlice(v, order)
}
