package linalg

// Workspace is a bump-allocator arena for the scratch and result storage
// of the *WS kernel variants (EigHermitianWS, SVDWS, QRWS, SolveWS,
// NullspaceWS). Memory is carved from chunks that persist across Reset,
// so a workspace that has warmed up to the high-water mark of a workload
// serves every subsequent call without touching the Go allocator.
//
// Ownership rules (see DESIGN.md "Workspace & ownership"):
//
//   - Values returned by *WS functions (matrices, slices) live in the
//     workspace and are valid only until the owner calls Reset. Callers
//     that need longer-lived results must copy out (Matrix.Clone into the
//     heap, append into a fresh slice).
//   - *WS functions never call Reset themselves; only the owner of the
//     workspace decides when previously returned values die.
//   - A Workspace is not safe for concurrent use. Concurrent pipelines
//     use one Workspace per goroutine (see the strategy.Evaluator race
//     test).
//
// The zero value is ready to use.
type Workspace struct {
	cx chunked[complex128]
	fl chunked[float64]
	in chunked[int]
	bo chunked[bool]
	fr chunked[[]float64]
	mh chunked[Matrix]
	mp chunked[*Matrix]
}

// Reset rewinds the arena. All values previously handed out by this
// workspace are dead after Reset; the backing chunks are retained for
// reuse.
func (w *Workspace) Reset() {
	w.cx.reset()
	w.fl.reset()
	w.in.reset()
	w.bo.reset()
	w.fr.reset()
	w.mh.reset()
	w.mp.reset()
}

// chunked is a growable bump allocator over fixed chunks of T. Chunks are
// allocated with geometrically increasing sizes (so one-shot workspaces
// stay small while long-lived ones converge to few large chunks) and are
// never freed; reset just rewinds the cursor.
type chunked[T any] struct {
	chunks   [][]T
	idx, off int
}

func (a *chunked[T]) reset() { a.idx, a.off = 0, 0 }

// take carves a zeroed slice of n elements. base is the first-chunk size,
// maxChunk caps the geometric growth.
func (a *chunked[T]) take(n, base, maxChunk int) []T {
	if n == 0 {
		return nil
	}
	for a.idx < len(a.chunks) {
		ch := a.chunks[a.idx]
		if a.off+n <= len(ch) {
			s := ch[a.off : a.off+n : a.off+n]
			a.off += n
			clear(s) // reused memory carries stale values
			return s
		}
		a.idx++
		a.off = 0
	}
	size := base << len(a.chunks)
	if size > maxChunk {
		size = maxChunk
	}
	if size < n {
		size = n
	}
	a.chunks = append(a.chunks, make([]T, size))
	s := a.chunks[a.idx][:n:n] // fresh chunk is already zeroed
	a.off = n
	return s
}

// Complex carves a zeroed []complex128 of length n from the arena.
func (w *Workspace) Complex(n int) []complex128 { return w.cx.take(n, 256, 16384) }

// Float64s carves a zeroed []float64 of length n from the arena.
func (w *Workspace) Float64s(n int) []float64 { return w.fl.take(n, 128, 8192) }

// Ints carves a zeroed []int of length n from the arena.
func (w *Workspace) Ints(n int) []int { return w.in.take(n, 64, 2048) }

// Bools carves a zeroed []bool of length n from the arena.
func (w *Workspace) Bools(n int) []bool { return w.bo.take(n, 64, 2048) }

// MatrixPtrs carves a zeroed []*Matrix of length n from the arena; the
// batched precoding paths use it to hold per-subcarrier matrix lists
// without touching the Go allocator.
func (w *Workspace) MatrixPtrs(n int) []*Matrix { return w.mp.take(n, 16, 512) }

// FloatRows carves a rows×cols [][]float64 (each row zeroed) from the arena.
func (w *Workspace) FloatRows(rows, cols int) [][]float64 {
	out := w.fr.take(rows, 64, 2048)
	for i := range out {
		out[i] = w.Float64s(cols)
	}
	return out
}

// Matrix carves a zero-valued rows×cols matrix from the arena.
func (w *Workspace) Matrix(rows, cols int) *Matrix {
	hdr := &w.mh.take(1, 16, 512)[0]
	hdr.Rows, hdr.Cols = rows, cols
	hdr.Data = w.Complex(rows * cols)
	return hdr
}

// Clone carves a copy of m from the arena.
func (w *Workspace) Clone(m *Matrix) *Matrix {
	out := w.Matrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Identity carves the n×n identity matrix from the arena.
func (w *Workspace) Identity(n int) *Matrix {
	out := w.Matrix(n, n)
	for i := 0; i < n; i++ {
		out.Data[i*n+i] = 1
	}
	return out
}

// Mul carves and returns the product a·b. Same arithmetic as Matrix.Mul.
func (w *Workspace) Mul(a, b *Matrix) *Matrix {
	out := w.Matrix(a.Rows, b.Cols)
	mulInto(out, a, b)
	return out
}

// H carves and returns the Hermitian transpose of m.
func (w *Workspace) H(m *Matrix) *Matrix {
	out := w.Matrix(m.Cols, m.Rows)
	hInto(out, m)
	return out
}

// Col carves and returns a copy of column c of m.
func (w *Workspace) Col(m *Matrix, c int) []complex128 {
	out := w.Complex(m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Data[r*m.Cols+c]
	}
	return out
}

// ColsSlice carves a matrix formed from the given column indices of m,
// in order.
func (w *Workspace) ColsSlice(m *Matrix, idx []int) *Matrix {
	out := w.Matrix(m.Rows, len(idx))
	colsSliceInto(out, m, idx)
	return out
}

// SortOrderDesc stably sorts order (in place, no allocation) so that
// key[order[i]] is non-increasing. Insertion sort: for the tiny index sets
// used here it is both fast and — being stable — produces exactly the
// permutation sort.SliceStable would, which the golden-value tests rely on.
func SortOrderDesc(order []int, key []float64) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && key[order[j]] > key[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// SortOrderAsc stably sorts order (in place, no allocation) so that
// key[order[i]] is non-decreasing.
func SortOrderAsc(order []int, key []float64) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && key[order[j]] < key[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}
