package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// Property and equivalence tests for the batched closed-form eigensolver
// kernels against the generic Jacobi reference (EigHermitianWS / SVDWS).
// These run under the race detector and with GOAMD64=v3 in the CI
// kernel-equivalence job; the tolerances below are the documented bounds
// of the kernel-equivalence policy (DESIGN §13).

// eigValTol bounds |λ_batch − λ_reference| relative to the spectrum scale.
const eigValTol = 1e-8

// eigStructTol bounds the structural properties of the batched output:
// eigenvector orthonormality defect and the reconstruction residual
// ‖V·diag(λ)·Vᴴ − A‖∞ relative to the matrix scale.
const eigStructTol = 1e-8

func randHermitian(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	h := m.H()
	out := NewMatrix(n, n)
	for i := range out.Data {
		out.Data[i] = (m.Data[i] + h.Data[i]) / 2
	}
	return out
}

// randUnitary builds a random unitary matrix as the right singular vectors
// of a random square matrix.
func randUnitary(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	_, _, v := m.SVD()
	return v
}

// hermitianWithSpectrum builds V·diag(vals)·Vᴴ for a random unitary V and
// re-symmetrizes so the result is exactly Hermitian.
func hermitianWithSpectrum(rng *rand.Rand, vals []float64) *Matrix {
	n := len(vals)
	v := randUnitary(rng, n)
	d := NewMatrix(n, n)
	for i, l := range vals {
		d.Set(i, i, complex(l, 0))
	}
	a := v.Mul(d).Mul(v.H())
	h := a.H()
	for i := range a.Data {
		a.Data[i] = (a.Data[i] + h.Data[i]) / 2
	}
	return a
}

// batchOf packs the given same-size Hermitian matrices into a SoA batch.
func batchOf(ws *Workspace, mats []*Matrix) HermitianBatch {
	n := mats[0].Rows
	b := ws.HermitianBatch(n, len(mats))
	for k, m := range mats {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(k, i, j, m.At(i, j))
			}
		}
	}
	return b
}

// checkEigBatchEntry verifies batch entry k against the scalar reference
// decomposition of m: eigenvalues within eigValTol of the reference,
// descending order, orthonormal eigenvectors, and a small reconstruction
// residual. Eigenvectors are compared structurally rather than
// column-by-column because within degenerate subspaces any orthonormal
// basis is a valid answer.
func checkEigBatchEntry(t *testing.T, m *Matrix, e *EigBatch, k int) {
	t.Helper()
	n := m.Rows
	var refWS Workspace
	refVals, _ := m.EigHermitianWS(&refWS)
	scale := math.Max(1, m.MaxAbs())

	for j := 0; j < n; j++ {
		if d := math.Abs(e.Val(k, j) - refVals[j]); d > eigValTol*scale {
			t.Fatalf("eig %dx%d entry %d: λ[%d]=%.17g, reference %.17g (diff %g)",
				n, n, k, j, e.Val(k, j), refVals[j], d)
		}
		if j > 0 && e.Val(k, j) > e.Val(k, j-1) {
			t.Fatalf("eig %dx%d entry %d: eigenvalues not descending at %d", n, n, k, j)
		}
	}

	// Orthonormality: VᴴV = I.
	for c1 := 0; c1 < n; c1++ {
		for c2 := 0; c2 < n; c2++ {
			var dot complex128
			for i := 0; i < n; i++ {
				dot += cmplx.Conj(e.Vec(k, i, c1)) * e.Vec(k, i, c2)
			}
			want := complex128(0)
			if c1 == c2 {
				want = 1
			}
			if cmplx.Abs(dot-want) > eigStructTol {
				t.Fatalf("eig %dx%d entry %d: VᴴV defect %g at (%d,%d)",
					n, n, k, cmplx.Abs(dot-want), c1, c2)
			}
		}
	}

	// Reconstruction: V·diag(λ)·Vᴴ = A.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s complex128
			for c := 0; c < n; c++ {
				s += e.Vec(k, i, c) * complex(e.Val(k, c), 0) * cmplx.Conj(e.Vec(k, j, c))
			}
			if d := cmplx.Abs(s - m.At(i, j)); d > eigStructTol*scale {
				t.Fatalf("eig %dx%d entry %d: reconstruction residual %g at (%d,%d)",
					n, n, k, d, i, j)
			}
		}
	}
}

func TestEigHermitianBatchMatchesGenericRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 5; n++ {
		mats := make([]*Matrix, 40)
		for k := range mats {
			mats[k] = randHermitian(rng, n)
		}
		var ws Workspace
		b := batchOf(&ws, mats)
		e := EigHermitianBatch(&ws, &b)
		for k, m := range mats {
			checkEigBatchEntry(t, m, &e, k)
		}
	}
}

func TestEigHermitianBatchHardSpectra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spectra := [][]float64{
		// Degenerate and near-degenerate spectra (closed-form paths must
		// fall back or still produce a valid orthonormal eigenbasis).
		{1, 1},
		{2, 2, 2},
		{2, 2, 1},
		{1 + 1e-12, 1, -1},
		{5, 5, 5, 5},
		{3, 3, 1, 1},
		{1 + 1e-9, 1, 1 - 1e-9, 0},
		// Large dynamic range.
		{1e9, 1, 1e-9},
		{1e12, 1e6, 1, 1e-6},
		{-1e9, -1, 1e-9},
		// Signed spectra (interference covariances are PSD, but the kernels
		// should not rely on it).
		{1, 0, -1},
		{2, 1, -1, -2},
	}
	for _, spec := range spectra {
		spec := spec
		t.Run(fmt.Sprintf("%v", spec), func(t *testing.T) {
			mats := make([]*Matrix, 8)
			for k := range mats {
				mats[k] = hermitianWithSpectrum(rng, spec)
			}
			var ws Workspace
			b := batchOf(&ws, mats)
			e := EigHermitianBatch(&ws, &b)
			for k, m := range mats {
				checkEigBatchEntry(t, m, &e, k)
			}
		})
	}
}

func TestEigHermitianBatchNearZeroOffDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 2; n <= 4; n++ {
		mats := make([]*Matrix, 12)
		for k := range mats {
			m := NewMatrix(n, n)
			for i := 0; i < n; i++ {
				m.Set(i, i, complex(rng.NormFloat64()*10, 0))
			}
			// Off-diagonals at ~1e-14 of the diagonal scale: small enough
			// to be numerically negligible, large enough to exercise the
			// not-exactly-diagonal branches.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					v := complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-14
					m.Set(i, j, v)
					m.Set(j, i, cmplx.Conj(v))
				}
			}
			mats[k] = m
		}
		var ws Workspace
		b := batchOf(&ws, mats)
		e := EigHermitianBatch(&ws, &b)
		for k, m := range mats {
			checkEigBatchEntry(t, m, &e, k)
		}
	}
}

func TestEigHermitianBatchExactlyDiagonal(t *testing.T) {
	var ws Workspace
	mats := []*Matrix{
		FromRows([][]complex128{{5, 0}, {0, -3}}),
		FromRows([][]complex128{{-3, 0}, {0, 5}}),
		FromRows([][]complex128{{0, 0}, {0, 0}}),
	}
	b := batchOf(&ws, mats)
	e := EigHermitianBatch(&ws, &b)
	for k, m := range mats {
		checkEigBatchEntry(t, m, &e, k)
	}
}

func TestSVDBatchMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {2, 4}, {3, 2}, {2, 3}, {4, 4}, {3, 4}} {
		rows, cols := dims[0], dims[1]
		mats := make([]*Matrix, 20)
		for k := range mats {
			m := NewMatrix(rows, cols)
			for i := range m.Data {
				m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			mats[k] = m
		}
		var ws Workspace
		res := SVDBatch(&ws, mats)
		for k, m := range mats {
			var refWS Workspace
			_, refS, _ := m.SVDWS(&refWS)
			smax := math.Max(1, refS[0])
			// The Gram pass loses relative accuracy below ~√ε·σmax; the
			// documented bound is an absolute 1e-7·σmax on each σ.
			for j, want := range refS {
				if d := math.Abs(res.SVal(k, j) - want); d > 1e-7*smax {
					t.Fatalf("svd %dx%d entry %d: σ[%d]=%g, reference %g",
						rows, cols, k, j, res.SVal(k, j), want)
				}
			}
			// Right singular vectors: A·vⱼ must have norm σⱼ, and V must be
			// unitary. (Column-wise comparison to the reference V is not
			// meaningful under degeneracy or phase freedom.)
			for j := 0; j < cols; j++ {
				var col []complex128
				for i := 0; i < cols; i++ {
					col = append(col, res.V[(i*cols+j)*res.Count+k])
				}
				av := m.MulVec(col)
				if d := math.Abs(Norm2(av) - res.SVal(k, j)); d > 1e-7*smax {
					t.Fatalf("svd %dx%d entry %d: ‖A·v[%d]‖=%g, σ=%g",
						rows, cols, k, j, Norm2(av), res.SVal(k, j))
				}
				if d := math.Abs(Norm2(col) - 1); d > eigStructTol {
					t.Fatalf("svd %dx%d entry %d: ‖v[%d]‖ off unit by %g", rows, cols, k, j, d)
				}
			}
		}
	}
}

func TestSVDBatchNullspaceDim(t *testing.T) {
	rng := rand.New(rand.NewSource(31))

	// Full-row-rank random 2×4 channels (the nulling hot case): the batch
	// must certify rank 2 → nullspace dimension 2, matching NullspaceWS.
	mats := make([]*Matrix, 16)
	for k := range mats {
		m := NewMatrix(2, 4)
		for i := range m.Data {
			m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		mats[k] = m
	}
	var ws Workspace
	res := SVDBatch(&ws, mats)
	for k, m := range mats {
		dim, ok := res.NullspaceDim(k, 2, 1e-9)
		if !ok {
			t.Fatalf("entry %d: full-rank channel not certified", k)
		}
		var refWS Workspace
		if ref := m.NullspaceWS(&refWS, 1e-9); ref.Cols != dim {
			t.Fatalf("entry %d: dim %d, reference %d", k, dim, ref.Cols)
		}
	}

	// A rank-deficient 2×4 matrix (row 2 = 2·row 1): the Gram pass cannot
	// resolve rank at tol=1e-9, so it must refuse to certify rather than
	// guess — the scalar reference is the authority there.
	def := NewMatrix(2, 4)
	for j := 0; j < 4; j++ {
		v := complex(float64(j+1), float64(-j))
		def.Set(0, j, v)
		def.Set(1, j, 2*v)
	}
	res = SVDBatch(&ws, []*Matrix{def})
	if _, ok := res.NullspaceDim(0, 2, 1e-9); ok {
		t.Fatal("rank-deficient matrix was certified")
	}

	// A singular value parked at the threshold must not be certified.
	amb := NewMatrix(2, 2)
	amb.Set(0, 0, 1)
	amb.Set(1, 1, complex(1e-9, 0))
	res = SVDBatch(&ws, []*Matrix{amb})
	if _, ok := res.NullspaceDim(0, 2, 1e-9); ok {
		t.Fatal("threshold-straddling σ was certified")
	}

	// The zero matrix has no σmax to normalize against.
	zero := NewMatrix(3, 3)
	res = SVDBatch(&ws, []*Matrix{zero})
	if _, ok := res.NullspaceDim(0, 3, 1e-9); ok {
		t.Fatal("zero matrix was certified")
	}
}

// TestEigHermitianBatchAllocFree pins the allocs/op = 0 contract of the
// batched kernels: once the workspace has warmed up, a Reset + full batch
// decomposition must not touch the Go allocator.
func TestEigHermitianBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for n := 1; n <= 4; n++ {
		mats := make([]*Matrix, 52)
		for k := range mats {
			mats[k] = randHermitian(rng, n)
		}
		var ws Workspace
		run := func() {
			ws.Reset()
			b := batchOf(&ws, mats)
			e := EigHermitianBatch(&ws, &b)
			_ = e
		}
		run() // warm the arena
		if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
			t.Fatalf("EigHermitianBatch n=%d: %v allocs/op, want 0", n, allocs)
		}
	}
}

func TestSVDBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	mats := make([]*Matrix, 52)
	for k := range mats {
		m := NewMatrix(2, 4)
		for i := range m.Data {
			m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		mats[k] = m
	}
	var ws Workspace
	run := func() {
		ws.Reset()
		res := SVDBatch(&ws, mats)
		_ = res
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("SVDBatch: %v allocs/op, want 0", allocs)
	}
}
