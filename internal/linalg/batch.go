package linalg

import (
	"math"
	"math/cmplx"
)

// This file implements the batched struct-of-arrays linalg layer: one
// EigHermitianBatch / SVDBatch call processes all subcarriers of a
// (mode, follower) combination in a single pass over contiguous arrays,
// with the N-dependent kernel dispatch hoisted out of the per-subcarrier
// loop. The scalar EigHermitianWS / SVDWS path stays as the reference
// implementation; the batched kernels are equivalence-tested against it
// (see batch_test.go and the kernel-equivalence CI job).
//
// Kernel selection by matrix dimension:
//
//	1×1 — trivial
//	2×2 — closed-form analytic eigenpairs (unconditionally stable)
//	3×3 — Cardano eigenvalues + cross-product eigenvectors with
//	      Rayleigh-quotient refinement; per-matrix Jacobi fallback when
//	      the residual check fails (near-degenerate spectra)
//	4×4 — fully unrolled cyclic Jacobi over fixed-size arrays
//	n>4 — per-matrix generic Jacobi (reference path)

// HermitianBatch is a struct-of-arrays batch of Count N×N Hermitian
// matrices: entry (i,j) of matrix k lives at Data[(i*N+j)*Count+k], so a
// kernel sweeping the whole batch reads each coefficient's Count values
// from one contiguous run instead of striding across per-matrix
// allocations.
type HermitianBatch struct {
	N, Count int
	Data     []complex128
}

// HermitianBatch carves a zeroed N×N×Count batch from the arena.
func (w *Workspace) HermitianBatch(n, count int) HermitianBatch {
	return HermitianBatch{N: n, Count: count, Data: w.Complex(n * n * count)}
}

// At returns entry (i,j) of matrix k.
func (b *HermitianBatch) At(k, i, j int) complex128 {
	return b.Data[(i*b.N+j)*b.Count+k]
}

// Set stores entry (i,j) of matrix k.
func (b *HermitianBatch) Set(k, i, j int, v complex128) {
	b.Data[(i*b.N+j)*b.Count+k] = v
}

// SetGram fills slot k with the Gram matrix MᴴM of the Rows×N matrix m.
// Only the upper triangle is computed; the lower triangle is its conjugate
// and the diagonal is forced real, so the slot is exactly Hermitian.
func (b *HermitianBatch) SetGram(k int, m *Matrix) {
	if m.Cols != b.N {
		panic("linalg: SetGram column mismatch")
	}
	n, rows, cnt := b.N, m.Rows, b.Count
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s complex128
			for r := 0; r < rows; r++ {
				s += cmplx.Conj(m.Data[r*n+i]) * m.Data[r*n+j]
			}
			if i == j {
				s = complex(real(s), 0)
			}
			b.Data[(i*n+j)*cnt+k] = s
			if i != j {
				b.Data[(j*n+i)*cnt+k] = cmplx.Conj(s)
			}
		}
	}
}

// EigBatch holds the eigendecompositions of a HermitianBatch in the same
// struct-of-arrays layout: eigenvalue j of matrix k (descending in j) is
// Vals[j*Count+k]; entry (i,j) of the unitary eigenvector matrix of k is
// Vecs[(i*N+j)*Count+k], columns matching Vals.
type EigBatch struct {
	N, Count int
	Vals     []float64
	Vecs     []complex128
}

// Val returns eigenvalue j (descending) of matrix k.
func (e *EigBatch) Val(k, j int) float64 { return e.Vals[j*e.Count+k] }

// Vec returns entry i of eigenvector j of matrix k.
func (e *EigBatch) Vec(k, i, j int) complex128 {
	return e.Vecs[(i*e.N+j)*e.Count+k]
}

// VecsMatrixInto writes the eigenvector matrix of batch entry k into dst
// (reshaped to N×N).
func (e *EigBatch) VecsMatrixInto(dst *Matrix, k int) {
	n := e.N
	dst.Rows, dst.Cols = n, n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst.Data[i*n+j] = e.Vecs[(i*n+j)*e.Count+k]
		}
	}
}

// EigHermitianBatch diagonalizes every matrix in the batch with one kernel
// dispatch on N. Results are carved from ws; entries follow the same
// descending-eigenvalue convention as EigHermitianWS. The batched kernels
// agree with the scalar reference to tight relative tolerance but are not
// bit-identical to it (different, closed-form operation order); see the
// kernel-equivalence tests for the enforced bounds.
func EigHermitianBatch(ws *Workspace, b *HermitianBatch) EigBatch {
	out := EigBatch{
		N:     b.N,
		Count: b.Count,
		Vals:  ws.Float64s(b.N * b.Count),
		Vecs:  ws.Complex(b.N * b.N * b.Count),
	}
	switch b.N {
	case 1:
		for k := 0; k < b.Count; k++ {
			out.Vals[k] = real(b.Data[k])
			out.Vecs[k] = 1
		}
	case 2:
		eigBatch2(&out, b)
	case 3:
		eigBatch3(ws, &out, b)
	case 4:
		eigBatch4(&out, b)
	default:
		eigBatchGeneric(ws, &out, b)
	}
	return out
}

// eigBatch2 solves every 2×2 Hermitian eigenproblem in closed form:
// eigenvalues from the quadratic characteristic polynomial via a hypot
// discriminant, the first eigenvector from whichever analytic expression
// ((b, λ−a) or (λ−c, b̄)) has the larger norm, and the second as the exact
// Hermitian-orthogonal complement. Unconditionally stable: the candidate
// norms are ≥ |b| and the branch g==0 handles exactly diagonal input.
func eigBatch2(out *EigBatch, b *HermitianBatch) {
	cnt := b.Count
	d00 := b.Data[0*cnt : 1*cnt]
	d01 := b.Data[1*cnt : 2*cnt]
	d11 := b.Data[3*cnt : 4*cnt]
	v00 := out.Vecs[0*cnt : 1*cnt]
	v01 := out.Vecs[1*cnt : 2*cnt]
	v10 := out.Vecs[2*cnt : 3*cnt]
	v11 := out.Vecs[3*cnt : 4*cnt]
	l1s := out.Vals[0*cnt : 1*cnt]
	l2s := out.Vals[1*cnt : 2*cnt]
	for k := 0; k < cnt; k++ {
		a := real(d00[k])
		c := real(d11[k])
		bb := d01[k]
		g := cmplx.Abs(bb)
		half := (a + c) / 2
		s := math.Hypot((a-c)/2, g)
		l1 := half + s
		l2 := half - s
		l1s[k], l2s[k] = l1, l2
		if g == 0 {
			if a >= c {
				v00[k], v10[k] = 1, 0
				v01[k], v11[k] = 0, 1
			} else {
				v00[k], v10[k] = 0, 1
				v01[k], v11[k] = 1, 0
			}
			continue
		}
		// Candidate eigenvectors for λ1; both satisfy (A−λ1I)v = 0
		// analytically, the larger-norm one is the better conditioned.
		x, y := bb, complex(l1-a, 0)
		if alt := l1 - c; alt*alt > g*g+(l1-a)*(l1-a) {
			x, y = complex(alt, 0), cmplx.Conj(bb)
		}
		nrm := math.Sqrt(real(x)*real(x) + imag(x)*imag(x) + real(y)*real(y) + imag(y)*imag(y))
		x /= complex(nrm, 0)
		y /= complex(nrm, 0)
		v00[k], v10[k] = x, y
		// Hermitian-orthogonal complement of (x, y) is (−ȳ, x̄).
		v01[k], v11[k] = -cmplx.Conj(y), cmplx.Conj(x)
	}
}

// eigBatch3 solves the 3×3 Hermitian eigenproblems with Cardano's formula
// (trigonometric form on the shifted matrix) for the eigenvalues and
// bilinear cross products of rows of A−λI for the eigenvectors, followed
// by one Rayleigh-quotient refinement of each eigenvalue. The middle
// eigenvector is constructed as the exact orthogonal complement of the
// outer two, so the returned basis is orthonormal by construction. Any
// matrix whose refined residual ‖Av−λv‖∞ exceeds eigResidualTol×scale
// falls back to the generic Jacobi reference — near-degenerate spectra
// make the cross products ill-conditioned, and correctness there matters
// more than the batch speedup.
func eigBatch3(ws *Workspace, out *EigBatch, b *HermitianBatch) {
	cnt := b.Count
	var scratch *Matrix
	for k := 0; k < cnt; k++ {
		var a [3][3]complex128
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] = b.Data[(i*3+j)*cnt+k]
			}
		}
		if !eig3Closed(out, k, &a) {
			if scratch == nil {
				scratch = ws.Matrix(3, 3)
			}
			eigScalarFallback(ws, out, b, k, scratch)
		}
	}
}

// eig3Closed attempts the closed-form 3×3 path for one matrix; it reports
// false when the residual check says the cross-product vectors are not
// trustworthy and the caller should use the Jacobi reference instead.
func eig3Closed(out *EigBatch, k int, a *[3][3]complex128) bool {
	a00, a11, a22 := real(a[0][0]), real(a[1][1]), real(a[2][2])
	p1 := absSq(a[0][1]) + absSq(a[0][2]) + absSq(a[1][2])
	scale := math.Max(math.Abs(a00), math.Max(math.Abs(a11), math.Abs(a22)))
	scale = math.Max(scale, math.Sqrt(p1))
	if scale == 0 { // zero matrix
		storeEig3(out, k, [3]float64{0, 0, 0}, identity3())
		return true
	}
	if p1 <= 1e-30*scale*scale {
		// Numerically diagonal: eigenpairs are the diagonal entries with
		// canonical basis vectors, sorted descending (stable in index).
		vals := [3]float64{a00, a11, a22}
		vecs := identity3()
		sortEig3(&vals, &vecs)
		storeEig3(out, k, vals, vecs)
		return true
	}

	// Cardano (trigonometric form): eigenvalues of the shifted matrix.
	q := (a00 + a11 + a22) / 3
	p2 := (a00-q)*(a00-q) + (a11-q)*(a11-q) + (a22-q)*(a22-q) + 2*p1
	p := math.Sqrt(p2 / 6)
	// det((A − qI)/p), real for Hermitian input.
	b00, b11, b22 := (a00-q)/p, (a11-q)/p, (a22-q)/p
	ip := complex(1/p, 0)
	b01, b02, b12 := a[0][1]*ip, a[0][2]*ip, a[1][2]*ip
	detB := b00*b11*b22 - b00*absSq(b12) - b11*absSq(b02) - b22*absSq(b01) +
		2*realTriple(b01, b12, cmplx.Conj(b02))
	r := detB / 2
	if r < -1 {
		r = -1
	} else if r > 1 {
		r = 1
	}
	phi := math.Acos(r) / 3
	l1 := q + 2*p*math.Cos(phi)
	l3 := q + 2*p*math.Cos(phi+2*math.Pi/3)
	l2 := 3*q - l1 - l3 // trace identity; l1 ≥ l2 ≥ l3

	// Near-degenerate spectra make the cross products below ill-conditioned
	// (eigenvector error scales with residual/gap); route those matrices to
	// the Jacobi reference before computing garbage.
	if l1-l2 <= 1e-6*scale || l2-l3 <= 1e-6*scale {
		return false
	}

	v1, ok1 := crossEigvec3(a, l1)
	v3, ok3 := crossEigvec3(a, l3)
	if !ok1 || !ok3 {
		return false
	}
	// Orthonormalize: v3 against v1 (modified Gram–Schmidt), middle vector
	// as the exact orthogonal complement cross(conj v1, conj v3).
	proj := dot3(&v1, &v3)
	for i := 0; i < 3; i++ {
		v3[i] -= proj * v1[i]
	}
	n3 := norm3(&v3)
	if n3 < 1e-6 {
		return false // λ1 and λ3 vectors collapsed: (near-)degenerate
	}
	for i := 0; i < 3; i++ {
		v3[i] /= complex(n3, 0)
	}
	v2 := [3]complex128{
		cmplx.Conj(v1[1])*cmplx.Conj(v3[2]) - cmplx.Conj(v1[2])*cmplx.Conj(v3[1]),
		cmplx.Conj(v1[2])*cmplx.Conj(v3[0]) - cmplx.Conj(v1[0])*cmplx.Conj(v3[2]),
		cmplx.Conj(v1[0])*cmplx.Conj(v3[1]) - cmplx.Conj(v1[1])*cmplx.Conj(v3[0]),
	}
	n2 := norm3(&v2)
	if n2 < 1e-6 {
		return false
	}
	for i := 0; i < 3; i++ {
		v2[i] /= complex(n2, 0)
	}

	// Rayleigh-quotient refinement: for a Hermitian matrix the quotient is
	// quadratically accurate in the eigenvector error, so one evaluation
	// absorbs most of the Cardano rounding.
	vals := [3]float64{rayleigh3(a, &v1), rayleigh3(a, &v2), rayleigh3(a, &v3)}
	vecs := [3][3]complex128{v1, v2, v3}
	for i := 0; i < 3; i++ {
		if residual3(a, &vecs[i], vals[i]) > eigResidualTol*scale {
			return false
		}
	}
	sortEig3(&vals, &vecs)
	storeEig3(out, k, vals, vecs)
	return true
}

// eigResidualTol bounds ‖Av−λv‖∞ relative to the matrix scale for the
// closed-form 3×3 path; matrices exceeding it (near-degenerate spectra,
// pathological conditioning) take the Jacobi reference path instead.
const eigResidualTol = 1e-8

func absSq(x complex128) float64 { return real(x)*real(x) + imag(x)*imag(x) }

// realTriple returns Re(x·y·z).
func realTriple(x, y, z complex128) float64 { return real(x * y * z) }

func identity3() [3][3]complex128 {
	var v [3][3]complex128
	v[0][0], v[1][1], v[2][2] = 1, 1, 1
	return v
}

// crossEigvec3 returns a unit vector spanning the (assumed 1-dimensional)
// nullspace of M = A−λI: the largest bilinear cross product of two of its
// rows (a vector x with M·x = 0 is bilinearly orthogonal to every row, and
// the cross product of two rows is bilinearly orthogonal to both). ok is
// false when every pair of rows is numerically parallel, i.e. the
// nullspace is not 1-dimensional at working precision.
func crossEigvec3(a *[3][3]complex128, l float64) (v [3]complex128, ok bool) {
	lc := complex(l, 0)
	r0 := [3]complex128{a[0][0] - lc, a[0][1], a[0][2]}
	r1 := [3]complex128{a[1][0], a[1][1] - lc, a[1][2]}
	r2 := [3]complex128{a[2][0], a[2][1], a[2][2] - lc}

	c01 := cross3(&r0, &r1)
	c02 := cross3(&r0, &r2)
	c12 := cross3(&r1, &r2)
	n01, n02, n12 := norm3(&c01), norm3(&c02), norm3(&c12)

	best, nrm := &c01, n01
	if n02 > nrm {
		best, nrm = &c02, n02
	}
	if n12 > nrm {
		best, nrm = &c12, n12
	}
	if nrm <= 1e-150 {
		return v, false
	}
	for i := 0; i < 3; i++ {
		v[i] = best[i] / complex(nrm, 0)
	}
	return v, true
}

// cross3 is the bilinear (unconjugated) cross product a×b.
func cross3(a, b *[3]complex128) [3]complex128 {
	return [3]complex128{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

// dot3 is the Hermitian inner product ⟨a,b⟩ = Σ āᵢbᵢ.
func dot3(a, b *[3]complex128) complex128 {
	return cmplx.Conj(a[0])*b[0] + cmplx.Conj(a[1])*b[1] + cmplx.Conj(a[2])*b[2]
}

func norm3(v *[3]complex128) float64 {
	return math.Sqrt(absSq(v[0]) + absSq(v[1]) + absSq(v[2]))
}

// rayleigh3 is the Rayleigh quotient vᴴAv for unit v (real for Hermitian A).
func rayleigh3(a *[3][3]complex128, v *[3]complex128) float64 {
	var q float64
	for i := 0; i < 3; i++ {
		var av complex128
		for j := 0; j < 3; j++ {
			av += a[i][j] * v[j]
		}
		q += real(cmplx.Conj(v[i]) * av)
	}
	return q
}

// residual3 is ‖Av − λv‖∞ for unit v.
func residual3(a *[3][3]complex128, v *[3]complex128, l float64) float64 {
	var worst float64
	lc := complex(l, 0)
	for i := 0; i < 3; i++ {
		var av complex128
		for j := 0; j < 3; j++ {
			av += a[i][j] * v[j]
		}
		if m := cmplx.Abs(av - lc*v[i]); m > worst {
			worst = m
		}
	}
	return worst
}

// sortEig3 sorts the three eigenpairs descending by value (stable), where
// vecs[i] is eigenvector i stored as a row triple.
func sortEig3(vals *[3]float64, vecs *[3][3]complex128) {
	for i := 1; i < 3; i++ {
		for j := i; j > 0 && vals[j] > vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
			vecs[j], vecs[j-1] = vecs[j-1], vecs[j]
		}
	}
}

// storeEig3 scatters one matrix's eigenpairs into the SoA result. vecs[j]
// is eigenvector j (a length-3 column stored as an array).
func storeEig3(out *EigBatch, k int, vals [3]float64, vecs [3][3]complex128) {
	cnt := out.Count
	for j := 0; j < 3; j++ {
		out.Vals[j*cnt+k] = vals[j]
		for i := 0; i < 3; i++ {
			out.Vecs[(i*3+j)*cnt+k] = vecs[j][i]
		}
	}
}

// eigBatch4 runs a fully unrolled cyclic Jacobi sweep per 4×4 matrix over
// fixed-size stack arrays: the same rotation algebra as EigHermitianWS
// (phase-align the pivot, then a real Jacobi rotation) but with constant
// dimensions, so the compiler drops bounds checks and the per-subcarrier
// Matrix/Workspace indirection disappears.
func eigBatch4(out *EigBatch, b *HermitianBatch) {
	const n = 4
	cnt := b.Count
	for k := 0; k < cnt; k++ {
		var a, v [n][n]complex128
		var scale float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] = b.Data[(i*n+j)*cnt+k]
				if m := cmplx.Abs(a[i][j]); m > scale {
					scale = m
				}
			}
			v[i][i] = 1
		}
		scale = math.Max(scale, 1e-300)

		for sweep := 0; sweep < 64 && offDiag4(&a) > 1e-13*scale*n*n; sweep++ {
			for p := 0; p < n-1; p++ {
				for q := p + 1; q < n; q++ {
					apq := a[p][q]
					g := cmplx.Abs(apq)
					if g <= 1e-15*scale {
						continue
					}
					app, aqq := real(a[p][p]), real(a[q][q])
					phase := apq / complex(g, 0)
					zeta := (aqq - app) / (2 * g)
					t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
					c := 1 / math.Sqrt(1+t*t)
					s := c * t
					cc := complex(c, 0)
					sc := complex(s, 0) * phase
					scj := cmplx.Conj(sc)

					for i := 0; i < n; i++ {
						aip, aiq := a[i][p], a[i][q]
						a[i][p] = cc*aip - scj*aiq
						a[i][q] = sc*aip + cc*aiq
					}
					for i := 0; i < n; i++ {
						api, aqi := a[p][i], a[q][i]
						a[p][i] = cc*api - sc*aqi
						a[q][i] = scj*api + cc*aqi
					}
					for i := 0; i < n; i++ {
						vip, viq := v[i][p], v[i][q]
						v[i][p] = cc*vip - scj*viq
						v[i][q] = sc*vip + cc*viq
					}
				}
			}
		}

		var vals [n]float64
		var order [n]int
		for i := 0; i < n; i++ {
			vals[i] = real(a[i][i])
			order[i] = i
		}
		for i := 1; i < n; i++ { // stable insertion sort, descending
			for j := i; j > 0 && vals[order[j]] > vals[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for j := 0; j < n; j++ {
			src := order[j]
			out.Vals[j*cnt+k] = vals[src]
			for i := 0; i < n; i++ {
				out.Vecs[(i*n+j)*cnt+k] = v[i][src]
			}
		}
	}
}

// offDiag4 is offDiagAbsSum over a fixed 4×4 array.
func offDiag4(a *[4][4]complex128) float64 {
	var s float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				s += cmplx.Abs(a[i][j])
			}
		}
	}
	return s
}

// eigBatchGeneric diagonalizes each batch entry with the scalar reference
// (EigHermitianWS), gathering from and scattering back to the SoA layout.
func eigBatchGeneric(ws *Workspace, out *EigBatch, b *HermitianBatch) {
	scratch := ws.Matrix(b.N, b.N)
	for k := 0; k < b.Count; k++ {
		eigScalarFallback(ws, out, b, k, scratch)
	}
}

// eigScalarFallback diagonalizes batch entry k via EigHermitianWS and
// scatters the result into the SoA output.
func eigScalarFallback(ws *Workspace, out *EigBatch, b *HermitianBatch, k int, scratch *Matrix) {
	n, cnt := b.N, b.Count
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scratch.Data[i*n+j] = b.Data[(i*n+j)*cnt+k]
		}
	}
	vals, vecs := scratch.EigHermitianWS(ws)
	for j := 0; j < n; j++ {
		out.Vals[j*cnt+k] = vals[j]
		for i := 0; i < n; i++ {
			out.Vecs[(i*n+j)*cnt+k] = vecs.Data[i*n+j]
		}
	}
}

// SVDBatchResult holds right singular vectors and singular values for a
// batch of same-shaped matrices, in the EigBatch layout: singular value j
// (descending) of matrix k is S[j*Count+k]; entry (i,j) of the C×C right
// singular vector matrix V of k is V[(i*C+j)*Count+k].
type SVDBatchResult struct {
	C, Count int
	S        []float64
	V        []complex128
}

// SVal returns singular value j (descending) of matrix k.
func (r *SVDBatchResult) SVal(k, j int) float64 { return r.S[j*r.Count+k] }

// gramSigmaErr bounds the absolute error of a Gram-derived singular value
// relative to σmax: eigenvalues of MᴴM carry ~n·ε·λmax of rounding noise,
// which the square root turns into ~√(n·ε)·σmax ≈ 1e-8·σmax of σ noise.
// Any decision that needs σ resolved more finely than this must use the
// scalar SVD reference.
const gramSigmaErr = 3e-8

// NullspaceDim returns the right-nullspace dimension of matrix k exactly
// as the scalar NullspaceWS(tol) reference would compute it, where
// maxRank = min(rows, C) is the structural rank bound of the source
// matrix. ok is false when the Gram singular values cannot prove the
// reference decision.
//
// The proof obligation is one-sided: the reference computes at most
// maxRank singular values, so its rank is exactly maxRank iff its
// smallest one clears tol·σmax. Each Gram σ is within gramSigmaErr·σmax
// of the reference σ, so σⱼ − err > tol·(σmax + err) for all j < maxRank
// certifies rank = maxRank and dim = C − maxRank. Anything short of that
// (rank-deficient, threshold-straddling, or zero input) reports ok=false
// and the caller must fall back to the scalar path — Gram squaring cannot
// resolve σ below ~1e-8·σmax, while precoding's rankTol is 1e-9.
func (r *SVDBatchResult) NullspaceDim(k, maxRank int, tol float64) (dim int, ok bool) {
	smax := r.S[k]
	if smax <= 0 {
		return 0, false
	}
	err := gramSigmaErr * smax
	for j := 0; j < maxRank; j++ {
		if r.S[j*r.Count+k]-err <= tol*(smax+err) {
			return 0, false
		}
	}
	return r.C - maxRank, true
}

// TopSeparated reports whether the leading `lead` singular directions of
// matrix k are well determined by the Gram pass: every consecutive gap
// σⱼ₋₁−σⱼ up to and including the boundary gap σ_{lead−1}−σ_lead must
// exceed gapTol·σmax. Near-ties leave the corresponding singular vectors
// free to rotate inside the tied subspace, so a batched consumer that
// needs specific columns (beamforming's top-streams slice) must fall back
// to the scalar reference when this returns false.
func (r *SVDBatchResult) TopSeparated(k, lead int, gapTol float64) bool {
	smax := r.S[k]
	if smax <= 0 {
		return false
	}
	end := lead
	if end > r.C-1 {
		end = r.C - 1
	}
	for j := 1; j <= end; j++ {
		if r.S[(j-1)*r.Count+k]-r.S[j*r.Count+k] <= gapTol*smax {
			return false
		}
	}
	return true
}

// VColsInto writes columns [lo,hi) of matrix k's right singular vector
// matrix into dst (reshaped to C×(hi−lo)).
func (r *SVDBatchResult) VColsInto(dst *Matrix, k, lo, hi int) {
	c := r.C
	dst.Rows, dst.Cols = c, hi-lo
	for i := 0; i < c; i++ {
		for j := lo; j < hi; j++ {
			dst.Data[i*(hi-lo)+(j-lo)] = r.V[(i*c+j)*r.Count+k]
		}
	}
}

// SVDBatch computes the right singular vectors and singular values of
// every matrix in mats (all Rows×C with the same C; Rows may vary) in one
// batched pass, via the eigendecomposition of the Gram matrices MᴴM:
// the eigenvectors of MᴴM are the right singular vectors and σⱼ = √λⱼ.
//
// Numerical caveat, by construction of the Gram product: singular values
// below ~√ε·σmax (≈1e-8 relative) are computed with full-scale absolute
// error, so rank decisions with tolerances tighter than that must treat
// this as a screening pass — NullspaceDim only certifies a decision the
// scalar reference is structurally guaranteed to agree with, and callers
// fall back to the scalar SVD for anything it cannot certify.
func SVDBatch(ws *Workspace, mats []*Matrix) SVDBatchResult {
	count := len(mats)
	if count == 0 {
		return SVDBatchResult{}
	}
	c := mats[0].Cols
	b := ws.HermitianBatch(c, count)
	for k, m := range mats {
		b.SetGram(k, m)
	}
	eig := EigHermitianBatch(ws, &b)
	out := SVDBatchResult{C: c, Count: count, S: eig.Vals, V: eig.Vecs}
	for i, l := range out.S {
		if l > 0 {
			out.S[i] = math.Sqrt(l)
		} else {
			out.S[i] = 0
		}
	}
	return out
}
