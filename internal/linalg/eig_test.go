package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomHermitian builds H = AᴴA + shift·I (PSD) or a general Hermitian
// A + Aᴴ.
func randomHermitian(r *rand.Rand, n int, psd bool) *Matrix {
	a := randomMatrix(r, n, n)
	if psd {
		return a.H().Mul(a)
	}
	return a.Add(a.H())
}

func checkEig(t *testing.T, m *Matrix) {
	t.Helper()
	eigs, v := m.EigHermitian()
	n := m.Rows
	if len(eigs) != n || v.Rows != n || v.Cols != n {
		t.Fatal("shape wrong")
	}
	if !v.H().Mul(v).IsIdentity(1e-8) {
		t.Error("V not unitary")
	}
	for i := 0; i < n-1; i++ {
		if eigs[i] < eigs[i+1] {
			t.Fatalf("eigenvalues not sorted: %v", eigs)
		}
	}
	scale := math.Max(1, m.MaxAbs())
	for i := 0; i < n; i++ {
		av := m.MulVec(v.Col(i))
		for r := 0; r < n; r++ {
			want := complex(eigs[i], 0) * v.At(r, i)
			d := av[r] - want
			if math.Hypot(real(d), imag(d)) > 1e-7*scale {
				t.Fatalf("A·v != λ·v for eigenpair %d (λ=%g)", i, eigs[i])
			}
		}
	}
}

func TestEigHermitianKnown(t *testing.T) {
	// diag(3, 1, -2).
	m := FromRows([][]complex128{{3, 0, 0}, {0, 1, 0}, {0, 0, -2}})
	eigs, _ := m.EigHermitian()
	want := []float64{3, 1, -2}
	for i := range want {
		if math.Abs(eigs[i]-want[i]) > 1e-10 {
			t.Errorf("eig %d = %g, want %g", i, eigs[i], want[i])
		}
	}
	// 2x2 with known eigenvalues: [[2, i], [-i, 2]] → 1 and 3.
	h := FromRows([][]complex128{{2, 1i}, {-1i, 2}})
	eigs, _ = h.EigHermitian()
	if math.Abs(eigs[0]-3) > 1e-10 || math.Abs(eigs[1]-1) > 1e-10 {
		t.Errorf("eigs = %v, want [3 1]", eigs)
	}
}

func TestEigHermitianRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 4, 6} {
		checkEig(t, randomHermitian(r, n, true))
		checkEig(t, randomHermitian(r, n, false))
	}
}

func TestQuickEigTraceAndReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := randomHermitian(r, n, false)
		eigs, v := m.EigHermitian()
		// Trace preserved.
		var tr, sum float64
		for i := 0; i < n; i++ {
			tr += real(m.At(i, i))
			sum += eigs[i]
		}
		if math.Abs(tr-sum) > 1e-8*math.Max(1, math.Abs(tr)) {
			return false
		}
		// Reconstruction.
		lam := NewMatrix(n, n)
		for i, e := range eigs {
			lam.Set(i, i, complex(e, 0))
		}
		return v.Mul(lam).Mul(v.H()).Equal(m, 1e-7*math.Max(1, m.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
