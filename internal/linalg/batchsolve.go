package linalg

import "math/cmplx"

// This file implements the batched SolveWS follow-up named in DESIGN
// §13: the MMSE SINR kernels solve one small (Nr×Nr) system per
// (subcarrier, stream) cell, thousands per evaluation, and the per-call
// overhead of the scalar path (workspace carves, permutation slices,
// dimension dispatch) dominates the arithmetic for Nr ≤ 4. SolveBatch
// gathers all of a pass's systems into one struct-of-arrays batch and
// solves them in a single sweep with the N-dependent dispatch hoisted
// out of the loop.
//
// The N ≤ 4 kernel replays luWS + SolveWS's exact operation sequence —
// the same partial-pivot comparison on cmplx.Abs, the same
// f = a·(1/pivot) reciprocal-multiply, the same forward/back
// substitution expressions — on fixed-size stack arrays, so each slot's
// solution is bit-identical to what the scalar path returns for the
// same system (batchsolve_test.go enforces this; the CI
// kernel-equivalence matrix runs it under GOAMD64=v1 and v3).

// SolveBatch is a struct-of-arrays batch of Count N×N linear systems
// A_k·x_k = b_k: entry (i,j) of system k lives at A[(i*N+j)*Count+k],
// and entry i of b_k (x_k) at B[i*Count+k] (X[i*Count+k]).
type SolveBatch struct {
	N, Count int
	A        []complex128
	B        []complex128
	X        []complex128
	// Singular[k] reports slot k's system was (numerically) singular —
	// the batch analogue of SolveWS returning ErrSingular. X entries of
	// a singular slot are zero.
	Singular []bool
}

// NewSolveBatch carves a zeroed N×N×Count solve batch from the arena.
func (w *Workspace) NewSolveBatch(n, count int) SolveBatch {
	return SolveBatch{
		N:        n,
		Count:    count,
		A:        w.Complex(n * n * count),
		B:        w.Complex(n * count),
		X:        w.Complex(n * count),
		Singular: w.Bools(count),
	}
}

// SetA stores entry (i,j) of system k.
func (b *SolveBatch) SetA(k, i, j int, v complex128) { b.A[(i*b.N+j)*b.Count+k] = v }

// SetB stores entry i of system k's right-hand side.
func (b *SolveBatch) SetB(k, i int, v complex128) { b.B[i*b.Count+k] = v }

// XAt returns entry i of system k's solution.
func (b *SolveBatch) XAt(k, i int) complex128 { return b.X[i*b.Count+k] }

// Solve solves every system in the batch. N ≤ 4 runs the in-register
// LU kernel (bit-identical to SolveWS per slot); larger N falls back to
// the scalar path per slot, carving its scratch from ws.
func (b *SolveBatch) Solve(ws *Workspace) {
	if b.N <= 4 {
		b.solveSmall()
		return
	}
	b.solveGeneric(ws)
}

// solveSmall is the N ≤ 4 kernel: per slot, gather the system into
// fixed-size stack arrays, run the partial-pivot LU and the two
// substitutions with luWS's exact operation order, and scatter the
// solution back.
func (b *SolveBatch) solveSmall() {
	n, cnt := b.N, b.Count
	for k := 0; k < cnt; k++ {
		var a [16]complex128
		var rhs, x [4]complex128
		var perm [4]int
		for i := 0; i < n; i++ {
			perm[i] = i
			rhs[i] = b.B[i*cnt+k]
			for j := 0; j < n; j++ {
				a[i*n+j] = b.A[(i*n+j)*cnt+k]
			}
		}
		singular := false
		for col := 0; col < n; col++ {
			pivot, pmag := col, cmplx.Abs(a[col*n+col])
			for r := col + 1; r < n; r++ {
				if mag := cmplx.Abs(a[r*n+col]); mag > pmag {
					pivot, pmag = r, mag
				}
			}
			if pmag == 0 {
				singular = true
				break
			}
			if pivot != col {
				for c := 0; c < n; c++ {
					a[col*n+c], a[pivot*n+c] = a[pivot*n+c], a[col*n+c]
				}
				perm[col], perm[pivot] = perm[pivot], perm[col]
			}
			inv := 1 / a[col*n+col]
			for r := col + 1; r < n; r++ {
				f := a[r*n+col] * inv
				a[r*n+col] = f
				for c := col + 1; c < n; c++ {
					a[r*n+c] -= f * a[col*n+c]
				}
			}
		}
		if singular {
			b.Singular[k] = true
			for i := 0; i < n; i++ {
				b.X[i*cnt+k] = 0
			}
			continue
		}
		b.Singular[k] = false
		for i := 0; i < n; i++ {
			s := rhs[perm[i]]
			for j := 0; j < i; j++ {
				s -= a[i*n+j] * x[j]
			}
			x[i] = s
		}
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			for j := i + 1; j < n; j++ {
				s -= a[i*n+j] * x[j]
			}
			x[i] = s / a[i*n+i]
		}
		for i := 0; i < n; i++ {
			b.X[i*cnt+k] = x[i]
		}
	}
}

// solveGeneric is the N > 4 fallback: one scalar SolveWS per slot, via
// a gathered workspace matrix. It exists so SolveBatch has no dimension
// ceiling; the hot MMSE paths never reach it (client Nr ≤ 4).
func (b *SolveBatch) solveGeneric(ws *Workspace) {
	n, cnt := b.N, b.Count
	m := ws.Matrix(n, n)
	rhs := ws.Complex(n)
	for k := 0; k < cnt; k++ {
		for i := 0; i < n; i++ {
			rhs[i] = b.B[i*cnt+k]
			for j := 0; j < n; j++ {
				m.Data[i*n+j] = b.A[(i*n+j)*cnt+k]
			}
		}
		x, err := m.SolveWS(ws, rhs)
		if err != nil {
			b.Singular[k] = true
			for i := 0; i < n; i++ {
				b.X[i*cnt+k] = 0
			}
			continue
		}
		b.Singular[k] = false
		for i := 0; i < n; i++ {
			b.X[i*cnt+k] = x[i]
		}
	}
}
