package linalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when a matrix is singular (or numerically so)
// and cannot be inverted or solved against.
var ErrSingular = errors.New("linalg: matrix is singular")

// errNotSquare is shared by the LU-based entry points so the error path
// stays allocation-free.
var errNotSquare = errors.New("linalg: LU requires a square matrix")

// errSolveDim is the Solve dimension-mismatch error.
var errSolveDim = errors.New("linalg: Solve dimension mismatch")

// luWS performs an LU decomposition with partial pivoting on a ws-carved
// copy of m, returning the combined LU factors and the row permutation.
func luWS(ws *Workspace, m *Matrix) (*Matrix, []int, error) {
	if m.Rows != m.Cols {
		return nil, nil, errNotSquare
	}
	n := m.Rows
	a := ws.Clone(m)
	perm := ws.Ints(n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in this column.
		pivot, pmag := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if mag := cmplx.Abs(a.At(r, col)); mag > pmag {
				pivot, pmag = r, mag
			}
		}
		if pmag == 0 {
			return nil, nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				a.Data[col*n+c], a.Data[pivot*n+c] = a.Data[pivot*n+c], a.Data[col*n+c]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			a.Set(r, col, f)
			for c := col + 1; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
		}
	}
	return a, perm, nil
}

// Solve returns x such that m·x = b, for square m.
func (m *Matrix) Solve(b []complex128) ([]complex128, error) {
	var ws Workspace
	x, err := m.SolveWS(&ws, b)
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), x...), nil
}

// SolveWS is Solve with all scratch and result storage carved from ws:
// allocation-free once ws has warmed up. The returned slice lives in ws
// (see Workspace ownership rules).
func (m *Matrix) SolveWS(ws *Workspace, b []complex128) ([]complex128, error) {
	if m.Rows != len(b) {
		return nil, errSolveDim
	}
	// The MMSE SINR kernels solve against 1×1 and 2×2 interference
	// covariances thousands of times per evaluation; unrolled paths that
	// replay luWS's exact operation sequence (same pivot comparison, same
	// f = a10·(1/a00) reciprocal-multiply, same substitution expressions)
	// produce bit-identical results without the clone/permutation carves.
	if m.Rows == m.Cols {
		switch m.Rows {
		case 1:
			a00 := m.Data[0]
			if cmplx.Abs(a00) == 0 {
				return nil, ErrSingular
			}
			x := ws.Complex(1)
			x[0] = b[0] / a00
			return x, nil
		case 2:
			a00, a01 := m.Data[0], m.Data[1]
			a10, a11 := m.Data[2], m.Data[3]
			b0, b1 := b[0], b[1]
			pmag := cmplx.Abs(a00)
			if mag := cmplx.Abs(a10); mag > pmag {
				a00, a01, a10, a11 = a10, a11, a00, a01
				b0, b1 = b1, b0
				pmag = mag
			}
			if pmag == 0 {
				return nil, ErrSingular
			}
			inv := 1 / a00
			f := a10 * inv
			u11 := a11 - f*a01
			if cmplx.Abs(u11) == 0 {
				return nil, ErrSingular
			}
			x := ws.Complex(2)
			x1 := (b1 - f*b0) / u11
			x[0] = (b0 - a01*x1) / a00
			x[1] = x1
			return x, nil
		}
	}
	f, perm, err := luWS(ws, m)
	if err != nil {
		return nil, err
	}
	n := m.Rows
	x := ws.Complex(n)
	// Forward substitution with permuted b (L has unit diagonal).
	for i := 0; i < n; i++ {
		s := b[perm[i]]
		for j := 0; j < i; j++ {
			s -= f.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution against U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.At(i, j) * x[j]
		}
		x[i] = s / f.At(i, i)
	}
	return x, nil
}

// Inverse returns m⁻¹ for square m.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, errors.New("linalg: Inverse requires a square matrix")
	}
	n := m.Rows
	var ws Workspace
	f, perm, err := luWS(&ws, m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(n, n)
	col := make([]complex128, n)
	e := make([]complex128, n)
	for k := 0; k < n; k++ {
		for i := range e {
			e[i] = 0
		}
		e[k] = 1
		for i := 0; i < n; i++ {
			s := e[perm[i]]
			for j := 0; j < i; j++ {
				s -= f.At(i, j) * col[j]
			}
			col[i] = s
		}
		for i := n - 1; i >= 0; i-- {
			s := col[i]
			for j := i + 1; j < n; j++ {
				s -= f.At(i, j) * col[j]
			}
			col[i] = s / f.At(i, i)
		}
		out.SetCol(k, col)
	}
	return out, nil
}

// Cholesky returns the lower-triangular L with m = L·Lᴴ for a Hermitian
// positive-definite m.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * cmplx.Conj(l.At(j, k))
			}
			if i == j {
				re := real(sum)
				if re <= 0 {
					return nil, errors.New("linalg: matrix not positive definite")
				}
				l.Set(i, i, complex(math.Sqrt(re), 0))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of m, computed via
// the SVD, discarding singular values below tol relative to the largest.
func (m *Matrix) PseudoInverse(tol float64) *Matrix {
	var ws Workspace
	u, s, v := m.SVDWS(&ws)
	// pinv = V · Σ⁺ · Uᴴ
	var smax float64
	for _, sv := range s {
		if sv > smax {
			smax = sv
		}
	}
	sinv := ws.Matrix(m.Cols, m.Rows) // Σ⁺ has the transposed shape of Σ
	for i, sv := range s {
		if smax > 0 && sv > tol*smax {
			sinv.Set(i, i, complex(1/sv, 0))
		}
	}
	return ws.Mul(ws.Mul(v, sinv), ws.H(u)).Clone()
}
