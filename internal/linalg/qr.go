package linalg

import (
	"math"
	"math/cmplx"
)

// QR computes the full QR decomposition m = Q·R via Householder
// reflections: Q is Rows×Rows unitary and R is Rows×Cols upper
// triangular. It provides an independent factorization used to
// cross-check the Jacobi SVD (rank and nullspace agreement) and a cheaper
// route to orthonormal bases.
func (m *Matrix) QR() (q, r *Matrix) {
	var ws Workspace
	qw, rw := m.QRWS(&ws)
	return qw.Clone(), rw.Clone()
}

// QRWS is QR with all scratch and result storage carved from ws:
// allocation-free once ws has warmed up. The returned matrices live in ws
// (see Workspace ownership rules).
func (m *Matrix) QRWS(ws *Workspace) (q, r *Matrix) {
	rows, cols := m.Rows, m.Cols
	r = ws.Clone(m)
	q = ws.Identity(rows)
	vbuf := ws.Complex(rows)

	steps := cols
	if rows-1 < steps {
		steps = rows - 1
	}
	for k := 0; k < steps; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < rows; i++ {
			v := r.At(i, k)
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		// alpha = -e^{iθ}·‖x‖ with θ the phase of the pivot, for
		// numerical stability.
		pivot := r.At(k, k)
		phase := complex(1, 0)
		if pivot != 0 {
			phase = pivot / complex(cmplx.Abs(pivot), 0)
		}
		alpha := -phase * complex(norm, 0)

		// v = x − αe₁, normalized.
		v := vbuf[:rows-k]
		v[0] = pivot - alpha
		for i := k + 1; i < rows; i++ {
			v[i-k] = r.At(i, k)
		}
		vnorm := Norm2(v)
		if vnorm < 1e-300 {
			continue
		}
		for i := range v {
			v[i] /= complex(vnorm, 0)
		}

		// Apply H = I − 2vvᴴ to R (rows k..) and accumulate into Q.
		for c := k; c < cols; c++ {
			var dot complex128
			for i := range v {
				dot += cmplx.Conj(v[i]) * r.At(k+i, c)
			}
			dot *= 2
			for i := range v {
				r.Set(k+i, c, r.At(k+i, c)-dot*v[i])
			}
		}
		for c := 0; c < rows; c++ {
			var dot complex128
			for i := range v {
				dot += cmplx.Conj(v[i]) * q.At(k+i, c)
			}
			dot *= 2
			for i := range v {
				q.Set(k+i, c, q.At(k+i, c)-dot*v[i])
			}
		}
	}
	// We accumulated Hₙ…H₁ into q, i.e. q = Qᴴ; return Q.
	q = ws.H(q)
	// Clean numerical dust below the diagonal of R.
	for i := 0; i < rows; i++ {
		for j := 0; j < cols && j < i; j++ {
			r.Set(i, j, 0)
		}
	}
	return q, r
}

// NullspaceQR computes an orthonormal right-nullspace basis via the QR
// decomposition of mᴴ: if mᴴ = Q·R with rank r, the last Cols−r columns
// of Q span null(m). It agrees with Nullspace (SVD-based) up to a unitary
// rotation of the basis, and serves as an independent cross-check.
func (m *Matrix) NullspaceQR(tol float64) *Matrix {
	q, r := m.H().QR()
	// Numerical rank from R's diagonal.
	n := m.Cols
	k := m.Rows
	if n < k {
		k = n
	}
	var maxDiag float64
	for i := 0; i < k; i++ {
		if a := cmplx.Abs(r.At(i, i)); a > maxDiag {
			maxDiag = a
		}
	}
	rank := 0
	for i := 0; i < k; i++ {
		if maxDiag > 0 && cmplx.Abs(r.At(i, i)) > tol*maxDiag {
			rank++
		}
	}
	idx := make([]int, 0, n-rank)
	for c := rank; c < n; c++ {
		idx = append(idx, c)
	}
	return q.ColsSlice(idx...)
}
