package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// reconstruct builds U·Σ·Vᴴ from an SVD result.
func reconstruct(u *Matrix, s []float64, v *Matrix) *Matrix {
	sigma := NewMatrix(u.Cols, v.Cols)
	for i, sv := range s {
		sigma.Set(i, i, complex(sv, 0))
	}
	return u.Mul(sigma).Mul(v.H())
}

func checkSVD(t *testing.T, a *Matrix) {
	t.Helper()
	u, s, v := a.SVD()
	if u.Rows != a.Rows || u.Cols != a.Rows {
		t.Fatalf("U shape %dx%d, want %dx%d", u.Rows, u.Cols, a.Rows, a.Rows)
	}
	if v.Rows != a.Cols || v.Cols != a.Cols {
		t.Fatalf("V shape %dx%d, want %dx%d", v.Rows, v.Cols, a.Cols, a.Cols)
	}
	min := a.Rows
	if a.Cols < min {
		min = a.Cols
	}
	if len(s) != min {
		t.Fatalf("len(s)=%d, want %d", len(s), min)
	}
	for i := 0; i < len(s)-1; i++ {
		if s[i] < s[i+1] {
			t.Fatalf("singular values not sorted: %v", s)
		}
	}
	for _, sv := range s {
		if sv < 0 {
			t.Fatalf("negative singular value: %v", s)
		}
	}
	scale := math.Max(1, a.MaxAbs())
	if !u.H().Mul(u).IsIdentity(1e-8) {
		t.Errorf("U not unitary")
	}
	if !v.H().Mul(v).IsIdentity(1e-8) {
		t.Errorf("V not unitary")
	}
	if rec := reconstruct(u, s, v); !rec.Equal(a, 1e-8*scale) {
		t.Errorf("UΣVᴴ != A\nA=%v\nrec=%v", a, rec)
	}
}

func TestSVDShapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {2, 4}, {4, 2}, {1, 4}, {4, 1}, {3, 2}, {2, 3}, {5, 3}, {3, 5}} {
		a := randomMatrix(r, dims[0], dims[1])
		checkSVD(t, a)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := NewMatrix(3, 2)
	u, s, v := a.SVD()
	for _, sv := range s {
		if sv != 0 {
			t.Errorf("zero matrix singular values = %v", s)
		}
	}
	if !u.H().Mul(u).IsIdentity(1e-10) || !v.H().Mul(v).IsIdentity(1e-10) {
		t.Error("U/V of zero matrix not unitary")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Two identical columns: rank 1.
	a := FromRows([][]complex128{
		{1 + 1i, 1 + 1i},
		{2, 2},
		{-1i, -1i},
	})
	checkSVD(t, a)
	if rank := a.Rank(1e-10); rank != 1 {
		t.Errorf("rank = %d, want 1", rank)
	}
	_, s, _ := a.SVD()
	if s[1] > 1e-10*s[0] {
		t.Errorf("second singular value should be ~0: %v", s)
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) has singular values {3, 2}.
	a := FromRows([][]complex128{{3, 0}, {0, 2}})
	_, s, _ := a.SVD()
	if math.Abs(s[0]-3) > 1e-12 || math.Abs(s[1]-2) > 1e-12 {
		t.Errorf("s = %v, want [3 2]", s)
	}
	// A unitary scaling: singular values of c·Q are all |c|.
	q := FromRows([][]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}).Scale(2i)
	_, s2, _ := q.SVD()
	for _, sv := range s2 {
		if math.Abs(sv-2) > 1e-10 {
			t.Errorf("unitary×2i singular values = %v, want all 2", s2)
		}
	}
}

func TestNullspace(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	// A 2×4 random matrix almost surely has rank 2 and a 2-dim nullspace.
	a := randomMatrix(r, 2, 4)
	ns := a.Nullspace(1e-10)
	if ns.Cols != 2 {
		t.Fatalf("nullspace dim = %d, want 2", ns.Cols)
	}
	if prod := a.Mul(ns); prod.MaxAbs() > 1e-9 {
		t.Errorf("A·N not ~0: max|·| = %g", prod.MaxAbs())
	}
	if !ns.H().Mul(ns).IsIdentity(1e-9) {
		t.Error("nullspace basis not orthonormal")
	}
	// Full column rank: empty nullspace.
	b := randomMatrix(r, 4, 2)
	if nb := b.Nullspace(1e-10); nb.Cols != 0 {
		t.Errorf("full-rank nullspace dim = %d, want 0", nb.Cols)
	}
}

func TestQuickSVDReconstruction(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(5), 1+r.Intn(5)
		a := randomMatrix(r, rows, cols)
		u, s, v := a.SVD()
		scale := math.Max(1, a.MaxAbs())
		return reconstruct(u, s, v).Equal(a, 1e-8*scale) &&
			u.H().Mul(u).IsIdentity(1e-8) &&
			v.H().Mul(v).IsIdentity(1e-8)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickNullspaceOrthogonality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(3)
		cols := rows + 1 + r.Intn(3) // wide: guaranteed nullspace
		a := randomMatrix(r, rows, cols)
		ns := a.Nullspace(1e-10)
		if ns.Cols != cols-rows { // random wide matrix has full row rank a.s.
			return false
		}
		return a.Mul(ns).MaxAbs() < 1e-8*math.Max(1, a.MaxAbs())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSolveAndInverse(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 3, 4, 6} {
		a := randomMatrix(r, n, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		b := a.MulVec(x)
		got, err := a.Solve(b)
		if err != nil {
			t.Fatalf("Solve n=%d: %v", n, err)
		}
		for i := range x {
			if d := got[i] - x[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("Solve n=%d: x[%d] = %v, want %v", n, i, got[i], x[i])
			}
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("Inverse n=%d: %v", n, err)
		}
		if !a.Mul(inv).IsIdentity(1e-8) || !inv.Mul(a).IsIdentity(1e-8) {
			t.Errorf("A·A⁻¹ != I for n=%d", n)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := a.Solve([]complex128{1, 2}); err == nil {
		t.Error("expected error for singular solve")
	}
	if _, err := a.Inverse(); err == nil {
		t.Error("expected error for singular inverse")
	}
}

func TestPseudoInverse(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	// Tall full-column-rank: A⁺·A = I.
	a := randomMatrix(r, 4, 2)
	pinv := a.PseudoInverse(1e-12)
	if pinv.Rows != 2 || pinv.Cols != 4 {
		t.Fatalf("pinv shape %dx%d", pinv.Rows, pinv.Cols)
	}
	if !pinv.Mul(a).IsIdentity(1e-8) {
		t.Error("A⁺·A != I for tall full-rank A")
	}
	// Rank-deficient: A·A⁺·A = A (Moore–Penrose condition 1).
	b := FromRows([][]complex128{{1, 1}, {1, 1}})
	bp := b.PseudoInverse(1e-10)
	if !b.Mul(bp).Mul(b).Equal(b, 1e-8) {
		t.Error("A·A⁺·A != A for rank-deficient A")
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomMatrix(r, n, n)
		inv, err := a.Inverse()
		if err != nil {
			return true // singular random draw: astronomically unlikely, skip
		}
		return a.Mul(inv).IsIdentity(1e-7)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkSVD4x2(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SVD()
	}
}

func BenchmarkInverse4x4(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}
