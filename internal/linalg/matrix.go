// Package linalg provides dense complex-valued linear algebra for the
// small matrices that arise in MIMO precoding: matrix products, Hermitian
// transposes, inverses, a complex singular value decomposition, and
// nullspace computation.
//
// All matrices are dense, row-major, and backed by a single []complex128.
// Dimensions in this codebase are tiny (at most a handful of antennas per
// node), so the implementations favour clarity and numerical robustness
// over asymptotic performance.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports whether m and b have identical shape and elements within tol
// (absolute, element-wise).
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	out := NewMatrix(m.Rows, b.Cols)
	mulInto(out, m, b)
	return out
}

// mulInto accumulates m·b into out, which must be zeroed and of shape
// m.Rows×b.Cols.
func mulInto(out, m, b *Matrix) {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			for c := 0; c < b.Cols; c++ {
				out.Data[r*b.Cols+c] += a * b.Data[k*b.Cols+c]
			}
		}
	}
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]complex128, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var s complex128
		for c := 0; c < m.Cols; c++ {
			s += m.Data[r*m.Cols+c] * v[c]
		}
		out[r] = s
	}
	return out
}

// H returns the Hermitian (conjugate) transpose of m.
func (m *Matrix) H() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	hInto(out, m)
	return out
}

// hInto writes the Hermitian transpose of m into out (shape m.Cols×m.Rows).
func hInto(out, m *Matrix) {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = cmplx.Conj(m.Data[r*m.Cols+c])
		}
	}
}

// T returns the (non-conjugating) transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Sub shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []complex128 {
	out := make([]complex128, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Data[r*m.Cols+c]
	}
	return out
}

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []complex128 {
	out := make([]complex128, m.Cols)
	copy(out, m.Data[r*m.Cols:(r+1)*m.Cols])
	return out
}

// SetCol assigns column c from v.
func (m *Matrix) SetCol(c int, v []complex128) {
	if len(v) != m.Rows {
		panic("linalg: SetCol length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		m.Data[r*m.Cols+c] = v[r]
	}
}

// ColsSlice returns a new matrix formed from the given column indices of m,
// in order.
func (m *Matrix) ColsSlice(idx ...int) *Matrix {
	out := NewMatrix(m.Rows, len(idx))
	colsSliceInto(out, m, idx)
	return out
}

// colsSliceInto writes the selected columns of m into out
// (shape m.Rows×len(idx)).
func colsSliceInto(out, m *Matrix, idx []int) {
	for j, c := range idx {
		for r := 0; r < m.Rows; r++ {
			out.Data[r*out.Cols+j] = m.Data[r*m.Cols+c]
		}
	}
}

// RowsSlice returns a new matrix formed from the given row indices of m,
// in order.
func (m *Matrix) RowsSlice(idx ...int) *Matrix {
	out := NewMatrix(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], m.Data[r*m.Cols:(r+1)*m.Cols])
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest element magnitude in m (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// IsIdentity reports whether m is the identity matrix within tol.
func (m *Matrix) IsIdentity(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if cmplx.Abs(m.At(r, c)-want) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			b.WriteString("; ")
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.4g%+.4gi", real(m.At(r, c)), imag(m.At(r, c)))
		}
	}
	b.WriteString("]")
	return b.String()
}

// Dot returns the inner product aᴴ·b of two vectors.
func Dot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}
