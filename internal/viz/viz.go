// Package viz renders the evaluation's figures as standalone SVG charts
// using only the standard library: line and step-CDF series, scatter
// plots, axes with human-friendly tick values, and legends. It exists so
// `copareport` can produce a self-contained HTML report of every paper
// figure without external plotting dependencies.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted data set.
type Series struct {
	Name string
	X, Y []float64
	// Color is any SVG color; assigned from a palette when empty.
	Color string
	// Step draws a step function (for empirical CDFs).
	Step bool
	// Dots draws markers at each point instead of a line (scatter).
	Dots bool
}

// Chart is a 2-D figure with axes and a legend.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// W, H are the overall SVG dimensions (defaults 640×400).
	W, H int
	// LogY plots the Y axis in log10 (all Y values must be positive).
	LogY   bool
	Series []Series
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

const (
	marginLeft   = 64
	marginRight  = 16
	marginTop    = 36
	marginBottom = 48
)

// niceTicks returns ~n human-friendly tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi <= lo {
		hi = lo + 1
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	norm := rawStep / mag
	var step float64
	switch {
	case norm < 1.5:
		step = 1
	case norm < 3:
		step = 2
	case norm < 7:
		step = 5
	default:
		step = 10
	}
	step *= mag
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/1e9; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// dataRange returns the min/max over all series for the selected axis.
func (c *Chart) dataRange(yAxis bool) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		vals := s.X
		if yAxis {
			vals = s.Y
		}
		for _, v := range vals {
			if c.LogY && yAxis {
				if v <= 0 {
					continue
				}
				v = math.Log10(v)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	return lo, hi
}

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := c.W, c.H
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 400
	}
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)

	xlo, xhi := c.dataRange(false)
	ylo, yhi := c.dataRange(true)
	// A little headroom on Y.
	pad := (yhi - ylo) * 0.05
	ylo, yhi = ylo-pad, yhi+pad

	px := func(x float64) float64 { return marginLeft + (x-xlo)/(xhi-xlo)*plotW }
	py := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(math.Max(y, 1e-300))
		}
		return marginTop + plotH - (y-ylo)/(yhi-ylo)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14" font-weight="bold">%s</text>`, marginLeft, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%g" stroke="black"/>`,
		marginLeft, marginTop, marginLeft, marginTop+plotH)

	for _, t := range niceTicks(xlo, xhi, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`, x, float64(marginTop), x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`, x, marginTop+plotH+16, fmtTick(t))
	}
	for _, t := range niceTicks(ylo, yhi, 6) {
		y := marginTop + plotH - (t-ylo)/(yhi-ylo)*plotH
		label := t
		if c.LogY {
			label = math.Pow(10, t)
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`, marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%g" text-anchor="end">%s</text>`, marginLeft-6, y+4, fmtTick(label))
	}
	fmt.Fprintf(&b, `<text x="%g" y="%d" text-anchor="middle">%s</text>`,
		marginLeft+plotW/2, h-10, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, esc(c.YLabel))

	// Series.
	for i, s := range c.Series {
		color := s.Color
		if color == "" {
			color = palette[i%len(palette)]
		}
		switch {
		case s.Dots:
			for j := range s.X {
				fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="3" fill="%s" fill-opacity="0.7"/>`,
					px(s.X[j]), py(s.Y[j]), color)
			}
		default:
			var pts []string
			for j := range s.X {
				if s.Step && j > 0 {
					pts = append(pts, fmt.Sprintf("%g,%g", px(s.X[j]), py(s.Y[j-1])))
				}
				pts = append(pts, fmt.Sprintf("%g,%g", px(s.X[j]), py(s.Y[j])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
				strings.Join(pts, " "), color)
		}
		// Legend entry.
		ly := marginTop + 8 + float64(i)*16
		lx := marginLeft + plotW - 150
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`, lx, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`, lx+14, ly+9, esc(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av < 1e-3:
		return fmt.Sprintf("%.0e", v)
	case av < 10:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.1f", v), "0"), ".")
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
