package viz

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNiceTicksProperties(t *testing.T) {
	cases := [][2]float64{{0, 100}, {-5, 5}, {0.001, 0.009}, {3, 3}, {47.7, 136.2}}
	for _, c := range cases {
		ticks := niceTicks(c[0], c[1], 6)
		if len(ticks) < 2 {
			t.Fatalf("range %v: only %d ticks", c, len(ticks))
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Fatalf("range %v: ticks not increasing: %v", c, ticks)
			}
		}
		hi := c[1]
		if c[0] >= c[1] {
			hi = c[0] + 1
		}
		for _, v := range ticks {
			if v < c[0]-1e-9 || v > hi+1e-9 {
				t.Fatalf("range %v: tick %g outside", c, v)
			}
		}
	}
}

func TestQuickNiceTicksUniformSpacing(t *testing.T) {
	f := func(loRaw, spanRaw uint16) bool {
		lo := float64(loRaw)/100 - 300
		span := float64(spanRaw%50000)/100 + 0.1
		ticks := niceTicks(lo, lo+span, 6)
		if len(ticks) < 2 {
			return true
		}
		d := ticks[1] - ticks[0]
		for i := 2; i < len(ticks); i++ {
			if math.Abs((ticks[i]-ticks[i-1])-d) > 1e-9*math.Max(1, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChartSVGStructure(t *testing.T) {
	c := Chart{
		Title:  "Throughput CDF",
		XLabel: "Mb/s",
		YLabel: "CDF",
		Series: []Series{
			{Name: "CSMA", X: []float64{10, 20, 30}, Y: []float64{0.3, 0.6, 1.0}, Step: true},
			{Name: "COPA", X: []float64{15, 25, 40}, Y: []float64{0.3, 0.6, 1.0}},
		},
	}
	svg := c.SVG()
	for _, want := range []string{"<svg", "</svg>", "Throughput CDF", "CSMA", "COPA", "polyline", "Mb/s"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("SVG contains non-finite coordinates")
	}
}

func TestChartScatterAndLog(t *testing.T) {
	c := Chart{
		Title: "BER",
		LogY:  true,
		Series: []Series{
			{Name: "points", X: []float64{1, 2, 3}, Y: []float64{1e-6, 1e-3, 0.1}, Dots: true},
		},
	}
	svg := c.SVG()
	if !strings.Contains(svg, "<circle") {
		t.Error("scatter should render circles")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("log chart produced NaN")
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := Chart{Title: "empty"}
	svg := c.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("empty chart should still render a frame")
	}
}

func TestEscape(t *testing.T) {
	c := Chart{Title: "a<b & c>d", Series: []Series{{Name: "x<y", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	svg := c.SVG()
	if strings.Contains(svg, "a<b") || strings.Contains(svg, "x<y") {
		t.Error("unescaped markup in SVG text")
	}
	if !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Error("escaping broken")
	}
}
