package router

import (
	"fmt"
	"reflect"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("http://backend-%d:9000", i)
	}
	return ids
}

// TestRingDeterministic: the ring is a pure function of (ids, vnodes),
// so every router replica computes the same home shard for a key —
// the property that lets multiple coparouters front one fleet.
func TestRingDeterministic(t *testing.T) {
	a := buildRing(ringIDs(5), defaultVnodes)
	b := buildRing(ringIDs(5), defaultVnodes)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("4x2|421|%d|0|none|2|0|false", i)
		if !reflect.DeepEqual(a.preference(key), b.preference(key)) {
			t.Fatalf("rings disagree on %q", key)
		}
	}
}

// TestRingPreferenceCoversAll: every preference list is a permutation
// of all backends — the hedge/failover chain can always exhaust the
// pool.
func TestRingPreferenceCoversAll(t *testing.T) {
	r := buildRing(ringIDs(7), defaultVnodes)
	for i := 0; i < 50; i++ {
		prefs := r.preference(fmt.Sprintf("key-%d", i))
		if len(prefs) != 7 {
			t.Fatalf("preference has %d entries, want 7", len(prefs))
		}
		seen := map[int]bool{}
		for _, p := range prefs {
			if seen[p] {
				t.Fatalf("backend %d repeated in preference %v", p, prefs)
			}
			seen[p] = true
		}
	}
}

// TestRingBalance: with 128 vnodes per backend, shard occupancy over
// many keys should stay within ~35% of the mean — uneven enough to be
// real consistent hashing, even enough that no single LRU cache takes
// a disproportionate share of the key space.
func TestRingBalance(t *testing.T) {
	const backends, keys = 5, 20000
	r := buildRing(ringIDs(backends), defaultVnodes)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.preference(fmt.Sprintf("4x2|421|%d|1|default|%d|0|true", i, i%4))[0]]++
	}
	mean := float64(keys) / backends
	for i, c := range counts {
		if dev := float64(c)/mean - 1; dev > 0.35 || dev < -0.35 {
			t.Errorf("backend %d owns %d keys (%.0f%% of mean); distribution %v",
				i, c, 100*float64(c)/mean, counts)
		}
	}
}

// TestRingMembershipStability: removing one backend must remap only
// the keys it owned; every other key keeps its home shard, so a
// leave/join invalidates ~1/N of the fleet's warm cache, not all of
// it.
func TestRingMembershipStability(t *testing.T) {
	ids := ringIDs(6)
	before := buildRing(ids, defaultVnodes)
	after := buildRing(ids[:5], defaultVnodes) // backend-5 leaves

	const keys = 5000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("shard-key-%d", i)
		b := before.preference(key)[0]
		a := after.preference(key)[0]
		if b == 5 {
			// Orphaned keys must land on their old second preference:
			// exactly the backend hedges were already warming.
			if want := before.preference(key)[1]; a != want {
				t.Fatalf("orphaned key %q moved to %d, want old runner-up %d", key, a, want)
			}
			moved++
			continue
		}
		if a != b {
			t.Fatalf("key %q moved %d→%d though its home backend never left", key, b, a)
		}
	}
	if frac := float64(moved) / keys; frac < 0.08 || frac > 0.30 {
		t.Errorf("removal of 1/6 backends moved %.1f%% of keys, want roughly 1/6", 100*frac)
	}
}

func TestRingSingleBackend(t *testing.T) {
	r := buildRing(ringIDs(1), defaultVnodes)
	if got := r.preference("anything"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-backend preference = %v", got)
	}
}
