package router

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"copa/internal/fleet"
	"copa/internal/rng"
)

// TestRouterLoadDegradedBackend runs mixed-priority traffic against a
// three-backend fleet with one backend artificially degraded — extra
// latency and dropped requests injected through the TransportFor seam
// by a seeded fleet.FaultyTransport — and asserts the hedging layer
// keeps the fleet p99 within SLO: a degraded third of the ring must
// cost hedges, not tail latency.
func TestRouterLoadDegradedBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	fleetServers := newFleet(t, 3)
	degraded := fleetServers[0].URL

	hedges0 := mHedges.Value()
	rt, ts := newTestRouter(t, Config{
		Backends:     urls(fleetServers),
		HedgeDefault: 20 * time.Millisecond, // adaptive from here
		TransportFor: func(backendURL string) http.RoundTripper {
			if backendURL != degraded {
				return nil // default transport
			}
			return fleet.NewFaultyTransport(nil, fleet.FaultConfig{
				DelayMax:    120 * time.Millisecond,
				DropRequest: 0.15,
			}, rng.New(42))
		},
	})

	const (
		clients     = 8
		perClient   = 40
		distinctKey = 24 // repeats keep the caches warm, as real traffic would
		sloP99      = 250 * time.Millisecond
	)
	latencies := make([]time.Duration, 0, clients*perClient)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hdr := map[string]string{}
			if c%4 == 3 { // a quarter of the load is batch backfill
				hdr["X-Copa-Priority"] = PriorityBatch
			}
			for i := 0; i < perClient; i++ {
				seed := int64((c*perClient + i) % distinctKey)
				start := time.Now()
				resp, data := postAllocate(t, ts.URL, allocBody(seed), hdr)
				elapsed := time.Since(start)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d req %d: status %d: %s", c, i, resp.StatusCode, data)
					return
				}
				mu.Lock()
				latencies = append(latencies, elapsed)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[len(latencies)*99/100]
	t.Logf("fleet latency with 1/3 backends degraded: p50=%s p99=%s hedges=%d budget=%s",
		p50, p99, mHedges.Value()-hedges0, time.Duration(rt.Stats().HedgeBudgetMS*float64(time.Millisecond)))

	if mHedges.Value() == hedges0 {
		t.Error("no hedges fired though one backend injects up to 120ms of delay")
	}
	if raceEnabled {
		t.Skip("race detector inflates latency ~10x; skipping SLO assertion")
	}
	if p99 > sloP99 {
		t.Errorf("fleet p99 %s exceeds SLO %s despite hedging", p99, sloP99)
	}
}

// TestLatencyTrackerBudget exercises the adaptive budget directly: too
// few samples yield the default; a filled window yields the clamped
// p99.
func TestLatencyTrackerBudget(t *testing.T) {
	var lt latencyTracker
	def, lo, hi := 50*time.Millisecond, 2*time.Millisecond, time.Second

	if got := lt.hedgeBudget(def, lo, hi); got != def {
		t.Errorf("empty tracker budget = %s, want default %s", got, def)
	}
	for i := 0; i < trackerWindow; i++ {
		lt.record(10 * time.Millisecond)
	}
	lt.recomputed = time.Time{} // force refresh past the cache
	if got := lt.hedgeBudget(def, lo, hi); got != 10*time.Millisecond {
		t.Errorf("uniform 10ms window budget = %s, want 10ms", got)
	}
	// Clamping: a pathological p99 cannot push the budget past the max.
	for i := 0; i < trackerWindow; i++ {
		lt.record(time.Minute)
	}
	lt.recomputed = time.Time{}
	if got := lt.hedgeBudget(def, lo, hi); got != hi {
		t.Errorf("runaway p99 budget = %s, want clamp %s", got, hi)
	}
}

// TestLatencyTrackerQuantile pins the quantile math on a known ladder.
func TestLatencyTrackerQuantile(t *testing.T) {
	var lt latencyTracker
	if q := lt.quantile(0.99); q != 0 {
		t.Errorf("quantile of empty tracker = %s, want 0", q)
	}
	for i := 1; i <= 100; i++ {
		lt.record(time.Duration(i) * time.Millisecond)
	}
	if q := lt.quantile(0.50); q < 49*time.Millisecond || q > 52*time.Millisecond {
		t.Errorf("p50 of 1..100ms = %s", q)
	}
	if q := lt.quantile(0.99); q < 98*time.Millisecond || q > 100*time.Millisecond {
		t.Errorf("p99 of 1..100ms = %s", q)
	}
}

// TestRouterConcurrentChurn hammers the router while the backend set
// churns — the immutable poolState swap means this is exactly the
// race the design claims cannot happen. Run with -race.
func TestRouterConcurrentChurn(t *testing.T) {
	fleetServers := newFleet(t, 3)
	all := urls(fleetServers)
	rt, ts := newTestRouter(t, Config{Backends: all, HedgeBudget: 10 * time.Second})

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				rt.SetBackends(all[:2])
			case 1:
				rt.SetBackends(all[1:])
			default:
				rt.SetBackends(all)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, data := postAllocate(t, ts.URL, allocBody(int64(i%8)), nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("churn client %d req %d: status %d: %s", c, i, resp.StatusCode, data)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	if got := len(rt.Backends()); got == 0 {
		t.Error("backend set empty after churn")
	}
	if fmt.Sprint(rt) == "" {
		t.Error("String() empty")
	}
}
