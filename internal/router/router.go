// Package router is copaserve's sharded front tier: an HTTP reverse
// proxy that consistent-hashes each allocation request's full cache
// identity (serve.ShardKey — scenario, seed, mode, impairments, CSI
// age bucket/epoch) across N copaserve backends, so the fleet's LRU
// result caches shard the key space instead of each duplicating it.
//
// Three mechanisms turn the hash ring into a serving tier (DESIGN
// §15):
//
//   - Health-checked backend pools: active /v1/healthz probes plus
//     passive transport-failure detection deprioritize a dead or
//     draining backend without dropping requests already in flight to
//     it; membership changes swap an immutable poolState, so joins
//     and leaves are race-free by construction.
//
//   - Hedged requests: when the home shard has not answered within a
//     p99-derived latency budget, the request is duplicated to the
//     next backend on the ring; the first response wins and the loser
//     is cancelled through its context. Deterministic worlds make the
//     duplicate safe — both backends compute identical bytes.
//
//   - Priority-class admission: interactive allocations are shed
//     last, campaign/fleet backfill first, via a two-watermark
//     in-flight gate in front of the serve layer's own queue/deadline
//     machinery (each backend still applies DESIGN §9 admission).
//
// The router parses a request body only far enough to compute its
// shard key, then forwards the original bytes verbatim — responses
// through the router are byte-identical to direct copaserve responses,
// which is what scripts/router_smoke.sh cmp's.
package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"copa/internal/api"
	"copa/internal/obs"
	"copa/internal/serve"
)

// Priority classes. The wire value travels in the priority header
// (cliflags.RouterFlags.PriorityHeader, default X-Copa-Priority);
// absent means interactive, so plain copaserve clients keep first-
// class service through the router unchanged.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// Config parameterizes a Router. The zero value of any field selects
// the default documented on it.
type Config struct {
	// Backends are the copaserve base URLs ("http://host:port") the
	// ring shards onto. At least one is required.
	Backends []string
	// Coherence must match the backends' CSI coherence time so the
	// router's age bucketing agrees with the cache key (default: the
	// shared serve/strategy default).
	Coherence time.Duration
	// MaxInflight is the interactive admission watermark: the router
	// sheds any request once this many are in flight (default 256).
	MaxInflight int
	// BatchShare is the fraction of MaxInflight batch-class requests
	// may occupy; beyond it batch sheds while interactive still admits
	// (default 0.5).
	BatchShare float64
	// PriorityHeader names the request header carrying the priority
	// class (default "X-Copa-Priority").
	PriorityHeader string
	// HedgeBudget fixes the hedge trigger latency. 0 derives it per
	// request from the observed backend p99, clamped to
	// [HedgeMin, HedgeMax] (default: adaptive).
	HedgeBudget time.Duration
	// HedgeDefault seeds the adaptive budget before enough samples
	// exist (default 50ms).
	HedgeDefault time.Duration
	// HedgeMin/HedgeMax clamp the adaptive budget (defaults 2ms / 1s).
	HedgeMin time.Duration
	HedgeMax time.Duration
	// AttemptTimeout bounds one backend attempt (default 30s).
	AttemptTimeout time.Duration
	// HealthInterval is the active health-probe period (default 500ms;
	// negative disables active probing — passive detection still runs).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 1s).
	HealthTimeout time.Duration
	// Vnodes is the number of ring points per backend (default 128).
	Vnodes int
	// Transport overrides the backend HTTP transport (default
	// http.DefaultTransport). TransportFor, when non-nil, wins per
	// backend URL — the fault-injection seam the degraded-backend load
	// test wraps a fleet.FaultyTransport-style RoundTripper through.
	Transport    http.RoundTripper
	TransportFor func(backendURL string) http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.BatchShare <= 0 || c.BatchShare > 1 {
		c.BatchShare = 0.5
	}
	if c.PriorityHeader == "" {
		c.PriorityHeader = "X-Copa-Priority"
	}
	if c.HedgeDefault <= 0 {
		c.HedgeDefault = 50 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.Vnodes <= 0 {
		c.Vnodes = defaultVnodes
	}
	return c
}

// Router is the front tier. Create with New; it is an http.Handler
// factory (Handler) plus the pool/hedging machinery behind it.
type Router struct {
	cfg Config

	state      atomic.Pointer[poolState]
	lat        latencyTracker
	inflight   atomic.Int64
	batchInfl  atomic.Int64
	draining   atomic.Bool
	stopHealth chan struct{}
	healthWG   sync.WaitGroup
}

// New builds a Router over cfg.Backends and starts its health loop.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend required")
	}
	rt := &Router{cfg: cfg, stopHealth: make(chan struct{})}
	rt.state.Store(rt.newPoolState(cfg.Backends, nil))
	gBackends.Set(float64(len(cfg.Backends)))
	gBackendsHealthy.Set(float64(len(cfg.Backends)))
	if cfg.HealthInterval > 0 {
		rt.healthWG.Add(1)
		go rt.healthLoop()
	}
	return rt, nil
}

// SetBackends swaps the backend set. Requests already dispatched keep
// the old pool state; new requests route on the new ring. Backends
// present in both sets keep their health state and connections.
func (rt *Router) SetBackends(urls []string) error {
	if len(urls) == 0 {
		return errors.New("router: at least one backend required")
	}
	rt.state.Store(rt.newPoolState(urls, rt.state.Load()))
	gBackends.Set(float64(len(urls)))
	return nil
}

// Backends returns the current backend URLs in ring-build order.
func (rt *Router) Backends() []string {
	ps := rt.state.Load()
	out := make([]string, len(ps.backends))
	for i, b := range ps.backends {
		out[i] = b.url
	}
	return out
}

// SetDraining flips the router into drain mode: new allocate requests
// shed with 503 and the health endpoint reports draining, so an
// upstream balancer stops sending traffic while in-flight requests
// finish.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Close stops the health loop. In-flight requests are unaffected.
func (rt *Router) Close() {
	select {
	case <-rt.stopHealth:
	default:
		close(rt.stopHealth)
	}
	rt.healthWG.Wait()
}

// BackendStatus is one backend's health as /v1/healthz reports it.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// Stats is the router's point-in-time operational reading.
type Stats struct {
	Backends      []BackendStatus `json:"backends"`
	Healthy       int             `json:"healthy"`
	Inflight      int64           `json:"inflight"`
	MaxInflight   int             `json:"max_inflight"`
	BatchLimit    int             `json:"batch_limit"`
	HedgeBudgetMS float64         `json:"hedge_budget_ms"`
	// ObservedP99MS is the measured backend p99 the adaptive budget
	// derives from (0 until enough samples exist).
	ObservedP99MS float64 `json:"observed_p99_ms"`
	Draining      bool    `json:"draining"`
}

// Stats reports the router's current operational state.
func (rt *Router) Stats() Stats {
	ps := rt.state.Load()
	st := Stats{
		Healthy:       ps.healthyCount(),
		Inflight:      rt.inflight.Load(),
		MaxInflight:   rt.cfg.MaxInflight,
		BatchLimit:    rt.batchLimit(),
		HedgeBudgetMS: float64(rt.hedgeBudget()) / float64(time.Millisecond),
		ObservedP99MS: float64(rt.lat.quantile(0.99)) / float64(time.Millisecond),
		Draining:      rt.draining.Load(),
	}
	for _, b := range ps.backends {
		st.Backends = append(st.Backends, BackendStatus{URL: b.url, Healthy: b.healthy.Load()})
	}
	return st
}

func (rt *Router) batchLimit() int {
	return int(float64(rt.cfg.MaxInflight) * rt.cfg.BatchShare)
}

func (rt *Router) hedgeBudget() time.Duration {
	if rt.cfg.HedgeBudget > 0 {
		return rt.cfg.HedgeBudget
	}
	return rt.lat.hedgeBudget(rt.cfg.HedgeDefault, rt.cfg.HedgeMin, rt.cfg.HedgeMax)
}

// Handler routes the front tier: the proxied allocation endpoint, the
// router's own health probe, and the obs debug endpoints.
func (rt *Router) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/allocate", rt.handleAllocate)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := rt.Stats()
		status := http.StatusOK
		if st.Draining {
			status = http.StatusServiceUnavailable
		}
		api.WriteJSON(w, status, struct {
			Stats
			Build obs.BuildInfo `json:"build"`
		}{st, obs.ReadBuildInfo()})
	})
	dbg := obs.DebugMux()
	mux.Handle("/debug/", dbg)
	mux.Handle("/metrics", dbg)
	return mux
}

// admit applies the two-watermark priority gate. It returns the
// admitted class ("" means shed, with the 503 already written).
func (rt *Router) admit(w http.ResponseWriter, r *http.Request) (string, bool) {
	class := r.Header.Get(rt.cfg.PriorityHeader)
	switch class {
	case "", PriorityInteractive:
		class = PriorityInteractive
	default:
		// Anything that is not explicitly interactive sheds first:
		// campaign/fleet backfill marks itself batch, and unknown
		// classes are treated as batch rather than rejected so a
		// newer client with a finer class taxonomy degrades safely.
		class = PriorityBatch
	}
	if rt.draining.Load() {
		mShedDraining.Inc()
		w.Header().Set("Retry-After", "1")
		api.WriteError(w, http.StatusServiceUnavailable, "router draining")
		return "", false
	}
	n := rt.inflight.Add(1)
	gInflight.Set(float64(n))
	if class == PriorityBatch {
		bn := rt.batchInfl.Add(1)
		if n > int64(rt.batchLimit()) || bn > int64(rt.batchLimit()) {
			rt.release(class)
			mShedBatch.Inc()
			w.Header().Set("Retry-After", "1")
			api.WriteError(w, http.StatusServiceUnavailable, "router at batch capacity")
			return "", false
		}
		mAdmitBatch.Inc()
		return class, true
	}
	if n > int64(rt.cfg.MaxInflight) {
		rt.inflight.Add(-1)
		mShedInteractive.Inc()
		w.Header().Set("Retry-After", "1")
		api.WriteError(w, http.StatusServiceUnavailable, "router at capacity")
		return "", false
	}
	mAdmitInteract.Inc()
	return class, true
}

func (rt *Router) release(class string) {
	if class == PriorityBatch {
		rt.batchInfl.Add(-1)
	}
	gInflight.Set(float64(rt.inflight.Add(-1)))
}

func (rt *Router) handleAllocate(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	defer mRequestSeconds.Begin().End()
	class, ok := rt.admit(w, r)
	if !ok {
		return
	}
	defer rt.release(class)

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		mBadRequests.Inc()
		api.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Parse just far enough to shard: the request's cache identity.
	ar, err := api.DecodeRequestBody(r.Header.Get("Content-Type"), body)
	if err != nil {
		mBadRequests.Inc()
		api.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sreq, err := api.ParseRequest(ar)
	if err != nil {
		mBadRequests.Inc()
		api.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := serve.ShardKey(sreq, rt.cfg.Coherence)

	ctx := obs.ExtractHTTP(r.Context(), r.Header)
	ctx, span := obs.StartSpan(ctx, "router.allocate")
	if sc := span.Context(); sc.Valid() {
		w.Header().Set(obs.TraceparentHeader, sc.Traceparent())
	}
	span.SetAttr("scenario", ar.Scenario)
	span.SetAttr("class", class)

	prefs := rt.state.Load().preference(key)
	res, err := rt.dispatch(ctx, prefs, r.Header, body)
	span.EndErr(err)
	if err != nil {
		mExhausted.Inc()
		w.Header().Set("Retry-After", "1")
		api.WriteError(w, http.StatusBadGateway, "no backend answered: %v", err)
		return
	}
	// Forward the winning backend's response verbatim (byte-identical
	// to a direct copaserve response); only the traceparent header is
	// the router's own, set above, naming the shared TraceID.
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := res.hdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// attemptResult is one backend attempt's outcome. The body is fully
// buffered before the result is published, so the dispatcher can
// cancel every attempt context the moment a winner exists without
// truncating the winner's body.
type attemptResult struct {
	b      *backend
	status int
	hdr    http.Header
	body   []byte
	err    error
	hedged bool
}

// win reports whether the attempt should be returned to the client:
// the backend answered and is not in a retryable server-error state.
// 5xx (including 503 queue-full shedding) fails over to the next
// backend on the ring; 2xx–4xx are authoritative.
func (a attemptResult) win() bool { return a.err == nil && a.status < 500 }

var errNoBackends = errors.New("router: no backends configured")

// dispatch runs the hedging state machine (DESIGN §15): launch the
// home-shard attempt; on failure, fail over to the next preference
// immediately; on silence past the hedge budget, duplicate to the
// next preference; first winning response cancels the rest.
func (rt *Router) dispatch(ctx context.Context, prefs []*backend, hdr http.Header, body []byte) (attemptResult, error) {
	if len(prefs) == 0 {
		return attemptResult{}, errNoBackends
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll() // safe: winners buffer their body before publishing
	results := make(chan attemptResult, len(prefs))
	launched, pending := 0, 0
	launch := func(hedged bool) {
		b := prefs[launched]
		launched++
		pending++
		actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
		go func() {
			defer cancel()
			results <- rt.attempt(actx, b, hdr, body, hedged)
		}()
	}
	launch(false)
	hedge := time.NewTimer(rt.hedgeBudget())
	defer hedge.Stop()
	var lastFail attemptResult
	for {
		select {
		case res := <-results:
			pending--
			if res.win() {
				if res.hedged {
					mHedgeWins.Inc()
				}
				return res, nil
			}
			lastFail = res
			if !errors.Is(res.err, context.Canceled) {
				mBackendErrors.Inc()
			}
			if launched < len(prefs) {
				// Fail over immediately — a dead backend should cost
				// one connection error, not a hedge budget.
				mRetries.Inc()
				launch(res.hedged)
			} else if pending == 0 {
				if lastFail.err != nil {
					return attemptResult{}, lastFail.err
				}
				// Every backend answered with a 5xx; forward the last
				// one rather than synthesizing our own.
				return lastFail, nil
			}
		case <-hedge.C:
			if launched < len(prefs) {
				mHedges.Inc()
				launch(true)
			}
		case <-ctx.Done():
			return attemptResult{}, ctx.Err()
		}
	}
}

// attempt proxies one request to one backend and buffers the full
// response. Transport failures (other than our own cancellation) mark
// the backend down passively so the very next request prefers its
// ring neighbor.
func (rt *Router) attempt(ctx context.Context, b *backend, hdr http.Header, body []byte, hedged bool) attemptResult {
	res := attemptResult{b: b, hedged: hedged}
	sample := mBackendSeconds.Begin()
	sp := obs.ChildSpan(ctx, "router.attempt")
	sp.SetAttr("backend", b.url)
	if hedged {
		sp.SetAttr("hedged", "true")
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/allocate", bytes.NewReader(body))
	if err != nil {
		res.err = err
		sp.EndErr(err)
		return res
	}
	for _, h := range []string{"Content-Type", "Accept"} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	obs.InjectHTTP(ctx, req.Header)
	resp, err := b.client.Do(req)
	if err == nil {
		res.status = resp.StatusCode
		res.hdr = resp.Header
		res.body, err = io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
	}
	res.err = err
	sp.EndErr(err)
	if res.win() {
		sample.End()
		rt.lat.record(time.Since(start))
		b.markUp()
	} else if err != nil && !errors.Is(err, context.Canceled) {
		b.markDown()
	}
	return res
}

// String renders the router's shape for startup logs.
func (rt *Router) String() string {
	return fmt.Sprintf("router(backends=%d max_inflight=%d batch_limit=%d hedge=%s)",
		len(rt.state.Load().backends), rt.cfg.MaxInflight, rt.batchLimit(), rt.describeHedge())
}

func (rt *Router) describeHedge() string {
	if rt.cfg.HedgeBudget > 0 {
		return rt.cfg.HedgeBudget.String()
	}
	return "p99-adaptive"
}
