package router

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker derives the hedge budget from observed backend
// latency: a fixed ring of the last trackerWindow successful attempt
// durations, with the p99 recomputed lazily (at most once per
// trackerRefresh) so recording stays allocation-free on the request
// path and the sort cost is amortized across many requests.
type latencyTracker struct {
	mu      sync.Mutex
	samples [trackerWindow]float64 // seconds
	n       int                    // total recorded (ring is full once n >= window)
	next    int

	budget     time.Duration // cached p99-derived budget
	recomputed time.Time
}

const (
	trackerWindow  = 512
	trackerRefresh = 100 * time.Millisecond
	// trackerMinSamples gates the adaptive budget: below it the tracker
	// has no statistical footing and the default budget applies.
	trackerMinSamples = 32
)

func (lt *latencyTracker) record(d time.Duration) {
	lt.mu.Lock()
	lt.samples[lt.next] = d.Seconds()
	lt.next = (lt.next + 1) % trackerWindow
	lt.n++
	lt.mu.Unlock()
}

// quantile computes the p-quantile over the current window (0 with
// too few samples). It allocates a scratch copy; callers are the
// budget refresh and stats endpoints, never the per-request fast path.
func (lt *latencyTracker) quantile(p float64) time.Duration {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.quantileLocked(p)
}

func (lt *latencyTracker) quantileLocked(p float64) time.Duration {
	n := lt.n
	if n > trackerWindow {
		n = trackerWindow
	}
	if n < trackerMinSamples {
		return 0
	}
	scratch := make([]float64, n)
	copy(scratch, lt.samples[:n])
	sort.Float64s(scratch)
	idx := int(p * float64(n-1))
	return time.Duration(scratch[idx] * float64(time.Second))
}

// hedgeBudget returns the p99-derived budget clamped to [min, max],
// or def while the window is still filling. The cached value is
// refreshed at most every trackerRefresh.
func (lt *latencyTracker) hedgeBudget(def, min, max time.Duration) time.Duration {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if time.Since(lt.recomputed) < trackerRefresh && lt.budget > 0 {
		return lt.budget
	}
	b := lt.quantileLocked(0.99)
	if b <= 0 {
		b = def
	}
	if b < min {
		b = min
	}
	if b > max {
		b = max
	}
	lt.budget = b
	lt.recomputed = time.Now()
	gHedgeBudget.Set(b.Seconds())
	return b
}
