package router

import (
	"fmt"
	"sort"
)

// The consistent-hash ring. Each backend owns vnodes points on a
// 64-bit circle; a request's shard key hashes to a point and walks
// clockwise collecting distinct backends — the first is its home
// shard, the rest are the hedge/retry preference order. Because the
// walk depends only on (backend set, key), every coparouter replica
// with the same backend list routes a key identically, and adding or
// removing one backend moves only ~1/N of the key space (the property
// that keeps N-1 shards' caches warm through a topology change).
//
// The hash is FNV-1a over the key bytes — not the seeded rng the
// simulation uses, deliberately: routing must be stable across
// processes and restarts, never per-run.

// defaultVnodes balances ring balance against build cost: at 128
// points per backend, shard occupancy stays within ~35% of the mean
// for small fleets (TestRingBalance pins this).
const defaultVnodes = 128

type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of distinct backends
}

type ringPoint struct {
	hash  uint64
	owner int // backend index
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is the splitmix64/murmur3 finalizer. Raw FNV-1a has weak
// avalanche over near-identical inputs — vnode labels differ only in
// their numeric suffix, which without this step clusters ring points
// badly enough to skew shard occupancy ~2.5× (TestRingBalance).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// buildRing places vnodes points per backend id on the circle.
func buildRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{n: len(ids), points: make([]ringPoint, 0, len(ids)*vnodes)}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv1a(fmt.Sprintf("%s#%d", id, v)), owner: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// preference returns every backend index, deduplicated, in clockwise
// ring order starting at key's hash: element 0 is the key's home
// shard, element 1 the first hedge/failover target, and so on.
func (r *ring) preference(key string) []int {
	if r.n == 0 || len(r.points) == 0 {
		return nil
	}
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}
