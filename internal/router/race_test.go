//go:build race

package router

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation slows everything ~10×; latency/throughput
// assertions are skipped under it.
const raceEnabled = true
