package router

import "copa/internal/obs"

// Pre-resolved observability handles for the front tier. Registered at
// package init (metricnames_test.go lints the names); none of these
// allocate on the request path.
var (
	// Request flow, split by priority class at admission.
	mRequests        = obs.C("copa.router.requests")
	mRequestSeconds  = obs.T("copa.router.request_seconds")
	mAdmitInteract   = obs.C("copa.router.admitted_interactive")
	mAdmitBatch      = obs.C("copa.router.admitted_batch")
	mShedInteractive = obs.C("copa.router.shed_interactive")
	mShedBatch       = obs.C("copa.router.shed_batch")
	mShedDraining    = obs.C("copa.router.shed_draining")
	mBadRequests     = obs.C("copa.router.bad_requests")

	// Hedging and failover.
	mHedges        = obs.C("copa.router.hedges")
	mHedgeWins     = obs.C("copa.router.hedge_wins")
	mRetries       = obs.C("copa.router.retries")
	mBackendErrors = obs.C("copa.router.backend_errors")
	mExhausted     = obs.C("copa.router.backends_exhausted")

	// Backend pool.
	mBackendSeconds   = obs.T("copa.router.backend_seconds")
	mBackendDown      = obs.C("copa.router.backend_down")
	mBackendRecovered = obs.C("copa.router.backend_recovered")
	gBackends         = obs.G("copa.router.backends")
	gBackendsHealthy  = obs.G("copa.router.backends_healthy")
	gInflight         = obs.G("copa.router.inflight")
	gHedgeBudget      = obs.G("copa.router.hedge_budget_seconds")
)
