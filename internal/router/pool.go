package router

import (
	"net/http"
	"sync/atomic"
	"time"
)

// The backend pool: one entry per copaserve process, health-checked
// actively (a /v1/healthz probe loop) and passively (transport
// failures mark a backend down immediately, so the request after a
// backend dies already prefers its neighbor). Pool membership changes
// swap an immutable poolState pointer — in-flight requests keep the
// state they started with, so join/leave never drops a request that
// was already dispatched.

// backend is one copaserve process the router shards onto.
type backend struct {
	url    string
	client *http.Client

	// healthy flips passively on transport errors and actively from
	// the probe loop. A down backend is deprioritized, not removed:
	// if every backend is down the router still tries them in ring
	// order rather than shedding outright.
	healthy atomic.Bool
	// probeFails counts consecutive active-probe failures; only the
	// probe loop touches it.
	probeFails int
}

func (b *backend) markDown() { b.healthy.Store(false) }
func (b *backend) markUp()   { b.healthy.Store(true) }

// poolState is the immutable (backends, ring) pair a request routes
// against. SetBackends installs a fresh one atomically.
type poolState struct {
	backends []*backend
	ring     *ring
}

// preference returns key's backends in ring order, healthy ones
// first (order preserved within each class). The slice is freshly
// allocated per call; callers own it.
func (ps *poolState) preference(key string) []*backend {
	order := ps.ring.preference(key)
	out := make([]*backend, 0, len(order))
	for _, i := range order {
		if ps.backends[i].healthy.Load() {
			out = append(out, ps.backends[i])
		}
	}
	for _, i := range order {
		if !ps.backends[i].healthy.Load() {
			out = append(out, ps.backends[i])
		}
	}
	return out
}

func (ps *poolState) healthyCount() int {
	n := 0
	for _, b := range ps.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// newPoolState builds backends (reusing matching entries from prev so
// health state and connections survive a membership change) and their
// ring.
func (rt *Router) newPoolState(urls []string, prev *poolState) *poolState {
	prevBy := map[string]*backend{}
	if prev != nil {
		for _, b := range prev.backends {
			prevBy[b.url] = b
		}
	}
	ps := &poolState{ring: buildRing(urls, rt.cfg.Vnodes)}
	for _, u := range urls {
		if b, ok := prevBy[u]; ok {
			ps.backends = append(ps.backends, b)
			continue
		}
		b := &backend{url: u, client: &http.Client{Transport: rt.transportFor(u)}}
		b.markUp()
		ps.backends = append(ps.backends, b)
	}
	return ps
}

func (rt *Router) transportFor(url string) http.RoundTripper {
	if rt.cfg.TransportFor != nil {
		if t := rt.cfg.TransportFor(url); t != nil {
			return t
		}
	}
	if rt.cfg.Transport != nil {
		return rt.cfg.Transport
	}
	return http.DefaultTransport
}

// healthLoop probes every backend's /v1/healthz at HealthInterval. A
// backend goes down after two consecutive probe failures (or one
// passive transport failure) and comes back after a single good
// probe, so a drained-and-restarted copaserve rejoins within one
// interval without dropping anything: its in-flight requests finished
// under the old poolState before the process exited.
func (rt *Router) healthLoop() {
	defer rt.healthWG.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopHealth:
			return
		case <-t.C:
		}
		ps := rt.state.Load()
		for _, b := range ps.backends {
			if rt.probe(b) {
				b.probeFails = 0
				if !b.healthy.Load() {
					mBackendRecovered.Inc()
					b.markUp()
				}
			} else {
				b.probeFails++
				if b.probeFails >= 2 && b.healthy.Load() {
					mBackendDown.Inc()
					b.markDown()
				}
			}
		}
		gBackendsHealthy.Set(float64(ps.healthyCount()))
	}
}

// probe reports whether one backend answered its health check with
// 200. A 503 — copaserve draining — reads as unhealthy, which is the
// graceful-leave path: the router routes new work elsewhere while the
// backend finishes what it already accepted.
func (rt *Router) probe(b *backend) bool {
	req, err := http.NewRequest(http.MethodGet, b.url+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	client := &http.Client{Transport: b.client.Transport, Timeout: rt.cfg.HealthTimeout}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
