package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"copa/internal/api"
	"copa/internal/obs"
	"copa/internal/serve"
)

// newBackend starts a real copaserve handler (serve.Server behind
// api.NewHandler) and returns its test server.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 1, CacheEntries: 256})
	ts := httptest.NewServer(api.NewHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func newFleet(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	fleet := make([]*httptest.Server, n)
	for i := range fleet {
		fleet[i] = newBackend(t)
	}
	return fleet
}

func urls(fleet []*httptest.Server) []string {
	out := make([]string, len(fleet))
	for i, ts := range fleet {
		out[i] = ts.URL
	}
	return out
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // active probing off unless a test wants it
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

func allocBody(seed int64) []byte {
	return []byte(fmt.Sprintf(`{"scenario":"4x2","seed":%d}`, seed))
}

func postAllocate(t *testing.T, base string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/allocate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", api.ContentTypeJSON)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRouterByteIdentical: the response through the router must be
// byte-for-byte what a direct copaserve returns for the same request —
// the contract scripts/router_smoke.sh cmp's. Cached (second) responses
// are compared so the "cached" field agrees on both paths.
func TestRouterByteIdentical(t *testing.T) {
	fleet := newFleet(t, 3)
	direct := newBackend(t)
	_, ts := newTestRouter(t, Config{Backends: urls(fleet)})

	for seed := int64(0); seed < 8; seed++ {
		body := allocBody(seed)
		var viaRouter, viaDirect []byte
		for i := 0; i < 2; i++ { // second POST is the cached one
			resp, data := postAllocate(t, ts.URL, body, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("router seed %d: status %d: %s", seed, resp.StatusCode, data)
			}
			viaRouter = data
		}
		for i := 0; i < 2; i++ {
			resp, data := postAllocate(t, direct.URL, body, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("direct seed %d: status %d: %s", seed, resp.StatusCode, data)
			}
			viaDirect = data
		}
		if !bytes.Equal(viaRouter, viaDirect) {
			t.Errorf("seed %d: router and direct responses differ:\n router %s\n direct %s",
				seed, viaRouter, viaDirect)
		}
	}
}

// TestRouterShardsNotDuplicates: distinct keys spread across the fleet
// and each lands in exactly one backend's cache — total cached entries
// equals the distinct key count, not keys × backends.
func TestRouterShardsNotDuplicates(t *testing.T) {
	fleet := newFleet(t, 3)
	_, ts := newTestRouter(t, Config{
		Backends:    urls(fleet),
		HedgeBudget: 10 * time.Second, // no hedging: every key hits exactly one backend
	})

	const distinct = 48
	for seed := int64(0); seed < distinct; seed++ {
		for i := 0; i < 2; i++ {
			resp, data := postAllocate(t, ts.URL, allocBody(seed), nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, data)
			}
		}
	}

	total := 0
	for i, b := range fleet {
		resp, err := http.Get(b.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz api.HealthzResponse
		err = json.NewDecoder(resp.Body).Decode(&hz)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if hz.Cache.Entries == 0 {
			t.Errorf("backend %d received no shard of the key space", i)
		}
		total += hz.Cache.Entries
	}
	if total != distinct {
		t.Errorf("fleet caches hold %d entries for %d distinct keys — caches are duplicating, not sharding", total, distinct)
	}
}

// TestRouterFailoverCoversDeadBackend: with one of three backends hard
// down (connection refused) and no active health loop, passive
// detection plus immediate failover must keep every request succeeding.
func TestRouterFailoverCoversDeadBackend(t *testing.T) {
	fleet := newFleet(t, 3)
	dead := newBackend(t)
	dead.Close() // connection refused from the start
	backends := append(urls(fleet[:2]), dead.URL)

	_, ts := newTestRouter(t, Config{Backends: backends})
	for seed := int64(0); seed < 24; seed++ {
		resp, data := postAllocate(t, ts.URL, allocBody(seed), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, data)
		}
	}
}

// TestRouterHedgesSlowBackend: a backend that accepts but never
// answers within the hedge budget must not stall its share of the key
// space — the hedge duplicates to the ring neighbor and wins.
func TestRouterHedgesSlowBackend(t *testing.T) {
	healthy := newBackend(t)
	stall := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // holds every allocate until cancelled or the test ends
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(stall)

	hedges0, wins0 := mHedges.Value(), mHedgeWins.Value()
	_, ts := newTestRouter(t, Config{
		Backends:    []string{slow.URL, healthy.URL},
		HedgeBudget: 5 * time.Millisecond,
	})
	for seed := int64(0); seed < 16; seed++ {
		resp, data := postAllocate(t, ts.URL, allocBody(seed), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, data)
		}
	}
	if mHedges.Value() == hedges0 {
		t.Error("no hedges fired though one backend stalled every request")
	}
	if mHedgeWins.Value() == wins0 {
		t.Error("no hedge ever won though the stalled backend never answers")
	}
}

// TestRouterPriorityShedOrder: batch sheds at its watermark while
// interactive keeps admitting up to MaxInflight; interactive sheds
// only when the router is truly full.
func TestRouterPriorityShedOrder(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.Write([]byte(`{}`))
	}))
	defer blocked.Close()
	awaitStarted := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			select {
			case <-started:
			case <-time.After(5 * time.Second):
				t.Fatalf("backend saw only %d of %d expected requests", i, n)
			}
		}
	}

	_, ts := newTestRouter(t, Config{
		Backends:    []string{blocked.URL},
		MaxInflight: 4,
		BatchShare:  0.5, // batch watermark: 2
		HedgeBudget: time.Minute,
	})

	// Fill the router with 3 blocked interactive requests (3 < 4, all
	// admitted; and 3 > batch watermark 2, so batch must now shed).
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp, _ := postAllocate(t, ts.URL, allocBody(seed), nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("blocked interactive seed %d: status %d", seed, resp.StatusCode)
			}
		}(int64(i))
	}
	awaitStarted(3) // all 3 are in flight inside the backend

	// Batch sheds first.
	resp, _ := postAllocate(t, ts.URL, allocBody(100), map[string]string{"X-Copa-Priority": PriorityBatch})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch request at capacity: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	// Unknown classes count as batch (shed first), not as interactive.
	resp, _ = postAllocate(t, ts.URL, allocBody(101), map[string]string{"X-Copa-Priority": "bulk-v2"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unknown-class request: status %d, want 503 (batch treatment)", resp.StatusCode)
	}

	// Interactive still has headroom (4th slot).
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postAllocate(t, ts.URL, allocBody(102), nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("4th interactive: status %d", resp.StatusCode)
		}
	}()
	awaitStarted(1)

	// Now the router is full: even interactive sheds.
	resp, _ = postAllocate(t, ts.URL, allocBody(103), map[string]string{"X-Copa-Priority": PriorityInteractive})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("interactive past MaxInflight: status %d, want 503", resp.StatusCode)
	}

	close(release)
	wg.Wait()

	// With capacity released, both classes admit again.
	resp, _ = postAllocate(t, ts.URL, allocBody(104), map[string]string{"X-Copa-Priority": PriorityBatch})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("batch after release: status %d", resp.StatusCode)
	}
}

// TestRouterDraining: SetDraining sheds new work with 503 and flips
// /v1/healthz, the signal an upstream balancer watches.
func TestRouterDraining(t *testing.T) {
	fleet := newFleet(t, 1)
	rt, ts := newTestRouter(t, Config{Backends: urls(fleet)})

	rt.SetDraining(true)
	resp, _ := postAllocate(t, ts.URL, allocBody(1), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining allocate: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503", hresp.StatusCode)
	}

	rt.SetDraining(false)
	resp, _ = postAllocate(t, ts.URL, allocBody(1), nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after drain cleared: status %d", resp.StatusCode)
	}
}

// TestRouterSetBackends: joins and leaves swap the pool atomically;
// requests keep succeeding across the change and Backends() reflects
// the new membership.
func TestRouterSetBackends(t *testing.T) {
	fleet := newFleet(t, 3)
	rt, ts := newTestRouter(t, Config{Backends: urls(fleet[:2])})

	if got := rt.Backends(); len(got) != 2 {
		t.Fatalf("initial backends: %v", got)
	}
	for seed := int64(0); seed < 8; seed++ {
		if resp, data := postAllocate(t, ts.URL, allocBody(seed), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("before join, seed %d: %d %s", seed, resp.StatusCode, data)
		}
	}

	// Join a third backend, then leave the first.
	if err := rt.SetBackends(urls(fleet)); err != nil {
		t.Fatal(err)
	}
	if got := rt.Backends(); len(got) != 3 {
		t.Fatalf("after join: %v", got)
	}
	if err := rt.SetBackends(urls(fleet[1:])); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		if resp, data := postAllocate(t, ts.URL, allocBody(seed), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("after leave, seed %d: %d %s", seed, resp.StatusCode, data)
		}
	}
	if err := rt.SetBackends(nil); err == nil {
		t.Error("SetBackends(nil) accepted an empty pool")
	}
}

// TestRouterTracePropagation: a caller-supplied traceparent flows
// through the router so client, router, and backend spans share one
// TraceID.
func TestRouterTracePropagation(t *testing.T) {
	var backendTraceparent string
	var mu sync.Mutex
	fleet := newFleet(t, 1)
	capture := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		backendTraceparent = r.Header.Get(obs.TraceparentHeader)
		mu.Unlock()
		// Forward to the real backend so the response is valid.
		resp, err := http.Post(fleet[0].URL+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer capture.Close()

	_, ts := newTestRouter(t, Config{Backends: []string{capture.URL}})

	const inbound = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	resp, data := postAllocate(t, ts.URL, allocBody(1), map[string]string{obs.TraceparentHeader: inbound})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	wantTrace := "0123456789abcdef0123456789abcdef"
	if echoed := resp.Header.Get(obs.TraceparentHeader); !strings.Contains(echoed, wantTrace) {
		t.Errorf("response traceparent %q does not carry inbound TraceID", echoed)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(backendTraceparent, wantTrace) {
		t.Errorf("backend saw traceparent %q, want TraceID %s", backendTraceparent, wantTrace)
	}
}

// TestRouterBadRequests: malformed and oversized bodies are rejected
// at the router without consuming a backend attempt.
func TestRouterBadRequests(t *testing.T) {
	fleet := newFleet(t, 1)
	_, ts := newTestRouter(t, Config{Backends: urls(fleet)})

	resp, _ := postAllocate(t, ts.URL, []byte(`{"scenario":"nope"}`), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown scenario: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postAllocate(t, ts.URL, []byte(`not json`), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

// TestRouterBinaryPassthrough: a binary-codec request shards and
// proxies like JSON — the router decodes it only for the shard key and
// forwards the original bytes.
func TestRouterBinaryPassthrough(t *testing.T) {
	fleet := newFleet(t, 2)
	_, ts := newTestRouter(t, Config{Backends: urls(fleet)})

	bin, err := api.EncodeRequestBinary(api.AllocateRequest{Scenario: "4x2", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	req.Header.Set("Accept", api.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	ar, err := api.DecodeResponseBinary(data)
	if err != nil {
		t.Fatalf("response is not binary: %v", err)
	}
	if ar.Selected.Strategy == "" {
		t.Error("binary response missing selected strategy")
	}
}

// TestRouterActiveHealth: the probe loop marks a killed backend down
// (after two failed probes) and a restarted one up (after one good
// probe), visible through Stats.
func TestRouterActiveHealth(t *testing.T) {
	fleet := newFleet(t, 2)
	flaky := newBackend(t)
	rt, _ := newTestRouter(t, Config{
		Backends:       append(urls(fleet), flaky.URL),
		HealthInterval: 10 * time.Millisecond,
	})

	flaky.CloseClientConnections()
	flaky.Close()
	deadline := time.Now().Add(2 * time.Second)
	for rt.Stats().Healthy != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := rt.Stats().Healthy; got != 2 {
		t.Fatalf("healthy = %d after killing one of three backends, want 2", got)
	}
}
