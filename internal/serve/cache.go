package serve

import "container/list"

// lruCache is the bounded result cache: a map for O(1) lookup plus an
// intrusive recency list. It is not self-locking — the Server guards it
// with its own mutex so a cache hit costs one lock, one map lookup and
// one list splice, none of which allocate (the zero-steady-state-alloc
// contract BenchmarkServeAllocateCached pins).
//
// The cache also keeps its own cumulative hit/miss/eviction counts.
// The package-level obs counters aggregate across every Server in the
// process; these instance counts are what /v1/healthz reports, so a
// router fronting N copaserve shards can read each shard's cache
// occupancy and balance from its health probe alone. The counts are
// plain integers mutated under the Server mutex and mirrored into the
// copa.serve.cache.* gauges (atomic stores — the hit path stays
// allocation-free).
type lruCache struct {
	max   int
	ll    *list.List // front = most recently used
	items map[key]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

// lruEntry is one cached result with its key for reverse eviction.
type lruEntry struct {
	k   key
	res *Result
}

// newLRUCache returns a cache bounded to max entries; max < 0 disables
// caching entirely (every get misses, every put is dropped).
func newLRUCache(max int) *lruCache {
	if max < 0 {
		max = 0
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[key]*list.Element)}
}

// get returns the cached result for k, refreshing its recency.
func (c *lruCache) get(k key) (*Result, bool) {
	e, ok := c.items[k]
	if !ok {
		c.misses++
		gCacheMisses.Set(float64(c.misses))
		return nil, false
	}
	c.hits++
	gCacheHits.Set(float64(c.hits))
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).res, true
}

// put inserts or refreshes k, evicting the least recently used entry
// when the bound is exceeded.
func (c *lruCache) put(k key, res *Result) {
	if c.max == 0 {
		return
	}
	if e, ok := c.items[k]; ok {
		e.Value.(*lruEntry).res = res
		c.ll.MoveToFront(e)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{k: k, res: res})
	for len(c.items) > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).k)
		c.evictions++
		gCacheEvictions.Set(float64(c.evictions))
		mCacheEvictions.Inc()
	}
	gCacheEntries.Set(float64(len(c.items)))
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return len(c.items) }

// CacheStats is one cache's cumulative and point-in-time reading —
// the per-shard numbers a fronting router observes shard balance with.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// stats snapshots the cache counters; callers hold the Server mutex.
func (c *lruCache) stats() CacheStats {
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.items),
		Capacity:  c.max,
	}
}
