package serve

import "container/list"

// lruCache is the bounded result cache: a map for O(1) lookup plus an
// intrusive recency list. It is not self-locking — the Server guards it
// with its own mutex so a cache hit costs one lock, one map lookup and
// one list splice, none of which allocate (the zero-steady-state-alloc
// contract BenchmarkServeAllocateCached pins).
type lruCache struct {
	max   int
	ll    *list.List // front = most recently used
	items map[key]*list.Element
}

// lruEntry is one cached result with its key for reverse eviction.
type lruEntry struct {
	k   key
	res *Result
}

// newLRUCache returns a cache bounded to max entries; max < 0 disables
// caching entirely (every get misses, every put is dropped).
func newLRUCache(max int) *lruCache {
	if max < 0 {
		max = 0
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[key]*list.Element)}
}

// get returns the cached result for k, refreshing its recency.
func (c *lruCache) get(k key) (*Result, bool) {
	e, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).res, true
}

// put inserts or refreshes k, evicting the least recently used entry
// when the bound is exceeded.
func (c *lruCache) put(k key, res *Result) {
	if c.max == 0 {
		return
	}
	if e, ok := c.items[k]; ok {
		e.Value.(*lruEntry).res = res
		c.ll.MoveToFront(e)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{k: k, res: res})
	for len(c.items) > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).k)
		mCacheEvictions.Inc()
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return len(c.items) }
