package serve

import (
	"context"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/strategy"
)

// sessionReq is req1x1 in session mode at controller time t.
func sessionReq(seed int64, t time.Duration) Request {
	r := req1x1(seed, strategy.ModeMax)
	r.Session = true
	r.Time = t
	return r
}

// TestSessionEpochNeverStraddlesBucket is the regression test for the
// pre-session keying bug: bucket boundaries were re-derived from the raw
// age at every stage, so any session time past one coherence clamped
// into the final bucket and every later epoch collapsed onto one cache
// key. The fix computes (epoch, bucket) once, in keyFor, from the
// shared channel.AgeBucket helper.
func TestSessionEpochNeverStraddlesBucket(t *testing.T) {
	const coh = 100 * time.Millisecond
	cfg := testConfig()
	cfg.Coherence = coh
	s := New(cfg)
	defer s.Close()

	for _, tc := range []struct {
		at     time.Duration
		epoch  int64
		bucket int
	}{
		{0, 0, 0},
		{24 * time.Millisecond, 0, 0},
		{25 * time.Millisecond, 0, 1},
		{99 * time.Millisecond, 0, 3},
		{100 * time.Millisecond, 1, 0},   // epoch boundary: bucket resets
		{105 * time.Millisecond, 1, 0},   // NOT the clamped last bucket
		{199 * time.Millisecond, 1, 3},   // bucket never crosses into epoch 2
		{1005 * time.Millisecond, 10, 0}, // deep epochs stay distinct
	} {
		k := s.keyFor(sessionReq(7, tc.at))
		if k.epoch != tc.epoch || k.ageBucket != tc.bucket {
			t.Errorf("t=%v: (epoch, bucket) = (%d, %d), want (%d, %d)",
				tc.at, k.epoch, k.ageBucket, tc.epoch, tc.bucket)
		}
		// The intra-epoch bucket must be the shared helper's answer for
		// the intra-epoch age — serve and drift agree by construction.
		intra := tc.at - time.Duration(tc.epoch)*coh
		if want := channel.AgeBucket(intra, coh, AgeBuckets); k.ageBucket != want {
			t.Errorf("t=%v: bucket %d disagrees with channel.AgeBucket %d", tc.at, k.ageBucket, want)
		}
	}

	// The collapse itself: two times in different epochs must never
	// share a key (the old raw-age clamp mapped both to bucket 4).
	ka := s.keyFor(sessionReq(7, 105*time.Millisecond))
	kb := s.keyFor(sessionReq(7, 1005*time.Millisecond))
	if ka == kb {
		t.Fatalf("epochs 1 and 10 collapsed onto one cache key: %+v", ka)
	}
}

// TestSessionValidityHorizon pins the allocation's validity horizon to
// the next shared bucket boundary after the request time.
func TestSessionValidityHorizon(t *testing.T) {
	const coh = 100 * time.Millisecond
	cfg := testConfig()
	cfg.Coherence = coh
	s := New(cfg)
	defer s.Close()

	for _, at := range []time.Duration{0, 10 * time.Millisecond, 105 * time.Millisecond, 399 * time.Millisecond} {
		res, _, err := s.Allocate(context.Background(), sessionReq(7, at))
		if err != nil {
			t.Fatalf("Allocate(t=%v): %v", at, err)
		}
		if res.ValidUntil <= at {
			t.Errorf("t=%v: ValidUntil %v not in the future", at, res.ValidUntil)
		}
		epochEnd := time.Duration(res.Epoch+1) * coh
		if res.ValidUntil > epochEnd {
			t.Errorf("t=%v: ValidUntil %v straddles the epoch ending %v", at, res.ValidUntil, epochEnd)
		}
		// The horizon is exactly where the next bucket starts.
		want := time.Duration(res.Epoch)*coh + channel.BucketStart(res.AgeBucket+1, coh, AgeBuckets)
		if res.ValidUntil != want {
			t.Errorf("t=%v: ValidUntil %v, want bucket boundary %v", at, res.ValidUntil, want)
		}
	}
}

// TestSessionTimeZeroMatchesStatic: at controller time 0 a session
// request has the same cache identity as a fresh static request, so the
// two share one evaluation and one byte-identical result — the "speed 0
// output is byte-identical to the static path" half of the drift
// contract, at the serving layer.
func TestSessionTimeZeroMatchesStatic(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	static, cached, err := s.Allocate(context.Background(), req1x1(11, strategy.ModeMax))
	if err != nil {
		t.Fatalf("static Allocate: %v", err)
	}
	if cached {
		t.Fatal("first request reported cached")
	}
	sess, cached, err := s.Allocate(context.Background(), sessionReq(11, 0))
	if err != nil {
		t.Fatalf("session Allocate: %v", err)
	}
	if !cached {
		t.Error("session t=0 did not share the static cache entry")
	}
	if sess != static {
		t.Error("session t=0 result differs from static result")
	}
}
