package serve

import "copa/internal/obs"

// Pre-resolved observability handles for the serving layer (DESIGN §9).
// All are registered at package init so the request hot path — in
// particular the allocation-free cache-hit path — never looks a metric
// up by name.
var (
	// Request flow.
	mRequests       = obs.C("copa.serve.requests")
	mRequestSeconds = obs.T("copa.serve.request_seconds")

	// Result cache and in-flight deduplication.
	mCacheHits      = obs.C("copa.serve.cache_hits")
	mCacheMisses    = obs.C("copa.serve.cache_misses")
	mCacheEvictions = obs.C("copa.serve.cache_evictions")
	mInflightDedup  = obs.C("copa.serve.inflight_dedup")

	// Per-shard cache gauges: the instance-scoped readings /v1/healthz
	// reports, mirrored onto /metrics so a fronting router's shard
	// balance is scrapeable. (The copa.serve.cache_* counters above
	// aggregate across every Server in the process; these track the
	// result cache the HTTP daemon serves from.)
	gCacheHits      = obs.G("copa.serve.cache.hits")
	gCacheMisses    = obs.G("copa.serve.cache.misses")
	gCacheEvictions = obs.G("copa.serve.cache.evictions")
	gCacheEntries   = obs.G("copa.serve.cache.entries")

	// Load shedding, split by cause: queue full at admission, deadline
	// expired while queued, server draining.
	mShedQueueFull = obs.C("copa.serve.shed_queue_full")
	mShedExpired   = obs.C("copa.serve.shed_expired")
	mShedClosed    = obs.C("copa.serve.shed_closed")

	// Evaluator pool behaviour.
	mBatches         = obs.C("copa.serve.batches")
	mQueueSeconds    = obs.T("copa.serve.queue_seconds")
	mBatchSize       = obs.H("copa.serve.batch_size", obs.LinearBuckets(1, 1, 16))
	mBatchShared     = obs.C("copa.serve.batch_shared_evals")
	mEvaluateSeconds = obs.T("copa.serve.evaluate_seconds")
	mEvaluateErrors  = obs.C("copa.serve.evaluate_errors")
	mQueueDepth      = obs.G("copa.serve.queue_depth")
	mWorkers         = obs.G("copa.serve.workers")
)
