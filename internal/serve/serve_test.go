package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// testConfig is a small, fast server for unit tests.
func testConfig() Config {
	return Config{
		Workers:         2,
		QueueDepth:      16,
		BatchWindow:     -1, // no waiting: coalesce only what is queued
		MaxBatch:        8,
		CacheEntries:    64,
		DefaultDeadline: 10 * time.Second,
		DrainTimeout:    10 * time.Second,
	}
}

// slow4x2Hook returns an EvalHook that stalls Scenario4x2 evaluations by d,
// giving admission-control tests a deterministic "slow blocker" regardless
// of how fast the evaluator itself has become.
func slow4x2Hook(d time.Duration) func(Request) {
	return func(r Request) {
		if r.Scenario == channel.Scenario4x2 {
			time.Sleep(d)
		}
	}
}

// req1x1 is the cheap canonical request unit tests evaluate.
func req1x1(seed int64, mode strategy.Mode) Request {
	return Request{
		Scenario:    channel.Scenario1x1,
		Seed:        seed,
		Mode:        mode,
		Impairments: channel.DefaultImpairments(),
	}
}

// serialReference computes the result the service must reproduce:
// the same seed-to-world derivation, evaluated on a fresh private
// evaluator.
func serialReference(t *testing.T, req Request, coherence time.Duration) strategy.Outcome {
	t.Helper()
	imp := agedImpairments(req.Impairments, ageBucket(req.CSIAge, coherence))
	src := rng.New(req.Seed)
	dep := channel.NewDeployment(src.Split(1), req.Scenario)
	ev := strategy.NewEvaluator(dep, imp, src.Split(2))
	ev.MultiDecoder = req.MultiDecoder
	outs, err := ev.EvaluateAll()
	if err != nil {
		t.Fatalf("serial EvaluateAll: %v", err)
	}
	return strategy.Select(req.Mode, outs)
}

func counter(name string) uint64 {
	return obs.Default().Snapshot().Counters[name]
}

func TestAllocateCachesAndMatchesSerial(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	req := req1x1(7, strategy.ModeMax)
	res, cached, err := s.Allocate(context.Background(), req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if cached {
		t.Fatal("first request reported cached")
	}
	want := serialReference(t, req, s.cfg.Coherence)
	if res.Selected != want {
		t.Fatalf("served outcome %+v != serial reference %+v", res.Selected, want)
	}

	res2, cached2, err := s.Allocate(context.Background(), req)
	if err != nil {
		t.Fatalf("repeat Allocate: %v", err)
	}
	if !cached2 {
		t.Fatal("identical repeat request was not served from cache")
	}
	if res2 != res {
		t.Fatal("cache hit returned a different result object")
	}

	// The other selection mode is a different cache key but shares the
	// same evaluation world: outcomes must agree value-for-value.
	fair := req1x1(7, strategy.ModeFair)
	resF, _, err := s.Allocate(context.Background(), fair)
	if err != nil {
		t.Fatalf("fair Allocate: %v", err)
	}
	if resF.Selected != serialReference(t, fair, s.cfg.Coherence) {
		t.Fatal("fair-mode outcome diverges from serial reference")
	}
	for k, o := range res.Outcomes {
		if resF.Outcomes[k] != o {
			t.Fatalf("outcome %v differs between modes of the same world", k)
		}
	}
}

// TestPoolMatchesSerialReference hammers the evaluator pool from many
// goroutines and requires every served outcome to equal a serially
// computed reference bit for bit — under -race this is the arena
// isolation proof for the one-workspace-per-worker design.
func TestPoolMatchesSerialReference(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	cfg.CacheEntries = -1 // disable caching: force every request through the pool
	cfg.QueueDepth = 256
	s := New(cfg)
	defer s.Close()

	const seeds = 6
	const rounds = 3
	want := make(map[Request]strategy.Outcome)
	var reqs []Request
	for seed := int64(1); seed <= seeds; seed++ {
		for _, mode := range []strategy.Mode{strategy.ModeMax, strategy.ModeFair} {
			r := req1x1(seed, mode)
			want[r] = serialReference(t, r, cfg.Coherence)
			reqs = append(reqs, r)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(reqs)*rounds)
	for round := 0; round < rounds; round++ {
		for _, r := range reqs {
			wg.Add(1)
			go func(r Request) {
				defer wg.Done()
				res, _, err := s.Allocate(context.Background(), r)
				if err != nil {
					errs <- err
					return
				}
				if res.Selected != want[r] {
					errs <- errors.New("pooled outcome diverges from serial reference")
				}
			}(r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueueFullSheds(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.MaxBatch = 1
	cfg.EvalHook = slow4x2Hook(150 * time.Millisecond)
	s := New(cfg)
	defer s.Close()

	before := counter("copa.serve.shed_queue_full")

	// Occupy the worker with a slow (4x2) evaluation, then burst
	// distinct cheap requests: with one worker and a one-slot queue most
	// of the burst must shed.
	blocker := Request{Scenario: channel.Scenario4x2, Seed: 99, Impairments: channel.DefaultImpairments()}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := s.Allocate(context.Background(), blocker); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the worker pick the blocker up

	shed := 0
	var burst sync.WaitGroup
	var mu sync.Mutex
	for i := int64(0); i < 24; i++ {
		burst.Add(1)
		go func(seed int64) {
			defer burst.Done()
			_, _, err := s.Allocate(context.Background(), req1x1(1000+seed, strategy.ModeMax))
			if errors.Is(err, ErrQueueFull) {
				mu.Lock()
				shed++
				mu.Unlock()
			} else if err != nil {
				t.Errorf("burst: %v", err)
			}
		}(i)
	}
	burst.Wait()
	wg.Wait()
	if shed == 0 {
		t.Fatal("no request was shed with ErrQueueFull")
	}
	if got := counter("copa.serve.shed_queue_full"); got < before+uint64(shed) {
		t.Fatalf("shed_queue_full counter %d did not advance by %d", got, shed)
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MaxBatch = 1
	cfg.DefaultDeadline = time.Millisecond
	cfg.EvalHook = slow4x2Hook(150 * time.Millisecond)
	s := New(cfg)
	defer s.Close()

	before := counter("copa.serve.shed_expired")
	blocker := Request{Scenario: channel.Scenario4x2, Seed: 99, Impairments: channel.DefaultImpairments()}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = s.Allocate(context.Background(), blocker)
	}()
	time.Sleep(20 * time.Millisecond)

	// Queued behind a >1ms evaluation with a 1ms deadline: must be shed
	// as expired, not evaluated.
	_, _, err := s.Allocate(context.Background(), req1x1(5, strategy.ModeMax))
	wg.Wait()
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if got := counter("copa.serve.shed_expired"); got <= before {
		t.Fatal("shed_expired counter did not advance")
	}
}

func TestInflightDeduplication(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MaxBatch = 1
	cfg.EvalHook = slow4x2Hook(150 * time.Millisecond)
	s := New(cfg)
	defer s.Close()

	before := counter("copa.serve.inflight_dedup")
	blocker := Request{Scenario: channel.Scenario4x2, Seed: 99, Impairments: channel.DefaultImpairments()}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = s.Allocate(context.Background(), blocker)
	}()
	time.Sleep(20 * time.Millisecond)

	// Two identical requests while the worker is busy: the second must
	// piggyback on the first's flight, and both get the same object.
	req := req1x1(42, strategy.ModeMax)
	results := make([]*Result, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.Allocate(context.Background(), req)
			if err != nil {
				t.Errorf("dedup request: %v", err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if results[0] == nil || results[0] != results[1] {
		t.Fatal("identical concurrent requests did not share one computation")
	}
	if got := counter("copa.serve.inflight_dedup"); got <= before {
		t.Fatal("inflight_dedup counter did not advance")
	}
}

func TestAgeBucketing(t *testing.T) {
	coh := 40 * time.Millisecond
	cases := []struct {
		age  time.Duration
		want int
	}{
		{0, 0}, {5 * time.Millisecond, 0},
		{10 * time.Millisecond, 1}, {19 * time.Millisecond, 1},
		{20 * time.Millisecond, 2}, {39 * time.Millisecond, 3},
		{40 * time.Millisecond, 4}, {time.Hour, 4},
	}
	for _, c := range cases {
		if got := ageBucket(c.age, coh); got != c.want {
			t.Errorf("ageBucket(%v) = %d, want %d", c.age, got, c.want)
		}
	}

	// Staleness error must grow monotonically with the bucket.
	imp := channel.DefaultImpairments()
	prev := imp.StalenessDB
	for b := 1; b <= AgeBuckets; b++ {
		got := agedImpairments(imp, b).StalenessDB
		if got <= prev {
			t.Fatalf("bucket %d staleness %f not above bucket %d's %f", b, got, b-1, prev)
		}
		prev = got
	}

	cfg := testConfig()
	cfg.Coherence = coh
	s := New(cfg)
	defer s.Close()
	base := req1x1(3, strategy.ModeMax)
	base.CSIAge = 11 * time.Millisecond
	if _, _, err := s.Allocate(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	sameBucket := base
	sameBucket.CSIAge = 14 * time.Millisecond
	if _, cached, err := s.Allocate(context.Background(), sameBucket); err != nil || !cached {
		t.Fatalf("same-bucket age did not share the cache entry (cached=%v, err=%v)", cached, err)
	}
	otherBucket := base
	otherBucket.CSIAge = 25 * time.Millisecond
	if _, cached, err := s.Allocate(context.Background(), otherBucket); err != nil || cached {
		t.Fatalf("different-bucket age wrongly shared the cache entry (cached=%v, err=%v)", cached, err)
	}
}

func TestCacheBoundAndEviction(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = 2
	s := New(cfg)
	defer s.Close()

	before := counter("copa.serve.cache_evictions")
	for seed := int64(1); seed <= 4; seed++ {
		if _, _, err := s.Allocate(context.Background(), req1x1(seed, strategy.ModeMax)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Stats().CacheEntries; n > 2 {
		t.Fatalf("cache holds %d entries, bound is 2", n)
	}
	if got := counter("copa.serve.cache_evictions"); got <= before {
		t.Fatal("cache_evictions counter did not advance")
	}
	// Seed 1 was evicted: it must recompute (miss), seed 4 must hit.
	if _, cached, _ := s.Allocate(context.Background(), req1x1(4, strategy.ModeMax)); !cached {
		t.Fatal("most recent entry was not retained")
	}
	if _, cached, _ := s.Allocate(context.Background(), req1x1(1, strategy.ModeMax)); cached {
		t.Fatal("evicted entry was wrongly served from cache")
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MaxBatch = 1
	s := New(cfg)

	// Queue several requests, then shut down: every admitted request
	// must complete, and post-shutdown admission must be rejected.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for seed := int64(1); seed <= 4; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, _, err := s.Allocate(context.Background(), req1x1(seed, strategy.ModeMax))
			errs <- err
		}(seed)
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, ErrServerClosed) {
			t.Fatalf("admitted request failed with %v", err)
		}
	}
	if _, _, err := s.Allocate(context.Background(), req1x1(9, strategy.ModeMax)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-shutdown Allocate: err = %v, want ErrServerClosed", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestBatchSharesEvaluations verifies the amortization batching exists
// for: requests that differ only in mode, queued together, share one
// EvaluateAll pass.
func TestBatchSharesEvaluations(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MaxBatch = 8
	cfg.CacheEntries = -1 // force both through the pool
	cfg.EvalHook = slow4x2Hook(150 * time.Millisecond)
	s := New(cfg)
	defer s.Close()

	before := counter("copa.serve.batch_shared_evals")
	blocker := Request{Scenario: channel.Scenario4x2, Seed: 99, Impairments: channel.DefaultImpairments()}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = s.Allocate(context.Background(), blocker)
	}()
	time.Sleep(20 * time.Millisecond)

	// Same world, both modes, queued while the worker is busy: they end
	// up in one batch and one evaluation group.
	for _, mode := range []strategy.Mode{strategy.ModeMax, strategy.ModeFair} {
		wg.Add(1)
		go func(mode strategy.Mode) {
			defer wg.Done()
			if _, _, err := s.Allocate(context.Background(), req1x1(77, mode)); err != nil {
				t.Errorf("batched request: %v", err)
			}
		}(mode)
	}
	wg.Wait()
	if got := counter("copa.serve.batch_shared_evals"); got <= before {
		t.Fatal("batch_shared_evals counter did not advance: modes were evaluated separately")
	}
}
