// Package serve turns the strategy evaluator into a concurrent
// allocation-as-a-service layer: callers submit (scenario, seed, mode,
// impairments, CSI age) requests and receive the strategy COPA's leader
// would pick, with the heavy EvaluateAll pass behind a fixed evaluator
// worker pool, request batching, a bounded LRU result cache with
// in-flight deduplication, and load-shedding admission control.
//
// The design follows DESIGN §8's one-workspace-per-goroutine rule: each
// worker owns one precoding.Workspace arena for its whole lifetime and
// hands it to every evaluator it constructs, so steady-state serving
// does not regrow arena chunks. Requests that arrive within the batch
// window are coalesced per worker and grouped by their evaluation world
// — two requests that differ only in selection mode (max vs fair) share
// a single EvaluateAll pass.
//
// Admission is a bounded queue: when it is full the request is shed
// immediately with ErrQueueFull (the HTTP front end maps this to 503),
// and requests whose deadline expires while queued are dropped without
// evaluation. Shutdown stops admission, drains queued work, and waits
// for the workers within a caller-supplied deadline.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Sentinel errors the admission path returns. They are distinct so a
// transport front end can map them to distinct statuses (503 for
// shedding, 504 for deadline expiry).
var (
	// ErrQueueFull is returned when the admission queue is at capacity:
	// the request was shed without being evaluated.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrServerClosed is returned for requests arriving during or after
	// shutdown.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrExpired is returned when a request's deadline passed while it
	// waited in the queue.
	ErrExpired = errors.New("serve: request deadline expired in queue")
)

// Config parameterizes a Server. The zero value of any field selects
// the default documented on it.
type Config struct {
	// Workers is the number of evaluator goroutines, each owning one
	// scratch arena (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with
	// ErrQueueFull (default 64).
	QueueDepth int
	// BatchWindow is how long a worker waits for additional requests to
	// coalesce into a batch after picking up the first (default 200µs;
	// negative disables waiting — only already-queued requests coalesce).
	BatchWindow time.Duration
	// MaxBatch caps how many requests one worker coalesces per batch
	// (default 16; 1 disables batching).
	MaxBatch int
	// CacheEntries bounds the LRU result cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// DefaultDeadline applies to requests whose context carries no
	// deadline (default 2s).
	DefaultDeadline time.Duration
	// DrainTimeout bounds Close's graceful drain (default 5s).
	DrainTimeout time.Duration
	// Coherence is the CSI coherence time used to bucket request CSI
	// ages (default strategy.DefaultCoherence).
	Coherence time.Duration
	// EvalHook, when non-nil, runs on the worker goroutine immediately
	// before each world evaluation. It is a test seam: admission-control
	// and deduplication tests use it to make selected evaluations
	// deterministically slow instead of depending on evaluator latency.
	// Production configs leave it nil.
	EvalHook func(Request)
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Workers:         runtime.GOMAXPROCS(0),
		QueueDepth:      64,
		BatchWindow:     200 * time.Microsecond,
		MaxBatch:        16,
		CacheEntries:    1024,
		DefaultDeadline: 2 * time.Second,
		DrainTimeout:    5 * time.Second,
		Coherence:       strategy.DefaultCoherence,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = d.BatchWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = d.CacheEntries
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = d.DefaultDeadline
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	if c.Coherence <= 0 {
		c.Coherence = d.Coherence
	}
	return c
}

// Request identifies one allocation computation. Every field is part of
// the result-cache key (CSIAge after bucketing), so two Requests that
// compare equal after bucketing share one evaluation.
type Request struct {
	// Scenario is the antenna configuration to evaluate.
	Scenario channel.Scenario
	// Seed deterministically draws the deployment and its CSI noise —
	// the same contract as copad: equal seeds mean equal worlds.
	Seed int64
	// Mode selects max-throughput or incentive-compatible selection.
	Mode strategy.Mode
	// Impairments model the radio hardware (zero value is NOT defaulted;
	// pass channel.DefaultImpairments() for the calibrated model).
	Impairments channel.Impairments
	// CSIAge is how old the requester's channel state is. Ages are
	// quantized into AgeBuckets buckets per coherence time, so nearby
	// ages share a cache entry; older buckets see proportionally more
	// staleness error. Ignored in session mode (Time supersedes it).
	CSIAge time.Duration
	// MultiDecoder evaluates with per-subcarrier rate selection.
	MultiDecoder bool
	// Session switches the request into long-running session mode: the
	// CSI age is derived from the controller time Time instead of the
	// static CSIAge flag. Each coherence interval is an epoch with its
	// own CSI measurement (and its own cache identity); within an epoch
	// the age since that measurement quantizes into the same AgeBuckets
	// grid the static path uses, via the shared channel.AgeBucket helper
	// internal/drift also keys its validity horizons on.
	Session bool
	// Time is the session's controller time (virtual time since the
	// session began). Only meaningful when Session is set.
	Time time.Duration
}

// Result is one served allocation decision. Results may be shared
// between callers via the cache; treat them as immutable.
type Result struct {
	// Selected is the strategy COPA's decision rule picks for the
	// request's mode.
	Selected strategy.Outcome
	// Outcomes holds every evaluated strategy, keyed by kind (shared
	// across modes of the same evaluation — do not mutate).
	Outcomes map[strategy.Kind]strategy.Outcome
	// AgeBucket is the CSI age bucket the request quantized into.
	AgeBucket int
	// Epoch is the session epoch (controller time / coherence) the
	// allocation belongs to; always 0 for static requests.
	Epoch int64
	// ValidUntil is the controller time at which this allocation's age
	// bucket — and therefore its cache identity — expires: the start of
	// the next shared bucket boundary. For a static request it is the
	// CSIAge at which the next bucket would begin.
	ValidUntil time.Duration
}

// AgeBuckets is the number of CSI-age quantization steps per coherence
// time. Ages at or beyond one coherence time all land in the last
// bucket.
const AgeBuckets = 4

// ageBucket quantizes a CSI age against the coherence time. The
// boundary arithmetic lives in channel.AgeBucket so internal/drift (which
// derives allocation validity horizons from the same boundaries) can
// never disagree with the cache key about where a bucket starts.
func ageBucket(age, coherence time.Duration) int {
	return channel.AgeBucket(age, coherence, AgeBuckets)
}

// agedImpairments scales the staleness error with the request's CSI age
// bucket: the calibrated StalenessDB corresponds to CSI used within one
// coherence time (bucket 0); older buckets see linearly more aging
// error power (channel.Impairments.Aged — the same map campaign sweeps).
func agedImpairments(imp channel.Impairments, bucket int) channel.Impairments {
	return imp.AgedForBucket(bucket, AgeBuckets)
}

// key is the full result-cache identity of a request: everything that
// changes the answer, with the session time already normalized into
// (epoch, ageBucket). It is a comparable value type so cache lookups
// allocate nothing.
type key struct {
	scenario  channel.Scenario
	seed      int64
	mode      strategy.Mode
	imp       channel.Impairments
	ageBucket int
	epoch     int64
	multi     bool
}

// evalKey is the evaluation identity: key minus the selection mode.
// Calls sharing an evalKey share one EvaluateAll pass.
type evalKey struct {
	scenario  channel.Scenario
	seed      int64
	imp       channel.Impairments
	ageBucket int
	epoch     int64
	multi     bool
}

func (k key) eval() evalKey {
	return evalKey{scenario: k.scenario, seed: k.seed, imp: k.imp, ageBucket: k.ageBucket, epoch: k.epoch, multi: k.multi}
}

// flight is one in-flight computation identical concurrent requests
// wait on instead of recomputing (singleflight). res/err are published
// before done is closed.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// call is one admitted request on its way through the queue.
type call struct {
	key      key
	req      Request
	f        *flight
	deadline time.Time
	enqueued time.Time
	// ctx carries the request's trace identity (never its cancellation —
	// abandoned flights still complete). stage is the currently-open
	// pipeline-stage span: serve.queue while queued, serve.batch during
	// batch assembly, serve.evaluate during evaluation. It is nil for
	// untraced requests; every transition is nil-safe.
	ctx   context.Context
	stage *obs.ActiveSpan
}

// Server is the allocation service. Create with New; it is safe for
// concurrent use.
type Server struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	cache    *lruCache
	inflight map[key]*flight

	queue      chan *call
	admitWG    sync.WaitGroup // in-progress queue sends, so close(queue) is safe
	workerWG   sync.WaitGroup
	closeQueue sync.Once
}

// New starts a Server with cfg's worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newLRUCache(cfg.CacheEntries),
		inflight: make(map[key]*flight),
		queue:    make(chan *call, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	mWorkers.Set(float64(cfg.Workers))
	return s
}

// keyFor normalizes a request into its cache key. This is the only
// place the (epoch, bucket) pair is computed — runGroup and
// evaluateWorld read it back from the key, so one request can never see
// two different bucketings of the same age (the pre-session bug was
// exactly that: each stage re-derived the bucket from the raw age, and a
// session time past one coherence would collapse every later epoch into
// the final clamped bucket).
func (s *Server) keyFor(req Request) key {
	epoch, bucket := sessionEpoch(req, s.cfg.Coherence)
	return key{
		scenario:  req.Scenario,
		seed:      req.Seed,
		mode:      req.Mode,
		imp:       req.Impairments,
		ageBucket: bucket,
		epoch:     epoch,
		multi:     req.MultiDecoder,
	}
}

// sessionEpoch resolves a request's (epoch, age bucket) pair. A static
// request is epoch 0 with its CSIAge bucketed directly. A session
// request treats each coherence interval as an epoch with a fresh CSI
// measurement at its start: the age that buckets is the time elapsed
// since that epoch's measurement, so the bucket is always in [0,
// AgeBuckets) and an epoch can never straddle a bucket boundary.
func sessionEpoch(req Request, coherence time.Duration) (int64, int) {
	if !req.Session {
		return 0, ageBucket(req.CSIAge, coherence)
	}
	t := req.Time
	if t < 0 {
		t = 0
	}
	if coherence <= 0 {
		return 0, 0
	}
	epoch := int64(t / coherence)
	return epoch, ageBucket(t-time.Duration(epoch)*coherence, coherence)
}

// validUntil is the controller time at which a session allocation's age
// bucket expires: the next shared bucket boundary after Time (epoch
// start + channel.BucketStart of the following bucket).
func validUntil(epoch int64, bucket int, coherence time.Duration) time.Duration {
	return time.Duration(epoch)*coherence + channel.BucketStart(bucket+1, coherence, AgeBuckets)
}

// ShardKey renders req's full result-cache identity — every field of
// the internal cache key, with the session time already normalized
// into (epoch, ageBucket) exactly as keyFor does — as a deterministic
// string. It is the contract between this cache and a consistent-hash
// front tier: two requests that would share a cache entry here produce
// equal shard keys, so a router hashing ShardKey routes them to the
// same backend and the fleet's caches shard instead of duplicating.
// A non-positive coherence uses the default the server itself defaults
// to, keeping router and backend bucketing aligned.
func ShardKey(req Request, coherence time.Duration) string {
	if coherence <= 0 {
		coherence = strategy.DefaultCoherence
	}
	epoch, bucket := sessionEpoch(req, coherence)
	return fmt.Sprintf("%s|%d|%d|%d|%v|%d|%d|%t",
		req.Scenario.Name, req.Scenario.APAntennas*100+req.Scenario.ClientAntennas*10+req.Scenario.Streams,
		req.Seed, req.Mode, req.Impairments, bucket, epoch, req.MultiDecoder)
}

// Allocate serves one request: result cache first, then in-flight
// deduplication, then the admission queue and the evaluator pool. The
// returned bool reports whether the result was served without a
// dedicated evaluation (cache hit or piggybacked on an identical
// in-flight request). Cache hits are allocation-free.
//
// When ctx carries a sampled trace (obs.StartSpan at the transport
// edge), the request records a serve.allocate span with one child per
// pipeline stage — serve.cache, serve.admission, serve.queue,
// serve.batch, serve.evaluate — so a slow allocate decomposes into the
// stage that cost it. Untraced contexts skip all span work, preserving
// the allocation-free cache-hit contract.
func (s *Server) Allocate(ctx context.Context, req Request) (res *Result, shared bool, err error) {
	mRequests.Inc()
	defer mRequestSeconds.Begin().End()
	if sp := obs.ChildSpan(ctx, "serve.allocate"); sp != nil {
		ctx = obs.ContextWithSpan(ctx, sp.Context())
		defer func() { sp.EndErr(err) }()
	}
	k := s.keyFor(req)

	// Stage: cache — the lock-held lookup against the result cache and
	// the in-flight table.
	cSpan := obs.ChildSpan(ctx, "serve.cache")
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cSpan.EndErr(ErrServerClosed)
		mShedClosed.Inc()
		return nil, false, ErrServerClosed
	}
	if res, ok := s.cache.get(k); ok {
		s.mu.Unlock()
		cSpan.SetAttr("cache", "hit")
		cSpan.End()
		mCacheHits.Inc()
		return res, true, nil
	}
	if f, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		cSpan.SetAttr("cache", "inflight")
		cSpan.End()
		mInflightDedup.Inc()
		res, err := awaitFlight(ctx, f)
		return res, true, err
	}
	cSpan.SetAttr("cache", "miss")
	cSpan.End()
	mCacheMisses.Inc()

	// Stage: admission — registering the flight and entering the queue.
	aSpan := obs.ChildSpan(ctx, "serve.admission")
	f := &flight{done: make(chan struct{})}
	s.inflight[k] = f
	s.admitWG.Add(1)
	s.mu.Unlock()

	now := time.Now()
	deadline := now.Add(s.cfg.DefaultDeadline)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	c := &call{key: k, req: req, f: f, deadline: deadline, enqueued: now, ctx: ctx}
	c.stage = obs.ChildSpan(ctx, "serve.queue")
	select {
	case s.queue <- c:
		s.admitWG.Done()
		aSpan.End()
		mQueueDepth.Set(float64(len(s.queue)))
	default:
		s.admitWG.Done()
		c.stage.EndErr(ErrQueueFull)
		aSpan.EndErr(ErrQueueFull)
		mShedQueueFull.Inc()
		s.finish(c, nil, ErrQueueFull)
		return nil, false, ErrQueueFull
	}
	res, err = awaitFlight(ctx, f)
	return res, false, err
}

// awaitFlight blocks until the flight resolves or the caller's context
// ends. An abandoned flight still completes and populates the cache.
func awaitFlight(ctx context.Context, f *flight) (*Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// finish resolves a call's flight: deregisters it, caches successful
// results, and wakes every waiter.
func (s *Server) finish(c *call, res *Result, err error) {
	s.mu.Lock()
	delete(s.inflight, c.key)
	if err == nil && res != nil {
		s.cache.put(c.key, res)
	}
	s.mu.Unlock()
	c.f.res, c.f.err = res, err
	close(c.f.done)
}

// worker is one evaluator goroutine. It owns one workspace arena for
// its lifetime (DESIGN §8: a workspace is single-goroutine) and reuses
// it across every evaluation it runs.
func (s *Server) worker() {
	defer s.workerWG.Done()
	ws := &precoding.Workspace{}
	var batch []*call
	for c := range s.queue {
		s.pickup(c)
		batch = append(batch[:0], c)
		if s.cfg.MaxBatch > 1 {
			batch = s.coalesce(batch)
		}
		mQueueDepth.Set(float64(len(s.queue)))
		s.runBatch(ws, batch)
	}
}

// pickup marks a call's transition out of the queue into a batch under
// assembly: the queue-wait stage ends (timed into mQueueSeconds), the
// batch-assembly stage begins.
func (s *Server) pickup(c *call) {
	mQueueSeconds.Observe(time.Since(c.enqueued))
	c.stage.End()
	c.stage = obs.ChildSpan(c.ctx, "serve.batch")
}

// coalesce grows a batch with requests that are already queued or
// arrive within the batch window, up to MaxBatch.
func (s *Server) coalesce(batch []*call) []*call {
	if s.cfg.BatchWindow <= 0 {
		for len(batch) < s.cfg.MaxBatch {
			select {
			case c, ok := <-s.queue:
				if !ok {
					return batch
				}
				s.pickup(c)
				batch = append(batch, c)
			default:
				return batch
			}
		}
		return batch
	}
	t := time.NewTimer(s.cfg.BatchWindow)
	defer t.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case c, ok := <-s.queue:
			if !ok {
				return batch
			}
			s.pickup(c)
			batch = append(batch, c)
		case <-t.C:
			return batch
		}
	}
	return batch
}

// runBatch partitions a batch into evaluation groups (same world,
// possibly different modes) and runs each group through one evaluator.
func (s *Server) runBatch(ws *precoding.Workspace, batch []*call) {
	mBatches.Inc()
	mBatchSize.ObserveInt(len(batch))
	var group []*call
	for i, c := range batch {
		if c == nil {
			continue
		}
		group = append(group[:0], c)
		ek := c.key.eval()
		for j := i + 1; j < len(batch); j++ {
			if batch[j] != nil && batch[j].key.eval() == ek {
				group = append(group, batch[j])
				batch[j] = nil
			}
		}
		if len(group) > 1 {
			mBatchShared.Add(uint64(len(group) - 1))
		}
		s.runGroup(ws, group)
	}
}

// runGroup evaluates one world once and answers every live call in the
// group from it. Calls whose deadline has already passed are shed
// without evaluation.
func (s *Server) runGroup(ws *precoding.Workspace, group []*call) {
	now := time.Now()
	live := group[:0]
	for _, c := range group {
		c.stage.End() // batch assembly is over for every group member
		if now.After(c.deadline) {
			c.stage = nil
			mShedExpired.Inc()
			s.finish(c, nil, ErrExpired)
			continue
		}
		c.stage = obs.ChildSpan(c.ctx, "serve.evaluate")
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}

	if s.cfg.EvalHook != nil {
		s.cfg.EvalHook(live[0].req)
	}
	sample := mEvaluateSeconds.Begin()
	ws.Reset()
	// The (epoch, bucket) pair comes off the cache key — the single
	// computation in keyFor — never re-derived from the raw age here.
	bucket, epoch := live[0].key.ageBucket, live[0].key.epoch
	outs, err := evaluateWorld(ws, live[0].req, bucket, epoch)
	sample.End()
	for _, c := range live {
		c.stage.EndErr(err)
		c.stage = nil
	}
	if err != nil {
		mEvaluateErrors.Inc()
		for _, c := range live {
			s.finish(c, nil, err)
		}
		return
	}
	// ValidUntil is derived from the key alone (not from whether the
	// computing request was a session), so a cache entry shared between
	// a session request at time t and a static request with the same
	// (epoch, bucket) identity is byte-identical either way.
	res := Result{AgeBucket: bucket, Epoch: epoch, ValidUntil: validUntil(epoch, bucket, s.cfg.Coherence)}
	for _, c := range live {
		r := res
		r.Selected = strategy.Select(c.req.Mode, outs)
		r.Outcomes = outs
		s.finish(c, &r, nil)
	}
}

// evaluateWorld rebuilds the request's deterministic world — the same
// seed-to-deployment contract cmd/copad uses — and runs every strategy
// on it, carving all scratch from the worker's arena. The CSI-noise
// stream is salted with the session epoch: each epoch models a fresh
// measurement of the same deployment, and epoch 0 draws the exact
// stream the static path always has.
func evaluateWorld(ws *precoding.Workspace, req Request, bucket int, epoch int64) (map[strategy.Kind]strategy.Outcome, error) {
	imp := agedImpairments(req.Impairments, bucket)
	src := rng.New(req.Seed)
	dep := channel.NewDeployment(src.Split(1), req.Scenario)
	ev := strategy.NewEvaluator(dep, imp, src.Split(2+uint64(epoch)))
	ev.MultiDecoder = req.MultiDecoder
	ev.UseWorkspace(ws)
	return ev.EvaluateAll()
}

// Stats is a point-in-time operational reading for health endpoints.
// Cache carries the full per-shard cache reading (hits, misses,
// evictions, entries) a fronting router uses to observe shard balance;
// CacheEntries/CacheCap remain as flat duplicates for older probes.
type Stats struct {
	Workers      int        `json:"workers"`
	QueueDepth   int        `json:"queue_depth"`
	QueueCap     int        `json:"queue_cap"`
	CacheEntries int        `json:"cache_entries"`
	CacheCap     int        `json:"cache_cap"`
	Cache        CacheStats `json:"cache"`
	Draining     bool       `json:"draining"`
}

// Stats reports the server's current operational state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:      s.cfg.Workers,
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		CacheEntries: s.cache.len(),
		CacheCap:     s.cache.max,
		Cache:        s.cache.stats(),
		Draining:     s.closed,
	}
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Shutdown stops admission (new requests fail with ErrServerClosed),
// lets the workers drain every queued request, and waits for them to
// exit. It returns ctx's error if the drain outlives the context;
// queued work keeps draining in the background regardless.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		// All in-progress queue sends started before closed was set;
		// once they finish the channel can be closed safely and the
		// workers drain it to empty.
		s.admitWG.Wait()
		s.closeQueue.Do(func() { close(s.queue) })
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts down with the configured drain timeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}
