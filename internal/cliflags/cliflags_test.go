package cliflags

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/strategy"
)

func TestParseScenario(t *testing.T) {
	for name, want := range map[string]channel.Scenario{
		"1x1": channel.Scenario1x1,
		"4x2": channel.Scenario4x2,
		"3x2": channel.Scenario3x2,
	} {
		got, err := ParseScenario(name)
		if err != nil || got != want {
			t.Errorf("ParseScenario(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScenario("5x5"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("max"); err != nil || m != strategy.ModeMax {
		t.Errorf("max: %v, %v", m, err)
	}
	if m, err := ParseMode("fair"); err != nil || m != strategy.ModeFair {
		t.Errorf("fair: %v, %v", m, err)
	}
	if _, err := ParseMode("greedy"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestParseImpairments(t *testing.T) {
	if imp, err := ParseImpairments(""); err != nil || imp != channel.DefaultImpairments() {
		t.Errorf("empty: %v, %v", imp, err)
	}
	if imp, err := ParseImpairments("perfect"); err != nil || imp != channel.PerfectHardware() {
		t.Errorf("perfect: %v, %v", imp, err)
	}
	if _, err := ParseImpairments("lab"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	sc := Scenario(fs, "4x2", "scenario")
	mode := Mode(fs, "max", "mode")
	seed := Seed(fs, 1)
	if err := fs.Parse([]string{"-scenario", "1x1", "-mode", "fair", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	if *sc != channel.Scenario1x1 || *mode != strategy.ModeFair || *seed != 7 {
		t.Fatalf("parsed %v %v %d", *sc, *mode, *seed)
	}

	// Defaults survive when flags are absent, and usage shows the name.
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	sc2 := Scenario(fs2, "3x2", "scenario")
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *sc2 != channel.Scenario3x2 {
		t.Fatalf("default scenario = %v", *sc2)
	}
	if got := fs2.Lookup("scenario").DefValue; got != "3x2" {
		t.Fatalf("DefValue = %q", got)
	}

	// Bad values are rejected at parse time.
	fs3 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs3.SetOutput(discard{})
	Scenario(fs3, "4x2", "scenario")
	if err := fs3.Parse([]string{"-scenario", "9x9"}); err == nil {
		t.Fatal("bad scenario passed flag parsing")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestCampaignFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cf := Campaign(fs)
	if err := fs.Parse([]string{"-shards", "16", "-workers", "3", "-checkpoint", "c.jsonl", "-resume"}); err != nil {
		t.Fatal(err)
	}
	if cf.Shards != 16 || cf.Workers != 3 || cf.Checkpoint != "c.jsonl" || !cf.Resume {
		t.Fatalf("parsed %+v", cf)
	}

	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	cf2 := Campaign(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cf2.Shards != 0 || cf2.Workers < 1 || cf2.Checkpoint != "" || cf2.Resume {
		t.Fatalf("defaults %+v", cf2)
	}
}

func TestCampaignValidate(t *testing.T) {
	cases := []struct {
		name       string
		flags      CampaignFlags
		topologies int
		wantErr    bool
	}{
		{"defaults", CampaignFlags{Workers: 4}, 30, false},
		{"explicit shards", CampaignFlags{Shards: 8, Workers: 1}, 30, false},
		{"resume with checkpoint", CampaignFlags{Workers: 1, Checkpoint: "c", Resume: true}, 30, false},
		{"zero topologies", CampaignFlags{Workers: 4}, 0, true},
		{"negative topologies", CampaignFlags{Workers: 4}, -1, true},
		{"zero workers", CampaignFlags{Workers: 0}, 30, true},
		{"negative workers", CampaignFlags{Workers: -2}, 30, true},
		{"negative shards", CampaignFlags{Shards: -1, Workers: 4}, 30, true},
		{"shards exceed topologies", CampaignFlags{Shards: 31, Workers: 4}, 30, true},
		{"resume without checkpoint", CampaignFlags{Workers: 4, Resume: true}, 30, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.flags.Validate(tc.topologies)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%d) = %v, wantErr=%v", tc.topologies, err, tc.wantErr)
			}
		})
	}
}

func TestDebugFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	d := Debug(fs)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if err := fs.Parse([]string{"-v", "-trace-out", tracePath, "-trace-sample", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if !d.Verbose || d.TraceOut != tracePath || d.TraceSample != 0.5 {
		t.Fatalf("parsed %+v", d)
	}

	shutdown, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.TraceSampling(); got != 0.5 {
		t.Errorf("trace sampling = %v after Start, want 0.5", got)
	}
	obs.SetTraceSampling(1)
	defer obs.SetVerbose(false)
	obs.Trace("cliflags.test.span").End()
	shutdown()

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("-trace-out produced no file: %v", err)
	}
	var spans []obs.SpanRecord
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("trace dump is not a JSON span array: %v", err)
	}
	found := false
	for _, s := range spans {
		found = found || s.Name == "cliflags.test.span"
	}
	if !found {
		t.Error("recorded span missing from -trace-out dump")
	}
}

func TestEffectiveShards(t *testing.T) {
	cases := []struct {
		shards, topologies, want int
	}{
		{8, 30, 8},       // explicit wins
		{0, 1, 1},        // tiny runs stay one shard
		{0, 3, 1},        // never zero
		{0, 30, 7},       // ~4 topologies per shard
		{0, 100, 25},     //
		{0, 100000, 256}, // clamped so the journal stays small
	}
	for _, tc := range cases {
		cf := CampaignFlags{Shards: tc.shards}
		if got := cf.EffectiveShards(tc.topologies); got != tc.want {
			t.Errorf("EffectiveShards(shards=%d, topologies=%d) = %d, want %d", tc.shards, tc.topologies, got, tc.want)
		}
	}
}

func TestFleetFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cf := Campaign(fs)
	ff := Fleet(fs)
	if err := fs.Parse([]string{"-serve-coordinator", ":9400", "-lease-ttl", "5s", "-addr-file", "a.url"}); err != nil {
		t.Fatal(err)
	}
	if ff.Coordinator != ":9400" || ff.LeaseTTL != 5*time.Second || ff.AddrFile != "a.url" {
		t.Fatalf("parsed %+v", ff)
	}
	if err := ff.Validate(cf); err != nil {
		t.Fatalf("valid coordinator flags rejected: %v", err)
	}
}

func TestFleetValidate(t *testing.T) {
	cases := []struct {
		name string
		ff   FleetFlags
		cf   CampaignFlags
		want string
	}{
		{"both roles", FleetFlags{Coordinator: ":0", Join: "http://x", LeaseTTL: time.Second}, CampaignFlags{Workers: 1}, "mutually exclusive"},
		{"worker checkpoint", FleetFlags{Join: "http://x", LeaseTTL: time.Second}, CampaignFlags{Workers: 1, Checkpoint: "c"}, "belong to the coordinator"},
		{"worker no evaluators", FleetFlags{Join: "http://x", LeaseTTL: time.Second}, CampaignFlags{}, "-workers"},
		{"addr-file alone", FleetFlags{AddrFile: "a", LeaseTTL: time.Second}, CampaignFlags{Workers: 1}, "-serve-coordinator"},
		{"zero ttl", FleetFlags{Coordinator: ":0"}, CampaignFlags{Workers: 1}, "lease-ttl"},
		{"plain run ok", FleetFlags{LeaseTTL: time.Second}, CampaignFlags{Workers: 1}, ""},
	}
	for _, tc := range cases {
		err := tc.ff.Validate(&tc.cf)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
