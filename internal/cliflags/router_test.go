package cliflags

import (
	"flag"
	"reflect"
	"testing"
	"time"
)

func parseRouter(t *testing.T, args ...string) (*RouterFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	r := Router(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return r, r.Validate()
}

func TestRouterFlagsParse(t *testing.T) {
	r, err := parseRouter(t,
		"-backends", "http://a:1,http://b:2/", "-backends", "http://c:3",
		"-hedge-budget", "25ms", "-priority-header", "X-Class")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if !reflect.DeepEqual(r.Backends, want) {
		t.Errorf("backends = %v, want %v (comma-split, repeat-accumulated, slash-trimmed)", r.Backends, want)
	}
	if r.HedgeBudget != 25*time.Millisecond {
		t.Errorf("hedge budget = %v", r.HedgeBudget)
	}
	if r.PriorityHeader != "X-Class" {
		t.Errorf("priority header = %q", r.PriorityHeader)
	}
}

func TestRouterFlagsValidate(t *testing.T) {
	for name, args := range map[string][]string{
		"no backends":     {},
		"relative url":    {"-backends", "localhost:7800"},
		"bad scheme":      {"-backends", "ftp://a:1"},
		"duplicate":       {"-backends", "http://a:1,http://a:1"},
		"negative budget": {"-backends", "http://a:1", "-hedge-budget", "-1ms"},
		"blank header":    {"-backends", "http://a:1", "-priority-header", " "},
	} {
		if _, err := parseRouter(t, args...); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	if _, err := parseRouter(t, "-backends", "https://pool.example:443"); err != nil {
		t.Errorf("https backend rejected: %v", err)
	}
}
