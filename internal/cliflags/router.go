package cliflags

import (
	"flag"
	"fmt"
	"net/url"
	"strings"
	"time"
)

// RouterFlags is the front-tier flag set coparouter and copaload
// share: the backend/target list, the hedge budget, and the priority
// header name. One bundle keeps the two commands' vocabularies
// identical, so a smoke script can move a flag between them without
// translation.
type RouterFlags struct {
	// Backends are base URLs: the copaserve pool for coparouter, the
	// POST targets for copaload. Accumulated across repeats of
	// -backends and split on commas; trailing slashes are trimmed.
	Backends []string
	// HedgeBudget fixes the hedge trigger latency (0 = adapt to the
	// observed backend p99). copaload accepts it for flag parity but
	// only coparouter acts on it.
	HedgeBudget time.Duration
	// PriorityHeader names the request header carrying the priority
	// class ("interactive" sheds last, anything else sheds first).
	PriorityHeader string
}

// backendListValue accumulates comma-separated base URLs.
type backendListValue struct{ dst *[]string }

func (v *backendListValue) String() string {
	if v.dst == nil {
		return ""
	}
	return strings.Join(*v.dst, ",")
}

func (v *backendListValue) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		*v.dst = append(*v.dst, strings.TrimRight(part, "/"))
	}
	return nil
}

// Router registers -backends, -hedge-budget and -priority-header.
func Router(fs *flag.FlagSet) *RouterFlags {
	r := &RouterFlags{PriorityHeader: "X-Copa-Priority"}
	fs.Var(&backendListValue{dst: &r.Backends}, "backends",
		"comma-separated copaserve base URLs (repeatable), e.g. http://127.0.0.1:7800,http://127.0.0.1:7801")
	fs.DurationVar(&r.HedgeBudget, "hedge-budget", 0,
		"duplicate a request to the next backend after this long without an answer (0 = adapt to observed p99)")
	fs.StringVar(&r.PriorityHeader, "priority-header", r.PriorityHeader,
		"request header naming the priority class (interactive sheds last, batch first)")
	return r
}

// Validate rejects unusable router flag values: every backend must be
// an absolute http(s) URL, and the header/budget must be usable.
func (r *RouterFlags) Validate() error {
	if len(r.Backends) == 0 {
		return fmt.Errorf("-backends requires at least one base URL")
	}
	seen := map[string]bool{}
	for _, b := range r.Backends {
		u, err := url.Parse(b)
		if err != nil {
			return fmt.Errorf("-backends %q: %v", b, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("-backends %q: want an absolute http(s) base URL", b)
		}
		if seen[b] {
			return fmt.Errorf("-backends lists %q twice", b)
		}
		seen[b] = true
	}
	if r.HedgeBudget < 0 {
		return fmt.Errorf("-hedge-budget must be ≥ 0 (got %v)", r.HedgeBudget)
	}
	if strings.TrimSpace(r.PriorityHeader) == "" {
		return fmt.Errorf("-priority-header must not be empty")
	}
	return nil
}
