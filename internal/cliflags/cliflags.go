// Package cliflags holds the flag parsing every copa command shares:
// scenario/mode/impairments name mapping, the conventional -seed flag,
// and the -v/-debug-addr operational pair. The name→value mappings are
// exported as plain parse functions too, because copaserve accepts the
// same names over HTTP/JSON.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/strategy"
)

// ParseScenario maps a scenario name ("1x1", "4x2", "3x2") to its
// antenna configuration.
func ParseScenario(name string) (channel.Scenario, error) {
	switch name {
	case "1x1":
		return channel.Scenario1x1, nil
	case "4x2":
		return channel.Scenario4x2, nil
	case "3x2":
		return channel.Scenario3x2, nil
	}
	return channel.Scenario{}, fmt.Errorf("unknown scenario %q (want 1x1, 4x2, 3x2)", name)
}

// ParseMode maps a selection-mode name ("max", "fair") to its constant.
func ParseMode(name string) (strategy.Mode, error) {
	switch name {
	case "max":
		return strategy.ModeMax, nil
	case "fair":
		return strategy.ModeFair, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want max or fair)", name)
}

// ParseImpairments maps an impairment-profile name to its calibration;
// the empty string means "default".
func ParseImpairments(name string) (channel.Impairments, error) {
	switch name {
	case "", "default":
		return channel.DefaultImpairments(), nil
	case "perfect":
		return channel.PerfectHardware(), nil
	}
	return channel.Impairments{}, fmt.Errorf("unknown impairments %q (want default or perfect)", name)
}

// namedValue adapts a ParseX function to flag.Value so bad names fail
// at flag-parse time with the parser's error message.
type namedValue struct {
	name  string
	apply func(string) error
}

func (v *namedValue) String() string { return v.name }

func (v *namedValue) Set(s string) error {
	if err := v.apply(s); err != nil {
		return err
	}
	v.name = s
	return nil
}

// Scenario registers -scenario with the given default name and returns
// the parsed destination. A bad default is a programming error.
func Scenario(fs *flag.FlagSet, def, usage string) *channel.Scenario {
	sc, err := ParseScenario(def)
	if err != nil {
		panic(err)
	}
	dst := &sc
	fs.Var(&namedValue{name: def, apply: func(s string) error {
		parsed, err := ParseScenario(s)
		if err != nil {
			return err
		}
		*dst = parsed
		return nil
	}}, "scenario", usage)
	return dst
}

// Mode registers -mode ("max" or "fair") and returns the destination.
func Mode(fs *flag.FlagSet, def, usage string) *strategy.Mode {
	m, err := ParseMode(def)
	if err != nil {
		panic(err)
	}
	dst := &m
	fs.Var(&namedValue{name: def, apply: func(s string) error {
		parsed, err := ParseMode(s)
		if err != nil {
			return err
		}
		*dst = parsed
		return nil
	}}, "mode", usage)
	return dst
}

// Seed registers the conventional -seed flag.
func Seed(fs *flag.FlagSet, def int64) *int64 {
	return fs.Int64("seed", def, "master seed (same seed → same world)")
}

// CampaignFlags is the sharding/checkpointing flag set campaign-scale
// commands share.
type CampaignFlags struct {
	// Shards is the number of work units per grid cell (0 picks a
	// schedulable default from the topology count).
	Shards int
	// Workers is the evaluator pool size (defaults to GOMAXPROCS).
	Workers int
	// Checkpoint is the JSONL journal path ("" disables).
	Checkpoint string
	// Resume continues an existing checkpoint instead of failing on it.
	Resume bool
}

// Campaign registers -shards, -workers, -checkpoint and -resume on fs.
func Campaign(fs *flag.FlagSet) *CampaignFlags {
	c := &CampaignFlags{}
	fs.IntVar(&c.Shards, "shards", 0, "work units per grid cell (0 = auto from topology count)")
	fs.IntVar(&c.Workers, "workers", runtime.GOMAXPROCS(0), "evaluator goroutines")
	fs.StringVar(&c.Checkpoint, "checkpoint", "", "JSONL checkpoint journal path (enables kill/resume)")
	fs.BoolVar(&c.Resume, "resume", false, "resume the -checkpoint journal instead of failing if it exists")
	return c
}

// Validate rejects flag combinations the engine cannot honor, against
// the campaign's topology count.
func (c *CampaignFlags) Validate(topologies int) error {
	if topologies < 1 {
		return fmt.Errorf("-topologies must be ≥ 1 (got %d)", topologies)
	}
	if c.Workers < 1 {
		return fmt.Errorf("-workers must be ≥ 1 (got %d)", c.Workers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("-shards must be ≥ 1, or 0 for auto (got %d)", c.Shards)
	}
	if c.Shards > topologies {
		return fmt.Errorf("-shards (%d) must not exceed -topologies (%d)", c.Shards, topologies)
	}
	if c.Resume && c.Checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	return nil
}

// EffectiveShards resolves the shard count: an explicit value wins;
// auto targets ~4 topologies per shard, clamped to [1, 256] and the
// topology count, so checkpoints stay fine-grained without the journal
// dominating tiny runs.
func (c *CampaignFlags) EffectiveShards(topologies int) int {
	if c.Shards > 0 {
		return c.Shards
	}
	s := topologies / 4
	if s < 1 {
		s = 1
	}
	if s > 256 {
		s = 256
	}
	return s
}

// FleetFlags is the distributed-campaign flag set: a command can serve
// a campaign as a fleet coordinator, or join one as a headless worker.
type FleetFlags struct {
	// Coordinator is the -serve-coordinator listen address ("" = run
	// the campaign in-process as usual).
	Coordinator string
	// Join is the coordinator base URL to join as a worker ("" = not a
	// worker).
	Join string
	// LeaseTTL is how long the coordinator waits for a heartbeat before
	// reclaiming a leased unit.
	LeaseTTL time.Duration
	// AddrFile, when set, receives the coordinator's bound base URL —
	// the scripted-handoff hook for tests and wrappers using ":0".
	AddrFile string
}

// Fleet registers -serve-coordinator, -join, -lease-ttl and -addr-file.
func Fleet(fs *flag.FlagSet) *FleetFlags {
	f := &FleetFlags{}
	fs.StringVar(&f.Coordinator, "serve-coordinator", "", "serve this campaign to fleet workers on the given address (\":0\" picks a port)")
	fs.StringVar(&f.Join, "join", "", "join the fleet coordinator at this base URL as a worker (the coordinator's spec wins; local spec flags are ignored)")
	fs.DurationVar(&f.LeaseTTL, "lease-ttl", 10*time.Second, "coordinator: reclaim a leased unit this long after its last heartbeat")
	fs.StringVar(&f.AddrFile, "addr-file", "", "coordinator: write the bound base URL to this file once listening")
	return f
}

// Validate rejects fleet flag combinations against the campaign flags:
// the two roles are exclusive, checkpoints belong to the coordinator,
// and a worker needs at least one evaluator.
func (f *FleetFlags) Validate(c *CampaignFlags) error {
	if f.Coordinator != "" && f.Join != "" {
		return fmt.Errorf("-serve-coordinator and -join are mutually exclusive")
	}
	if f.Join != "" && (c.Checkpoint != "" || c.Resume) {
		return fmt.Errorf("-checkpoint/-resume belong to the coordinator, not a -join worker")
	}
	if f.Join != "" && c.Workers < 1 {
		return fmt.Errorf("-join needs -workers ≥ 1 (got %d)", c.Workers)
	}
	if f.AddrFile != "" && f.Coordinator == "" {
		return fmt.Errorf("-addr-file requires -serve-coordinator")
	}
	if f.LeaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive (got %v)", f.LeaseTTL)
	}
	return nil
}

// DebugFlags is the operational flag set every copa command shares:
// -v / -debug-addr plus the tracing pair -trace-out / -trace-sample.
type DebugFlags struct {
	Verbose bool
	Addr    string
	// TraceOut is a path to dump all retained spans as JSON at
	// shutdown ("" disables, "-" writes to stderr).
	TraceOut string
	// TraceSample is the fraction of new root traces that get sampled
	// into hierarchical spans (existing remote decisions always win).
	TraceSample float64
}

// Debug registers -v, -debug-addr, -trace-out and -trace-sample on fs.
func Debug(fs *flag.FlagSet) *DebugFlags {
	d := &DebugFlags{}
	fs.BoolVar(&d.Verbose, "v", false, "debug logging")
	fs.StringVar(&d.Addr, "debug-addr", "", "serve expvar + pprof + /metrics on this address (\":0\" picks a port)")
	fs.StringVar(&d.TraceOut, "trace-out", "", "dump recorded spans as JSON to this file at exit ('-' for stderr)")
	fs.Float64Var(&d.TraceSample, "trace-sample", 1, "fraction of new traces to sample [0,1]")
	return d
}

// Start applies the verbosity and trace-sampling settings, starts the
// runtime metrics collector, and, when -debug-addr was given, starts
// the obs debug server, announcing the bound address on stderr. The
// returned shutdown function is never nil; it stops what Start
// started and honors -trace-out by dumping the span ring as JSON.
func (d *DebugFlags) Start() (shutdown func(), err error) {
	obs.SetVerbose(d.Verbose)
	obs.SetTraceSampling(d.TraceSample)
	stopRuntime := obs.StartRuntimeCollector(0)
	stopServer := func() {}
	if d.Addr != "" {
		bound, stop, err := obs.ServeDebug(d.Addr)
		if err != nil {
			stopRuntime()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", bound)
		stopServer = stop
	}
	return func() {
		stopServer()
		stopRuntime()
		if err := d.dumpTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "trace dump failed: %v\n", err)
		}
	}, nil
}

// dumpTrace writes the retained span ring to -trace-out.
func (d *DebugFlags) dumpTrace() error {
	if d.TraceOut == "" {
		return nil
	}
	if d.TraceOut == "-" {
		return obs.Tracing().WriteJSON(os.Stderr)
	}
	f, err := os.Create(d.TraceOut)
	if err != nil {
		return err
	}
	if err := obs.Tracing().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MobilityFlags is the time-evolving-channel flag group shared by
// copasim's mobility figure and copacampaign's mobility mode.
type MobilityFlags struct {
	// SpeedMps is the client speed; < 0 means "sweep the default grid"
	// for tools that support a sweep axis.
	SpeedMps float64
	// Duration is the simulated time per cell.
	Duration time.Duration
	// Step is the drift controller's tick.
	Step time.Duration
	// ThresholdDB is the drift detector's excursion threshold.
	ThresholdDB float64
	// ReassocPerSec / ChurnPerSec drive the event timeline.
	ReassocPerSec float64
	ChurnPerSec   float64
}

// Mobility registers -speed, -duration, -drift-step, -drift-threshold,
// -reassoc-rate and -churn-rate on fs.
func Mobility(fs *flag.FlagSet) *MobilityFlags {
	m := &MobilityFlags{}
	fs.Float64Var(&m.SpeedMps, "speed", -1, "client speed in m/s (-1 sweeps the default 0…vehicular grid)")
	fs.DurationVar(&m.Duration, "duration", 300*time.Millisecond, "simulated time per mobility cell")
	fs.DurationVar(&m.Step, "drift-step", 5*time.Millisecond, "drift controller tick")
	fs.Float64Var(&m.ThresholdDB, "drift-threshold", 1.0, "drift detector excursion threshold (dB)")
	fs.Float64Var(&m.ReassocPerSec, "reassoc-rate", 0, "client re-association events per second per client")
	fs.Float64Var(&m.ChurnPerSec, "churn-rate", 0, "AP churn events per second per AP")
	return m
}

// Validate rejects unusable mobility settings.
func (m *MobilityFlags) Validate() error {
	if m.Duration <= 0 {
		return fmt.Errorf("-duration must be > 0 (got %v)", m.Duration)
	}
	if m.Step <= 0 || m.Step > m.Duration {
		return fmt.Errorf("-drift-step must be in (0, -duration] (got %v)", m.Step)
	}
	if m.ThresholdDB <= 0 {
		return fmt.Errorf("-drift-threshold must be > 0 dB (got %g)", m.ThresholdDB)
	}
	if m.ReassocPerSec < 0 || m.ChurnPerSec < 0 {
		return fmt.Errorf("event rates must be ≥ 0")
	}
	return nil
}

// Speeds returns the sweep axis: the single configured speed, or the
// default grid when unset.
func (m *MobilityFlags) Speeds(defaults []float64) []float64 {
	if m.SpeedMps >= 0 {
		return []float64{m.SpeedMps}
	}
	return defaults
}
