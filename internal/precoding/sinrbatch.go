package precoding

import (
	"copa/internal/channel"
)

// StreamSINRsBatchWS is StreamSINRsWS with the per-(subcarrier, stream)
// MMSE solves gathered into one linalg.SolveBatch sweep instead of one
// scalar SolveWS call per cell. It exists for the paths that probe
// realized SINRs over and over on a fixed topology — the drift
// controller runs this against the true channel every tick — where the
// scalar path's per-call dispatch is pure overhead. Results are
// bit-identical to StreamSINRsWS for Nr ≤ 4 (the batch kernel replays
// the scalar operation order; see sinrbatch_test.go) and within the
// documented kernelEquivTol beyond.
func StreamSINRsBatchWS(ws *Workspace, own *channel.Link, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64) [][]float64 {
	nSC := len(own.Subcarriers)
	streams := ownTx.Precoder.Streams
	nr := own.Subcarriers[0].Rows
	out := ws.FloatRows(nSC, streams)
	batch := ws.NewSolveBatch(nr, nSC*streams)
	live := ws.Bools(nSC * streams)
	for k := 0; k < nSC; k++ {
		h := own.Subcarriers[k]
		r, a := interferenceCovariance(ws, h, ownTx, cross, crossTx, noisePerSCMW, k)
		for s := 0; s < streams; s++ {
			if ownTx.PowerMW[k][s] <= 0 {
				out[k][s] = Dropped
				continue
			}
			slot := k*streams + s
			live[slot] = true
			ai := ws.Col(a, s)
			// Qᵢ = R − aᵢaᵢᴴ gathered straight into the batch; aᵢ is the
			// right-hand side, so the batch's B doubles as the stored aᵢ
			// for the closing dot product.
			for ri := 0; ri < nr; ri++ {
				batch.SetB(slot, ri, ai[ri])
				for ci := 0; ci < nr; ci++ {
					batch.SetA(slot, ri, ci, r.At(ri, ci)-ai[ri]*conj(ai[ci]))
				}
			}
		}
	}
	batch.Solve(&ws.Workspace)
	cnt := batch.Count
	for k := 0; k < nSC; k++ {
		for s := 0; s < streams; s++ {
			slot := k*streams + s
			if !live[slot] {
				continue
			}
			if batch.Singular[slot] {
				out[k][s] = Dropped
				continue
			}
			// real(Dot(aᵢ, x)) in Dot's accumulation order, over the
			// batch's strided storage.
			var acc complex128
			for i := 0; i < nr; i++ {
				acc += conj(batch.B[i*cnt+slot]) * batch.X[i*cnt+slot]
			}
			sinr := real(acc)
			if sinr < 0 {
				sinr = 0
			}
			out[k][s] = sinr
		}
	}
	return out
}
