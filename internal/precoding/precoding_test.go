package precoding

import (
	"errors"
	"math"
	"testing"

	"copa/internal/channel"
	"copa/internal/ofdm"
	"copa/internal/rng"
)

func testLink(seed int64, nRx, nTx int, gainDB float64) *channel.Link {
	return channel.NewLink(rng.New(seed), nRx, nTx, channel.DBToLinear(gainDB))
}

func TestBeamformingOrthonormal(t *testing.T) {
	l := testLink(1, 2, 4, -50)
	p, err := Beamforming(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Streams != 2 || p.NTx() != 4 {
		t.Fatalf("precoder shape: streams=%d ntx=%d", p.Streams, p.NTx())
	}
	if dev := p.Verify(); dev > 1e-8 {
		t.Errorf("columns not orthonormal: %g", dev)
	}
}

func TestBeamformingRejectsTooManyStreams(t *testing.T) {
	l := testLink(2, 2, 4, -50)
	if _, err := Beamforming(l, 3); err == nil {
		t.Error("3 streams to a 2-antenna client should fail")
	}
	if _, err := Beamforming(l, 0); err == nil {
		t.Error("0 streams should fail")
	}
}

func TestBeamformingBeatsOmni(t *testing.T) {
	// SVD beamforming must deliver more power than a single-antenna
	// transmission of the same total power.
	l := testLink(3, 2, 4, -60)
	bf, err := Beamforming(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	omni := Omni(4, len(l.Subcarriers))
	pw := channel.TxBudgetPerSubcarrierMW()
	var bfPow, omniPow float64
	for k, h := range l.Subcarriers {
		g1 := h.Mul(bf.Scaled(k, []float64{pw}))
		g2 := h.Mul(omni.Scaled(k, []float64{pw}))
		bfPow += math.Pow(g1.FrobeniusNorm(), 2)
		omniPow += math.Pow(g2.FrobeniusNorm(), 2)
	}
	if bfPow <= omniPow {
		t.Errorf("beamforming %.3g <= omni %.3g", bfPow, omniPow)
	}
}

func TestNullingCancelsAtVictimPerfectCSI(t *testing.T) {
	own := testLink(4, 2, 4, -50)
	cross := testLink(5, 2, 4, -55)
	p, err := Nulling(own, cross, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dev := p.Verify(); dev > 1e-8 {
		t.Errorf("columns not orthonormal: %g", dev)
	}
	pw := []float64{1, 1}
	res := ResidualAtVictim(cross, p, pw)
	for k, r := range res {
		// Perfect CSI: cancellation down to numerical noise.
		if r > 1e-12*channel.DBToLinear(-55) {
			t.Fatalf("subcarrier %d residual %g too high for perfect CSI", k, r)
		}
	}
}

func TestNullingResidualWithNoisyCSI(t *testing.T) {
	src := rng.New(6)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-50))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-55))
	imp := channel.DefaultImpairments()
	crossEst := imp.EstimateCSI(src.Split(3), cross)

	p, err := Nulling(own, crossEst, 2)
	if err != nil {
		t.Fatal(err)
	}
	pw := []float64{1, 1}
	res := ResidualAtVictim(cross, p, pw)
	var mean float64
	for _, r := range res {
		mean += r
	}
	mean /= float64(len(res))
	// Residual should be well below the un-nulled power but clearly
	// above numerical zero — this is §2.2's residual interference.
	unnulled := channel.DBToLinear(-55) * 2 * 2 // 2 streams, 2 rx antennas
	redDB := channel.LinearToDB(mean / unnulled)
	if redDB > -15 || redDB < -45 {
		t.Errorf("nulling reduction with noisy CSI = %.1f dB; want deep but imperfect (≈-25..-30)", redDB)
	}
}

func TestNullingOverconstrained(t *testing.T) {
	own := testLink(7, 2, 3, -50)
	cross := testLink(8, 2, 3, -55)
	// 3 TX antennas, 2 victim antennas → nullspace dim 1 < 2 streams.
	_, err := Nulling(own, cross, 2)
	if !errors.Is(err, ErrOverconstrained) {
		t.Fatalf("err = %v, want ErrOverconstrained", err)
	}
	// One stream fits.
	if _, err := Nulling(own, cross, 1); err != nil {
		t.Fatalf("1 stream should fit: %v", err)
	}
	// SDA: shutting a victim antenna restores 2-stream nulling.
	if _, err := Nulling(own, cross.WithoutRxAntenna(1), 2); err != nil {
		t.Fatalf("SDA should make 2 streams feasible: %v", err)
	}
}

func TestNullingDOF(t *testing.T) {
	cases := []struct{ nTx, nVictim, want int }{
		{4, 2, 2}, {3, 2, 1}, {2, 2, 0}, {1, 2, 0}, {4, 1, 3},
	}
	for _, c := range cases {
		if got := NullingDOF(c.nTx, c.nVictim); got != c.want {
			t.Errorf("NullingDOF(%d,%d) = %d, want %d", c.nTx, c.nVictim, got, c.want)
		}
	}
}

func TestScaledPower(t *testing.T) {
	l := testLink(9, 2, 4, -50)
	p, err := Beamforming(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Scaled(0, []float64{4, 9})
	// Column power equals allocated power (orthonormal base columns).
	var c0, c1 float64
	for r := 0; r < m.Rows; r++ {
		v0, v1 := m.At(r, 0), m.At(r, 1)
		c0 += real(v0)*real(v0) + imag(v0)*imag(v0)
		c1 += real(v1)*real(v1) + imag(v1)*imag(v1)
	}
	if math.Abs(c0-4) > 1e-9 || math.Abs(c1-9) > 1e-9 {
		t.Errorf("scaled column powers = %g, %g; want 4, 9", c0, c1)
	}
}

func TestStreamSINRsNoInterference(t *testing.T) {
	l := testLink(10, 2, 4, -55)
	p, err := Beamforming(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.TotalTxBudgetMW())
	tx := NewTransmission(p, powers, channel.PerfectHardware())
	sinrs := StreamSINRs(l, tx, nil, nil, channel.NoisePerSubcarrierMW())
	if len(sinrs) != ofdm.NumSubcarriers || len(sinrs[0]) != 2 {
		t.Fatalf("shape %dx%d", len(sinrs), len(sinrs[0]))
	}
	mean := MeanSINRDB(sinrs)
	// −55 dB antenna-pair gain, 15 dBm budget split 2 ways: tens of dB.
	if mean < 15 || mean > 65 {
		t.Errorf("mean SNR = %.1f dB, expected a strong indoor link", mean)
	}
}

func TestStreamSINRsInterferenceHurts(t *testing.T) {
	src := rng.New(11)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-55))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-58))
	imp := channel.PerfectHardware()

	p1, err := Beamforming(own, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Beamforming(cross, 2) // interferer beamforms "somewhere"
	if err != nil {
		t.Fatal(err)
	}
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.TotalTxBudgetMW())
	tx1 := NewTransmission(p1, powers, imp)
	tx2 := NewTransmission(p2, powers, imp)

	alone := MeanSINRDB(StreamSINRs(own, tx1, nil, nil, channel.NoisePerSubcarrierMW()))
	crowded := MeanSINRDB(StreamSINRs(own, tx1, cross, tx2, channel.NoisePerSubcarrierMW()))
	if crowded >= alone-3 {
		t.Errorf("strong interference barely hurt: alone %.1f dB, crowded %.1f dB", alone, crowded)
	}
}

func TestStreamSINRsNullingProtectsVictim(t *testing.T) {
	src := rng.New(12)
	h11 := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-55))
	h21 := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-58)) // AP2→C1
	h22 := channel.NewLink(src.Split(3), 2, 4, channel.DBToLinear(-55))
	imp := channel.PerfectHardware()

	p1, _ := Beamforming(h11, 2)
	pBF, _ := Beamforming(h22, 2)
	pNull, err := Nulling(h22, h21, 2)
	if err != nil {
		t.Fatal(err)
	}
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.TotalTxBudgetMW())
	tx1 := NewTransmission(p1, powers, imp)
	noise := channel.NoisePerSubcarrierMW()

	sinrBF := MeanSINRDB(StreamSINRs(h11, tx1, h21, NewTransmission(pBF, powers, imp), noise))
	sinrNull := MeanSINRDB(StreamSINRs(h11, tx1, h21, NewTransmission(pNull, powers, imp), noise))
	if sinrNull <= sinrBF+10 {
		t.Errorf("perfect nulling should dramatically protect C1: BF %.1f dB, null %.1f dB", sinrBF, sinrNull)
	}
}

func TestDroppedSubcarrierMarking(t *testing.T) {
	l := testLink(13, 2, 4, -55)
	p, _ := Beamforming(l, 2)
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.TotalTxBudgetMW())
	powers[5][0] = 0 // drop stream 0 on subcarrier 5
	powers[7][0], powers[7][1] = 0, 0
	tx := NewTransmission(p, powers, channel.DefaultImpairments())
	sinrs := StreamSINRs(l, tx, nil, nil, channel.NoisePerSubcarrierMW())
	if sinrs[5][0] != Dropped || sinrs[5][1] < 0 {
		t.Errorf("subcarrier 5: %v", sinrs[5])
	}
	if sinrs[7][0] != Dropped || sinrs[7][1] != Dropped {
		t.Errorf("subcarrier 7: %v", sinrs[7])
	}
	// Fully dropped subcarrier radiates leakage, not EVM.
	leak := channel.DBToLinear(channel.LeakageFloorDB) * channel.TxBudgetPerSubcarrierMW() / 4
	if math.Abs(tx.TxNoiseVarMW[7]-leak) > 1e-15 {
		t.Errorf("leakage var = %g, want %g", tx.TxNoiseVarMW[7], leak)
	}
}

func TestEqualSplitBudget(t *testing.T) {
	powers := EqualSplit(52, 2, 31.6)
	var sum float64
	for _, row := range powers {
		for _, p := range row {
			sum += p
		}
	}
	if math.Abs(sum-31.6) > 1e-9 {
		t.Errorf("budget sums to %g", sum)
	}
}

func TestTransmissionTotalPower(t *testing.T) {
	l := testLink(14, 1, 1, -50)
	p, _ := Beamforming(l, 1)
	powers := EqualSplit(ofdm.NumSubcarriers, 1, 10)
	tx := NewTransmission(p, powers, channel.PerfectHardware())
	if math.Abs(tx.TotalPowerMW()-10) > 1e-9 {
		t.Errorf("total = %g", tx.TotalPowerMW())
	}
}

func TestOmniPrecoder(t *testing.T) {
	p := Omni(4, 10)
	if p.Streams != 1 || len(p.PerSubcarrier) != 10 {
		t.Fatal("omni shape wrong")
	}
	if dev := p.Verify(); dev > 0 {
		t.Errorf("omni not orthonormal: %g", dev)
	}
}

func BenchmarkNulling4x2(b *testing.B) {
	own := testLink(20, 2, 4, -50)
	cross := testLink(21, 2, 4, -55)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Nulling(own, cross, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamSINRs(b *testing.B) {
	src := rng.New(22)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-55))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-58))
	p1, _ := Beamforming(own, 2)
	p2, _ := Beamforming(cross, 2)
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.TotalTxBudgetMW())
	imp := channel.DefaultImpairments()
	tx1 := NewTransmission(p1, powers, imp)
	tx2 := NewTransmission(p2, powers, imp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StreamSINRs(own, tx1, cross, tx2, channel.NoisePerSubcarrierMW())
	}
}
