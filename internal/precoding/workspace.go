package precoding

import (
	"fmt"
	"math"

	"copa/internal/channel"
	"copa/internal/linalg"
)

// Workspace is the scratch arena for the allocation-free precoding paths:
// the *WS SINR kernels and the *Into precoder builders. It embeds
// linalg.Workspace, so one arena backs both layers and the linalg
// ownership rules apply unchanged: values returned by *WS functions live
// in the workspace until the owner calls Reset, *WS functions never Reset,
// and a Workspace must not be shared between goroutines.
//
// The *Into builders are the exception: they treat the workspace as
// exclusively theirs for the duration of the call (resetting it per
// subcarrier) and return heap-backed results — callers must not hold
// workspace-carved values across such a call.
type Workspace struct {
	linalg.Workspace
}

// scaledWS is Precoder.Scaled with the result carved from ws.
func (p *Precoder) scaledWS(ws *Workspace, k int, powersMW []float64) *linalg.Matrix {
	if len(powersMW) != p.Streams {
		panic("precoding: power vector length mismatch")
	}
	m := ws.Clone(p.PerSubcarrier[k])
	for c, pw := range powersMW {
		amp := complex(math.Sqrt(math.Max(0, pw)), 0)
		for r := 0; r < m.Rows; r++ {
			m.Set(r, c, m.At(r, c)*amp)
		}
	}
	return m
}

// covarianceWS carves this transmission's received covariance at a
// receiver with true channel h (Nr×Nt) on subcarrier k from ws. Same
// arithmetic as covariance.
func (t *Transmission) covarianceWS(ws *Workspace, h *linalg.Matrix, k int) *linalg.Matrix {
	scaled := t.Precoder.scaledWS(ws, k, t.PowerMW[k])
	g := ws.Mul(h, scaled) // Nr×Ns effective columns, power already applied
	cov := ws.Mul(g, ws.H(g))
	if v := t.TxNoiseVarMW[k]; v > 0 {
		hh := ws.Mul(h, ws.H(h))
		cv := complex(v, 0)
		for i := range cov.Data {
			cov.Data[i] += hh.Data[i] * cv
		}
	}
	return cov
}

// interferenceCovariance builds the per-subcarrier receive covariance R
// shared by StreamSINRsWS and SINRCoefficientsWS: own signal plus own TX
// noise plus (optional) cross interference plus thermal noise, preserving
// the exact floating-point operation order of the heap implementation.
// Returns R and the own signal columns a = h·scaled.
func interferenceCovariance(ws *Workspace, h *linalg.Matrix, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64, k int) (r, a *linalg.Matrix) {
	nr := h.Rows
	scaled := ownTx.Precoder.scaledWS(ws, k, ownTx.PowerMW[k])
	a = ws.Mul(h, scaled) // Nr×Ns signal columns
	r = ws.Mul(a, ws.H(a))
	if v := ownTx.TxNoiseVarMW[k]; v > 0 {
		hh := ws.Mul(h, ws.H(h))
		cv := complex(v, 0)
		for i := range r.Data {
			r.Data[i] += hh.Data[i] * cv
		}
	}
	if cross != nil && crossTx != nil {
		cov := crossTx.covarianceWS(ws, cross.Subcarriers[k], k)
		for i := range r.Data {
			r.Data[i] += cov.Data[i]
		}
	}
	for i := 0; i < nr; i++ {
		r.Set(i, i, r.At(i, i)+complex(noisePerSCMW, 0))
	}
	return r, a
}

// StreamSINRsWS is StreamSINRs with all scratch and result storage carved
// from ws: allocation-free once ws has warmed up. The returned matrix
// lives in ws (see Workspace ownership rules).
func StreamSINRsWS(ws *Workspace, own *channel.Link, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64) [][]float64 {
	nSC := len(own.Subcarriers)
	out := ws.FloatRows(nSC, ownTx.Precoder.Streams)
	for k := 0; k < nSC; k++ {
		h := own.Subcarriers[k]
		nr := h.Rows
		r, a := interferenceCovariance(ws, h, ownTx, cross, crossTx, noisePerSCMW, k)

		sinrs := out[k]
		for s := range sinrs {
			if ownTx.PowerMW[k][s] <= 0 {
				sinrs[s] = Dropped
				continue
			}
			ai := ws.Col(a, s)
			// Qᵢ = R − aᵢaᵢᴴ
			q := ws.Clone(r)
			for ri := 0; ri < nr; ri++ {
				for ci := 0; ci < nr; ci++ {
					q.Set(ri, ci, q.At(ri, ci)-ai[ri]*conj(ai[ci]))
				}
			}
			x, err := q.SolveWS(&ws.Workspace, ai)
			if err != nil {
				sinrs[s] = Dropped
				continue
			}
			sinrs[s] = real(linalg.Dot(ai, x))
			if sinrs[s] < 0 {
				sinrs[s] = 0
			}
		}
	}
	return out
}

// SINRCoefficientsWS is SINRCoefficients with all scratch and result
// storage carved from ws: allocation-free once ws has warmed up. The
// returned matrix lives in ws (see Workspace ownership rules).
func SINRCoefficientsWS(ws *Workspace, own *channel.Link, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64) [][]float64 {
	nSC := len(own.Subcarriers)
	out := ws.FloatRows(nSC, ownTx.Precoder.Streams)
	for k := 0; k < nSC; k++ {
		h := own.Subcarriers[k]
		nr := h.Rows
		r, a := interferenceCovariance(ws, h, ownTx, cross, crossTx, noisePerSCMW, k)
		unit := ws.Mul(h, ownTx.Precoder.PerSubcarrier[k]) // unit-power columns

		coefs := out[k]
		for s := range coefs {
			// Q_s: everything except stream s's own signal.
			ai := ws.Col(a, s)
			q := ws.Clone(r)
			for ri := 0; ri < nr; ri++ {
				for ci := 0; ci < nr; ci++ {
					q.Set(ri, ci, q.At(ri, ci)-ai[ri]*conj(ai[ci]))
				}
			}
			ui := ws.Col(unit, s)
			x, err := q.SolveWS(&ws.Workspace, ui)
			if err != nil {
				coefs[s] = 0
				continue
			}
			c := real(linalg.Dot(ui, x))
			if c < 0 {
				c = 0
			}
			coefs[s] = c
		}
	}
	return out
}

// reusePrecoder prepares dst (allocating it if nil) to hold an
// nSC-subcarrier precoder with the given stream count.
func reusePrecoder(dst *Precoder, streams, nSC int) *Precoder {
	if dst == nil {
		dst = &Precoder{}
	}
	dst.Streams = streams
	if len(dst.PerSubcarrier) != nSC {
		dst.PerSubcarrier = make([]*linalg.Matrix, nSC)
	}
	return dst
}

// storeMatrix copies src (typically workspace-carved) into the heap-backed
// matrix into, reusing its storage when shapes match.
func storeMatrix(into, src *linalg.Matrix) *linalg.Matrix {
	if into == nil || into.Rows != src.Rows || into.Cols != src.Cols {
		return src.Clone()
	}
	copy(into.Data, src.Data)
	return into
}

// BeamformingInto is Beamforming with scratch carved from ws and the
// result written into dst (allocated if nil, matrix storage reused when
// shapes match). The workspace is reset per subcarrier, so the caller must
// not hold any ws-carved values across this call; the returned precoder is
// heap-backed and independent of ws.
func BeamformingInto(ws *Workspace, dst *Precoder, csi *channel.Link, streams int) (*Precoder, error) {
	if streams < 1 || streams > csi.NTx() || streams > csi.NRx() {
		return nil, fmt.Errorf("precoding: cannot send %d streams over a %dx%d channel",
			streams, csi.NRx(), csi.NTx())
	}
	dst = reusePrecoder(dst, streams, len(csi.Subcarriers))
	for k, h := range csi.Subcarriers {
		ws.Reset()
		_, _, v := h.SVDWS(&ws.Workspace)
		idx := ws.Ints(streams)
		for i := range idx {
			idx[i] = i
		}
		pc := ws.ColsSlice(v, idx)
		canonicalize(pc)
		dst.PerSubcarrier[k] = storeMatrix(dst.PerSubcarrier[k], pc)
	}
	return dst, nil
}

// NullingInto is Nulling with scratch carved from ws and the result
// written into dst (allocated if nil, matrix storage reused when shapes
// match). The workspace is reset per subcarrier, so the caller must not
// hold any ws-carved values across this call; the returned precoder is
// heap-backed and independent of ws.
func NullingInto(ws *Workspace, dst *Precoder, own, cross *channel.Link, streams int) (*Precoder, error) {
	if own.NTx() != cross.NTx() {
		return nil, fmt.Errorf("precoding: own/cross antenna mismatch %d vs %d", own.NTx(), cross.NTx())
	}
	if streams < 1 || streams > own.NRx() {
		return nil, fmt.Errorf("precoding: cannot deliver %d streams to a %d-antenna client",
			streams, own.NRx())
	}
	dst = reusePrecoder(dst, streams, len(own.Subcarriers))
	for k := range own.Subcarriers {
		ws.Reset()
		null := cross.Subcarriers[k].NullspaceWS(&ws.Workspace, rankTol)
		if null.Cols < streams {
			return nil, fmt.Errorf("%w: nullspace dim %d < %d streams (nTx=%d, victim antennas=%d)",
				ErrOverconstrained, null.Cols, streams, own.NTx(), cross.NRx())
		}
		// Effective channel inside the nullspace, then beamform there.
		he := ws.Mul(own.Subcarriers[k], null)
		_, _, v := he.SVDWS(&ws.Workspace)
		idx := ws.Ints(streams)
		for i := range idx {
			idx[i] = i
		}
		pc := ws.Mul(null, ws.ColsSlice(v, idx))
		canonicalize(pc)
		dst.PerSubcarrier[k] = storeMatrix(dst.PerSubcarrier[k], pc)
	}
	return dst, nil
}
