package precoding

import (
	"fmt"
	"math"

	"copa/internal/channel"
	"copa/internal/linalg"
)

// Workspace is the scratch arena for the allocation-free precoding paths:
// the *WS SINR kernels and the *Into precoder builders. It embeds
// linalg.Workspace, so one arena backs both layers and the linalg
// ownership rules apply unchanged: values returned by *WS functions live
// in the workspace until the owner calls Reset, *WS functions never Reset,
// and a Workspace must not be shared between goroutines.
//
// The *Into builders are the exception: they treat the workspace as
// exclusively theirs for the duration of the call (resetting it per
// subcarrier) and return heap-backed results — callers must not hold
// workspace-carved values across such a call.
type Workspace struct {
	linalg.Workspace
}

// scaledWS is Precoder.Scaled with the result carved from ws.
func (p *Precoder) scaledWS(ws *Workspace, k int, powersMW []float64) *linalg.Matrix {
	if len(powersMW) != p.Streams {
		panic("precoding: power vector length mismatch")
	}
	m := ws.Clone(p.PerSubcarrier[k])
	for c, pw := range powersMW {
		amp := complex(math.Sqrt(math.Max(0, pw)), 0)
		for r := 0; r < m.Rows; r++ {
			m.Set(r, c, m.At(r, c)*amp)
		}
	}
	return m
}

// covarianceWS carves this transmission's received covariance at a
// receiver with true channel h (Nr×Nt) on subcarrier k from ws. Same
// arithmetic as covariance.
func (t *Transmission) covarianceWS(ws *Workspace, h *linalg.Matrix, k int) *linalg.Matrix {
	scaled := t.Precoder.scaledWS(ws, k, t.PowerMW[k])
	g := ws.Mul(h, scaled) // Nr×Ns effective columns, power already applied
	cov := ws.Mul(g, ws.H(g))
	if v := t.TxNoiseVarMW[k]; v > 0 {
		hh := ws.Mul(h, ws.H(h))
		cv := complex(v, 0)
		for i := range cov.Data {
			cov.Data[i] += hh.Data[i] * cv
		}
	}
	return cov
}

// interferenceCovariance builds the per-subcarrier receive covariance R
// shared by StreamSINRsWS and SINRCoefficientsWS: own signal plus own TX
// noise plus (optional) cross interference plus thermal noise, preserving
// the exact floating-point operation order of the heap implementation.
// Returns R and the own signal columns a = h·scaled.
func interferenceCovariance(ws *Workspace, h *linalg.Matrix, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64, k int) (r, a *linalg.Matrix) {
	nr := h.Rows
	scaled := ownTx.Precoder.scaledWS(ws, k, ownTx.PowerMW[k])
	a = ws.Mul(h, scaled) // Nr×Ns signal columns
	r = ws.Mul(a, ws.H(a))
	if v := ownTx.TxNoiseVarMW[k]; v > 0 {
		hh := ws.Mul(h, ws.H(h))
		cv := complex(v, 0)
		for i := range r.Data {
			r.Data[i] += hh.Data[i] * cv
		}
	}
	if cross != nil && crossTx != nil {
		cov := crossTx.covarianceWS(ws, cross.Subcarriers[k], k)
		for i := range r.Data {
			r.Data[i] += cov.Data[i]
		}
	}
	for i := 0; i < nr; i++ {
		r.Set(i, i, r.At(i, i)+complex(noisePerSCMW, 0))
	}
	return r, a
}

// StreamSINRsWS is StreamSINRs with all scratch and result storage carved
// from ws: allocation-free once ws has warmed up. The returned matrix
// lives in ws (see Workspace ownership rules).
func StreamSINRsWS(ws *Workspace, own *channel.Link, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64) [][]float64 {
	nSC := len(own.Subcarriers)
	out := ws.FloatRows(nSC, ownTx.Precoder.Streams)
	for k := 0; k < nSC; k++ {
		h := own.Subcarriers[k]
		nr := h.Rows
		r, a := interferenceCovariance(ws, h, ownTx, cross, crossTx, noisePerSCMW, k)

		sinrs := out[k]
		for s := range sinrs {
			if ownTx.PowerMW[k][s] <= 0 {
				sinrs[s] = Dropped
				continue
			}
			ai := ws.Col(a, s)
			// Qᵢ = R − aᵢaᵢᴴ
			q := ws.Clone(r)
			for ri := 0; ri < nr; ri++ {
				for ci := 0; ci < nr; ci++ {
					q.Set(ri, ci, q.At(ri, ci)-ai[ri]*conj(ai[ci]))
				}
			}
			x, err := q.SolveWS(&ws.Workspace, ai)
			if err != nil {
				sinrs[s] = Dropped
				continue
			}
			sinrs[s] = real(linalg.Dot(ai, x))
			if sinrs[s] < 0 {
				sinrs[s] = 0
			}
		}
	}
	return out
}

// SINRCoefficientsWS is SINRCoefficients with all scratch and result
// storage carved from ws: allocation-free once ws has warmed up. The
// returned matrix lives in ws (see Workspace ownership rules).
func SINRCoefficientsWS(ws *Workspace, own *channel.Link, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64) [][]float64 {
	nSC := len(own.Subcarriers)
	out := ws.FloatRows(nSC, ownTx.Precoder.Streams)
	for k := 0; k < nSC; k++ {
		h := own.Subcarriers[k]
		nr := h.Rows
		r, a := interferenceCovariance(ws, h, ownTx, cross, crossTx, noisePerSCMW, k)
		unit := ws.Mul(h, ownTx.Precoder.PerSubcarrier[k]) // unit-power columns

		coefs := out[k]
		for s := range coefs {
			// Q_s: everything except stream s's own signal.
			ai := ws.Col(a, s)
			q := ws.Clone(r)
			for ri := 0; ri < nr; ri++ {
				for ci := 0; ci < nr; ci++ {
					q.Set(ri, ci, q.At(ri, ci)-ai[ri]*conj(ai[ci]))
				}
			}
			ui := ws.Col(unit, s)
			x, err := q.SolveWS(&ws.Workspace, ui)
			if err != nil {
				coefs[s] = 0
				continue
			}
			c := real(linalg.Dot(ui, x))
			if c < 0 {
				c = 0
			}
			coefs[s] = c
		}
	}
	return out
}

// reusePrecoder prepares dst (allocating it if nil) to hold an
// nSC-subcarrier precoder with the given stream count.
func reusePrecoder(dst *Precoder, streams, nSC int) *Precoder {
	if dst == nil {
		dst = &Precoder{}
	}
	dst.Streams = streams
	if len(dst.PerSubcarrier) != nSC {
		dst.PerSubcarrier = make([]*linalg.Matrix, nSC)
	}
	return dst
}

// storeMatrix copies src (typically workspace-carved) into the heap-backed
// matrix into, reusing its storage when shapes match.
func storeMatrix(into, src *linalg.Matrix) *linalg.Matrix {
	if into == nil || into.Rows != src.Rows || into.Cols != src.Cols {
		return src.Clone()
	}
	copy(into.Data, src.Data)
	return into
}

// svGapTol is the relative singular-value gap below which the batched
// Gram-eig path considers neighbouring singular directions entangled and
// routes the subcarrier to the scalar SVD reference instead. At gaps
// above ~1e-4·σmax the Gram eigenvectors are accurate to ≲1e-8, well
// inside the kernel-equivalence tolerance (DESIGN §13).
const svGapTol = 1e-4

// BeamformingInto is Beamforming with scratch carved from ws and the
// result written into dst (allocated if nil, matrix storage reused when
// shapes match). The caller must not hold any ws-carved values across
// this call (the workspace is reset internally); the returned precoder is
// heap-backed and independent of ws.
//
// All subcarriers run through the batched Gram-eig kernels
// (linalg.SVDBatch) in one dispatch; subcarriers whose leading singular
// directions the batch cannot certify (near-tied singular values) fall
// back to the per-subcarrier scalar reference, so results match
// BeamformingIntoScalar within the documented kernel-equivalence
// tolerance on every input.
func BeamformingInto(ws *Workspace, dst *Precoder, csi *channel.Link, streams int) (*Precoder, error) {
	if streams < 1 || streams > csi.NTx() || streams > csi.NRx() {
		return nil, fmt.Errorf("precoding: cannot send %d streams over a %dx%d channel",
			streams, csi.NRx(), csi.NTx())
	}
	nSC := len(csi.Subcarriers)
	dst = reusePrecoder(dst, streams, nSC)
	ws.Reset()
	res := linalg.SVDBatch(&ws.Workspace, csi.Subcarriers)
	nt := csi.NTx()
	fallback := ws.Ints(nSC)
	nFall := 0
	pc := ws.Matrix(nt, streams)
	for k := 0; k < nSC; k++ {
		if !res.TopSeparated(k, streams, svGapTol) {
			fallback[nFall] = k
			nFall++
			continue
		}
		res.VColsInto(pc, k, 0, streams)
		canonicalize(pc)
		dst.PerSubcarrier[k] = storeMatrix(dst.PerSubcarrier[k], pc)
	}
	for _, k := range snapshotFallback(fallback[:nFall]) {
		ws.Reset()
		beamformSubcarrierScalar(ws, dst, csi, streams, k)
	}
	return dst, nil
}

// snapshotFallback copies a ws-carved fallback index list to the heap.
// The scalar fallback loop resets the workspace per subcarrier, which
// would let the scalar kernels' own carves reuse — and clear — the
// chunk backing the list while it is still being ranged over, silently
// skipping every fallback subcarrier after the first. The fallback path
// is rare (near-tied singular values), so the copy is off the hot path;
// nil when empty keeps the common all-certified case allocation-free.
func snapshotFallback(fallback []int) []int {
	if len(fallback) == 0 {
		return nil
	}
	return append([]int(nil), fallback...)
}

// BeamformingIntoScalar is the per-subcarrier scalar reference path of
// BeamformingInto: one SVDWS per subcarrier, exactly the pre-batch
// implementation. The kernel-equivalence tests cross-check the batched
// path against it.
func BeamformingIntoScalar(ws *Workspace, dst *Precoder, csi *channel.Link, streams int) (*Precoder, error) {
	if streams < 1 || streams > csi.NTx() || streams > csi.NRx() {
		return nil, fmt.Errorf("precoding: cannot send %d streams over a %dx%d channel",
			streams, csi.NRx(), csi.NTx())
	}
	dst = reusePrecoder(dst, streams, len(csi.Subcarriers))
	for k := range csi.Subcarriers {
		ws.Reset()
		beamformSubcarrierScalar(ws, dst, csi, streams, k)
	}
	return dst, nil
}

// beamformSubcarrierScalar computes subcarrier k of a beamforming
// precoder via the scalar SVD reference and stores it into dst.
func beamformSubcarrierScalar(ws *Workspace, dst *Precoder, csi *channel.Link, streams, k int) {
	_, _, v := csi.Subcarriers[k].SVDWS(&ws.Workspace)
	idx := ws.Ints(streams)
	for i := range idx {
		idx[i] = i
	}
	pc := ws.ColsSlice(v, idx)
	canonicalize(pc)
	dst.PerSubcarrier[k] = storeMatrix(dst.PerSubcarrier[k], pc)
}

// NullingInto is Nulling with scratch carved from ws and the result
// written into dst (allocated if nil, matrix storage reused when shapes
// match). The caller must not hold any ws-carved values across this call
// (the workspace is reset internally); the returned precoder is
// heap-backed and independent of ws.
//
// Both SVDs of the nulling construction run batched: one SVDBatch over
// the victim channels determines the nullspaces (only where
// linalg.NullspaceDim can certify the rank decision the scalar reference
// would make — full-row-rank victims, the ubiquitous case), and a second
// SVDBatch over the effective in-nullspace channels picks the beamforming
// directions. The final precoder columns are basis-independent — they are
// the top singular directions of the own channel restricted to the
// nullspace subspace — so certified subcarriers agree with
// NullingIntoScalar to the documented tolerance even though the two paths
// use different orthonormal nullspace bases internally. Uncertified or
// gap-deficient subcarriers take the scalar path.
func NullingInto(ws *Workspace, dst *Precoder, own, cross *channel.Link, streams int) (*Precoder, error) {
	if own.NTx() != cross.NTx() {
		return nil, fmt.Errorf("precoding: own/cross antenna mismatch %d vs %d", own.NTx(), cross.NTx())
	}
	if streams < 1 || streams > own.NRx() {
		return nil, fmt.Errorf("precoding: cannot deliver %d streams to a %d-antenna client",
			streams, own.NRx())
	}
	nSC := len(own.Subcarriers)
	dst = reusePrecoder(dst, streams, nSC)
	ws.Reset()

	nt := own.NTx()
	maxRank := cross.NRx()
	if nt < maxRank {
		maxRank = nt
	}
	res := linalg.SVDBatch(&ws.Workspace, cross.Subcarriers)

	fallback := ws.Ints(nSC)
	nFall := 0
	certified := ws.Ints(nSC)
	nCert := 0
	nulls := ws.MatrixPtrs(nSC)
	hes := ws.MatrixPtrs(nSC)
	for k := 0; k < nSC; k++ {
		dim, ok := res.NullspaceDim(k, maxRank, rankTol)
		if !ok {
			fallback[nFall] = k
			nFall++
			continue
		}
		if dim < streams {
			return nil, fmt.Errorf("%w: nullspace dim %d < %d streams (nTx=%d, victim antennas=%d)",
				ErrOverconstrained, dim, streams, own.NTx(), cross.NRx())
		}
		null := ws.Matrix(nt, dim)
		res.VColsInto(null, k, nt-dim, nt)
		nulls[k] = null
		hes[nCert] = ws.Mul(own.Subcarriers[k], null)
		certified[nCert] = k
		nCert++
	}

	if nCert > 0 {
		heRes := linalg.SVDBatch(&ws.Workspace, hes[:nCert])
		for idx := 0; idx < nCert; idx++ {
			k := certified[idx]
			if !heRes.TopSeparated(idx, streams, svGapTol) {
				fallback[nFall] = k
				nFall++
				continue
			}
			dim := nulls[k].Cols
			v := ws.Matrix(dim, streams)
			heRes.VColsInto(v, idx, 0, streams)
			pc := ws.Mul(nulls[k], v)
			canonicalize(pc)
			dst.PerSubcarrier[k] = storeMatrix(dst.PerSubcarrier[k], pc)
		}
	}

	for _, k := range snapshotFallback(fallback[:nFall]) {
		ws.Reset() // batch results are dead past this point; stores are heap-backed
		if err := nullSubcarrierScalar(ws, dst, own, cross, streams, k); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// NullingIntoScalar is the per-subcarrier scalar reference path of
// NullingInto: NullspaceWS + SVDWS per subcarrier, exactly the pre-batch
// implementation. The kernel-equivalence tests cross-check the batched
// path against it.
func NullingIntoScalar(ws *Workspace, dst *Precoder, own, cross *channel.Link, streams int) (*Precoder, error) {
	if own.NTx() != cross.NTx() {
		return nil, fmt.Errorf("precoding: own/cross antenna mismatch %d vs %d", own.NTx(), cross.NTx())
	}
	if streams < 1 || streams > own.NRx() {
		return nil, fmt.Errorf("precoding: cannot deliver %d streams to a %d-antenna client",
			streams, own.NRx())
	}
	dst = reusePrecoder(dst, streams, len(own.Subcarriers))
	for k := range own.Subcarriers {
		ws.Reset()
		if err := nullSubcarrierScalar(ws, dst, own, cross, streams, k); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// nullSubcarrierScalar computes subcarrier k of a nulling precoder via
// the scalar reference (NullspaceWS + SVDWS) and stores it into dst.
func nullSubcarrierScalar(ws *Workspace, dst *Precoder, own, cross *channel.Link, streams, k int) error {
	null := cross.Subcarriers[k].NullspaceWS(&ws.Workspace, rankTol)
	if null.Cols < streams {
		return fmt.Errorf("%w: nullspace dim %d < %d streams (nTx=%d, victim antennas=%d)",
			ErrOverconstrained, null.Cols, streams, own.NTx(), cross.NRx())
	}
	// Effective channel inside the nullspace, then beamform there.
	he := ws.Mul(own.Subcarriers[k], null)
	_, _, v := he.SVDWS(&ws.Workspace)
	idx := ws.Ints(streams)
	for i := range idx {
		idx[i] = i
	}
	pc := ws.Mul(null, ws.ColsSlice(v, idx))
	canonicalize(pc)
	dst.PerSubcarrier[k] = storeMatrix(dst.PerSubcarrier[k], pc)
	return nil
}
