package precoding

import (
	"copa/internal/channel"
)

// Dropped marks a subcarrier that carries no data for a stream in SINR
// matrices; the rate-selection code in package ofdm skips negative
// entries.
const Dropped = -1.0

// Transmission describes one sender's concurrent transmission: the
// precoder shape, the per-subcarrier per-stream power allocation, and the
// transmit-side noise that propagates with it.
type Transmission struct {
	Precoder *Precoder

	// PowerMW[k][s] is the transmit power (mW) on data subcarrier k for
	// stream s. A subcarrier with zero power on all streams is dropped:
	// it carries no data, but still radiates carrier leakage.
	PowerMW [][]float64

	// TxNoiseVarMW[k] is the per-transmit-antenna white-noise variance
	// radiated on subcarrier k: EVM noise proportional to the power
	// actually sent, plus the leakage floor on dropped subcarriers.
	TxNoiseVarMW []float64
}

// NewTransmission bundles a precoder and power allocation, deriving the
// transmit-noise profile from the impairment model: EVM noise at
// imp.TxEVMDB relative to the subcarrier's total radiated power, and —
// because Wi-Fi hardware cannot radiate true zero (§3.2) — carrier
// leakage at channel.LeakageFloorDB relative to the nominal equal-split
// per-subcarrier budget on dropped subcarriers.
func NewTransmission(p *Precoder, powerMW [][]float64, imp channel.Impairments) *Transmission {
	t := &Transmission{Precoder: p, PowerMW: powerMW}
	nTx := float64(p.NTx())
	evm := channel.DBToLinear(imp.TxEVMDB)
	leakPerAntenna := channel.DBToLinear(channel.LeakageFloorDB) * channel.TxBudgetPerSubcarrierMW() / nTx
	t.TxNoiseVarMW = make([]float64, len(powerMW))
	for k, ps := range powerMW {
		var total float64
		for _, pw := range ps {
			total += pw
		}
		if total <= 0 {
			t.TxNoiseVarMW[k] = leakPerAntenna
		} else {
			t.TxNoiseVarMW[k] = evm * total / nTx
		}
	}
	return t
}

// WithExpectedResidual returns a copy of the transmission whose TX-noise
// profile additionally carries the *expected* nulling residual implied by
// a known CSI-error level: a predictor that evaluates a nulling precoder
// against the very estimate it was computed from would otherwise forecast
// a perfect null, systematically overselling concurrent strategies. The
// residual is modeled as white transmit noise at csiErrLinear relative to
// each subcarrier's radiated power.
func (t *Transmission) WithExpectedResidual(csiErrLinear float64) *Transmission {
	if csiErrLinear <= 0 {
		return t
	}
	out := &Transmission{Precoder: t.Precoder, PowerMW: t.PowerMW}
	nTx := float64(t.Precoder.NTx())
	out.TxNoiseVarMW = make([]float64, len(t.TxNoiseVarMW))
	for k, v := range t.TxNoiseVarMW {
		var total float64
		for _, p := range t.PowerMW[k] {
			total += p
		}
		out.TxNoiseVarMW[k] = v + csiErrLinear*total/nTx
	}
	return out
}

// TotalPowerMW returns the power radiated across all subcarriers and
// streams (excluding TX noise).
func (t *Transmission) TotalPowerMW() float64 {
	var sum float64
	for _, ps := range t.PowerMW {
		for _, p := range ps {
			sum += p
		}
	}
	return sum
}

// StreamSINRs returns the per-subcarrier, per-stream post-MMSE SINR
// (linear) at a client:
//
//	own     — true channel from the client's own AP,
//	ownTx   — that AP's transmission,
//	cross   — true channel from the interfering AP (nil if it is silent),
//	crossTx — the interfering AP's transmission (nil if silent),
//
// noisePerSCMW is the receiver noise per subcarrier. The receiver runs an
// MMSE filter over its antennas (§4.1); for stream i the returned value is
// aᵢᴴ·Qᵢ⁻¹·aᵢ with aᵢ the stream's effective received column and Qᵢ the
// covariance of everything else (other streams, TX noise, interference,
// thermal noise). Entries are Dropped for subcarriers the stream does not
// use.
func StreamSINRs(own *channel.Link, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64) [][]float64 {
	var ws Workspace
	return copyRows(StreamSINRsWS(&ws, own, ownTx, cross, crossTx, noisePerSCMW))
}

// copyRows deep-copies a workspace-carved row matrix onto the heap.
func copyRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for k := range rows {
		out[k] = append([]float64(nil), rows[k]...)
	}
	return out
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// SINRCoefficients linearizes the post-MMSE SINR around the current power
// allocation: entry [k][s] is the SINR per milliwatt that stream s of the
// own sender would see on subcarrier k, holding every other stream (own
// and interfering) at its current power. SINR_s(p) = p · coef[k][s] while
// the others are fixed — the quantity COPA's per-stream allocation step
// (Fig. 6) needs. Unlike StreamSINRs it is defined even for currently
// dropped subcarriers.
func SINRCoefficients(own *channel.Link, ownTx *Transmission, cross *channel.Link, crossTx *Transmission, noisePerSCMW float64) [][]float64 {
	var ws Workspace
	return copyRows(SINRCoefficientsWS(&ws, own, ownTx, cross, crossTx, noisePerSCMW))
}

// EqualSplit builds the status-quo power allocation: the total budget
// divided evenly across all subcarriers and streams.
func EqualSplit(nSubcarriers, streams int, totalMW float64) [][]float64 {
	per := totalMW / float64(nSubcarriers*streams)
	out := make([][]float64, nSubcarriers)
	for k := range out {
		row := make([]float64, streams)
		for s := range row {
			row[s] = per
		}
		out[k] = row
	}
	return out
}

// MeanSINRDB averages a SINR matrix (linear) over used entries and
// returns the result in dB; dropped entries are excluded.
func MeanSINRDB(sinrs [][]float64) float64 {
	var sum float64
	n := 0
	for _, row := range sinrs {
		for _, s := range row {
			if s >= 0 {
				sum += s
				n++
			}
		}
	}
	if n == 0 {
		return channel.LinearToDB(0)
	}
	return channel.LinearToDB(sum / float64(n))
}
