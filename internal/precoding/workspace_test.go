package precoding

import (
	"testing"

	"copa/internal/channel"
)

// TestStreamSINRsWSAllocBudget pins the SINR evaluation hot path at zero
// steady-state allocations: once the arena has warmed up, Reset+evaluate
// cycles must not touch the heap.
func TestStreamSINRsWSAllocBudget(t *testing.T) {
	own := testLink(11, 2, 4, -55)
	cross := testLink(12, 2, 4, -65)
	p, err := Beamforming(own, 2)
	if err != nil {
		t.Fatal(err)
	}
	powers := EqualSplit(len(own.Subcarriers), p.Streams, channel.BudgetForAntennasMW(4))
	tx := NewTransmission(p, powers, channel.DefaultImpairments())
	noise := channel.NoisePerSubcarrierMW()

	var ws Workspace
	StreamSINRsWS(&ws, own, tx, cross, tx, noise) // warm up
	allocs := testing.AllocsPerRun(50, func() {
		ws.Reset()
		StreamSINRsWS(&ws, own, tx, cross, tx, noise)
	})
	if allocs != 0 {
		t.Errorf("StreamSINRsWS: %v allocs/run in steady state, want 0", allocs)
	}
}

// TestNullingIntoAllocBudget checks the precoder-rebuild path reuses the
// destination precoder's storage: after the first build, rebuilding into
// the same dst must not allocate.
func TestNullingIntoAllocBudget(t *testing.T) {
	own := testLink(13, 2, 4, -55)
	victim := testLink(14, 2, 4, -60)

	var ws Workspace
	dst, err := NullingInto(&ws, nil, own, victim, 2)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := NullingInto(&ws, dst, own, victim, 2); err != nil {
			t.Fatalf("NullingInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("NullingInto steady state: %v allocs/run, want 0", allocs)
	}
}

// TestIntoBuildersMatchHeapBuilders proves the workspace builders produce
// exactly the precoders the original heap builders do.
func TestIntoBuildersMatchHeapBuilders(t *testing.T) {
	own := testLink(15, 2, 4, -55)
	victim := testLink(16, 2, 4, -60)

	var ws Workspace
	bfInto, err := BeamformingInto(&ws, nil, own, 2)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := Beamforming(own, 2)
	if err != nil {
		t.Fatal(err)
	}
	nlInto, err := NullingInto(&ws, nil, own, victim, 2)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Nulling(own, victim, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range own.Subcarriers {
		for i, v := range bf.PerSubcarrier[k].Data {
			if v != bfInto.PerSubcarrier[k].Data[i] {
				t.Fatalf("beamforming sc %d elem %d: %v != %v", k, i, bfInto.PerSubcarrier[k].Data[i], v)
			}
		}
		for i, v := range nl.PerSubcarrier[k].Data {
			if v != nlInto.PerSubcarrier[k].Data[i] {
				t.Fatalf("nulling sc %d elem %d: %v != %v", k, i, nlInto.PerSubcarrier[k].Data[i], v)
			}
		}
	}
}
