package precoding

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"copa/internal/channel"
	"copa/internal/rng"
)

// kernelEquivTol is the documented kernel-equivalence bound (DESIGN §13):
// the batched Gram-eig precoding path must match the scalar SVD reference
// entrywise within this tolerance on every certified subcarrier, on both
// the default and the GOAMD64=v3 (FMA) codegen paths. Precoder entries
// are O(1) (orthonormal columns), so an absolute bound is meaningful.
const kernelEquivTol = 1e-6

func maxPrecoderDiff(a, b *Precoder) float64 {
	var worst float64
	for k := range a.PerSubcarrier {
		ma, mb := a.PerSubcarrier[k], b.PerSubcarrier[k]
		for i := range ma.Data {
			re := real(ma.Data[i]) - real(mb.Data[i])
			im := imag(ma.Data[i]) - imag(mb.Data[i])
			if d := math.Hypot(re, im); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestBeamformingBatchedMatchesScalar(t *testing.T) {
	cases := []struct {
		nRx, nTx, streams int
	}{
		{1, 1, 1},
		{1, 2, 1},
		{2, 2, 1},
		{2, 2, 2},
		{2, 3, 2},
		{2, 4, 1},
		{2, 4, 2},
		{3, 4, 3},
		{4, 4, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d_s%d", tc.nRx, tc.nTx, tc.streams), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				csi := channel.NewLink(rng.New(100+seed), tc.nRx, tc.nTx, channel.DBToLinear(-50))
				var wsB, wsS Workspace
				batched, err := BeamformingInto(&wsB, nil, csi, tc.streams)
				if err != nil {
					t.Fatal(err)
				}
				scalar, err := BeamformingIntoScalar(&wsS, nil, csi, tc.streams)
				if err != nil {
					t.Fatal(err)
				}
				if d := maxPrecoderDiff(batched, scalar); d > kernelEquivTol {
					t.Fatalf("seed %d: batched vs scalar beamforming diverge by %g (tol %g)",
						seed, d, kernelEquivTol)
				}
				if dev := batched.Verify(); dev > 1e-8 {
					t.Fatalf("seed %d: batched precoder not orthonormal: %g", seed, dev)
				}
			}
		})
	}
}

func TestNullingBatchedMatchesScalar(t *testing.T) {
	cases := []struct {
		nRx, nTx, victimRx, streams int
	}{
		{2, 4, 2, 1},
		{2, 4, 2, 2},
		{1, 4, 2, 1},
		{2, 4, 1, 2},
		{1, 2, 1, 1},
		{3, 4, 1, 3},
		{2, 3, 1, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d_v%d_s%d", tc.nRx, tc.nTx, tc.victimRx, tc.streams), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				own := channel.NewLink(rng.New(200+seed), tc.nRx, tc.nTx, channel.DBToLinear(-50))
				cross := channel.NewLink(rng.New(300+seed), tc.victimRx, tc.nTx, channel.DBToLinear(-55))
				var wsB, wsS Workspace
				batched, errB := NullingInto(&wsB, nil, own, cross, tc.streams)
				scalar, errS := NullingIntoScalar(&wsS, nil, own, cross, tc.streams)
				if errB != nil || errS != nil {
					t.Fatalf("seed %d: errors batched=%v scalar=%v", seed, errB, errS)
				}
				if d := maxPrecoderDiff(batched, scalar); d > kernelEquivTol {
					t.Fatalf("seed %d: batched vs scalar nulling diverge by %g (tol %g)",
						seed, d, kernelEquivTol)
				}
				if dev := batched.Verify(); dev > 1e-8 {
					t.Fatalf("seed %d: batched precoder not orthonormal: %g", seed, dev)
				}
			}
		})
	}
}

func TestNullingBatchedOverconstrainedParity(t *testing.T) {
	// A 2-antenna interferer nulling toward a 2-antenna victim has no
	// nullspace left: both paths must report ErrOverconstrained.
	own := channel.NewLink(rng.New(41), 2, 2, channel.DBToLinear(-50))
	cross := channel.NewLink(rng.New(42), 2, 2, channel.DBToLinear(-55))
	var wsB, wsS Workspace
	_, errB := NullingInto(&wsB, nil, own, cross, 1)
	_, errS := NullingIntoScalar(&wsS, nil, own, cross, 1)
	if !errors.Is(errB, ErrOverconstrained) {
		t.Fatalf("batched error = %v, want ErrOverconstrained", errB)
	}
	if !errors.Is(errS, ErrOverconstrained) {
		t.Fatalf("scalar error = %v, want ErrOverconstrained", errS)
	}
}

// TestBatchedBuildersAllocFree pins the steady-state allocation behaviour
// of the batched builders: with a warmed workspace and a reused dst, a
// rebuild must not touch the Go allocator.
func TestBatchedBuildersAllocFree(t *testing.T) {
	csi := channel.NewLink(rng.New(51), 2, 4, channel.DBToLinear(-50))
	cross := channel.NewLink(rng.New(52), 2, 4, channel.DBToLinear(-55))
	var ws Workspace

	bf, err := BeamformingInto(&ws, nil, csi, 2)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := BeamformingInto(&ws, bf, csi, 2); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("BeamformingInto: %v allocs/op, want 0", allocs)
	}

	nl, err := NullingInto(&ws, nil, csi, cross, 2)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := NullingInto(&ws, nl, csi, cross, 2); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("NullingInto: %v allocs/op, want 0", allocs)
	}
}
