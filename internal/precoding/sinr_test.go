package precoding

import (
	"math"
	"testing"

	"copa/internal/channel"
	"copa/internal/ofdm"
	"copa/internal/rng"
)

func TestSINRCoefficientsLinearity(t *testing.T) {
	// SINR(p) must equal p · coef while other powers are held fixed.
	src := rng.New(41)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-60))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-66))
	p1, err := Beamforming(own, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Beamforming(cross, 2)
	if err != nil {
		t.Fatal(err)
	}
	imp := channel.PerfectHardware()
	noise := channel.NoisePerSubcarrierMW()
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.BudgetForAntennasMW(4))
	tx1 := NewTransmission(p1, powers, imp)
	tx2 := NewTransmission(p2, powers, imp)

	coefs := SINRCoefficients(own, tx1, cross, tx2, noise)
	sinrs := StreamSINRs(own, tx1, cross, tx2, noise)
	for k := 0; k < ofdm.NumSubcarriers; k += 7 {
		for s := 0; s < 2; s++ {
			want := sinrs[k][s]
			got := coefs[k][s] * powers[k][s]
			if math.Abs(got-want) > 1e-6*want {
				t.Fatalf("k=%d s=%d: coef·p = %g, SINR = %g", k, s, got, want)
			}
		}
	}
}

func TestSINRCoefficientsDefinedForDropped(t *testing.T) {
	src := rng.New(43)
	own := channel.NewLink(src, 2, 4, channel.DBToLinear(-60))
	p, err := Beamforming(own, 2)
	if err != nil {
		t.Fatal(err)
	}
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.BudgetForAntennasMW(4))
	powers[5][0] = 0
	tx := NewTransmission(p, powers, channel.PerfectHardware())
	coefs := SINRCoefficients(own, tx, nil, nil, channel.NoisePerSubcarrierMW())
	if coefs[5][0] <= 0 {
		t.Error("dropped subcarrier should still have a positive coefficient")
	}
}

func TestWithExpectedResidual(t *testing.T) {
	src := rng.New(45)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-60))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-62))
	pNull, err := Nulling(own, cross, 2)
	if err != nil {
		t.Fatal(err)
	}
	imp := channel.PerfectHardware()
	noise := channel.NoisePerSubcarrierMW()
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.BudgetForAntennasMW(4))
	txNull := NewTransmission(pNull, powers, imp)
	pBF, _ := Beamforming(own, 2)
	txOwn := NewTransmission(pBF, powers, imp)

	// Without the residual term, a perfect-CSI null predicts near-SNR
	// SINR; with it, the predicted SINR must drop.
	clean := MeanSINRDB(StreamSINRs(own, txOwn, cross, txNull, noise))
	guarded := MeanSINRDB(StreamSINRs(own, txOwn, cross, txNull.WithExpectedResidual(channel.DBToLinear(-20)), noise))
	if guarded >= clean {
		t.Errorf("expected residual did not lower prediction: %.1f vs %.1f dB", guarded, clean)
	}
	// Zero error: identity.
	same := txNull.WithExpectedResidual(0)
	if same != txNull {
		t.Error("zero residual should return the original transmission")
	}
	// Original untouched by the guarded copy.
	before := txNull.TxNoiseVarMW[0]
	_ = txNull.WithExpectedResidual(channel.DBToLinear(-10))
	if txNull.TxNoiseVarMW[0] != before {
		t.Error("WithExpectedResidual mutated the original")
	}
}

func TestMeanSINRDBEmpty(t *testing.T) {
	if !math.IsInf(MeanSINRDB([][]float64{{Dropped}}), -1) {
		t.Error("all-dropped mean should be -Inf")
	}
}

func TestQuickSINRMonotoneInInterferencePower(t *testing.T) {
	// Raising the interferer's power can never raise the victim's
	// post-MMSE SINR.
	src := rng.New(61)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-60))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-63))
	p1, _ := Beamforming(own, 2)
	p2, _ := Beamforming(cross, 2)
	imp := channel.PerfectHardware()
	noise := channel.NoisePerSubcarrierMW()
	powers := EqualSplit(ofdm.NumSubcarriers, 2, channel.BudgetForAntennasMW(4))
	tx1 := NewTransmission(p1, powers, imp)

	prevMean := math.Inf(1)
	for _, scale := range []float64{0.1, 1, 10} {
		p2powers := EqualSplit(ofdm.NumSubcarriers, 2, scale*channel.BudgetForAntennasMW(4))
		tx2 := NewTransmission(p2, p2powers, imp)
		mean := 0.0
		s := StreamSINRs(own, tx1, cross, tx2, noise)
		for k := range s {
			mean += s[k][0] + s[k][1]
		}
		if mean >= prevMean {
			t.Fatalf("SINR did not fall as interference power grew (scale %g)", scale)
		}
		prevMean = mean
	}
}

func TestNullingOrthogonalToEstimate(t *testing.T) {
	// The nulling precoder must lie exactly in the estimated cross
	// channel's nullspace on every subcarrier.
	src := rng.New(63)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-60))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-63))
	est := channel.DefaultImpairments().EstimateCSI(src.Split(3), cross)
	p, err := Nulling(own, est, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range est.Subcarriers {
		prod := est.Subcarriers[k].Mul(p.PerSubcarrier[k])
		if prod.MaxAbs() > 1e-10*est.Subcarriers[k].MaxAbs() {
			t.Fatalf("subcarrier %d: precoder not in estimated nullspace (%g)", k, prod.MaxAbs())
		}
	}
}
