package precoding

import (
	"fmt"
	"testing"

	"copa/internal/channel"
	"copa/internal/rng"
)

// sinrTestTx builds a transmission over a fresh random link: a
// beamforming precoder with an equal-split power grid, with subcarrier
// dropIdx's power zeroed (when ≥ 0) to exercise the Dropped path.
func sinrTestTx(t *testing.T, seed int64, nRx, nTx, streams, dropIdx int) (*channel.Link, *Transmission) {
	t.Helper()
	csi := channel.NewLink(rng.New(seed), nRx, nTx, channel.DBToLinear(-50))
	var ws Workspace
	p, err := BeamformingInto(&ws, nil, csi, streams)
	if err != nil {
		t.Fatal(err)
	}
	nSC := len(csi.Subcarriers)
	powers := make([][]float64, nSC)
	per := channel.DBmToMilliwatts(channel.MaxTxPowerDBm) / float64(nSC*streams)
	for k := range powers {
		powers[k] = make([]float64, streams)
		for s := range powers[k] {
			if k != dropIdx {
				powers[k][s] = per
			}
		}
	}
	return csi, NewTransmission(p, powers, channel.DefaultImpairments())
}

// TestStreamSINRsBatchMatchesScalar holds the batched SINR probe to
// bit-identity against StreamSINRsWS (Nr ≤ 4, so the in-register solve
// kernel replays the scalar operation order exactly), with and without
// cross interference, including dropped cells.
func TestStreamSINRsBatchMatchesScalar(t *testing.T) {
	noise := channel.NoisePerSubcarrierMW()
	cases := []struct {
		nRx, nTx, streams int
		cross             bool
	}{
		{1, 1, 1, false},
		{2, 2, 1, false},
		{2, 2, 2, false},
		{2, 4, 2, true},
		{2, 3, 2, true},
		{4, 4, 4, false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dx%d_s%d_cross=%t", tc.nRx, tc.nTx, tc.streams, tc.cross), func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				own, ownTx := sinrTestTx(t, 300+seed, tc.nRx, tc.nTx, tc.streams, 7)
				var cross *channel.Link
				var crossTx *Transmission
				if tc.cross {
					cross, crossTx = sinrTestTx(t, 400+seed, tc.nRx, tc.nTx, tc.streams, -1)
				}
				var wsB, wsS Workspace
				batched := StreamSINRsBatchWS(&wsB, own, ownTx, cross, crossTx, noise)
				scalar := StreamSINRsWS(&wsS, own, ownTx, cross, crossTx, noise)
				for k := range scalar {
					for s := range scalar[k] {
						if batched[k][s] != scalar[k][s] {
							t.Fatalf("seed %d sc %d stream %d: batched %v != scalar %v",
								seed, k, s, batched[k][s], scalar[k][s])
						}
					}
				}
			}
		})
	}
}
