package precoding

import (
	"math/cmplx"
	"testing"

	"copa/internal/channel"
	"copa/internal/linalg"
)

// Forces every subcarrier to the scalar fallback (tied singular values)
// and checks batched == scalar.
func TestBeamformingFallbackAliasRepro(t *testing.T) {
	const nSC = 8
	csi := &channel.Link{Subcarriers: make([]*linalg.Matrix, nSC)}
	for k := 0; k < nSC; k++ {
		m := linalg.NewMatrix(2, 2)
		// distinct per-subcarrier unitary-ish matrix with tied singular values
		ph := complex(0, float64(k)*0.3)
		m.Data[0] = cmplx.Exp(ph)
		m.Data[1] = 0
		m.Data[2] = 0
		m.Data[3] = cmplx.Exp(-ph)
		csi.Subcarriers[k] = m
	}
	var wsB, wsS Workspace
	batched, err := BeamformingInto(&wsB, nil, csi, 2)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := BeamformingIntoScalar(&wsS, nil, csi, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range scalar.PerSubcarrier {
		if batched.PerSubcarrier[k] == nil {
			t.Fatalf("subcarrier %d: batched precoder entry is nil (never computed)", k)
		}
	}
	if d := maxPrecoderDiff(batched, scalar); d > kernelEquivTol {
		t.Fatalf("batched vs scalar diverge by %g", d)
	}
}
