// Package precoding computes the transmit precoding matrices COPA uses
// (§3.3): SVD transmit beamforming that maximizes power at the intended
// receiver, and nullspace-projection nulling that cancels a sender's
// signal at every antenna of the unintended receiver while beamforming
// within the remaining degrees of freedom. It also provides the MMSE
// receive model: post-MMSE per-stream SINRs under concurrent interfering
// transmissions, which everything downstream (power allocation, strategy
// prediction) is built on.
package precoding

import (
	"errors"
	"math"

	"copa/internal/channel"
	"copa/internal/linalg"
)

// rankTol is the relative singular-value threshold for rank decisions.
const rankTol = 1e-9

// ErrOverconstrained is returned when a sender lacks the spatial degrees
// of freedom to send the requested streams while nulling at every antenna
// of the unintended receiver (§3.4).
var ErrOverconstrained = errors.New("precoding: not enough antennas to null and send the requested streams")

// Precoder holds one sender's per-subcarrier precoding matrices. Each
// matrix is Nt×Ns with orthonormal columns; per-stream transmit power is
// applied separately, so a column carries unit power until scaled.
type Precoder struct {
	// PerSubcarrier[k] is the Nt×Ns precoding matrix on data subcarrier k.
	PerSubcarrier []*linalg.Matrix
	// Streams is Ns.
	Streams int
}

// NTx returns the number of transmit antennas the precoder drives.
func (p *Precoder) NTx() int { return p.PerSubcarrier[0].Rows }

// canonicalize removes the SVD's per-column phase ambiguity: each column
// is rotated so its entry in the first row whose magnitude is significant
// is real and positive. The rotation is transparent to the receiver (a
// per-stream constant phase is absorbed by channel estimation) and makes
// precoders vary smoothly across subcarriers, which both stabilizes the
// iterative allocation and lets the CSI codec delta-encode them.
func canonicalize(m *linalg.Matrix) {
	for c := 0; c < m.Cols; c++ {
		// Pick the first row carrying a meaningful share of the column.
		ref := complex128(0)
		for r := 0; r < m.Rows; r++ {
			if v := m.At(r, c); real(v)*real(v)+imag(v)*imag(v) > 1e-6 {
				ref = v
				break
			}
		}
		if ref == 0 {
			continue
		}
		mag := math.Hypot(real(ref), imag(ref))
		rot := complex(real(ref)/mag, -imag(ref)/mag)
		for r := 0; r < m.Rows; r++ {
			m.Set(r, c, m.At(r, c)*rot)
		}
	}
}

// Beamforming builds the SVD transmit-beamforming precoder toward the
// receiver of csi: on each subcarrier the precoder is the top `streams`
// right singular vectors of the channel, which maximize received power
// per stream (§3.3).
func Beamforming(csi *channel.Link, streams int) (*Precoder, error) {
	var ws Workspace
	return BeamformingInto(&ws, nil, csi, streams)
}

// NullingDOF returns the number of streams a sender with nTx antennas can
// transmit while nulling at nVictim receive antennas: its nullspace
// dimension, assuming a full-rank cross channel.
func NullingDOF(nTx, nVictim int) int {
	d := nTx - nVictim
	if d < 0 {
		return 0
	}
	return d
}

// Nulling builds the nulling precoder of §3.3: on each subcarrier the
// transmission is projected onto the nullspace of the cross channel (so
// it cancels at every antenna of the unintended receiver), and the SVD of
// the projected own channel beamforms the requested streams within that
// nullspace.
//
// own is the sender→own-client CSI, cross the sender→unintended-client
// CSI (both typically noisy estimates). ErrOverconstrained is returned
// when the nullspace is smaller than the requested stream count — the
// §3.4 situation.
func Nulling(own, cross *channel.Link, streams int) (*Precoder, error) {
	var ws Workspace
	return NullingInto(&ws, nil, own, cross, streams)
}

// Scaled returns the precoding matrix for subcarrier k with column i
// scaled to carry powersMW[i] milliwatts (amplitude √p).
func (p *Precoder) Scaled(k int, powersMW []float64) *linalg.Matrix {
	if len(powersMW) != p.Streams {
		panic("precoding: power vector length mismatch")
	}
	m := p.PerSubcarrier[k].Clone()
	for c, pw := range powersMW {
		amp := complex(math.Sqrt(math.Max(0, pw)), 0)
		for r := 0; r < m.Rows; r++ {
			m.Set(r, c, m.At(r, c)*amp)
		}
	}
	return m
}

// DirectMap returns the stock 802.11n spatial mapping used without
// transmit-side CSI: each spatial stream is expanded across its share of
// the transmit antennas (stream s drives antennas a with a mod streams ==
// s, equally weighted). With one stream per antenna this is direct
// mapping; with more antennas than streams it is spatial expansion. This
// is the CSMA baseline's precoder — no beamforming gain, no nulling.
func DirectMap(nTx, streams, subcarriers int) *Precoder {
	if streams < 1 || streams > nTx {
		panic("precoding: DirectMap stream count out of range")
	}
	proto := linalg.NewMatrix(nTx, streams)
	counts := make([]int, streams)
	for a := 0; a < nTx; a++ {
		counts[a%streams]++
	}
	for a := 0; a < nTx; a++ {
		s := a % streams
		proto.Set(a, s, complex(1/math.Sqrt(float64(counts[s])), 0))
	}
	p := &Precoder{Streams: streams, PerSubcarrier: make([]*linalg.Matrix, subcarriers)}
	for k := range p.PerSubcarrier {
		p.PerSubcarrier[k] = proto.Clone()
	}
	return p
}

// Omni returns a rank-1 "omnidirectional" precoder that drives only the
// first antenna — the spatial profile of ITS control frames and of
// single-antenna senders.
func Omni(nTx, subcarriers int) *Precoder {
	p := &Precoder{Streams: 1, PerSubcarrier: make([]*linalg.Matrix, subcarriers)}
	for k := range p.PerSubcarrier {
		m := linalg.NewMatrix(nTx, 1)
		m.Set(0, 0, 1)
		p.PerSubcarrier[k] = m
	}
	return p
}

// Verify checks precoder invariants: orthonormal columns on every
// subcarrier. Returns the worst deviation found.
func (p *Precoder) Verify() float64 {
	worst := 0.0
	for _, m := range p.PerSubcarrier {
		g := m.H().Mul(m).Sub(linalg.Identity(m.Cols))
		if d := g.MaxAbs(); d > worst {
			worst = d
		}
	}
	return worst
}

// ResidualAtVictim measures how much power leaks through truth when a
// precoder computed from estimated CSI is applied and observed at the
// unintended receiver: the per-subcarrier received interference power
// (mW) for the given per-stream powers, summed over victim antennas.
func ResidualAtVictim(trueCross *channel.Link, p *Precoder, powersMW []float64) []float64 {
	out := make([]float64, len(trueCross.Subcarriers))
	for k, h := range trueCross.Subcarriers {
		g := h.Mul(p.Scaled(k, powersMW))
		var pow float64
		for _, v := range g.Data {
			pow += real(v)*real(v) + imag(v)*imag(v)
		}
		out[k] = pow
	}
	return out
}
