// Package api is the wire layer of the allocation service: the
// /v1/allocate request/response types, their two interchangeable
// encodings (JSON, the default, and a compact binary codec negotiated
// via Content-Type/Accept), and the HTTP handler copaserve mounts.
//
// It exists as its own package because three binaries speak this
// protocol: copaserve terminates it, coparouter parses requests just
// far enough to consistent-hash them across backends, and copaload
// generates them. Keeping the types and codecs here means a field
// added to the request is added for all three at once.
package api

import (
	"fmt"
	"time"

	"copa/internal/cliflags"
	"copa/internal/serve"
	"copa/internal/strategy"
)

// Media types the allocate endpoint negotiates. JSON is the default;
// the binary codec is opt-in per request via Content-Type (request
// body) and Accept (response body).
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-copa-bin"
)

// AllocateRequest is the POST /v1/allocate body. Scenario, mode and
// impairments use the same names as the CLI flags.
type AllocateRequest struct {
	Scenario     string  `json:"scenario"`
	Seed         int64   `json:"seed"`
	Mode         string  `json:"mode,omitempty"`
	Impairments  string  `json:"impairments,omitempty"`
	CSIAgeMS     float64 `json:"csi_age_ms,omitempty"`
	MultiDecoder bool    `json:"multi_decoder,omitempty"`
	// Session mode: TimeMS is the controller time of a long-running
	// session; the server derives the CSI epoch and age bucket from it
	// (csi_age_ms is ignored) and the reply carries the allocation's
	// epoch and validity horizon.
	Session bool    `json:"session,omitempty"`
	TimeMS  float64 `json:"time_ms,omitempty"`
}

// Outcome is one strategy's evaluation in wire form.
type Outcome struct {
	Strategy     string     `json:"strategy"`
	Concurrent   bool       `json:"concurrent"`
	SDA          bool       `json:"sda,omitempty"`
	PerClientBps [2]float64 `json:"per_client_bps"`
	PredictedBps [2]float64 `json:"predicted_bps"`
	AggregateBps float64    `json:"aggregate_bps"`
}

// ToOutcome converts an evaluated strategy outcome to wire form.
func ToOutcome(o strategy.Outcome) Outcome {
	return Outcome{
		Strategy:     o.Kind.String(),
		Concurrent:   o.Concurrent,
		SDA:          o.SDA,
		PerClientBps: o.PerClient,
		PredictedBps: o.Predicted,
		AggregateBps: o.Aggregate(),
	}
}

// AllocateResponse is the POST /v1/allocate reply.
type AllocateResponse struct {
	Cached    bool  `json:"cached"`
	AgeBucket int   `json:"age_bucket"`
	Epoch     int64 `json:"epoch,omitempty"`
	// ValidUntilMS is the session controller time at which this
	// allocation's age bucket expires (session mode only).
	ValidUntilMS float64            `json:"valid_until_ms,omitempty"`
	Selected     Outcome            `json:"selected"`
	Outcomes     map[string]Outcome `json:"outcomes"`
}

// ErrorResponse is every non-2xx body. Errors are always JSON,
// whatever encoding the request negotiated.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ParseRequest maps the wire request onto a serve.Request.
func ParseRequest(ar AllocateRequest) (serve.Request, error) {
	var req serve.Request
	sc, err := cliflags.ParseScenario(ar.Scenario)
	if err != nil {
		return req, err
	}
	mode := strategy.ModeMax
	if ar.Mode != "" {
		if mode, err = cliflags.ParseMode(ar.Mode); err != nil {
			return req, err
		}
	}
	imp, err := cliflags.ParseImpairments(ar.Impairments)
	if err != nil {
		return req, err
	}
	if ar.CSIAgeMS < 0 {
		return req, fmt.Errorf("negative csi_age_ms %g", ar.CSIAgeMS)
	}
	if ar.TimeMS < 0 {
		return req, fmt.Errorf("negative time_ms %g", ar.TimeMS)
	}
	if ar.TimeMS > 0 && !ar.Session {
		return req, fmt.Errorf("time_ms requires session mode")
	}
	req = serve.Request{
		Scenario:     sc,
		Seed:         ar.Seed,
		Mode:         mode,
		Impairments:  imp,
		CSIAge:       time.Duration(ar.CSIAgeMS * float64(time.Millisecond)),
		MultiDecoder: ar.MultiDecoder,
		Session:      ar.Session,
		Time:         time.Duration(ar.TimeMS * float64(time.Millisecond)),
	}
	return req, nil
}

// ToResponse converts a served result to wire form.
func ToResponse(res *serve.Result, cached bool) AllocateResponse {
	resp := AllocateResponse{
		Cached:       cached,
		AgeBucket:    res.AgeBucket,
		Epoch:        res.Epoch,
		ValidUntilMS: float64(res.ValidUntil) / float64(time.Millisecond),
		Selected:     ToOutcome(res.Selected),
		Outcomes:     make(map[string]Outcome, len(res.Outcomes)),
	}
	for k, o := range res.Outcomes {
		resp.Outcomes[k.String()] = ToOutcome(o)
	}
	return resp
}
