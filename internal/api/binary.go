package api

import (
	"encoding/binary"
	"fmt"
	"math"
	"mime"
	"sort"
	"strings"
)

// The compact binary codec for /v1/allocate. The HTTP/JSON marshal is
// a measurable fraction of a warm cache hit, so latency-sensitive
// clients (coparouter's load tester, embedded controllers) can send
// Content-Type: application/x-copa-bin and Accept the same type back.
//
// The format is deliberately boring — version byte, little-endian
// fixed-width numbers, uint8-length-prefixed strings — so the golden
// test can pin the exact bytes and any accidental layout change breaks
// loudly. Names (scenario, mode, impairments, strategies) travel as
// strings, not enums, so adding one never re-numbers the wire.
//
// Request layout (binaryVersion, then in order):
//
//	u8 version | str scenario | i64 seed | str mode | str impairments
//	| f64 csi_age_ms | u8 flags (bit0 multi, bit1 session) | f64 time_ms
//
// Response layout:
//
//	u8 version | u8 flags (bit0 cached) | u8 age_bucket | i64 epoch
//	| f64 valid_until_ms | outcome selected | u8 n | n × (str key, outcome)
//
// with outcomes sorted by key, and one outcome encoded as:
//
//	str strategy | u8 flags (bit0 concurrent, bit1 sda)
//	| f64×2 per_client | f64×2 predicted | f64 aggregate
const binaryVersion = 1

// maxBinaryLen bounds a decodable message; both sides reject anything
// larger before allocating.
const maxBinaryLen = 1 << 20

// IsBinary reports whether a Content-Type or Accept header value
// names the binary codec (parameters like charset are ignored).
func IsBinary(header string) bool {
	if header == "" {
		return false
	}
	if mt, _, err := mime.ParseMediaType(header); err == nil {
		return mt == ContentTypeBinary
	}
	// Accept headers can be lists mime.ParseMediaType rejects; a
	// substring scan is enough to honor an explicit opt-in.
	return strings.Contains(header, ContentTypeBinary)
}

type binWriter struct{ buf []byte }

func (w *binWriter) u8(v byte)   { w.buf = append(w.buf, v) }
func (w *binWriter) i64(v int64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *binWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *binWriter) str(s string) error {
	if len(s) > 255 {
		return fmt.Errorf("api: string %q exceeds 255 bytes", s[:32])
	}
	w.u8(byte(len(s)))
	w.buf = append(w.buf, s...)
	return nil
}

type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("api: "+format, args...)
	}
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated message at offset %d (need %d of %d bytes)", r.off, n, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *binReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *binReader) str() string {
	n := int(r.u8())
	return string(r.take(n))
}

// done rejects trailing garbage so a concatenated or corrupted body
// cannot silently decode.
func (r *binReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("api: %d trailing bytes after message", len(r.buf)-r.off)
	}
	return nil
}

// EncodeRequestBinary renders ar in the binary request layout.
func EncodeRequestBinary(ar AllocateRequest) ([]byte, error) {
	w := binWriter{buf: make([]byte, 0, 64)}
	w.u8(binaryVersion)
	if err := w.str(ar.Scenario); err != nil {
		return nil, err
	}
	w.i64(ar.Seed)
	if err := w.str(ar.Mode); err != nil {
		return nil, err
	}
	if err := w.str(ar.Impairments); err != nil {
		return nil, err
	}
	w.f64(ar.CSIAgeMS)
	var flags byte
	if ar.MultiDecoder {
		flags |= 1
	}
	if ar.Session {
		flags |= 2
	}
	w.u8(flags)
	w.f64(ar.TimeMS)
	return w.buf, nil
}

// DecodeRequestBinary parses a binary request body.
func DecodeRequestBinary(data []byte) (AllocateRequest, error) {
	var ar AllocateRequest
	if len(data) > maxBinaryLen {
		return ar, fmt.Errorf("api: request of %d bytes exceeds limit", len(data))
	}
	r := binReader{buf: data}
	if v := r.u8(); r.err == nil && v != binaryVersion {
		return ar, fmt.Errorf("api: unsupported binary version %d", v)
	}
	ar.Scenario = r.str()
	ar.Seed = r.i64()
	ar.Mode = r.str()
	ar.Impairments = r.str()
	ar.CSIAgeMS = r.f64()
	flags := r.u8()
	ar.MultiDecoder = flags&1 != 0
	ar.Session = flags&2 != 0
	ar.TimeMS = r.f64()
	return ar, r.done()
}

func (w *binWriter) outcome(o Outcome) error {
	if err := w.str(o.Strategy); err != nil {
		return err
	}
	var flags byte
	if o.Concurrent {
		flags |= 1
	}
	if o.SDA {
		flags |= 2
	}
	w.u8(flags)
	w.f64(o.PerClientBps[0])
	w.f64(o.PerClientBps[1])
	w.f64(o.PredictedBps[0])
	w.f64(o.PredictedBps[1])
	w.f64(o.AggregateBps)
	return nil
}

func (r *binReader) outcome() Outcome {
	var o Outcome
	o.Strategy = r.str()
	flags := r.u8()
	o.Concurrent = flags&1 != 0
	o.SDA = flags&2 != 0
	o.PerClientBps[0] = r.f64()
	o.PerClientBps[1] = r.f64()
	o.PredictedBps[0] = r.f64()
	o.PredictedBps[1] = r.f64()
	o.AggregateBps = r.f64()
	return o
}

// EncodeResponseBinary renders resp in the binary response layout.
// Outcome keys are sorted, so equal responses encode to equal bytes —
// the property the router smoke test's byte-identity cmp leans on.
func EncodeResponseBinary(resp AllocateResponse) ([]byte, error) {
	w := binWriter{buf: make([]byte, 0, 64+64*len(resp.Outcomes))}
	w.u8(binaryVersion)
	var flags byte
	if resp.Cached {
		flags |= 1
	}
	w.u8(flags)
	if resp.AgeBucket < 0 || resp.AgeBucket > 255 {
		return nil, fmt.Errorf("api: age bucket %d out of range", resp.AgeBucket)
	}
	w.u8(byte(resp.AgeBucket))
	w.i64(resp.Epoch)
	w.f64(resp.ValidUntilMS)
	if err := w.outcome(resp.Selected); err != nil {
		return nil, err
	}
	if len(resp.Outcomes) > 255 {
		return nil, fmt.Errorf("api: %d outcomes exceed limit", len(resp.Outcomes))
	}
	keys := make([]string, 0, len(resp.Outcomes))
	for k := range resp.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u8(byte(len(keys)))
	for _, k := range keys {
		if err := w.str(k); err != nil {
			return nil, err
		}
		if err := w.outcome(resp.Outcomes[k]); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}

// DecodeResponseBinary parses a binary response body.
func DecodeResponseBinary(data []byte) (AllocateResponse, error) {
	var resp AllocateResponse
	if len(data) > maxBinaryLen {
		return resp, fmt.Errorf("api: response of %d bytes exceeds limit", len(data))
	}
	r := binReader{buf: data}
	if v := r.u8(); r.err == nil && v != binaryVersion {
		return resp, fmt.Errorf("api: unsupported binary version %d", v)
	}
	flags := r.u8()
	resp.Cached = flags&1 != 0
	resp.AgeBucket = int(r.u8())
	resp.Epoch = r.i64()
	resp.ValidUntilMS = r.f64()
	resp.Selected = r.outcome()
	n := int(r.u8())
	resp.Outcomes = make(map[string]Outcome, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		resp.Outcomes[k] = r.outcome()
	}
	return resp, r.done()
}
