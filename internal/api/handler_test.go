package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"copa/internal/serve"
)

func testServer(t *testing.T) *serve.Server {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 1, CacheEntries: 32, Coherence: 10 * time.Millisecond})
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestContentNegotiation drives one request through every codec
// pairing and checks the decoded payloads agree: the codec is a
// transport detail, never a semantic one.
func TestContentNegotiation(t *testing.T) {
	ts := httptest.NewServer(NewHandler(testServer(t)))
	defer ts.Close()

	ar := AllocateRequest{Scenario: "4x2", Seed: 3}
	jsonBody, err := json.Marshal(ar)
	if err != nil {
		t.Fatal(err)
	}
	binBody, err := EncodeRequestBinary(ar)
	if err != nil {
		t.Fatal(err)
	}

	post := func(body []byte, contentType, accept string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	// JSON in, JSON out (the default pairing).
	resp, body := post(jsonBody, ContentTypeJSON, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json request: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeJSON {
		t.Fatalf("json request: content type %q", ct)
	}
	var viaJSON AllocateResponse
	if err := json.Unmarshal(body, &viaJSON); err != nil {
		t.Fatal(err)
	}
	if viaJSON.Selected.Strategy == "" {
		t.Fatal("json response missing selected strategy")
	}

	// Binary in, binary out.
	resp, body = post(binBody, ContentTypeBinary, ContentTypeBinary)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary request: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
		t.Fatalf("binary request: content type %q", ct)
	}
	viaBin, err := DecodeResponseBinary(body)
	if err != nil {
		t.Fatal(err)
	}
	// Both decoders saw the same cached result.
	if viaBin.Selected != viaJSON.Selected || viaBin.Epoch != viaJSON.Epoch {
		t.Fatalf("codecs disagree: binary %+v json %+v", viaBin.Selected, viaJSON.Selected)
	}
	if !viaBin.Cached {
		t.Error("second request for the same key was not served from cache")
	}

	// Binary in, JSON out: Accept wins independently of Content-Type.
	resp, body = post(binBody, ContentTypeBinary, ContentTypeJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed request: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &viaJSON); err != nil {
		t.Fatalf("mixed request: body is not JSON: %v", err)
	}

	// Malformed binary body is a 400, and errors are always JSON so
	// every client can parse them.
	resp, body = post([]byte{0xff, 0x01}, ContentTypeBinary, ContentTypeBinary)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage binary: status %d", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("error body not JSON error: %v %q", err, body)
	}
}

func TestHealthzExposesCacheStats(t *testing.T) {
	ts := httptest.NewServer(NewHandler(testServer(t)))
	defer ts.Close()

	for i := 0; i < 2; i++ { // second hit is a cache hit
		resp, err := http.Post(ts.URL+"/v1/allocate", ContentTypeJSON,
			bytes.NewReader([]byte(`{"scenario":"4x2","seed":1}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Cache.Misses < 1 || hz.Cache.Hits < 1 {
		t.Errorf("cache stats not populated: %+v", hz.Cache)
	}
	if hz.Cache.Entries < 1 || hz.Cache.Capacity < 1 {
		t.Errorf("cache occupancy not populated: %+v", hz.Cache)
	}
}
