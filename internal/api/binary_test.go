package api

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"
)

// goldenRequest/goldenResponse are fixed wire values whose encoded
// bytes are pinned below: the codec's layout is a cross-binary,
// cross-version contract (coparouter and copaload decode what
// copaserve encodes), so any layout change must be deliberate and
// show up here as a failing golden.
var goldenRequest = AllocateRequest{
	Scenario:     "4x2",
	Seed:         -7,
	Mode:         "fair",
	Impairments:  "default",
	CSIAgeMS:     12.5,
	MultiDecoder: true,
	Session:      true,
	TimeMS:       250,
}

var goldenResponse = AllocateResponse{
	Cached:       true,
	AgeBucket:    2,
	Epoch:        3,
	ValidUntilMS: 93.75,
	Selected: Outcome{
		Strategy:     "Conc-Null",
		Concurrent:   true,
		PerClientBps: [2]float64{1e6, 2e6},
		PredictedBps: [2]float64{1.5e6, 2.5e6},
		AggregateBps: 3e6,
	},
	Outcomes: map[string]Outcome{
		"CSMA": {
			Strategy:     "CSMA",
			PerClientBps: [2]float64{5e5, 5e5},
			PredictedBps: [2]float64{5e5, 5e5},
			AggregateBps: 1e6,
		},
		"Conc-Null": {
			Strategy:     "Conc-Null",
			Concurrent:   true,
			SDA:          true,
			PerClientBps: [2]float64{1e6, 2e6},
			PredictedBps: [2]float64{1.5e6, 2.5e6},
			AggregateBps: 3e6,
		},
	},
}

const (
	goldenRequestHex = "0103347832f9ffffffffffffff04666169720764656661756c74000000000000" +
		"2940030000000000406f40"
	goldenResponseHex = "0101020300000000000000000000000070574009436f6e632d4e756c6c010000" +
		"000080842e410000000080843e410000000060e3364100000000d01243410000" +
		"000060e34641020443534d410443534d41000000000080841e410000000080841e" +
		"410000000080841e410000000080841e410000000080842e4109436f6e632d4e" +
		"756c6c09436f6e632d4e756c6c030000000080842e410000000080843e410000" +
		"000060e3364100000000d01243410000000060e34641"
)

func TestBinaryRequestGolden(t *testing.T) {
	data, err := EncodeRequestBinary(goldenRequest)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(data); got != goldenRequestHex {
		t.Errorf("request encoding drifted:\n got %s\nwant %s", got, goldenRequestHex)
	}
	back, err := DecodeRequestBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != goldenRequest {
		t.Errorf("round trip: got %+v want %+v", back, goldenRequest)
	}
}

func TestBinaryResponseGolden(t *testing.T) {
	data, err := EncodeResponseBinary(goldenResponse)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(data); got != goldenResponseHex {
		t.Errorf("response encoding drifted:\n got %s\nwant %s", got, goldenResponseHex)
	}
	back, err := DecodeResponseBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, goldenResponse) {
		t.Errorf("round trip: got %+v want %+v", back, goldenResponse)
	}
	// Deterministic bytes: a second encode of the same map must match
	// (keys are sorted on the wire).
	again, err := EncodeResponseBinary(goldenResponse)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("encoding is not deterministic across calls")
	}
}

func TestBinaryDecodeRejectsCorruption(t *testing.T) {
	data, err := EncodeRequestBinary(goldenRequest)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never panic or succeed.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeRequestBinary(data[:n]); err == nil {
			t.Fatalf("truncated request of %d bytes decoded", n)
		}
	}
	if _, err := DecodeRequestBinary(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeRequestBinary([]byte{99}); err == nil {
		t.Error("unknown version accepted")
	}

	rdata, err := EncodeResponseBinary(goldenResponse)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(rdata); n += 7 {
		if _, err := DecodeResponseBinary(rdata[:n]); err == nil {
			t.Fatalf("truncated response of %d bytes decoded", n)
		}
	}
}

func TestIsBinary(t *testing.T) {
	for header, want := range map[string]bool{
		"":                                       false,
		"application/json":                       false,
		ContentTypeBinary:                        true,
		ContentTypeBinary + "; q=0.9":            true,
		"application/json, " + ContentTypeBinary: true,
		"text/plain":                             false,
	} {
		if got := IsBinary(header); got != want {
			t.Errorf("IsBinary(%q) = %v, want %v", header, got, want)
		}
	}
}
