package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"copa/internal/obs"
	"copa/internal/serve"
)

// HealthzResponse wraps the pool stats with the binary's build
// identity, so one probe answers both "is it healthy" and "what is it
// running". Stats carries the per-shard result-cache readings (hits,
// misses, evictions, entries) the router uses to observe shard
// balance.
type HealthzResponse struct {
	serve.Stats
	Build obs.BuildInfo `json:"build"`
}

// WriteJSON writes v as a JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the standard JSON error body. Errors are JSON even
// for binary-negotiated requests: they are for humans and logs.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxRequestBody bounds an allocate request body; both codecs fit a
// request in well under a kilobyte.
const maxRequestBody = 1 << 20

// DecodeRequestBody decodes an allocate request according to the
// request's Content-Type: the binary codec when negotiated, JSON
// otherwise.
func DecodeRequestBody(contentType string, body []byte) (AllocateRequest, error) {
	var ar AllocateRequest
	if IsBinary(contentType) {
		return DecodeRequestBinary(body)
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		return ar, fmt.Errorf("bad request body: %w", err)
	}
	return ar, nil
}

// NewHandler routes the allocation daemon: the allocation endpoint, a
// health probe reporting queue/cache occupancy and build identity, and
// the obs debug endpoints (/metrics OpenMetrics exposition,
// /debug/vars, /debug/metrics, /debug/spans, /debug/buildinfo,
// /debug/pprof).
//
// /v1/allocate participates in distributed tracing: an incoming W3C
// traceparent header continues the caller's trace (one TraceID spans
// client → coparouter → this backend), otherwise the handler roots a
// new one (subject to -trace-sample), and either way the response
// echoes a traceparent naming the request's trace so the client can
// fetch the stitched tree from /debug/spans?trace=<id>.
//
// The endpoint content-negotiates its codec per request: a body sent
// with Content-Type: application/x-copa-bin decodes via the compact
// binary codec, and Accept: application/x-copa-bin selects a binary
// response; JSON remains the default on both sides.
func NewHandler(srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.ExtractHTTP(r.Context(), r.Header)
		ctx, span := obs.StartSpan(ctx, "http.allocate")
		if sc := span.Context(); sc.Valid() {
			w.Header().Set(obs.TraceparentHeader, sc.Traceparent())
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if err == nil && len(body) > maxRequestBody {
			err = fmt.Errorf("request body exceeds %d bytes", maxRequestBody)
		}
		if err != nil {
			span.EndErr(err)
			WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ar, err := DecodeRequestBody(r.Header.Get("Content-Type"), body)
		if err != nil {
			span.EndErr(err)
			WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		req, err := ParseRequest(ar)
		if err != nil {
			span.EndErr(err)
			WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		span.SetAttr("scenario", ar.Scenario)
		res, cached, err := srv.Allocate(ctx, req)
		span.SetAttr("cached", fmt.Sprintf("%t", cached))
		span.EndErr(err)
		if err != nil {
			switch {
			case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrServerClosed):
				w.Header().Set("Retry-After", "1")
				WriteError(w, http.StatusServiceUnavailable, "%v", err)
			case errors.Is(err, serve.ErrExpired), errors.Is(err, context.DeadlineExceeded):
				WriteError(w, http.StatusGatewayTimeout, "%v", err)
			default:
				WriteError(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}
		resp := ToResponse(res, cached)
		if IsBinary(r.Header.Get("Accept")) {
			data, err := EncodeResponseBinary(resp)
			if err != nil {
				WriteError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			w.Header().Set("Content-Type", ContentTypeBinary)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(data)
			return
		}
		WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := srv.Stats()
		status := http.StatusOK
		if st.Draining {
			status = http.StatusServiceUnavailable
		}
		WriteJSON(w, status, HealthzResponse{Stats: st, Build: obs.ReadBuildInfo()})
	})
	dbg := obs.DebugMux()
	mux.Handle("/debug/", dbg)
	mux.Handle("/metrics", dbg)
	return mux
}
