// Package power implements COPA's power-allocation algorithms (§3.2):
//
//   - NoPA — the status quo: equal power on every subcarrier.
//   - Equi-SNR (Algorithm 1) — sort subcarriers by quality, consider
//     dropping the worst i, equalize received S(I)NR on the rest, and keep
//     the drop count that maximizes predicted 802.11 throughput.
//   - Equi-SINR (Fig. 6) — the concurrent, iterative variant: per-stream
//     Equi-SNR against the current interference, recompute the
//     cross-stream interference, iterate, remembering the best solution.
//   - Classic waterfilling — the Gaussian-input optimum, as a baseline.
//   - Mercury/water-filling — the optimum for discrete QAM inputs
//     (Lozano, Tulino, Verdú), including its natural subcarrier cutoff,
//     plus the iterated concurrent variant the paper calls COPA+.
//
// All single-stream allocators work on a vector of per-subcarrier SINR
// coefficients: coef[k] is the linear SINR stream power p_k buys per
// milliwatt on subcarrier k with everything else held fixed (see
// precoding.SINRCoefficients).
package power

import (
	"copa/internal/linalg"
	"copa/internal/ofdm"
	"copa/internal/precoding"
)

// Allocation is the outcome of allocating one stream's power budget
// across subcarriers.
type Allocation struct {
	// PowerMW[k] is the power assigned to subcarrier k (0 = dropped).
	PowerMW []float64
	// Rate is the predicted best 802.11 rate and goodput for the
	// resulting per-subcarrier SINRs.
	Rate ofdm.StreamRate
	// Dropped is the number of subcarriers carrying no power.
	Dropped int
}

// predictedSINRs converts an allocation back to the per-subcarrier SINRs
// implied by the linearized coefficients.
func predictedSINRs(powerMW, coef []float64) []float64 {
	sinrs := make([]float64, len(powerMW))
	predictedSINRsInto(sinrs, powerMW, coef)
	return sinrs
}

// predictedSINRsInto writes the per-subcarrier SINRs implied by the
// linearized coefficients into dst (fully overwritten).
func predictedSINRsInto(dst, powerMW, coef []float64) {
	for k, p := range powerMW {
		if p <= 0 {
			dst[k] = precoding.Dropped
		} else {
			dst[k] = p * coef[k]
		}
	}
}

// NoPA returns the status-quo allocation: budget split equally over all
// subcarriers, nothing dropped (§2's baseline).
func NoPA(coef []float64, budgetMW float64) Allocation {
	n := len(coef)
	powers := make([]float64, n)
	per := budgetMW / float64(n)
	for k := range powers {
		powers[k] = per
	}
	return Allocation{
		PowerMW: powers,
		Rate:    ofdm.BestRate(predictedSINRs(powers, coef)),
	}
}

// EquiSNR implements Algorithm 1 for one stream: for every candidate drop
// count i, give no power to the i weakest subcarriers, equalize the
// received S(I)NR on the rest (p_k ∝ 1/coef_k), predict the best 802.11
// rate, and keep the drop count that maximizes throughput.
//
// When coef is a pure-SNR linearization this is the paper's Equi-SNR; fed
// interference-aware coefficients it is one Equi-SINR step.
func EquiSNR(coef []float64, budgetMW float64) Allocation {
	var ws linalg.Workspace
	a := EquiSNRWS(&ws, coef, budgetMW)
	a.PowerMW = append([]float64(nil), a.PowerMW...)
	return a
}

// EquiSNRWS is EquiSNR with all scratch and the returned power vector
// carved from ws: allocation-free once ws has warmed up. The returned
// Allocation.PowerMW lives in ws (see linalg.Workspace ownership rules).
func EquiSNRWS(ws *linalg.Workspace, coef []float64, budgetMW float64) Allocation {
	mEquiSNRCalls.Inc()
	n := len(coef)
	order := ws.Ints(n)
	for i := range order {
		order[i] = i
	}
	linalg.SortOrderAsc(order, coef)

	best := Allocation{PowerMW: ws.Float64s(n)}
	powers := ws.Float64s(n)
	sinrs := ws.Float64s(n)
	for drop := 0; drop < n; drop++ {
		// Equalize SINR on the kept subcarriers: p_k = T/coef_k with
		// T = budget / Σ 1/coef_k.
		var invSum float64
		usable := 0
		for _, k := range order[drop:] {
			if coef[k] > 0 {
				invSum += 1 / coef[k]
				usable++
			}
		}
		if usable == 0 {
			continue
		}
		// Dropping more subcarriers only shrinks the zero-FER rate ceiling
		// (usable is non-increasing in drop), so once even the top MCS at
		// zero FER cannot strictly beat the incumbent, no later drop count
		// can either — every remaining candidate would be rejected by the
		// strict > below. Skipping them changes nothing but the wall clock.
		if ofdm.StreamGoodputCeiling(usable) <= best.Rate.GoodputBps {
			break
		}
		target := budgetMW / invSum
		clear(powers)
		for _, k := range order[drop:] {
			if coef[k] > 0 {
				powers[k] = target / coef[k]
			}
		}
		predictedSINRsInto(sinrs, powers, coef)
		rate := ofdm.BestRate(sinrs)
		if rate.GoodputBps > best.Rate.GoodputBps {
			copy(best.PowerMW, powers)
			best.Rate = rate
			best.Dropped = n - usable
		}
	}
	if best.Rate.GoodputBps == 0 {
		// Nothing decodable at any drop count: fall back to equal split
		// so the transmission descriptor stays well-formed.
		mDropCount.ObserveInt(0)
		per := budgetMW / float64(n)
		for k := range best.PowerMW {
			best.PowerMW[k] = per
		}
		predictedSINRsInto(sinrs, best.PowerMW, coef)
		best.Rate = ofdm.BestRate(sinrs)
		best.Dropped = 0
		return best
	}
	mDropCount.ObserveInt(best.Dropped)
	return best
}
