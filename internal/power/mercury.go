package power

import (
	"math"
	"sort"
	"sync"

	"copa/internal/ofdm"
)

// mmseTable tabulates the MMSE function of a discrete constellation:
// mmse(γ) = E|x − E[x|y]|² for y = √γ·x + n, n ~ CN(0,1), with x drawn
// uniformly from the unit-average-energy constellation. This is the
// derivative of the constellation's mutual information with respect to
// SNR (the I-MMSE relation), which is what mercury/water-filling levels.
type mmseTable struct {
	snr  []float64 // ascending γ grid
	mmse []float64 // descending mmse values; mmse(0) = 1
}

// pamPoints returns the per-dimension PAM alphabet of a square QAM (or
// BPSK/QPSK) constellation, scaled so the full complex constellation has
// unit average energy. For BPSK the imaginary dimension carries nothing.
func pamPoints(m ofdm.Modulation) (points []float64, dims int) {
	switch m {
	case ofdm.BPSK:
		return []float64{-1, 1}, 1
	case ofdm.QPSK:
		s := 1 / math.Sqrt2
		return []float64{-s, s}, 2
	case ofdm.QAM16:
		s := 1 / math.Sqrt(10)
		return []float64{-3 * s, -s, s, 3 * s}, 2
	case ofdm.QAM64:
		s := 1 / math.Sqrt(42)
		return []float64{-7 * s, -5 * s, -3 * s, -s, s, 3 * s, 5 * s, 7 * s}, 2
	}
	panic("power: unknown modulation")
}

// pamMMSE numerically computes the one-dimensional MMSE of estimating a
// PAM symbol a from y = √γ·a + n, n ~ N(0, 1/2) (one dimension of unit
// complex noise), by trapezoid integration over y.
func pamMMSE(points []float64, gamma float64) float64 {
	if gamma <= 0 {
		// Prior variance of the PAM alphabet.
		var mean, e2 float64
		for _, a := range points {
			mean += a
			e2 += a * a
		}
		n := float64(len(points))
		mean /= n
		return e2/n - mean*mean
	}
	const sigma2 = 0.5
	sg := math.Sqrt(gamma)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, a := range points {
		lo = math.Min(lo, sg*a)
		hi = math.Max(hi, sg*a)
	}
	span := 7 * math.Sqrt(sigma2)
	lo, hi = lo-span, hi+span
	const steps = 1600
	dy := (hi - lo) / steps
	prior := 1 / float64(len(points))
	var integral float64
	for i := 0; i <= steps; i++ {
		y := lo + float64(i)*dy
		var wsum, awsum float64
		for _, a := range points {
			d := y - sg*a
			w := math.Exp(-d * d / (2 * sigma2))
			wsum += w
			awsum += a * w
		}
		if wsum == 0 {
			continue
		}
		est := awsum / wsum
		var val float64
		for _, a := range points {
			d := y - sg*a
			w := math.Exp(-d*d/(2*sigma2)) / math.Sqrt(2*math.Pi*sigma2)
			e := a - est
			val += prior * w * e * e
		}
		weight := 1.0
		if i == 0 || i == steps {
			weight = 0.5
		}
		integral += weight * val * dy
	}
	return integral
}

var (
	mmseTables   map[ofdm.Modulation]*mmseTable
	mmseBuildOne sync.Once
)

// tableFor returns the (lazily built, cached) MMSE table for a modulation.
func tableFor(m ofdm.Modulation) *mmseTable {
	mmseBuildOne.Do(func() {
		mmseTables = make(map[ofdm.Modulation]*mmseTable)
		for _, mod := range []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK, ofdm.QAM16, ofdm.QAM64} {
			points, dims := pamPoints(mod)
			const n = 140
			t := &mmseTable{snr: make([]float64, 0, n+1), mmse: make([]float64, 0, n+1)}
			t.snr = append(t.snr, 0)
			t.mmse = append(t.mmse, pamMMSE(points, 0)*float64(dims))
			for i := 0; i < n; i++ {
				gamma := math.Pow(10, -3+7*float64(i)/(n-1)) // 1e-3 … 1e4
				v := pamMMSE(points, gamma) * float64(dims)
				t.snr = append(t.snr, gamma)
				t.mmse = append(t.mmse, v)
			}
			// Enforce monotonicity against integration jitter.
			for i := 1; i < len(t.mmse); i++ {
				if t.mmse[i] > t.mmse[i-1] {
					t.mmse[i] = t.mmse[i-1]
				}
			}
			mmseTables[mod] = t
		}
	})
	return mmseTables[m]
}

// MMSE returns the constellation's MMSE at linear SNR gamma, interpolated
// from the table (exact 1.0 at gamma = 0, clamped to ~0 beyond the grid).
func MMSE(m ofdm.Modulation, gamma float64) float64 {
	t := tableFor(m)
	if gamma <= 0 {
		return t.mmse[0]
	}
	last := len(t.snr) - 1
	if gamma >= t.snr[last] {
		return t.mmse[last]
	}
	i := sort.SearchFloat64s(t.snr, gamma)
	if i == 0 {
		return t.mmse[0]
	}
	// Linear interpolation in log-γ.
	g0, g1 := t.snr[i-1], t.snr[i]
	var frac float64
	if g0 == 0 {
		frac = gamma / g1
	} else {
		frac = (math.Log(gamma) - math.Log(g0)) / (math.Log(g1) - math.Log(g0))
	}
	return t.mmse[i-1] + frac*(t.mmse[i]-t.mmse[i-1])
}

// mmseInverse returns the γ at which the constellation's MMSE equals v
// (v ∈ (0, 1]), by bisection over the tabulated, monotone function.
func mmseInverse(m ofdm.Modulation, v float64) float64 {
	t := tableFor(m)
	if v >= t.mmse[0] {
		return 0
	}
	last := len(t.mmse) - 1
	if v <= t.mmse[last] {
		return t.snr[last]
	}
	lo, hi := 0.0, t.snr[last]
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if MMSE(m, mid) > v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MercuryWaterfill computes the optimal power allocation for a stream
// carrying constellation m over subcarriers with SINR-per-mW coefficients
// coef, under total budget budgetMW (Lozano–Tulino–Verdú mercury/water-
// filling). The KKT condition is coef_k · mmse(p_k·coef_k) = λ for active
// subcarriers; subcarriers with coef_k ≤ λ receive no power at all —
// the built-in cutoff that subsumes subcarrier selection.
func MercuryWaterfill(m ofdm.Modulation, coef []float64, budgetMW float64) Allocation {
	mMercuryCalls.Inc()
	spend := func(lambda float64) ([]float64, float64) {
		powers := make([]float64, len(coef))
		var total float64
		for k, g := range coef {
			if g <= lambda || g <= 0 {
				continue
			}
			gamma := mmseInverse(m, lambda/g)
			powers[k] = gamma / g
			total += powers[k]
		}
		return powers, total
	}

	gmax := 0.0
	for _, g := range coef {
		gmax = math.Max(gmax, g)
	}
	if gmax <= 0 {
		return NoPA(coef, budgetMW)
	}
	// λ → 0 spends everything available; λ → gmax spends nothing.
	lo, hi := gmax*1e-15, gmax
	for i := 0; i < 64; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: λ spans decades
		if _, total := spend(mid); total > budgetMW {
			lo = mid
		} else {
			hi = mid
		}
	}
	powers, total := spend(math.Sqrt(lo * hi))
	// Normalize any residual budget error.
	if total > 0 {
		scale := budgetMW / total
		for k := range powers {
			powers[k] *= scale
		}
	}
	dropped := 0
	for _, p := range powers {
		if p <= 0 {
			dropped++
		}
	}
	return Allocation{
		PowerMW: powers,
		Rate:    ofdm.BestRate(predictedSINRs(powers, coef)),
		Dropped: dropped,
	}
}

// MercuryBest runs mercury/water-filling for every constellation in the
// MCS table and returns the allocation whose predicted 802.11 throughput
// is highest — the inner step of the paper's COPA+ (§4.2).
func MercuryBest(coef []float64, budgetMW float64) Allocation {
	var best Allocation
	for _, m := range []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK, ofdm.QAM16, ofdm.QAM64} {
		a := MercuryWaterfill(m, coef, budgetMW)
		if a.Rate.GoodputBps > best.Rate.GoodputBps || best.PowerMW == nil {
			best = a
		}
	}
	return best
}
