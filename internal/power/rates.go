package power

import (
	"copa/internal/channel"
	"copa/internal/ofdm"
	"copa/internal/precoding"
)

// StreamRatesFor predicts the per-stream 802.11 rates a client achieves
// for a given pair of concurrent transmissions: it computes post-MMSE
// per-subcarrier SINRs over the supplied channels and picks the best MCS
// per stream. cross/crossTx may be nil for a sole sender.
func StreamRatesFor(own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission, noisePerSCMW float64) []ofdm.StreamRate {
	var ws precoding.Workspace
	return StreamRatesForWS(&ws, own, tx, cross, crossTx, noisePerSCMW)
}

// StreamRatesForWS is StreamRatesFor with SINR scratch carved from ws.
// The returned slice is heap-allocated and safe to retain; only the
// intermediate SINR matrices live in ws.
func StreamRatesForWS(ws *precoding.Workspace, own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission, noisePerSCMW float64) []ofdm.StreamRate {
	sinrs := precoding.StreamSINRsWS(ws, own, tx, cross, crossTx, noisePerSCMW)
	rates := make([]ofdm.StreamRate, tx.Precoder.Streams)
	col := ws.Float64s(len(sinrs))
	for s := range rates {
		for k := range sinrs {
			col[k] = sinrs[k][s]
		}
		rates[s] = ofdm.BestRate(col)
	}
	return rates
}

// ClientRateFor predicts the whole transmission's rate at a client under
// 802.11n's equal-modulation constraint: a single MCS and decoder span
// all spatial streams, so every used subcarrier–stream cell feeds one
// frame (§2.1).
func ClientRateFor(own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission, noisePerSCMW float64) ofdm.JointRate {
	var ws precoding.Workspace
	sinrs := precoding.StreamSINRsWS(&ws, own, tx, cross, crossTx, noisePerSCMW)
	return ofdm.JointBestRate(sinrs)
}

// GoodputFor is the goodput of the client's joint best rate.
func GoodputFor(own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission, noisePerSCMW float64) float64 {
	return ClientRateFor(own, tx, cross, crossTx, noisePerSCMW).GoodputBps
}

// GoodputForWS is GoodputFor with SINR scratch carved from ws.
func GoodputForWS(ws *precoding.Workspace, own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission, noisePerSCMW float64) float64 {
	sinrs := precoding.StreamSINRsWS(ws, own, tx, cross, crossTx, noisePerSCMW)
	return ofdm.JointBestRate(sinrs).GoodputBps
}

// MultiDecoderGoodputFor predicts goodput when the receiver can run an
// independent rate (and decoder) per subcarrier — the Fig. 14
// hypothetical. Same SINR model as GoodputFor, different rate mapping.
func MultiDecoderGoodputFor(own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission, noisePerSCMW float64) float64 {
	var ws precoding.Workspace
	return MultiDecoderGoodputForWS(&ws, own, tx, cross, crossTx, noisePerSCMW)
}

// MultiDecoderGoodputForWS is MultiDecoderGoodputFor with SINR scratch
// carved from ws.
func MultiDecoderGoodputForWS(ws *precoding.Workspace, own *channel.Link, tx *precoding.Transmission, cross *channel.Link, crossTx *precoding.Transmission, noisePerSCMW float64) float64 {
	sinrs := precoding.StreamSINRsWS(ws, own, tx, cross, crossTx, noisePerSCMW)
	var total float64
	col := ws.Float64s(len(sinrs))
	for s := 0; s < tx.Precoder.Streams; s++ {
		for k := range sinrs {
			col[k] = sinrs[k][s]
		}
		total += ofdm.MultiDecoderThroughputBps(col)
	}
	return total
}
