package power

import (
	"math"

	"copa/internal/channel"
	"copa/internal/ofdm"
	"copa/internal/precoding"
)

// InnerAllocator is the single-stream allocation step plugged into the
// Equi-SINR iteration: EquiSNR for COPA, MercuryBest for COPA+.
type InnerAllocator func(coef []float64, budgetMW float64) Allocation

// SenderCSI bundles the channel knowledge the leader AP has about one
// sender when computing a joint allocation (all links are CSI estimates,
// not ground truth).
type SenderCSI struct {
	// Own is the sender → its-own-client channel estimate.
	Own *channel.Link
	// Cross is the sender → other-client channel estimate; nil when the
	// sender is transmitting alone.
	Cross *channel.Link
	// Precoder is the sender's chosen spatial profile.
	Precoder *precoding.Precoder
	// BudgetMW is the sender's total transmit power budget.
	BudgetMW float64
}

// Config parameterizes the iterative allocation.
type Config struct {
	Impairments  channel.Impairments
	NoisePerSCMW float64
	// MaxIters bounds the Equi-SINR iteration (Fig. 6); the paper's
	// algorithm iterates until convergence or a limit.
	MaxIters int
	// Inner is the per-stream allocator; defaults to EquiSNR.
	Inner InnerAllocator
	// JointInner, when set, replaces the per-stream loop entirely with a
	// joint allocation over all (subcarrier, stream) cells (see
	// JointAware). Inner is ignored for senders with >1 stream when set.
	// The coefs rows passed in are workspace-carved scratch: read them,
	// don't retain them.
	JointInner func(coefs [][]float64, budgetPerStreamMW float64) [][]float64

	// Scratch, when set, is the workspace arena the iteration carves its
	// SINR and allocation scratch from; the call resets it freely, so the
	// caller must not hold workspace-carved values across Sequential or
	// Concurrent. Leave nil to use a private arena per call.
	Scratch *precoding.Workspace

	// Warm, when set, seeds the Jacobi iteration from a previous
	// Result's power grids instead of the equal-split cold start — the
	// incremental re-allocation hook (internal/drift): on a channel that
	// has barely drifted the previous epoch's solution is already near
	// the fixed point and the iteration settles in one or two sweeps.
	// Ignored unless the shape (sender count, subcarriers, streams)
	// matches. The iteration still snapshots the best state seen, so a
	// stale warm start can slow convergence but never worsen the result
	// below the first re-allocated sweep.
	Warm *Result
	// WarmDrops[i][s], when non-nil, is sender i stream s's previous
	// Allocation.Dropped; the per-stream inner solves then run the
	// warm-started Equi-SNR scan (EquiSNRWarmWS — bit-identical results,
	// cheaper scan). Entries < 0 mean "no hint" for that stream. The
	// entries are refreshed in place after every Jacobi sweep, so a
	// caller that keeps the slice across epochs hands the next solve
	// up-to-date hints for free. Only consulted when Inner is nil.
	WarmDrops [][]int
	// Patience, when > 0, stops the Jacobi iteration after this many
	// consecutive sweeps without a strictly better best-so-far
	// allocation. The best-response dynamics track their best state and
	// typically peak within the first sweeps before oscillating (the
	// discrete Equi-SNR drop levels cycle rather than contract), so a
	// small patience keeps the result on instances whose best arrives
	// late while skipping the dead tail everywhere else — the drift
	// controller's incremental re-allocation runs with Patience 2.
	// Zero (the default) always runs MaxIters sweeps.
	Patience int
}

// DefaultConfig returns the standard COPA allocation configuration.
// Inner is left nil, which means EquiSNR: keeping the default as nil lets
// the iteration take the allocation-free EquiSNRWS fast path.
func DefaultConfig() Config {
	return Config{
		Impairments:  channel.DefaultImpairments(),
		NoisePerSCMW: channel.NoisePerSubcarrierMW(),
		MaxIters:     12,
	}
}

// Result is the outcome of a joint (or solo) allocation.
type Result struct {
	// Tx[i] is sender i's finished transmission descriptor.
	Tx []*precoding.Transmission
	// StreamRates[i] are sender i's predicted per-stream rates (on the
	// CSI estimates the allocation was computed from).
	StreamRates [][]ofdm.StreamRate
	// Goodput[i] is the predicted total goodput of sender i in bits/s.
	Goodput []float64
	// Iterations actually performed.
	Iterations int
	// Converged reports whether the iteration settled before MaxIters.
	Converged bool
}

// Aggregate returns the predicted aggregate goodput across senders.
func (r *Result) Aggregate() float64 {
	var t float64
	for _, g := range r.Goodput {
		t += g
	}
	return t
}

// Sequential allocates power for a sender transmitting alone (COPA-SEQ's
// building block): Equi-SNR per stream, iterated a few times so that
// inter-stream interference between the sender's own MIMO streams is
// accounted for.
func Sequential(s SenderCSI, cfg Config) *Result {
	return iterate([]SenderCSI{s}, cfg)
}

// Concurrent jointly allocates power for two senders transmitting
// concurrently (§3.2.1, Fig. 6): starting from equal split, each stream
// of each sender is re-allocated against the interference implied by the
// other streams' current allocation; the cross-interference is then
// recomputed and the process iterates. Because the per-stream steps are
// independent the iteration may regress, so the best solution seen (by
// predicted aggregate goodput) is retained and returned.
//
// senders[0].Cross must be the channel from sender 0 to client 1 and vice
// versa.
func Concurrent(senders [2]SenderCSI, cfg Config) *Result {
	return iterate(senders[:], cfg)
}

// newPowerGrid allocates an nSC×streams power matrix with contiguous rows.
func newPowerGrid(nSC, streams int) [][]float64 {
	flat := make([]float64, nSC*streams)
	grid := make([][]float64, nSC)
	for k := range grid {
		grid[k] = flat[k*streams : (k+1)*streams : (k+1)*streams]
	}
	return grid
}

// warmCopy copies a previous solve's power grid into dst, reporting
// false (dst untouched beyond rows already copied) on any shape
// mismatch.
func warmCopy(dst, src [][]float64) bool {
	if len(src) != len(dst) {
		return false
	}
	for k := range dst {
		if len(src[k]) != len(dst[k]) {
			return false
		}
		copy(dst[k], src[k])
	}
	return true
}

func iterate(senders []SenderCSI, cfg Config) *Result {
	timing := mAllocSeconds.Begin()
	n := len(senders)
	nSC := len(senders[0].Own.Subcarriers)
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 12
	}
	ws := cfg.Scratch
	if ws == nil {
		ws = &precoding.Workspace{}
	}
	ws.Reset()

	// Working transmissions over ping-pong power grids: tx[i] reads from
	// cur[i] while the Jacobi step writes next[i], so the workspace can be
	// reset at every iteration boundary without touching live powers.
	tx := make([]*precoding.Transmission, n)
	cur := make([][][]float64, n)
	next := make([][][]float64, n)
	warm := cfg.Warm
	if warm != nil && len(warm.Tx) != n {
		warm = nil
	}
	for i, s := range senders {
		streams := s.Precoder.Streams
		cur[i] = newPowerGrid(nSC, streams)
		next[i] = newPowerGrid(nSC, streams)
		if warm != nil && !warmCopy(cur[i], warm.Tx[i].PowerMW) {
			warm = nil // shape mismatch: fall back to the cold start for all
		}
		if warm == nil {
			// Equal split start (the paper's assumption about the other
			// sender's initial behaviour); same arithmetic as EqualSplit.
			per := s.BudgetMW / float64(nSC*streams)
			for _, row := range cur[i] {
				for st := range row {
					row[st] = per
				}
			}
		}
		tx[i] = precoding.NewTransmission(s.Precoder, cur[i], cfg.Impairments)
	}
	if warm == nil && cfg.Warm != nil {
		// A partially-copied warm start would be neither the previous
		// solution nor equal split; re-seed every sender cold.
		for i, s := range senders {
			per := s.BudgetMW / float64(nSC*s.Precoder.Streams)
			for _, row := range cur[i] {
				for st := range row {
					row[st] = per
				}
			}
			tx[i] = precoding.NewTransmission(s.Precoder, cur[i], cfg.Impairments)
		}
	}
	// warmHint returns the per-(sender, stream) drop hint for the
	// warm-started inner scan, or -1 (no hint) when none was provided.
	// hints are refreshed each Jacobi sweep from the sweep's own results.
	hints := cfg.WarmDrops
	warmHint := func(i, st int) int {
		if hints == nil || i >= len(hints) || st >= len(hints[i]) {
			return -1
		}
		return hints[i][st]
	}
	setHint := func(i, st, d int) {
		if hints == nil || i >= len(hints) || st >= len(hints[i]) {
			return
		}
		hints[i][st] = d
	}

	crossFor := func(i int) (*channel.Link, *precoding.Transmission) {
		if n == 1 {
			return nil, nil
		}
		j := 1 - i
		if senders[j].Cross == nil {
			return nil, nil
		}
		return senders[j].Cross, tx[j]
	}

	evaluate := func() ([][]ofdm.StreamRate, []float64) {
		rates := make([][]ofdm.StreamRate, n)
		goodput := make([]float64, n)
		for i, s := range senders {
			cl, ct := crossFor(i)
			rates[i] = StreamRatesForWS(ws, s.Own, tx[i], cl, ct, cfg.NoisePerSCMW)
			// Score with the joint (single-MCS-across-streams) rate the
			// client will actually decode at.
			goodput[i] = GoodputForWS(ws, s.Own, tx[i], cl, ct, cfg.NoisePerSCMW)
		}
		return rates, goodput
	}

	best := &Result{}
	snapshot := func(iter int, converged bool) (improved bool) {
		rates, goodput := evaluate()
		var agg float64
		for _, g := range goodput {
			agg += g
		}
		if best.Tx == nil || agg > best.Aggregate() {
			improved = true
			cp := make([]*precoding.Transmission, n)
			for i := range tx {
				powers := make([][]float64, nSC)
				for k := range powers {
					powers[k] = append([]float64(nil), tx[i].PowerMW[k]...)
				}
				cp[i] = precoding.NewTransmission(senders[i].Precoder, powers, cfg.Impairments)
			}
			best.Tx = cp
			best.StreamRates = rates
			best.Goodput = goodput
		}
		best.Iterations = iter
		best.Converged = converged
		return improved
	}
	snapshot(0, false)
	sinceBest := 0

	for iter := 1; iter <= cfg.MaxIters; iter++ {
		// Everything carved last iteration (coefs, SINR scratch, inner
		// allocations) is dead: live powers sit in cur/next and best holds
		// deep copies.
		ws.Reset()
		// Jacobi step: every stream of every sender re-allocates against
		// the interference of the *current* state; all updates then land
		// together.
		var maxDelta float64
		for i, s := range senders {
			cl, ct := crossFor(i)
			coefs := precoding.SINRCoefficientsWS(ws, s.Own, tx[i], cl, ct, cfg.NoisePerSCMW)
			streams := s.Precoder.Streams
			perStream := s.BudgetMW / float64(streams)
			np := next[i]
			if cfg.JointInner != nil && streams > 1 {
				jp := cfg.JointInner(coefs, perStream)
				for k := range jp {
					for st := range jp[k] {
						np[k][st] = jp[k][st]
						if d := math.Abs(jp[k][st] - tx[i].PowerMW[k][st]); d > maxDelta {
							maxDelta = d
						}
					}
				}
			} else {
				col := ws.Float64s(nSC)
				for st := 0; st < streams; st++ {
					for k := range coefs {
						col[k] = coefs[k][st]
					}
					var alloc Allocation
					switch {
					case cfg.Inner != nil:
						alloc = cfg.Inner(col, perStream)
					case warmHint(i, st) >= 0:
						alloc = EquiSNRWarmWS(&ws.Workspace, col, perStream, warmHint(i, st))
						setHint(i, st, alloc.Dropped)
					default:
						alloc = EquiSNRWS(&ws.Workspace, col, perStream)
					}
					for k := range np {
						np[k][st] = alloc.PowerMW[k]
						if d := math.Abs(alloc.PowerMW[k] - tx[i].PowerMW[k][st]); d > maxDelta {
							maxDelta = d
						}
					}
				}
			}
		}
		for i := range tx {
			cur[i], next[i] = next[i], cur[i]
			tx[i] = precoding.NewTransmission(senders[i].Precoder, cur[i], cfg.Impairments)
		}
		converged := maxDelta < 1e-9*senders[0].BudgetMW
		if snapshot(iter, converged) {
			sinceBest = 0
		} else {
			sinceBest++
		}
		if converged {
			break
		}
		if cfg.Patience > 0 && sinceBest >= cfg.Patience {
			break
		}
	}
	mAllocIters.ObserveInt(best.Iterations)
	if !best.Converged {
		mConvergeFails.Inc()
	}
	timing.End()
	return best
}
