package power

import (
	"sort"

	"copa/internal/ofdm"
)

// The paper reports (§4.2) that COPA-SEQ's gain over CSMA comes from two
// separable mechanisms — dropping hopeless subcarriers, and equalizing
// power among the kept ones — and that "either one, by itself gives about
// 60-70% of the improvement, but both are needed together for the full
// benefits". These allocators isolate each mechanism so the claim can be
// reproduced (see BenchmarkAblationDropVsAlloc).

// DropOnly performs subcarrier selection without power re-allocation: for
// every candidate drop count the dropped subcarriers' equal-split power is
// redistributed uniformly (not SINR-shaped) over the kept ones.
func DropOnly(coef []float64, budgetMW float64) Allocation {
	n := len(coef)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return coef[order[a]] < coef[order[b]] })

	best := Allocation{PowerMW: make([]float64, n)}
	for drop := 0; drop < n; drop++ {
		kept := n - drop
		per := budgetMW / float64(kept)
		powers := make([]float64, n)
		for _, k := range order[drop:] {
			powers[k] = per
		}
		rate := ofdm.BestRate(predictedSINRs(powers, coef))
		if rate.GoodputBps > best.Rate.GoodputBps {
			best = Allocation{PowerMW: powers, Rate: rate, Dropped: drop}
		}
	}
	if best.Rate.GoodputBps == 0 {
		return NoPA(coef, budgetMW)
	}
	return best
}

// EqualizeOnly performs power allocation without subcarrier selection:
// the full budget is shaped to equalize SINR across *all* subcarriers —
// no matter how hopeless — exactly Algorithm 1 with the drop loop removed.
func EqualizeOnly(coef []float64, budgetMW float64) Allocation {
	n := len(coef)
	var invSum float64
	usable := 0
	for _, g := range coef {
		if g > 0 {
			invSum += 1 / g
			usable++
		}
	}
	if usable == 0 {
		return NoPA(coef, budgetMW)
	}
	target := budgetMW / invSum
	powers := make([]float64, n)
	for k, g := range coef {
		if g > 0 {
			powers[k] = target / g
		}
	}
	return Allocation{
		PowerMW: powers,
		Rate:    ofdm.BestRate(predictedSINRs(powers, coef)),
		Dropped: n - usable,
	}
}
