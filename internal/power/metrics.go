package power

import "copa/internal/obs"

// Pre-resolved metric handles (see internal/obs): resolved once at
// package init so the per-subcarrier hot paths never do a map lookup.
var (
	// mEquiSNRCalls counts Algorithm 1 invocations (one per stream per
	// Equi-SINR iteration).
	mEquiSNRCalls = obs.C("copa.power.equisnr_calls")
	// mEquiSNRWarmCalls counts the warm-started subset of Equi-SNR
	// invocations (the drift controller's incremental re-allocations).
	mEquiSNRWarmCalls = obs.C("copa.power.equisnr_warm_calls")
	// mDropCount is the distribution of dropped subcarriers per
	// Equi-SNR allocation (0..NumSubcarriers).
	mDropCount = obs.H("copa.power.drop_count", obs.LinearBuckets(0, 4, 14))
	// mMercuryCalls counts mercury/water-filling solves (COPA+ inner
	// step; four per MercuryBest call, one per constellation).
	mMercuryCalls = obs.C("copa.power.mercury_calls")
	// mAllocIters is the distribution of Equi-SINR iterations actually
	// performed before convergence or the MaxIters cap.
	mAllocIters = obs.H("copa.power.alloc_iters", obs.LinearBuckets(0, 1, 13))
	// mAllocSeconds times one full iterate() solve (solo or joint).
	mAllocSeconds = obs.T("copa.power.alloc_seconds")
	// mConvergeFails counts solves that hit MaxIters without settling.
	mConvergeFails = obs.C("copa.power.converge_failures")
)
