package power

import (
	"math"
	"testing"

	"copa/internal/channel"
	"copa/internal/ofdm"
)

// dispersedCoefs builds a coefficient vector with a handful of disastrous
// subcarriers on an otherwise strong channel — the regime where both of
// COPA's mechanisms matter.
func dispersedCoefs() []float64 {
	coef := make([]float64, ofdm.NumSubcarriers)
	for i := range coef {
		coef[i] = channel.DBToLinear(float64(26 + (i*7)%8))
	}
	for i := 0; i < 6; i++ {
		coef[i*8] = channel.DBToLinear(-2)
	}
	return coef
}

func TestDropOnlyDropsButDoesNotShape(t *testing.T) {
	coef := dispersedCoefs()
	a := DropOnly(coef, 31.6)
	if a.Dropped == 0 {
		t.Error("DropOnly should drop the disastrous subcarriers")
	}
	// All kept subcarriers carry identical power.
	var per float64
	for _, p := range a.PowerMW {
		if p > 0 {
			if per == 0 {
				per = p
			} else if math.Abs(p-per) > 1e-12*per {
				t.Fatal("DropOnly must not shape power")
			}
		}
	}
	if math.Abs(budgetOf(a)-31.6) > 1e-9 {
		t.Errorf("budget %g", budgetOf(a))
	}
}

func TestEqualizeOnlyKeepsEverything(t *testing.T) {
	coef := dispersedCoefs()
	a := EqualizeOnly(coef, 31.6)
	if a.Dropped != 0 {
		t.Errorf("EqualizeOnly dropped %d subcarriers", a.Dropped)
	}
	// SINR equalized across all subcarriers.
	target := a.PowerMW[0] * coef[0]
	for k, p := range a.PowerMW {
		if math.Abs(p*coef[k]-target) > 1e-9*target {
			t.Fatal("SINR not equalized")
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	// The paper's claim (§4.2): each mechanism alone recovers part of the
	// gain; together (EquiSNR) they recover all of it. So on a channel
	// with both dispersion and dead subcarriers:
	//   NoPA ≤ DropOnly ≤ EquiSNR  and  NoPA ≤ EqualizeOnly ≤ EquiSNR.
	coef := dispersedCoefs()
	budget := 31.6
	nopa := NoPA(coef, budget).Rate.GoodputBps
	drop := DropOnly(coef, budget).Rate.GoodputBps
	eq := EqualizeOnly(coef, budget).Rate.GoodputBps
	full := EquiSNR(coef, budget).Rate.GoodputBps
	if !(nopa <= drop+1 && drop <= full+1) {
		t.Errorf("ordering violated: NoPA %.1f, DropOnly %.1f, EquiSNR %.1f (Mb/s)",
			nopa/1e6, drop/1e6, full/1e6)
	}
	if !(nopa <= eq+1 && eq <= full+1) {
		t.Errorf("ordering violated: NoPA %.1f, EqualizeOnly %.1f, EquiSNR %.1f (Mb/s)",
			nopa/1e6, eq/1e6, full/1e6)
	}
	if full <= nopa {
		t.Error("EquiSNR should beat NoPA on this channel")
	}
}

func TestAblationPartialGains(t *testing.T) {
	// Averaged over random channel draws, each single mechanism should
	// recover a substantial-but-partial share of EquiSNR's gain over
	// NoPA (the paper says ~60-70%).
	var gainDrop, gainEq, gainFull float64
	n := 0
	for trial := 0; trial < 40; trial++ {
		coef := make([]float64, ofdm.NumSubcarriers)
		x := float64(trial)*1.7 + 3
		for i := range coef {
			x = math.Mod(x*2.3+5, 30)
			coef[i] = channel.DBToLinear(x + 2)
		}
		budget := 31.6
		nopa := NoPA(coef, budget).Rate.GoodputBps
		if nopa <= 0 {
			continue
		}
		n++
		gainDrop += DropOnly(coef, budget).Rate.GoodputBps - nopa
		gainEq += EqualizeOnly(coef, budget).Rate.GoodputBps - nopa
		gainFull += EquiSNR(coef, budget).Rate.GoodputBps - nopa
	}
	if n == 0 || gainFull <= 0 {
		t.Fatal("no usable trials")
	}
	fracDrop := gainDrop / gainFull
	fracEq := gainEq / gainFull
	t.Logf("drop-only recovers %.0f%%, equalize-only %.0f%% of the full gain", fracDrop*100, fracEq*100)
	if fracDrop < 0.1 || fracDrop > 1.01 {
		t.Errorf("drop-only fraction %.2f out of plausible range", fracDrop)
	}
	if fracEq < 0.05 || fracEq > 1.01 {
		t.Errorf("equalize-only fraction %.2f out of plausible range", fracEq)
	}
}
