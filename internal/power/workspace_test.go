package power

import (
	"math/rand"
	"testing"

	"copa/internal/linalg"
)

func randomCoef(seed int64, n int) []float64 {
	r := rand.New(rand.NewSource(seed))
	coef := make([]float64, n)
	for i := range coef {
		coef[i] = r.Float64() * 40
	}
	return coef
}

// TestAllocatorAllocBudgets pins the per-stream allocators at zero
// steady-state allocations once their workspace has warmed up.
func TestAllocatorAllocBudgets(t *testing.T) {
	coef := randomCoef(3, 52)
	const budget = 100.0

	allocators := []struct {
		name string
		run  func(ws *linalg.Workspace) Allocation
	}{
		{"EquiSNRWS", func(ws *linalg.Workspace) Allocation { return EquiSNRWS(ws, coef, budget) }},
		{"WaterfillWS", func(ws *linalg.Workspace) Allocation { return WaterfillWS(ws, coef, budget) }},
	}
	for _, a := range allocators {
		t.Run(a.name, func(t *testing.T) {
			var ws linalg.Workspace
			a.run(&ws) // warm up
			allocs := testing.AllocsPerRun(100, func() {
				ws.Reset()
				a.run(&ws)
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocs/run in steady state, want 0", a.name, allocs)
			}
		})
	}
}

// TestEquiSNRWSMatchesEquiSNR proves the workspace fast path is the same
// algorithm: identical powers, rate, and drop count.
func TestEquiSNRWSMatchesEquiSNR(t *testing.T) {
	var ws linalg.Workspace
	for seed := int64(1); seed <= 5; seed++ {
		coef := randomCoef(seed, 52)
		want := EquiSNR(coef, 100)
		ws.Reset()
		got := EquiSNRWS(&ws, coef, 100)
		if got.Dropped != want.Dropped || got.Rate != want.Rate {
			t.Fatalf("seed %d: rate/dropped mismatch: %+v vs %+v", seed, got.Rate, want.Rate)
		}
		for k := range want.PowerMW {
			if got.PowerMW[k] != want.PowerMW[k] {
				t.Fatalf("seed %d sc %d: power %v != %v", seed, k, got.PowerMW[k], want.PowerMW[k])
			}
		}
	}
}
