package power

import (
	"testing"

	"copa/internal/channel"
	"copa/internal/linalg"
	"copa/internal/ofdm"
	"copa/internal/rng"
)

// warmCoefCases generates coefficient vectors spanning the regimes the
// warm scan's prune and tie rules must navigate: healthy spreads, zero
// entries (undecodable subcarriers), near-uniform ties, and vectors so
// weak every candidate has zero goodput (the equal-split fallback).
func warmCoefCases(n int) [][]float64 {
	var cases [][]float64
	for seed := int64(1); seed <= 6; seed++ {
		src := rng.New(0x3a70 + seed)
		coef := make([]float64, n)
		for i := range coef {
			coef[i] = src.Float64() * 50
		}
		cases = append(cases, coef)

		holes := append([]float64(nil), coef...)
		for i := 0; i < n; i += 3 {
			holes[i] = 0
		}
		cases = append(cases, holes)

		weak := make([]float64, n)
		for i := range weak {
			weak[i] = 1e-9 * src.Float64()
		}
		cases = append(cases, weak)
	}
	flat := make([]float64, n)
	for i := range flat {
		flat[i] = 2.0
	}
	cases = append(cases, flat, make([]float64, n))
	return cases
}

func cloneAlloc(a Allocation) Allocation {
	return Allocation{
		PowerMW: append([]float64(nil), a.PowerMW...),
		Rate:    a.Rate,
		Dropped: a.Dropped,
	}
}

func allocsEqual(a, b Allocation) bool {
	if a.Rate != b.Rate || a.Dropped != b.Dropped || len(a.PowerMW) != len(b.PowerMW) {
		return false
	}
	for i := range a.PowerMW {
		if a.PowerMW[i] != b.PowerMW[i] {
			return false
		}
	}
	return true
}

// TestEquiSNRWarmMatchesCold is the allocator-level half of the
// warm-start equivalence property: for every coefficient vector and
// EVERY hint value — in range, out of range, negative — the warm scan
// must return an allocation bit-identical to the cold scan's.
func TestEquiSNRWarmMatchesCold(t *testing.T) {
	var ws linalg.Workspace
	budget := channel.TotalTxBudgetMW() / 2
	for _, n := range []int{1, 4, ofdm.NumSubcarriers} {
		for ci, coef := range warmCoefCases(n) {
			ws.Reset()
			cold := cloneAlloc(EquiSNRWS(&ws, coef, budget))
			for hint := -2; hint <= n+1; hint++ {
				ws.Reset()
				warm := EquiSNRWarmWS(&ws, coef, budget, hint)
				if !allocsEqual(cold, warm) {
					t.Fatalf("n=%d case=%d hint=%d: warm diverged from cold\ncold: drop=%d rate=%+v\nwarm: drop=%d rate=%+v",
						n, ci, hint, cold.Dropped, cold.Rate, warm.Dropped, warm.Rate)
				}
			}
		}
	}
}

// TestConcurrentWarmDropsBitIdentical is the iteration-level half: on a
// static channel, a joint solve whose inner steps run the warm-started
// scan (seeded from a previous solve's drop counts) must produce power
// grids bit-identical to the cold solve — the ISSUE's "warm-started and
// cold-started Equi-SNR converge to identical power vectors" property.
func TestConcurrentWarmDropsBitIdentical(t *testing.T) {
	for _, null := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			senders, cfg := pairCSI(t, 0x77a0+seed, null)
			cold := Concurrent(senders, cfg)

			// Hints harvested from the cold solve's final allocations,
			// plus deliberately wrong hints: both must reproduce the
			// cold result exactly.
			for _, hintVal := range []int{-1, 0, 3} {
				warmCfg := cfg
				warmCfg.WarmDrops = [][]int{
					{hintVal, hintVal},
					{hintVal, hintVal},
				}
				warm := Concurrent(senders, warmCfg)
				if warm.Iterations != cold.Iterations || warm.Converged != cold.Converged {
					t.Fatalf("null=%v seed=%d hint=%d: trajectory diverged (iters %d vs %d)",
						null, seed, hintVal, warm.Iterations, cold.Iterations)
				}
				for i := range cold.Tx {
					for k := range cold.Tx[i].PowerMW {
						for s := range cold.Tx[i].PowerMW[k] {
							cw, ww := cold.Tx[i].PowerMW[k][s], warm.Tx[i].PowerMW[k][s]
							if cw != ww {
								t.Fatalf("null=%v seed=%d hint=%d: sender %d sc %d stream %d: cold %g warm %g",
									null, seed, hintVal, i, k, s, cw, ww)
							}
						}
					}
				}
				if warm.Aggregate() != cold.Aggregate() {
					t.Fatalf("null=%v seed=%d hint=%d: aggregate %g vs %g",
						null, seed, hintVal, warm.Aggregate(), cold.Aggregate())
				}
			}
		}
	}
}

// TestConcurrentWarmSeedNeverRegresses: seeding the Jacobi iteration
// from a previous Result on the SAME (static) channel must return an
// aggregate at least as good as the cold solve — the initial snapshot
// captures the seed itself, and the best-seen state is only replaced on
// strict improvement.
func TestConcurrentWarmSeedNeverRegresses(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		senders, cfg := pairCSI(t, 0x5eed+seed, true)
		cold := Concurrent(senders, cfg)

		warmCfg := cfg
		warmCfg.Warm = cold
		warmCfg.WarmDrops = [][]int{{0, 0}, {0, 0}}
		warm := Concurrent(senders, warmCfg)
		if warm.Aggregate() < cold.Aggregate() {
			t.Fatalf("seed=%d: warm seed regressed aggregate: %g < %g",
				seed, warm.Aggregate(), cold.Aggregate())
		}
		if warm.Iterations > cold.Iterations {
			t.Fatalf("seed=%d: warm seed took more iterations (%d) than cold (%d)",
				seed, warm.Iterations, cold.Iterations)
		}
	}
}

// TestConcurrentWarmShapeMismatchFallsBack: a Warm result whose grids
// don't match the current solve's shape must be ignored, reproducing
// the cold result exactly.
func TestConcurrentWarmShapeMismatchFallsBack(t *testing.T) {
	senders, cfg := pairCSI(t, 0xbad5, false)
	cold := Concurrent(senders, cfg)

	soloSenders, _ := pairCSI(t, 0xbad5, false)
	solo := Sequential(soloSenders[0], cfg)

	warmCfg := cfg
	warmCfg.Warm = solo // one sender, wrong shape for a two-sender solve
	warm := Concurrent(senders, warmCfg)
	for i := range cold.Tx {
		for k := range cold.Tx[i].PowerMW {
			for s := range cold.Tx[i].PowerMW[k] {
				if cold.Tx[i].PowerMW[k][s] != warm.Tx[i].PowerMW[k][s] {
					t.Fatalf("sender %d sc %d stream %d: mismatched fallback", i, k, s)
				}
			}
		}
	}
}
