package power

import (
	"copa/internal/linalg"
	"copa/internal/ofdm"
)

// Warm-started Equi-SNR: the online re-allocation loop (internal/drift)
// re-solves the same stream against a channel that has barely moved, so
// the previous epoch's winning drop count is an excellent incumbent.
// EquiSNRWarmWS seeds the drop-count search with it, which lets the
// goodput-ceiling prune reject most of the scan immediately — while
// provably returning the exact allocation the cold solve would.
//
// Equivalence argument (enforced bit-for-bit by warm_test.go): the cold
// scan visits drop counts ascending and keeps the first candidate
// achieving the maximum goodput (strict > update), i.e. the smallest
// such drop. The warm scan seeds the incumbent with the hinted
// candidate, then visits the same ascending order under a tie-aware
// update (accept when strictly better, or equal goodput at a smaller
// drop) and a refined prune (stop when the rate ceiling falls below the
// incumbent, or ties it once no smaller drop remains reachable). Both
// therefore select the smallest drop count achieving the maximum, and
// every candidate's power vector is a pure function of (coef, budget,
// drop) — so the returned allocation is bit-identical.

// EquiSNRWarmWS is EquiSNRWS warm-started from warmDrop, a previous
// solve's Allocation.Dropped for the same stream. Any hint value (in or
// out of range) yields the identical allocation; a good hint only makes
// the scan cheaper. Scratch and the returned power vector are carved
// from ws, exactly like EquiSNRWS.
func EquiSNRWarmWS(ws *linalg.Workspace, coef []float64, budgetMW float64, warmDrop int) Allocation {
	mEquiSNRCalls.Inc()
	mEquiSNRWarmCalls.Inc()
	n := len(coef)
	order := ws.Ints(n)
	for i := range order {
		order[i] = i
	}
	linalg.SortOrderAsc(order, coef)

	best := Allocation{PowerMW: ws.Float64s(n)}
	powers := ws.Float64s(n)
	sinrs := ws.Float64s(n)

	// candidate equalizes SINR at drop count d and returns its rate and
	// usable-subcarrier count (usable 0 means no candidate). Identical
	// arithmetic to the cold scan's loop body.
	candidate := func(d int) (ofdm.StreamRate, int) {
		var invSum float64
		usable := 0
		for _, k := range order[d:] {
			if coef[k] > 0 {
				invSum += 1 / coef[k]
				usable++
			}
		}
		if usable == 0 {
			return ofdm.StreamRate{}, 0
		}
		target := budgetMW / invSum
		clear(powers)
		for _, k := range order[d:] {
			if coef[k] > 0 {
				powers[k] = target / coef[k]
			}
		}
		predictedSINRsInto(sinrs, powers, coef)
		return ofdm.BestRate(sinrs), usable
	}

	// bestDrop is the drop index that produced the incumbent; n is the
	// "no incumbent" sentinel (nothing can tie-beat it).
	bestDrop := n
	take := func(d int, rate ofdm.StreamRate, usable int) {
		copy(best.PowerMW, powers)
		best.Rate = rate
		best.Dropped = n - usable
		bestDrop = d
	}
	if warmDrop >= 0 && warmDrop < n {
		if rate, usable := candidate(warmDrop); usable > 0 && rate.GoodputBps > 0 {
			take(warmDrop, rate, usable)
		}
	}
	for drop := 0; drop < n; drop++ {
		if drop == bestDrop {
			continue // the incumbent itself; re-evaluating cannot change it
		}
		var invSum float64
		usable := 0
		for _, k := range order[drop:] {
			if coef[k] > 0 {
				invSum += 1 / coef[k]
				usable++
			}
		}
		if usable == 0 {
			continue
		}
		// Prune: the zero-FER ceiling bounds this and every later drop
		// count (usable is non-increasing in drop). Below the incumbent
		// nothing can win; at the incumbent's exact goodput only a
		// smaller drop could, so once the scan passes bestDrop a tie is
		// unreachable too.
		ceiling := ofdm.StreamGoodputCeiling(usable)
		if ceiling < best.Rate.GoodputBps {
			break
		}
		if bestDrop < n && ceiling == best.Rate.GoodputBps && drop >= bestDrop {
			break
		}
		if bestDrop == n && ceiling <= 0 {
			break
		}
		target := budgetMW / invSum
		clear(powers)
		for _, k := range order[drop:] {
			if coef[k] > 0 {
				powers[k] = target / coef[k]
			}
		}
		predictedSINRsInto(sinrs, powers, coef)
		rate := ofdm.BestRate(sinrs)
		if rate.GoodputBps > best.Rate.GoodputBps ||
			(bestDrop < n && rate.GoodputBps == best.Rate.GoodputBps && drop < bestDrop) {
			take(drop, rate, usable)
		}
	}
	if best.Rate.GoodputBps == 0 {
		// Nothing decodable at any drop count: same equal-split fallback
		// as the cold solve.
		mDropCount.ObserveInt(0)
		per := budgetMW / float64(n)
		for k := range best.PowerMW {
			best.PowerMW[k] = per
		}
		predictedSINRsInto(sinrs, best.PowerMW, coef)
		best.Rate = ofdm.BestRate(sinrs)
		best.Dropped = 0
		return best
	}
	mDropCount.ObserveInt(best.Dropped)
	return best
}
