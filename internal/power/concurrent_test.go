package power

import (
	"math"
	"testing"

	"copa/internal/channel"
	"copa/internal/precoding"
	"copa/internal/rng"
)

// pairCSI builds a 4x2-style two-sender test rig with beamforming or
// nulling precoders on the estimated channels.
func pairCSI(t *testing.T, seed int64, null bool) ([2]SenderCSI, Config) {
	t.Helper()
	src := rng.New(seed)
	h11 := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-65))
	h12 := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-72))
	h21 := channel.NewLink(src.Split(3), 2, 4, channel.DBToLinear(-70))
	h22 := channel.NewLink(src.Split(4), 2, 4, channel.DBToLinear(-64))

	var p1, p2 *precoding.Precoder
	var err error
	if null {
		if p1, err = precoding.Nulling(h11, h12, 2); err != nil {
			t.Fatal(err)
		}
		if p2, err = precoding.Nulling(h22, h21, 2); err != nil {
			t.Fatal(err)
		}
	} else {
		if p1, err = precoding.Beamforming(h11, 2); err != nil {
			t.Fatal(err)
		}
		if p2, err = precoding.Beamforming(h22, 2); err != nil {
			t.Fatal(err)
		}
	}
	budget := channel.TotalTxBudgetMW()
	senders := [2]SenderCSI{
		{Own: h11, Cross: h12, Precoder: p1, BudgetMW: budget},
		{Own: h22, Cross: h21, Precoder: p2, BudgetMW: budget},
	}
	cfg := DefaultConfig()
	return senders, cfg
}

func TestSequentialRespectsbudget(t *testing.T) {
	src := rng.New(31)
	h := channel.NewLink(src, 2, 4, channel.DBToLinear(-68))
	p, err := precoding.Beamforming(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := Sequential(SenderCSI{Own: h, Precoder: p, BudgetMW: channel.TotalTxBudgetMW()}, DefaultConfig())
	if len(res.Tx) != 1 {
		t.Fatalf("tx count %d", len(res.Tx))
	}
	total := res.Tx[0].TotalPowerMW()
	if total > channel.TotalTxBudgetMW()*(1+1e-6) {
		t.Errorf("budget exceeded: %g", total)
	}
	if res.Goodput[0] <= 0 {
		t.Error("no goodput on a healthy link")
	}
	if len(res.StreamRates[0]) != 2 {
		t.Errorf("stream rates %d", len(res.StreamRates[0]))
	}
}

func TestSequentialBeatsNoPA(t *testing.T) {
	// Across several channels, COPA-SEQ's allocation should never lose
	// to the status quo equal split (it starts from and subsumes it).
	for seed := int64(0); seed < 8; seed++ {
		src := rng.New(100 + seed)
		h := channel.NewLink(src, 2, 4, channel.DBToLinear(-69))
		p, err := precoding.Beamforming(h, 2)
		if err != nil {
			t.Fatal(err)
		}
		budget := channel.TotalTxBudgetMW()
		cfg := DefaultConfig()
		res := Sequential(SenderCSI{Own: h, Precoder: p, BudgetMW: budget}, cfg)

		eq := precoding.NewTransmission(p, precoding.EqualSplit(len(h.Subcarriers), 2, budget), cfg.Impairments)
		nopa := GoodputFor(h, eq, nil, nil, cfg.NoisePerSCMW)
		if res.Goodput[0] < nopa*0.999 {
			t.Errorf("seed %d: COPA-SEQ %.1f < NoPA %.1f Mb/s", seed,
				res.Goodput[0]/1e6, nopa/1e6)
		}
	}
}

func TestConcurrentConverges(t *testing.T) {
	senders, cfg := pairCSI(t, 41, true)
	res := Concurrent(senders, cfg)
	if res.Iterations < 1 {
		t.Error("did not iterate")
	}
	for i := 0; i < 2; i++ {
		if res.Tx[i].TotalPowerMW() > senders[i].BudgetMW*(1+1e-6) {
			t.Errorf("sender %d exceeded budget", i)
		}
	}
	if res.Aggregate() <= 0 {
		t.Error("zero aggregate on healthy links")
	}
}

func TestConcurrentImprovesOnEqualSplit(t *testing.T) {
	wins, total := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		senders, cfg := pairCSI(t, 200+seed, true)
		res := Concurrent(senders, cfg)

		// Baseline: both senders equal-split with the same precoders.
		nSC := len(senders[0].Own.Subcarriers)
		tx1 := precoding.NewTransmission(senders[0].Precoder, precoding.EqualSplit(nSC, 2, senders[0].BudgetMW), cfg.Impairments)
		tx2 := precoding.NewTransmission(senders[1].Precoder, precoding.EqualSplit(nSC, 2, senders[1].BudgetMW), cfg.Impairments)
		base := GoodputFor(senders[0].Own, tx1, senders[1].Cross, tx2, cfg.NoisePerSCMW) +
			GoodputFor(senders[1].Own, tx2, senders[0].Cross, tx1, cfg.NoisePerSCMW)

		total++
		if res.Aggregate() >= base*0.999 {
			wins++
		}
	}
	if wins < total-1 {
		t.Errorf("Equi-SINR beat equal split in only %d/%d rigs", wins, total)
	}
}

func TestConcurrentBestSolutionMemory(t *testing.T) {
	// The returned result must be at least as good as the first iterate
	// (best-solution memory; the iteration may regress but the result
	// may not).
	senders, cfg := pairCSI(t, 77, true)
	cfg.MaxIters = 1
	one := Concurrent(senders, cfg)
	cfg.MaxIters = 12
	many := Concurrent(senders, cfg)
	if many.Aggregate() < one.Aggregate()*0.999 {
		t.Errorf("more iterations made the kept solution worse: %.1f vs %.1f Mb/s",
			many.Aggregate()/1e6, one.Aggregate()/1e6)
	}
}

func TestConcurrentWithMercuryInner(t *testing.T) {
	senders, cfg := pairCSI(t, 55, true)
	cfg.Inner = MercuryBest
	cfg.MaxIters = 4
	res := Concurrent(senders, cfg)
	if res.Aggregate() <= 0 {
		t.Error("COPA+ inner produced zero goodput")
	}
	for i := 0; i < 2; i++ {
		if res.Tx[i].TotalPowerMW() > senders[i].BudgetMW*1.05 {
			t.Errorf("sender %d budget: %g", i, res.Tx[i].TotalPowerMW())
		}
	}
}

func TestConcurrentDropsCreateLeakageOnly(t *testing.T) {
	senders, cfg := pairCSI(t, 91, true)
	res := Concurrent(senders, cfg)
	for i, tx := range res.Tx {
		for k, ps := range tx.PowerMW {
			var tot float64
			for _, p := range ps {
				tot += p
			}
			if tot == 0 {
				leak := channel.DBToLinear(channel.LeakageFloorDB) * channel.TxBudgetPerSubcarrierMW() / 4
				if math.Abs(tx.TxNoiseVarMW[k]-leak) > 1e-18 {
					t.Fatalf("sender %d subcarrier %d: leakage %g, want %g", i, k, tx.TxNoiseVarMW[k], leak)
				}
			}
		}
	}
}

func BenchmarkConcurrentEquiSINR(b *testing.B) {
	src := rng.New(7)
	h11 := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-65))
	h12 := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-72))
	h21 := channel.NewLink(src.Split(3), 2, 4, channel.DBToLinear(-70))
	h22 := channel.NewLink(src.Split(4), 2, 4, channel.DBToLinear(-64))
	p1, _ := precoding.Nulling(h11, h12, 2)
	p2, _ := precoding.Nulling(h22, h21, 2)
	budget := channel.TotalTxBudgetMW()
	senders := [2]SenderCSI{
		{Own: h11, Cross: h12, Precoder: p1, BudgetMW: budget},
		{Own: h22, Cross: h21, Precoder: p2, BudgetMW: budget},
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Concurrent(senders, cfg)
	}
}

func TestJointAwareInnerImprovesOrMatches(t *testing.T) {
	// The joint-MCS-aware allocator (extension beyond the paper) should
	// on average match or beat the per-stream heuristic under the shared
	// decoder constraint.
	var perStream, joint float64
	for seed := int64(0); seed < 5; seed++ {
		senders, cfg := pairCSI(t, 400+seed, true)
		a := Concurrent(senders, cfg)
		cfgJ := cfg
		cfgJ.JointInner = JointAware
		b := Concurrent(senders, cfgJ)
		perStream += a.Aggregate()
		joint += b.Aggregate()
		for i := 0; i < 2; i++ {
			if b.Tx[i].TotalPowerMW() > senders[i].BudgetMW*(1+1e-6) {
				t.Errorf("seed %d sender %d: joint allocator overspent (%.2f mW)",
					seed, i, b.Tx[i].TotalPowerMW())
			}
		}
	}
	if joint < perStream*0.97 {
		t.Errorf("joint-aware %.1f Mb/s materially below per-stream %.1f",
			joint/5e6, perStream/5e6)
	}
	t.Logf("per-stream %.1f vs joint-aware %.1f Mb/s (mean aggregate)", perStream/5e6, joint/5e6)
}

func TestJointAwareEdgeCases(t *testing.T) {
	if out := JointAware(nil, 1); out != nil {
		t.Error("empty coefs should return nil")
	}
	// All-dead coefficients fall back to equal split.
	coefs := make([][]float64, 10)
	for k := range coefs {
		coefs[k] = []float64{0, 0}
	}
	out := JointAware(coefs, 5)
	var sum float64
	for k := range out {
		sum += out[k][0] + out[k][1]
	}
	if math.Abs(sum-10) > 1e-9 {
		t.Errorf("fallback budget %g, want 10 (5 per stream)", sum)
	}
}
