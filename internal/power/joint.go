package power

import (
	"sort"

	"copa/internal/ofdm"
)

// JointAware is an extension beyond the paper's Equi-SNR inner step: the
// paper picks each stream's drop count against a per-stream rate model,
// but the 802.11 receiver decodes all streams with one MCS, so the truly
// binding metric is the joint rate. JointAware allocates both streams'
// budgets together: it sorts every (subcarrier, stream) cell by quality,
// sweeps joint drop counts, equalizes SINR over the kept cells of each
// stream separately (budgets stay per-stream — the PA constraint), and
// keeps the drop set maximizing the joint-MCS throughput.
//
// Used as an ablation (BenchmarkAblationJointAware) to quantify how much
// the paper's per-stream heuristic leaves on the table.
func JointAware(coefs [][]float64, budgetPerStreamMW float64) [][]float64 {
	nSC := len(coefs)
	if nSC == 0 {
		return nil
	}
	streams := len(coefs[0])

	type cell struct {
		k, s int
		coef float64
	}
	cells := make([]cell, 0, nSC*streams)
	for k := 0; k < nSC; k++ {
		for s := 0; s < streams; s++ {
			cells = append(cells, cell{k, s, coefs[k][s]})
		}
	}
	sort.SliceStable(cells, func(a, b int) bool { return cells[a].coef < cells[b].coef })

	best := -1.0
	var bestPowers [][]float64
	// Sweep joint drop counts with a coarse-to-fine step to keep the
	// cost near the per-stream algorithm's.
	step := 1
	if nSC*streams > 64 {
		step = 2
	}
	for drop := 0; drop < nSC*streams; drop += step {
		keep := make([][]bool, nSC)
		for k := range keep {
			keep[k] = make([]bool, streams)
		}
		for _, c := range cells[drop:] {
			keep[c.k][c.s] = true
		}
		// Equalize per stream over its kept cells.
		powers := make([][]float64, nSC)
		for k := range powers {
			powers[k] = make([]float64, streams)
		}
		feasible := false
		for s := 0; s < streams; s++ {
			var invSum float64
			cnt := 0
			for k := 0; k < nSC; k++ {
				if keep[k][s] && coefs[k][s] > 0 {
					invSum += 1 / coefs[k][s]
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			feasible = true
			target := budgetPerStreamMW / invSum
			for k := 0; k < nSC; k++ {
				if keep[k][s] && coefs[k][s] > 0 {
					powers[k][s] = target / coefs[k][s]
				}
			}
		}
		if !feasible {
			continue
		}
		// Joint rate on the implied SINRs.
		sinrs := make([][]float64, nSC)
		for k := 0; k < nSC; k++ {
			row := make([]float64, streams)
			for s := 0; s < streams; s++ {
				if powers[k][s] > 0 {
					row[s] = powers[k][s] * coefs[k][s]
				} else {
					row[s] = -1
				}
			}
			sinrs[k] = row
		}
		if r := ofdm.JointBestRate(sinrs); r.GoodputBps > best {
			best = r.GoodputBps
			bestPowers = powers
		}
	}
	if bestPowers == nil {
		// Nothing decodable: fall back to equal split.
		bestPowers = make([][]float64, nSC)
		per := budgetPerStreamMW / float64(nSC)
		for k := range bestPowers {
			row := make([]float64, streams)
			for s := range row {
				row[s] = per
			}
			bestPowers[k] = row
		}
	}
	return bestPowers
}
