package power

import (
	"math"
	"testing"
	"testing/quick"

	"copa/internal/channel"
	"copa/internal/ofdm"
)

// flatCoefs builds a coefficient vector with the given per-subcarrier
// SINR-per-mW values repeated/specified.
func flatCoefs(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func budgetOf(a Allocation) float64 {
	var s float64
	for _, p := range a.PowerMW {
		s += p
	}
	return s
}

func TestNoPAEqualSplit(t *testing.T) {
	coef := flatCoefs(100, ofdm.NumSubcarriers)
	a := NoPA(coef, 31.6)
	if math.Abs(budgetOf(a)-31.6) > 1e-9 {
		t.Errorf("budget %g", budgetOf(a))
	}
	for _, p := range a.PowerMW {
		if math.Abs(p-31.6/ofdm.NumSubcarriers) > 1e-12 {
			t.Errorf("unequal split: %g", p)
		}
	}
	if a.Dropped != 0 {
		t.Errorf("NoPA dropped %d", a.Dropped)
	}
}

func TestEquiSNRFlatChannelKeepsAll(t *testing.T) {
	// On a flat channel there is nothing to gain from dropping.
	coef := flatCoefs(1e4, ofdm.NumSubcarriers)
	a := EquiSNR(coef, 31.6)
	if a.Dropped != 0 {
		t.Errorf("flat channel dropped %d subcarriers", a.Dropped)
	}
	if math.Abs(budgetOf(a)-31.6) > 1e-6 {
		t.Errorf("budget %g", budgetOf(a))
	}
	// Equalized: all SINRs identical.
	first := a.PowerMW[0] * coef[0]
	for k, p := range a.PowerMW {
		if math.Abs(p*coef[k]-first) > 1e-9*first {
			t.Fatalf("SINR not equalized at %d", k)
		}
	}
}

func TestEquiSNRDropsCatastrophicSubcarriers(t *testing.T) {
	// A few disastrous subcarriers should be dropped, enabling a far
	// higher rate on the rest (the Fig. 7 effect).
	coef := flatCoefs(channel.DBToLinear(35)/0.6, ofdm.NumSubcarriers)
	for i := 0; i < 6; i++ {
		coef[i*7] = channel.DBToLinear(-4) / 0.6 // ~39 dB below the rest
	}
	a := EquiSNR(coef, 31.6)
	if a.Dropped < 4 || a.Dropped > 10 {
		t.Errorf("dropped %d subcarriers, want ≈6", a.Dropped)
	}
	nopa := NoPA(coef, 31.6)
	if a.Rate.GoodputBps <= nopa.Rate.GoodputBps {
		t.Errorf("EquiSNR %.1f Mb/s <= NoPA %.1f Mb/s",
			a.Rate.GoodputBps/1e6, nopa.Rate.GoodputBps/1e6)
	}
	if a.Rate.MCS.Index <= nopa.Rate.MCS.Index {
		t.Errorf("EquiSNR should enable a higher bitrate: %v vs %v", a.Rate.MCS, nopa.Rate.MCS)
	}
	// Dropped subcarriers really carry zero power.
	zero := 0
	for _, p := range a.PowerMW {
		if p == 0 {
			zero++
		}
	}
	if zero != a.Dropped {
		t.Errorf("Dropped=%d but %d zero-power subcarriers", a.Dropped, zero)
	}
}

func TestEquiSNREqualizesOnKept(t *testing.T) {
	coef := make([]float64, ofdm.NumSubcarriers)
	for i := range coef {
		coef[i] = channel.DBToLinear(float64(20 + i%15))
	}
	a := EquiSNR(coef, 31.6)
	var target float64
	for k, p := range a.PowerMW {
		if p > 0 {
			s := p * coef[k]
			if target == 0 {
				target = s
			} else if math.Abs(s-target) > 1e-6*target {
				t.Fatalf("kept subcarrier %d SINR %g != %g", k, s, target)
			}
		}
	}
}

func TestEquiSNRBudgetNeverExceeded(t *testing.T) {
	f := func(seed uint32) bool {
		coef := make([]float64, ofdm.NumSubcarriers)
		x := float64(seed%97) + 1
		for i := range coef {
			x = math.Mod(x*1.37+float64(i), 40)
			coef[i] = channel.DBToLinear(x)
		}
		a := EquiSNR(coef, 31.6)
		return budgetOf(a) <= 31.6*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEquiSNRAllZeroCoefs(t *testing.T) {
	a := EquiSNR(flatCoefs(0, 10), 5)
	if len(a.PowerMW) != 10 {
		t.Fatal("allocation shape wrong")
	}
	// Falls back to equal split; rate is zero but structure is sound.
	if math.Abs(budgetOf(a)-5) > 1e-9 {
		t.Errorf("budget %g", budgetOf(a))
	}
}

func TestWaterfillProperties(t *testing.T) {
	coef := make([]float64, ofdm.NumSubcarriers)
	for i := range coef {
		coef[i] = channel.DBToLinear(float64(10 + (i*11)%25))
	}
	a := Waterfill(coef, 31.6)
	if math.Abs(budgetOf(a)-31.6) > 1e-3 {
		t.Errorf("budget %g", budgetOf(a))
	}
	// Waterfilling gives more power to better subcarriers... of the ones
	// it uses, the implied water level p_k + 1/g_k is constant.
	var level float64
	for k, p := range a.PowerMW {
		if p > 0 {
			l := p + 1/coef[k]
			if level == 0 {
				level = l
			} else if math.Abs(l-level) > 1e-6*level {
				t.Fatalf("water level varies: %g vs %g", l, level)
			}
		}
	}
}

func TestWaterfillDropsHopelessSubcarriers(t *testing.T) {
	coef := flatCoefs(1e3, 10)
	coef[0] = 1e-9 // 1/g enormous: below water level
	a := Waterfill(coef, 1.0)
	if a.PowerMW[0] != 0 {
		t.Errorf("hopeless subcarrier got power %g", a.PowerMW[0])
	}
	if a.Dropped != 1 {
		t.Errorf("dropped = %d", a.Dropped)
	}
}

func TestMMSEFunctionShape(t *testing.T) {
	for _, m := range []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK, ofdm.QAM16, ofdm.QAM64} {
		if v := MMSE(m, 0); math.Abs(v-1) > 0.02 {
			t.Errorf("%v: mmse(0) = %g, want 1 (unit-energy constellation)", m, v)
		}
		prev := math.Inf(1)
		for _, g := range []float64{0.01, 0.1, 1, 10, 100, 1000} {
			v := MMSE(m, g)
			if v > prev+1e-9 {
				t.Errorf("%v: mmse not decreasing at γ=%g", m, g)
			}
			if v < 0 {
				t.Errorf("%v: negative mmse %g", m, v)
			}
			prev = v
		}
		if v := MMSE(m, 5000); v > 0.05 {
			t.Errorf("%v: mmse(5000) = %g, should be ≈0", m, v)
		}
	}
	// BPSK detects more reliably than 64-QAM at the same SNR.
	if MMSE(ofdm.BPSK, 5) >= MMSE(ofdm.QAM64, 5) {
		t.Error("BPSK mmse should be below 64-QAM mmse at γ=5")
	}
}

func TestMMSEInverse(t *testing.T) {
	for _, m := range []ofdm.Modulation{ofdm.BPSK, ofdm.QAM64} {
		for _, v := range []float64{0.9, 0.5, 0.1, 0.01} {
			g := mmseInverse(m, v)
			if got := MMSE(m, g); math.Abs(got-v) > 0.02 {
				t.Errorf("%v: mmse(mmse⁻¹(%g)) = %g", m, v, got)
			}
		}
		if mmseInverse(m, 1.5) != 0 {
			t.Error("inverse above 1 should clamp to 0")
		}
	}
}

func TestMercuryWaterfillBudgetAndCutoff(t *testing.T) {
	coef := make([]float64, ofdm.NumSubcarriers)
	for i := range coef {
		coef[i] = channel.DBToLinear(float64(5 + (i*13)%30))
	}
	coef[3] = 1e-12 // essentially dead subcarrier
	a := MercuryWaterfill(ofdm.QAM16, coef, 31.6)
	if math.Abs(budgetOf(a)-31.6) > 0.05*31.6 {
		t.Errorf("budget %g, want ≈31.6", budgetOf(a))
	}
	if a.PowerMW[3] != 0 {
		t.Errorf("dead subcarrier powered: %g", a.PowerMW[3])
	}
	if a.Dropped < 1 {
		t.Error("expected the dead subcarrier dropped")
	}
}

func TestMercuryBeatsNoPAOnDispersedChannel(t *testing.T) {
	coef := make([]float64, ofdm.NumSubcarriers)
	for i := range coef {
		coef[i] = channel.DBToLinear(float64(8 + (i*17)%28))
	}
	nopa := NoPA(coef, 31.6)
	merc := MercuryBest(coef, 31.6)
	if merc.Rate.GoodputBps < nopa.Rate.GoodputBps {
		t.Errorf("mercury %.1f < NoPA %.1f Mb/s",
			merc.Rate.GoodputBps/1e6, nopa.Rate.GoodputBps/1e6)
	}
}

func TestMercuryAllDead(t *testing.T) {
	a := MercuryWaterfill(ofdm.QPSK, flatCoefs(0, 8), 4)
	if len(a.PowerMW) != 8 {
		t.Fatal("bad shape")
	}
}
