package power

import "copa/internal/ofdm"

// Waterfill implements classic waterfilling, the capacity-optimal
// allocation for Gaussian inputs (§2.1's reference point): p_k =
// max(0, μ − 1/coef_k), with the water level μ set by bisection to spend
// the budget. It is included as a baseline; the paper notes it performs
// poorly for the discrete constellations practical radios transmit.
func Waterfill(coef []float64, budgetMW float64) Allocation {
	spend := func(mu float64) float64 {
		var total float64
		for _, g := range coef {
			if g <= 0 {
				continue
			}
			if p := mu - 1/g; p > 0 {
				total += p
			}
		}
		return total
	}

	// Bracket the water level.
	lo, hi := 0.0, 1.0
	for spend(hi) < budgetMW {
		hi *= 2
		if hi > 1e18 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if spend(mid) < budgetMW {
			lo = mid
		} else {
			hi = mid
		}
	}
	mu := (lo + hi) / 2

	powers := make([]float64, len(coef))
	dropped := 0
	for k, g := range coef {
		if g > 0 {
			if p := mu - 1/g; p > 0 {
				powers[k] = p
				continue
			}
		}
		dropped++
	}
	return Allocation{
		PowerMW: powers,
		Rate:    ofdm.BestRate(predictedSINRs(powers, coef)),
		Dropped: dropped,
	}
}
