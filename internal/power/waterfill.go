package power

import (
	"copa/internal/linalg"
	"copa/internal/ofdm"
)

// waterfillSpend is the budget spent at water level mu: Σ max(0, μ − 1/g).
func waterfillSpend(coef []float64, mu float64) float64 {
	var total float64
	for _, g := range coef {
		if g <= 0 {
			continue
		}
		if p := mu - 1/g; p > 0 {
			total += p
		}
	}
	return total
}

// Waterfill implements classic waterfilling, the capacity-optimal
// allocation for Gaussian inputs (§2.1's reference point): p_k =
// max(0, μ − 1/coef_k), with the water level μ set by bisection to spend
// the budget. It is included as a baseline; the paper notes it performs
// poorly for the discrete constellations practical radios transmit.
func Waterfill(coef []float64, budgetMW float64) Allocation {
	var ws linalg.Workspace
	a := WaterfillWS(&ws, coef, budgetMW)
	a.PowerMW = append([]float64(nil), a.PowerMW...)
	return a
}

// WaterfillWS is Waterfill with all scratch and the returned power vector
// carved from ws: allocation-free once ws has warmed up. The returned
// Allocation.PowerMW lives in ws (see linalg.Workspace ownership rules).
func WaterfillWS(ws *linalg.Workspace, coef []float64, budgetMW float64) Allocation {
	// Bracket the water level.
	lo, hi := 0.0, 1.0
	for waterfillSpend(coef, hi) < budgetMW {
		hi *= 2
		if hi > 1e18 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if waterfillSpend(coef, mid) < budgetMW {
			lo = mid
		} else {
			hi = mid
		}
	}
	mu := (lo + hi) / 2

	powers := ws.Float64s(len(coef))
	dropped := 0
	for k, g := range coef {
		if g > 0 {
			if p := mu - 1/g; p > 0 {
				powers[k] = p
				continue
			}
		}
		dropped++
	}
	sinrs := ws.Float64s(len(coef))
	predictedSINRsInto(sinrs, powers, coef)
	return Allocation{
		PowerMW: powers,
		Rate:    ofdm.BestRate(sinrs),
		Dropped: dropped,
	}
}
