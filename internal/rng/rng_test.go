package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children with different tags differ; same tag from same parent
	// state matches.
	p1, p2 := New(7), New(7)
	c1, c2 := p1.Split(1), p2.Split(1)
	for i := 0; i < 10; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("same split diverged")
		}
	}
	p3 := New(7)
	d := p3.Split(2)
	same := true
	e := New(7).Split(1)
	for i := 0; i < 10; i++ {
		if d.Float64() != e.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different tags produced identical streams")
	}
}

func TestSplitDoesNotPerturbSiblingOrder(t *testing.T) {
	// Drawing more values from one child must not change another child
	// derived from a later parent state in a fixed call order.
	mk := func(extraDraws int) float64 {
		p := New(3)
		c1 := p.Split(1)
		for i := 0; i < extraDraws; i++ {
			c1.Float64()
		}
		c2 := p.Split(2)
		return c2.Float64()
	}
	if mk(0) != mk(50) {
		t.Error("sibling stream perturbed by consumption in another child")
	}
}

func TestDeriveStateless(t *testing.T) {
	// Derive must not depend on call order or on any stream state.
	a := Derive(7, 3, 5)
	New(7).Float64() // consuming an unrelated stream changes nothing
	Derive(7, 99)
	if b := Derive(7, 3, 5); a != b {
		t.Fatal("Derive is not a pure function of (seed, path)")
	}
	// Path composition: Derive(s, a, b) is the b-th child of the a-th child.
	if Derive(7, 3, 5) != Derive(Derive(7, 3), 5) {
		t.Error("path elements do not compose")
	}
	// NewSub streams match a Source seeded with the derived seed.
	x, y := NewSub(11, 4), New(Derive(11, 4))
	for i := 0; i < 10; i++ {
		if x.Float64() != y.Float64() {
			t.Fatal("NewSub diverged from New(Derive(...))")
		}
	}
}

func TestDeriveCollisions(t *testing.T) {
	// No collisions across a campaign-scale grid of (seed, shard, index)
	// paths: 3 seeds × 50k indices plus two-level paths. A 64-bit mix has
	// ~2⁻⁶⁴ pairwise collision odds, so any hit here is a real defect
	// (e.g. an accidental fixed point or a path that ignores an element).
	seen := make(map[int64][3]uint64, 200000)
	check := func(d int64, id [3]uint64) {
		if prev, ok := seen[d]; ok {
			t.Fatalf("collision: %v and %v both derive %#x", prev, id, uint64(d))
		}
		seen[d] = id
	}
	for _, seed := range []int64{0, 1, -42} {
		for i := uint64(0); i < 50000; i++ {
			check(Derive(seed, i), [3]uint64{uint64(seed), i, 0})
		}
	}
	for shard := uint64(0); shard < 64; shard++ {
		for i := uint64(0); i < 256; i++ {
			check(Derive(9, shard, i), [3]uint64{9, shard, i})
		}
	}
	// Adjacent single-level and two-level paths must differ too.
	if Derive(9, 0, 1) == Derive(9, 1) || Derive(9, 1, 0) == Derive(9, 1) {
		t.Error("multi-level path collides with single-level path")
	}
}

func TestDeriveIndependence(t *testing.T) {
	// First draws of sibling substreams must look i.i.d. uniform: decile
	// histogram flat, and no correlation between adjacent indices.
	const n = 10000
	var buckets [10]int
	var sumProd, sumA, sumB float64
	prev := 0.0
	for i := 0; i < n; i++ {
		v := NewSub(123, uint64(i)).Float64()
		buckets[int(v*10)]++
		if i > 0 {
			sumProd += v * prev
			sumA += v
			sumB += prev
		}
		prev = v
	}
	for d, c := range buckets {
		if c < n/10-300 || c > n/10+300 {
			t.Errorf("decile %d has %d draws, want ≈%d", d, c, n/10)
		}
	}
	// Covariance of adjacent-index first draws ≈ 0 (±0.01 at n=10k).
	m := float64(n - 1)
	cov := sumProd/m - (sumA/m)*(sumB/m)
	if math.Abs(cov) > 0.01 {
		t.Errorf("adjacent substreams correlated: cov %.4f", cov)
	}
}

func TestCNVariance(t *testing.T) {
	src := New(11)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := src.CN(4.0)
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	mean := sum / n
	if math.Abs(mean-4.0) > 0.15 {
		t.Errorf("CN variance %.3f, want 4.0", mean)
	}
}

func TestRayleighMeanSquare(t *testing.T) {
	src := New(13)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		r := src.Rayleigh(2.5)
		if r < 0 {
			t.Fatal("negative magnitude")
		}
		sum += r * r
	}
	if ms := sum / n; math.Abs(ms-2.5) > 0.1 {
		t.Errorf("E[X²] = %.3f, want 2.5", ms)
	}
}

func TestUniformRange(t *testing.T) {
	src := New(17)
	for i := 0; i < 1000; i++ {
		v := src.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("uniform out of range: %g", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	src := New(19)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if src.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency %.3f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%20)
		perm := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShuffleAndIntn(t *testing.T) {
	src := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	src.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Error("shuffle lost elements")
	}
	for i := 0; i < 100; i++ {
		if v := src.Intn(5); v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if src.Norm() == src.Norm() {
		t.Error("Norm repeating")
	}
}

func TestRayleighZeroGuard(t *testing.T) {
	// The log(0) guard must never produce Inf/NaN over many draws.
	src := New(29)
	for i := 0; i < 10000; i++ {
		r := src.Rayleigh(1)
		if math.IsInf(r, 0) || math.IsNaN(r) {
			t.Fatal("Rayleigh produced Inf/NaN")
		}
	}
}
