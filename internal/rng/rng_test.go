package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children with different tags differ; same tag from same parent
	// state matches.
	p1, p2 := New(7), New(7)
	c1, c2 := p1.Split(1), p2.Split(1)
	for i := 0; i < 10; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("same split diverged")
		}
	}
	p3 := New(7)
	d := p3.Split(2)
	same := true
	e := New(7).Split(1)
	for i := 0; i < 10; i++ {
		if d.Float64() != e.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different tags produced identical streams")
	}
}

func TestSplitDoesNotPerturbSiblingOrder(t *testing.T) {
	// Drawing more values from one child must not change another child
	// derived from a later parent state in a fixed call order.
	mk := func(extraDraws int) float64 {
		p := New(3)
		c1 := p.Split(1)
		for i := 0; i < extraDraws; i++ {
			c1.Float64()
		}
		c2 := p.Split(2)
		return c2.Float64()
	}
	if mk(0) != mk(50) {
		t.Error("sibling stream perturbed by consumption in another child")
	}
}

func TestCNVariance(t *testing.T) {
	src := New(11)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := src.CN(4.0)
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	mean := sum / n
	if math.Abs(mean-4.0) > 0.15 {
		t.Errorf("CN variance %.3f, want 4.0", mean)
	}
}

func TestRayleighMeanSquare(t *testing.T) {
	src := New(13)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		r := src.Rayleigh(2.5)
		if r < 0 {
			t.Fatal("negative magnitude")
		}
		sum += r * r
	}
	if ms := sum / n; math.Abs(ms-2.5) > 0.1 {
		t.Errorf("E[X²] = %.3f, want 2.5", ms)
	}
}

func TestUniformRange(t *testing.T) {
	src := New(17)
	for i := 0; i < 1000; i++ {
		v := src.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("uniform out of range: %g", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	src := New(19)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if src.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency %.3f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%20)
		perm := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShuffleAndIntn(t *testing.T) {
	src := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	src.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Error("shuffle lost elements")
	}
	for i := 0; i < 100; i++ {
		if v := src.Intn(5); v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if src.Norm() == src.Norm() {
		t.Error("Norm repeating")
	}
}

func TestRayleighZeroGuard(t *testing.T) {
	// The log(0) guard must never produce Inf/NaN over many draws.
	src := New(29)
	for i := 0; i < 10000; i++ {
		r := src.Rayleigh(1)
		if math.IsInf(r, 0) || math.IsNaN(r) {
			t.Fatal("Rayleigh produced Inf/NaN")
		}
	}
}
