// Package rng provides deterministic, splittable random sources for the
// simulator. Every experiment in this repository is seeded, so a figure or
// table regenerates identically run to run; per-topology and per-module
// streams are derived from a master seed so adding draws in one module does
// not perturb another.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random stream with helpers for the
// distributions the channel simulator needs.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// splitMix64 mixes a 64-bit value; used to derive independent child seeds.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives an independent child stream identified by tag. Streams with
// distinct tags are statistically independent of each other and of the
// parent's future output.
//
// Split draws from the parent, so the child depends on how many Splits
// preceded it — fine inside one experiment, but unusable when work is
// sharded across workers that must agree on substreams without sharing a
// parent. Use Derive/NewSub for that.
func (s *Source) Split(tag uint64) *Source {
	child := splitMix64(uint64(s.r.Int63()) ^ splitMix64(tag))
	return New(int64(child))
}

// Derive maps (seed, path...) to a child seed with a stateless SplitMix64
// chain: the result depends only on the seed and the path elements, never
// on call order or on any other stream's consumption. Two distinct paths
// from the same seed give statistically independent seeds, so sharded or
// resumed work derives bit-identical substreams regardless of which
// worker computes them, in what order, or after how many restarts. Path
// elements compose left to right — Derive(s, a, b) == Derive(Derive(s, a), b)
// — and each step mixes only the path element before folding it in, so the
// map is asymmetric in (seed, element): Derive(a, b) differs from
// Derive(b, a).
func Derive(seed int64, path ...uint64) int64 {
	x := uint64(seed)
	for _, p := range path {
		x = splitMix64(x ^ splitMix64(p))
	}
	return int64(x)
}

// NewSub returns a Source seeded with Derive(seed, path...) — the
// stateless counterpart of New(seed) followed by Splits.
func NewSub(seed int64, path ...uint64) *Source {
	return New(Derive(seed, path...))
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Norm returns a standard normal sample.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// CN returns a circularly symmetric complex Gaussian sample with the given
// total variance: real and imaginary parts are each N(0, variance/2).
func (s *Source) CN(variance float64) complex128 {
	sd := math.Sqrt(variance / 2)
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// Rayleigh returns a Rayleigh-distributed magnitude whose underlying
// complex Gaussian has total variance meanSquare (E[X²] = meanSquare).
func (s *Source) Rayleigh(meanSquare float64) float64 {
	// |CN(0, σ²)| is Rayleigh with E[|·|²] = σ².
	u := s.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-meanSquare * math.Log(u))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle shuffles n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }
