package ofdm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMCSDataRates(t *testing.T) {
	// The canonical 802.11n 20 MHz, 800 ns GI single-stream rates.
	want := []float64{6.5e6, 13e6, 19.5e6, 26e6, 39e6, 52e6, 58.5e6, 65e6}
	table := Table()
	if len(table) != 8 {
		t.Fatalf("MCS table has %d entries, want 8", len(table))
	}
	for i, m := range table {
		if got := m.DataRateBps(); math.Abs(got-want[i]) > 1 {
			t.Errorf("%v rate = %.1f Mb/s, want %.1f", m, got/1e6, want[i]/1e6)
		}
		if m.Index != i {
			t.Errorf("MCS index %d at position %d", m.Index, i)
		}
	}
}

func TestModulationBits(t *testing.T) {
	cases := []struct {
		m    Modulation
		bits int
		pts  int
	}{{BPSK, 1, 2}, {QPSK, 2, 4}, {QAM16, 4, 16}, {QAM64, 6, 64}}
	for _, c := range cases {
		if c.m.BitsPerSymbol() != c.bits || c.m.Points() != c.pts {
			t.Errorf("%v: bits=%d pts=%d", c.m, c.m.BitsPerSymbol(), c.m.Points())
		}
	}
}

func TestQFunc(t *testing.T) {
	if got := QFunc(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Q(0) = %g", got)
	}
	// Q(1.96) ≈ 0.025 (two-sided 95%).
	if got := QFunc(1.96); math.Abs(got-0.025) > 1e-3 {
		t.Errorf("Q(1.96) = %g", got)
	}
	if QFunc(10) > 1e-20 {
		t.Error("Q(10) should be negligible")
	}
}

func TestUncodedBERMonotoneInSINR(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		prev := 1.0
		for snrDB := -10.0; snrDB <= 40; snrDB += 1 {
			ber := UncodedBER(m, math.Pow(10, snrDB/10))
			if ber > prev+1e-15 {
				t.Errorf("%v: BER not monotone at %g dB", m, snrDB)
			}
			if ber < 0 || ber > 0.5 {
				t.Errorf("%v: BER out of range: %g", m, ber)
			}
			prev = ber
		}
	}
}

func TestUncodedBEROrderingAcrossModulations(t *testing.T) {
	// At any fixed SINR, denser constellations have equal or worse BER.
	// (Checked from 10 dB up: below that the nearest-neighbour QAM
	// approximation's prefactors cross over, and all constellations are
	// unusable anyway.)
	for snrDB := 10.0; snrDB <= 35; snrDB += 5 {
		s := math.Pow(10, snrDB/10)
		b := UncodedBER(BPSK, s)
		q := UncodedBER(QPSK, s)
		q16 := UncodedBER(QAM16, s)
		q64 := UncodedBER(QAM64, s)
		if b > q+1e-12 || q > q16+1e-12 || q16 > q64+1e-12 {
			t.Errorf("BER ordering violated at %g dB: %g %g %g %g", snrDB, b, q, q16, q64)
		}
	}
}

func TestUncodedBERKnownPoints(t *testing.T) {
	// BPSK at 9.6 dB SNR is the textbook 1e-5 point.
	ber := UncodedBER(BPSK, math.Pow(10, 0.96))
	if ber < 1e-6 || ber > 1e-4 {
		t.Errorf("BPSK@9.6dB BER = %g, want ≈1e-5", ber)
	}
	if got := UncodedBER(QAM64, 0); got != 0.5 {
		t.Errorf("BER at 0 SINR = %g, want 0.5", got)
	}
	if got := UncodedBER(QAM64, -1); got != 0.5 {
		t.Errorf("BER at negative SINR = %g, want 0.5", got)
	}
}

func TestSINRForBERInverts(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		for _, target := range []float64{1e-2, 1e-4, 1e-6} {
			s := SINRForBER(m, target)
			got := UncodedBER(m, s)
			if math.Abs(math.Log10(got)-math.Log10(target)) > 0.05 {
				t.Errorf("%v target %g: SINR %g gives BER %g", m, target, s, got)
			}
		}
	}
	if SINRForBER(BPSK, 0.5) != 0 {
		t.Error("SINRForBER(0.5) should be 0")
	}
}

func TestCodedBERProperties(t *testing.T) {
	for _, r := range []CodeRate{R12, R23, R34, R56} {
		if got := CodedBER(r, 0); got != 0 {
			t.Errorf("%v: CodedBER(0) = %g", r, got)
		}
		prev := 0.0
		for p := 1e-6; p <= 0.4; p *= 2 {
			c := CodedBER(r, p)
			if c < prev-1e-15 {
				t.Errorf("%v: coded BER not monotone at p=%g", r, p)
			}
			if c < 0 || c > 0.5 {
				t.Errorf("%v: coded BER out of range: %g", r, c)
			}
			prev = c
		}
		// Coding must help at low raw BER.
		if c := CodedBER(r, 1e-4); c >= 1e-4 {
			t.Errorf("%v: coding does not help at p=1e-4: %g", r, c)
		}
	}
}

func TestCodedBERStrongerCodesWin(t *testing.T) {
	// At moderate raw BER, lower code rates decode better.
	for _, p := range []float64{1e-3, 1e-2} {
		c12 := CodedBER(R12, p)
		c34 := CodedBER(R34, p)
		c56 := CodedBER(R56, p)
		if !(c12 <= c34 && c34 <= c56) {
			t.Errorf("p=%g: rate ordering violated: 1/2=%g 3/4=%g 5/6=%g", p, c12, c34, c56)
		}
	}
}

func TestFrameErrorRate(t *testing.T) {
	if FrameErrorRate(0, 12000) != 0 {
		t.Error("FER(0) != 0")
	}
	if FrameErrorRate(0.5, 12000) != 1 {
		t.Error("FER(0.5) != 1")
	}
	// Small-p approximation: FER ≈ bits × p.
	fer := FrameErrorRate(1e-9, 12000)
	if math.Abs(fer-12000e-9)/12000e-9 > 0.01 {
		t.Errorf("FER small-p = %g, want ≈ %g", fer, 12000e-9)
	}
	if f := FrameErrorRate(1e-3, 12000); f < 0.99 {
		t.Errorf("FER at p=1e-3 over 12kb = %g, want ≈1", f)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {19, 10, 92378}, {4, 5, 0}, {4, -1, 0}}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestPairwiseErrorProb(t *testing.T) {
	if pairwiseErrorProb(10, 0) != 0 {
		t.Error("P2(d, 0) != 0")
	}
	if pairwiseErrorProb(10, 0.5) != 0.5 {
		t.Error("P2(d, 0.5) != 0.5")
	}
	// d=1: error iff the single differing bit flips.
	if got := pairwiseErrorProb(1, 0.1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("P2(1, 0.1) = %g, want 0.1", got)
	}
	// d=2: ½C(2,1)p·q + p² = pq + p².
	p := 0.1
	want := p*(1-p) + p*p
	if got := pairwiseErrorProb(2, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("P2(2, 0.1) = %g, want %g", got, want)
	}
}

func TestThroughputForMCSAllGoodSubcarriers(t *testing.T) {
	sinrs := make([]float64, NumSubcarriers)
	for i := range sinrs {
		sinrs[i] = math.Pow(10, 35.0/10) // 35 dB: 64-QAM 5/6 territory
	}
	best := BestRate(sinrs)
	if best.MCS.Index != 7 {
		t.Errorf("35 dB flat channel: best MCS = %v, want MCS7", best.MCS)
	}
	if math.Abs(best.GoodputBps-65e6) > 0.5e6 {
		t.Errorf("goodput = %.1f Mb/s, want ≈65", best.GoodputBps/1e6)
	}
}

func TestThroughputWeakSubcarriersSinkFrame(t *testing.T) {
	// 48 strong subcarriers + 4 at 0 dB: the single decoder forces a
	// lower rate. Dropping the weak ones should recover throughput.
	sinrs := make([]float64, NumSubcarriers)
	for i := range sinrs {
		sinrs[i] = math.Pow(10, 35.0/10)
	}
	for i := 0; i < 4; i++ {
		sinrs[i] = 1 // 0 dB
	}
	with := BestRate(sinrs)

	dropped := append([]float64(nil), sinrs...)
	for i := 0; i < 4; i++ {
		dropped[i] = -1
	}
	without := BestRate(dropped)
	if without.GoodputBps <= with.GoodputBps {
		t.Errorf("dropping bad subcarriers should help: with=%.1f without=%.1f Mb/s",
			with.GoodputBps/1e6, without.GoodputBps/1e6)
	}
	if without.MCS.Index <= with.MCS.Index {
		t.Errorf("dropping should enable a higher MCS: %v vs %v", with.MCS, without.MCS)
	}
}

func TestThroughputAllDropped(t *testing.T) {
	sinrs := []float64{-1, -1, -1}
	r := BestRate(sinrs)
	if r.GoodputBps != 0 {
		t.Errorf("all-dropped goodput = %g", r.GoodputBps)
	}
}

func TestMultiDecoderBeatsSingleOnVariableChannel(t *testing.T) {
	// Highly variable SINR: per-subcarrier rate adaptation must win.
	sinrs := make([]float64, NumSubcarriers)
	for i := range sinrs {
		if i%2 == 0 {
			sinrs[i] = math.Pow(10, 35.0/10)
		} else {
			sinrs[i] = math.Pow(10, 5.0/10)
		}
	}
	single := BestRate(sinrs).GoodputBps
	multi := MultiDecoderThroughputBps(sinrs)
	if multi <= single {
		t.Errorf("multi-decoder %.1f <= single %.1f Mb/s", multi/1e6, single/1e6)
	}
}

func TestMultiDecoderEqualsSingleOnFlatChannel(t *testing.T) {
	sinrs := make([]float64, NumSubcarriers)
	for i := range sinrs {
		sinrs[i] = math.Pow(10, 35.0/10)
	}
	single := BestRate(sinrs).GoodputBps
	multi := MultiDecoderThroughputBps(sinrs)
	if math.Abs(multi-single)/single > 0.02 {
		t.Errorf("flat channel: multi %.2f vs single %.2f Mb/s", multi/1e6, single/1e6)
	}
}

// Property: goodput is monotone under improving any one subcarrier.
func TestQuickGoodputMonotone(t *testing.T) {
	f := func(seedRaw uint32, idxRaw uint8) bool {
		sinrs := make([]float64, NumSubcarriers)
		seed := float64(seedRaw%1000) / 999
		for i := range sinrs {
			sinrs[i] = math.Pow(10, (5+25*seed+float64(i%7))/10)
		}
		idx := int(idxRaw) % NumSubcarriers
		before := BestRate(sinrs).GoodputBps
		sinrs[idx] *= 4
		after := BestRate(sinrs).GoodputBps
		return after >= before-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestShannonCapacity(t *testing.T) {
	// One subcarrier at SINR 1 → 1 bit per 4 µs symbol = 250 kb/s.
	got := ShannonCapacityBps([]float64{1})
	if math.Abs(got-250e3) > 1 {
		t.Errorf("Shannon(0 dB, 1 sc) = %g, want 250e3", got)
	}
	if ShannonCapacityBps([]float64{-1, 0}) != 0 {
		t.Error("non-positive SINRs should contribute 0")
	}
}

func TestSumGoodput(t *testing.T) {
	rates := []StreamRate{{GoodputBps: 1e6}, {GoodputBps: 2e6}}
	if got := SumGoodput(rates); got != 3e6 {
		t.Errorf("SumGoodput = %g", got)
	}
}

func BenchmarkBestRate(b *testing.B) {
	sinrs := make([]float64, NumSubcarriers)
	for i := range sinrs {
		sinrs[i] = math.Pow(10, float64(10+i%20)/10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestRate(sinrs)
	}
}

func TestHTTable(t *testing.T) {
	tbl := HTTable(2)
	if len(tbl) != 16 {
		t.Fatalf("%d entries, want 16", len(tbl))
	}
	// MCS15 = 2 streams of 64-QAM 5/6 = 130 Mb/s, the paper's 4x2 peak.
	m15 := tbl[15]
	if m15.Index != 15 || m15.Streams != 2 {
		t.Fatalf("entry 15: %+v", m15)
	}
	if math.Abs(m15.DataRateBps()-130e6) > 1 {
		t.Errorf("MCS15 rate %.1f Mb/s, want 130", m15.DataRateBps()/1e6)
	}
	if m15.String() != "MCS15 (2x 64-QAM 5/6)" {
		t.Errorf("string: %s", m15.String())
	}
	// Clamps.
	if len(HTTable(0)) != 8 || len(HTTable(9)) != 32 {
		t.Error("stream clamping wrong")
	}
}
