package ofdm

import "math"

// SensitivityDB returns the minimum flat-channel SINR (dB) at which this
// MCS delivers MPDUs with at most the target frame-error rate — the
// "waterfall" operating point rate adaptation hinges on. Computed by
// bisection over the analytic BER/FER model.
func (m MCS) SensitivityDB(targetFER float64) float64 {
	if targetFER <= 0 || targetFER >= 1 {
		panic("ofdm: target FER must be in (0, 1)")
	}
	fer := func(snrDB float64) float64 {
		raw := UncodedBER(m.Modulation, math.Pow(10, snrDB/10))
		return FrameErrorRate(CodedBER(m.CodeRate, raw), MPDUBytes*8)
	}
	lo, hi := -10.0, 60.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if fer(mid) > targetFER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SensitivityTable returns each MCS's 10%-FER threshold in dB, in MCS
// order. Successive entries must increase: denser constellations and
// weaker codes need more SINR.
func SensitivityTable() []float64 {
	out := make([]float64, 0, len(Table()))
	for _, m := range Table() {
		out = append(out, m.SensitivityDB(0.1))
	}
	return out
}
