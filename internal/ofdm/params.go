// Package ofdm models the 802.11n OFDM physical layer at the granularity
// COPA needs: the 20 MHz subcarrier structure, the high-throughput MCS
// table, analytic uncoded bit-error rates per constellation, union-bound
// coded BER for the 802.11 convolutional code, and the mapping from
// per-subcarrier SINR to predicted throughput under a single decoder (the
// hardware constraint that motivates COPA) or one decoder per subcarrier
// (the Fig. 14 thought experiment).
package ofdm

import "time"

// 802.11n 20 MHz channelization constants.
const (
	// NumSubcarriers is the number of data subcarriers in a 20 MHz
	// 802.11n HT channel (out of a 64-point FFT; 4 pilots and 8 guard/DC
	// bins carry no data; the paper's per-subcarrier plots span ~52).
	NumSubcarriers = 52

	// FFTSize is the OFDM FFT length for a 20 MHz channel.
	FFTSize = 64

	// SymbolDuration is the full OFDM symbol time including the 800 ns
	// guard interval (3.2 µs useful + 0.8 µs cyclic prefix).
	SymbolDuration = 4 * time.Microsecond

	// CyclicPrefix is the 802.11 long guard interval. Concurrent
	// transmissions must be synchronized within this window (§3.1).
	CyclicPrefix = 800 * time.Nanosecond

	// TxOpDuration is the standard transmit-opportunity length the paper
	// uses for throughput prediction (§4.1).
	TxOpDuration = 4 * time.Millisecond

	// MPDUBytes is the MAC protocol data unit size assumed when turning
	// bit-error rates into frame-error rates. A-MPDU aggregation retries
	// each MPDU independently, so throughput scales with per-MPDU
	// delivery probability.
	MPDUBytes = 1500
)

// ChannelBandwidthHz is the occupied channel bandwidth.
const ChannelBandwidthHz = 20e6

// SubcarrierSpacingHz is the OFDM subcarrier spacing (312.5 kHz).
const SubcarrierSpacingHz = ChannelBandwidthHz / FFTSize
