package ofdm

import "math"

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// UncodedBER returns the pre-decoder (raw) bit-error rate of the given
// constellation at the given post-equalization SINR (linear, per symbol).
// Gray mapping and the standard nearest-neighbour approximations are used,
// as in Halperin et al. (SIGCOMM 2010), which the paper follows for
// throughput prediction.
func UncodedBER(m Modulation, sinr float64) float64 {
	if sinr <= 0 {
		return 0.5
	}
	var ber float64
	switch m {
	case BPSK:
		ber = QFunc(math.Sqrt(2 * sinr))
	case QPSK:
		// QPSK per-bit error equals BPSK at half the symbol SNR.
		ber = QFunc(math.Sqrt(sinr))
	case QAM16, QAM64:
		mm := float64(m.Points())
		k := float64(m.Modulation().BitsPerSymbol())
		ber = 4 / k * (1 - 1/math.Sqrt(mm)) * QFunc(math.Sqrt(3*sinr/(mm-1)))
	default:
		panic("ofdm: unknown modulation")
	}
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// Modulation returns m itself; it exists so UncodedBER can be written
// uniformly over Modulation values (M-QAM needs bits-per-symbol).
func (m Modulation) Modulation() Modulation { return m }

// SINRForBER inverts UncodedBER: the linear SINR at which the constellation
// reaches the target raw BER. Computed by bisection; used by power
// allocators that place subcarriers at an SINR operating point.
func SINRForBER(m Modulation, targetBER float64) float64 {
	if targetBER >= 0.5 {
		return 0
	}
	lo, hi := 0.0, 1e9
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if UncodedBER(m, mid) > targetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ShannonCapacityBps returns the aggregate Shannon capacity (bits/s) of a
// set of per-subcarrier linear SINRs, as a reference upper bound.
func ShannonCapacityBps(sinrs []float64) float64 {
	var bits float64
	for _, s := range sinrs {
		if s > 0 {
			bits += math.Log2(1 + s)
		}
	}
	return bits / SymbolDuration.Seconds()
}
