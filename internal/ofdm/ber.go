package ofdm

import "math"

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// modParams holds the constellation constants of UncodedBER, hoisted out
// of the rate-selection hot loop. scale and argDiv are produced by the
// same expressions the scalar switch evaluated per call, so using them is
// bit-identical; they just stop being recomputed per subcarrier.
type modParams struct {
	// kind selects the BER formula: 0 = BPSK, 1 = QPSK, 2 = M-QAM.
	kind int
	// scale is the M-QAM prefactor 4/k·(1−1/√M).
	scale float64
	// argDiv is the M-QAM Q-argument divisor M−1.
	argDiv float64
}

var modTab = func() [4]modParams {
	var tab [4]modParams
	tab[BPSK] = modParams{kind: 0}
	tab[QPSK] = modParams{kind: 1}
	for _, m := range []Modulation{QAM16, QAM64} {
		mm := float64(m.Points())
		k := float64(m.Modulation().BitsPerSymbol())
		tab[m] = modParams{kind: 2, scale: 4 / k * (1 - 1/math.Sqrt(mm)), argDiv: mm - 1}
	}
	return tab
}()

// UncodedBER returns the pre-decoder (raw) bit-error rate of the given
// constellation at the given post-equalization SINR (linear, per symbol).
// Gray mapping and the standard nearest-neighbour approximations are used,
// as in Halperin et al. (SIGCOMM 2010), which the paper follows for
// throughput prediction.
func UncodedBER(m Modulation, sinr float64) float64 {
	if m < 0 || int(m) >= len(modTab) {
		panic("ofdm: unknown modulation")
	}
	return uncodedBER(&modTab[m], sinr)
}

// uncodedBER is UncodedBER against hoisted constellation constants.
func uncodedBER(mp *modParams, sinr float64) float64 {
	if sinr <= 0 {
		return 0.5
	}
	var ber float64
	switch mp.kind {
	case 0: // BPSK
		ber = QFunc(math.Sqrt(2 * sinr))
	case 1: // QPSK per-bit error equals BPSK at half the symbol SNR.
		ber = QFunc(math.Sqrt(sinr))
	default: // square M-QAM
		ber = mp.scale * QFunc(math.Sqrt(3*sinr/mp.argDiv))
	}
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// Modulation returns m itself; it exists so UncodedBER can be written
// uniformly over Modulation values (M-QAM needs bits-per-symbol).
func (m Modulation) Modulation() Modulation { return m }

// SINRForBER inverts UncodedBER: the linear SINR at which the constellation
// reaches the target raw BER. Computed by bisection; used by power
// allocators that place subcarriers at an SINR operating point.
func SINRForBER(m Modulation, targetBER float64) float64 {
	if targetBER >= 0.5 {
		return 0
	}
	lo, hi := 0.0, 1e9
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if UncodedBER(m, mid) > targetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ShannonCapacityBps returns the aggregate Shannon capacity (bits/s) of a
// set of per-subcarrier linear SINRs, as a reference upper bound.
func ShannonCapacityBps(sinrs []float64) float64 {
	var bits float64
	for _, s := range sinrs {
		if s > 0 {
			bits += math.Log2(1 + s)
		}
	}
	return bits / SymbolDuration.Seconds()
}
