package ofdm

import "math"

// Distance spectra for the 802.11 K=7 (133,171) convolutional code and its
// punctured rate-2/3, 3/4 and 5/6 variants. For each rate, freeDistance is
// d_free and weights[i] is the total information-bit weight c_{d_free+i}
// of all error events at Hamming distance d_free+i. The tables are the
// standard Haccoun–Bégin / Frenger et al. spectra used throughout the
// 802.11 performance-analysis literature.
type distanceSpectrum struct {
	freeDistance int
	// bitsPerCycle is the number of information bits per puncturing
	// cycle; the union bound is normalized by it.
	bitsPerCycle float64
	weights      []float64
}

var spectra = map[CodeRate]distanceSpectrum{
	R12: {
		freeDistance: 10,
		bitsPerCycle: 1,
		weights:      []float64{36, 0, 211, 0, 1404, 0, 11633, 0, 77433, 0},
	},
	R23: {
		freeDistance: 6,
		bitsPerCycle: 2,
		weights:      []float64{3, 70, 285, 1276, 6160, 27128, 117019, 498860, 2103891, 8784123},
	},
	R34: {
		freeDistance: 5,
		bitsPerCycle: 3,
		weights:      []float64{42, 201, 1492, 10469, 62935, 379644, 2253373, 13073811, 75152755, 428005675},
	},
	R56: {
		freeDistance: 4,
		bitsPerCycle: 5,
		weights:      []float64{92, 528, 8694, 79453, 791795, 7369828, 67809347, 610280087, 5427275376, 47664215454},
	},
}

// maxDistance is the largest Hamming distance any spectrum reaches
// (d_free + len(weights) − 1); it bounds the integer exponents the
// pairwise-error-probability terms need, so the power caches below can be
// fixed-size stack arrays.
const maxDistance = 19

// binomial returns C(n, k) as a float64.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// binomTab[d][k] caches C(d, k) for every distance the spectra reach. The
// entries are produced by the same binomial function the scalar path used
// per call, so the cached values are bit-identical to recomputing them —
// the rate-selection hot loop just stops paying the O(k) product per term.
var binomTab = func() [maxDistance + 1][maxDistance + 1]float64 {
	var tab [maxDistance + 1][maxDistance + 1]float64
	for d := 0; d <= maxDistance; d++ {
		for k := 0; k <= d; k++ {
			tab[d][k] = binomial(d, k)
		}
	}
	return tab
}()

// powCache lazily memoizes math.Pow(x, float64(k)) for small integer k.
// Every hit returns the exact float64 math.Pow produced, so results are
// bit-identical to calling math.Pow at every term; the cache only removes
// the repeated transcendental evaluations the union bound performs for
// overlapping exponent ranges across distances.
type powCache struct {
	x    float64
	have [maxDistance + 1]bool
	pow  [maxDistance + 1]float64
}

func (c *powCache) at(k int) float64 {
	if !c.have[k] {
		c.pow[k] = math.Pow(c.x, float64(k))
		c.have[k] = true
	}
	return c.pow[k]
}

// pairwiseErrorProb is the probability that a hard-decision Viterbi
// decoder prefers a path at Hamming distance d given channel crossover
// probability p.
func pairwiseErrorProb(d int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 0.5 {
		return 0.5
	}
	pc := powCache{x: p}
	qc := powCache{x: 1 - p}
	return pairwiseErrorProbCached(d, p, &pc, &qc)
}

// pairwiseErrorProbCached is pairwiseErrorProb with the integer powers of
// p and q = 1−p served from caches shared across a whole union bound. The
// term order and multiply order match the uncached form exactly, so the
// sum is bit-identical.
func pairwiseErrorProbCached(d int, p float64, pc, qc *powCache) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 0.5 {
		return 0.5
	}
	var sum float64
	if d%2 == 0 {
		half := d / 2
		sum += 0.5 * binomTab[d][half] * pc.at(half) * qc.at(half)
		for k := half + 1; k <= d; k++ {
			sum += binomTab[d][k] * pc.at(k) * qc.at(d-k)
		}
	} else {
		for k := (d + 1) / 2; k <= d; k++ {
			sum += binomTab[d][k] * pc.at(k) * qc.at(d-k)
		}
	}
	return sum
}

// CodedBER bounds the post-Viterbi bit-error rate for the 802.11
// convolutional code at the given rate, with raw (pre-decoder) bit-error
// rate p, via the standard union bound over the code's distance spectrum.
// The result is clamped to [0, 0.5]; at raw BERs where the bound exceeds
// 0.5 the decoder is useless anyway.
func CodedBER(rate CodeRate, p float64) float64 {
	spec, ok := spectra[rate]
	if !ok {
		panic("ofdm: unknown code rate")
	}
	if p <= 0 {
		return 0
	}
	// One power cache pair serves every distance of the spectrum: the
	// exponent ranges of consecutive distances overlap heavily, so most
	// math.Pow evaluations are shared instead of recomputed per term.
	pc := powCache{x: p}
	qc := powCache{x: 1 - p}
	var pb float64
	for i, w := range spec.weights {
		if w == 0 {
			continue
		}
		pb += w * pairwiseErrorProbCached(spec.freeDistance+i, p, &pc, &qc)
		if pb > 0.5*spec.bitsPerCycle {
			return 0.5
		}
	}
	pb /= spec.bitsPerCycle
	if pb > 0.5 {
		return 0.5
	}
	return pb
}

// FrameErrorRate converts a post-decoder bit-error rate into the loss
// probability of a frame of the given length, assuming independent
// residual bit errors.
func FrameErrorRate(codedBER float64, bits int) float64 {
	if codedBER <= 0 {
		return 0
	}
	if codedBER >= 0.5 {
		return 1
	}
	// 1 − (1−p)^bits, computed in log space for tiny p.
	fer := -math.Expm1(float64(bits) * math.Log1p(-codedBER))
	if fer > 1 {
		return 1
	}
	return fer
}
