package ofdm

import (
	"math"
	"testing"
)

// sinrMatrix builds a [subcarrier][stream] matrix with uniform per-stream
// dB levels.
func sinrMatrix(streamsDB ...float64) [][]float64 {
	out := make([][]float64, NumSubcarriers)
	for k := range out {
		row := make([]float64, len(streamsDB))
		for s, db := range streamsDB {
			row[s] = math.Pow(10, db/10)
		}
		out[k] = row
	}
	return out
}

func TestJointBestRateFlatTwoStreams(t *testing.T) {
	r := JointBestRate(sinrMatrix(35, 35))
	if r.MCS.Index != 7 {
		t.Errorf("flat 35 dB: MCS %v", r.MCS)
	}
	// Two full streams: 130 Mb/s.
	if math.Abs(r.GoodputBps-130e6) > 1e6 {
		t.Errorf("goodput %.1f Mb/s, want ≈130", r.GoodputBps/1e6)
	}
	if r.Used != 2*NumSubcarriers {
		t.Errorf("used %d cells", r.Used)
	}
}

func TestJointWeakStreamDragsStrongOne(t *testing.T) {
	// Stream 0 at 35 dB, stream 1 at 8 dB: the shared decoder forces a
	// low MCS for everything — the 802.11 constraint COPA exploits.
	joint := JointBestRate(sinrMatrix(35, 8))
	strongAlone := BestRate(columnOf(sinrMatrix(35, 8), 0))
	if joint.MCS.Index >= 7 {
		t.Errorf("weak stream failed to drag the MCS down: %v", joint.MCS)
	}
	// The strong stream alone decodes at full rate.
	if strongAlone.MCS.Index != 7 {
		t.Errorf("strong stream alone should hit MCS7, got %v", strongAlone.MCS)
	}
	// Dropping the weak stream's cells recovers the strong stream.
	m := sinrMatrix(35, 8)
	for k := range m {
		m[k][1] = -1
	}
	recovered := JointBestRate(m)
	if recovered.MCS.Index != 7 {
		t.Errorf("dropping the weak stream should restore MCS7, got %v", recovered.MCS)
	}
	if recovered.GoodputBps <= joint.GoodputBps {
		t.Errorf("dropping should help here: %.1f vs %.1f Mb/s",
			recovered.GoodputBps/1e6, joint.GoodputBps/1e6)
	}
}

func columnOf(m [][]float64, s int) []float64 {
	out := make([]float64, len(m))
	for k := range m {
		out[k] = m[k][s]
	}
	return out
}

func TestJointAllDropped(t *testing.T) {
	m := sinrMatrix(10)
	for k := range m {
		m[k][0] = -1
	}
	r := JointBestRate(m)
	if r.GoodputBps != 0 || r.Used != 0 {
		t.Errorf("all-dropped: %+v", r)
	}
}

func TestJointMatchesSingleStream(t *testing.T) {
	// With one stream the joint model must agree with the per-stream one.
	col := make([]float64, NumSubcarriers)
	m := make([][]float64, NumSubcarriers)
	for k := range m {
		v := math.Pow(10, float64(12+(k*5)%18)/10)
		col[k] = v
		m[k] = []float64{v}
	}
	single := BestRate(col)
	joint := JointBestRate(m)
	if single.MCS != joint.MCS {
		t.Errorf("MCS mismatch: %v vs %v", single.MCS, joint.MCS)
	}
	if math.Abs(single.GoodputBps-joint.GoodputBps) > 1 {
		t.Errorf("goodput mismatch: %g vs %g", single.GoodputBps, joint.GoodputBps)
	}
}

func TestSensitivityTableMonotone(t *testing.T) {
	tbl := SensitivityTable()
	if len(tbl) != 8 {
		t.Fatalf("%d entries", len(tbl))
	}
	for i := 1; i < len(tbl); i++ {
		if tbl[i] <= tbl[i-1] {
			t.Errorf("MCS%d threshold %.1f ≤ MCS%d's %.1f", i, tbl[i], i-1, tbl[i-1])
		}
	}
	// Plausible absolute anchors: BPSK 1/2 decodes in single digits of
	// dB; 64-QAM 5/6 needs the mid-20s.
	if tbl[0] < 0 || tbl[0] > 8 {
		t.Errorf("MCS0 threshold %.1f dB implausible", tbl[0])
	}
	if tbl[7] < 20 || tbl[7] > 32 {
		t.Errorf("MCS7 threshold %.1f dB implausible", tbl[7])
	}
}

func TestSensitivityMatchesFER(t *testing.T) {
	m := Table()[4]
	thr := m.SensitivityDB(0.1)
	atThr := math.Pow(10, thr/10)
	fer := FrameErrorRate(CodedBER(m.CodeRate, UncodedBER(m.Modulation, atThr)), MPDUBytes*8)
	if math.Abs(fer-0.1) > 0.02 {
		t.Errorf("FER at threshold = %.3f, want 0.1", fer)
	}
	above := math.Pow(10, (thr+2)/10)
	if f := FrameErrorRate(CodedBER(m.CodeRate, UncodedBER(m.Modulation, above)), MPDUBytes*8); f > 0.1 {
		t.Errorf("FER above threshold = %.3f, should improve", f)
	}
}

func TestSensitivityPanicsOnBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Table()[0].SensitivityDB(0)
}
