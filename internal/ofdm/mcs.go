package ofdm

import "fmt"

// Modulation identifies a constellation used on a subcarrier.
type Modulation int

// Constellations used by 802.11n high-throughput rates.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String returns the conventional name of the constellation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// BitsPerSymbol returns the number of coded bits carried per subcarrier
// per OFDM symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("ofdm: unknown modulation")
}

// Points returns the constellation size M.
func (m Modulation) Points() int { return 1 << uint(m.BitsPerSymbol()) }

// CodeRate identifies a convolutional code rate of the 802.11 K=7
// (133,171) code family (the higher rates are punctured variants).
type CodeRate int

// Code rates used by 802.11n.
const (
	R12 CodeRate = iota // rate 1/2 (mother code)
	R23                 // rate 2/3
	R34                 // rate 3/4
	R56                 // rate 5/6
)

// String returns the rate as a fraction.
func (r CodeRate) String() string {
	switch r {
	case R12:
		return "1/2"
	case R23:
		return "2/3"
	case R34:
		return "3/4"
	case R56:
		return "5/6"
	}
	return fmt.Sprintf("CodeRate(%d)", int(r))
}

// Value returns the code rate as a float (information bits per coded bit).
func (r CodeRate) Value() float64 {
	switch r {
	case R12:
		return 0.5
	case R23:
		return 2.0 / 3.0
	case R34:
		return 0.75
	case R56:
		return 5.0 / 6.0
	}
	panic("ofdm: unknown code rate")
}

// MCS is one 802.11n modulation-and-coding scheme for a single spatial
// stream on a 20 MHz channel.
type MCS struct {
	Index      int
	Modulation Modulation
	CodeRate   CodeRate
}

// String renders the MCS in the familiar "MCS3 (16-QAM 1/2)" form.
func (m MCS) String() string {
	return fmt.Sprintf("MCS%d (%s %s)", m.Index, m.Modulation, m.CodeRate)
}

// DataRateBps returns the single-stream PHY data rate in bits/s when all
// data subcarriers are used: bitsPerSymbol × codeRate × 52 / 4 µs.
// MCS7 (64-QAM 5/6) gives the paper's headline 65 Mb/s.
func (m MCS) DataRateBps() float64 {
	return float64(m.Modulation.BitsPerSymbol()) * m.CodeRate.Value() *
		NumSubcarriers / SymbolDuration.Seconds()
}

// BitsPerSubcarrierSymbol returns the information bits carried by one
// subcarrier in one OFDM symbol at this MCS.
func (m MCS) BitsPerSubcarrierSymbol() float64 {
	return float64(m.Modulation.BitsPerSymbol()) * m.CodeRate.Value()
}

// Table returns the eight 802.11n single-stream MCS entries (MCS0–MCS7,
// 20 MHz, 800 ns GI), in increasing rate order.
func Table() []MCS { return mcsTable }

// mcsTable is shared by every Table call — the table is read-only by
// convention, and the rate-selection hot loop iterates it per subcarrier,
// so handing out one slice keeps that path allocation-free.
var mcsTable = []MCS{
	{0, BPSK, R12},  // 6.5 Mb/s
	{1, QPSK, R12},  // 13 Mb/s
	{2, QPSK, R34},  // 19.5 Mb/s
	{3, QAM16, R12}, // 26 Mb/s
	{4, QAM16, R34}, // 39 Mb/s
	{5, QAM64, R23}, // 52 Mb/s
	{6, QAM64, R34}, // 58.5 Mb/s
	{7, QAM64, R56}, // 65 Mb/s
}

// HTMCS is a high-throughput MCS index covering multiple equal-modulation
// spatial streams: index = 8·(streams−1) + singleStreamIndex, as in the
// 802.11n HT table (MCS 0–31).
type HTMCS struct {
	Index   int
	Streams int
	// PerStream is the underlying single-stream scheme applied to every
	// stream (802.11n equal modulation).
	PerStream MCS
}

// DataRateBps is the aggregate PHY rate across all streams.
func (h HTMCS) DataRateBps() float64 {
	return float64(h.Streams) * h.PerStream.DataRateBps()
}

// String renders e.g. "MCS12 (2x 16-QAM 3/4)".
func (h HTMCS) String() string {
	return fmt.Sprintf("MCS%d (%dx %s %s)", h.Index, h.Streams,
		h.PerStream.Modulation, h.PerStream.CodeRate)
}

// HTTable returns the 802.11n HT MCS entries for 1..maxStreams spatial
// streams (equal modulation only, as the standard's basic set).
func HTTable(maxStreams int) []HTMCS {
	if maxStreams < 1 {
		maxStreams = 1
	}
	if maxStreams > 4 {
		maxStreams = 4
	}
	var out []HTMCS
	for ns := 1; ns <= maxStreams; ns++ {
		for _, m := range Table() {
			out = append(out, HTMCS{Index: 8*(ns-1) + m.Index, Streams: ns, PerStream: m})
		}
	}
	return out
}
