package ofdm

// StreamRate is the outcome of rate selection for one spatial stream.
type StreamRate struct {
	MCS MCS
	// GoodputBps is the predicted PHY-layer goodput in bits/s (before
	// MAC overheads): data rate scaled by the fraction of subcarriers in
	// use and by per-MPDU delivery probability.
	GoodputBps float64
	// FER is the per-MPDU frame error rate at the selected MCS.
	FER float64
	// UncodedBER is the mean raw BER across used subcarriers.
	UncodedBER float64
}

// ThroughputForMCS predicts the PHY goodput of a single spatial stream
// carrying the given MCS over subcarriers with the given post-equalization
// linear SINRs. Entries equal to sinrDropped (negative) mark subcarriers
// the sender does not use: they carry no data and contribute no errors.
//
// The model follows the paper's methodology (§4.1): per-subcarrier SINR →
// raw BER for the constellation → mean raw BER across used subcarriers
// (one decoder spans all subcarriers, so weak subcarriers drag down the
// whole frame) → union-bound coded BER → MPDU frame-error rate → goodput.
func ThroughputForMCS(m MCS, sinrs []float64) StreamRate {
	used := 0
	var rawSum float64
	for _, s := range sinrs {
		if s < 0 {
			continue // dropped subcarrier
		}
		used++
		rawSum += UncodedBER(m.Modulation, s)
	}
	if used == 0 {
		return StreamRate{MCS: m}
	}
	raw := rawSum / float64(used)
	coded := CodedBER(m.CodeRate, raw)
	fer := FrameErrorRate(coded, MPDUBytes*8)
	goodput := m.DataRateBps() * float64(used) / NumSubcarriers * (1 - fer)
	return StreamRate{MCS: m, GoodputBps: goodput, FER: fer, UncodedBER: raw}
}

// BestRate selects the throughput-maximizing MCS for one spatial stream
// over the given per-subcarrier linear SINRs (negative entries = dropped).
func BestRate(sinrs []float64) StreamRate {
	var best StreamRate
	for _, m := range Table() {
		if r := ThroughputForMCS(m, sinrs); r.GoodputBps > best.GoodputBps {
			best = r
		} else if best.GoodputBps == 0 && r.MCS.Index == 0 {
			best = r // keep MCS0 as the floor when nothing is decodable
		}
	}
	return best
}

// MultiDecoderThroughputBps predicts the PHY goodput of one stream when
// the transceiver can run an independent modulation and decoder per
// subcarrier (the Fig. 14 "N decoders" hypothetical). Each subcarrier
// independently picks its best MCS; its goodput contribution is its
// per-subcarrier rate times its own delivery probability.
func MultiDecoderThroughputBps(sinrs []float64) float64 {
	var total float64
	for _, s := range sinrs {
		if s < 0 {
			continue
		}
		var best float64
		for _, m := range Table() {
			raw := UncodedBER(m.Modulation, s)
			coded := CodedBER(m.CodeRate, raw)
			fer := FrameErrorRate(coded, MPDUBytes*8)
			rate := m.BitsPerSubcarrierSymbol() / SymbolDuration.Seconds() * (1 - fer)
			if rate > best {
				best = rate
			}
		}
		total += best
	}
	return total
}

// SumGoodput adds the goodput of multiple streams.
func SumGoodput(rates []StreamRate) float64 {
	var t float64
	for _, r := range rates {
		t += r.GoodputBps
	}
	return t
}

// JointRate is the outcome of rate selection for a whole multi-stream
// transmission under 802.11n's equal-modulation constraint: one MCS and
// one convolutional decoder span every spatial stream and subcarrier, so
// the weakest used subcarrier–stream cells drag the entire frame (§2.1 —
// this constraint is the reason COPA drops subcarriers at all).
type JointRate struct {
	MCS MCS
	// GoodputBps is the whole transmission's predicted PHY goodput.
	GoodputBps float64
	// FER is the per-MPDU frame error rate at the selected MCS.
	FER float64
	// UncodedBER is the mean raw BER across used subcarrier–stream cells.
	UncodedBER float64
	// Used is the number of subcarrier–stream cells carrying data.
	Used int
}

// JointThroughputForMCS predicts goodput for one MCS over a [subcarrier][stream]
// SINR matrix (negative entries = dropped cells).
func JointThroughputForMCS(m MCS, sinrs [][]float64) JointRate {
	used := 0
	var rawSum float64
	for _, row := range sinrs {
		for _, s := range row {
			if s < 0 {
				continue
			}
			used++
			rawSum += UncodedBER(m.Modulation, s)
		}
	}
	if used == 0 {
		return JointRate{MCS: m}
	}
	raw := rawSum / float64(used)
	coded := CodedBER(m.CodeRate, raw)
	fer := FrameErrorRate(coded, MPDUBytes*8)
	goodput := m.BitsPerSubcarrierSymbol() * float64(used) / SymbolDuration.Seconds() * (1 - fer)
	return JointRate{MCS: m, GoodputBps: goodput, FER: fer, UncodedBER: raw, Used: used}
}

// JointBestRate selects the throughput-maximizing single MCS for a whole
// multi-stream transmission.
func JointBestRate(sinrs [][]float64) JointRate {
	var best JointRate
	for _, m := range Table() {
		if r := JointThroughputForMCS(m, sinrs); r.GoodputBps > best.GoodputBps {
			best = r
		} else if best.GoodputBps == 0 && r.MCS.Index == 0 {
			best = r
		}
	}
	return best
}
