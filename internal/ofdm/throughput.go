package ofdm

// StreamRate is the outcome of rate selection for one spatial stream.
type StreamRate struct {
	MCS MCS
	// GoodputBps is the predicted PHY-layer goodput in bits/s (before
	// MAC overheads): data rate scaled by the fraction of subcarriers in
	// use and by per-MPDU delivery probability.
	GoodputBps float64
	// FER is the per-MPDU frame error rate at the selected MCS.
	FER float64
	// UncodedBER is the mean raw BER across used subcarriers.
	UncodedBER float64
}

// rawBERSum accumulates the raw BER of every used subcarrier for one
// constellation, in array order — the same loop ThroughputForMCS ran
// inline, so the sum is bit-identical. A tiny direct-mapped memo shortcuts
// repeated inputs: equalized power allocations evaluate rate selection on
// vectors whose kept entries take only a handful of distinct values
// (the equalization target ± 1 ulp of reconstruction rounding), so most
// Q-function evaluations repeat an input just computed.
func rawBERSum(mp *modParams, sinrs []float64) (sum float64, used int) {
	var keys, vals [4]float64
	n, next := 0, 0
	for _, s := range sinrs {
		if s < 0 {
			continue // dropped subcarrier
		}
		used++
		b := -1.0
		for i := 0; i < n; i++ {
			if keys[i] == s {
				b = vals[i]
				break
			}
		}
		if b < 0 {
			b = uncodedBER(mp, s)
			keys[next], vals[next] = s, b
			if n < len(keys) {
				n++
			}
			next++
			if next == len(keys) {
				next = 0
			}
		}
		sum += b
	}
	return sum, used
}

// streamRateFromRaw finishes rate prediction for one MCS given the raw-BER
// sum over used subcarriers: exactly the tail of the original
// ThroughputForMCS, operation for operation.
func streamRateFromRaw(m MCS, rawSum float64, used int) StreamRate {
	if used == 0 {
		return StreamRate{MCS: m}
	}
	raw := rawSum / float64(used)
	coded := CodedBER(m.CodeRate, raw)
	fer := FrameErrorRate(coded, MPDUBytes*8)
	goodput := m.DataRateBps() * float64(used) / NumSubcarriers * (1 - fer)
	return StreamRate{MCS: m, GoodputBps: goodput, FER: fer, UncodedBER: raw}
}

// ThroughputForMCS predicts the PHY goodput of a single spatial stream
// carrying the given MCS over subcarriers with the given post-equalization
// linear SINRs. Entries equal to sinrDropped (negative) mark subcarriers
// the sender does not use: they carry no data and contribute no errors.
//
// The model follows the paper's methodology (§4.1): per-subcarrier SINR →
// raw BER for the constellation → mean raw BER across used subcarriers
// (one decoder spans all subcarriers, so weak subcarriers drag down the
// whole frame) → union-bound coded BER → MPDU frame-error rate → goodput.
func ThroughputForMCS(m MCS, sinrs []float64) StreamRate {
	sum, used := rawBERSum(&modTab[m.Modulation], sinrs)
	return streamRateFromRaw(m, sum, used)
}

// StreamGoodputCeiling is the highest goodput any MCS can predict for a
// stream using `used` subcarriers: the top-rate entry with a zero frame
// error rate, computed with the same float expression streamRateFromRaw
// uses. Power allocators use it to skip rate selections that provably
// cannot beat an incumbent.
func StreamGoodputCeiling(used int) float64 {
	m := mcsTable[len(mcsTable)-1]
	return m.DataRateBps() * float64(used) / NumSubcarriers
}

// BestRate selects the throughput-maximizing MCS for one spatial stream
// over the given per-subcarrier linear SINRs (negative entries = dropped).
//
// Two hoists keep this loop cheap without changing the selection:
//
//   - The raw-BER pass over the subcarriers depends only on the
//     constellation, so it runs at most once per distinct modulation
//     (four passes for the eight-entry table) instead of once per MCS.
//   - The table is scanned in descending rate order with ≥ replacement,
//     which selects the same entry as the ascending strict-> scan (the
//     lowest-index maximum), but lets an MCS be skipped outright when
//     its zero-FER ceiling rate·used/52 is already below the incumbent —
//     its goodput is ceiling·(1−FER) ≤ ceiling, so it can never win. At
//     working SINRs the top modulation decides within one union bound.
func BestRate(sinrs []float64) StreamRate {
	var sums [4]float64
	var useds [4]int
	var have [4]bool
	var best StreamRate
	table := Table()
	for i := len(table) - 1; i >= 0; i-- {
		m := table[i]
		mod := m.Modulation
		if !have[mod] {
			sums[mod], useds[mod] = rawBERSum(&modTab[mod], sinrs)
			have[mod] = true
		}
		if ceiling := m.DataRateBps() * float64(useds[mod]) / NumSubcarriers; ceiling < best.GoodputBps {
			continue
		}
		if r := streamRateFromRaw(m, sums[mod], useds[mod]); r.GoodputBps >= best.GoodputBps {
			best = r
		}
	}
	return best
}

// MultiDecoderThroughputBps predicts the PHY goodput of one stream when
// the transceiver can run an independent modulation and decoder per
// subcarrier (the Fig. 14 "N decoders" hypothetical). Each subcarrier
// independently picks its best MCS; its goodput contribution is its
// per-subcarrier rate times its own delivery probability.
func MultiDecoderThroughputBps(sinrs []float64) float64 {
	var total float64
	for _, s := range sinrs {
		if s < 0 {
			continue
		}
		var raws [4]float64
		var have [4]bool
		var best float64
		for _, m := range Table() {
			mod := m.Modulation
			if !have[mod] {
				raws[mod] = uncodedBER(&modTab[mod], s)
				have[mod] = true
			}
			coded := CodedBER(m.CodeRate, raws[mod])
			fer := FrameErrorRate(coded, MPDUBytes*8)
			rate := m.BitsPerSubcarrierSymbol() / SymbolDuration.Seconds() * (1 - fer)
			if rate > best {
				best = rate
			}
		}
		total += best
	}
	return total
}

// SumGoodput adds the goodput of multiple streams.
func SumGoodput(rates []StreamRate) float64 {
	var t float64
	for _, r := range rates {
		t += r.GoodputBps
	}
	return t
}

// JointRate is the outcome of rate selection for a whole multi-stream
// transmission under 802.11n's equal-modulation constraint: one MCS and
// one convolutional decoder span every spatial stream and subcarrier, so
// the weakest used subcarrier–stream cells drag the entire frame (§2.1 —
// this constraint is the reason COPA drops subcarriers at all).
type JointRate struct {
	MCS MCS
	// GoodputBps is the whole transmission's predicted PHY goodput.
	GoodputBps float64
	// FER is the per-MPDU frame error rate at the selected MCS.
	FER float64
	// UncodedBER is the mean raw BER across used subcarrier–stream cells.
	UncodedBER float64
	// Used is the number of subcarrier–stream cells carrying data.
	Used int
}

// jointRawBERSum is rawBERSum over a [subcarrier][stream] SINR matrix,
// with the same row-major accumulation order as the original inline loop.
func jointRawBERSum(mp *modParams, sinrs [][]float64) (sum float64, used int) {
	var keys, vals [4]float64
	n, next := 0, 0
	for _, row := range sinrs {
		for _, s := range row {
			if s < 0 {
				continue
			}
			used++
			b := -1.0
			for i := 0; i < n; i++ {
				if keys[i] == s {
					b = vals[i]
					break
				}
			}
			if b < 0 {
				b = uncodedBER(mp, s)
				keys[next], vals[next] = s, b
				if n < len(keys) {
					n++
				}
				next++
				if next == len(keys) {
					next = 0
				}
			}
			sum += b
		}
	}
	return sum, used
}

// jointRateFromRaw finishes joint rate prediction for one MCS: the tail of
// the original JointThroughputForMCS, operation for operation.
func jointRateFromRaw(m MCS, rawSum float64, used int) JointRate {
	if used == 0 {
		return JointRate{MCS: m}
	}
	raw := rawSum / float64(used)
	coded := CodedBER(m.CodeRate, raw)
	fer := FrameErrorRate(coded, MPDUBytes*8)
	goodput := m.BitsPerSubcarrierSymbol() * float64(used) / SymbolDuration.Seconds() * (1 - fer)
	return JointRate{MCS: m, GoodputBps: goodput, FER: fer, UncodedBER: raw, Used: used}
}

// JointThroughputForMCS predicts goodput for one MCS over a [subcarrier][stream]
// SINR matrix (negative entries = dropped cells).
func JointThroughputForMCS(m MCS, sinrs [][]float64) JointRate {
	sum, used := jointRawBERSum(&modTab[m.Modulation], sinrs)
	return jointRateFromRaw(m, sum, used)
}

// JointGoodputCeiling is the highest goodput any MCS can predict for a
// joint transmission using `used` subcarrier–stream cells, mirroring
// jointRateFromRaw's float expression at zero FER.
func JointGoodputCeiling(used int) float64 {
	m := mcsTable[len(mcsTable)-1]
	return m.BitsPerSubcarrierSymbol() * float64(used) / SymbolDuration.Seconds()
}

// JointBestRate selects the throughput-maximizing single MCS for a whole
// multi-stream transmission. As in BestRate, the raw-BER pass runs at
// most once per distinct modulation, the table is scanned in descending
// rate order with ≥ replacement (same lowest-index argmax as the
// ascending strict-> scan), and entries whose zero-FER ceiling is below
// the incumbent are skipped without evaluating the union bound.
func JointBestRate(sinrs [][]float64) JointRate {
	var sums [4]float64
	var useds [4]int
	var have [4]bool
	var best JointRate
	table := Table()
	for i := len(table) - 1; i >= 0; i-- {
		m := table[i]
		mod := m.Modulation
		if !have[mod] {
			sums[mod], useds[mod] = jointRawBERSum(&modTab[mod], sinrs)
			have[mod] = true
		}
		if ceiling := m.BitsPerSubcarrierSymbol() * float64(useds[mod]) / SymbolDuration.Seconds(); ceiling < best.GoodputBps {
			continue
		}
		if r := jointRateFromRaw(m, sums[mod], useds[mod]); r.GoodputBps >= best.GoodputBps {
			best = r
		}
	}
	return best
}
