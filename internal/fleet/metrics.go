package fleet

import (
	"fmt"

	"copa/internal/obs"
)

// Handles resolved once at init; RPC handlers only touch atomics.
var (
	mWorkersJoined = obs.C("copa.fleet.workers_joined")
	mWorkersLive   = obs.G("copa.fleet.workers_live")

	mLeasesGranted    = obs.C("copa.fleet.leases_granted")
	mLeasesExpired    = obs.C("copa.fleet.leases_expired")
	mLeasesReassigned = obs.C("copa.fleet.leases_reassigned")
	mLeasesActive     = obs.G("copa.fleet.leases_active")

	mUnitsMerged    = obs.C("copa.fleet.units_merged")
	mUnitsDuplicate = obs.C("copa.fleet.units_duplicate")
	mUnitsResumed   = obs.C("copa.fleet.units_resumed")
	// mMergeLag is the number of completed units buffered because a
	// lower-numbered unit has not arrived yet — the price of the fixed
	// ascending merge order.
	mMergeLag = obs.G("copa.fleet.merge_lag")

	mUnitsPerSec = obs.G("copa.fleet.units_per_sec")
	mETASeconds  = obs.G("copa.fleet.eta_seconds")
	mRPCSeconds  = obs.T("copa.fleet.rpc_seconds")
)

// workerGauge resolves the per-worker throughput gauge
// copa.fleet.worker_units_per_sec.w<id>. Worker ids are dense and
// small, so a fleet's gauges form a stable family.
func workerGauge(id int) *obs.Gauge {
	return obs.G(fmt.Sprintf("copa.fleet.worker_units_per_sec.w%d", id))
}
