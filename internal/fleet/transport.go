package fleet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"copa/internal/rng"
)

// FaultyTransport is internal/medium's Faulty decorator transplanted to
// the fleet RPC layer: an http.RoundTripper that drops, delays, and
// duplicates requests with seeded, reproducible randomness. Where the
// medium corrupts ITS frames to exercise the MAC CRC, this corrupts the
// *conversation* to exercise the protocol's recovery paths — worker
// retries for drops, lease reassignment for stalls, and coordinator
// dedup for replays — while the merged campaign bytes must not move.
//
// Fault semantics per attempt:
//
//   - DropRequest: the request never reaches the coordinator (a lost
//     datagram on the way out). The caller sees ErrInjectedDrop.
//   - DropResponse: the coordinator processes the request but the
//     reply is lost on the way back — the dangerous half, because the
//     worker's retry re-executes a side-effecting RPC. Completion
//     dedup is what makes this safe.
//   - Duplicate: the request is transmitted twice back-to-back (both
//     reach the coordinator; the second response is returned). For a
//     lease RPC the shadowed grant simply expires and is reassigned.
//   - DelayMax: uniform extra latency before the attempt.
type FaultConfig struct {
	DropRequest  float64
	DropResponse float64
	Duplicate    float64
	DelayMax     time.Duration
}

// ErrInjectedDrop is the transport error surfaced for injected losses;
// callers' retry paths treat it like any network failure.
var ErrInjectedDrop = errors.New("fleet: injected drop")

// FaultStats counts what the transport actually did.
type FaultStats struct {
	Requests         uint64
	DroppedRequests  uint64
	DroppedResponses uint64
	Duplicated       uint64
	Delayed          uint64
}

// FaultyTransport injects FaultConfig impairments into an inner
// RoundTripper. Draws are serialized so a fixed seed and request
// sequence give a fixed impairment sequence.
type FaultyTransport struct {
	inner http.RoundTripper
	cfg   FaultConfig

	mu    sync.Mutex
	src   *rng.Source
	stats FaultStats
}

// NewFaultyTransport wraps inner (nil means http.DefaultTransport),
// drawing all randomness from src.
func NewFaultyTransport(inner http.RoundTripper, cfg FaultConfig, src *rng.Source) *FaultyTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultyTransport{inner: inner, cfg: cfg, src: src}
}

// Stats returns a snapshot of the injected faults so far.
func (t *FaultyTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// draw makes all of one request's fault decisions under the lock, so
// concurrent evaluators cannot interleave the RNG stream mid-request.
func (t *FaultyTransport) draw() (dropReq, dropResp, dup bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	if t.cfg.DropRequest > 0 && t.src.Bool(t.cfg.DropRequest) {
		t.stats.DroppedRequests++
		return true, false, false, 0
	}
	if t.cfg.DelayMax > 0 {
		if delay = time.Duration(t.src.Float64() * float64(t.cfg.DelayMax)); delay > 0 {
			t.stats.Delayed++
		}
	}
	if t.cfg.Duplicate > 0 && t.src.Bool(t.cfg.Duplicate) {
		t.stats.Duplicated++
		dup = true
	}
	if t.cfg.DropResponse > 0 && t.src.Bool(t.cfg.DropResponse) {
		t.stats.DroppedResponses++
		dropResp = true
	}
	return false, dropResp, dup, delay
}

// RoundTrip implements http.RoundTripper. The request body is read
// fully up front so duplicated sends can replay it.
func (t *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var payload []byte
	if req.Body != nil {
		var err error
		payload, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if payload != nil {
			r.Body = io.NopCloser(bytes.NewReader(payload))
			r.ContentLength = int64(len(payload))
		}
		return t.inner.RoundTrip(r)
	}

	dropReq, dropResp, dup, delay := t.draw()
	if dropReq {
		return nil, ErrInjectedDrop
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	resp, err := send()
	if dup {
		// The wire carried the request twice; both copies executed.
		// Hand the caller the second response — the first is drained so
		// the connection can be reused.
		if err == nil && resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		resp, err = send()
	}
	if err != nil {
		return nil, err
	}
	if dropResp {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrInjectedDrop
	}
	return resp, nil
}
