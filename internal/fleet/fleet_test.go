package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"copa/internal/campaign"
	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/rng"
)

// testSpec mirrors internal/campaign's: two grid cells, three shards,
// uneven shard sizes — 6 units total, all fast 1x1 evaluations.
func testSpec() campaign.Spec {
	return campaign.Spec{
		Seed:       42,
		Scenario:   channel.Scenario1x1,
		Topologies: 7,
		Shards:     3,
		Profiles: []campaign.Profile{
			{Name: "default", Impairments: channel.DefaultImpairments()},
			{Name: "perfect", Impairments: channel.PerfectHardware()},
		},
		AgeBuckets:   1,
		SkipCOPAPlus: true,
	}
}

func marshalResult(t *testing.T, res *campaign.Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// singleProcessBytes is the golden: what campaign.Run emits for spec.
func singleProcessBytes(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	res, err := campaign.Run(context.Background(), spec, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return marshalResult(t, res)
}

// startFleet spins a coordinator and its httptest server, torn down
// with the test.
func startFleet(t *testing.T, spec campaign.Spec, opt CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := NewCoordinator(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { srv.Close(); coord.Close() })
	return coord, srv
}

// runWorkers launches n workers against url and returns a channel of
// their exit errors.
func runWorkers(ctx context.Context, url string, n int, opt WorkerOptions) chan error {
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- RunWorker(ctx, url, opt) }()
	}
	return errs
}

func waitResult(t *testing.T, coord *Coordinator) *campaign.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return res
}

func TestFleetMatchesSingleProcess(t *testing.T) {
	spec := testSpec()
	want := singleProcessBytes(t, spec)
	for _, workers := range []int{1, 3} {
		before := obs.Default().Snapshot()
		coord, srv := startFleet(t, spec, CoordinatorOptions{})
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		errs := runWorkers(ctx, srv.URL, workers, WorkerOptions{Parallel: 2})
		res := waitResult(t, coord)
		for i := 0; i < workers; i++ {
			if err := <-errs; err != nil {
				t.Errorf("workers=%d: worker exited with %v", workers, err)
			}
		}
		cancel()
		if got := marshalResult(t, res); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: fleet result differs from single-process run", workers)
		}
		after := obs.Default().Snapshot()
		if got := after.Counters["copa.fleet.units_merged"] - before.Counters["copa.fleet.units_merged"]; got != uint64(spec.Units()) {
			t.Errorf("workers=%d: units_merged advanced by %d, want %d", workers, got, spec.Units())
		}
		if after.Counters["copa.fleet.workers_joined"] <= before.Counters["copa.fleet.workers_joined"] {
			t.Errorf("workers=%d: workers_joined did not advance", workers)
		}
		// Satellite: shard progress gauges must reflect REMOTE
		// completions — every unit here was evaluated out-of-process.
		for sh := 0; sh < spec.Shards; sh++ {
			name := "copa.campaign.shard_progress.s" + string(rune('0'+sh))
			if g := after.Gauges[name]; g != 1 {
				t.Errorf("workers=%d: %s = %v, want 1 (remote completions must count)", workers, name, g)
			}
		}
	}
}

// TestFleetWorkerKillMidLease kills a worker while it holds a lease:
// the lease must expire, the unit must be reassigned to the surviving
// worker, and the merged bytes must not move.
func TestFleetWorkerKillMidLease(t *testing.T) {
	spec := testSpec()
	want := singleProcessBytes(t, spec)
	before := obs.Default().Snapshot()

	ttl := 150 * time.Millisecond
	coord, srv := startFleet(t, spec, CoordinatorOptions{LeaseTTL: ttl, GrantWait: 20 * time.Millisecond})

	// The doomed worker: join and lease one unit by hand, then vanish
	// without completing or heartbeating — deterministic death, unlike
	// cancelling a goroutine mid-evaluation.
	var jr JoinResponse
	postJSON(t, srv.URL+PathJoin, JoinRequest{Protocol: ProtocolVersion, Fingerprint: spec.Fingerprint(), Name: "doomed"}, &jr)
	var lr LeaseResponse
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: jr.Worker, Epoch: jr.Epoch}, &lr)
	if lr.Status != StatusLease {
		t.Fatalf("doomed worker got %q, want a lease", lr.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errs := runWorkers(ctx, srv.URL, 1, WorkerOptions{})
	res := waitResult(t, coord)
	if err := <-errs; err != nil {
		t.Errorf("surviving worker exited with %v", err)
	}
	if got := marshalResult(t, res); !bytes.Equal(got, want) {
		t.Fatal("fleet result differs from single-process run after worker death")
	}
	after := obs.Default().Snapshot()
	if got := after.Counters["copa.fleet.leases_expired"] - before.Counters["copa.fleet.leases_expired"]; got < 1 {
		t.Errorf("leases_expired advanced by %d, want ≥ 1", got)
	}
	if got := after.Counters["copa.fleet.leases_reassigned"] - before.Counters["copa.fleet.leases_reassigned"]; got < 1 {
		t.Errorf("leases_reassigned advanced by %d, want ≥ 1", got)
	}
}

// TestFleetCoordinatorKillResume kills the coordinator mid-campaign and
// resumes from its checkpoint under a fresh incarnation: completed
// shards must not rerun, and the final bytes must match an
// uninterrupted single-process run.
func TestFleetCoordinatorKillResume(t *testing.T) {
	spec := testSpec()
	want := singleProcessBytes(t, spec)
	ckpt := filepath.Join(t.TempDir(), "fleet.jsonl")

	// Incarnation 1: stop after two units have been journaled.
	killAt := make(chan struct{})
	var once sync.Once
	coord1, err := NewCoordinator(context.Background(), spec, CoordinatorOptions{
		Checkpoint: ckpt,
		OnProgress: func(p campaign.Progress) {
			if p.Done >= 2 {
				once.Do(func() { close(killAt) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(coord1.Handler())
	wctx, wcancel := context.WithCancel(context.Background())
	errs := runWorkers(wctx, srv1.URL, 1, WorkerOptions{})
	select {
	case <-killAt:
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator never reached 2 completed units")
	}
	wcancel()
	coord1.Close()
	srv1.Close()
	<-errs

	if _, err := os.Stat(ckpt + ".leases"); err != nil {
		t.Fatalf("lease journal sidecar missing: %v", err)
	}

	// Incarnation 2: resume. The journaled units must be loaded, not
	// re-evaluated, and the final output must be byte-identical.
	coord2, srv2 := startFleet(t, spec, CoordinatorOptions{Checkpoint: ckpt, Resume: true})
	if got := coord2.Stats().Resumed; got < 2 {
		t.Fatalf("resumed %d units, want ≥ 2", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errs2 := runWorkers(ctx, srv2.URL, 2, WorkerOptions{})
	res := waitResult(t, coord2)
	for i := 0; i < 2; i++ {
		if err := <-errs2; err != nil {
			t.Errorf("worker exited with %v", err)
		}
	}
	if got := marshalResult(t, res); !bytes.Equal(got, want) {
		t.Fatal("resumed fleet result differs from single-process run")
	}
}

// TestFleetFaultyTransport runs the whole campaign through a lossy,
// duplicating, delaying RPC layer: retries and dedup must absorb every
// fault without moving a byte of the output.
func TestFleetFaultyTransport(t *testing.T) {
	spec := testSpec()
	want := singleProcessBytes(t, spec)
	ft := NewFaultyTransport(nil, FaultConfig{
		DropRequest:  0.10,
		DropResponse: 0.20,
		Duplicate:    0.25,
		DelayMax:     2 * time.Millisecond,
	}, rng.New(7))
	coord, srv := startFleet(t, spec, CoordinatorOptions{LeaseTTL: 2 * time.Second, GrantWait: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errs := runWorkers(ctx, srv.URL, 2, WorkerOptions{Client: &http.Client{Transport: ft}})
	res := waitResult(t, coord)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Errorf("worker exited with %v", err)
		}
	}
	if got := marshalResult(t, res); !bytes.Equal(got, want) {
		t.Fatal("fleet result differs from single-process run under transport faults")
	}
	st := ft.Stats()
	if st.DroppedRequests+st.DroppedResponses+st.Duplicated == 0 {
		t.Errorf("no faults injected (stats %+v); the test exercised nothing", st)
	}
}

// TestFleetCompleteDedup replays one completion verbatim — the
// transport-duplicate case in miniature — and checks the coordinator
// accepts it idempotently.
func TestFleetCompleteDedup(t *testing.T) {
	spec := testSpec()
	coord, srv := startFleet(t, spec, CoordinatorOptions{})
	var jr JoinResponse
	postJSON(t, srv.URL+PathJoin, JoinRequest{Protocol: ProtocolVersion, Fingerprint: spec.Fingerprint()}, &jr)
	var lr LeaseResponse
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: jr.Worker, Epoch: jr.Epoch}, &lr)
	if lr.Status != StatusLease {
		t.Fatalf("lease status %q", lr.Status)
	}
	res, err := campaign.EvalUnit(spec, lr.Unit, nil, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	req := CompleteRequest{Worker: jr.Worker, Epoch: jr.Epoch, Lease: lr.Lease, Result: res}
	var cr1, cr2 CompleteResponse
	postJSON(t, srv.URL+PathComplete, req, &cr1)
	postJSON(t, srv.URL+PathComplete, req, &cr2)
	if !cr1.Accepted || cr1.Duplicate {
		t.Errorf("first completion: %+v, want accepted and not duplicate", cr1)
	}
	if !cr2.Accepted || !cr2.Duplicate {
		t.Errorf("replayed completion: %+v, want accepted duplicate", cr2)
	}
	if got := coord.Stats().Completed; got != 1 {
		t.Errorf("completed = %d after dedup, want 1", got)
	}
}

// TestFleetCheckpointCompat proves checkpoints move freely between the
// single-process engine and the coordinator — and that mismatched
// specs fail fast in both directions.
func TestFleetCheckpointCompat(t *testing.T) {
	spec := testSpec()
	want := singleProcessBytes(t, spec)

	t.Run("single-process checkpoint resumed under coordinator", func(t *testing.T) {
		ckpt := filepath.Join(t.TempDir(), "c.jsonl")
		ctx, cancel := context.WithCancel(context.Background())
		_, err := campaign.Run(ctx, spec, campaign.Options{
			Workers:    1,
			Checkpoint: ckpt,
			OnProgress: func(done, total int) {
				if done == 2 {
					cancel()
				}
			},
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("cancelled run returned %v", err)
		}
		coord, srv := startFleet(t, spec, CoordinatorOptions{Checkpoint: ckpt, Resume: true})
		if coord.Stats().Resumed < 2 {
			t.Fatalf("coordinator resumed %d units, want ≥ 2", coord.Stats().Resumed)
		}
		wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer wcancel()
		errs := runWorkers(wctx, srv.URL, 1, WorkerOptions{})
		res := waitResult(t, coord)
		<-errs
		if got := marshalResult(t, res); !bytes.Equal(got, want) {
			t.Fatal("coordinator resume of single-process checkpoint differs")
		}
	})

	t.Run("coordinator checkpoint resumed single-process", func(t *testing.T) {
		ckpt := filepath.Join(t.TempDir(), "c.jsonl")
		killAt := make(chan struct{})
		var once sync.Once
		coord, err := NewCoordinator(context.Background(), spec, CoordinatorOptions{
			Checkpoint: ckpt,
			OnProgress: func(p campaign.Progress) {
				if p.Done >= 2 {
					once.Do(func() { close(killAt) })
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(coord.Handler())
		wctx, wcancel := context.WithCancel(context.Background())
		errs := runWorkers(wctx, srv.URL, 1, WorkerOptions{})
		select {
		case <-killAt:
		case <-time.After(60 * time.Second):
			t.Fatal("coordinator never reached 2 completed units")
		}
		wcancel()
		coord.Close()
		srv.Close()
		<-errs

		res, err := campaign.Run(context.Background(), spec, campaign.Options{Checkpoint: ckpt, Resume: true})
		if err != nil {
			t.Fatalf("single-process resume of coordinator checkpoint: %v", err)
		}
		if got := marshalResult(t, res); !bytes.Equal(got, want) {
			t.Fatal("single-process resume of coordinator checkpoint differs")
		}
	})

	t.Run("fingerprint mismatch fails fast both ways", func(t *testing.T) {
		ckpt := filepath.Join(t.TempDir(), "c.jsonl")
		if _, err := campaign.Run(context.Background(), spec, campaign.Options{Checkpoint: ckpt}); err != nil {
			t.Fatal(err)
		}
		other := spec
		other.Seed = 43
		if _, err := NewCoordinator(context.Background(), other, CoordinatorOptions{Checkpoint: ckpt, Resume: true}); err == nil || !strings.Contains(err.Error(), "different campaign spec") {
			t.Fatalf("coordinator accepted foreign checkpoint: %v", err)
		}
	})
}

// TestFleetFingerprintMismatch rejects a worker whose spec decoding
// hashes differently — before any lease is granted.
func TestFleetFingerprintMismatch(t *testing.T) {
	spec := testSpec()
	_, srv := startFleet(t, spec, CoordinatorOptions{})

	// Coordinator side: a join quoting the wrong fingerprint is 409.
	resp, err := http.Post(srv.URL+PathJoin, "application/json",
		strings.NewReader(`{"protocol":1,"fingerprint":"deadbeef"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("join with bad fingerprint: HTTP %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	// Worker side: a coordinator announcing a fingerprint that does not
	// match its own spec is refused before join.
	doctored := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, SpecResponse{Protocol: ProtocolVersion, Fingerprint: "0000", Spec: spec})
	}))
	defer doctored.Close()
	err = RunWorker(context.Background(), doctored.URL, WorkerOptions{})
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Errorf("worker joined a mismatched coordinator: %v", err)
	}
}

// TestFleetTraceStitching: one campaign, one TraceID — the worker's
// unit spans and the coordinator's RPC spans must all land in the trace
// rooted at the coordinator.
func TestFleetTraceStitching(t *testing.T) {
	spec := testSpec()
	spec.Topologies = 4
	spec.Shards = 1
	ctx, root := obs.StartSpan(context.Background(), "test.fleet")
	coord, err := NewCoordinator(ctx, spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer wcancel()
	errs := runWorkers(wctx, srv.URL, 1, WorkerOptions{})
	waitResult(t, coord)
	if err := <-errs; err != nil {
		t.Fatalf("worker: %v", err)
	}
	root.End()

	trace := root.Context().TraceID.String()
	spans := obs.Tracing().TraceSpans(trace)
	byName := make(map[string]int)
	for _, s := range spans {
		byName[s.Name]++
	}
	if byName["fleet.campaign"] != 1 {
		t.Errorf("trace %s has %d fleet.campaign spans, want 1", trace, byName["fleet.campaign"])
	}
	if byName["fleet.unit"] != spec.Units() {
		t.Errorf("trace %s has %d fleet.unit spans, want %d (remote unit spans must join the campaign trace)", trace, byName["fleet.unit"], spec.Units())
	}
	for _, rpc := range []string{"fleet.join", "fleet.lease", "fleet.complete"} {
		if byName[rpc] == 0 {
			t.Errorf("trace %s has no %s spans; RPCs are not propagating traceparent", trace, rpc)
		}
	}
}

// TestFleetResumeCompleteCheckpoint finishes instantly with no workers.
func TestFleetResumeCompleteCheckpoint(t *testing.T) {
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "c.jsonl")
	want := func() []byte {
		res, err := campaign.Run(context.Background(), spec, campaign.Options{Checkpoint: ckpt})
		if err != nil {
			t.Fatal(err)
		}
		return marshalResult(t, res)
	}()
	coord, err := NewCoordinator(context.Background(), spec, CoordinatorOptions{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res := waitResult(t, coord)
	if got := marshalResult(t, res); !bytes.Equal(got, want) {
		t.Fatal("fully-resumed fleet result differs")
	}
}

// TestLeaseTable exercises the lease state machine with a fake clock.
func TestLeaseTable(t *testing.T) {
	now := time.Unix(0, 0)
	tick := func(d time.Duration) { now = now.Add(d) }
	tbl := newLeaseTable(time.Second, func() time.Time { return now })
	for u := 0; u < 3; u++ {
		tbl.addPending(u)
	}

	l0, ok := tbl.grant(1)
	if !ok || l0.unit != 0 {
		t.Fatalf("grant = %+v, %v; want unit 0", l0, ok)
	}
	l1, _ := tbl.grant(2)
	if l1.unit != 1 {
		t.Fatalf("second grant unit %d, want 1", l1.unit)
	}
	if tbl.active() != 2 {
		t.Fatalf("active = %d, want 2", tbl.active())
	}

	// Renewal holds a lease across what would have been its expiry.
	tick(900 * time.Millisecond)
	if exp := tbl.renew([]int64{l0.token}); len(exp) != 0 {
		t.Fatalf("renew reported %v expired", exp)
	}
	tick(500 * time.Millisecond) // l1 (unrenewed) is now overdue; l0 is not
	expired := tbl.expire()
	if len(expired) != 1 || expired[0].unit != 1 {
		t.Fatalf("expire = %v, want unit 1 only", expired)
	}
	// The expired unit is grantable again (reassignment).
	l1b, ok := tbl.grant(3)
	if !ok || l1b.unit != 1 {
		t.Fatalf("regrant = %+v, %v; want unit 1", l1b, ok)
	}
	if l1b.token == l1.token {
		t.Fatal("regrant reused the dead lease's token")
	}
	// A stale token no longer renews.
	if exp := tbl.renew([]int64{l1.token}); len(exp) != 1 || exp[0] != l1.token {
		t.Fatalf("stale renew = %v, want [%d]", exp, l1.token)
	}
	// Completion retires the unit's lease whoever holds it.
	tbl.complete(1)
	tbl.complete(0)
	if tbl.active() != 0 {
		t.Fatalf("active = %d after completes, want 0", tbl.active())
	}
	// Remaining pending unit still grants.
	if l2, ok := tbl.grant(1); !ok || l2.unit != 2 {
		t.Fatalf("final grant = %+v, %v; want unit 2", l2, ok)
	}
}

// postJSON is the raw-RPC helper for protocol-level tests.
func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
