package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"copa/internal/campaign"
	"copa/internal/obs"
	"copa/internal/precoding"
)

// RPC retry policy: transport errors and 5xx are retried with doubling
// backoff; 4xx are protocol errors and fail fast. Retries are what turn
// injected faults (FaultyTransport) into latency instead of loss — the
// coordinator-side dedup absorbs the replays.
const (
	rpcAttempts    = 8
	rpcBackoffMin  = 10 * time.Millisecond
	rpcBackoffMax  = 500 * time.Millisecond
	rpcPerCallWait = 30 * time.Second
)

// WorkerOptions configure one worker process.
type WorkerOptions struct {
	// Client issues the fleet RPCs (default: a fresh http.Client).
	// Tests inject a FaultyTransport here.
	Client *http.Client
	// Parallel is the number of evaluator loops, each owning one
	// scratch arena (default 1; a beefy worker machine runs
	// GOMAXPROCS).
	Parallel int
	// Heartbeat overrides the renewal interval (default: a third of
	// the coordinator's lease TTL).
	Heartbeat time.Duration
	// Name labels this worker on the coordinator (default host:pid).
	Name string
	// OnUnit, when non-nil, runs after each accepted completion (test
	// hook).
	OnUnit func(unit int)
}

// worker is one joined worker's client state.
type worker struct {
	base   string
	client *http.Client
	spec   campaign.Spec
	id     int
	epoch  int64
	ttl    time.Duration
	// tctx carries the coordinator's campaign root span, so every unit
	// span and RPC this worker emits lands in the campaign's TraceID.
	tctx context.Context

	// campaignDone flips when any loop hears Done from the coordinator.
	// After that, RPC failures in sibling loops are clean shutdown, not
	// errors: a finished coordinator may exit while a peer loop is
	// mid-poll, and "connection refused after Done" is not a failure.
	campaignDone atomic.Bool

	mu     sync.Mutex
	tokens map[int64]bool
}

// RunWorker joins the coordinator at baseURL and evaluates leased units
// until the campaign completes (nil), ctx is cancelled (ctx.Err()), or
// a fatal error occurs — a spec fingerprint mismatch, a protocol
// violation, or an evaluation failure (which is deterministic and would
// fail identically on every worker, so retrying elsewhere is pointless).
func RunWorker(ctx context.Context, baseURL string, opt WorkerOptions) error {
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	if opt.Parallel <= 0 {
		opt.Parallel = 1
	}
	if opt.Name == "" {
		host, _ := os.Hostname()
		opt.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := &worker{base: baseURL, client: opt.Client, tctx: ctx, tokens: make(map[int64]bool)}

	// Fetch the spec and check the fingerprint BEFORE joining: if our
	// decoding of the coordinator's spec hashes differently, the two
	// binaries disagree about what a campaign even is. Working anyway
	// would poison the merge, so refuse loudly.
	var sr SpecResponse
	if err := w.rpc(ctx, http.MethodGet, PathSpec, nil, &sr); err != nil {
		return fmt.Errorf("fleet: fetching spec from %s: %w", baseURL, err)
	}
	if sr.Protocol != ProtocolVersion {
		return fmt.Errorf("fleet: coordinator speaks protocol %d, this binary speaks %d", sr.Protocol, ProtocolVersion)
	}
	if err := sr.Spec.Validate(); err != nil {
		return fmt.Errorf("fleet: coordinator spec invalid: %w", err)
	}
	fp := sr.Spec.Fingerprint()
	if fp != sr.Fingerprint {
		return fmt.Errorf("fleet: spec fingerprint mismatch (local %.12s…, coordinator %.12s…): mixed binaries or configs", fp, sr.Fingerprint)
	}
	w.spec = sr.Spec

	var jr JoinResponse
	if err := w.rpc(ctx, http.MethodPost, PathJoin, JoinRequest{Protocol: ProtocolVersion, Fingerprint: fp, Name: opt.Name}, &jr); err != nil {
		return fmt.Errorf("fleet: joining %s: %w", baseURL, err)
	}
	w.id, w.epoch = jr.Worker, jr.Epoch
	w.ttl = time.Duration(jr.LeaseTTLMS) * time.Millisecond
	if sc, ok := obs.ParseTraceparent(jr.Traceparent); ok && sc.Sampled {
		w.tctx = obs.ContextWithSpan(ctx, sc)
	}
	obs.Logger().Info("fleet joined", "coordinator", baseURL, "worker", w.id, "parallel", opt.Parallel)

	hb := opt.Heartbeat
	if hb <= 0 {
		hb = w.ttl / 3
	}
	if hb <= 0 {
		hb = time.Second
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(ctx, hb, hbStop)
	}()
	defer func() {
		close(hbStop)
		hbWG.Wait()
	}()

	var wg sync.WaitGroup
	errs := make([]error, opt.Parallel)
	for i := 0; i < opt.Parallel; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.evalLoop(ctx, opt.OnUnit)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalLoop is one evaluator: lease, evaluate on a private arena, post,
// repeat until the coordinator says done.
func (w *worker) evalLoop(ctx context.Context, onUnit func(int)) error {
	ws := &precoding.Workspace{}
	checkCancel := func() error { return ctx.Err() }
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		if err := w.rpc(ctx, http.MethodPost, PathLease, LeaseRequest{Worker: w.id, Epoch: w.epoch}, &lr); err != nil {
			if w.campaignDone.Load() {
				return nil
			}
			return fmt.Errorf("fleet: leasing: %w", err)
		}
		switch lr.Status {
		case StatusDone:
			w.campaignDone.Store(true)
			return nil
		case StatusWait:
			wait := time.Duration(lr.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		case StatusLease:
		default:
			return fmt.Errorf("fleet: unknown lease status %q", lr.Status)
		}

		w.track(lr.Lease, true)
		sp := obs.ChildSpan(w.tctx, "fleet.unit")
		sp.SetAttr("unit", strconv.Itoa(lr.Unit))
		sp.SetAttr("worker", strconv.Itoa(w.id))
		start := time.Now()
		res, err := campaign.EvalUnit(w.spec, lr.Unit, ws, checkCancel)
		seconds := time.Since(start).Seconds()
		if err != nil {
			sp.EndErr(err)
			w.track(lr.Lease, false)
			// Cancellation is clean shutdown; the lease expires and the
			// unit is reassigned. Anything else is a deterministic
			// evaluation failure — fatal here and everywhere.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fleet: unit %d: %w", lr.Unit, err)
		}
		var cr CompleteResponse
		err = w.rpc(ctx, http.MethodPost, PathComplete,
			CompleteRequest{Worker: w.id, Epoch: w.epoch, Lease: lr.Lease, Result: res, Seconds: seconds}, &cr)
		sp.EndErr(err)
		w.track(lr.Lease, false)
		if err != nil {
			if w.campaignDone.Load() {
				return nil
			}
			return fmt.Errorf("fleet: completing unit %d: %w", lr.Unit, err)
		}
		if onUnit != nil {
			onUnit(lr.Unit)
		}
		if cr.Done {
			w.campaignDone.Store(true)
			return nil
		}
	}
}

// track adds or removes a lease token from the heartbeat's renewal set.
func (w *worker) track(token int64, held bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if held {
		w.tokens[token] = true
	} else {
		delete(w.tokens, token)
	}
}

// heartbeatLoop renews outstanding leases every interval. Errors are
// swallowed: a missed renewal only risks an early expiry, which the
// completion dedup absorbs; persistent coordinator loss surfaces
// through the evaluator's own RPCs.
func (w *worker) heartbeatLoop(ctx context.Context, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			w.mu.Lock()
			tokens := make([]int64, 0, len(w.tokens))
			for tok := range w.tokens {
				tokens = append(tokens, tok)
			}
			w.mu.Unlock()
			var hr HeartbeatResponse
			if err := w.rpc(ctx, http.MethodPost, PathHeartbeat, HeartbeatRequest{Worker: w.id, Epoch: w.epoch, Leases: tokens}, &hr); err != nil {
				continue
			}
			if hr.Done {
				w.campaignDone.Store(true)
				return
			}
		}
	}
}

// permanentError marks an RPC failure that retrying cannot fix (4xx:
// fingerprint mismatch, stale epoch, malformed request).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// rpc issues one fleet call with bounded retries, injecting the
// campaign's trace context on every attempt.
func (w *worker) rpc(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	backoff := rpcBackoffMin
	var lastErr error
	for attempt := 0; attempt < rpcAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > rpcBackoffMax {
				backoff = rpcBackoffMax
			}
		}
		lastErr = w.rpcOnce(ctx, method, path, payload, out)
		if lastErr == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(lastErr, &perm) || ctx.Err() != nil {
			return lastErr
		}
	}
	return fmt.Errorf("fleet: %s %s failed after %d attempts: %w", method, path, rpcAttempts, lastErr)
}

func (w *worker) rpcOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	cctx, cancel := context.WithTimeout(ctx, rpcPerCallWait)
	defer cancel()
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(cctx, method, w.base+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	obs.InjectHTTP(w.tctx, req.Header)
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		msg := fmt.Sprintf("%s %s: HTTP %d", method, path, resp.StatusCode)
		if er.Error != "" {
			msg += ": " + er.Error
		}
		if resp.StatusCode/100 == 4 {
			return &permanentError{msg: msg}
		}
		return errors.New(msg)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
