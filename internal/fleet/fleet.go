// Package fleet distributes a campaign over the network: a coordinator
// decomposes a campaign.Spec into the same deterministic work units the
// single-process engine schedules, leases them to remote workers over a
// small HTTP/JSON protocol, and streams the returned per-unit
// aggregates into a merge that runs in ascending unit order — so the
// final Result is byte-identical to campaign.Run on the same spec, no
// matter how many workers took part, which of them died, or how often
// the transport duplicated a response.
//
// The division of labor mirrors the in-process engine (DESIGN §10):
//
//   - The coordinator is the feeder + collector. It owns the unit
//     queue, grants time-limited leases (TTL + heartbeat renewal;
//     expiry returns the unit to the queue for reassignment), journals
//     every accepted unit through the campaign checkpoint layer, and
//     merges buffered results the moment the next-in-order unit lands.
//   - A worker is the evaluator loop: it joins (fingerprint-checked
//     against the coordinator's spec, so mismatched binaries or configs
//     are rejected before any work is leased), then repeatedly leases a
//     unit, runs campaign.EvalUnit on its own arena, and posts the
//     result back, renewing its leases from a background heartbeat.
//
// Safety rests on two properties the campaign engine already
// guarantees: units are deterministic (any worker computing unit u
// produces identical bytes, so duplicated or racing completions dedup
// by unit index), and merge order is fixed (ascending unit), so the
// coordinator can merge eagerly yet reproduce the single-process
// floating-point sequence exactly. A killed coordinator resumes from
// its checkpoint without re-running completed shards; a killed worker
// just stops heartbeating and its leases expire back into the queue.
//
// Every RPC carries W3C trace context: the coordinator roots one trace
// per campaign and hands its traceparent to joining workers, so unit
// spans evaluated three processes away stitch into the same TraceID.
package fleet

import (
	"copa/internal/campaign"
)

// ProtocolVersion gates the wire protocol. A worker and coordinator
// must agree exactly; there is no negotiation — fleets are deployed
// from one binary.
const ProtocolVersion = 1

// Fleet RPC paths, rooted under the coordinator's mux.
const (
	PathSpec      = "/fleet/v1/spec"
	PathJoin      = "/fleet/v1/join"
	PathLease     = "/fleet/v1/lease"
	PathHeartbeat = "/fleet/v1/heartbeat"
	PathComplete  = "/fleet/v1/complete"
)

// SpecResponse is the GET /fleet/v1/spec reply: everything a worker
// needs to decide whether it can serve this campaign. The worker
// recomputes the fingerprint from the decoded spec; a mismatch means
// the two binaries do not even agree on what the spec *is* (field
// drift, version skew) and the worker refuses to join.
type SpecResponse struct {
	Protocol    int           `json:"protocol"`
	Fingerprint string        `json:"fingerprint"`
	Spec        campaign.Spec `json:"spec"`
}

// JoinRequest registers a worker. The fingerprint is the worker's own
// computation over the spec it fetched; the coordinator rejects any
// value other than its own.
type JoinRequest struct {
	Protocol    int    `json:"protocol"`
	Fingerprint string `json:"fingerprint"`
	// Name labels the worker in logs and lease journals (host:pid by
	// default); it has no protocol meaning.
	Name string `json:"name,omitempty"`
}

// JoinResponse assigns the worker its identity and operating
// parameters.
type JoinResponse struct {
	// Worker is the coordinator-assigned worker index (dense, small:
	// it names the copa.fleet.worker_units_per_sec.w<k> gauge).
	Worker int `json:"worker"`
	// Epoch identifies this coordinator incarnation. Requests carrying
	// a stale epoch are rejected with HTTP 409 — the worker rejoins.
	Epoch int64 `json:"epoch"`
	// LeaseTTLMS is the lease lifetime; workers must heartbeat well
	// inside it (the worker defaults to TTL/3).
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// Traceparent is the campaign root span's W3C trace context; the
	// worker parents all its unit spans under it so one campaign is one
	// TraceID across every process.
	Traceparent string `json:"traceparent,omitempty"`
}

// Lease status values.
const (
	// StatusLease: a unit was granted.
	StatusLease = "lease"
	// StatusWait: nothing grantable right now (all remaining units are
	// leased out); retry after WaitMS.
	StatusWait = "wait"
	// StatusDone: the campaign is complete; the worker should exit.
	StatusDone = "done"
)

// LeaseRequest asks for the next work unit.
type LeaseRequest struct {
	Worker int   `json:"worker"`
	Epoch  int64 `json:"epoch"`
}

// LeaseResponse grants a unit, asks the worker to wait, or announces
// completion.
type LeaseResponse struct {
	Status string `json:"status"`
	Unit   int    `json:"unit,omitempty"`
	// Lease is the grant's token; complete and heartbeat quote it.
	Lease  int64 `json:"lease,omitempty"`
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// HeartbeatRequest renews the worker's outstanding leases.
type HeartbeatRequest struct {
	Worker int     `json:"worker"`
	Epoch  int64   `json:"epoch"`
	Leases []int64 `json:"leases,omitempty"`
}

// HeartbeatResponse reports which quoted leases the coordinator no
// longer honors (expired and possibly reassigned; the worker may abort
// those units — finishing them is harmless, the completion dedups).
type HeartbeatResponse struct {
	Expired []int64 `json:"expired,omitempty"`
	Done    bool    `json:"done"`
}

// CompleteRequest posts one evaluated unit. Results are deterministic
// per unit, so the coordinator accepts the first completion of a unit
// from anyone — even one whose lease expired — and dedups the rest.
type CompleteRequest struct {
	Worker int                  `json:"worker"`
	Epoch  int64                `json:"epoch"`
	Lease  int64                `json:"lease"`
	Result *campaign.UnitResult `json:"result"`
	// Seconds is the unit's evaluation wall time, for the
	// coordinator's per-worker throughput gauges.
	Seconds float64 `json:"seconds"`
}

// CompleteResponse acknowledges a posted unit.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
	// Duplicate marks a unit that had already been completed (by this
	// worker via a duplicated request, or by another worker after a
	// lease reassignment). The bytes were identical by construction, so
	// the result was simply dropped.
	Duplicate bool `json:"duplicate,omitempty"`
	Done      bool `json:"done"`
}

// errorResponse is every non-2xx fleet RPC body.
type errorResponse struct {
	Error string `json:"error"`
}
