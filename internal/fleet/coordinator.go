package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"copa/internal/campaign"
	"copa/internal/obs"
)

// ErrClosed is returned by Wait when the coordinator was shut down
// before the campaign completed.
var ErrClosed = errors.New("fleet: coordinator closed before campaign completed")

// CoordinatorOptions configure one coordinator. Like the engine's
// Options, nothing here affects the campaign's result bytes — only
// durability, scheduling, and reporting.
type CoordinatorOptions struct {
	// Checkpoint is the unit-journal path; the lease journal rides
	// beside it as <Checkpoint>.leases. Empty disables both.
	Checkpoint string
	// Resume loads an existing checkpoint instead of failing on it.
	// Checkpoints are interchangeable with campaign.Run's: a campaign
	// started single-process finishes under a coordinator and vice
	// versa, fingerprint-checked either way.
	Resume bool
	// LeaseTTL is how long a granted unit stays assigned without a
	// heartbeat before it is reclaimed (default 10s).
	LeaseTTL time.Duration
	// GrantWait is the retry delay handed to workers when every
	// remaining unit is leased out (default 200ms).
	GrantWait time.Duration
	// OnProgress, when non-nil, runs after every merged-or-accepted
	// unit — local or remote — with the fleet-wide view. Called with
	// the coordinator's mutex held; keep it cheap.
	OnProgress func(campaign.Progress)
	// ProgressEvery, when positive, logs a progress line (done/total,
	// units/s, ETA, live workers) at most once per interval.
	ProgressEvery time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	name     string
	joined   time.Time
	lastSeen time.Time
	live     bool
	done     uint64
}

// Coordinator owns a campaign's unit queue: it leases units to
// registered workers, journals and merges their results in ascending
// unit order, and completes with a Result byte-identical to
// campaign.Run on the same spec.
type Coordinator struct {
	spec campaign.Spec
	fp   string
	opt  CoordinatorOptions
	// epoch identifies this incarnation; a restart invalidates every
	// outstanding lease wholesale by changing it.
	epoch int64
	// tp is the campaign root span's traceparent, handed to workers at
	// join so remote unit spans share the campaign's TraceID.
	tp   string
	span *obs.ActiveSpan

	mu         sync.Mutex
	leases     *leaseTable
	buffer     map[int]*campaign.UnitResult // completed, awaiting in-order merge
	mergedCols map[string]*campaign.Column
	nextMerge  int
	doneUnits  []bool
	completed  int
	resumed    int
	total      int
	jnl        *campaign.Journal
	lj         *leaseJournal
	workers    map[int]*workerState
	nextWorker int
	started    time.Time
	lastLog    time.Time
	gauges     []*obs.Gauge
	shardDone  []int
	result     *campaign.Result
	err        error
	done       bool
	closed     bool

	finished chan struct{}
	stopTick chan struct{}
}

// NewCoordinator opens (or resumes) a campaign for distribution. The
// context roots the campaign trace: every fleet RPC span and every
// remote unit span stitches under one TraceID. A fully-resumed
// checkpoint completes immediately — Wait returns without any worker
// joining.
func NewCoordinator(ctx context.Context, spec campaign.Spec, opt CoordinatorOptions) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 10 * time.Second
	}
	if opt.GrantWait <= 0 {
		opt.GrantWait = 200 * time.Millisecond
	}
	if opt.now == nil {
		opt.now = time.Now
	}
	_, span := obs.StartSpan(ctx, "fleet.campaign")
	c := &Coordinator{
		spec:       spec,
		fp:         spec.Fingerprint(),
		opt:        opt,
		epoch:      time.Now().UnixNano(),
		span:       span,
		buffer:     make(map[int]*campaign.UnitResult),
		mergedCols: make(map[string]*campaign.Column),
		total:      spec.Units(),
		workers:    make(map[int]*workerState),
		finished:   make(chan struct{}),
		stopTick:   make(chan struct{}),
	}
	if sc := span.Context(); sc.Valid() {
		c.tp = sc.Traceparent()
	}
	c.doneUnits = make([]bool, c.total)
	c.leases = newLeaseTable(opt.LeaseTTL, opt.now)
	c.started = opt.now()
	c.lastLog = c.started
	c.shardDone = make([]int, spec.Shards)
	c.gauges = campaign.ShardGauges(spec.Shards)

	if opt.Checkpoint != "" {
		jnl, done, err := campaign.OpenJournal(opt.Checkpoint, spec, opt.Resume)
		if err != nil {
			span.EndErr(err)
			return nil, err
		}
		lj, err := openLeaseJournal(opt.Checkpoint+".leases", c.fp, opt.Resume)
		if err != nil {
			jnl.Close()
			span.EndErr(err)
			return nil, err
		}
		c.jnl, c.lj = jnl, lj
		if err := lj.record(leaseEvent{T: "epoch", Epoch: c.epoch}); err != nil {
			c.closeJournals()
			span.EndErr(err)
			return nil, err
		}
		for u, res := range done {
			c.buffer[u] = res
			c.doneUnits[u] = true
			c.completed++
			_, _, sh := spec.UnitCoord(u)
			c.shardDone[sh]++
		}
		c.resumed = c.completed
		mUnitsResumed.Add(uint64(c.resumed))
	}
	for u := 0; u < c.total; u++ {
		if !c.doneUnits[u] {
			c.leases.addPending(u)
		}
	}
	unitsPerShard := spec.Cells()
	for sh, g := range c.gauges {
		g.Set(float64(c.shardDone[sh]) / float64(unitsPerShard))
	}
	c.mu.Lock()
	c.drainLocked()
	if c.completed == c.total {
		c.finishLocked(nil)
	}
	c.mu.Unlock()

	go c.tick()
	return c, nil
}

// tick periodically reclaims expired leases and refreshes worker
// liveness, so reassignment happens even while no RPCs arrive.
func (c *Coordinator) tick() {
	interval := c.opt.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopTick:
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked()
			c.refreshLivenessLocked()
			c.mu.Unlock()
		}
	}
}

// expireLocked sweeps overdue leases back into the queue, journaling
// each reclamation.
func (c *Coordinator) expireLocked() {
	for _, l := range c.leases.expire() {
		obs.Logger().Debug("fleet lease expired", "unit", l.unit, "worker", l.worker)
		if err := c.lj.record(leaseEvent{T: "expire", Unit: l.unit, Worker: l.worker, Lease: l.token}); err != nil {
			c.failLocked(fmt.Errorf("fleet: lease journal: %w", err))
			return
		}
	}
}

// refreshLivenessLocked marks workers dead after two missed TTLs.
func (c *Coordinator) refreshLivenessLocked() {
	cutoff := c.opt.now().Add(-2 * c.opt.LeaseTTL)
	live := 0
	for _, w := range c.workers {
		if w.live && w.lastSeen.Before(cutoff) {
			w.live = false
		}
		if w.live {
			live++
		}
	}
	mWorkersLive.Set(float64(live))
}

// failLocked aborts the campaign with err; Wait observes it.
func (c *Coordinator) failLocked(err error) {
	if !c.done {
		c.finishLocked(err)
	}
}

// finishLocked seals the campaign: on success the merged columns become
// the Result (bytes identical to campaign.Run's finalizer, because both
// merged the same units in the same ascending order).
func (c *Coordinator) finishLocked(err error) {
	if c.done {
		return
	}
	c.done = true
	c.err = err
	if err == nil {
		c.result = &campaign.Result{Spec: c.spec, Units: c.total, Columns: c.mergedCols}
	}
	c.span.EndErr(err)
	close(c.finished)
}

// drainLocked merges every buffered unit that extends the contiguous
// prefix, in ascending unit order — the merge-order invariant that
// makes the coordinator's floating-point results, and therefore its
// serialized bytes, identical to the single-process engine's.
func (c *Coordinator) drainLocked() {
	for {
		ur, ok := c.buffer[c.nextMerge]
		if !ok {
			break
		}
		delete(c.buffer, c.nextMerge)
		campaign.MergeUnit(c.mergedCols, ur)
		c.nextMerge++
		mUnitsMerged.Inc()
	}
	mMergeLag.Set(float64(len(c.buffer)))
}

// progressLocked refreshes rate/ETA gauges and fires the callbacks.
// Like the engine, the rate counts only units completed by THIS
// incarnation: resumed units were paid for by a previous process.
func (c *Coordinator) progressLocked() {
	prog := campaign.Progress{Done: c.completed, Total: c.total}
	if elapsed := c.opt.now().Sub(c.started).Seconds(); elapsed > 0 {
		prog.UnitsPerSec = float64(c.completed-c.resumed) / elapsed
	}
	if prog.UnitsPerSec > 0 {
		prog.ETA = time.Duration(float64(c.total-c.completed) / prog.UnitsPerSec * float64(time.Second))
	}
	mUnitsPerSec.Set(prog.UnitsPerSec)
	mETASeconds.Set(prog.ETA.Seconds())
	if c.opt.OnProgress != nil {
		c.opt.OnProgress(prog)
	}
	if c.opt.ProgressEvery > 0 && (c.opt.now().Sub(c.lastLog) >= c.opt.ProgressEvery || c.completed == c.total) {
		c.lastLog = c.opt.now()
		live := 0
		for _, w := range c.workers {
			if w.live {
				live++
			}
		}
		obs.Logger().Info("fleet progress",
			"done", c.completed, "total", c.total,
			"units_per_sec", fmt.Sprintf("%.2f", prog.UnitsPerSec),
			"eta", prog.ETA.Round(time.Second).String(),
			"workers_live", live, "merge_lag", len(c.buffer))
	}
}

// Handler returns the coordinator's RPC mux (mount it on any server;
// copacampaign serves it directly).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathSpec, c.handleSpec)
	mux.HandleFunc("POST "+PathJoin, c.handleJoin)
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	return mux
}

// rpcSpan continues the caller's trace into a coordinator-side span.
// Workers inject the campaign root's traceparent on every RPC, so these
// spans — and the remote unit spans between them — share one TraceID.
// Requests that predate the worker learning the traceparent (spec fetch,
// the join itself) carry none; those parent directly on the campaign
// root so the whole conversation still lands in one trace.
func (c *Coordinator) rpcSpan(r *http.Request, name string) *obs.ActiveSpan {
	ctx := obs.ExtractHTTP(r.Context(), r.Header)
	if _, ok := obs.SpanFromContext(ctx); !ok {
		ctx = obs.ContextWithSpan(ctx, c.span.Context())
	}
	return obs.ChildSpan(ctx, name)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	sample := mRPCSeconds.Begin()
	defer sample.End()
	writeJSON(w, http.StatusOK, SpecResponse{Protocol: ProtocolVersion, Fingerprint: c.fp, Spec: c.spec})
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	sample := mRPCSeconds.Begin()
	defer sample.End()
	sp := c.rpcSpan(r, "fleet.join")
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.EndErr(err)
		writeError(w, http.StatusBadRequest, "bad join body: %v", err)
		return
	}
	if req.Protocol != ProtocolVersion {
		err := fmt.Errorf("fleet: protocol %d, coordinator speaks %d", req.Protocol, ProtocolVersion)
		sp.EndErr(err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Fingerprint != c.fp {
		// The worker decoded our spec into something that hashes
		// differently: mismatched binaries or a corrupted config. Refuse
		// before any work is leased.
		err := fmt.Errorf("fleet: spec fingerprint mismatch (worker %.12s…, coordinator %.12s…): mixed binaries or configs", req.Fingerprint, c.fp)
		sp.EndErr(err)
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	c.mu.Lock()
	id := c.nextWorker
	c.nextWorker++
	now := c.opt.now()
	c.workers[id] = &workerState{name: req.Name, joined: now, lastSeen: now, live: true}
	mWorkersJoined.Inc()
	live := 0
	for _, ws := range c.workers {
		if ws.live {
			live++
		}
	}
	mWorkersLive.Set(float64(live))
	c.mu.Unlock()
	sp.SetAttr("worker", strconv.Itoa(id))
	sp.End()
	obs.Logger().Info("fleet worker joined", "worker", id, "name", req.Name)
	writeJSON(w, http.StatusOK, JoinResponse{
		Worker:      id,
		Epoch:       c.epoch,
		LeaseTTLMS:  c.opt.LeaseTTL.Milliseconds(),
		Traceparent: c.tp,
	})
}

// checkEpochLocked rejects requests from a previous coordinator
// incarnation (their leases died with it; the worker must rejoin).
func (c *Coordinator) checkEpochLocked(epoch int64) error {
	if epoch != c.epoch {
		return fmt.Errorf("fleet: stale epoch %d (coordinator is at %d); rejoin", epoch, c.epoch)
	}
	return nil
}

// touchLocked refreshes a worker's liveness on any RPC.
func (c *Coordinator) touchLocked(worker int) {
	if ws, ok := c.workers[worker]; ok {
		ws.lastSeen = c.opt.now()
		if !ws.live {
			ws.live = true
		}
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	sample := mRPCSeconds.Begin()
	defer sample.End()
	sp := c.rpcSpan(r, "fleet.lease")
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.EndErr(err)
		writeError(w, http.StatusBadRequest, "bad lease body: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkEpochLocked(req.Epoch); err != nil {
		sp.EndErr(err)
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	c.touchLocked(req.Worker)
	c.expireLocked()
	if c.done {
		sp.SetAttr("status", StatusDone)
		sp.End()
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusDone})
		return
	}
	l, ok := c.leases.grant(req.Worker)
	if !ok {
		sp.SetAttr("status", StatusWait)
		sp.End()
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusWait, WaitMS: c.opt.GrantWait.Milliseconds()})
		return
	}
	if err := c.lj.record(leaseEvent{T: "grant", Unit: l.unit, Worker: req.Worker, Lease: l.token}); err != nil {
		c.failLocked(fmt.Errorf("fleet: lease journal: %w", err))
		sp.EndErr(err)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sp.SetAttr("status", StatusLease)
	sp.SetAttr("unit", strconv.Itoa(l.unit))
	sp.End()
	writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusLease, Unit: l.unit, Lease: l.token})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	sample := mRPCSeconds.Begin()
	defer sample.End()
	sp := c.rpcSpan(r, "fleet.heartbeat")
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.EndErr(err)
		writeError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkEpochLocked(req.Epoch); err != nil {
		sp.EndErr(err)
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	c.touchLocked(req.Worker)
	c.expireLocked()
	expired := c.leases.renew(req.Leases)
	sp.End()
	writeJSON(w, http.StatusOK, HeartbeatResponse{Expired: expired, Done: c.done})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	sample := mRPCSeconds.Begin()
	defer sample.End()
	sp := c.rpcSpan(r, "fleet.complete")
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.EndErr(err)
		writeError(w, http.StatusBadRequest, "bad complete body: %v", err)
		return
	}
	res := req.Result
	if res == nil || res.Unit < 0 || res.Unit >= c.total || res.Columns == nil {
		err := fmt.Errorf("fleet: malformed unit result")
		sp.EndErr(err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkEpochLocked(req.Epoch); err != nil {
		sp.EndErr(err)
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	c.touchLocked(req.Worker)
	sp.SetAttr("unit", strconv.Itoa(res.Unit))

	// Dedup: deterministic units make "first completion wins" exact —
	// a duplicate (transport replay, or a reassigned unit finished by
	// both holders) carries identical bytes, so dropping it cannot
	// change the merge.
	if c.doneUnits[res.Unit] {
		mUnitsDuplicate.Inc()
		sp.SetAttr("duplicate", "true")
		sp.End()
		writeJSON(w, http.StatusOK, CompleteResponse{Accepted: true, Duplicate: true, Done: c.done})
		return
	}
	// Accept even when the lease has expired: the work is already done
	// and deterministic. A live lease for a *different* unit quoting
	// this token is a protocol violation, though.
	if l, ok := c.leases.byToken[req.Lease]; ok && l.unit != res.Unit {
		err := fmt.Errorf("fleet: lease %d is for unit %d, not %d", req.Lease, l.unit, res.Unit)
		sp.EndErr(err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Journal before merging, exactly like the engine's collector: a
	// coordinator killed between the two resumes with the unit durable.
	if c.jnl != nil {
		if err := c.jnl.Record(res); err != nil {
			c.failLocked(fmt.Errorf("fleet: journaling unit %d: %w", res.Unit, err))
			sp.EndErr(err)
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	if err := c.lj.record(leaseEvent{T: "complete", Unit: res.Unit, Worker: req.Worker, Lease: req.Lease}); err != nil {
		c.failLocked(fmt.Errorf("fleet: lease journal: %w", err))
		sp.EndErr(err)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.leases.complete(res.Unit)
	c.buffer[res.Unit] = res
	c.doneUnits[res.Unit] = true
	c.completed++
	if ws, ok := c.workers[req.Worker]; ok {
		ws.done++
		if elapsed := c.opt.now().Sub(ws.joined).Seconds(); elapsed > 0 {
			workerGauge(req.Worker).Set(float64(ws.done) / elapsed)
		}
	}
	_, _, sh := c.spec.UnitCoord(res.Unit)
	c.shardDone[sh]++
	c.gauges[sh].Set(float64(c.shardDone[sh]) / float64(c.spec.Cells()))
	c.drainLocked()
	c.progressLocked()
	if c.completed == c.total {
		c.finishLocked(nil)
	}
	sp.End()
	writeJSON(w, http.StatusOK, CompleteResponse{Accepted: true, Done: c.done})
}

// Wait blocks until the campaign completes (returning the merged
// Result), fails, or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) (*campaign.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.finished:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.result, c.err
	}
}

// Stats is a snapshot of the coordinator's fleet view (test and
// monitoring hook).
type Stats struct {
	Workers      int  `json:"workers"`
	WorkersLive  int  `json:"workers_live"`
	Completed    int  `json:"completed"`
	Resumed      int  `json:"resumed"`
	Total        int  `json:"total"`
	LeasesActive int  `json:"leases_active"`
	MergeLag     int  `json:"merge_lag"`
	Done         bool `json:"done"`
}

// Stats returns the current fleet snapshot.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := 0
	for _, w := range c.workers {
		if w.live {
			live++
		}
	}
	return Stats{
		Workers:      len(c.workers),
		WorkersLive:  live,
		Completed:    c.completed,
		Resumed:      c.resumed,
		Total:        c.total,
		LeasesActive: c.leases.active(),
		MergeLag:     len(c.buffer),
		Done:         c.done,
	}
}

func (c *Coordinator) closeJournals() {
	if c.jnl != nil {
		c.jnl.Close()
		c.jnl = nil
	}
	if c.lj != nil {
		c.lj.close()
		c.lj = nil
	}
}

// Close shuts the coordinator down: the expiry ticker stops, journals
// flush and close, and — if the campaign had not completed — Wait
// unblocks with ErrClosed. Completed units stay durable in the
// checkpoint; a new coordinator (or campaign.Run) resumes them.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.stopTick)
	if !c.done {
		c.finishLocked(ErrClosed)
	}
	c.closeJournals()
	return nil
}
