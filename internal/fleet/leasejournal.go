package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// The lease journal is the checkpoint's sidecar (<checkpoint>.leases):
// the same line-delimited JSON discipline as the unit journal — header
// binding the file to the spec fingerprint, then one line per lease
// transition. It is an audit trail, not recovery state: unit results
// are the durable record (they live in the unit journal), while leases
// are ephemeral by design — a coordinator restart bumps the epoch,
// which implicitly expires every lease of the previous incarnation, and
// the journal records that as an "epoch" line. Keeping lease history
// out of the unit journal is what keeps that file loadable by the
// single-process engine: checkpoints move freely between campaign.Run
// and the coordinator in both directions.

// leaseJournalVersion guards the sidecar format.
const leaseJournalVersion = 1

// leaseHeader is the first line of every lease journal.
type leaseHeader struct {
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
}

// leaseEvent is one lease-table transition.
type leaseEvent struct {
	// T is the transition: "epoch" (coordinator incarnation started),
	// "grant", "renew" is deliberately not journaled (too chatty),
	// "expire", "complete".
	T      string `json:"t"`
	Epoch  int64  `json:"epoch,omitempty"`
	Unit   int    `json:"unit,omitempty"`
	Worker int    `json:"worker,omitempty"`
	Lease  int64  `json:"lease,omitempty"`
}

// leaseJournal appends lease transitions to the sidecar file.
type leaseJournal struct {
	f *os.File
	w *bufio.Writer
}

// openLeaseJournal opens (or creates) the sidecar next to the unit
// checkpoint. Resume semantics match the unit journal: an existing file
// is only appended to under resume, and only if its header carries the
// same spec fingerprint — a sidecar from a different campaign fails
// fast instead of interleaving unrelated fleets.
func openLeaseJournal(path string, fingerprint string, resume bool) (*leaseJournal, error) {
	if _, err := os.Stat(path); err == nil {
		if !resume {
			return nil, fmt.Errorf("fleet: lease journal %s exists; pass resume to continue it or remove it", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("fleet: lease journal %s has no valid header", path)
		}
		var hdr leaseHeader
		if err := json.Unmarshal(data[:nl], &hdr); err != nil {
			return nil, fmt.Errorf("fleet: lease journal %s: bad header: %w", path, err)
		}
		if hdr.V != leaseJournalVersion {
			return nil, fmt.Errorf("fleet: lease journal %s: version %d, want %d", path, hdr.V, leaseJournalVersion)
		}
		if hdr.Fingerprint != fingerprint {
			return nil, fmt.Errorf("fleet: lease journal %s was written by a different campaign spec (fingerprint %.12s…, want %.12s…)", path, hdr.Fingerprint, fingerprint)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &leaseJournal{f: f, w: bufio.NewWriter(f)}, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	j := &leaseJournal{f: f, w: bufio.NewWriter(f)}
	if err := j.record(leaseHeader{V: leaseJournalVersion, Fingerprint: fingerprint}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// record appends one JSON line and flushes it to the OS.
func (j *leaseJournal) record(v any) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// close flushes and closes the sidecar.
func (j *leaseJournal) close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
