package fleet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"copa/internal/rng"
)

// countingServer counts how many requests actually arrive, so the
// tests can distinguish "dropped before the wire" from "dropped after".
func countingServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func TestFaultyTransportDropRequest(t *testing.T) {
	srv, hits := countingServer(t)
	ft := NewFaultyTransport(nil, FaultConfig{DropRequest: 1}, rng.New(1))
	client := &http.Client{Transport: ft}
	_, err := client.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err == nil || !errors.Is(err, ErrInjectedDrop) && !strings.Contains(err.Error(), ErrInjectedDrop.Error()) {
		t.Fatalf("err = %v, want injected drop", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests; a dropped request must never arrive", hits.Load())
	}
	st := ft.Stats()
	if st.Requests != 1 || st.DroppedRequests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultyTransportDropResponse(t *testing.T) {
	srv, hits := countingServer(t)
	ft := NewFaultyTransport(nil, FaultConfig{DropResponse: 1}, rng.New(1))
	client := &http.Client{Transport: ft}
	_, err := client.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err == nil {
		t.Fatal("want error for dropped response")
	}
	// The critical asymmetry vs DropRequest: the server DID execute.
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests; a dropped response still executes once", hits.Load())
	}
	if st := ft.Stats(); st.DroppedResponses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultyTransportDuplicate(t *testing.T) {
	srv, hits := countingServer(t)
	ft := NewFaultyTransport(nil, FaultConfig{Duplicate: 1}, rng.New(1))
	client := &http.Client{Transport: ft}
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (the duplicate must actually transmit)", hits.Load())
	}
	if st := ft.Stats(); st.Duplicated != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultyTransportDelay(t *testing.T) {
	srv, _ := countingServer(t)
	ft := NewFaultyTransport(nil, FaultConfig{DelayMax: 30 * time.Millisecond}, rng.New(3))
	client := &http.Client{Transport: ft}
	start := time.Now()
	for i := 0; i < 5; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	st := ft.Stats()
	if st.Delayed == 0 {
		t.Fatal("no request was delayed across 5 draws with DelayMax set")
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("wall clock shows no injected latency")
	}
}

// TestFaultyTransportDeterminism: same seed, same request sequence →
// same fault sequence. This is what makes lossy-fleet tests replayable.
func TestFaultyTransportDeterminism(t *testing.T) {
	srv, _ := countingServer(t)
	run := func() FaultStats {
		ft := NewFaultyTransport(nil, FaultConfig{DropRequest: 0.3, DropResponse: 0.3, Duplicate: 0.3}, rng.New(99))
		client := &http.Client{Transport: ft}
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return ft.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault sequences diverged: %+v vs %+v", a, b)
	}
	if a.DroppedRequests == 0 || a.DroppedResponses == 0 || a.Duplicated == 0 {
		t.Fatalf("fault mix not exercised: %+v", a)
	}
}
