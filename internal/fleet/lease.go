package fleet

import (
	"container/heap"
	"time"
)

// A lease is one unit checked out to one worker until its deadline.
// The lease state machine (DESIGN §12):
//
//	pending ──grant──▶ leased ──complete──▶ done
//	   ▲                  │
//	   └──────expire──────┘  (reassignment: the next grant of the unit)
//
// Renewal (heartbeat) moves the deadline without changing state. A
// completion is honored whether or not the lease is still live — the
// work is deterministic, so the first completion of a unit wins and
// every later one is a dedup'd duplicate.
type lease struct {
	unit     int
	worker   int
	token    int64
	deadline time.Time
}

// unitHeap is a min-heap of unit indices: grants hand out the lowest
// pending unit first, which keeps the merge frontier tight (low merge
// lag) without affecting results.
type unitHeap []int

func (h unitHeap) Len() int           { return len(h) }
func (h unitHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h unitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *unitHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *unitHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *unitHeap) next() int         { return heap.Pop(h).(int) }
func (h *unitHeap) add(u int)         { heap.Push(h, u) }

// leaseTable tracks pending units and outstanding leases. It is not
// self-locking: the coordinator serializes access under its own mutex.
type leaseTable struct {
	ttl       time.Duration
	now       func() time.Time
	pending   unitHeap
	byToken   map[int64]*lease
	byUnit    map[int]*lease
	wasLeased map[int]bool // units granted at least once (reassignment detection)
	nextToken int64
}

func newLeaseTable(ttl time.Duration, now func() time.Time) *leaseTable {
	return &leaseTable{
		ttl:       ttl,
		now:       now,
		byToken:   make(map[int64]*lease),
		byUnit:    make(map[int]*lease),
		wasLeased: make(map[int]bool),
	}
}

// addPending queues a unit for assignment.
func (t *leaseTable) addPending(u int) { t.pending.add(u) }

// grant leases the lowest pending unit to worker, or reports none
// available (every remaining unit is leased out or done).
func (t *leaseTable) grant(worker int) (*lease, bool) {
	if t.pending.Len() == 0 {
		return nil, false
	}
	u := t.pending.next()
	t.nextToken++
	l := &lease{unit: u, worker: worker, token: t.nextToken, deadline: t.now().Add(t.ttl)}
	t.byToken[l.token] = l
	t.byUnit[u] = l
	mLeasesGranted.Inc()
	if t.wasLeased[u] {
		mLeasesReassigned.Inc()
	}
	t.wasLeased[u] = true
	mLeasesActive.Set(float64(len(t.byToken)))
	return l, true
}

// renew extends the deadline of each quoted token still outstanding and
// returns the ones that are not (expired, completed, or never issued).
func (t *leaseTable) renew(tokens []int64) (expired []int64) {
	deadline := t.now().Add(t.ttl)
	for _, tok := range tokens {
		if l, ok := t.byToken[tok]; ok {
			l.deadline = deadline
		} else {
			expired = append(expired, tok)
		}
	}
	return expired
}

// expire sweeps overdue leases back into the pending queue and returns
// them (for the lease journal).
func (t *leaseTable) expire() []*lease {
	var out []*lease
	now := t.now()
	for tok, l := range t.byToken {
		if now.After(l.deadline) {
			delete(t.byToken, tok)
			delete(t.byUnit, l.unit)
			t.pending.add(l.unit)
			mLeasesExpired.Inc()
			out = append(out, l)
		}
	}
	if len(out) > 0 {
		mLeasesActive.Set(float64(len(t.byToken)))
	}
	return out
}

// complete retires the unit's lease, if any (the completion may come
// from an expired lease holder; the unit then simply has no live
// lease to retire).
func (t *leaseTable) complete(unit int) {
	if l, ok := t.byUnit[unit]; ok {
		delete(t.byToken, l.token)
		delete(t.byUnit, unit)
		mLeasesActive.Set(float64(len(t.byToken)))
	}
}

// active is the number of outstanding leases.
func (t *leaseTable) active() int { return len(t.byToken) }
