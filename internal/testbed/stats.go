// Package testbed drives the paper's evaluation (§4) on the simulated
// office: it generates topology populations, runs every strategy through
// the full COPA pipeline on each, and produces the data behind every
// figure and table — CDFs of aggregate throughput (Figs. 10–13), the
// nulling micro-measurements (Figs. 2–4, 7), the topology scatter
// (Fig. 9), MAC overhead (Table 1), and the multi-decoder study (Fig. 14).
package testbed

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the middle value (mean of the two middles for even n).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0–100) by linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value float64
	P     float64
}

// CDF returns the empirical distribution of xs as sorted (value, P≤) steps.
func CDF(xs []float64) []CDFPoint {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// FractionWhere counts the fraction of indices where pred holds.
func FractionWhere(n int, pred func(i int) bool) float64 {
	if n == 0 {
		return 0
	}
	c := 0
	for i := 0; i < n; i++ {
		if pred(i) {
			c++
		}
	}
	return float64(c) / float64(n)
}
