package testbed

import (
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"copa/internal/channel"
	"copa/internal/ofdm"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestExportFigureCSVs(t *testing.T) {
	dir := t.TempDir()

	if err := RunFigure2(1).ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig2.csv"))
	if len(rows) != ofdm.NumSubcarriers+1 || len(rows[0]) != 3 {
		t.Errorf("fig2.csv shape %dx%d", len(rows), len(rows[0]))
	}

	if err := RunFigure4(1).ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows = readCSV(t, filepath.Join(dir, "fig4.csv"))
	if rows[0][1] != "snr_bf_db" {
		t.Errorf("fig4 header: %v", rows[0])
	}
	// Values parse as floats.
	if _, err := strconv.ParseFloat(rows[1][1], 64); err != nil {
		t.Errorf("fig4 value not numeric: %v", rows[1])
	}

	if err := RunFigure9(1, 5).ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows = readCSV(t, filepath.Join(dir, "fig9.csv"))
	if len(rows) != 11 {
		t.Errorf("fig9.csv rows %d, want 11", len(rows))
	}

	if err := ExportTable1CSV(dir); err != nil {
		t.Fatal(err)
	}
	rows = readCSV(t, filepath.Join(dir, "table1.csv"))
	if len(rows) != 4 {
		t.Errorf("table1.csv rows %d", len(rows))
	}

	f3run := RunFigure3(1, 4)
	if err := f3run.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows = readCSV(t, filepath.Join(dir, "fig3.csv"))
	if len(rows) != len(f3run.PerTopologyINRReductionDB)+1 {
		t.Errorf("fig3.csv rows %d", len(rows))
	}
}

func TestExportScenarioCDF(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Topologies = 3
	cfg.SkipCOPAPlus = true
	res, err := RunScenario(context.Background(), channel.Scenario1x1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.ExportCSV(dir, "fig_1x1.csv"); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig_1x1.csv"))
	// header + schemes×topologies rows.
	want := 1 + len(res.PerTopology)*3
	if len(rows) != want {
		t.Errorf("cdf rows %d, want %d", len(rows), want)
	}
	// CDF column ends at 1.000 per scheme and is within (0,1].
	for _, r := range rows[1:] {
		p, err := strconv.ParseFloat(r[2], 64)
		if err != nil || p <= 0 || p > 1 {
			t.Fatalf("bad cdf value %v", r)
		}
	}
}
