package testbed

import (
	"fmt"

	"copa/internal/campaign"
)

// This file is the figure-generation layer over campaign aggregates:
// the same summary rows and CDFs the serial harness derives from raw
// per-topology samples (Figs. 10–13, Fig. 9), computed instead from the
// streamed Moments + quantile sketches a sharded campaign produces — so
// population figures no longer require holding any samples in memory.

// SchemeSummary is one scheme's headline row (the per-scheme line
// copasim prints for Figs. 10–13), computed from merged aggregates.
type SchemeSummary struct {
	Scheme string
	N      uint64
	// Throughputs in bits/s: mean/std from the moments, quantiles from
	// the sketch (within half a bucket, ≈0.4%, of the exact sample
	// quantiles).
	MeanBps, StdBps           float64
	P10Bps, MedianBps, P90Bps float64
}

// CampaignSummary extracts the per-scheme summary rows of one
// (profile, age) grid cell, in the paper's presentation order. Schemes
// infeasible in the scenario (Null for 1×1) are absent.
func CampaignSummary(res *campaign.Result, profile string, age int) []SchemeSummary {
	var rows []SchemeSummary
	for _, scheme := range AllSchemes {
		col := res.SchemeColumn(profile, age, scheme)
		if col == nil {
			continue
		}
		rows = append(rows, SchemeSummary{
			Scheme:    scheme,
			N:         col.Moments.N,
			MeanBps:   col.Moments.Mean,
			StdBps:    col.Moments.StdDev(),
			P10Bps:    col.Sketch.Quantile(0.10),
			MedianBps: col.Sketch.Quantile(0.50),
			P90Bps:    col.Sketch.Quantile(0.90),
		})
	}
	return rows
}

// CampaignCDF returns a column's cumulative distribution as testbed CDF
// points (one per occupied sketch bucket), or nil if the column is
// absent.
func CampaignCDF(res *campaign.Result, name string) []CDFPoint {
	col := res.Column(name)
	if col == nil {
		return nil
	}
	pts := col.Sketch.CDF()
	out := make([]CDFPoint, len(pts))
	for i, p := range pts {
		out[i] = CDFPoint{Value: p.Value, P: p.P}
	}
	return out
}

// ExportCampaignCSV writes the campaign's figure data into dir:
// campaign_<scenario>_summary.csv with one row per (profile, age,
// scheme), campaign_<scenario>_cdf.csv with every scheme column's
// throughput CDF (the Figs. 10–13 curves), and — when the Fig. 9
// columns are present — campaign_<scenario>_fig9_cdf.csv with the
// signal/interference power distributions.
func ExportCampaignCSV(dir string, res *campaign.Result) error {
	slug := res.Spec.Scenario.Name
	sum := [][]string{{"profile", "age", "scheme", "n", "mean_bps", "std_bps", "p10_bps", "median_bps", "p90_bps"}}
	cdf := [][]string{{"profile", "age", "scheme", "value_bps", "p"}}
	for _, prof := range res.Spec.Profiles {
		for age := 0; age < res.Spec.AgeBuckets; age++ {
			for _, row := range CampaignSummary(res, prof.Name, age) {
				sum = append(sum, []string{
					prof.Name, fmt.Sprint(age), row.Scheme, fmt.Sprint(row.N),
					fmt.Sprintf("%.0f", row.MeanBps), fmt.Sprintf("%.0f", row.StdBps),
					fmt.Sprintf("%.0f", row.P10Bps), fmt.Sprintf("%.0f", row.MedianBps), fmt.Sprintf("%.0f", row.P90Bps),
				})
			}
			for _, scheme := range AllSchemes {
				for _, p := range CampaignCDF(res, campaign.ColumnName(prof.Name, age, scheme)) {
					cdf = append(cdf, []string{
						prof.Name, fmt.Sprint(age), scheme,
						fmt.Sprintf("%.0f", p.Value), fmt.Sprintf("%.6f", p.P),
					})
				}
			}
		}
	}
	if err := writeCSV(dir, fmt.Sprintf("campaign_%s_summary.csv", slug), sum); err != nil {
		return err
	}
	if err := writeCSV(dir, fmt.Sprintf("campaign_%s_cdf.csv", slug), cdf); err != nil {
		return err
	}
	if res.Column(campaign.ColFig9Signal) == nil {
		return nil
	}
	fig9 := [][]string{{"series", "value_dbm", "p"}}
	for _, col := range []string{campaign.ColFig9Signal, campaign.ColFig9Interference} {
		for _, p := range CampaignCDF(res, col) {
			fig9 = append(fig9, []string{col, fmt.Sprintf("%.2f", p.Value), fmt.Sprintf("%.6f", p.P)})
		}
	}
	return writeCSV(dir, fmt.Sprintf("campaign_%s_fig9_cdf.csv", slug), fig9)
}
