package testbed

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Export helpers: every figure's data can be written as CSV for external
// plotting, one file per artifact, with a header row. Paths are created
// under the given directory.

// writeCSV writes rows (first row = header) to dir/name.
func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func e3(v float64) string { return strconv.FormatFloat(v, 'e', 3, 64) }

// ExportCSV writes fig2.csv: subcarrier, ant1_dbm, ant2_dbm.
func (f Figure2) ExportCSV(dir string) error {
	rows := [][]string{{"subcarrier", "ant1_dbm", "ant2_dbm"}}
	for k := range f.PowerDBm[0] {
		rows = append(rows, []string{strconv.Itoa(k), f1(f.PowerDBm[0][k]), f1(f.PowerDBm[1][k])})
	}
	return writeCSV(dir, "fig2.csv", rows)
}

// ExportCSV writes fig3.csv: per-topology nulling effects.
func (f Figure3) ExportCSV(dir string) error {
	rows := [][]string{{"topology", "inr_reduction_db", "snr_reduction_db", "sinr_increase_db"}}
	for t := range f.PerTopologyINRReductionDB {
		rows = append(rows, []string{
			strconv.Itoa(t),
			f1(f.PerTopologyINRReductionDB[t]),
			f1(f.PerTopologySNRReductionDB[t]),
			f1(f.PerTopologySINRIncreaseDB[t]),
		})
	}
	return writeCSV(dir, "fig3.csv", rows)
}

// ExportCSV writes fig4.csv: per-subcarrier SNR/SINR curves.
func (f Figure4) ExportCSV(dir string) error {
	rows := [][]string{{"subcarrier", "snr_bf_db", "snr_null_db", "sinr_null_db"}}
	for k := range f.SNRBFDB {
		rows = append(rows, []string{strconv.Itoa(k), f1(f.SNRBFDB[k]), f1(f.SNRNullDB[k]), f1(f.SINRNullDB[k])})
	}
	return writeCSV(dir, "fig4.csv", rows)
}

// ExportCSV writes fig7.csv: per-subcarrier BER with and without COPA.
func (f Figure7) ExportCSV(dir string) error {
	rows := [][]string{{"subcarrier", "ber_copa", "ber_nopa", "dropped"}}
	for k := range f.BERCOPA {
		d := "0"
		if f.Dropped[k] {
			d = "1"
		}
		rows = append(rows, []string{strconv.Itoa(k), e3(f.BERCOPA[k]), e3(f.BERNoPA[k]), d})
	}
	return writeCSV(dir, "fig7.csv", rows)
}

// ExportCSV writes fig9.csv: the topology scatter.
func (f Figure9) ExportCSV(dir string) error {
	rows := [][]string{{"signal_dbm", "interference_dbm"}}
	for i := range f.SignalDBm {
		rows = append(rows, []string{f1(f.SignalDBm[i]), f1(f.InterferenceDBm[i])})
	}
	return writeCSV(dir, "fig9.csv", rows)
}

// ExportCSV writes <name>.csv with the empirical CDF of every scheme:
// scheme, throughput_mbps, cdf.
func (r *ScenarioResult) ExportCSV(dir, name string) error {
	rows := [][]string{{"scheme", "throughput_mbps", "cdf"}}
	schemes := make([]string, 0, len(r.PerTopology))
	for s := range r.PerTopology {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, scheme := range schemes {
		for _, pt := range CDF(r.PerTopology[scheme]) {
			rows = append(rows, []string{scheme, f1(pt.Value / 1e6), f3(pt.P)})
		}
	}
	return writeCSV(dir, name, rows)
}

// ExportCSV writes table1.csv.
func ExportTable1CSV(dir string) error {
	rows := [][]string{{"coherence_ms", "copa_conc_pct", "copa_seq_pct", "csma_cts_pct", "csma_rts_pct"}}
	for _, r := range Table1() {
		rows = append(rows, []string{
			fmt.Sprintf("%g", float64(r.Coherence.Microseconds())/1000),
			f1(r.COPAConc * 100), f1(r.COPASeq * 100),
			f1(r.CSMACTS * 100), f1(r.CSMARTS * 100),
		})
	}
	return writeCSV(dir, "table1.csv", rows)
}

// ExportCSV writes fig14.csv.
func (f Figure14) ExportCSV(dir string) error {
	rows := [][]string{{"scheme", "scenario", "improvement_pct"}}
	for _, scheme := range Figure14Schemes {
		for _, sc := range []string{"1x1", "4x2", "3x2"} {
			rows = append(rows, []string{scheme, sc, f1(f.Improvement[sc][scheme])})
		}
	}
	return writeCSV(dir, "fig14.csv", rows)
}
