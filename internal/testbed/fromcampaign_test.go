package testbed

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"copa/internal/campaign"
	"copa/internal/channel"
)

// TestCampaignMatchesSerialHarness is the bridge golden test: a sharded
// campaign over the same (seed, scenario) population must reproduce the
// serial harness exactly — same per-topology evaluations (shared
// kernel, shared substream derivation), so the campaign's streamed
// means equal the sample means to merge round-off, and its sketch
// quantiles track the interpolated sample percentiles within sketch
// resolution.
func TestCampaignMatchesSerialHarness(t *testing.T) {
	const topologies = 8
	cfg := DefaultConfig(7)
	cfg.Topologies = topologies
	cfg.SkipCOPAPlus = true
	serial, err := RunScenario(context.Background(), channel.Scenario1x1, cfg)
	if err != nil {
		t.Fatal(err)
	}

	spec := campaign.Spec{
		Seed:         cfg.Seed,
		Scenario:     channel.Scenario1x1,
		Topologies:   topologies,
		Shards:       3,
		Profiles:     campaign.DefaultProfiles(),
		AgeBuckets:   1,
		SkipCOPAPlus: true,
	}
	res, err := campaign.Run(context.Background(), spec, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	rows := CampaignSummary(res, "default", 0)
	if len(rows) == 0 {
		t.Fatal("no summary rows")
	}
	for _, row := range rows {
		samples := serial.PerTopology[row.Scheme]
		if len(samples) != topologies {
			t.Fatalf("scheme %s: serial harness has %d samples", row.Scheme, len(samples))
		}
		if row.N != topologies {
			t.Errorf("scheme %s: campaign N=%d, want %d", row.Scheme, row.N, topologies)
		}
		mean := Mean(samples)
		if rel := math.Abs(row.MeanBps-mean) / mean; rel > 1e-9 {
			t.Errorf("scheme %s: campaign mean %.6g vs serial %.6g (rel %.2e)", row.Scheme, row.MeanBps, mean, rel)
		}
		if rel := math.Abs(row.StdBps-StdDev(samples)) / mean; rel > 1e-9 {
			t.Errorf("scheme %s: campaign std %.6g vs serial %.6g", row.Scheme, row.StdBps, StdDev(samples))
		}
		// Quantile conventions differ (sketch: nearest-rank bucket
		// midpoint; testbed: linear interpolation), so allow a loose but
		// meaningful band: between adjacent order statistics ± sketch
		// resolution.
		for _, q := range []struct {
			got float64
			p   float64
		}{{row.P10Bps, 0.10}, {row.MedianBps, 0.50}, {row.P90Bps, 0.90}} {
			want := Percentile(samples, q.p*100)
			if rel := math.Abs(q.got-want) / want; rel > 0.15 {
				t.Errorf("scheme %s p%.0f: campaign %.6g vs serial %.6g (rel %.3f)", row.Scheme, q.p*100, q.got, want, rel)
			}
		}
	}

	// The CDF bridge must expose every scheme column with a monotone
	// distribution reaching 1.
	for _, row := range rows {
		pts := CampaignCDF(res, campaign.ColumnName("default", 0, row.Scheme))
		if len(pts) == 0 {
			t.Fatalf("scheme %s: empty CDF", row.Scheme)
		}
		if last := pts[len(pts)-1].P; last != 1 {
			t.Errorf("scheme %s: CDF ends at %g", row.Scheme, last)
		}
	}
}

// TestExportCampaignCSV smoke-tests the figure-export path from
// campaign aggregates.
func TestExportCampaignCSV(t *testing.T) {
	spec := campaign.Spec{
		Seed:         3,
		Scenario:     channel.Scenario1x1,
		Topologies:   4,
		Shards:       2,
		Profiles:     campaign.DefaultProfiles(),
		AgeBuckets:   2,
		SkipCOPAPlus: true,
	}
	res, err := campaign.Run(context.Background(), spec, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ExportCampaignCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"campaign_1x1_summary.csv",
		"campaign_1x1_cdf.csv",
		"campaign_1x1_fig9_cdf.csv",
	} {
		if rows := readCSV(t, filepath.Join(dir, name)); len(rows) < 2 {
			t.Errorf("%s: %d rows, want header + data", name, len(rows))
		}
	}
}
