package testbed

import (
	"context"
	"fmt"
	"math"

	"copa/internal/campaign"
	"copa/internal/channel"
	"copa/internal/core"
	"copa/internal/mac"
	"copa/internal/medium"
	"copa/internal/obs"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// LossSweepConfig parameterizes the control-frame-loss robustness sweep:
// how does COPA's realized aggregate degrade as ITS frames start dying,
// and does the retry/fallback machinery keep it from falling below the
// plain-CSMA floor?
type LossSweepConfig struct {
	Seed       int64
	Topologies int
	// LossRates are the stationary control-frame loss probabilities to
	// sweep (DefaultLossRates: 0–30%).
	LossRates []float64
	// MeanBurst > 1 switches the injected loss from i.i.d. to
	// Gilbert–Elliott bursts of this mean length.
	MeanBurst float64
	// Rounds is the number of sounding→exchange→TXOP cycles per topology
	// per rate.
	Rounds      int
	Impairments channel.Impairments
}

// DefaultLossRates spans the sweep the paper's robustness question needs:
// no loss through severe (30%) control-plane loss.
func DefaultLossRates() []float64 { return []float64{0, 0.05, 0.10, 0.20, 0.30} }

// DefaultLossSweepConfig mirrors the figure defaults at a size that runs
// in seconds.
func DefaultLossSweepConfig(seed int64) LossSweepConfig {
	return LossSweepConfig{
		Seed:        seed,
		Topologies:  10,
		LossRates:   DefaultLossRates(),
		MeanBurst:   1,
		Rounds:      8,
		Impairments: channel.DefaultImpairments(),
	}
}

// LossPoint is the sweep at one loss rate.
type LossPoint struct {
	Loss float64
	// AggregateBps is the mean realized aggregate throughput (both
	// clients, fallback rounds scored as CSMA) over all topologies and
	// rounds.
	AggregateBps float64
	// Agg is the streamed per-topology aggregate-throughput column
	// (moments + quantile sketch), the campaign-style form figure
	// generation consumes.
	Agg *campaign.Column
	// PerTopologyBps[t] is topology t's mean aggregate at this rate.
	PerTopologyBps []float64
	// FallbackRate is the fraction of exchanges that exhausted their
	// retry budget and degraded to CSMA.
	FallbackRate float64
	// RetriesPerExchange is the mean number of retransmissions.
	RetriesPerExchange float64
	// ControlBytesPerExchange includes retransmissions.
	ControlBytesPerExchange float64
}

// LossSweep is the full throughput-vs-loss curve for one scenario.
type LossSweep struct {
	Scenario channel.Scenario
	Points   []LossPoint
	// CSMABps[t] is topology t's plain-CSMA baseline aggregate — the
	// floor graceful degradation must not undercut.
	CSMABps []float64
}

// MeanCSMABps is the mean baseline over topologies.
func (s *LossSweep) MeanCSMABps() float64 { return Mean(s.CSMABps) }

// RunLossSweep measures realized COPA throughput against injected
// control-frame loss. Each (topology, rate) cell runs cfg.Rounds cycles
// of sounding, a message-driven ITS exchange over a seeded Faulty medium,
// and throughput measurement on the true channels; fallback rounds score
// as plain CSMA, so the curve shows exactly what the retry/fallback
// machinery salvages. Cancelling ctx aborts the sweep between topology
// cells and returns ctx.Err().
func RunLossSweep(ctx context.Context, sc channel.Scenario, cfg LossSweepConfig) (*LossSweep, error) {
	span := obs.Trace("testbed.losssweep")
	defer span.End()
	if cfg.Topologies < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("testbed: loss sweep needs ≥1 topology and round")
	}
	if len(cfg.LossRates) == 0 {
		cfg.LossRates = DefaultLossRates()
	}
	deps := channel.GenerateTestbed(cfg.Seed, sc, cfg.Topologies)
	sweep := &LossSweep{Scenario: sc, CSMABps: make([]float64, cfg.Topologies)}

	for _, loss := range cfg.LossRates {
		pt := LossPoint{Loss: loss, Agg: campaign.NewColumn(), PerTopologyBps: make([]float64, cfg.Topologies)}
		exchanges := 0
		for t, dep := range deps {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Identically seeded pair per rate: every rate sees the same
			// channels, CSI noise, and leader elections — only the medium
			// differs. The domain tag keeps these streams disjoint from the
			// per-topology deployment streams, which derive directly from
			// (Seed, t).
			src := rng.NewSub(cfg.Seed, domainLossSweep, uint64(t))
			pair := core.NewPair(dep, cfg.Impairments, strategy.DefaultCoherence, strategy.ModeMax, src.Split(2))
			pair.Med = medium.NewFaulty(medium.NewPerfect(), medium.Config{
				Loss:      loss,
				MeanBurst: cfg.MeanBurst,
			}, src.Split(3))

			var agg float64
			for r := 0; r < cfg.Rounds; r++ {
				pair.MeasureCSI()
				if loss == cfg.LossRates[0] && r == 0 {
					csma := pair.CSMAThroughputs()
					sweep.CSMABps[t] = csma[0] + csma[1]
				}
				s, err := pair.RunExchange(uint32(mac.TxOp.Microseconds()))
				if err != nil {
					return nil, fmt.Errorf("loss %.2f topology %d round %d: %w", loss, t, r, err)
				}
				exchanges++
				if s.Fallback {
					pt.FallbackRate++
				}
				pt.RetriesPerExchange += float64(s.Retries)
				pt.ControlBytesPerExchange += float64(s.ControlBytes)
				tp := pair.MeasuredThroughputs(s)
				agg += tp[0] + tp[1]
				// Advance the clock without evolving the (shared) truth:
				// every rate must see identical channels.
				pair.Advance(mac.TxOp, math.Inf(1))
			}
			pt.PerTopologyBps[t] = agg / float64(cfg.Rounds)
			pt.Agg.Add(pt.PerTopologyBps[t])
		}
		pt.AggregateBps = pt.Agg.Moments.Mean
		pt.FallbackRate /= float64(exchanges)
		pt.RetriesPerExchange /= float64(exchanges)
		pt.ControlBytesPerExchange /= float64(exchanges)
		sweep.Points = append(sweep.Points, pt)
	}
	return sweep, nil
}

// ExportCSV writes losssweep_<scenario>.csv: loss, aggregate, CSMA
// baseline, fallback and retry rates.
func (s *LossSweep) ExportCSV(dir string) error {
	rows := [][]string{{"loss", "aggregate_bps", "csma_bps", "fallback_rate", "retries_per_exchange", "control_bytes"}}
	base := s.MeanCSMABps()
	for _, p := range s.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.Loss),
			fmt.Sprintf("%.0f", p.AggregateBps),
			fmt.Sprintf("%.0f", base),
			fmt.Sprintf("%.4f", p.FallbackRate),
			fmt.Sprintf("%.3f", p.RetriesPerExchange),
			fmt.Sprintf("%.0f", p.ControlBytesPerExchange),
		})
	}
	return writeCSV(dir, fmt.Sprintf("losssweep_%s.csv", s.Scenario.Name), rows)
}
