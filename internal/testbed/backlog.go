package testbed

import (
	"math"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Backlog simulation: §3.5 motivates the throughput-maximizing mode with
// "this clears any transmission backlog fastest". Here we make that
// claim measurable: Poisson frame arrivals feed each AP's downlink queue,
// TXOPs drain them at the evaluated per-client rates under each scheme's
// airtime discipline, and we report mean queue delay. Concurrency's
// advantage shows up as the load at which queues stay stable.

// BacklogConfig parameterizes one run.
type BacklogConfig struct {
	// ArrivalBitsPerSec is each client's offered load.
	ArrivalBitsPerSec float64
	// FrameBits is the arrival granularity (one MPDU).
	FrameBits int
	// TXOPs to simulate.
	TXOPs int
}

// BacklogResult reports per-scheme queueing behaviour on one topology.
type BacklogResult struct {
	// MeanDelaySec[j] is client j's mean frame sojourn time; +Inf when
	// the queue is unstable (still growing at the end of the run).
	MeanDelaySec [2]float64
	// Served[j] counts delivered frames.
	Served [2]int
	// FinalBacklogBits[j] is what remains queued.
	FinalBacklogBits [2]float64
}

// queue is a FIFO of frame arrival times with a bit counter.
type queue struct {
	arrivals []float64 // arrival time (s) per queued frame
	bits     float64
}

func (q *queue) push(t float64, frameBits int) {
	q.arrivals = append(q.arrivals, t)
	q.bits += float64(frameBits)
}

// drain serves up to capacity bits at time now, returning (frames served,
// summed delays).
func (q *queue) drain(now, capacity float64, frameBits int) (int, float64) {
	served := 0
	var delay float64
	for capacity >= float64(frameBits) && len(q.arrivals) > 0 {
		delay += now - q.arrivals[0]
		q.arrivals = q.arrivals[1:]
		q.bits -= float64(frameBits)
		capacity -= float64(frameBits)
		served++
	}
	return served, delay
}

// RunBacklog simulates queueing under a strategy outcome: concurrent
// outcomes drain both queues every TXOP at their per-client rates;
// sequential outcomes alternate. Arrivals are Poisson.
func RunBacklog(src *rng.Source, o strategy.Outcome, cfg BacklogConfig) BacklogResult {
	if cfg.FrameBits <= 0 {
		cfg.FrameBits = 12000
	}
	slot := mac.TxOp.Seconds()
	var qs [2]queue
	var served [2]int
	var delaySum [2]float64

	// Pre-draw Poisson arrivals per slot (mean λ·slot / frame size).
	meanPerSlot := cfg.ArrivalBitsPerSec * slot / float64(cfg.FrameBits)
	poisson := func(s *rng.Source) int {
		// Knuth's method; meanPerSlot is small (a few frames per slot).
		l := math.Exp(-meanPerSlot)
		k, p := 0, 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}

	for t := 0; t < cfg.TXOPs; t++ {
		now := float64(t) * slot
		for j := 0; j < 2; j++ {
			n := poisson(src)
			for i := 0; i < n; i++ {
				qs[j].push(now, cfg.FrameBits)
			}
		}
		if o.Concurrent {
			for j := 0; j < 2; j++ {
				s, d := qs[j].drain(now+slot, o.PerClient[j]*slot, cfg.FrameBits)
				served[j] += s
				delaySum[j] += d
			}
		} else {
			j := t % 2 // alternating turns
			// PerClient already includes the 0.5 airtime share; during
			// its own turn the client drains at twice that.
			s, d := qs[j].drain(now+slot, 2*o.PerClient[j]*slot, cfg.FrameBits)
			served[j] += s
			delaySum[j] += d
		}
	}

	var res BacklogResult
	for j := 0; j < 2; j++ {
		res.Served[j] = served[j]
		res.FinalBacklogBits[j] = qs[j].bits
		switch {
		case served[j] == 0:
			res.MeanDelaySec[j] = math.Inf(1)
		case qs[j].bits > 4*cfg.ArrivalBitsPerSec*slot*10:
			// Still holding far more than a burst's worth: unstable.
			res.MeanDelaySec[j] = math.Inf(1)
		default:
			res.MeanDelaySec[j] = delaySum[j] / float64(served[j])
		}
	}
	return res
}

// BacklogComparison evaluates mean delay under CSMA, throughput-maximal
// COPA, and incentive-compatible COPA fair on one topology at the given
// load. Max mode may starve one client (the §3.5 concern); fair mode may
// not.
type BacklogComparison struct {
	CSMADelaySec     [2]float64
	COPADelaySec     [2]float64
	COPAFairDelaySec [2]float64
	COPAConcurrent   bool
}

// RunBacklogComparison wires a topology through the evaluator and the
// backlog simulation for all three schemes.
func RunBacklogComparison(seed int64, loadBps float64, txops int) (BacklogComparison, error) {
	src := rng.New(seed)
	dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
	ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
	outs, err := ev.EvaluateAll()
	if err != nil {
		return BacklogComparison{}, err
	}
	cfg := BacklogConfig{ArrivalBitsPerSec: loadBps, TXOPs: txops}
	csma := RunBacklog(src.Split(3), outs[strategy.KindCSMA], cfg)
	copa := RunBacklog(src.Split(3), strategy.Select(strategy.ModeMax, outs), cfg)
	fair := RunBacklog(src.Split(3), strategy.Select(strategy.ModeFair, outs), cfg)
	return BacklogComparison{
		CSMADelaySec:     csma.MeanDelaySec,
		COPADelaySec:     copa.MeanDelaySec,
		COPAFairDelaySec: fair.MeanDelaySec,
		COPAConcurrent:   strategy.Select(strategy.ModeMax, outs).Concurrent,
	}, nil
}
