package testbed

import (
	"context"
	"runtime"
	"sync"

	"copa/internal/campaign"
	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/rng"
)

// Domain tags namespace the package's stateless RNG substreams (see
// rng.Derive): each family of streams derived from one user-supplied seed
// gets a distinct leading path element so families never alias.
const (
	domainLossSweep  uint64 = 0x1055 // per-topology loss-sweep pair streams
	domainRobustness uint64 = 0x0b57 // per-replicate seeds in RunSeedRobustness
	domainMobility   uint64 = 0x30b1 // per-topology mobility-sweep controller seeds
)

// Scheme names match the paper's figure legends. They are owned by
// internal/campaign (the shared evaluation kernel) and aliased here so
// existing callers keep compiling.
const (
	SchemeCSMA     = campaign.SchemeCSMA
	SchemeCOPASeq  = campaign.SchemeCOPASeq
	SchemeNull     = campaign.SchemeNull // "Null+SDA" in the overconstrained scenario
	SchemeCOPAFair = campaign.SchemeCOPAFair
	SchemeCOPA     = campaign.SchemeCOPA
	SchemeCOPAPF   = campaign.SchemeCOPAPF
	SchemeCOPAP    = campaign.SchemeCOPAP
)

// AllSchemes lists scheme names in the paper's presentation order.
var AllSchemes = campaign.AllSchemes

// ScenarioResult holds per-topology aggregate throughputs for every
// scheme in one antenna scenario — the data behind one of Figs. 10–13.
type ScenarioResult struct {
	Scenario   channel.Scenario
	Topologies int
	// PerTopology[scheme][t] is the aggregate (both clients) effective
	// throughput in bits/s on topology t. Schemes that are infeasible in
	// the scenario (Null for 1×1) are absent.
	PerTopology map[string][]float64
}

// MeanMbps returns a scheme's mean aggregate throughput in Mb/s.
func (r *ScenarioResult) MeanMbps(scheme string) float64 {
	return Mean(r.PerTopology[scheme]) / 1e6
}

// Config parameterizes a scenario run.
type Config struct {
	Seed        int64
	Topologies  int
	Impairments channel.Impairments
	// InterferenceDeltaDB scales all cross-channels (−10 reproduces the
	// Fig. 12 weak-interference emulation).
	InterferenceDeltaDB float64
	// SkipCOPAPlus disables the (expensive) mercury/water-filling
	// variants.
	SkipCOPAPlus bool
	// MultiDecoder evaluates with per-subcarrier rate selection (Fig. 14).
	MultiDecoder bool
	// MaxParallel bounds worker goroutines (default: GOMAXPROCS).
	MaxParallel int
}

// DefaultConfig mirrors the paper: 30 topologies, WARP-class impairments.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Topologies: 30, Impairments: channel.DefaultImpairments()}
}

// topologyOutcomes evaluates every scheme on one deployment via the
// shared campaign kernel (bit-identical to what a sharded campaign
// computes for the same topology).
func topologyOutcomes(dep *channel.Deployment, cfg Config, src *rng.Source) (map[string]float64, error) {
	mTopologies.Inc()
	defer mTopologySeconds.Begin().End()
	out, err := campaign.EvaluateTopology(dep, cfg.Impairments, src, campaign.EvalOptions{
		MultiDecoder: cfg.MultiDecoder,
		SkipCOPAPlus: cfg.SkipCOPAPlus,
	})
	if err != nil {
		return nil, err
	}
	mTopologyAggMbps.Observe(out[SchemeCOPA] / 1e6)
	return out, nil
}

// RunScenario evaluates all schemes over a population of topologies,
// in parallel across topologies, deterministically per (seed, scenario).
// Cancelling ctx aborts the run between topologies and returns ctx.Err();
// results computed so far are discarded (a partial population would bias
// every aggregate).
func RunScenario(ctx context.Context, sc channel.Scenario, cfg Config) (*ScenarioResult, error) {
	span := obs.Trace("testbed.scenario")
	defer span.End()
	defer mScenarioSeconds.Begin().End()
	mScenarioRuns.Inc()
	deps := channel.GenerateTestbed(cfg.Seed, sc, cfg.Topologies)
	if cfg.InterferenceDeltaDB != 0 {
		for i, d := range deps {
			deps[i] = d.ScaleInterference(cfg.InterferenceDeltaDB)
		}
	}
	res := &ScenarioResult{
		Scenario:    sc,
		Topologies:  cfg.Topologies,
		PerTopology: make(map[string][]float64),
	}
	type one struct {
		idx int
		out map[string]float64
		err error
	}
	workers := cfg.MaxParallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]one, len(deps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	srcs := make([]*rng.Source, len(deps))
	for i := range srcs {
		// Stateless per-topology derivation (xor keeps the evaluation
		// stream family disjoint from the deployment streams, which
		// derive directly from cfg.Seed).
		srcs[i] = rng.NewSub(cfg.Seed^0x5eed, uint64(i))
	}
	for i, dep := range deps {
		wg.Add(1)
		go func(i int, dep *channel.Deployment) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = one{idx: i, err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				results[i] = one{idx: i, err: err}
				return
			}
			out, err := topologyOutcomes(dep, cfg, srcs[i])
			results[i] = one{idx: i, out: out, err: err}
			obs.Logger().Debug("topology evaluated",
				"scenario", sc.Name, "topology", i, "seed", cfg.Seed, "err", err)
		}(i, dep)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for scheme, v := range r.out {
			res.PerTopology[scheme] = append(res.PerTopology[scheme], v)
		}
	}
	obs.Logger().Debug("scenario complete",
		"scenario", sc.Name, "topologies", cfg.Topologies, "seed", cfg.Seed)
	return res, nil
}

// HeadlineStats computes the paper's §1 claims from a 4×2 scenario run:
// how often vanilla nulling loses to CSMA, COPA's improvement over nulling
// on those topologies, and how often COPA then beats CSMA.
type HeadlineStats struct {
	// NullLosesToCSMA is the fraction of topologies where vanilla
	// nulling underperforms CSMA (paper: 83%).
	NullLosesToCSMA float64
	// COPAOverNullWhereNullLoses is COPA's mean relative improvement
	// over nulling on those topologies (paper: +64%).
	COPAOverNullWhereNullLoses float64
	// COPABeatsCSMAWhereNullLoses is the fraction of those topologies
	// where COPA exceeds CSMA (paper: 76%).
	COPABeatsCSMAWhereNullLoses float64
	// NullWinMedian is nulling's median improvement over CSMA where it
	// wins (paper: 12%).
	NullWinMedian float64
	// COPAWinMedianWhereNullWins is COPA's median improvement over CSMA
	// on those same topologies (paper: 45%).
	COPAWinMedianWhereNullWins float64
	// PriceOfFairness is 1 − mean(COPA fair)/mean(COPA).
	PriceOfFairness float64
}

// Headlines derives the §1 statistics from a scenario result containing
// Null, CSMA and COPA columns.
func Headlines(r *ScenarioResult) HeadlineStats {
	var hs HeadlineStats
	null, csma, copa := r.PerTopology[SchemeNull], r.PerTopology[SchemeCSMA], r.PerTopology[SchemeCOPA]
	if len(null) == 0 {
		return hs
	}
	var loseGain, winNull, winCOPA []float64
	lose, loseAndBeat := 0, 0
	for t := range null {
		if null[t] < csma[t] {
			lose++
			if null[t] > 0 {
				loseGain = append(loseGain, copa[t]/null[t]-1)
			}
			if copa[t] > csma[t] {
				loseAndBeat++
			}
		} else if csma[t] > 0 {
			winNull = append(winNull, null[t]/csma[t]-1)
			winCOPA = append(winCOPA, copa[t]/csma[t]-1)
		}
	}
	n := float64(len(null))
	hs.NullLosesToCSMA = float64(lose) / n
	hs.COPAOverNullWhereNullLoses = Mean(loseGain)
	if lose > 0 {
		hs.COPABeatsCSMAWhereNullLoses = float64(loseAndBeat) / float64(lose)
	}
	hs.NullWinMedian = Median(winNull)
	hs.COPAWinMedianWhereNullWins = Median(winCOPA)
	if m := Mean(copa); m > 0 {
		hs.PriceOfFairness = 1 - Mean(r.PerTopology[SchemeCOPAFair])/m
	}
	return hs
}
