package testbed

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/power"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Scheme names match the paper's figure legends.
const (
	SchemeCSMA     = "CSMA"
	SchemeCOPASeq  = "COPA-SEQ"
	SchemeNull     = "Null" // "Null+SDA" in the overconstrained scenario
	SchemeCOPAFair = "COPA fair"
	SchemeCOPA     = "COPA"
	SchemeCOPAPF   = "COPA+ fair"
	SchemeCOPAP    = "COPA+"
)

// AllSchemes lists scheme names in the paper's presentation order.
var AllSchemes = []string{
	SchemeCSMA, SchemeCOPASeq, SchemeNull,
	SchemeCOPAFair, SchemeCOPA, SchemeCOPAPF, SchemeCOPAP,
}

// ScenarioResult holds per-topology aggregate throughputs for every
// scheme in one antenna scenario — the data behind one of Figs. 10–13.
type ScenarioResult struct {
	Scenario   channel.Scenario
	Topologies int
	// PerTopology[scheme][t] is the aggregate (both clients) effective
	// throughput in bits/s on topology t. Schemes that are infeasible in
	// the scenario (Null for 1×1) are absent.
	PerTopology map[string][]float64
}

// MeanMbps returns a scheme's mean aggregate throughput in Mb/s.
func (r *ScenarioResult) MeanMbps(scheme string) float64 {
	return Mean(r.PerTopology[scheme]) / 1e6
}

// Config parameterizes a scenario run.
type Config struct {
	Seed        int64
	Topologies  int
	Impairments channel.Impairments
	// InterferenceDeltaDB scales all cross-channels (−10 reproduces the
	// Fig. 12 weak-interference emulation).
	InterferenceDeltaDB float64
	// SkipCOPAPlus disables the (expensive) mercury/water-filling
	// variants.
	SkipCOPAPlus bool
	// MultiDecoder evaluates with per-subcarrier rate selection (Fig. 14).
	MultiDecoder bool
	// MaxParallel bounds worker goroutines (default: GOMAXPROCS).
	MaxParallel int
}

// DefaultConfig mirrors the paper: 30 topologies, WARP-class impairments.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Topologies: 30, Impairments: channel.DefaultImpairments()}
}

// topologyOutcomes evaluates every scheme on one deployment.
func topologyOutcomes(dep *channel.Deployment, cfg Config, src *rng.Source) (map[string]float64, error) {
	mTopologies.Inc()
	defer mTopologySeconds.Begin().End()
	out := make(map[string]float64)

	ev := strategy.NewEvaluator(dep, cfg.Impairments, src.Split(1))
	ev.MultiDecoder = cfg.MultiDecoder
	outs, err := ev.EvaluateAll()
	if err != nil {
		return nil, fmt.Errorf("evaluate %s: %w", dep, err)
	}
	out[SchemeCSMA] = outs[strategy.KindCSMA].Aggregate()
	out[SchemeCOPASeq] = outs[strategy.KindCOPASeq].Aggregate()
	if o, ok := outs[strategy.KindNull]; ok {
		out[SchemeNull] = o.Aggregate()
	}
	out[SchemeCOPA] = strategy.Select(strategy.ModeMax, outs).Aggregate()
	out[SchemeCOPAFair] = strategy.Select(strategy.ModeFair, outs).Aggregate()
	mTopologyAggMbps.Observe(out[SchemeCOPA] / 1e6)

	if !cfg.SkipCOPAPlus {
		// COPA+: same pipeline with iterated mercury/water-filling as the
		// inner allocator (trace-driven in the paper for the same reason
		// it is slower here: §4.2).
		evp := strategy.NewEvaluator(dep, cfg.Impairments, src.Split(1))
		evp.MultiDecoder = cfg.MultiDecoder
		evp.Alloc.Inner = power.MercuryBest
		evp.Alloc.MaxIters = 3
		plusOuts, err := evp.EvaluateAll()
		if err != nil {
			return nil, fmt.Errorf("evaluate COPA+ %s: %w", dep, err)
		}
		// COPA+ *adds* the mercury/water-filling allocations to the
		// strategy set COPA selects from (§4.2), so for each mode the
		// choice is whichever of the two pipelines predicts higher.
		pick := func(mode strategy.Mode) float64 {
			base := strategy.Select(mode, outs)
			plus := strategy.Select(mode, plusOuts)
			if plus.PredictedAggregate() > base.PredictedAggregate() {
				return plus.Aggregate()
			}
			return base.Aggregate()
		}
		out[SchemeCOPAP] = pick(strategy.ModeMax)
		out[SchemeCOPAPF] = pick(strategy.ModeFair)
	}
	return out, nil
}

// RunScenario evaluates all schemes over a population of topologies,
// in parallel across topologies, deterministically per (seed, scenario).
// Cancelling ctx aborts the run between topologies and returns ctx.Err();
// results computed so far are discarded (a partial population would bias
// every aggregate).
func RunScenario(ctx context.Context, sc channel.Scenario, cfg Config) (*ScenarioResult, error) {
	span := obs.Trace("testbed.scenario")
	defer span.End()
	defer mScenarioSeconds.Begin().End()
	mScenarioRuns.Inc()
	deps := channel.GenerateTestbed(cfg.Seed, sc, cfg.Topologies)
	if cfg.InterferenceDeltaDB != 0 {
		for i, d := range deps {
			deps[i] = d.ScaleInterference(cfg.InterferenceDeltaDB)
		}
	}
	res := &ScenarioResult{
		Scenario:    sc,
		Topologies:  cfg.Topologies,
		PerTopology: make(map[string][]float64),
	}
	type one struct {
		idx int
		out map[string]float64
		err error
	}
	workers := cfg.MaxParallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]one, len(deps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	master := rng.New(cfg.Seed ^ 0x5eed)
	srcs := make([]*rng.Source, len(deps))
	for i := range srcs {
		srcs[i] = master.Split(uint64(i))
	}
	for i, dep := range deps {
		wg.Add(1)
		go func(i int, dep *channel.Deployment) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = one{idx: i, err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				results[i] = one{idx: i, err: err}
				return
			}
			out, err := topologyOutcomes(dep, cfg, srcs[i])
			results[i] = one{idx: i, out: out, err: err}
			obs.Logger().Debug("topology evaluated",
				"scenario", sc.Name, "topology", i, "seed", cfg.Seed, "err", err)
		}(i, dep)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for scheme, v := range r.out {
			res.PerTopology[scheme] = append(res.PerTopology[scheme], v)
		}
	}
	obs.Logger().Debug("scenario complete",
		"scenario", sc.Name, "topologies", cfg.Topologies, "seed", cfg.Seed)
	return res, nil
}

// HeadlineStats computes the paper's §1 claims from a 4×2 scenario run:
// how often vanilla nulling loses to CSMA, COPA's improvement over nulling
// on those topologies, and how often COPA then beats CSMA.
type HeadlineStats struct {
	// NullLosesToCSMA is the fraction of topologies where vanilla
	// nulling underperforms CSMA (paper: 83%).
	NullLosesToCSMA float64
	// COPAOverNullWhereNullLoses is COPA's mean relative improvement
	// over nulling on those topologies (paper: +64%).
	COPAOverNullWhereNullLoses float64
	// COPABeatsCSMAWhereNullLoses is the fraction of those topologies
	// where COPA exceeds CSMA (paper: 76%).
	COPABeatsCSMAWhereNullLoses float64
	// NullWinMedian is nulling's median improvement over CSMA where it
	// wins (paper: 12%).
	NullWinMedian float64
	// COPAWinMedianWhereNullWins is COPA's median improvement over CSMA
	// on those same topologies (paper: 45%).
	COPAWinMedianWhereNullWins float64
	// PriceOfFairness is 1 − mean(COPA fair)/mean(COPA).
	PriceOfFairness float64
}

// Headlines derives the §1 statistics from a scenario result containing
// Null, CSMA and COPA columns.
func Headlines(r *ScenarioResult) HeadlineStats {
	var hs HeadlineStats
	null, csma, copa := r.PerTopology[SchemeNull], r.PerTopology[SchemeCSMA], r.PerTopology[SchemeCOPA]
	if len(null) == 0 {
		return hs
	}
	var loseGain, winNull, winCOPA []float64
	lose, loseAndBeat := 0, 0
	for t := range null {
		if null[t] < csma[t] {
			lose++
			if null[t] > 0 {
				loseGain = append(loseGain, copa[t]/null[t]-1)
			}
			if copa[t] > csma[t] {
				loseAndBeat++
			}
		} else if csma[t] > 0 {
			winNull = append(winNull, null[t]/csma[t]-1)
			winCOPA = append(winCOPA, copa[t]/csma[t]-1)
		}
	}
	n := float64(len(null))
	hs.NullLosesToCSMA = float64(lose) / n
	hs.COPAOverNullWhereNullLoses = Mean(loseGain)
	if lose > 0 {
		hs.COPABeatsCSMAWhereNullLoses = float64(loseAndBeat) / float64(lose)
	}
	hs.NullWinMedian = Median(winNull)
	hs.COPAWinMedianWhereNullWins = Median(winCOPA)
	if m := Mean(copa); m > 0 {
		hs.PriceOfFairness = 1 - Mean(r.PerTopology[SchemeCOPAFair])/m
	}
	return hs
}
