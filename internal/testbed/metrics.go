package testbed

import "copa/internal/obs"

// Handles resolved once at init; RunScenario's per-topology workers only
// touch atomics.
var (
	mScenarioRuns    = obs.C("copa.testbed.scenario_runs")
	mScenarioSeconds = obs.T("copa.testbed.scenario_seconds")
	mTopologies      = obs.C("copa.testbed.topologies")
	mTopologySeconds = obs.T("copa.testbed.topology_seconds")
	// mTopologyAggMbps distributes per-topology COPA aggregate throughput
	// (both clients, Mb/s) — the population behind Figs. 10–13.
	mTopologyAggMbps = obs.H("copa.testbed.topology_agg_mbps", obs.LinearBuckets(0, 25, 16))
	// mFigureSeconds times each RunFigure* entry point; the tracer's span
	// names tell the figures apart.
	mFigureSeconds = obs.T("copa.testbed.figure_seconds")
)
