package testbed

import (
	"context"

	"copa/internal/channel"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// PredictionAccuracy quantifies §3.3's observation that foreseeing the
// winning strategy "is not so easy": for every evaluated strategy on
// every topology, it compares the leader's predicted aggregate
// throughput (computed on CSI estimates) with the realized one (computed
// on the true channels) and reports the mean relative error per strategy
// kind — positive bias means the leader oversells the strategy.
type PredictionAccuracy struct {
	// BiasByKind[k] is mean (predicted − realized)/realized.
	BiasByKind map[strategy.Kind]float64
	// MAEByKind[k] is the mean absolute relative error.
	MAEByKind map[strategy.Kind]float64
	// MispickRate is the fraction of topologies where ModeMax's choice
	// (made on predictions) was not the realized-best strategy.
	MispickRate float64
	// MispickCostMean is the mean relative throughput lost on mispicked
	// topologies ((best − chosen)/best).
	MispickCostMean float64
}

// RunPredictionAccuracy evaluates the prediction gap over a 4×2
// testbed. Cancelling ctx aborts between topologies.
func RunPredictionAccuracy(ctx context.Context, seed int64, topologies int) (PredictionAccuracy, error) {
	acc := PredictionAccuracy{
		BiasByKind: make(map[strategy.Kind]float64),
		MAEByKind:  make(map[strategy.Kind]float64),
	}
	counts := make(map[strategy.Kind]int)
	master := rng.New(seed)
	mispicks, mispickCostSum := 0, 0.0
	n := 0
	for t := 0; t < topologies; t++ {
		if err := ctx.Err(); err != nil {
			return acc, err
		}
		src := master.Split(uint64(t))
		dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
		ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
		outs, err := ev.EvaluateAll()
		if err != nil {
			return acc, err
		}
		n++
		for k, o := range outs {
			if o.Aggregate() <= 0 {
				continue
			}
			rel := (o.PredictedAggregate() - o.Aggregate()) / o.Aggregate()
			acc.BiasByKind[k] += rel
			if rel < 0 {
				rel = -rel
			}
			acc.MAEByKind[k] += rel
			counts[k]++
		}
		chosen := strategy.Select(strategy.ModeMax, outs)
		var best strategy.Outcome
		for _, k := range []strategy.Kind{strategy.KindCOPASeq, strategy.KindConcBF, strategy.KindConcNull} {
			if o, ok := outs[k]; ok && o.Aggregate() > best.Aggregate() {
				best = o
			}
		}
		if best.Aggregate() > chosen.Aggregate()*1.001 {
			mispicks++
			mispickCostSum += (best.Aggregate() - chosen.Aggregate()) / best.Aggregate()
		}
	}
	for k := range acc.BiasByKind {
		acc.BiasByKind[k] /= float64(counts[k])
		acc.MAEByKind[k] /= float64(counts[k])
	}
	if n > 0 {
		acc.MispickRate = float64(mispicks) / float64(n)
	}
	if mispicks > 0 {
		acc.MispickCostMean = mispickCostSum / float64(mispicks)
	}
	return acc, nil
}

// Robustness is the across-seed stability of a scenario's scheme means:
// the reproduction must not hinge on one lucky testbed draw.
type Robustness struct {
	// MeanOfMeans[scheme] averages the per-seed mean throughputs.
	MeanOfMeans map[string]float64
	// StdOfMeans[scheme] is their standard deviation across seeds.
	StdOfMeans map[string]float64
	Seeds      int
}

// RunSeedRobustness re-runs a scenario with `seeds` different master
// seeds and summarizes the spread of each scheme's mean throughput.
// Cancelling ctx aborts between seeds.
func RunSeedRobustness(ctx context.Context, sc channel.Scenario, base Config, seeds int) (Robustness, error) {
	perScheme := make(map[string][]float64)
	for s := 0; s < seeds; s++ {
		cfg := base
		// Statelessly derived per-replicate seeds: base.Seed + s*1000 would
		// let replicates of nearby base seeds share testbeds.
		cfg.Seed = rng.Derive(base.Seed, domainRobustness, uint64(s))
		res, err := RunScenario(ctx, sc, cfg)
		if err != nil {
			return Robustness{}, err
		}
		for scheme, vals := range res.PerTopology {
			perScheme[scheme] = append(perScheme[scheme], Mean(vals))
		}
	}
	rob := Robustness{
		MeanOfMeans: make(map[string]float64),
		StdOfMeans:  make(map[string]float64),
		Seeds:       seeds,
	}
	for scheme, means := range perScheme {
		rob.MeanOfMeans[scheme] = Mean(means)
		rob.StdOfMeans[scheme] = StdDev(means)
	}
	return rob, nil
}
