package testbed

import (
	"context"
	"errors"
	"testing"

	"copa/internal/channel"
)

func TestLossSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultLossSweepConfig(1)
	if _, err := RunLossSweep(ctx, channel.Scenario4x2, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLossSweepGracefulDegradation is the tentpole acceptance check: as
// control-frame loss rises the realized aggregate may fall toward, but
// must not crater below, the plain-CSMA floor — no cliff. At 100% loss
// the pipeline must realize exactly the CSMA baseline (every exchange
// falls back), and at 0% it must be retry-free.
func TestLossSweepGracefulDegradation(t *testing.T) {
	cfg := LossSweepConfig{
		Seed:        3,
		Topologies:  4,
		LossRates:   []float64{0, 0.10, 1.0},
		MeanBurst:   1,
		Rounds:      4,
		Impairments: channel.DefaultImpairments(),
	}
	sweep, err := RunLossSweep(context.Background(), channel.Scenario4x2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	clean, moderate, dead := sweep.Points[0], sweep.Points[1], sweep.Points[2]

	// Zero loss: no transport events at all.
	if clean.FallbackRate != 0 || clean.RetriesPerExchange != 0 {
		t.Errorf("lossless sweep had fallbacks=%.2f retries=%.2f", clean.FallbackRate, clean.RetriesPerExchange)
	}
	// Total loss: every exchange falls back, and the realized throughput
	// IS the CSMA baseline.
	if dead.FallbackRate != 1 {
		t.Errorf("fallback rate at 100%% loss = %.2f, want 1", dead.FallbackRate)
	}
	// (0.5% slack: the baseline is captured at the first round's CSI
	// estimate while the realized mean spans every round's estimation
	// noise.)
	for tp := range dead.PerTopologyBps {
		got, want := dead.PerTopologyBps[tp], sweep.CSMABps[tp]
		if rel := (got - want) / want; rel < -5e-3 || rel > 5e-3 {
			t.Errorf("topology %d at 100%% loss: %.3e, want CSMA %.3e", tp, got, want)
		}
	}

	// Moderate loss: graceful degradation per topology — never below
	// both the CSMA floor and the lossless ceiling (5% slack for the
	// occasional unlucky retry draw).
	for tp := range moderate.PerTopologyBps {
		floor := sweep.CSMABps[tp]
		if c := clean.PerTopologyBps[tp]; c < floor {
			floor = c
		}
		if moderate.PerTopologyBps[tp] < floor*0.95 {
			t.Errorf("topology %d cratered at 10%% loss: %.3e < floor %.3e",
				tp, moderate.PerTopologyBps[tp], floor)
		}
	}
	// And the mean stays at or above the CSMA baseline.
	if moderate.AggregateBps < sweep.MeanCSMABps() {
		t.Errorf("mean aggregate at 10%% loss %.3e < CSMA %.3e", moderate.AggregateBps, sweep.MeanCSMABps())
	}
	t.Logf("agg: clean %.1f Mb/s, 10%% loss %.1f, dead %.1f, CSMA %.1f; retries@10%%=%.2f",
		clean.AggregateBps/1e6, moderate.AggregateBps/1e6, dead.AggregateBps/1e6,
		sweep.MeanCSMABps()/1e6, moderate.RetriesPerExchange)
}

// TestLossSweepBurstyExport covers the Gilbert–Elliott configuration and
// the CSV export path.
func TestLossSweepBurstyExport(t *testing.T) {
	cfg := LossSweepConfig{
		Seed:        5,
		Topologies:  2,
		LossRates:   []float64{0.2},
		MeanBurst:   4,
		Rounds:      3,
		Impairments: channel.DefaultImpairments(),
	}
	sweep, err := RunLossSweep(context.Background(), channel.Scenario1x1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.ExportCSV(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
