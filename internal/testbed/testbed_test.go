package testbed

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"copa/internal/channel"
	"copa/internal/ofdm"
	"copa/internal/strategy"
)

func TestStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("mean %g", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("median %g", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Error("extreme percentiles")
	}
	if p := Percentile(xs, 50); math.Abs(p-2.5) > 1e-12 {
		t.Errorf("p50 = %g", p)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-input stats should be 0")
	}
	sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-2) > 1e-12 {
		t.Errorf("stddev %g, want 2", sd)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatal("CDF length")
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Error("CDF not sorted")
	}
	if math.Abs(pts[2].P-1) > 1e-12 || math.Abs(pts[0].P-1.0/3) > 1e-12 {
		t.Errorf("CDF probabilities: %v", pts)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 20)
		x := float64(seed%97) + 1
		for i := range xs {
			x = math.Mod(x*1.7+3, 100)
			xs[i] = x
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFractionWhere(t *testing.T) {
	if FractionWhere(4, func(i int) bool { return i%2 == 0 }) != 0.5 {
		t.Error("fraction")
	}
	if FractionWhere(0, func(int) bool { return true }) != 0 {
		t.Error("empty fraction")
	}
}

func TestRunScenarioSmoke4x2(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Topologies = 6
	cfg.SkipCOPAPlus = true
	res, err := RunScenario(context.Background(), channel.Scenario4x2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{SchemeCSMA, SchemeCOPASeq, SchemeNull, SchemeCOPA, SchemeCOPAFair} {
		vals := res.PerTopology[scheme]
		if len(vals) != 6 {
			t.Fatalf("%s has %d values", scheme, len(vals))
		}
		for _, v := range vals {
			if v < 0 || v > 600e6 {
				t.Fatalf("%s throughput %g implausible", scheme, v)
			}
		}
	}
	// COPA (max mode) must never fall below COPA-SEQ on predictions, so
	// on aggregate means it should at least match the baseline closely.
	if res.MeanMbps(SchemeCOPA) < res.MeanMbps(SchemeCOPASeq)*0.95 {
		t.Errorf("COPA %.1f << COPA-SEQ %.1f", res.MeanMbps(SchemeCOPA), res.MeanMbps(SchemeCOPASeq))
	}
}

func TestRunScenarioCancelled(t *testing.T) {
	// Already-cancelled context: the run must abort with ctx.Err()
	// without evaluating the population.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(3)
	cfg.Topologies = 64
	cfg.SkipCOPAPlus = true
	start := time.Now()
	if _, err := RunScenario(ctx, channel.Scenario4x2, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 64 4x2 topologies take tens of seconds; an aborted run must not.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}

	// Deadline mid-run: same contract via the other cancellation path.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer dcancel()
	<-dctx.Done()
	if _, err := RunScenario(dctx, channel.Scenario4x2, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Topologies = 3
	cfg.SkipCOPAPlus = true
	a, err := RunScenario(context.Background(), channel.Scenario1x1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(context.Background(), channel.Scenario1x1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for scheme, vals := range a.PerTopology {
		for i, v := range vals {
			if b.PerTopology[scheme][i] != v {
				t.Fatalf("%s[%d] differs between identical runs", scheme, i)
			}
		}
	}
}

func TestRunScenario1x1HasNoNulling(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Topologies = 3
	cfg.SkipCOPAPlus = true
	res, err := RunScenario(context.Background(), channel.Scenario1x1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.PerTopology[SchemeNull]; ok {
		t.Error("1x1 must not produce a Null column")
	}
}

func TestHeadlinesMath(t *testing.T) {
	r := &ScenarioResult{PerTopology: map[string][]float64{
		SchemeCSMA:     {100, 100, 100, 100},
		SchemeNull:     {50, 80, 120, 150},  // loses on 2, wins on 2
		SchemeCOPA:     {110, 90, 130, 160}, // beats CSMA on 1 of the 2 losers
		SchemeCOPAFair: {100, 90, 120, 150},
	}}
	hs := Headlines(r)
	if hs.NullLosesToCSMA != 0.5 {
		t.Errorf("lose fraction %g", hs.NullLosesToCSMA)
	}
	if hs.COPABeatsCSMAWhereNullLoses != 0.5 {
		t.Errorf("beat fraction %g", hs.COPABeatsCSMAWhereNullLoses)
	}
	// COPA over Null where null loses: mean(110/50−1, 90/80−1) = mean(1.2, .125)
	want := (1.2 + 0.125) / 2
	if math.Abs(hs.COPAOverNullWhereNullLoses-want) > 1e-12 {
		t.Errorf("gain %g want %g", hs.COPAOverNullWhereNullLoses, want)
	}
	// Null win median where it wins: median(0.2, 0.5) = 0.35.
	if math.Abs(hs.NullWinMedian-0.35) > 1e-12 {
		t.Errorf("null win median %g", hs.NullWinMedian)
	}
	if hs.PriceOfFairness <= 0 {
		t.Errorf("price of fairness %g, want positive here", hs.PriceOfFairness)
	}
	// Without a Null column the stats are zero-valued, not a panic.
	empty := Headlines(&ScenarioResult{PerTopology: map[string][]float64{}})
	if empty.NullLosesToCSMA != 0 {
		t.Error("empty headlines should be zero")
	}
}

func TestFigure2Shape(t *testing.T) {
	f := RunFigure2(1)
	for a := 0; a < 2; a++ {
		if len(f.PowerDBm[a]) != ofdm.NumSubcarriers {
			t.Fatalf("antenna %d has %d subcarriers", a, len(f.PowerDBm[a]))
		}
	}
	// Narrow-band fading must be visible (Fig. 2 shows ≳15 dB swings).
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range f.PowerDBm[0] {
		min, max = math.Min(min, v), math.Max(max, v)
	}
	if max-min < 6 {
		t.Errorf("fading spread %.1f dB too flat", max-min)
	}
	// Powers are in a plausible indoor receive range.
	if max > -20 || min < -120 {
		t.Errorf("power range [%.1f, %.1f] dBm implausible", min, max)
	}
}

func TestFigure3Calibration(t *testing.T) {
	f := RunFigure3(1, 12)
	// The paper's Fig. 3: INR reduction ≈ −27 dB, SNR reduction negative
	// but smaller, SINR increase positive.
	if f.INRReductionMeanDB > -20 || f.INRReductionMeanDB < -35 {
		t.Errorf("INR reduction %.1f dB, want ≈ −27", f.INRReductionMeanDB)
	}
	if f.SNRReductionMeanDB >= 0 || f.SNRReductionMeanDB < -15 {
		t.Errorf("SNR reduction %.1f dB, want moderately negative", f.SNRReductionMeanDB)
	}
	if f.SINRIncreaseMeanDB <= 0 {
		t.Errorf("SINR increase %.1f dB, want positive", f.SINRIncreaseMeanDB)
	}
	// Ordering: the SINR gain is smaller than the INR reduction because
	// of collateral damage.
	if -f.INRReductionMeanDB < f.SINRIncreaseMeanDB {
		t.Error("SINR increase cannot exceed INR reduction")
	}
}

func TestFigure4Shape(t *testing.T) {
	f := RunFigure4(1)
	if len(f.SNRBFDB) != ofdm.NumSubcarriers {
		t.Fatal("wrong subcarrier count")
	}
	// Nulling costs SNR on average and concurrent SINR is below solo SNR.
	if Mean(f.SNRNullDB) >= Mean(f.SNRBFDB) {
		t.Error("nulling should reduce own-signal SNR")
	}
	if Mean(f.SINRNullDB) > Mean(f.SNRNullDB)+1e-9 {
		t.Error("interference cannot raise SINR above SNR")
	}
	// Nulling increases variability across subcarriers (the paper's core
	// observation).
	if StdDev(f.SINRNullDB) < StdDev(f.SNRBFDB) {
		t.Errorf("nulling should increase SINR variance: BF σ=%.1f, null σ=%.1f",
			StdDev(f.SNRBFDB), StdDev(f.SINRNullDB))
	}
}

func TestFigure7COPAWins(t *testing.T) {
	f := RunFigure7(1)
	if len(f.BERCOPA) == 0 {
		t.Skip("nulling infeasible on this seed")
	}
	if f.COPAMbps <= f.NoPAMbps {
		t.Errorf("COPA %.1f ≤ NoPA %.1f Mb/s; power allocation should win", f.COPAMbps, f.NoPAMbps)
	}
	drops := 0
	for _, d := range f.Dropped {
		if d {
			drops++
		}
	}
	if drops == 0 {
		t.Error("expected COPA to drop at least one subcarrier on a nulled concurrent link")
	}
	if f.COPAMCS.Index <= f.NoPAMCS.Index {
		t.Errorf("COPA should reach a higher bitrate: %v vs %v", f.COPAMCS, f.NoPAMCS)
	}
}

func TestFigure9Envelope(t *testing.T) {
	f := RunFigure9(1, 30)
	if len(f.SignalDBm) != 60 {
		t.Fatalf("%d points, want 60", len(f.SignalDBm))
	}
	below := 0
	for i := range f.SignalDBm {
		if f.SignalDBm[i] < -70 || f.SignalDBm[i] > -30 {
			t.Errorf("signal %.1f dBm out of Fig. 9's range", f.SignalDBm[i])
		}
		if f.InterferenceDBm[i] < f.SignalDBm[i] {
			below++
		}
	}
	frac := float64(below) / float64(len(f.SignalDBm))
	if frac < 0.6 || frac > 0.99 {
		t.Errorf("interference below signal at %.0f%%; want usually but not always", frac*100)
	}
}

func TestTable1RowCount(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper's qualitative content: COPA costs more than CSMA, overheads
	// shrink with coherence time.
	for _, r := range rows {
		if r.COPAConc <= r.CSMACTS || r.COPASeq <= r.CSMACTS {
			t.Error("COPA overhead should exceed CSMA's")
		}
	}
	if rows[0].COPAConc <= rows[2].COPAConc {
		t.Error("overhead should fall with longer coherence")
	}
}

func TestFigure14MultiDecoderHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	f, err := RunFigure14(context.Background(), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{"1x1", "4x2", "3x2"} {
		m := f.Improvement[sc]
		if len(m) != len(Figure14Schemes) {
			t.Fatalf("%s has %d schemes", sc, len(m))
		}
		// N decoders can only help a scheme relative to its 1-decoder
		// self (allow small sampling noise).
		if m["COPA N decoders"] < m["COPA 1 decoder"]-3 {
			t.Errorf("%s: N-decoder COPA %+.1f%% below 1-decoder %+.1f%%",
				sc, m["COPA N decoders"], m["COPA 1 decoder"])
		}
		if m["CSMA N decoders"] < -3 {
			t.Errorf("%s: multi-decoder CSMA fell below CSMA: %+.1f%%", sc, m["CSMA N decoders"])
		}
	}
}

func BenchmarkTopologyPipeline4x2(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Topologies = 1
	cfg.SkipCOPAPlus = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := RunScenario(context.Background(), channel.Scenario4x2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPredictionAccuracy(t *testing.T) {
	acc, err := RunPredictionAccuracy(context.Background(), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential strategies predict well (no concurrent interference to
	// misjudge); concurrent nulling is the hard one (§3.3).
	seqMAE := acc.MAEByKind[strategy.KindCOPASeq]
	nullMAE := acc.MAEByKind[strategy.KindConcNull]
	if seqMAE > 0.25 {
		t.Errorf("COPA-SEQ prediction MAE %.2f too large", seqMAE)
	}
	if nullMAE < seqMAE {
		t.Errorf("concurrent nulling (%.2f) should be harder to predict than sequential (%.2f)",
			nullMAE, seqMAE)
	}
	if acc.MispickRate < 0 || acc.MispickRate > 1 {
		t.Errorf("mispick rate %g", acc.MispickRate)
	}
	t.Logf("MAE seq=%.2f null=%.2f, mispicks %.0f%% costing %.0f%%",
		seqMAE, nullMAE, acc.MispickRate*100, acc.MispickCostMean*100)
}

func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := DefaultConfig(1)
	cfg.Topologies = 8
	cfg.SkipCOPAPlus = true
	rob, err := RunSeedRobustness(context.Background(), channel.Scenario4x2, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The central ordering must hold for every seed batch on average,
	// and the spread must be small relative to the effect size.
	copa := rob.MeanOfMeans[SchemeCOPA]
	csma := rob.MeanOfMeans[SchemeCSMA]
	null := rob.MeanOfMeans[SchemeNull]
	if !(copa > csma && csma > null) {
		t.Errorf("ordering unstable across seeds: COPA %.1f, CSMA %.1f, Null %.1f Mb/s",
			copa/1e6, csma/1e6, null/1e6)
	}
	if rob.StdOfMeans[SchemeCOPA] > 0.25*copa {
		t.Errorf("COPA mean varies %.1f%% across seeds", rob.StdOfMeans[SchemeCOPA]/copa*100)
	}
}

func TestWeakInterferenceShrinksFairnessGap(t *testing.T) {
	// §4.4: "There is little difference between COPA and COPA Fair
	// because both clients normally win from running COPA" once
	// interference is 10 dB weaker. Verify the fair/max gap shrinks (or
	// stays negligible) relative to the strong-interference case.
	cfg := DefaultConfig(11)
	cfg.Topologies = 10
	cfg.SkipCOPAPlus = true
	strong, err := RunScenario(context.Background(), channel.Scenario4x2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InterferenceDeltaDB = -10
	weak, err := RunScenario(context.Background(), channel.Scenario4x2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gap := func(r *ScenarioResult) float64 {
		return Mean(r.PerTopology[SchemeCOPA]) - Mean(r.PerTopology[SchemeCOPAFair])
	}
	gs, gw := gap(strong), gap(weak)
	t.Logf("fair/max gap: strong %.1f Mb/s, weak %.1f Mb/s", gs/1e6, gw/1e6)
	if gw > gs+2e6 {
		t.Errorf("weak interference should not widen the fairness gap: %.1f vs %.1f Mb/s",
			gw/1e6, gs/1e6)
	}
	// And COPA's gains grow with weaker interference (Fig. 12 vs 11).
	if Mean(weak.PerTopology[SchemeCOPA]) <= Mean(strong.PerTopology[SchemeCOPA]) {
		t.Error("COPA should gain from weaker interference")
	}
	if Mean(weak.PerTopology[SchemeNull]) <= Mean(strong.PerTopology[SchemeNull]) {
		t.Error("vanilla nulling should gain from weaker interference")
	}
}

func TestPerfectHardwareMakesNullingDominant(t *testing.T) {
	// With ideal radios (no CSI error, no staleness, no EVM), nulling is
	// exact and concurrent transmission should essentially always win —
	// the regime prior work assumed and §2.2 argues does not exist in
	// practice.
	cfg := DefaultConfig(13)
	cfg.Topologies = 8
	cfg.SkipCOPAPlus = true
	cfg.Impairments = channel.PerfectHardware()
	res, err := RunScenario(context.Background(), channel.Scenario4x2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nullWins := 0
	for i := range res.PerTopology[SchemeNull] {
		if res.PerTopology[SchemeNull][i] > res.PerTopology[SchemeCSMA][i] {
			nullWins++
		}
	}
	if frac := float64(nullWins) / float64(cfg.Topologies); frac < 0.7 {
		t.Errorf("with perfect hardware vanilla nulling won only %.0f%% of topologies", frac*100)
	}
	if Mean(res.PerTopology[SchemeCOPA]) < Mean(res.PerTopology[SchemeCSMA])*1.3 {
		t.Errorf("perfect-hardware COPA should crush CSMA: %.1f vs %.1f Mb/s",
			res.MeanMbps(SchemeCOPA), res.MeanMbps(SchemeCSMA))
	}
}
