package testbed

import (
	"math"
	"testing"

	"copa/internal/rng"
	"copa/internal/strategy"
)

func TestBacklogStableUnderLightLoad(t *testing.T) {
	o := strategy.Outcome{Concurrent: true, PerClient: [2]float64{50e6, 50e6}}
	res := RunBacklog(rng.New(1), o, BacklogConfig{ArrivalBitsPerSec: 10e6, TXOPs: 2000})
	for j := 0; j < 2; j++ {
		if math.IsInf(res.MeanDelaySec[j], 1) {
			t.Fatalf("client %d unstable at 20%% load", j)
		}
		// Light load: delay well under one TXOP-pair worth of queueing.
		if res.MeanDelaySec[j] > 0.05 {
			t.Errorf("client %d delay %.3fs too high at light load", j, res.MeanDelaySec[j])
		}
		if res.Served[j] == 0 {
			t.Error("no frames served")
		}
	}
}

func TestBacklogUnstableWhenOverloaded(t *testing.T) {
	o := strategy.Outcome{Concurrent: true, PerClient: [2]float64{20e6, 20e6}}
	res := RunBacklog(rng.New(2), o, BacklogConfig{ArrivalBitsPerSec: 40e6, TXOPs: 2000})
	for j := 0; j < 2; j++ {
		if !math.IsInf(res.MeanDelaySec[j], 1) && res.FinalBacklogBits[j] < 1e6 {
			t.Errorf("client %d should be drowning at 2x load", j)
		}
	}
}

func TestBacklogSequentialAlternation(t *testing.T) {
	// Sequential service with the same per-client effective rate should
	// still be stable below capacity, with higher delay than concurrent.
	conc := strategy.Outcome{Concurrent: true, PerClient: [2]float64{40e6, 40e6}}
	seq := strategy.Outcome{Concurrent: false, PerClient: [2]float64{40e6, 40e6}}
	load := BacklogConfig{ArrivalBitsPerSec: 25e6, TXOPs: 4000}
	rc := RunBacklog(rng.New(3), conc, load)
	rs := RunBacklog(rng.New(3), seq, load)
	for j := 0; j < 2; j++ {
		if math.IsInf(rs.MeanDelaySec[j], 1) {
			t.Fatalf("sequential unstable below capacity (client %d)", j)
		}
		if rs.MeanDelaySec[j] < rc.MeanDelaySec[j] {
			t.Errorf("client %d: alternation should add delay (seq %.4fs < conc %.4fs)",
				j, rs.MeanDelaySec[j], rc.MeanDelaySec[j])
		}
	}
}

func TestBacklogComparisonEndToEnd(t *testing.T) {
	cmp, err := RunBacklogComparison(4, 30e6, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		// At a load CSMA can barely or not carry (30 Mb/s per client =
		// 60 Mb/s aggregate offered vs ~114 shared), COPA must not be
		// *worse*.
		if cmp.COPADelaySec[j] > cmp.CSMADelaySec[j]*1.5+0.01 {
			t.Errorf("client %d: COPA delay %.3fs vs CSMA %.3fs", j,
				cmp.COPADelaySec[j], cmp.CSMADelaySec[j])
		}
	}
}
