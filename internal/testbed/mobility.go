package testbed

import (
	"context"
	"fmt"
	"time"

	"copa/internal/campaign"
	"copa/internal/channel"
	"copa/internal/drift"
	"copa/internal/obs"
	"copa/internal/rng"
)

// MobilityConfig parameterizes the speed × re-negotiation-rate sweep:
// how fast does COPA's realized aggregate decay as clients move, and
// how much of it does the online re-allocation controller claw back at
// each detector aggressiveness?
type MobilityConfig struct {
	Seed       int64
	Topologies int
	// SpeedsMps are the client speeds to sweep.
	SpeedsMps []float64
	// ThresholdsDB are the drift-detector excursion thresholds to sweep
	// (smaller = more aggressive re-negotiation).
	ThresholdsDB []float64
	// Duration is the simulated time per (topology, speed, threshold)
	// cell; Step the controller tick.
	Duration time.Duration
	Step     time.Duration
	// ReassocPerSec / ChurnPerSec feed the controller's event timeline.
	ReassocPerSec float64
	ChurnPerSec   float64
	Impairments   channel.Impairments
}

// DefaultSpeeds spans static through vehicular.
func DefaultSpeeds() []float64 {
	return []float64{0, 0.5, drift.Pedestrian.SpeedMps, 3.0, drift.Vehicular.SpeedMps}
}

// DefaultMobilityConfig mirrors the mobility figure's defaults at a size
// that runs in seconds.
func DefaultMobilityConfig(seed int64) MobilityConfig {
	return MobilityConfig{
		Seed:         seed,
		Topologies:   6,
		SpeedsMps:    DefaultSpeeds(),
		ThresholdsDB: []float64{1.0},
		Duration:     300 * time.Millisecond,
		Step:         5 * time.Millisecond,
		Impairments:  channel.DefaultImpairments(),
	}
}

// MobilityPoint is one (speed, threshold) cell of the sweep.
type MobilityPoint struct {
	SpeedMps    float64
	ThresholdDB float64
	// AggregateBps is the mean realized aggregate throughput across
	// topologies; Agg the streamed per-topology column.
	AggregateBps float64
	Agg          *campaign.Column
	// RenegsPerSec / IncrementalPerSec are the full-exchange and
	// incremental re-allocation rates the controller sustained.
	RenegsPerSec      float64
	IncrementalPerSec float64
	// CertRevocationsPerSec is how often cached nulling plans failed
	// their nullspace certificate on fresh CSI.
	CertRevocationsPerSec float64
	// DeltaByteShare is delta-CSI bytes / (delta + full CSI bytes): the
	// fraction of CSI traffic the incremental path compressed away from
	// full frames.
	DeltaByteShare float64
}

// MobilitySweep is the realized-aggregate-vs-speed surface for one
// scenario.
type MobilitySweep struct {
	Scenario channel.Scenario
	Points   []MobilityPoint
}

// cloneDeployment deep-copies a deployment so each sweep cell evolves
// its own channels from the identical starting state.
func cloneDeployment(d *channel.Deployment) *channel.Deployment {
	out := *d
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out.H[i][j] = d.H[i][j].Clone()
		}
	}
	out.APLink = d.APLink.Clone()
	return &out
}

// RunMobilitySweep runs the drift controller over every (topology,
// speed, threshold) cell and aggregates realized throughput and
// re-negotiation economics. Every cell starts from the identical
// deployment and controller seed, so cells differ only in the swept
// parameters. Cancelling ctx aborts between cells.
func RunMobilitySweep(ctx context.Context, sc channel.Scenario, cfg MobilityConfig) (*MobilitySweep, error) {
	span := obs.Trace("testbed.mobilitysweep")
	defer span.End()
	if cfg.Topologies < 1 {
		return nil, fmt.Errorf("testbed: mobility sweep needs ≥1 topology")
	}
	if len(cfg.SpeedsMps) == 0 {
		cfg.SpeedsMps = DefaultSpeeds()
	}
	if len(cfg.ThresholdsDB) == 0 {
		cfg.ThresholdsDB = []float64{1.0}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	deps := channel.GenerateTestbed(cfg.Seed, sc, cfg.Topologies)
	sweep := &MobilitySweep{Scenario: sc}

	for _, thr := range cfg.ThresholdsDB {
		for _, speed := range cfg.SpeedsMps {
			pt := MobilityPoint{SpeedMps: speed, ThresholdDB: thr, Agg: campaign.NewColumn()}
			var renegs, incr, revocs, deltaB, fullB float64
			for t, dep := range deps {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				ccfg := drift.DefaultConfig()
				ccfg.Impairments = cfg.Impairments
				ccfg.SpeedMps = speed
				ccfg.ThresholdDB = thr
				ccfg.Step = cfg.Step
				ccfg.ReassocPerSec = cfg.ReassocPerSec
				ccfg.ChurnPerSec = cfg.ChurnPerSec
				// Same controller seed per topology across all cells:
				// cells differ only in speed/threshold.
				ccfg.Seed = rng.Derive(cfg.Seed, domainMobility, uint64(t))
				ctl := drift.NewController(cloneDeployment(dep), cfg.Duration, ccfg)
				stats, err := ctl.Run(cfg.Duration)
				if err != nil {
					return nil, fmt.Errorf("mobility speed=%.1f thr=%.1f topology %d: %w", speed, thr, t, err)
				}
				secs := stats.Elapsed.Seconds()
				pt.Agg.Add(stats.MeanAggregate())
				renegs += float64(stats.Renegotiations) / secs
				incr += float64(stats.Incremental) / secs
				revocs += float64(stats.CertRevocations) / secs
				deltaB += float64(stats.DeltaCSIBytes)
				fullB += float64(stats.FullCSIBytes)
			}
			n := float64(cfg.Topologies)
			pt.AggregateBps = pt.Agg.Moments.Mean
			pt.RenegsPerSec = renegs / n
			pt.IncrementalPerSec = incr / n
			pt.CertRevocationsPerSec = revocs / n
			if deltaB+fullB > 0 {
				pt.DeltaByteShare = deltaB / (deltaB + fullB)
			}
			sweep.Points = append(sweep.Points, pt)
		}
	}
	return sweep, nil
}

// ExportCSV writes mobility_<scenario>.csv: the realized aggregate
// throughput vs client speed figure, one row per (threshold, speed).
func (s *MobilitySweep) ExportCSV(dir string) error {
	rows := [][]string{{
		"threshold_db", "speed_mps", "aggregate_bps",
		"renegs_per_sec", "incremental_per_sec", "cert_revocations_per_sec", "delta_byte_share",
	}}
	for _, p := range s.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.ThresholdDB),
			fmt.Sprintf("%.2f", p.SpeedMps),
			fmt.Sprintf("%.0f", p.AggregateBps),
			fmt.Sprintf("%.2f", p.RenegsPerSec),
			fmt.Sprintf("%.2f", p.IncrementalPerSec),
			fmt.Sprintf("%.2f", p.CertRevocationsPerSec),
			fmt.Sprintf("%.4f", p.DeltaByteShare),
		})
	}
	return writeCSV(dir, fmt.Sprintf("mobility_%s.csv", s.Scenario.Name), rows)
}
