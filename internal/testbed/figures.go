package testbed

import (
	"context"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/obs"
	"copa/internal/ofdm"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Figure2 reproduces the narrow-band fading measurement: one send
// antenna, two receive antennas, equal per-subcarrier power, received
// power per subcarrier per antenna in dBm.
type Figure2 struct {
	// PowerDBm[a][k] is antenna a's received power on subcarrier k.
	PowerDBm [2][]float64
}

// RunFigure2 draws one indoor link at about −60 dBm and measures it.
func RunFigure2(seed int64) Figure2 {
	defer obs.Trace("testbed.figure2").End()
	defer mFigureSeconds.Begin().End()
	src := rng.New(seed)
	link := channel.NewLink(src, 2, 1, channel.DBToLinear(-60-channel.MaxTxPowerDBm))
	perSC := channel.TxBudgetPerSubcarrierMW()
	var fig Figure2
	for a := 0; a < 2; a++ {
		fig.PowerDBm[a] = make([]float64, ofdm.NumSubcarriers)
		for k := 0; k < ofdm.NumSubcarriers; k++ {
			h := link.Subcarriers[k].At(a, 0)
			p := (real(h)*real(h) + imag(h)*imag(h)) * perSC
			fig.PowerDBm[a][k] = channel.MilliwattsToDBm(p)
		}
	}
	return fig
}

// Figure3 is the end-to-end effect of nulling over a topology population:
// mean and standard deviation of INR reduction, SNR reduction (collateral
// damage), and net SINR increase, all in dB (§2.2).
type Figure3 struct {
	INRReductionMeanDB, INRReductionStdDB float64
	SNRReductionMeanDB, SNRReductionStdDB float64
	SINRIncreaseMeanDB, SINRIncreaseStdDB float64
	PerTopologyINRReductionDB             []float64
	PerTopologySNRReductionDB             []float64
	PerTopologySINRIncreaseDB             []float64
}

// RunFigure3 measures nulling efficacy at client 1 across topologies: AP2
// switches from beamforming (toward its own client) to nulling toward C1,
// with realistic CSI/TX impairments, and we record what changes at C1.
func RunFigure3(seed int64, topologies int) Figure3 {
	defer obs.Trace("testbed.figure3").End()
	defer mFigureSeconds.Begin().End()
	master := rng.New(seed)
	imp := channel.DefaultImpairments()
	var fig Figure3
	for t := 0; t < topologies; t++ {
		src := master.Split(uint64(t))
		dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
		noise := channel.NoisePerSubcarrierMW()

		est21 := imp.EstimateCSI(src.Split(2), dep.H[1][0]) // AP2→C1 estimate
		est22 := imp.EstimateCSI(src.Split(3), dep.H[1][1])
		est11 := imp.EstimateCSI(src.Split(4), dep.H[0][0])

		bf2, err := precoding.Beamforming(est22, 2)
		if err != nil {
			continue
		}
		null2, err := precoding.Nulling(est22, est21, 2)
		if err != nil {
			continue
		}
		bf1, err := precoding.Beamforming(est11, 2)
		if err != nil {
			continue
		}
		powers := precoding.EqualSplit(ofdm.NumSubcarriers, 2, channel.BudgetForAntennasMW(4))
		txBF2 := precoding.NewTransmission(bf2, powers, imp)
		txNull2 := precoding.NewTransmission(null2, powers, imp)
		tx1 := precoding.NewTransmission(bf1, powers, imp)

		// INR at C1: interference power from AP2, before vs after
		// nulling, compared per subcarrier and averaged in dB (the
		// typical-subcarrier view the paper reports; the linear mean is
		// dominated by the shallow-null tail that Fig. 4 shows).
		before := residualPlusTxNoise(dep.H[1][0], txBF2)
		after := residualPlusTxNoise(dep.H[1][0], txNull2)
		var dbSum float64
		for k := range before {
			dbSum += channel.LinearToDB(after[k] / before[k])
		}
		fig.PerTopologyINRReductionDB = append(fig.PerTopologyINRReductionDB,
			dbSum/float64(len(before)))

		// SNR at C2 (collateral damage): AP2's own client, BF vs nulling.
		snrBefore := precoding.MeanSINRDB(precoding.StreamSINRs(dep.H[1][1], txBF2, nil, nil, noise))
		snrAfter := precoding.MeanSINRDB(precoding.StreamSINRs(dep.H[1][1], txNull2, nil, nil, noise))
		fig.PerTopologySNRReductionDB = append(fig.PerTopologySNRReductionDB, snrAfter-snrBefore)

		// SINR at C1 under concurrent transmission: AP2 BF vs AP2 nulling.
		sinrBefore := precoding.MeanSINRDB(precoding.StreamSINRs(dep.H[0][0], tx1, dep.H[1][0], txBF2, noise))
		sinrAfter := precoding.MeanSINRDB(precoding.StreamSINRs(dep.H[0][0], tx1, dep.H[1][0], txNull2, noise))
		fig.PerTopologySINRIncreaseDB = append(fig.PerTopologySINRIncreaseDB, sinrAfter-sinrBefore)
	}
	fig.INRReductionMeanDB = Mean(fig.PerTopologyINRReductionDB)
	fig.INRReductionStdDB = StdDev(fig.PerTopologyINRReductionDB)
	fig.SNRReductionMeanDB = Mean(fig.PerTopologySNRReductionDB)
	fig.SNRReductionStdDB = StdDev(fig.PerTopologySNRReductionDB)
	fig.SINRIncreaseMeanDB = Mean(fig.PerTopologySINRIncreaseDB)
	fig.SINRIncreaseStdDB = StdDev(fig.PerTopologySINRIncreaseDB)
	return fig
}

// residualPlusTxNoise is the interference power (mW per subcarrier,
// summed over victim antennas) a transmission deposits at a victim,
// including its TX noise, which propagates regardless of nulling.
func residualPlusTxNoise(trueCross *channel.Link, tx *precoding.Transmission) []float64 {
	res := make([]float64, len(trueCross.Subcarriers))
	for k, h := range trueCross.Subcarriers {
		g := h.Mul(tx.Precoder.Scaled(k, tx.PowerMW[k]))
		var pow float64
		for _, v := range g.Data {
			pow += real(v)*real(v) + imag(v)*imag(v)
		}
		if tv := tx.TxNoiseVarMW[k]; tv > 0 {
			hh := h.Mul(h.H())
			var tr float64
			for i := 0; i < hh.Rows; i++ {
				tr += real(hh.At(i, i))
			}
			pow += tv * tr
		}
		res[k] = pow
	}
	return res
}

// Figure4 is the per-subcarrier story on one topology: SNR with pure
// beamforming, SNR after AP1 also nulls toward C2, and SINR when both
// APs send concurrently with nulling. Values in dB, stream-0 at client 1.
type Figure4 struct {
	SNRBFDB, SNRNullDB, SINRNullDB []float64
}

// RunFigure4 measures one 4×2 topology.
func RunFigure4(seed int64) Figure4 {
	defer obs.Trace("testbed.figure4").End()
	defer mFigureSeconds.Begin().End()
	src := rng.New(seed)
	imp := channel.DefaultImpairments()
	dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
	noise := channel.NoisePerSubcarrierMW()

	est11 := imp.EstimateCSI(src.Split(2), dep.H[0][0])
	est12 := imp.EstimateCSI(src.Split(3), dep.H[0][1])
	est22 := imp.EstimateCSI(src.Split(4), dep.H[1][1])
	est21 := imp.EstimateCSI(src.Split(5), dep.H[1][0])

	powers := precoding.EqualSplit(ofdm.NumSubcarriers, 2, channel.BudgetForAntennasMW(4))
	bf1, _ := precoding.Beamforming(est11, 2)
	null1, _ := precoding.Nulling(est11, est12, 2)
	null2, _ := precoding.Nulling(est22, est21, 2)

	txBF1 := precoding.NewTransmission(bf1, powers, imp)
	txNull1 := precoding.NewTransmission(null1, powers, imp)
	txNull2 := precoding.NewTransmission(null2, powers, imp)

	col := func(s [][]float64) []float64 {
		out := make([]float64, len(s))
		for k := range s {
			out[k] = channel.LinearToDB(s[k][0])
		}
		return out
	}
	var fig Figure4
	fig.SNRBFDB = col(precoding.StreamSINRs(dep.H[0][0], txBF1, nil, nil, noise))
	fig.SNRNullDB = col(precoding.StreamSINRs(dep.H[0][0], txNull1, nil, nil, noise))
	fig.SINRNullDB = col(precoding.StreamSINRs(dep.H[0][0], txNull1, dep.H[1][0], txNull2, noise))
	return fig
}

// Figure7 compares per-subcarrier uncoded BER with and without COPA's
// power allocation under the same nulling precoder, plus the throughputs
// each achieves at its own best rate.
type Figure7 struct {
	BERCOPA, BERNoPA []float64
	Dropped          []bool
	COPAMbps         float64
	NoPAMbps         float64
	COPAMCS, NoPAMCS ofdm.MCS
}

// RunFigure7 measures one 4×2 topology, stream 0 of AP1, under concurrent
// nulled transmission. Like the paper's Fig. 7 it shows an illustrative
// topology: seeds from `seed` upward are scanned until one exhibits the
// phenomenon (COPA drops several subcarriers and reaches a higher
// bitrate); the first candidate is returned if none does.
func RunFigure7(seed int64) Figure7 {
	defer obs.Trace("testbed.figure7").End()
	defer mFigureSeconds.Begin().End()
	var first Figure7
	for s := seed; s < seed+24; s++ {
		f := runFigure7One(s)
		if len(f.BERCOPA) == 0 {
			continue
		}
		if first.BERCOPA == nil {
			first = f
		}
		drops := 0
		for _, d := range f.Dropped {
			if d {
				drops++
			}
		}
		if drops >= 4 && f.COPAMCS.Index > f.NoPAMCS.Index && f.COPAMbps > f.NoPAMbps {
			return f
		}
	}
	return first
}

func runFigure7One(seed int64) Figure7 {
	src := rng.New(seed)
	imp := channel.DefaultImpairments()
	dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
	noise := channel.NoisePerSubcarrierMW()
	ev := strategy.NewEvaluator(dep, imp, src.Split(2))

	// Evaluate vanilla nulling (NoPA) and COPA's concurrent nulling so
	// the evaluator caches both transmissions, then retrieve them.
	if _, err := ev.EvaluateNulling(strategy.KindNull); err != nil {
		return Figure7{}
	}
	if _, err := ev.EvaluateNulling(strategy.KindConcNull); err != nil {
		return Figure7{}
	}
	txNull, txNull2, _ := ev.TransmissionsFor(strategy.Outcome{Kind: strategy.KindNull})
	txCOPA, txCOPA2, _ := ev.TransmissionsFor(strategy.Outcome{Kind: strategy.KindConcNull})

	sinrNoPA := precoding.StreamSINRs(dep.H[0][0], txNull, dep.H[1][0], txNull2, noise)
	sinrCOPA := precoding.StreamSINRs(dep.H[0][0], txCOPA, dep.H[1][0], txCOPA2, noise)

	// Show the stream where subcarrier selection bites: COPA drops cells
	// on the weaker spatial stream, so pick the stream with the most
	// dropped subcarriers in COPA's allocation.
	stream := 0
	bestDrops := -1
	for s := 0; s < txCOPA.Precoder.Streams; s++ {
		d := 0
		for k := range txCOPA.PowerMW {
			if txCOPA.PowerMW[k][s] == 0 {
				d++
			}
		}
		if d > bestDrops {
			bestDrops, stream = d, s
		}
	}
	colFor := func(s [][]float64) []float64 {
		out := make([]float64, len(s))
		for k := range s {
			out[k] = s[k][stream]
		}
		return out
	}
	noPACol, copaCol := colFor(sinrNoPA), colFor(sinrCOPA)
	noPARate := ofdm.BestRate(noPACol)
	copaRate := ofdm.BestRate(copaCol)

	fig := Figure7{
		NoPAMCS:  noPARate.MCS,
		COPAMCS:  copaRate.MCS,
		NoPAMbps: noPARate.GoodputBps / 1e6,
		COPAMbps: copaRate.GoodputBps / 1e6,
	}
	// Per-subcarrier uncoded BER at each scheme's chosen constellation.
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		fig.BERNoPA = append(fig.BERNoPA, ofdm.UncodedBER(noPARate.MCS.Modulation, noPACol[k]))
		if copaCol[k] < 0 {
			fig.Dropped = append(fig.Dropped, true)
			fig.BERCOPA = append(fig.BERCOPA, 0)
		} else {
			fig.Dropped = append(fig.Dropped, false)
			fig.BERCOPA = append(fig.BERCOPA, ofdm.UncodedBER(copaRate.MCS.Modulation, copaCol[k]))
		}
	}
	return fig
}

// Figure9 is the topology scatter: per client, mean signal power vs mean
// interfering power (dBm).
type Figure9 struct {
	SignalDBm, InterferenceDBm []float64
}

// RunFigure9 samples the testbed population, streaming one topology at
// a time (DeploymentAt) so the population never needs materializing.
func RunFigure9(seed int64, topologies int) Figure9 {
	defer obs.Trace("testbed.figure9").End()
	defer mFigureSeconds.Begin().End()
	var fig Figure9
	for t := 0; t < topologies; t++ {
		d := channel.DeploymentAt(seed, channel.Scenario4x2, t)
		for j := 0; j < 2; j++ {
			fig.SignalDBm = append(fig.SignalDBm, d.SignalDBm[j])
			fig.InterferenceDBm = append(fig.InterferenceDBm, d.InterferenceDBm[j])
		}
	}
	return fig
}

// Table1 re-exports the analytic MAC overhead table.
func Table1() []mac.OverheadRow {
	m := mac.DefaultOverheadModel()
	return m.Table1(4*time.Millisecond, 30*time.Millisecond, 1000*time.Millisecond)
}

// Figure14 is the multi-decoder study: percentage improvement over
// 1-decoder CSMA for each scheme and scenario.
type Figure14 struct {
	// Improvement[scenario][scheme] in percent over 1-decoder CSMA.
	Improvement map[string]map[string]float64
}

// Figure14Schemes in presentation order.
var Figure14Schemes = []string{
	"CSMA N decoders",
	"COPA fair 1 decoder", "COPA 1 decoder",
	"COPA fair N decoders", "COPA N decoders",
}

// RunFigure14 evaluates the three scenarios with and without
// per-subcarrier rate selection. Cancelling ctx aborts between scenario
// runs.
func RunFigure14(ctx context.Context, seed int64, topologies int) (Figure14, error) {
	defer obs.Trace("testbed.figure14").End()
	defer mFigureSeconds.Begin().End()
	fig := Figure14{Improvement: make(map[string]map[string]float64)}
	for _, sc := range []channel.Scenario{channel.Scenario1x1, channel.Scenario4x2, channel.Scenario3x2} {
		cfg := DefaultConfig(seed)
		cfg.Topologies = topologies
		cfg.SkipCOPAPlus = true
		single, err := RunScenario(ctx, sc, cfg)
		if err != nil {
			return fig, err
		}
		cfg.MultiDecoder = true
		multi, err := RunScenario(ctx, sc, cfg)
		if err != nil {
			return fig, err
		}
		base := Mean(single.PerTopology[SchemeCSMA])
		imp := func(x float64) float64 { return (x/base - 1) * 100 }
		fig.Improvement[sc.Name] = map[string]float64{
			"CSMA N decoders":      imp(Mean(multi.PerTopology[SchemeCSMA])),
			"COPA fair 1 decoder":  imp(Mean(single.PerTopology[SchemeCOPAFair])),
			"COPA 1 decoder":       imp(Mean(single.PerTopology[SchemeCOPA])),
			"COPA fair N decoders": imp(Mean(multi.PerTopology[SchemeCOPAFair])),
			"COPA N decoders":      imp(Mean(multi.PerTopology[SchemeCOPA])),
		}
	}
	return fig, nil
}
