package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter or when instrumentation is off.
func (c *Counter) Add(n uint64) {
	if c == nil || !gate.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the metric name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-write-wins float value.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge or when instrumentation is off.
func (g *Gauge) Set(v float64) {
	if g == nil || !gate.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil || !gate.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the metric name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive
// upper bound of bucket i, and one overflow bucket catches everything
// above the last bound. Observations are single atomic adds; the total
// count is derived from the buckets at read time, so a snapshot's count
// always equals the sum of its bucket counts — no torn reads.
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefValueBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	return &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. No-op on nil or when instrumentation is
// off. The bucket scan is linear: bucket counts are small and fixed, so
// this stays branch-predictable and allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil || !gate.Load() {
		return
	}
	idx := len(h.bounds) // overflow
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveInt records an integer value.
func (h *Histogram) ObserveInt(n int) { h.Observe(float64(n)) }

// Value returns a consistent snapshot of the histogram.
func (h *Histogram) Value() HistogramValue {
	if h == nil {
		return HistogramValue{}
	}
	v := HistogramValue{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		v.Counts[i] = c
		v.Count += c
	}
	return v
}

// Name returns the metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// HistogramValue is a point-in-time histogram reading.
type HistogramValue struct {
	// Count is the total number of observations; by construction it
	// equals the sum of Counts.
	Count uint64 `json:"count"`
	// Sum is the (approximate, concurrently accumulated) sum of values.
	Sum float64 `json:"sum"`
	// Bounds are the inclusive bucket upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []uint64 `json:"counts"`
}

// Mean returns Sum/Count, or 0 with no observations.
func (v HistogramValue) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// Quantile returns an interpolated p-quantile (p in [0,1]) from the
// bucket counts. Values in the overflow bucket report the last bound.
func (v HistogramValue) Quantile(p float64) float64 {
	if v.Count == 0 || len(v.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(v.Count)
	var cum float64
	for i, c := range v.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			if i >= len(v.Bounds) {
				return v.Bounds[len(v.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = v.Bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(v.Bounds[i]-lo)
		}
		cum = next
	}
	return v.Bounds[len(v.Bounds)-1]
}

// Timer is a histogram over durations, recorded in seconds.
type Timer struct {
	h *Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// TimerSample is an in-flight timing started with Begin. It is a value
// type: starting and ending a sample does not allocate.
type TimerSample struct {
	t     *Timer
	start time.Time
}

// Begin starts timing now; call End on the returned sample. When
// instrumentation is off the clock is not even read.
func (t *Timer) Begin() TimerSample {
	if t == nil || !gate.Load() {
		return TimerSample{}
	}
	return TimerSample{t: t, start: time.Now()}
}

// End records the elapsed time since Begin.
func (s TimerSample) End() {
	if s.t == nil {
		return
	}
	s.t.Observe(time.Since(s.start))
}

// Value returns the underlying histogram reading (seconds).
func (t *Timer) Value() HistogramValue {
	if t == nil {
		return HistogramValue{}
	}
	return t.h.Value()
}

// Name returns the metric name.
func (t *Timer) Name() string {
	if t == nil {
		return ""
	}
	return t.h.name
}

// Default bucket layouts.
var (
	// DefTimeBuckets spans 1µs .. ~90s exponentially — wide enough for
	// both a per-topology evaluation and a full scenario run.
	DefTimeBuckets = ExpBuckets(1e-6, 2.5, 20)
	// DefValueBuckets is a generic magnitude ladder for size-like values.
	DefValueBuckets = ExpBuckets(1, 4, 12)
)

// ExpBuckets returns n exponentially spaced bounds start, start*factor, …
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: bad ExpBuckets parameters")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("obs: bad LinearBuckets parameters")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Registry is a named collection of metrics. The zero registry is not
// usable; NewRegistry returns one. All methods are nil-safe and return
// nil handles from a nil registry, which makes every metric a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
	// onNew, when set, is called (outside the hot path, under mu) for
	// every metric created, and is replayed for existing metrics when
	// installed — the expvar bridge uses it.
	onNew func(name string, read func() any)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name)
	c := &Counter{name: name}
	r.counters[name] = c
	r.announce(name, func() any { return c.Value() })
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name)
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.announce(name, func() any { return g.Value() })
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (bounds are ignored if it already exists; nil
// bounds use DefValueBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name)
	h := newHistogram(name, bounds)
	r.hists[name] = h
	r.announce(name, func() any { return h.Value() })
	return h
}

// Timer returns the named timer, creating it with DefTimeBuckets on
// first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	r.checkFresh(name)
	t := &Timer{h: newHistogram(name, DefTimeBuckets)}
	r.timers[name] = t
	r.announce(name, func() any { return t.Value() })
	return t
}

// checkFresh panics if name is already registered as another metric
// type — a programmer error surfaced at init time. Callers hold mu.
func (r *Registry) checkFresh(name string) {
	_, a := r.counters[name]
	_, b := r.gauges[name]
	_, c := r.hists[name]
	_, d := r.timers[name]
	if a || b || c || d {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type", name))
	}
}

// announce runs the creation hook. Callers hold mu.
func (r *Registry) announce(name string, read func() any) {
	if r.onNew != nil {
		r.onNew(name, read)
	}
}

// SetCreateHook installs fn to be called for every metric created from
// now on, and replays it for all existing metrics. Used by the expvar
// bridge; fn must not call back into the registry.
func (r *Registry) SetCreateHook(fn func(name string, read func() any)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onNew = fn
	for n, c := range r.counters {
		c := c
		fn(n, func() any { return c.Value() })
	}
	for n, g := range r.gauges {
		g := g
		fn(n, func() any { return g.Value() })
	}
	for n, h := range r.hists {
		h := h
		fn(n, func() any { return h.Value() })
	}
	for n, t := range r.timers {
		t := t
		fn(n, func() any { return t.Value() })
	}
}

// Snapshot is a point-in-time reading of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
	Timers     map[string]HistogramValue `json:"timers"`
}

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Timers))
	for n := range s.Counters {
		out = append(out, n)
	}
	for n := range s.Gauges {
		out = append(out, n)
	}
	for n := range s.Histograms {
		out = append(out, n)
	}
	for n := range s.Timers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot reads every metric. Individual readings are atomic and each
// histogram's Count equals the sum of its bucket Counts; the snapshot
// as a whole is a moment-in-time view under concurrent writers.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramValue),
		Timers:     make(map[string]HistogramValue),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	timers := make(map[string]*Timer, len(r.timers))
	for n, t := range r.timers {
		timers[n] = t
	}
	r.mu.Unlock()
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Value()
	}
	for n, t := range timers {
		s.Timers[n] = t.Value()
	}
	return s
}
