// Package obs is the COPA pipeline's stdlib-only observability layer:
// an allocation-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms/timers), a lightweight span tracer with
// ring-buffer retention, and a log/slog-based structured logger.
//
// The design is handle-based: instrumented packages resolve their
// metrics once at package init
//
//	var mCalls = obs.C("copa.power.equisnr_calls")
//
// and the hot path touches only the pre-resolved handle — one atomic
// add, no map lookups, no allocations. A global gate (SetEnabled /
// Disabled) turns every update into a predictable branch so the
// instrumented and uninstrumented hot paths stay within noise of each
// other (see BenchmarkEquiSNRObservability).
//
// All handles are nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Timer, *Tracer or *Registry are no-ops, so optional
// instrumentation never needs nil checks at the call site.
package obs

import "sync/atomic"

// gate is the global instrumentation switch. It defaults to on: the
// registry is designed to be cheap enough to leave enabled in
// production.
var gate atomic.Bool

func init() { gate.Store(true) }

// Enabled reports whether metric and trace collection is on.
func Enabled() bool { return gate.Load() }

// SetEnabled turns all metric updates and span recording on or off
// globally. Reads (Value, Snapshot) keep working either way.
func SetEnabled(on bool) { gate.Store(on) }

// Disabled switches instrumentation off and returns a func restoring
// the previous state — for benchmarking the uninstrumented baseline:
//
//	defer obs.Disabled()()
func Disabled() (restore func()) {
	prev := gate.Swap(false)
	return func() { gate.Store(prev) }
}

// def is the process-wide default registry every copa.* metric lives in.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// C returns (creating if needed) a counter in the default registry.
func C(name string) *Counter { return def.Counter(name) }

// G returns (creating if needed) a gauge in the default registry.
func G(name string) *Gauge { return def.Gauge(name) }

// H returns (creating if needed) a histogram in the default registry.
// Bounds must be ascending; they are only used on first creation.
func H(name string, bounds []float64) *Histogram { return def.Histogram(name, bounds) }

// T returns (creating if needed) a timer in the default registry.
func T(name string) *Timer { return def.Timer(name) }

// defTracer is the process-wide span tracer (most recent 1024 spans).
var defTracer = NewTracer(1024)

// Tracing returns the process-wide tracer.
func Tracing() *Tracer { return defTracer }

// Trace starts a span on the default tracer. End it with Span.End:
//
//	defer obs.Trace("its.exchange").End()
func Trace(name string) Span { return defTracer.Start(name) }
