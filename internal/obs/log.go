package obs

import (
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// The package logger: a slog text logger to stderr at Info by default.
// Everything in the pipeline logs through obs.Logger() with consistent
// keys (scenario, topology, scheme, seed), so experiments are grep-able
// and a caller can swap the whole tree's output with SetLogger.
var (
	logLevel  slog.LevelVar
	logger    atomic.Pointer[slog.Logger]
	logOutput io.Writer = os.Stderr
)

func init() {
	logLevel.Set(slog.LevelInfo)
	logger.Store(slog.New(slog.NewTextHandler(logOutput, &slog.HandlerOptions{Level: &logLevel})))
}

// Logger returns the current structured logger.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the logger wholesale (nil restores the default).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(logOutput, &slog.HandlerOptions{Level: &logLevel}))
	}
	logger.Store(l)
}

// SetLogOutput redirects the default text logger to w.
func SetLogOutput(w io.Writer) {
	if w == nil {
		w = os.Stderr
	}
	logOutput = w
	logger.Store(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: &logLevel})))
}

// SetLogLevel adjusts the minimum level of the default logger (and any
// handler sharing its LevelVar).
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// SetVerbose toggles debug-level logging — the CLIs' -v flag.
func SetVerbose(on bool) {
	if on {
		logLevel.Set(slog.LevelDebug)
	} else {
		logLevel.Set(slog.LevelInfo)
	}
}
