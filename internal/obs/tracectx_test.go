package obs

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
)

func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root == nil {
		t.Fatal("root span is nil with instrumentation on")
	}
	rootSC := root.Context()
	if !rootSC.Valid() || !rootSC.Sampled {
		t.Fatalf("root context %+v not valid+sampled", rootSC)
	}
	if got, ok := SpanFromContext(ctx); !ok || got != rootSC {
		t.Fatalf("ctx carries %+v, want %+v", got, rootSC)
	}

	cctx, child := tr.StartSpan(ctx, "child")
	if child.Context().TraceID != rootSC.TraceID {
		t.Fatal("child did not inherit the trace ID")
	}
	if child.Context().SpanID == rootSC.SpanID {
		t.Fatal("child reused the parent's span ID")
	}
	leaf := tr.ChildSpan(cctx, "leaf")
	if leaf == nil || leaf.Context().TraceID != rootSC.TraceID {
		t.Fatal("ChildSpan did not continue the trace")
	}
	leaf.SetAttr("cause", "none")
	leaf.End()
	child.EndErr(errors.New("boom"))
	root.End()
	root.End() // double-End must be a no-op
	if got := tr.Total(); got != 3 {
		t.Fatalf("recorded %d spans, want 3", got)
	}

	spans := tr.TraceSpans(rootSC.TraceID.String())
	if len(spans) != 3 {
		t.Fatalf("TraceSpans returned %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != "" {
		t.Fatalf("root parent = %q, want empty", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatal("child not parented to root")
	}
	if byName["leaf"].Parent != byName["child"].ID {
		t.Fatal("leaf not parented to child")
	}
	if byName["child"].Err != "boom" {
		t.Fatalf("child err = %q, want boom", byName["child"].Err)
	}
	if a := byName["leaf"].Attrs; len(a) != 1 || a[0] != (Attr{Key: "cause", Value: "none"}) {
		t.Fatalf("leaf attrs = %v", a)
	}
}

func TestChildSpanRequiresTrace(t *testing.T) {
	tr := NewTracer(8)
	if sp := tr.ChildSpan(context.Background(), "orphan"); sp != nil {
		t.Fatal("ChildSpan started a span without an enclosing trace")
	}
	// Nil spans must be free no-ops end to end.
	var sp *ActiveSpan
	sp.SetAttr("k", "v")
	sp.EndErr(errors.New("x"))
	sp.End()
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.Total() != 0 {
		t.Fatal("no-op spans were recorded")
	}
}

func TestTraceSampling(t *testing.T) {
	defer SetTraceSampling(1)
	tr := NewTracer(8)

	SetTraceSampling(0)
	ctx, sp := tr.StartSpan(context.Background(), "unsampled")
	if sp != nil {
		t.Fatal("got a span at sampling rate 0")
	}
	// The negative decision must stick: no descendant may start a trace.
	if _, sp2 := tr.StartSpan(ctx, "descendant"); sp2 != nil {
		t.Fatal("descendant re-drew the sampling decision")
	}
	if tr.ChildSpan(ctx, "child") != nil {
		t.Fatal("ChildSpan under an unsampled root")
	}

	SetTraceSampling(1)
	// An inherited sampled context bypasses the rate entirely.
	SetTraceSampling(0)
	remote := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	rctx := ContextWithSpan(context.Background(), remote)
	if _, sp := tr.StartSpan(rctx, "continued"); sp == nil {
		t.Fatal("sampled remote parent was dropped at local rate 0")
	} else {
		sp.End()
	}

	SetTraceSampling(0.5)
	if got := TraceSampling(); got != 0.5 {
		t.Fatalf("TraceSampling() = %v, want 0.5", got)
	}
	// Clamping.
	SetTraceSampling(7)
	if TraceSampling() != 1 {
		t.Fatal("rate not clamped to 1")
	}
	SetTraceSampling(-3)
	if TraceSampling() != 0 {
		t.Fatal("rate not clamped to 0")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	tp := sc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", tp, len(tp))
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}

	if (SpanContext{}).Traceparent() != "" {
		t.Fatal("invalid context rendered a traceparent")
	}
	if (SpanContext{TraceID: sc.TraceID, SpanID: sc.SpanID}).Traceparent() != "" {
		t.Fatal("unsampled context rendered a traceparent")
	}

	for _, bad := range []string{
		"",
		"00-short",
		"01-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01", // unknown version
		"00-" + sc.TraceID.String() + "x" + sc.SpanID.String() + "-01", // bad separator
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-" + sc.SpanID.String() + "-01",
		"00-00000000000000000000000000000000-" + sc.SpanID.String() + "-01", // zero trace
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent accepted %q", bad)
		}
	}

	// Flags octet 00 → parsed but unsampled.
	un := tp[:53] + "00"
	got, ok = ParseTraceparent(un)
	if !ok || got.Sampled {
		t.Fatalf("flags 00: got %+v ok=%v, want unsampled", got, ok)
	}
}

func TestHTTPPropagation(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	ctx := ContextWithSpan(context.Background(), sc)

	h := make(http.Header)
	InjectHTTP(ctx, h)
	if h.Get(TraceparentHeader) != sc.Traceparent() {
		t.Fatalf("injected %q, want %q", h.Get(TraceparentHeader), sc.Traceparent())
	}

	out := ExtractHTTP(context.Background(), h)
	if got, ok := SpanFromContext(out); !ok || got != sc {
		t.Fatalf("extracted %+v ok=%v, want %+v", got, ok, sc)
	}

	// No header → unchanged context; no injection without a span.
	if ExtractHTTP(context.Background(), make(http.Header)) != context.Background() {
		t.Fatal("ExtractHTTP modified a header-less context")
	}
	empty := make(http.Header)
	InjectHTTP(context.Background(), empty)
	if len(empty) != 0 {
		t.Fatal("InjectHTTP wrote a header with no span in context")
	}
}

func TestBinaryPropagation(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	ctx := ContextWithSpan(context.Background(), sc)

	b := TraceContextBinary(ctx)
	if len(b) != traceCtxBinaryLen {
		t.Fatalf("binary length %d, want %d", len(b), traceCtxBinaryLen)
	}
	out := ContextWithRemoteBinary(context.Background(), b)
	if got, ok := SpanFromContext(out); !ok || got != sc {
		t.Fatalf("binary round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}

	if TraceContextBinary(context.Background()) != nil {
		t.Fatal("span-less context produced a binary trace field")
	}
	for _, bad := range [][]byte{nil, {}, b[:10], append([]byte{9}, b[1:]...), make([]byte, traceCtxBinaryLen)} {
		if got := ContextWithRemoteBinary(context.Background(), bad); got != context.Background() {
			t.Fatalf("malformed field %v changed the context", bad)
		}
	}
}

func TestStartSpanDisabledGate(t *testing.T) {
	restore := Disabled()
	defer restore()
	tr := NewTracer(8)
	ctx, sp := tr.StartSpan(context.Background(), "off")
	if sp != nil || ctx != context.Background() {
		t.Fatal("disabled gate still produced a span or a new context")
	}
	if tr.ChildSpan(ctx, "off") != nil {
		t.Fatal("disabled gate still produced a child span")
	}
	if n := testing.AllocsPerRun(100, func() {
		c, s := tr.StartSpan(context.Background(), "off")
		_ = c
		s.End()
	}); n != 0 {
		t.Fatalf("disabled StartSpan allocates %v/op, want 0", n)
	}
}

// TestHierarchicalSpanStress races many goroutines starting/ending
// nested spans against readers; under -race this is the tracing layer's
// concurrency safety net (satellite: race-stress for hierarchical
// spans).
func TestHierarchicalSpanStress(t *testing.T) {
	tr := NewTracer(256)
	const goroutines, perG, depth = 8, 200, 4

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range tr.Recent(16) {
					_ = tr.TraceSpans(s.Trace)
				}
			}
		}()
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, root := tr.StartSpan(context.Background(), "stress.root")
				spans := make([]*ActiveSpan, 0, depth)
				for d := 0; d < depth; d++ {
					var sp *ActiveSpan
					ctx, sp = tr.StartSpan(ctx, "stress.child")
					sp.SetAttr("d", "x")
					spans = append(spans, sp)
				}
				for d := len(spans) - 1; d >= 0; d-- {
					spans[d].End()
				}
				root.End()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const want = goroutines * perG * (depth + 1)
	if got := tr.Total(); got != want {
		t.Fatalf("recorded %d spans, want %d", got, want)
	}
	// Every retained trace must be internally consistent: each non-root
	// parent ID resolves to another span of the same trace.
	for _, rec := range tr.Recent(0) {
		if rec.Parent == "" {
			continue
		}
		found := false
		for _, other := range tr.TraceSpans(rec.Trace) {
			if other.ID == rec.Parent {
				found = true
				break
			}
		}
		// The parent may have been evicted from the ring; only flag
		// impossible links (parent == self).
		if found && rec.Parent == rec.ID {
			t.Fatalf("span %q is its own parent", rec.Name)
		}
	}
}
