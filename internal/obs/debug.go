package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar bridge: expvar panics on duplicate
// names, so the default registry is bridged at most once per process.
var publishOnce sync.Once

// PublishExpvar exports every metric of the default registry — current
// and future — as an individual expvar variable under its own name
// (e.g. "copa.power.equisnr_calls"), so GET /debug/vars carries the
// live registry. Safe to call more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		def.SetCreateHook(func(name string, read func() any) {
			expvar.Publish(name, expvar.Func(read))
		})
	})
}

// DebugMux returns an http.ServeMux serving the operational surface:
//
//	/metrics          OpenMetrics text exposition (Prometheus-scrapable)
//	/debug/vars       expvar JSON (all copa.* metrics via PublishExpvar)
//	/debug/metrics    the registry snapshot as pretty JSON
//	/debug/spans      the tracer's most recent spans, newest first;
//	                  ?trace=<32-hex id> filters to one stitched trace,
//	                  oldest first
//	/debug/buildinfo  Go version, module version, VCS revision
//	/debug/pprof/*    the standard pprof endpoints
func DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypeOpenMetrics)
		_ = WriteOpenMetrics(w, def.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(def.Snapshot())
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("trace"); id != "" {
			_ = enc.Encode(defTracer.TraceSpans(id))
			return
		}
		_ = enc.Encode(defTracer.Recent(0))
	})
	mux.HandleFunc("/debug/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ReadBuildInfo())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug server on addr (":0" picks a free port)
// and returns the bound address plus a shutdown func. The server runs
// until shutdown is called or the process exits.
func ServeDebug(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
