package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics / Prometheus text exposition for the registry, so any
// standard scraper can pull the copa.* metrics without a bridge.
//
// Name mapping is mechanical: dots become underscores
// ("copa.serve.requests" → "copa_serve_requests"), counters gain the
// conventional _total suffix, timers render as histograms (their unit
// is already seconds), and histogram buckets are emitted cumulatively
// with the mandatory le="+Inf" terminal bucket, so
// x_bucket{le="+Inf"} == x_count always holds. Families are sorted by
// name, making the exposition deterministic for a given snapshot —
// which is what the golden test pins.

// ContentTypeOpenMetrics is the negotiated media type of the /metrics
// endpoint.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders a snapshot in OpenMetrics text format,
// terminated by the mandatory "# EOF" line.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	type family struct {
		name string
		emit func()
	}
	fams := make([]family, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Timers))

	for name, v := range s.Counters {
		n, v := openMetricsName(name), v
		fams = append(fams, family{n, func() {
			bw.WriteString("# TYPE " + n + " counter\n")
			bw.WriteString(n + "_total " + strconv.FormatUint(v, 10) + "\n")
		}})
	}
	for name, v := range s.Gauges {
		n, v := openMetricsName(name), v
		fams = append(fams, family{n, func() {
			bw.WriteString("# TYPE " + n + " gauge\n")
			bw.WriteString(n + " " + formatFloat(v) + "\n")
		}})
	}
	emitHist := func(n string, hv HistogramValue) func() {
		return func() {
			bw.WriteString("# TYPE " + n + " histogram\n")
			var cum uint64
			for i, b := range hv.Bounds {
				cum += hv.Counts[i]
				bw.WriteString(n + `_bucket{le="` + formatFloat(b) + `"} ` + strconv.FormatUint(cum, 10) + "\n")
			}
			bw.WriteString(n + `_bucket{le="+Inf"} ` + strconv.FormatUint(hv.Count, 10) + "\n")
			bw.WriteString(n + "_sum " + formatFloat(hv.Sum) + "\n")
			bw.WriteString(n + "_count " + strconv.FormatUint(hv.Count, 10) + "\n")
		}
	}
	for name, hv := range s.Histograms {
		n := openMetricsName(name)
		fams = append(fams, family{n, emitHist(n, hv)})
	}
	for name, hv := range s.Timers {
		n := openMetricsName(name)
		fams = append(fams, family{n, emitHist(n, hv)})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.emit()
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// openMetricsName maps a copa.* dotted name onto the exposition's
// [a-zA-Z_:][a-zA-Z0-9_:]* charset.
func openMetricsName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// formatFloat renders a float the way the exposition formats expect:
// shortest round-trip representation, with explicit +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
