package obs

import (
	"runtime"
	"sync"
	"time"
)

// The runtime collector samples the Go runtime into ordinary registry
// metrics so goroutine leaks, heap growth, and GC pressure show up in
// the same /metrics exposition as the pipeline counters — "p99 is bad
// because the heap doubled" needs both on one dashboard.
var (
	rGoroutines  = G("copa.runtime.goroutines")
	rHeapAlloc   = G("copa.runtime.heap_alloc_bytes")
	rHeapObjects = G("copa.runtime.heap_objects")
	rSysBytes    = G("copa.runtime.sys_bytes")
	rNextGC      = G("copa.runtime.next_gc_bytes")
	rGCCycles    = G("copa.runtime.gc_cycles")
	rGCPauseTot  = G("copa.runtime.gc_pause_total_seconds")
	// rGCPause distributes individual stop-the-world pauses, 1µs..~1s.
	rGCPause = H("copa.runtime.gc_pause_seconds", ExpBuckets(1e-6, 4, 10))
)

// runtimeCollector serializes collector lifecycle: at most one sampling
// goroutine per process, stopped and restarted freely.
var runtimeCollector struct {
	mu   sync.Mutex
	stop chan struct{}
	// lastGC tracks how far into MemStats.PauseNs history the collector
	// has read, so each pause is observed exactly once.
	lastGC uint32
}

// StartRuntimeCollector begins sampling goroutine count, heap usage,
// and GC activity into copa.runtime.* metrics every interval (default
// 5s). It returns a stop function; calling StartRuntimeCollector while
// a collector runs replaces it. One immediate sample is taken
// synchronously so the metrics exist before the first tick.
func StartRuntimeCollector(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	runtimeCollector.mu.Lock()
	if runtimeCollector.stop != nil {
		close(runtimeCollector.stop)
	}
	ch := make(chan struct{})
	runtimeCollector.stop = ch
	runtimeCollector.mu.Unlock()

	sampleRuntime()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sampleRuntime()
			case <-ch:
				return
			}
		}
	}()
	return func() {
		runtimeCollector.mu.Lock()
		defer runtimeCollector.mu.Unlock()
		if runtimeCollector.stop == ch {
			close(ch)
			runtimeCollector.stop = nil
		}
	}
}

// sampleRuntime takes one reading. ReadMemStats stops the world
// briefly; the default 5s cadence keeps that cost invisible.
func sampleRuntime() {
	rGoroutines.Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rHeapAlloc.Set(float64(ms.HeapAlloc))
	rHeapObjects.Set(float64(ms.HeapObjects))
	rSysBytes.Set(float64(ms.Sys))
	rNextGC.Set(float64(ms.NextGC))
	rGCCycles.Set(float64(ms.NumGC))
	rGCPauseTot.Set(float64(ms.PauseTotalNs) / 1e9)

	runtimeCollector.mu.Lock()
	last := runtimeCollector.lastGC
	runtimeCollector.lastGC = ms.NumGC
	runtimeCollector.mu.Unlock()
	if ms.NumGC > last {
		// Observe each new pause once; the circular buffer holds 256.
		n := ms.NumGC - last
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < n; i++ {
			rGCPause.Observe(float64(ms.PauseNs[(ms.NumGC-1-i)%uint32(len(ms.PauseNs))]) / 1e9)
		}
	}
}
