package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("test.c") != c {
		t.Fatal("counter not idempotent")
	}
	g := r.Gauge("test.g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c, g := r.Counter("x"), r.Gauge("x")
	h, tm := r.Histogram("x", nil), r.Timer("x")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveInt(1)
	tm.Observe(time.Second)
	tm.Begin().End()
	if c.Value() != 0 || g.Value() != 0 || h.Value().Count != 0 || tm.Value().Count != 0 {
		t.Fatal("nil handles must read zero")
	}
	if len(r.Snapshot().Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var tr *Tracer
	tr.Start("x").End()
	tr.Event("x")
	if tr.Total() != 0 || tr.Recent(0) != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestDisabledGate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gate.c")
	h := r.Histogram("gate.h", []float64{1, 2})
	restore := Disabled()
	c.Inc()
	h.Observe(1)
	if !Enabled() {
		restore()
	} else {
		t.Fatal("Disabled did not switch the gate off")
	}
	if c.Value() != 0 || h.Value().Count != 0 {
		t.Fatal("updates leaked through a disabled gate")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("restore did not re-enable instrumentation")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.h", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	v := h.Value()
	if v.Count != 6 {
		t.Fatalf("count = %d, want 6", v.Count)
	}
	want := []uint64{2, 1, 1, 1, 1} // ≤1, ≤2, ≤4, ≤8, overflow
	for i, c := range v.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if math.Abs(v.Sum-113.0) > 1e-9 {
		t.Fatalf("sum = %v, want 113", v.Sum)
	}
	if m := v.Mean(); math.Abs(m-113.0/6) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if q := v.Quantile(0.5); q < 0 || q > 4 {
		t.Fatalf("median = %v out of plausible range", q)
	}
	if q := v.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want last bound 8", q)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("test.t")
	tm.Observe(3 * time.Millisecond)
	s := tm.Begin()
	s.End()
	v := tm.Value()
	if v.Count != 2 {
		t.Fatalf("timer count = %d, want 2", v.Count)
	}
	if v.Sum < 0.003 || v.Sum > 1 {
		t.Fatalf("timer sum = %v s, implausible", v.Sum)
	}
}

func TestRegistryTypeCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-type name reuse")
		}
	}()
	r := NewRegistry()
	r.Counter("dup")
	r.Gauge("dup")
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, exp[i], want)
		}
	}
	lin := LinearBuckets(0, 3, 3)
	for i, want := range []float64{0, 3, 6} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets[%d] = %v, want %v", i, lin[i], want)
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		sp := tr.Start("op")
		sp.End()
	}
	tr.Event("evt")
	if got := tr.Total(); got != 7 {
		t.Fatalf("total = %d, want 7", got)
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("retained = %d, want ring capacity 4", len(recent))
	}
	if recent[0].Name != "evt" {
		t.Fatalf("newest span = %q, want evt", recent[0].Name)
	}
	if two := tr.Recent(2); len(two) != 2 {
		t.Fatalf("Recent(2) = %d spans", len(two))
	}
}

func TestTracerErrSpans(t *testing.T) {
	tr := NewTracer(4)
	tr.Start("ok").EndErr(nil)
	tr.Start("bad").EndErr(io.ErrUnexpectedEOF)
	recent := tr.Recent(0)
	if recent[0].Err == "" || recent[1].Err != "" {
		t.Fatalf("error spans mis-recorded: %+v", recent)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(nil)
	defer SetVerbose(false)

	Logger().Debug("hidden")
	Logger().Info("shown", "scenario", "4x2", "seed", 1)
	SetVerbose(true)
	Logger().Debug("now visible")

	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug logged at info level")
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "scenario=4x2") {
		t.Fatalf("info line missing: %q", out)
	}
	if !strings.Contains(out, "now visible") {
		t.Fatal("verbose mode did not enable debug")
	}
}

func TestSetLoggerAndLevel(t *testing.T) {
	var buf bytes.Buffer
	custom := slog.New(slog.NewJSONHandler(&buf, nil))
	SetLogger(custom)
	Logger().Info("json line")
	SetLogger(nil)
	if !strings.Contains(buf.String(), `"msg":"json line"`) {
		t.Fatalf("custom logger not used: %q", buf.String())
	}
	SetLogLevel(slog.LevelWarn)
	defer SetLogLevel(slog.LevelInfo)
	if logLevel.Level() != slog.LevelWarn {
		t.Fatal("SetLogLevel did not stick")
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	// Touch a default-registry metric so /debug/vars has copa content.
	C("copa.test.debugmux").Inc()
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/vars")
	if code != 200 || !strings.Contains(body, "copa.test.debugmux") {
		t.Fatalf("expvar missing metric (code %d)", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}

	code, body = get("/debug/metrics")
	if code != 200 {
		t.Fatalf("/debug/metrics code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/metrics not a snapshot: %v", err)
	}
	if _, ok := snap.Counters["copa.test.debugmux"]; !ok {
		t.Fatal("snapshot endpoint missing counter")
	}

	if code, _ = get("/debug/spans"); code != 200 {
		t.Fatalf("/debug/spans code %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline code %d", code)
	}
	if code, _ = get("/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Fatalf("pprof goroutine code %d", code)
	}
}

func TestServeDebug(t *testing.T) {
	addr, shutdown, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("debug server code %d", resp.StatusCode)
	}
}
