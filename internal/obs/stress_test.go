package obs

import (
	"sync"
	"testing"
)

// TestRegistryStress hammers one registry from many goroutines — run
// under -race this is the registry's concurrency safety net.
func TestRegistryStress(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		perG       = 2000
	)
	c := r.Counter("stress.counter")
	g := r.Gauge("stress.gauge")
	h := r.Histogram("stress.hist", LinearBuckets(0, 8, 8))
	tr := NewTracer(64)

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.ObserveInt(i % 64)
				// Get-or-create races on the maps too.
				r.Counter("stress.counter").Add(0)
				if i%100 == 0 {
					sp := tr.Start("stress")
					sp.End()
				}
			}
		}(w)
	}
	// Concurrent readers while writers run.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Snapshot()
				_ = tr.Recent(8)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Fatalf("counter = %d, want %d (lost updates)", got, total)
	}
	if got := g.Value(); got != total {
		t.Fatalf("gauge = %v, want %d (lost CAS adds)", got, total)
	}
	v := h.Value()
	if v.Count != total {
		t.Fatalf("histogram count = %d, want %d", v.Count, total)
	}
	var bucketSum uint64
	for _, n := range v.Counts {
		bucketSum += n
	}
	if bucketSum != v.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, v.Count)
	}
}

// TestSnapshotConsistency takes snapshots while writers are mid-flight
// and checks the invariants every snapshot must satisfy: a histogram's
// Count equals the sum of its bucket Counts (no torn reads), and
// counters/histograms are monotone across successive snapshots.
func TestSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("consist.counter")
	h := r.Histogram("consist.hist", LinearBuckets(0, 1, 16))

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				c.Inc()
				h.ObserveInt((w + i) % 32)
			}
		}(w)
	}

	var prevCount, prevCounter uint64
	for i := 0; i < 300; i++ {
		s := r.Snapshot()
		hv := s.Histograms["consist.hist"]
		var bucketSum uint64
		for _, n := range hv.Counts {
			bucketSum += n
		}
		if bucketSum != hv.Count {
			t.Fatalf("snapshot %d torn: bucket sum %d != count %d", i, bucketSum, hv.Count)
		}
		if hv.Count < prevCount {
			t.Fatalf("snapshot %d: histogram count went backwards (%d < %d)", i, hv.Count, prevCount)
		}
		if s.Counters["consist.counter"] < prevCounter {
			t.Fatalf("snapshot %d: counter went backwards", i)
		}
		prevCount, prevCounter = hv.Count, s.Counters["consist.counter"]
	}
	close(done)
	wg.Wait()

	// After quiescence, sum-derived count must equal exact observations.
	final := h.Value()
	var bucketSum uint64
	for _, n := range final.Counts {
		bucketSum += n
	}
	if bucketSum != final.Count {
		t.Fatalf("final bucket sum %d != count %d", bucketSum, final.Count)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	defer Disabled()()
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench.hist", LinearBuckets(0, 4, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveInt(i & 63)
	}
}
