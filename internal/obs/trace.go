package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanRecord is one finished span kept in a tracer's ring buffer.
type SpanRecord struct {
	// Name identifies the operation ("its.exchange", "scenario.4x2").
	Name string `json:"name"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// Duration is how long the span ran.
	Duration time.Duration `json:"duration_ns"`
	// Err holds the error text for spans ended with EndErr, "" on
	// success.
	Err string `json:"err,omitempty"`
	// Trace, ID and Parent link hierarchical spans (StartSpan/ChildSpan)
	// into one request tree: all spans of a request share Trace, and
	// Parent names the enclosing span's ID ("" for the root). Flat spans
	// recorded with Tracer.Start leave all three empty.
	Trace  string `json:"trace_id,omitempty"`
	ID     string `json:"span_id,omitempty"`
	Parent string `json:"parent_id,omitempty"`
	// Attrs are the span's annotations, in SetAttr order.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Tracer records spans into a fixed-size ring buffer: the most recent
// capacity spans are retained, older ones are overwritten. Recording is
// a short critical section on a mutex — spans mark exchange- and
// scenario-granularity operations, not per-subcarrier work.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total uint64
}

// NewTracer returns a tracer retaining the most recent capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

// Span is an in-flight operation started with Tracer.Start. It is a
// value type; dropping it without End simply records nothing.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Start begins a span. When tracing is disabled (or the tracer is nil)
// the returned span is inert and End is free.
func (t *Tracer) Start(name string) Span {
	if t == nil || !gate.Load() {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End finishes the span successfully.
func (s Span) End() { s.finish("") }

// EndErr finishes the span, recording err's text if non-nil.
func (s Span) EndErr(err error) {
	if err != nil {
		s.finish(err.Error())
		return
	}
	s.finish("")
}

func (s Span) finish(errText string) {
	if s.t == nil {
		return
	}
	s.t.record(SpanRecord{Name: s.name, Start: s.start, Duration: time.Since(s.start), Err: errText})
}

// record appends one finished span to the ring, overwriting the oldest
// retained span once the ring is full.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Event records an instantaneous, zero-duration span.
func (t *Tracer) Event(name string) {
	if t == nil || !gate.Load() {
		return
	}
	Span{t: t, name: name, start: time.Now()}.finish("")
}

// Total returns how many spans have ever been recorded (including ones
// already evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TraceSpans returns every retained span belonging to the given trace
// ID (32 hex digits), oldest first — one stitched request tree, in
// roughly causal order.
func (t *Tracer) TraceSpans(traceID string) []SpanRecord {
	if t == nil || traceID == "" {
		return nil
	}
	recent := t.Recent(0)
	var out []SpanRecord
	for i := len(recent) - 1; i >= 0; i-- { // Recent is newest-first
		if recent[i].Trace == traceID {
			out = append(out, recent[i])
		}
	}
	return out
}

// WriteJSON dumps every retained span as an indented JSON array,
// oldest first — the -trace-out format. Hierarchical spans carry
// trace_id/span_id/parent_id so two processes' dumps can be joined on
// trace_id; flat spans omit them.
func (t *Tracer) WriteJSON(w io.Writer) error {
	recent := t.Recent(0)
	// Reverse newest-first into causal order.
	for i, j := 0, len(recent)-1; i < j; i, j = i+1, j-1 {
		recent[i], recent[j] = recent[j], recent[i]
	}
	if recent == nil {
		recent = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recent)
}

// Recent returns up to n retained spans, newest first. n <= 0 returns
// everything retained.
func (t *Tracer) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := len(t.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		// next-1 is the newest slot; walk backwards through the ring.
		idx := (t.next - 1 - i + have) % have
		out = append(out, t.ring[idx])
	}
	return out
}
