package obs

import (
	"runtime"
	rdebug "runtime/debug"
	"sync"
)

// BuildInfo is the build identity served at /debug/buildinfo and
// embedded in copaserve's /v1/healthz: enough to answer "which binary
// is this host actually running?" during an incident.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
	// Version is the main module version ("(devel)" for tree builds).
	Version string `json:"version,omitempty"`
	// Revision/Time/Dirty come from VCS stamping, when present.
	Revision string `json:"vcs_revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Dirty    bool   `json:"vcs_dirty,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// ReadBuildInfo returns the binary's build identity, computed once.
// Binaries built without module info (some test harnesses) still get
// the Go version.
func ReadBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := rdebug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}
