package obs

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestOpenMetricsGolden pins the exposition byte-for-byte for a fixed
// registry: name mangling, _total suffixes, cumulative buckets with
// +Inf, deterministic family ordering, and the # EOF terminator.
func TestOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("copa.test.requests").Add(41)
	r.Counter("copa.test.requests").Inc()
	r.Gauge("copa.test.depth").Set(2.5)
	h := r.Histogram("copa.test.size", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(100)
	tm := r.Timer("copa.test.wait_seconds")
	tm.Observe(500 * time.Millisecond)

	var b strings.Builder
	if err := WriteOpenMetrics(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	// Timer bucket lines depend on the default timer bounds; pin the
	// fixed families exactly and the timer family structurally.
	want := `# TYPE copa_test_depth gauge
copa_test_depth 2.5
# TYPE copa_test_requests counter
copa_test_requests_total 42
# TYPE copa_test_size histogram
copa_test_size_bucket{le="1"} 1
copa_test_size_bucket{le="10"} 3
copa_test_size_bucket{le="+Inf"} 4
copa_test_size_sum 110.5
copa_test_size_count 4
`
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", got)
	}
	for _, line := range []string{
		"# TYPE copa_test_wait_seconds histogram\n",
		`copa_test_wait_seconds_bucket{le="+Inf"} 1` + "\n",
		"copa_test_wait_seconds_sum 0.5\n",
		"copa_test_wait_seconds_count 1\n",
	} {
		if !strings.Contains(got, line) {
			t.Fatalf("exposition missing %q:\n%s", line, got)
		}
	}

	// Determinism: a second render of the same snapshot is identical.
	var b2 strings.Builder
	if err := WriteOpenMetrics(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Fatal("exposition is not deterministic across renders")
	}
}

func TestOpenMetricsCumulativeInvariant(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("copa.test.inv", ExpBuckets(1, 2, 6))
	for i := 0; i < 100; i++ {
		h.ObserveInt(i % 50)
	}
	var b strings.Builder
	if err := WriteOpenMetrics(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Cumulative buckets must be non-decreasing and end at _count.
	var prev, inf uint64
	var count uint64
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "copa_test_inv_bucket"):
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %d after %d", v, prev)
			}
			prev = v
			if strings.Contains(line, "+Inf") {
				inf = v
			}
		case strings.HasPrefix(line, "copa_test_inv_count"):
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			count = v
		}
	}
	if inf != count || count != 100 {
		t.Fatalf("+Inf bucket %d, count %d, want both 100", inf, count)
	}
}

func TestOpenMetricsNameMangling(t *testing.T) {
	for in, want := range map[string]string{
		"copa.serve.requests":   "copa_serve_requests",
		"copa.its-leg.req":      "copa_its_leg_req",
		"already_flat":          "already_flat",
		"copa.campaign.shard.7": "copa_campaign_shard_7",
	} {
		if got := openMetricsName(in); got != want {
			t.Fatalf("openMetricsName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	// The default registry backs /metrics; touch one metric so the
	// endpoint has something to say regardless of test order.
	C("copa.test.endpoint_hits").Inc()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	DebugMux().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentTypeOpenMetrics {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypeOpenMetrics)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "copa_test_endpoint_hits_total") {
		t.Fatalf("/metrics missing expected family:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("/metrics not EOF-terminated")
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/debug/buildinfo", nil)
	rec := httptest.NewRecorder()
	DebugMux().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/buildinfo = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "go_version") {
		t.Fatalf("buildinfo missing go_version:\n%s", rec.Body.String())
	}
}

func TestRuntimeCollector(t *testing.T) {
	stop := StartRuntimeCollector(time.Hour) // one synchronous sample
	defer stop()
	s := Default().Snapshot()
	if s.Gauges["copa.runtime.goroutines"] < 1 {
		t.Fatalf("goroutines gauge = %v", s.Gauges["copa.runtime.goroutines"])
	}
	if s.Gauges["copa.runtime.heap_alloc_bytes"] <= 0 {
		t.Fatal("heap gauge not sampled")
	}
	// Restart replaces the previous collector without panicking.
	stop2 := StartRuntimeCollector(time.Hour)
	stop2()
	stop() // stale stop is a safe no-op
}
