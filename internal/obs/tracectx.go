package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"net/http"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the tracer: hierarchical
// spans linked by TraceID/SpanID/parent, carried through
// context.Context, and propagated across process boundaries as a W3C
// traceparent-style HTTP header or a compact 25-byte binary field in
// ITS control frames. The flat Tracer ring in trace.go stays the
// storage layer — hierarchical spans land in the same ring, with their
// identity fields filled in, so /debug/spans and RecentSpans see both.

// TraceID identifies one end-to-end request across every process it
// touches. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace. The zero value means
// "none" (a root span's parent).
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of an in-flight span: enough
// to parent a child span in another goroutine or another process. It is
// a small comparable value type.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled records the root's sampling decision; descendants and
	// remote continuations inherit it instead of re-drawing.
	Sampled bool
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// idState is the span/trace ID generator: a splitmix64 sequence seeded
// from crypto/rand once at init, so IDs are unique across processes
// without per-ID syscalls or locks.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// Fall back to the wall clock; uniqueness within a process still
		// holds via the counter.
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	idState.Store(binary.LittleEndian.Uint64(seed[:]))
}

// nextID advances the splitmix64 sequence (Steele et al.; the same
// generator internal/rng builds on).
func nextID() uint64 {
	z := idState.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func newTraceID() TraceID {
	var t TraceID
	binary.LittleEndian.PutUint64(t[0:8], nextID())
	binary.LittleEndian.PutUint64(t[8:16], nextID())
	return t
}

func newSpanID() SpanID {
	var s SpanID
	binary.LittleEndian.PutUint64(s[:], nextID())
	return s
}

// sampleBits holds the root-span sampling rate as float64 bits
// (default 1: every new trace is recorded).
var sampleBits atomic.Uint64

func init() { sampleBits.Store(math.Float64bits(1)) }

// SetTraceSampling sets the probability in [0, 1] that a NEW trace
// (a root span with no inherited context) is recorded. Child spans and
// remote continuations always follow their parent's decision, so a
// trace is either captured whole or not at all.
func SetTraceSampling(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	sampleBits.Store(math.Float64bits(rate))
}

// TraceSampling returns the current root sampling rate.
func TraceSampling() float64 { return math.Float64frombits(sampleBits.Load()) }

// sampleTrace draws one root sampling decision from the ID stream.
func sampleTrace() bool {
	rate := math.Float64frombits(sampleBits.Load())
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	// 53 uniform bits → [0,1), the usual float construction.
	return float64(nextID()>>11)/(1<<53) < rate
}

// ctxKey keys the SpanContext in a context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sc; StartSpan/ChildSpan use it
// as the parent. Mostly useful in tests — StartSpan installs its own
// context automatically.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext returns the span context ctx carries, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// ActiveSpan is one in-flight hierarchical span started with StartSpan
// or ChildSpan. All methods are nil-safe: a nil *ActiveSpan (returned
// when instrumentation is off or the trace is unsampled) is a free
// no-op, so call sites never branch.
type ActiveSpan struct {
	t       *Tracer
	name    string
	start   time.Time
	sc      SpanContext
	parent  SpanID
	attrs   []Attr
	elapsed func() time.Duration // test hook; nil = time.Since(start)
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Context returns the span's propagable identity (zero when nil).
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr annotates the span. Attributes ride in the span record;
// they are for exchange/request-granularity context (cause, retries,
// cache disposition), not per-subcarrier data.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span successfully.
func (s *ActiveSpan) End() { s.finish("") }

// EndErr finishes the span, recording err's text if non-nil.
func (s *ActiveSpan) EndErr(err error) {
	if err != nil {
		s.finish(err.Error())
		return
	}
	s.finish("")
}

func (s *ActiveSpan) finish(errText string) {
	if s == nil || s.t == nil {
		return
	}
	d := time.Since(s.start)
	if s.elapsed != nil {
		d = s.elapsed()
	}
	s.t.record(SpanRecord{
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Err:      errText,
		Trace:    s.sc.TraceID.String(),
		ID:       s.sc.SpanID.String(),
		Parent:   parentString(s.parent),
		Attrs:    s.attrs,
	})
	s.t = nil // double-End is a no-op
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

// StartSpan starts a hierarchical span on the default tracer: a child
// of ctx's span if it carries one, otherwise the root of a fresh trace
// (subject to SetTraceSampling). The returned context carries the new
// span's identity for children and propagation. When instrumentation
// is off — or the trace is unsampled — the span is nil and ctx is
// returned unchanged, with zero allocations.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return defTracer.StartSpan(ctx, name)
}

// ChildSpan is StartSpan that refuses to start a new trace: it returns
// a live span only when ctx already carries a sampled trace. Pipeline
// stages use it so library calls with an untraced context (the
// zero-allocation cache-hit contract) stay span-free, while the same
// code under a traced request records every stage.
func ChildSpan(ctx context.Context, name string) *ActiveSpan {
	return defTracer.ChildSpan(ctx, name)
}

// StartSpan starts a hierarchical span on t; see the package-level
// StartSpan.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil || !gate.Load() {
		return ctx, nil
	}
	sc := SpanContext{Sampled: true}
	var parent SpanID
	if p, ok := SpanFromContext(ctx); ok {
		if !p.Sampled {
			return ctx, nil
		}
		sc.TraceID, parent = p.TraceID, p.SpanID
	}
	if sc.TraceID.IsZero() {
		if !sampleTrace() {
			// Remember the negative decision so descendants skip fast.
			return ContextWithSpan(ctx, SpanContext{}), nil
		}
		sc.TraceID = newTraceID()
	}
	sc.SpanID = newSpanID()
	s := &ActiveSpan{t: t, name: name, start: time.Now(), sc: sc, parent: parent}
	return ContextWithSpan(ctx, sc), s
}

// ChildSpan starts a span only under an existing sampled trace; see the
// package-level ChildSpan.
func (t *Tracer) ChildSpan(ctx context.Context, name string) *ActiveSpan {
	if t == nil || !gate.Load() {
		return nil
	}
	p, ok := SpanFromContext(ctx)
	if !ok || !p.Sampled || p.TraceID.IsZero() {
		return nil
	}
	return &ActiveSpan{
		t:      t,
		name:   name,
		start:  time.Now(),
		sc:     SpanContext{TraceID: p.TraceID, SpanID: newSpanID(), Sampled: true},
		parent: p.SpanID,
	}
}

// Wire formats. Two encodings of the same 25 bytes of identity:
//
//	HTTP:   traceparent: 00-<32 hex trace>-<16 hex span>-<2 hex flags>
//	binary: version(1)=0, trace(16), span(8) — flags implicit (carried
//	        trace contexts are always sampled; unsampled ones are
//	        simply not carried)

// TraceparentHeader is the canonical header name (lowercase, as the
// W3C spec writes it; net/http canonicalizes on Set/Get either way).
const TraceparentHeader = "traceparent"

// Traceparent renders the context as a traceparent header value, or ""
// when the context is invalid or unsampled.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() || !sc.Sampled {
		return ""
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a traceparent header value. Unknown versions
// and malformed values report ok=false; the flags octet's sampled bit
// is honored.
func ParseTraceparent(v string) (SpanContext, bool) {
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	if v[0] != '0' || v[1] != '0' { // only version 00
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(v[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(v[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(v[53:55])); err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 != 0
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// InjectHTTP stamps ctx's span identity onto h as a traceparent
// header. No-op when ctx carries no sampled span.
func InjectHTTP(ctx context.Context, h http.Header) {
	if sc, ok := SpanFromContext(ctx); ok {
		if tp := sc.Traceparent(); tp != "" {
			h.Set(TraceparentHeader, tp)
		}
	}
}

// ExtractHTTP returns ctx extended with the traceparent carried by h,
// if any: spans started under the returned context continue the
// remote caller's trace.
func ExtractHTTP(ctx context.Context, h http.Header) context.Context {
	if sc, ok := ParseTraceparent(h.Get(TraceparentHeader)); ok && sc.Sampled {
		return ContextWithSpan(ctx, sc)
	}
	return ctx
}

// traceCtxBinaryLen is the wire size of a binary trace context.
const traceCtxBinaryLen = 1 + 16 + 8

// TraceContextBinary encodes ctx's span identity as the compact binary
// field ITS frames carry (nil when ctx has no sampled span — the frame
// then omits the field and stays byte-identical to the pre-tracing
// format).
func TraceContextBinary(ctx context.Context) []byte {
	sc, ok := SpanFromContext(ctx)
	if !ok || !sc.Valid() || !sc.Sampled {
		return nil
	}
	b := make([]byte, traceCtxBinaryLen)
	b[0] = 0 // version
	copy(b[1:17], sc.TraceID[:])
	copy(b[17:25], sc.SpanID[:])
	return b
}

// ContextWithRemoteBinary returns ctx extended with a binary trace
// context previously produced by TraceContextBinary; malformed or
// empty fields leave ctx unchanged.
func ContextWithRemoteBinary(ctx context.Context, b []byte) context.Context {
	if len(b) != traceCtxBinaryLen || b[0] != 0 {
		return ctx
	}
	var sc SpanContext
	copy(sc.TraceID[:], b[1:17])
	copy(sc.SpanID[:], b[17:25])
	sc.Sampled = true
	if !sc.Valid() {
		return ctx
	}
	return ContextWithSpan(ctx, sc)
}
