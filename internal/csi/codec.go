// Package csi implements COPA's channel-state compression (§3.1): channel
// matrices and precoding matrices are delta-modulated across subcarriers —
// amplitude (in dB) and phase encoded separately with an adaptive step —
// and the result is further compressed with a lossless Lempel-Ziv stage
// (DEFLATE). The paper reports an average compression ratio of two against
// its raw wire format; this codec is measured the same way (see Ratio and
// the tests) and its output feeds the ITS frame sizes used by the MAC
// overhead model.
package csi

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/cmplx"

	"copa/internal/channel"
	"copa/internal/linalg"
)

// Wire format constants.
const (
	magic   = 0xC0FA
	version = 1

	// Profile4 encodes each delta pair as one byte (4-bit amplitude +
	// 4-bit phase): the default for channel estimates. Profile8 spends a
	// full byte per component and re-anchors with full-precision samples
	// every anchorInterval subcarriers — needed for precoding matrices,
	// whose columns can swap discontinuously where singular values cross.
	Profile4 = 4
	Profile8 = 8

	// anchorInterval is the Profile8 re-anchoring period.
	anchorInterval = 13

	// ampFloorDB clamps log-amplitudes of (near-)zero entries.
	ampFloorDB = -140.0

	// Adaptive quantizer parameters: signed deltas whose step grows
	// when the quantizer saturates and shrinks when deltas are small,
	// tracking both smooth and fast-fading channel profiles.
	stepGrow      = 1.6
	stepShrink    = 0.8
	ampInitStep   = 0.75 // dB
	ampMinStep    = 0.01
	ampMaxStep    = 12.0
	phaseInitStep = 0.1 // radians
	phaseMinStep  = 0.002
	phaseMaxStep  = 1.2
)

// ErrCorrupt is returned when a payload fails structural validation.
var ErrCorrupt = errors.New("csi: corrupt payload")

// quantizer is the adaptive delta quantizer state for one component
// stream (amplitude or phase of one antenna pair).
type quantizer struct {
	step, min, max float64
	value          float64
	levels         int  // quantized delta ∈ [−levels, +levels]
	wrap           bool // phase streams wrap modulo 2π
}

func newAmpQuantizer(first float64, levels int) *quantizer {
	step := ampInitStep
	if levels > 7 {
		step = ampInitStep / 8
	}
	return &quantizer{step: step, min: ampMinStep, max: ampMaxStep, value: first, levels: levels}
}

func newPhaseQuantizer(first float64, levels int) *quantizer {
	step := phaseInitStep
	if levels > 7 {
		step = phaseInitStep / 8
	}
	return &quantizer{step: step, min: phaseMinStep, max: phaseMaxStep, value: first, levels: levels, wrap: true}
}

// encode quantizes the delta to the next sample, updates internal state,
// and returns the 4-bit code.
func (q *quantizer) encode(next float64) int {
	delta := next - q.value
	if q.wrap {
		for delta > math.Pi {
			delta -= 2 * math.Pi
		}
		for delta < -math.Pi {
			delta += 2 * math.Pi
		}
	}
	code := int(math.Round(delta / q.step))
	if code > q.levels {
		code = q.levels
	} else if code < -q.levels {
		code = -q.levels
	}
	q.apply(code)
	return code
}

// apply advances the reconstruction by a code and adapts the step; both
// encoder and decoder run it, keeping them in lockstep.
func (q *quantizer) apply(code int) {
	q.value += float64(code) * q.step
	if q.wrap {
		for q.value > math.Pi {
			q.value -= 2 * math.Pi
		}
		for q.value < -math.Pi {
			q.value += 2 * math.Pi
		}
	}
	mag := code
	if mag < 0 {
		mag = -mag
	}
	switch {
	case mag >= q.levels-1:
		q.step *= stepGrow
	case mag <= q.levels/7:
		q.step *= stepShrink
	}
	if q.step < q.min {
		q.step = q.min
	} else if q.step > q.max {
		q.step = q.max
	}
}

// ampPhase splits a complex entry into clamped dB amplitude and phase.
func ampPhase(v complex128) (ampDB, phase float64) {
	a := cmplx.Abs(v)
	if a <= 0 {
		return ampFloorDB, 0
	}
	ampDB = 20 * math.Log10(a)
	if ampDB < ampFloorDB {
		ampDB = ampFloorDB
	}
	return ampDB, cmplx.Phase(v)
}

// EncodeMatrices serializes a per-subcarrier matrix series with adaptive
// delta modulation (Profile4) followed by DEFLATE. Use EncodePrecoder for
// precoding matrices, whose faster spectral variation needs Profile8.
func EncodeMatrices(ms []*linalg.Matrix) ([]byte, error) {
	return encodeMatrices(ms, Profile4)
}

// EncodePrecoder serializes a precoder's per-subcarrier matrices at the
// higher-rate Profile8.
func EncodePrecoder(ms []*linalg.Matrix) ([]byte, error) {
	return encodeMatrices(ms, Profile8)
}

func encodeMatrices(ms []*linalg.Matrix, profile int) ([]byte, error) {
	if len(ms) == 0 {
		return nil, errors.New("csi: empty series")
	}
	rows, cols := ms[0].Rows, ms[0].Cols
	for _, m := range ms {
		if m.Rows != rows || m.Cols != cols {
			return nil, errors.New("csi: inconsistent matrix shapes")
		}
	}
	if rows > 255 || cols > 255 || len(ms) > 65535 {
		return nil, errors.New("csi: dimensions exceed wire format")
	}

	var raw bytes.Buffer
	binary.Write(&raw, binary.LittleEndian, uint16(magic))
	raw.WriteByte(version)
	raw.WriteByte(uint8(profile))
	raw.WriteByte(uint8(rows))
	raw.WriteByte(uint8(cols))
	binary.Write(&raw, binary.LittleEndian, uint16(len(ms)))
	levels := 7
	if profile == Profile8 {
		levels = 127
	}

	// Per antenna pair: full-precision anchors, then one byte per
	// remaining subcarrier (amp nibble | phase nibble).
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			a0, p0 := ampPhase(ms[0].At(r, c))
			binary.Write(&raw, binary.LittleEndian, float32(a0))
			binary.Write(&raw, binary.LittleEndian, float32(p0))
			qa := newAmpQuantizer(a0, levels)
			qp := newPhaseQuantizer(p0, levels)
			for k := 1; k < len(ms); k++ {
				a, p := ampPhase(ms[k].At(r, c))
				if profile == Profile8 && k%anchorInterval == 0 {
					binary.Write(&raw, binary.LittleEndian, float32(a))
					binary.Write(&raw, binary.LittleEndian, float32(p))
					qa = newAmpQuantizer(a, levels)
					qp = newPhaseQuantizer(p, levels)
					continue
				}
				ca := qa.encode(a)
				cp := qp.encode(p)
				if profile == Profile8 {
					raw.WriteByte(byte(ca + 128))
					raw.WriteByte(byte(cp + 128))
				} else {
					raw.WriteByte(byte((ca+8)<<4 | (cp + 8)))
				}
			}
		}
	}

	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	mEncodes.Inc()
	mPayloadBytes.ObserveInt(out.Len())
	return out.Bytes(), nil
}

// DecodeMatrices reverses EncodeMatrices. The reconstruction is lossy (the
// quantizer's job) but structurally exact.
func DecodeMatrices(data []byte) ([]*linalg.Matrix, error) {
	ms, err := decodeMatrices(data)
	if err != nil {
		mDecodeFailures.Inc()
		return nil, err
	}
	mDecodes.Inc()
	return ms, nil
}

func decodeMatrices(data []byte) ([]*linalg.Matrix, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	buf := bytes.NewReader(raw)
	var mg uint16
	if err := binary.Read(buf, binary.LittleEndian, &mg); err != nil || mg != magic {
		return nil, ErrCorrupt
	}
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(buf, hdr); err != nil {
		return nil, ErrCorrupt
	}
	if hdr[0] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr[0])
	}
	profile := int(hdr[1])
	if profile != Profile4 && profile != Profile8 {
		return nil, fmt.Errorf("%w: unknown profile %d", ErrCorrupt, profile)
	}
	levels := 7
	if profile == Profile8 {
		levels = 127
	}
	rows, cols := int(hdr[2]), int(hdr[3])
	var nsc uint16
	if err := binary.Read(buf, binary.LittleEndian, &nsc); err != nil {
		return nil, ErrCorrupt
	}
	if rows == 0 || cols == 0 || nsc == 0 {
		return nil, ErrCorrupt
	}
	ms := make([]*linalg.Matrix, nsc)
	for k := range ms {
		ms[k] = linalg.NewMatrix(rows, cols)
	}
	for rr := 0; rr < rows; rr++ {
		for cc := 0; cc < cols; cc++ {
			var a0, p0 float32
			if err := binary.Read(buf, binary.LittleEndian, &a0); err != nil {
				return nil, ErrCorrupt
			}
			if err := binary.Read(buf, binary.LittleEndian, &p0); err != nil {
				return nil, ErrCorrupt
			}
			qa := newAmpQuantizer(float64(a0), levels)
			qp := newPhaseQuantizer(float64(p0), levels)
			ms[0].Set(rr, cc, polar(float64(a0), float64(p0)))
			for k := 1; k < int(nsc); k++ {
				if profile == Profile8 && k%anchorInterval == 0 {
					var aa, pp float32
					if err := binary.Read(buf, binary.LittleEndian, &aa); err != nil {
						return nil, ErrCorrupt
					}
					if err := binary.Read(buf, binary.LittleEndian, &pp); err != nil {
						return nil, ErrCorrupt
					}
					qa = newAmpQuantizer(float64(aa), levels)
					qp = newPhaseQuantizer(float64(pp), levels)
					ms[k].Set(rr, cc, polar(float64(aa), float64(pp)))
					continue
				}
				if profile == Profile8 {
					ba, err := buf.ReadByte()
					if err != nil {
						return nil, ErrCorrupt
					}
					bp, err := buf.ReadByte()
					if err != nil {
						return nil, ErrCorrupt
					}
					qa.apply(int(ba) - 128)
					qp.apply(int(bp) - 128)
				} else {
					b, err := buf.ReadByte()
					if err != nil {
						return nil, ErrCorrupt
					}
					qa.apply(int(b>>4) - 8)
					qp.apply(int(b&0x0f) - 8)
				}
				ms[k].Set(rr, cc, polar(qa.value, qp.value))
			}
		}
	}
	return ms, nil
}

func polar(ampDB, phase float64) complex128 {
	if ampDB <= ampFloorDB {
		return 0
	}
	return cmplx.Rect(math.Pow(10, ampDB/20), phase)
}

// EncodeLink compresses a channel estimate's frequency response.
func EncodeLink(l *channel.Link) ([]byte, error) { return EncodeMatrices(l.Subcarriers) }

// DecodeLink reconstructs a channel estimate from EncodeLink output. Taps
// are not recovered (the estimate lives in the frequency domain) and the
// mean gain is recomputed from the reconstruction.
func DecodeLink(data []byte) (*channel.Link, error) {
	ms, err := DecodeMatrices(data)
	if err != nil {
		return nil, err
	}
	var sum float64
	n := 0
	for _, m := range ms {
		for _, v := range m.Data {
			sum += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	return &channel.Link{Subcarriers: ms, MeanGainLinear: sum / float64(n)}, nil
}

// RawSize returns the size in bytes of the uncompressed reference format
// the compression ratio is measured against: 16-bit I and Q per entry, as
// produced by a WARP-class radio's channel sounder.
func RawSize(rows, cols, subcarriers int) int { return rows * cols * subcarriers * 4 }

// Ratio returns raw/compressed as a compression ratio.
func Ratio(rawBytes, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return 0
	}
	return float64(rawBytes) / float64(compressedBytes)
}

// ReconstructionErrorDB measures codec fidelity: the total squared error
// between original and reconstruction relative to the original's power, in
// dB (more negative is better).
func ReconstructionErrorDB(orig, rec []*linalg.Matrix) float64 {
	var errPow, sigPow float64
	for k := range orig {
		d := rec[k].Sub(orig[k])
		errPow += sq(d.FrobeniusNorm())
		sigPow += sq(orig[k].FrobeniusNorm())
	}
	if sigPow == 0 {
		return 0
	}
	return 10 * math.Log10(errPow/sigPow)
}

func sq(x float64) float64 { return x * x }
