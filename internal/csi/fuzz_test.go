package csi

import "testing"

// FuzzDecodeMatrices: arbitrary payloads must fail cleanly or decode into
// structurally valid matrices — never panic.
func FuzzDecodeMatrices(f *testing.F) {
	f.Add([]byte{})
	l := testLink(1, 2, 4)
	good, err := EncodeLink(l)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x55
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := DecodeMatrices(data)
		if err != nil {
			return
		}
		if len(ms) == 0 {
			t.Fatal("decoded empty series without error")
		}
		rows, cols := ms[0].Rows, ms[0].Cols
		for _, m := range ms {
			if m.Rows != rows || m.Cols != cols || len(m.Data) != rows*cols {
				t.Fatal("decoded inconsistent shapes")
			}
		}
	})
}
