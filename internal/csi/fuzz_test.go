package csi

import (
	"testing"

	"copa/internal/rng"
)

// FuzzDecodeMatrices: arbitrary payloads must fail cleanly or decode into
// structurally valid matrices — never panic.
// FuzzDecodeDelta: arbitrary delta frames applied to a fixed base must
// fail cleanly (ErrCorrupt / ErrStaleEpoch) or reconstruct structurally
// valid matrices — never panic. Seeds cover the empty frame, a valid
// frame, a truncated frame, and a stale-epoch frame.
func FuzzDecodeDelta(f *testing.F) {
	base := testLink(21, 2, 4)
	drifted := base.Clone()
	drifted.EvolveRho(rng.New(3), 0.99)
	good, err := EncodeDelta(base.Subcarriers, drifted.Subcarriers, 7, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)/2])
	stale, err := EncodeDelta(base.Subcarriers, drifted.Subcarriers, 6, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(stale)
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x55
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, _, err := DecodeDelta(data, base.Subcarriers, 7)
		if err != nil {
			return
		}
		if len(rec) != len(base.Subcarriers) {
			t.Fatalf("reconstructed %d matrices from %d-subcarrier base", len(rec), len(base.Subcarriers))
		}
		for _, m := range rec {
			if m.Rows != 2 || m.Cols != 4 || len(m.Data) != 8 {
				t.Fatal("reconstructed inconsistent shapes")
			}
		}
	})
}

func FuzzDecodeMatrices(f *testing.F) {
	f.Add([]byte{})
	l := testLink(1, 2, 4)
	good, err := EncodeLink(l)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x55
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := DecodeMatrices(data)
		if err != nil {
			return
		}
		if len(ms) == 0 {
			t.Fatal("decoded empty series without error")
		}
		rows, cols := ms[0].Rows, ms[0].Cols
		for _, m := range ms {
			if m.Rows != rows || m.Cols != cols || len(m.Data) != rows*cols {
				t.Fatal("decoded inconsistent shapes")
			}
		}
	})
}
