package csi

import (
	"math"
	"testing"
	"testing/quick"

	"copa/internal/channel"
	"copa/internal/linalg"
	"copa/internal/precoding"
	"copa/internal/rng"
)

func testLink(seed int64, nRx, nTx int) *channel.Link {
	return channel.NewLink(rng.New(seed), nRx, nTx, channel.DBToLinear(-60))
}

func TestRoundTripStructure(t *testing.T) {
	l := testLink(1, 2, 4)
	data, err := EncodeLink(l)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeLink(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.NRx() != 2 || rec.NTx() != 4 || len(rec.Subcarriers) != len(l.Subcarriers) {
		t.Fatalf("shape mismatch: %dx%d, %d subcarriers", rec.NRx(), rec.NTx(), len(rec.Subcarriers))
	}
}

func TestRoundTripFidelity(t *testing.T) {
	// The codec must reconstruct channels well enough to precode from:
	// relative error below −15 dB across a variety of links.
	for seed := int64(0); seed < 10; seed++ {
		l := testLink(seed, 2, 4)
		data, err := EncodeLink(l)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeLink(data)
		if err != nil {
			t.Fatal(err)
		}
		errDB := ReconstructionErrorDB(l.Subcarriers, rec.Subcarriers)
		if errDB > -15 {
			t.Errorf("seed %d: reconstruction error %.1f dB, want ≤ −15", seed, errDB)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	// Must beat the paper's reported 2× on testbed-like channels.
	var totalRaw, totalComp int
	for seed := int64(0); seed < 10; seed++ {
		l := testLink(100+seed, 2, 4)
		data, err := EncodeLink(l)
		if err != nil {
			t.Fatal(err)
		}
		totalRaw += RawSize(2, 4, len(l.Subcarriers))
		totalComp += len(data)
	}
	ratio := Ratio(totalRaw, totalComp)
	if ratio < 2 {
		t.Errorf("compression ratio %.2f, want ≥ 2", ratio)
	}
	t.Logf("mean compression ratio: %.2f", ratio)
}

func TestPrecoderRoundTrip(t *testing.T) {
	l := testLink(7, 2, 4)
	p, err := precoding.Beamforming(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePrecoder(p.PerSubcarrier)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeMatrices(data)
	if err != nil {
		t.Fatal(err)
	}
	errDB := ReconstructionErrorDB(p.PerSubcarrier, rec)
	if errDB > -12 {
		t.Errorf("precoder reconstruction error %.1f dB", errDB)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeMatrices(nil); err == nil {
		t.Error("nil payload should fail")
	}
	if _, err := DecodeMatrices([]byte{1, 2, 3}); err == nil {
		t.Error("garbage should fail")
	}
	// Truncated valid payload.
	l := testLink(9, 1, 1)
	data, err := EncodeLink(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMatrices(data[:len(data)/3]); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := EncodeMatrices(nil); err == nil {
		t.Error("empty series should fail")
	}
	ragged := []*linalg.Matrix{linalg.NewMatrix(2, 2), linalg.NewMatrix(3, 2)}
	if _, err := EncodeMatrices(ragged); err == nil {
		t.Error("ragged series should fail")
	}
}

func TestZeroChannel(t *testing.T) {
	ms := []*linalg.Matrix{linalg.NewMatrix(2, 2), linalg.NewMatrix(2, 2)}
	data, err := EncodeMatrices(ms)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeMatrices(data)
	if err != nil {
		t.Fatal(err)
	}
	for k := range rec {
		if rec[k].MaxAbs() > 1e-6 {
			t.Errorf("zero channel reconstructed nonzero: %g", rec[k].MaxAbs())
		}
	}
}

func TestQuantizerPhaseWrap(t *testing.T) {
	q := newPhaseQuantizer(3.0, 7)
	// Target just past −π: the wrapped delta is small and positive.
	code := q.encode(-3.1)
	if code < 0 {
		t.Errorf("wrap-aware delta should be positive, code=%d", code)
	}
	if q.value < -math.Pi || q.value > math.Pi {
		t.Errorf("quantizer value %g outside [-π, π]", q.value)
	}
}

func TestQuickRoundTripNeverCorrupts(t *testing.T) {
	f := func(seed int64, rxRaw, txRaw uint8) bool {
		nRx := 1 + int(rxRaw%4)
		nTx := 1 + int(txRaw%4)
		l := channel.NewLink(rng.New(seed), nRx, nTx, channel.DBToLinear(-55))
		data, err := EncodeLink(l)
		if err != nil {
			return false
		}
		rec, err := DecodeLink(data)
		if err != nil {
			return false
		}
		return rec.NRx() == nRx && rec.NTx() == nTx &&
			ReconstructionErrorDB(l.Subcarriers, rec.Subcarriers) < -10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNullingFromCompressedCSIStillWorks(t *testing.T) {
	// End-to-end: a follower's CSI travels compressed inside an ITS
	// frame; nulling computed from the decompressed CSI must still
	// suppress interference substantially.
	src := rng.New(33)
	own := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(-55))
	cross := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(-58))

	data, err := EncodeLink(cross)
	if err != nil {
		t.Fatal(err)
	}
	crossRec, err := DecodeLink(data)
	if err != nil {
		t.Fatal(err)
	}
	p, err := precoding.Nulling(own, crossRec, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := precoding.ResidualAtVictim(cross, p, []float64{1, 1})
	var mean float64
	for _, r := range res {
		mean += r
	}
	mean /= float64(len(res))
	unnulled := channel.DBToLinear(-58) * 4
	redDB := channel.LinearToDB(mean / unnulled)
	if redDB > -10 {
		t.Errorf("nulling from compressed CSI only reduces %.1f dB", redDB)
	}
}

func BenchmarkEncodeLink4x2(b *testing.B) {
	l := testLink(50, 2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeLink(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLink4x2(b *testing.B) {
	l := testLink(51, 2, 4)
	data, err := EncodeLink(l)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeLink(data); err != nil {
			b.Fatal(err)
		}
	}
}
