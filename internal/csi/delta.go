package csi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"copa/internal/linalg"
)

// Delta-CSI frames (internal/drift): once a session is established, the
// follower's channel drifts slowly between epochs, so re-sending a full
// CSI frame wastes control airtime. A delta frame carries the
// difference matrices next − base against the last full frame both
// sides hold — and because the diff of a tapped-delay channel is itself
// band-limited in frequency, the encoder subsamples it 1:deltaStride
// across subcarriers and the decoder reconstructs the skipped diffs by
// linear interpolation. The interpolation error is a fraction of the
// diff magnitude, which in the low-drift regime the frames exist for is
// already tens of dB below the channel, so the reconstruction stays
// well inside the codec's own quantization noise while the payload
// shrinks by ~the stride factor.
//
// The frame is epoch-stamped on both ends: the receiver rejects a delta
// built against a base epoch it no longer holds (ErrStaleEpoch) instead
// of silently applying it to the wrong reference, which would corrupt
// the reconstructed channel for the rest of the session.

const (
	deltaMagic   = 0xC0FD
	deltaVersion = 1
	// deltaHeaderLen = magic(2) + version(1) + baseEpoch(8) +
	// nextEpoch(8) + stride(1).
	deltaHeaderLen = 20
	// deltaStride is the frequency-domain subsampling factor applied to
	// the diff series. The decoder reads the stride from the frame, so
	// this can change without a version bump.
	deltaStride = 4
)

// ErrStaleEpoch is returned by DecodeDelta when the frame was encoded
// against a different base epoch than the receiver holds — the receiver
// must request a full frame instead.
var ErrStaleEpoch = errors.New("csi: delta frame built against a stale base epoch")

// deltaSampleIndices returns the subcarrier indices a stride-subsampled
// delta frame carries: every stride-th index plus the final one, so the
// decoder always interpolates between two carried anchors.
func deltaSampleIndices(n, stride int) []int {
	if stride < 1 {
		stride = 1
	}
	idx := make([]int, 0, n/stride+2)
	for k := 0; k < n; k += stride {
		idx = append(idx, k)
	}
	if last := n - 1; len(idx) == 0 || idx[len(idx)-1] != last {
		idx = append(idx, last)
	}
	return idx
}

// EncodeDelta encodes next − base as a delta frame. base and next must
// be shape-identical matrix series (same count, same dimensions);
// baseEpoch identifies the full frame the receiver will apply the delta
// to, nextEpoch the epoch the reconstruction is valid for.
func EncodeDelta(base, next []*linalg.Matrix, baseEpoch, nextEpoch int64) ([]byte, error) {
	if len(base) == 0 || len(base) != len(next) {
		return nil, fmt.Errorf("csi: delta series mismatch: %d base vs %d next", len(base), len(next))
	}
	rows, cols := base[0].Rows, base[0].Cols
	for i := range base {
		b, n := base[i], next[i]
		if b.Rows != rows || b.Cols != cols || n.Rows != rows || n.Cols != cols {
			return nil, fmt.Errorf("csi: delta shape mismatch at subcarrier %d: %dx%d vs %dx%d",
				i, b.Rows, b.Cols, n.Rows, n.Cols)
		}
	}
	idx := deltaSampleIndices(len(base), deltaStride)
	diffs := make([]*linalg.Matrix, len(idx))
	for s, k := range idx {
		d := linalg.NewMatrix(rows, cols)
		for j := range d.Data {
			d.Data[j] = next[k].Data[j] - base[k].Data[j]
		}
		diffs[s] = d
	}
	payload, err := EncodeMatrices(diffs)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, deltaHeaderLen, deltaHeaderLen+len(payload))
	binary.LittleEndian.PutUint16(frame[0:2], deltaMagic)
	frame[2] = deltaVersion
	binary.LittleEndian.PutUint64(frame[3:11], uint64(baseEpoch))
	binary.LittleEndian.PutUint64(frame[11:19], uint64(nextEpoch))
	frame[19] = deltaStride
	return append(frame, payload...), nil
}

// DecodeDelta applies a delta frame to the base series the receiver
// holds (stamped baseEpoch) and returns the reconstructed series plus
// the epoch it is valid for. Structural failures return ErrCorrupt; a
// frame built against a different base epoch returns ErrStaleEpoch and
// the caller should fall back to requesting a full CSI frame.
func DecodeDelta(data []byte, base []*linalg.Matrix, baseEpoch int64) ([]*linalg.Matrix, int64, error) {
	if len(data) < deltaHeaderLen {
		return nil, 0, fmt.Errorf("%w: truncated delta header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint16(data[0:2]) != deltaMagic {
		return nil, 0, fmt.Errorf("%w: bad delta magic", ErrCorrupt)
	}
	if data[2] != deltaVersion {
		return nil, 0, fmt.Errorf("%w: unsupported delta version %d", ErrCorrupt, data[2])
	}
	frameBase := int64(binary.LittleEndian.Uint64(data[3:11]))
	nextEpoch := int64(binary.LittleEndian.Uint64(data[11:19]))
	stride := int(data[19])
	if stride < 1 {
		return nil, 0, fmt.Errorf("%w: zero delta stride", ErrCorrupt)
	}
	if frameBase != baseEpoch {
		return nil, 0, fmt.Errorf("%w: frame base %d, held base %d", ErrStaleEpoch, frameBase, baseEpoch)
	}
	if len(base) == 0 {
		return nil, 0, fmt.Errorf("%w: empty base series", ErrCorrupt)
	}
	diffs, err := DecodeMatrices(data[deltaHeaderLen:])
	if err != nil {
		return nil, 0, err
	}
	idx := deltaSampleIndices(len(base), stride)
	if len(diffs) != len(idx) {
		return nil, 0, fmt.Errorf("%w: delta carries %d matrices, stride %d over %d subcarriers needs %d",
			ErrCorrupt, len(diffs), stride, len(base), len(idx))
	}
	rows, cols := base[0].Rows, base[0].Cols
	for i, b := range base {
		if b.Rows != rows || b.Cols != cols {
			return nil, 0, fmt.Errorf("%w: inconsistent base shapes at subcarrier %d", ErrCorrupt, i)
		}
	}
	for s, d := range diffs {
		if d.Rows != rows || d.Cols != cols {
			return nil, 0, fmt.Errorf("%w: delta shape %dx%d vs base %dx%d at anchor %d",
				ErrCorrupt, d.Rows, d.Cols, rows, cols, s)
		}
	}
	out := make([]*linalg.Matrix, len(base))
	// Walk anchor segments, linearly interpolating the diff between
	// consecutive carried anchors.
	seg := 0
	for k := range base {
		for seg+1 < len(idx) && idx[seg+1] < k {
			seg++
		}
		a := idx[seg]
		b := a
		da, db := diffs[seg], diffs[seg]
		if seg+1 < len(idx) {
			b, db = idx[seg+1], diffs[seg+1]
		}
		var w float64
		if b > a {
			w = float64(k-a) / float64(b-a)
		}
		m := linalg.NewMatrix(rows, cols)
		for j := range m.Data {
			d := da.Data[j] + complex(w, 0)*(db.Data[j]-da.Data[j])
			m.Data[j] = base[k].Data[j] + d
		}
		out[k] = m
	}
	return out, nextEpoch, nil
}
