package csi

import (
	"errors"
	"testing"

	"copa/internal/rng"
)

func TestDeltaRoundTrip(t *testing.T) {
	l := testLink(7, 2, 4)
	drifted := l.Clone()
	drifted.EvolveRho(rng.New(99), 0.995)

	frame, err := EncodeDelta(l.Subcarriers, drifted.Subcarriers, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec, epoch, err := DecodeDelta(frame, l.Subcarriers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 {
		t.Fatalf("epoch = %d, want 4", epoch)
	}
	if len(rec) != len(drifted.Subcarriers) {
		t.Fatalf("reconstructed %d matrices, want %d", len(rec), len(drifted.Subcarriers))
	}
	if errDB := ReconstructionErrorDB(drifted.Subcarriers, rec); errDB > -10 {
		t.Fatalf("delta reconstruction error %.1f dB, want < -10 dB", errDB)
	}
}

func TestDeltaSmallerThanFull(t *testing.T) {
	l := testLink(11, 2, 4)
	drifted := l.Clone()
	drifted.EvolveRho(rng.New(5), 0.999)

	full, err := EncodeMatrices(drifted.Subcarriers)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := EncodeDelta(l.Subcarriers, drifted.Subcarriers, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("delta frame %dB not smaller than full frame %dB", len(delta), len(full))
	}
}

func TestDeltaStaleEpoch(t *testing.T) {
	l := testLink(13, 2, 2)
	drifted := l.Clone()
	drifted.EvolveRho(rng.New(6), 0.99)

	frame, err := EncodeDelta(l.Subcarriers, drifted.Subcarriers, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeDelta(frame, l.Subcarriers, 4); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("held base 4 vs frame base 5: got %v, want ErrStaleEpoch", err)
	}
}

func TestDeltaTruncationAndCorruption(t *testing.T) {
	l := testLink(17, 2, 2)
	drifted := l.Clone()
	drifted.EvolveRho(rng.New(8), 0.99)

	frame, err := EncodeDelta(l.Subcarriers, drifted.Subcarriers, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, deltaHeaderLen - 1, deltaHeaderLen, len(frame) / 2} {
		if _, _, err := DecodeDelta(frame[:cut], l.Subcarriers, 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
	bad := append([]byte(nil), frame...)
	bad[0] ^= 0xFF
	if _, _, err := DecodeDelta(bad, l.Subcarriers, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

func TestDeltaShapeMismatch(t *testing.T) {
	a := testLink(19, 2, 4)
	b := testLink(19, 2, 2)
	if _, err := EncodeDelta(a.Subcarriers, b.Subcarriers, 0, 1); err == nil {
		t.Fatal("encoding mismatched shapes succeeded")
	}
	drifted := a.Clone()
	drifted.EvolveRho(rng.New(9), 0.99)
	frame, err := EncodeDelta(a.Subcarriers, drifted.Subcarriers, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeDelta(frame, b.Subcarriers, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("base with wrong shape: got %v, want ErrCorrupt", err)
	}
}
