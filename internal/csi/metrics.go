package csi

import "copa/internal/obs"

// Handles resolved at init; the codec only touches atomics per call.
var (
	mEncodes        = obs.C("copa.csi.encodes")
	mDecodes        = obs.C("copa.csi.decodes")
	mDecodeFailures = obs.C("copa.csi.decode_failures")
	// mPayloadBytes records compressed payload sizes — the quantity behind
	// the paper's ~2× compression-ratio claim.
	mPayloadBytes = obs.H("copa.csi.payload_bytes", obs.ExpBuckets(16, 2, 12))
)
