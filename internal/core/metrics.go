package core

import "copa/internal/obs"

// Pre-resolved observability handles for the AP pipeline. All are
// registered once at package init so the per-TXOP and per-exchange paths
// never look a metric up by name.
var (
	// CSI cache behaviour (§3.1 coherence-time staleness).
	mCacheHits      = obs.C("copa.core.cache_hits")
	mCacheMisses    = obs.C("copa.core.cache_misses")
	mCacheEvictions = obs.C("copa.core.cache_evictions")

	// ITS exchange outcomes (Fig. 5 three-frame negotiation).
	mSessions           = obs.C("copa.its.sessions")
	mSessionFailures    = obs.C("copa.its.session_failures")
	mSessionsConcurrent = obs.C("copa.its.sessions_concurrent")
	mControlBytes       = obs.H("copa.its.control_bytes", obs.ExpBuckets(64, 2, 12))
	mExchangeSeconds    = obs.T("copa.its.exchange_seconds")

	// Per-cause terminal failures: the aggregate above is kept for
	// compatibility; these attribute it (timeout vs CRC vs the three
	// protocol stages) on /debug/metrics.
	mFailReqBuild       = obs.C("copa.its.session_failures_req_build")
	mFailLeaderDecision = obs.C("copa.its.session_failures_leader_decision")
	mFailAckHandle      = obs.C("copa.its.session_failures_ack_handle")
	mFailTimeout        = obs.C("copa.its.session_failures_timeout")
	mFailCRC            = obs.C("copa.its.session_failures_crc")

	// Transport behaviour of the exchange engine over a lossy medium:
	// retryable leg events, retransmissions, and CSMA fallbacks.
	mLegTimeouts = obs.C("copa.its.leg_timeouts")
	mLegCRCDrops = obs.C("copa.its.leg_crc_drops")
	mRetries     = obs.C("copa.its.retries")
	mFallbacks   = obs.C("copa.its.fallbacks")

	// Schedule and cluster simulation loops.
	mScheduleRuns    = obs.C("copa.core.schedule_runs")
	mScheduleSeconds = obs.T("copa.core.schedule_seconds")
	mClusterRounds   = obs.C("copa.core.cluster_rounds")
	mClusterSitOuts  = obs.C("copa.core.cluster_sitouts")
)
