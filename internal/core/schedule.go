package core

import (
	"fmt"
	"math"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/obs"
	"copa/internal/power"
)

// ScheduleConfig drives a time-domain simulation of a COPA pair: the
// physical channels evolve continuously at the environment's coherence
// time, the clients sound the channel every refresh interval, and the APs
// renegotiate via a fresh ITS exchange after each sounding — exactly the
// cadence trade-off behind Table 1 and the §3.1 discussion of coherence
// time.
type ScheduleConfig struct {
	// Duration is the simulated medium time.
	Duration time.Duration
	// Coherence is the environment's channel coherence time (how fast
	// the truth drifts); Inf for a static environment.
	Coherence time.Duration
	// RefreshInterval is how often CSI is re-measured and the strategy
	// renegotiated. Defaults to Coherence (the paper refreshes once per
	// coherence time).
	RefreshInterval time.Duration
}

// ScheduleResult summarizes a schedule run.
type ScheduleResult struct {
	// MeanPerClientBps is each client's long-run average throughput.
	MeanPerClientBps [2]float64
	// Exchanges counts ITS negotiations performed.
	Exchanges int
	// ConcurrentFraction is the share of exchanges that chose
	// concurrency.
	ConcurrentFraction float64
	// TXOPs is the number of transmit opportunities simulated.
	TXOPs int
	// ControlBytes accumulates ITS traffic.
	ControlBytes int
}

// Aggregate returns the sum of both clients' mean throughputs.
func (r ScheduleResult) Aggregate() float64 {
	return r.MeanPerClientBps[0] + r.MeanPerClientBps[1]
}

// RunSchedule simulates the pair for cfg.Duration of medium time. Between
// renegotiations the pair keeps transmitting with the stale agreement
// while the true channel drifts away from the CSI it was computed on — so
// short coherence times with long refresh intervals lose throughput, and
// frequent refreshes pay more ITS overhead (the tension Table 1
// quantifies).
func (p *Pair) RunSchedule(cfg ScheduleConfig) (ScheduleResult, error) {
	if cfg.Duration <= 0 {
		return ScheduleResult{}, fmt.Errorf("core: non-positive duration")
	}
	span := obs.Trace("core.schedule")
	defer span.End()
	defer mScheduleSeconds.Begin().End()
	mScheduleRuns.Inc()
	refresh := cfg.RefreshInterval
	if refresh <= 0 {
		refresh = cfg.Coherence
	}
	if refresh <= 0 || refresh > cfg.Duration {
		refresh = cfg.Duration
	}
	coherenceSec := math.Inf(1)
	if cfg.Coherence > 0 {
		coherenceSec = cfg.Coherence.Seconds()
	}

	var res ScheduleResult
	var sumTput [2]float64
	end := p.clk + cfg.Duration
	ovm := mac.DefaultOverheadModel()
	noise := channel.NoisePerSubcarrierMW()

	for p.clk < end {
		p.MeasureCSI()
		session, err := p.RunExchange(uint32(mac.TxOp.Microseconds()))
		if err != nil {
			return res, fmt.Errorf("exchange at t=%v: %w", p.clk, err)
		}
		res.Exchanges++
		res.ControlBytes += session.ControlBytes
		if session.Concurrent {
			res.ConcurrentFraction++
		}

		// Run TXOPs until the next refresh, the truth drifting under the
		// negotiated transmissions.
		next := p.clk + refresh
		if next > end {
			next = end
		}
		turn := session.LeaderIdx
		for p.clk < next {
			res.TXOPs++
			if session.Fallback {
				// Retry budget exhausted: plain CSMA turn-taking until the
				// next sounding gives the pair another chance.
				if tx, err := p.AP[turn].CSMATransmission(p.clk); err == nil {
					g := power.GoodputFor(p.Truth.H[turn][turn], tx, nil, nil, noise)
					sumTput[turn] += g * (1 - mac.CSMACTSOverhead() - mac.DataOverheadFraction)
				}
				turn = 1 - turn
			} else if session.Concurrent {
				oh := ovm.COPAConcOverhead(refresh)
				for j := 0; j < 2; j++ {
					g := power.GoodputFor(p.Truth.H[j][j], session.Tx[j], p.Truth.H[1-j][j], session.Tx[1-j], noise)
					sumTput[j] += g * (1 - oh - mac.DataOverheadFraction)
				}
			} else {
				// Alternating sequential turns; a missing descriptor
				// (no fresh CSI at ACK time) idles that AP's turn.
				oh := ovm.COPASeqOverhead(refresh)
				if tx := session.Tx[turn]; tx != nil {
					g := power.GoodputFor(p.Truth.H[turn][turn], tx, nil, nil, noise)
					sumTput[turn] += g * (1 - oh - mac.DataOverheadFraction)
				}
				turn = 1 - turn
			}
			p.Advance(mac.TxOp, coherenceSec)
		}
	}

	total := res.TXOPs
	if total > 0 {
		// Sequential TXOPs carry one client each; the per-client mean is
		// normalized over all TXOPs, matching the airtime-share model.
		for j := 0; j < 2; j++ {
			res.MeanPerClientBps[j] = sumTput[j] / float64(total)
		}
	}
	if res.Exchanges > 0 {
		res.ConcurrentFraction /= float64(res.Exchanges)
	}
	return res, nil
}
