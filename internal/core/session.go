package core

import (
	"context"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/medium"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Session is the result of one complete ITS exchange between two APs
// (Fig. 5): the elected leader, the negotiated strategy, and the
// transmissions both sides agreed on.
type Session struct {
	// LeaderIdx is the AP (0 or 1, in caller coordinates) that won
	// contention and led the exchange.
	LeaderIdx int
	// Outcome is the leader's chosen strategy with predicted
	// throughputs. Its client indices are in leader-first order.
	Outcome strategy.Outcome
	// Tx[i] is AP i's transmission descriptor (caller coordinates).
	// Tx[follower] is nil for sequential decisions: the follower defers
	// for the rest of the coherence time.
	Tx [2]*precoding.Transmission
	// Concurrent mirrors Outcome.Concurrent.
	Concurrent bool
	// ControlBytes is the total size of the ITS frames transmitted for
	// this session, including retransmissions, for overhead accounting.
	ControlBytes int
	// Retries is the number of retransmission attempts the exchange
	// needed (zero over a perfect medium).
	Retries int
	// Fallback reports the exchange exhausted its retry budget: no
	// strategy was negotiated and the pair reverts to plain CSMA for
	// the remainder of the coherence time. Outcome and Tx are zero.
	Fallback bool
	// Cause classifies a fallback's terminal failure (CauseNone on a
	// successful exchange).
	Cause FailCause
	// ExchangeAirtime is the virtual medium time the exchange consumed:
	// frame airtimes, turnarounds, timeout waits and backoffs.
	ExchangeAirtime time.Duration
}

// Pair wires two APs and their clients' true channels together for
// simulation: it lets the APs "overhear" client transmissions to populate
// their caches, then runs exchanges.
type Pair struct {
	AP    [2]*AP
	Truth *channel.Deployment
	// Med is the control-plane transport ITS frames cross. NewPair
	// installs a Perfect in-memory medium (today's lossless behaviour);
	// swap in a medium.Faulty to study the protocol under impairments.
	Med medium.Medium
	// Retry bounds the exchange engine's persistence against loss.
	Retry RetryPolicy
	clk   time.Duration
	src   *rng.Source
	imp   channel.Impairments
}

// NewPair builds two COPA APs on a deployment. Addresses are synthesized
// from the pair's seed; both APs use the given selection mode.
func NewPair(dep *channel.Deployment, imp channel.Impairments, coherence time.Duration, mode strategy.Mode, src *rng.Source) *Pair {
	mk := func(b byte) mac.Addr { return mac.Addr{0x02, 0xC0, 0xFA, 0, 0, b} }
	p := &Pair{Truth: dep, src: src, imp: imp, Med: medium.NewPerfect(), Retry: DefaultRetryPolicy()}
	for i := 0; i < 2; i++ {
		p.AP[i] = NewAP(mk(byte(i)), mk(byte(0x10+i)), dep.Scenario, imp, coherence, mode)
	}
	return p
}

// Clock returns the pair's virtual time.
func (p *Pair) Clock() time.Duration { return p.clk }

// Advance moves virtual time forward and evolves the physical channels at
// the given coherence time (Inf for a static environment).
func (p *Pair) Advance(dt time.Duration, coherence float64) {
	p.clk += dt
	if dt <= 0 {
		return
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			p.Truth.H[i][j].Evolve(p.src.Split(uint64(p.clk)^uint64(i*2+j)), dt.Seconds(), coherence)
		}
	}
}

// MeasureCSI models Step 1 of Fig. 5: both clients transmit (ACKs,
// uplink traffic), and both APs overhear and cache reciprocal channel
// estimates toward both clients.
func (p *Pair) MeasureCSI() {
	for i := 0; i < 2; i++ { // AP index
		for j := 0; j < 2; j++ { // client index
			// The client→AP channel is the transpose of AP→client truth;
			// the AP measures it with estimation noise and stores the
			// reciprocal (AP→client) link.
			uplink := p.Truth.H[i][j].Transpose()
			measured := p.imp.EstimateCSI(p.src.Split(uint64(0xC5)+uint64(i*2+j)+uint64(p.clk)), uplink)
			p.AP[i].ObserveTransmission(p.AP[j].ClientAddr, measured, p.clk)
		}
	}
}

// RunExchange performs one full ITS exchange: contention elects a leader
// (uniformly at random, as DCF does), then INIT → REQ → ACK cross the
// pair's medium as real frames, with airtime-derived per-leg timeouts
// and bounded retries. The returned session's Tx are in caller
// coordinates (index 0 = p.AP[0]).
//
// Over a lossless medium this is behaviour-identical to the old
// synchronous exchange. Over a lossy one, transport failures that
// outlive the retry budget return a Fallback session (nil error): the
// pair reverts to plain CSMA for the rest of the coherence time.
// Protocol failures (no fresh CSI, infeasible strategy) still error.
func (p *Pair) RunExchange(airtimeUS uint32) (*Session, error) {
	return p.RunExchangeContext(context.Background(), airtimeUS)
}

// RunExchangeContext is RunExchange carrying a trace context: when ctx
// holds a sampled trace (obs.StartSpan upstream) the exchange and its
// REQ/ACK legs record hierarchical child spans stitched into the
// caller's trace; with a plain context it behaves exactly like
// RunExchange.
func (p *Pair) RunExchangeContext(ctx context.Context, airtimeUS uint32) (*Session, error) {
	ctx, span := startExSpan(ctx, "its.exchange")
	timing := mExchangeSeconds.Begin()
	mSessions.Inc()
	leader := p.src.Intn(2)
	follower := 1 - leader

	res, err := runExchangeOverMedium(ctx, p.med(), p.AP[leader], p.AP[follower], airtimeUS, p.clk, p.Retry)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	s := &Session{
		LeaderIdx:       leader,
		ControlBytes:    res.ControlBytes,
		Retries:         res.Retries,
		ExchangeAirtime: res.Airtime,
	}
	if res.Fallback {
		s.Fallback = true
		s.Cause = res.Cause
		span.EndErr(errExhausted)
		timing.End()
		return s, nil
	}
	s.Outcome = res.dec.Outcome
	s.Concurrent = res.ack.Decision == mac.DecideConcurrent
	s.Tx[leader] = res.dec.LeaderTx
	// For sequential verdicts folTx is the follower's solo COPA-SEQ
	// transmission for its own (deferred) turn.
	s.Tx[follower] = res.folTx
	if s.Concurrent {
		mSessionsConcurrent.Inc()
	}
	mControlBytes.ObserveInt(s.ControlBytes)
	timing.End()
	span.End()
	return s, nil
}

// med returns the pair's medium, defaulting to a fresh Perfect one so
// zero-valued pairs keep working.
func (p *Pair) med() medium.Medium {
	if p.Med == nil {
		p.Med = medium.NewPerfect()
	}
	return p.Med
}

// MeasuredThroughputs scores a session's transmissions on the pair's true
// channels, returning per-client effective throughput in caller
// coordinates (airtime share and MAC overhead included). For sequential
// sessions each transmitting AP is scored alone at half airtime; a nil
// follower transmission contributes zero (it defers this TXOP). Fallback
// sessions score as plain CSMA: stock beamforming, turn taking,
// CTS-to-self overhead — the paper's baseline.
func (p *Pair) MeasuredThroughputs(s *Session) [2]float64 {
	noise := channel.NoisePerSubcarrierMW()
	ovm := mac.DefaultOverheadModel()
	var out [2]float64
	if s.Fallback {
		return p.CSMAThroughputs()
	}
	if s.Concurrent {
		oh := ovm.COPAConcOverhead(strategy.DefaultCoherence)
		for j := 0; j < 2; j++ {
			g := power.GoodputFor(p.Truth.H[j][j], s.Tx[j], p.Truth.H[1-j][j], s.Tx[1-j], noise)
			out[j] = g * (1 - oh - mac.DataOverheadFraction)
		}
		return out
	}
	oh := ovm.COPASeqOverhead(strategy.DefaultCoherence)
	for j := 0; j < 2; j++ {
		if s.Tx[j] == nil {
			continue
		}
		g := power.GoodputFor(p.Truth.H[j][j], s.Tx[j], nil, nil, noise)
		out[j] = g * 0.5 * (1 - oh - mac.DataOverheadFraction)
	}
	return out
}

// CSMAThroughputs scores the pair's plain-CSMA baseline on the true
// channels: each AP beamforms to its own client with equal power, the
// two take turns (half airtime each), and the overhead is CSMA's
// CTS-to-self cost. This is both the comparison baseline for the loss
// sweep and the realized throughput of a Fallback session. An AP with no
// fresh CSI contributes zero.
func (p *Pair) CSMAThroughputs() [2]float64 {
	noise := channel.NoisePerSubcarrierMW()
	var out [2]float64
	for j := 0; j < 2; j++ {
		tx, err := p.AP[j].CSMATransmission(p.clk)
		if err != nil {
			continue
		}
		g := power.GoodputFor(p.Truth.H[j][j], tx, nil, nil, noise)
		out[j] = g * 0.5 * (1 - mac.CSMACTSOverhead() - mac.DataOverheadFraction)
	}
	return out
}
