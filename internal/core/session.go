package core

import (
	"fmt"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/obs"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Session is the result of one complete ITS exchange between two APs
// (Fig. 5): the elected leader, the negotiated strategy, and the
// transmissions both sides agreed on.
type Session struct {
	// LeaderIdx is the AP (0 or 1, in caller coordinates) that won
	// contention and led the exchange.
	LeaderIdx int
	// Outcome is the leader's chosen strategy with predicted
	// throughputs. Its client indices are in leader-first order.
	Outcome strategy.Outcome
	// Tx[i] is AP i's transmission descriptor (caller coordinates).
	// Tx[follower] is nil for sequential decisions: the follower defers
	// for the rest of the coherence time.
	Tx [2]*precoding.Transmission
	// Concurrent mirrors Outcome.Concurrent.
	Concurrent bool
	// ControlBytes is the total size of the three ITS frames exchanged,
	// for overhead accounting.
	ControlBytes int
}

// Pair wires two APs and their clients' true channels together for
// simulation: it lets the APs "overhear" client transmissions to populate
// their caches, then runs exchanges.
type Pair struct {
	AP    [2]*AP
	Truth *channel.Deployment
	clk   time.Duration
	src   *rng.Source
	imp   channel.Impairments
}

// NewPair builds two COPA APs on a deployment. Addresses are synthesized
// from the pair's seed; both APs use the given selection mode.
func NewPair(dep *channel.Deployment, imp channel.Impairments, coherence time.Duration, mode strategy.Mode, src *rng.Source) *Pair {
	mk := func(b byte) mac.Addr { return mac.Addr{0x02, 0xC0, 0xFA, 0, 0, b} }
	p := &Pair{Truth: dep, src: src, imp: imp}
	for i := 0; i < 2; i++ {
		p.AP[i] = NewAP(mk(byte(i)), mk(byte(0x10+i)), dep.Scenario, imp, coherence, mode)
	}
	return p
}

// Clock returns the pair's virtual time.
func (p *Pair) Clock() time.Duration { return p.clk }

// Advance moves virtual time forward and evolves the physical channels at
// the given coherence time (Inf for a static environment).
func (p *Pair) Advance(dt time.Duration, coherence float64) {
	p.clk += dt
	if dt <= 0 {
		return
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			p.Truth.H[i][j].Evolve(p.src.Split(uint64(p.clk)^uint64(i*2+j)), dt.Seconds(), coherence)
		}
	}
}

// MeasureCSI models Step 1 of Fig. 5: both clients transmit (ACKs,
// uplink traffic), and both APs overhear and cache reciprocal channel
// estimates toward both clients.
func (p *Pair) MeasureCSI() {
	for i := 0; i < 2; i++ { // AP index
		for j := 0; j < 2; j++ { // client index
			// The client→AP channel is the transpose of AP→client truth;
			// the AP measures it with estimation noise and stores the
			// reciprocal (AP→client) link.
			uplink := p.Truth.H[i][j].Transpose()
			measured := p.imp.EstimateCSI(p.src.Split(uint64(0xC5)+uint64(i*2+j)+uint64(p.clk)), uplink)
			p.AP[i].ObserveTransmission(p.AP[j].ClientAddr, measured, p.clk)
		}
	}
}

// RunExchange performs one full ITS exchange: contention elects a leader
// (uniformly at random, as DCF does), then INIT → REQ → ACK flow through
// their real wire formats. The returned session's Tx are in caller
// coordinates (index 0 = p.AP[0]).
func (p *Pair) RunExchange(airtimeUS uint32) (*Session, error) {
	span := obs.Trace("its.exchange")
	timing := mExchangeSeconds.Begin()
	mSessions.Inc()
	leader := p.src.Intn(2)
	follower := 1 - leader
	lead, fol := p.AP[leader], p.AP[follower]

	initFrame := lead.BuildITSInit(airtimeUS)
	reqFrame, err := fol.BuildITSReq(initFrame, p.clk)
	if err != nil {
		mSessionFailures.Inc()
		span.EndErr(err)
		return nil, fmt.Errorf("follower REQ: %w", err)
	}
	dec, err := lead.HandleITSReq(reqFrame, p.clk)
	if err != nil {
		mSessionFailures.Inc()
		span.EndErr(err)
		return nil, fmt.Errorf("leader decision: %w", err)
	}
	ack, folTx, err := fol.HandleITSAck(dec.Ack, p.clk)
	if err != nil {
		mSessionFailures.Inc()
		span.EndErr(err)
		return nil, fmt.Errorf("follower ACK: %w", err)
	}

	s := &Session{
		LeaderIdx:    leader,
		Outcome:      dec.Outcome,
		Concurrent:   ack.Decision == mac.DecideConcurrent,
		ControlBytes: len(initFrame) + len(reqFrame) + len(dec.Ack),
	}
	s.Tx[leader] = dec.LeaderTx
	// For sequential verdicts folTx is the follower's solo COPA-SEQ
	// transmission for its own (deferred) turn.
	s.Tx[follower] = folTx
	if s.Concurrent {
		mSessionsConcurrent.Inc()
	}
	mControlBytes.ObserveInt(s.ControlBytes)
	timing.End()
	span.End()
	return s, nil
}

// MeasuredThroughputs scores a session's transmissions on the pair's true
// channels, returning per-client effective throughput in caller
// coordinates (airtime share and MAC overhead included). For sequential
// sessions each transmitting AP is scored alone at half airtime; a nil
// follower transmission contributes zero (it defers this TXOP).
func (p *Pair) MeasuredThroughputs(s *Session) [2]float64 {
	noise := channel.NoisePerSubcarrierMW()
	ovm := mac.DefaultOverheadModel()
	var out [2]float64
	if s.Concurrent {
		oh := ovm.COPAConcOverhead(strategy.DefaultCoherence)
		for j := 0; j < 2; j++ {
			g := power.GoodputFor(p.Truth.H[j][j], s.Tx[j], p.Truth.H[1-j][j], s.Tx[1-j], noise)
			out[j] = g * (1 - oh - mac.DataOverheadFraction)
		}
		return out
	}
	oh := ovm.COPASeqOverhead(strategy.DefaultCoherence)
	for j := 0; j < 2; j++ {
		if s.Tx[j] == nil {
			continue
		}
		g := power.GoodputFor(p.Truth.H[j][j], s.Tx[j], nil, nil, noise)
		out[j] = g * 0.5 * (1 - oh - mac.DataOverheadFraction)
	}
	return out
}
