package core

import (
	"context"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/medium"
	"copa/internal/obs"
	"copa/internal/strategy"
)

// TestExchangeTraceStitching is the over-the-air half of the tracing
// acceptance criteria: a lead/follow exchange across real UDP sockets
// (the copad topology) must record spans on BOTH ends sharing one
// TraceID — the leader's identity rides inside the INIT frame and the
// follower's its.follow span is parented to the leader's its.exchange.
func TestExchangeTraceStitching(t *testing.T) {
	p := newTestPair(t, 23, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	lead, fol := p.AP[0], p.AP[1]

	medL, err := medium.NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer medL.Close()
	medF, err := medium.NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer medF.Close()
	if err := medL.AddPeer(fol.Addr, medF.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := medF.AddPeer(lead.Addr, medL.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// Generous floor: loopback is lossless, so the timeout only has to
	// outlast the leader's strategy evaluation (slow under -race).
	pol := DefaultRetryPolicy()
	pol.TimeoutFloor = 2 * time.Second

	done := make(chan error, 1)
	go func() {
		_, _, _, err := fol.FollowExchange(context.Background(), medF, 5*time.Second, p.Clock(), pol)
		done <- err
	}()
	if _, _, err := lead.LeadExchange(context.Background(), medL, fol.Addr, 4000, p.Clock(), pol); err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("follower: %v", err)
	}

	// Find the leader's exchange root among recent spans, then require
	// the follower's span to be in the SAME trace, parented to it.
	var root obs.SpanRecord
	for _, s := range obs.Tracing().Recent(0) {
		if s.Name == "its.exchange" && s.Trace != "" && s.Parent == "" {
			root = s
			break
		}
	}
	if root.Trace == "" {
		t.Fatal("leader recorded no traced its.exchange root")
	}
	spans := obs.Tracing().TraceSpans(root.Trace)
	byName := map[string]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	follow, ok := byName["its.follow"]
	if !ok {
		t.Fatalf("follower span missing from trace %s; got %d spans", root.Trace, len(spans))
	}
	if follow.Parent != root.ID {
		t.Errorf("its.follow parented to %q, want the leader's its.exchange %q", follow.Parent, root.ID)
	}
	for _, leg := range []string{"its.leg.req", "its.leg.ack"} {
		s, ok := byName[leg]
		if !ok {
			t.Errorf("trace missing leader leg span %s", leg)
			continue
		}
		if s.Parent != root.ID {
			t.Errorf("%s parented to %q, want %q", leg, s.Parent, root.ID)
		}
	}
}

// TestRunExchangeContextStitching checks the in-process variant: a
// simulated Pair exchange under a caller's trace hangs its legs off the
// caller's span through RunExchangeContext.
func TestRunExchangeContextStitching(t *testing.T) {
	p := newTestPair(t, 24, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()

	ctx, root := obs.StartSpan(context.Background(), "caller")
	if _, err := p.RunExchangeContext(ctx, 4000); err != nil {
		t.Fatal(err)
	}
	rootSC := root.Context()
	root.End()

	spans := obs.Tracing().TraceSpans(rootSC.TraceID.String())
	byName := map[string]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	ex, ok := byName["its.exchange"]
	if !ok {
		t.Fatalf("its.exchange missing from trace; got %d spans", len(spans))
	}
	if ex.Parent != rootSC.SpanID.String() {
		t.Errorf("its.exchange parented to %q, want caller %q", ex.Parent, rootSC.SpanID)
	}
	for _, leg := range []string{"its.leg.req", "its.leg.ack"} {
		if s, ok := byName[leg]; !ok || s.Parent != ex.ID {
			t.Errorf("leg %s missing or misparented (%+v)", leg, s)
		}
	}
}
