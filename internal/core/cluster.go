package core

import (
	"context"
	"fmt"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/medium"
	"copa/internal/obs"
	"copa/internal/power"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// Cluster simulates more than two COPA APs sharing the medium — the §3.1
// setting where fairness between coordinated pairs and outsiders becomes
// interesting. Each round, DCF randomness elects a leader; the leader
// pairs with the neighbour it hears best (ITS frames need a usable AP–AP
// link), runs the real three-frame exchange, and the pair transmits while
// every other AP defers on the ITS airtime field. A sequential verdict
// grants the pair two consecutive TXOPs, which is what squeezes
// outsiders; the Deference flag applies the paper's proposed remedy (the
// pair sits out the following election).
type Cluster struct {
	APs   []*AP
	Truth *channel.MultiDeployment
	// Deference enables the §3.1 post-sequential sit-out.
	Deference bool
	// Med carries the cluster's ITS frames (Perfect by default).
	Med medium.Medium
	// Retry bounds the exchange engine's persistence against loss.
	Retry RetryPolicy

	clk    time.Duration
	src    *rng.Source
	imp    channel.Impairments
	sitOut []bool
}

// NewCluster builds n COPA APs over a multi-pair deployment.
func NewCluster(dep *channel.MultiDeployment, imp channel.Impairments, coherence time.Duration, mode strategy.Mode, src *rng.Source) *Cluster {
	c := &Cluster{
		Truth:  dep,
		src:    src,
		imp:    imp,
		sitOut: make([]bool, dep.Pairs),
		Med:    medium.NewPerfect(),
		Retry:  DefaultRetryPolicy(),
	}
	for i := 0; i < dep.Pairs; i++ {
		ap := NewAP(
			mac.Addr{0x02, 0xC0, 0xFA, 0x01, 0, byte(i)},
			mac.Addr{0x02, 0xC0, 0xFA, 0x02, 0, byte(i)},
			dep.Scenario, imp, coherence, mode,
		)
		c.APs = append(c.APs, ap)
	}
	return c
}

// MeasureCSI lets every AP overhear every client (Step 1 of Fig. 5,
// cluster-wide).
func (c *Cluster) MeasureCSI() {
	for i := range c.APs {
		for j := range c.APs {
			uplink := c.Truth.H[i][j].Transpose()
			measured := c.imp.EstimateCSI(c.src.Split(uint64(0xA0)+uint64(i*c.Truth.Pairs+j)+uint64(c.clk)), uplink)
			c.APs[i].ObserveTransmission(c.APs[j].ClientAddr, measured, c.clk)
		}
	}
}

// RoundResult reports one contention round of the cluster.
type RoundResult struct {
	Leader, Follower int
	Concurrent       bool
	// Fallback reports the ITS exchange exhausted its retry budget and
	// the round degraded to a plain-CSMA solo transmission.
	Fallback bool
	// TputBps[i] is client i's throughput during this round's TXOP(s);
	// zero for deferring pairs.
	TputBps []float64
	// TXOPs consumed by the round (1 concurrent, 2 sequential).
	TXOPs int
}

// bestFollower picks the AP (other than the leader, and not sitting out)
// with the strongest AP–AP link to the leader: ITS frames must be heard
// to be answered.
func (c *Cluster) bestFollower(leader int) int {
	best, bestGain := -1, -1e18
	for j := range c.APs {
		if j == leader || c.sitOut[j] {
			continue
		}
		if g := c.Truth.APGainDB[leader][j]; g > bestGain {
			best, bestGain = j, g
		}
	}
	return best
}

// RunRound performs one full contention round: election, pairwise ITS
// exchange, transmission, throughput measurement on the true channels.
func (c *Cluster) RunRound() (*RoundResult, error) {
	mClusterRounds.Inc()
	n := c.Truth.Pairs
	// Election among APs not sitting out.
	candidates := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !c.sitOut[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		// Everyone deferred (all pairs sat out): clear and re-elect.
		for i := range c.sitOut {
			c.sitOut[i] = false
		}
		candidates = candidates[:0]
		for i := 0; i < n; i++ {
			candidates = append(candidates, i)
		}
	}
	leader := candidates[c.src.Intn(len(candidates))]
	follower := c.bestFollower(leader)

	res := &RoundResult{Leader: leader, Follower: follower, TputBps: make([]float64, n), TXOPs: 1}
	for i := range c.sitOut {
		c.sitOut[i] = false
	}
	noise := channel.NoisePerSubcarrierMW()
	ovm := mac.DefaultOverheadModel()

	if follower < 0 {
		// Nobody to coordinate with: the leader transmits solo.
		tx, err := c.APs[leader].SoloTransmission(c.clk)
		if err != nil {
			return nil, fmt.Errorf("solo tx: %w", err)
		}
		g := power.GoodputFor(c.Truth.H[leader][leader], tx, nil, nil, noise)
		res.TputBps[leader] = g * (1 - mac.CSMACTSOverhead() - mac.DataOverheadFraction)
		return res, nil
	}

	lead, fol := c.APs[leader], c.APs[follower]
	span := obs.Trace("its.exchange")
	timing := mExchangeSeconds.Begin()
	mSessions.Inc()
	if c.Med == nil {
		c.Med = medium.NewPerfect()
	}
	ex, err := runExchangeOverMedium(context.Background(), c.Med, lead, fol, uint32(mac.TxOp.Microseconds()), c.clk, c.Retry)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	if ex.Fallback {
		// Negotiation failed on the air: the round degrades to plain
		// CSMA — the contention winner transmits alone to its client.
		span.EndErr(errExhausted)
		timing.End()
		res.Fallback = true
		tx, err := lead.CSMATransmission(c.clk)
		if err != nil {
			return res, nil // no CSI either: the TXOP is wasted
		}
		g := power.GoodputFor(c.Truth.H[leader][leader], tx, nil, nil, noise)
		res.TputBps[leader] = g * (1 - mac.CSMACTSOverhead() - mac.DataOverheadFraction)
		return res, nil
	}
	dec, ack, folTx := ex.dec, ex.ack, ex.folTx
	mControlBytes.ObserveInt(ex.ControlBytes)
	if ack.Decision == mac.DecideConcurrent {
		mSessionsConcurrent.Inc()
	}
	timing.End()
	span.End()

	if ack.Decision == mac.DecideConcurrent {
		res.Concurrent = true
		oh := ovm.COPAConcOverhead(strategy.DefaultCoherence)
		gl := power.GoodputFor(c.Truth.H[leader][leader], dec.LeaderTx, c.Truth.H[follower][leader], folTx, noise)
		gf := power.GoodputFor(c.Truth.H[follower][follower], folTx, c.Truth.H[leader][follower], dec.LeaderTx, noise)
		res.TputBps[leader] = gl * (1 - oh - mac.DataOverheadFraction)
		res.TputBps[follower] = gf * (1 - oh - mac.DataOverheadFraction)
		return res, nil
	}

	// Sequential: the pair takes two consecutive TXOPs (§3.1), then —
	// with the deference fix — sits out the next election.
	res.TXOPs = 2
	oh := ovm.COPASeqOverhead(strategy.DefaultCoherence)
	gl := power.GoodputFor(c.Truth.H[leader][leader], dec.LeaderTx, nil, nil, noise)
	res.TputBps[leader] = gl * (1 - oh - mac.DataOverheadFraction)
	if folTx != nil {
		gf := power.GoodputFor(c.Truth.H[follower][follower], folTx, nil, nil, noise)
		res.TputBps[follower] = gf * (1 - oh - mac.DataOverheadFraction)
	}
	if c.Deference {
		c.sitOut[leader] = true
		c.sitOut[follower] = true
		mClusterSitOuts.Add(2)
	}
	return res, nil
}

// ClusterStats aggregates many rounds.
type ClusterStats struct {
	// MeanTputBps[i] is client i's long-run average throughput
	// (normalized per TXOP).
	MeanTputBps []float64
	// AirtimeShare[i] is the fraction of TXOPs in which pair i
	// transmitted.
	AirtimeShare []float64
	// JainIndex over airtime shares.
	JainIndex float64
	// ConcurrentFraction of rounds.
	ConcurrentFraction float64
	Rounds             int
}

// RunRounds executes the given number of contention rounds, re-measuring
// CSI before each (the cluster's channels are static within a run).
func (c *Cluster) RunRounds(rounds int) (ClusterStats, error) {
	n := c.Truth.Pairs
	stats := ClusterStats{
		MeanTputBps:  make([]float64, n),
		AirtimeShare: make([]float64, n),
	}
	totalTXOPs := 0
	for r := 0; r < rounds; r++ {
		c.MeasureCSI()
		res, err := c.RunRound()
		if err != nil {
			return stats, err
		}
		stats.Rounds++
		totalTXOPs += res.TXOPs
		if res.Concurrent {
			stats.ConcurrentFraction++
		}
		// Each participating pair transmits for exactly one of the
		// round's TXOPs (sequential: its own turn; concurrent: the shared
		// slot), so its data and airtime contribution is one slot's
		// worth. Shares can sum past 1 when spatial reuse shares a slot.
		for i := 0; i < n; i++ {
			stats.MeanTputBps[i] += res.TputBps[i]
			if res.TputBps[i] > 0 {
				stats.AirtimeShare[i]++
			}
		}
		c.clk += time.Duration(res.TXOPs) * mac.TxOp
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		stats.MeanTputBps[i] /= float64(totalTXOPs)
		stats.AirtimeShare[i] /= float64(totalTXOPs)
		sum += stats.AirtimeShare[i]
		sumSq += stats.AirtimeShare[i] * stats.AirtimeShare[i]
	}
	if sumSq > 0 {
		stats.JainIndex = sum * sum / (float64(n) * sumSq)
	}
	if stats.Rounds > 0 {
		stats.ConcurrentFraction /= float64(stats.Rounds)
	}
	return stats, nil
}
