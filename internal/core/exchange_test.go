package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/medium"
	"copa/internal/power"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// TestExchangePerfectMediumDeterministic pins the zero-loss contract: over
// a Perfect medium the message-driven exchange consumes no extra
// randomness and no retries, so identically seeded pairs negotiate
// byte-identical sessions — the property that keeps Figs. 10–13 stable.
func TestExchangePerfectMediumDeterministic(t *testing.T) {
	run := func() *Session {
		p := newTestPair(t, 77, channel.Scenario4x2, strategy.ModeMax)
		p.MeasureCSI()
		s, err := p.RunExchange(4000)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.LeaderIdx != b.LeaderIdx || a.ControlBytes != b.ControlBytes || a.Concurrent != b.Concurrent {
		t.Fatalf("nondeterministic sessions: %+v vs %+v", a, b)
	}
	if a.Retries != 0 || a.Fallback || a.Cause != CauseNone {
		t.Errorf("perfect medium should be clean: retries=%d fallback=%v cause=%v", a.Retries, a.Fallback, a.Cause)
	}
	if a.ExchangeAirtime <= 0 {
		t.Error("exchange airtime not accounted")
	}
	if a.Outcome.Predicted[0] != b.Outcome.Predicted[0] {
		t.Error("predicted throughputs diverge between identically seeded runs")
	}
}

// TestExchangeTotalLossFallsBackToCSMA is the graceful-degradation
// contract: at 100% control-frame loss the exchange must not error — it
// exhausts its retry budget, reports a timeout-caused fallback, and
// MeasuredThroughputs scores the pair as plain CSMA (still positive:
// both APs have fresh CSI for their own clients).
func TestExchangeTotalLossFallsBackToCSMA(t *testing.T) {
	p := newTestPair(t, 11, channel.Scenario4x2, strategy.ModeMax)
	p.Med = medium.NewFaulty(medium.NewPerfect(), medium.Config{Loss: 1}, rng.New(99))
	p.MeasureCSI()
	s, err := p.RunExchange(4000)
	if err != nil {
		t.Fatalf("total loss must degrade, not error: %v", err)
	}
	if !s.Fallback {
		t.Fatal("expected fallback session")
	}
	if s.Cause != CauseTimeout {
		t.Errorf("cause = %v, want timeout", s.Cause)
	}
	if s.Retries != p.Retry.tries()-1 {
		t.Errorf("retries = %d, want %d (budget-1)", s.Retries, p.Retry.tries()-1)
	}
	if s.Tx[0] != nil || s.Tx[1] != nil {
		t.Error("fallback session must not carry negotiated transmissions")
	}
	if s.ControlBytes == 0 {
		t.Error("retransmitted INITs still cost control bytes")
	}
	tps := p.MeasuredThroughputs(s)
	if tps[0] <= 0 || tps[1] <= 0 {
		t.Errorf("CSMA fallback throughput = %v, want both positive", tps)
	}
	// And CSMA really is turn-taking: each client's fallback rate is below
	// what it would get alone on the full airtime.
	csma := p.CSMAThroughputs()
	if tps != csma {
		t.Errorf("fallback scoring %v != CSMA baseline %v", tps, csma)
	}
}

// TestExchangeRetriesRecoverModerateLoss: with a meaningful loss rate and
// the default four-try budget, most exchanges should still complete — and
// at least some of them must have needed a retransmission.
func TestExchangeRetriesRecoverModerateLoss(t *testing.T) {
	succeeded, retried, fellBack := 0, 0, 0
	for seed := int64(0); seed < 20; seed++ {
		p := newTestPair(t, 300+seed, channel.Scenario4x2, strategy.ModeMax)
		p.Med = medium.NewFaulty(medium.NewPerfect(), medium.Config{Loss: 0.3}, rng.New(500+seed))
		p.MeasureCSI()
		s, err := p.RunExchange(4000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Fallback {
			fellBack++
			continue
		}
		succeeded++
		if s.Retries > 0 {
			retried++
		}
	}
	if succeeded < 10 {
		t.Errorf("only %d/20 exchanges survived 30%% loss", succeeded)
	}
	if retried == 0 {
		t.Error("30% loss with no retransmissions is implausible")
	}
	t.Logf("succeeded=%d retried=%d fellBack=%d", succeeded, retried, fellBack)
}

// TestExchangeCorruptionCountsAsCRC: a medium that corrupts every frame
// (but drops none) must exhaust the budget with CRC-classified failures.
func TestExchangeCorruptionCountsAsCRC(t *testing.T) {
	p := newTestPair(t, 13, channel.Scenario4x2, strategy.ModeMax)
	p.Med = medium.NewFaulty(medium.NewPerfect(), medium.Config{Corrupt: 1}, rng.New(7))
	p.MeasureCSI()
	s, err := p.RunExchange(4000)
	if err != nil {
		t.Fatalf("corruption must degrade, not error: %v", err)
	}
	if !s.Fallback {
		t.Fatal("expected fallback under total corruption")
	}
	// Bit flips can garble the magic (→ unrecognizable → timeout) or
	// survive to the CRC check; either transport cause is correct, but a
	// protocol cause would mean a corrupted frame parsed cleanly.
	if s.Cause != CauseCRC && s.Cause != CauseTimeout {
		t.Errorf("cause = %v, want a transport cause", s.Cause)
	}
}

// TestRetryPolicyBackoffBounds pins the bounded-exponential shape.
func TestRetryPolicyBackoffBounds(t *testing.T) {
	pol := RetryPolicy{MaxTries: 8, Backoff: 100 * time.Microsecond, BackoffCap: 500 * time.Microsecond}
	want := []time.Duration{100, 200, 400, 500, 500}
	for i, w := range want {
		if got := pol.backoff(i + 1); got != w*time.Microsecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Microsecond)
		}
	}
	if (RetryPolicy{}).tries() != 1 {
		t.Error("zero-valued policy must allow one try")
	}
}

// TestLiveUDPExchange runs the two blocking role drivers over real
// sockets on loopback — the copad path. The follower runs in a
// goroutine; both sides must converge on the same verdict.
func TestLiveUDPExchange(t *testing.T) {
	p := newTestPair(t, 21, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	lead, fol := p.AP[0], p.AP[1]

	medL, err := medium.NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer medL.Close()
	medF, err := medium.NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer medF.Close()
	if err := medL.AddPeer(fol.Addr, medF.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := medF.AddPeer(lead.Addr, medL.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	pol := DefaultRetryPolicy()
	pol.TimeoutFloor = 250 * time.Millisecond

	type folResult struct {
		ack *mac.ITSAck
		err error
	}
	done := make(chan folResult, 1)
	go func() {
		ack, _, _, err := fol.FollowExchange(context.Background(), medF, 5*time.Second, p.Clock(), pol)
		done <- folResult{ack, err}
	}()

	dec, stats, err := lead.LeadExchange(context.Background(), medL, fol.Addr, 4000, p.Clock(), pol)
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	if dec == nil || dec.LeaderTx == nil {
		t.Fatal("leader decided nothing")
	}
	if stats.ControlBytes == 0 {
		t.Error("no control bytes accounted on the wire")
	}

	fr := <-done
	if fr.err != nil {
		t.Fatalf("follower: %v", fr.err)
	}
	wantDec := mac.DecideSequential
	if dec.Outcome.Concurrent {
		wantDec = mac.DecideConcurrent
	}
	if fr.ack.Decision != wantDec {
		t.Errorf("verdict mismatch: leader %v, follower heard %v", wantDec, fr.ack.Decision)
	}
}

// TestFollowExchangeNoLeaderFallsBack: a follower that never hears an
// INIT must give up after its wait window with ErrFallback — the copad
// 100%-loss exit path.
func TestFollowExchangeNoLeaderFallsBack(t *testing.T) {
	p := newTestPair(t, 22, channel.Scenario4x2, strategy.ModeMax)
	med, err := medium.NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer med.Close()
	pol := DefaultRetryPolicy()
	pol.TimeoutFloor = 20 * time.Millisecond
	_, _, stats, err := p.AP[1].FollowExchange(context.Background(), med, 60*time.Millisecond, 0, pol)
	if !errors.Is(err, ErrFallback) {
		t.Fatalf("err = %v, want ErrFallback", err)
	}
	if !stats.Fallback || stats.Cause != CauseTimeout {
		t.Errorf("stats = %+v, want timeout fallback", stats)
	}
}

// TestMeasuredThroughputsSequentialHalfAirtime pins the sequential
// scoring path: each transmitting AP is charged exactly half the
// airtime, i.e. out[j] is half of the same transmission's interference-
// free goodput after MAC overhead.
func TestMeasuredThroughputsSequentialHalfAirtime(t *testing.T) {
	p := newTestPair(t, 31, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	tx0, err := p.AP[0].SoloTransmission(p.Clock())
	if err != nil {
		t.Fatal(err)
	}
	tx1, err := p.AP[1].SoloTransmission(p.Clock())
	if err != nil {
		t.Fatal(err)
	}
	session := &Session{LeaderIdx: 0}
	session.Tx[0], session.Tx[1] = tx0, tx1

	noise := channel.NoisePerSubcarrierMW()
	oh := mac.DefaultOverheadModel().COPASeqOverhead(strategy.DefaultCoherence)
	got := p.MeasuredThroughputs(session)
	for j := 0; j < 2; j++ {
		g := power.GoodputFor(p.Truth.H[j][j], session.Tx[j], nil, nil, noise)
		want := g * 0.5 * (1 - oh - mac.DataOverheadFraction)
		if math.Abs(got[j]-want) > 1e-9*want {
			t.Errorf("client %d: got %.3e, want half-airtime %.3e", j, got[j], want)
		}
	}
}

// TestMeasuredThroughputsNilFollowerContributesZero: a sequential session
// whose follower had no fresh CSI at ACK time (Tx[follower] == nil) must
// score zero for that client and leave the leader's share untouched.
func TestMeasuredThroughputsNilFollowerContributesZero(t *testing.T) {
	p := newTestPair(t, 32, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	tx0, err := p.AP[0].SoloTransmission(p.Clock())
	if err != nil {
		t.Fatal(err)
	}
	session := &Session{LeaderIdx: 0}
	session.Tx[0] = tx0 // follower stays nil

	got := p.MeasuredThroughputs(session)
	if got[1] != 0 {
		t.Errorf("nil follower Tx scored %.3e, want 0", got[1])
	}
	if got[0] <= 0 {
		t.Error("leader with a transmission must score positive")
	}

	both := &Session{LeaderIdx: 0}
	tx1, err := p.AP[1].SoloTransmission(p.Clock())
	if err != nil {
		t.Fatal(err)
	}
	both.Tx[0], both.Tx[1] = tx0, tx1
	if g2 := p.MeasuredThroughputs(both); g2[0] != got[0] {
		t.Errorf("leader share changed with follower present: %.3e vs %.3e", g2[0], got[0])
	}
}

// TestRunScheduleUnderTotalLoss: a schedule over a dead control channel
// must not error — every refresh falls back and the pair still moves
// CSMA traffic.
func TestRunScheduleUnderTotalLoss(t *testing.T) {
	p := newTestPair(t, 41, channel.Scenario4x2, strategy.ModeMax)
	p.Med = medium.NewFaulty(medium.NewPerfect(), medium.Config{Loss: 1}, rng.New(3))
	res, err := p.RunSchedule(ScheduleConfig{
		Duration:        100 * time.Millisecond,
		Coherence:       30 * time.Millisecond,
		RefreshInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate() <= 0 {
		t.Error("CSMA fallback schedule moved no traffic")
	}
	if res.ConcurrentFraction != 0 {
		t.Error("no exchange can complete at 100% loss")
	}
}

// TestClusterRoundFallback: the multi-AP round path degrades the same
// way — a dead medium yields a Fallback round where only the leader
// transmits (plain CSMA), not an error.
func TestClusterRoundFallback(t *testing.T) {
	src := rng.New(51)
	dep, err := channel.NewMultiDeployment(src.Split(1), channel.Scenario4x2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(dep, channel.DefaultImpairments(), 30*time.Millisecond, strategy.ModeMax, src.Split(2))
	c.Med = medium.NewFaulty(medium.NewPerfect(), medium.Config{Loss: 1}, rng.New(8))
	c.MeasureCSI()
	res, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("expected a fallback round")
	}
	if res.TputBps[res.Leader] <= 0 {
		t.Error("fallback leader should still transmit CSMA")
	}
	if res.Follower >= 0 && res.TputBps[res.Follower] != 0 {
		t.Error("fallback follower must stay silent")
	}
}
