// Package core implements the COPA access point itself (§3): the CSI
// cache populated by overhearing nearby transmissions, the leader/follower
// ITS exchange carried in real marshaled control frames (with compressed
// CSI and precoder payloads), the strategy computation the leader runs,
// and the resulting coordinated transmission descriptors. Two APs wired to
// an in-memory medium run the full Fig. 5 timeline.
package core

import (
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
)

// csiEntry is one cached channel observation.
type csiEntry struct {
	link *channel.Link
	at   time.Duration
}

// CSICache stores channel estimates keyed by the address they were
// overheard from (§3.1: "caches the resulting CSI in a table indexed by
// sender address"). Entries older than the coherence time are stale and
// are not returned.
type CSICache struct {
	coherence time.Duration
	entries   map[mac.Addr]csiEntry
}

// NewCSICache returns a cache that considers entries fresh for the given
// coherence time.
func NewCSICache(coherence time.Duration) *CSICache {
	return &CSICache{coherence: coherence, entries: make(map[mac.Addr]csiEntry)}
}

// Put records a fresh estimate observed at virtual time now.
func (c *CSICache) Put(addr mac.Addr, link *channel.Link, now time.Duration) {
	c.entries[addr] = csiEntry{link: link, at: now}
}

// Get returns the cached estimate for addr if it is still within the
// coherence time at now.
func (c *CSICache) Get(addr mac.Addr, now time.Duration) (*channel.Link, bool) {
	e, ok := c.entries[addr]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	if now-e.at > c.coherence {
		mCacheMisses.Inc()
		return nil, false
	}
	mCacheHits.Inc()
	return e.link, true
}

// Age returns how old the entry for addr is at now, and whether it exists
// at all.
func (c *CSICache) Age(addr mac.Addr, now time.Duration) (time.Duration, bool) {
	e, ok := c.entries[addr]
	if !ok {
		return 0, false
	}
	return now - e.at, true
}

// Evict removes stale entries; returns how many were dropped.
func (c *CSICache) Evict(now time.Duration) int {
	n := 0
	for addr, e := range c.entries {
		if now-e.at > c.coherence {
			delete(c.entries, addr)
			n++
		}
	}
	mCacheEvictions.Add(uint64(n))
	return n
}

// Len returns the number of cached entries (fresh or stale).
func (c *CSICache) Len() int { return len(c.entries) }
