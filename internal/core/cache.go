// Package core implements the COPA access point itself (§3): the CSI
// cache populated by overhearing nearby transmissions, the leader/follower
// ITS exchange carried in real marshaled control frames (with compressed
// CSI and precoder payloads), the strategy computation the leader runs,
// and the resulting coordinated transmission descriptors. Two APs wired to
// an in-memory medium run the full Fig. 5 timeline.
package core

import (
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
)

// csiEntry is one cached channel observation.
type csiEntry struct {
	link *channel.Link
	at   time.Duration
}

// DefaultCacheEntries bounds a CSICache: an AP in a dense deployment
// overhears far more stations than it will ever coordinate with, and a
// per-sender table that only ever grows is a slow leak. 256 comfortably
// covers a floor's worth of neighbours.
const DefaultCacheEntries = 256

// CSICache stores channel estimates keyed by the address they were
// overheard from (§3.1: "caches the resulting CSI in a table indexed by
// sender address"). Entries older than the coherence time are stale and
// are not returned. The table is bounded: Put sweeps stale entries and,
// if the cache is still over its limit, drops the oldest observations.
type CSICache struct {
	coherence time.Duration
	max       int
	entries   map[mac.Addr]csiEntry
}

// NewCSICache returns a cache that considers entries fresh for the given
// coherence time, bounded to DefaultCacheEntries.
func NewCSICache(coherence time.Duration) *CSICache {
	return &CSICache{
		coherence: coherence,
		max:       DefaultCacheEntries,
		entries:   make(map[mac.Addr]csiEntry),
	}
}

// SetMaxEntries changes the bound; n <= 0 restores the default. The new
// bound takes effect on the next Put.
func (c *CSICache) SetMaxEntries(n int) {
	if n <= 0 {
		n = DefaultCacheEntries
	}
	c.max = n
}

// Put records a fresh estimate observed at virtual time now, sweeping
// the table back under its bound first.
func (c *CSICache) Put(addr mac.Addr, link *channel.Link, now time.Duration) {
	if len(c.entries) >= c.max {
		if _, exists := c.entries[addr]; !exists {
			c.Sweep(now)
		}
	}
	c.entries[addr] = csiEntry{link: link, at: now}
}

// Sweep drops every stale entry and then, if the table still holds max
// or more entries, the oldest fresh ones until one slot is free. It
// returns how many entries were removed. Put calls it automatically;
// long-running hosts can also call it on a timer to cap memory between
// bursts of traffic.
func (c *CSICache) Sweep(now time.Duration) int {
	n := c.Evict(now)
	for len(c.entries) >= c.max {
		var oldest mac.Addr
		oldestAt := time.Duration(-1)
		for addr, e := range c.entries {
			if oldestAt < 0 || e.at < oldestAt {
				oldest, oldestAt = addr, e.at
			}
		}
		delete(c.entries, oldest)
		mCacheEvictions.Inc()
		n++
	}
	return n
}

// Get returns the cached estimate for addr if it is still within the
// coherence time at now.
func (c *CSICache) Get(addr mac.Addr, now time.Duration) (*channel.Link, bool) {
	e, ok := c.entries[addr]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	if now-e.at > c.coherence {
		mCacheMisses.Inc()
		return nil, false
	}
	mCacheHits.Inc()
	return e.link, true
}

// Age returns how old the entry for addr is at now, and whether it exists
// at all.
func (c *CSICache) Age(addr mac.Addr, now time.Duration) (time.Duration, bool) {
	e, ok := c.entries[addr]
	if !ok {
		return 0, false
	}
	return now - e.at, true
}

// Evict removes stale entries; returns how many were dropped.
func (c *CSICache) Evict(now time.Duration) int {
	n := 0
	for addr, e := range c.entries {
		if now-e.at > c.coherence {
			delete(c.entries, addr)
			n++
		}
	}
	mCacheEvictions.Add(uint64(n))
	return n
}

// Len returns the number of cached entries (fresh or stale).
func (c *CSICache) Len() int { return len(c.entries) }
