package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/mac"
	"copa/internal/rng"
	"copa/internal/strategy"
)

func newTestPair(t *testing.T, seed int64, sc channel.Scenario, mode strategy.Mode) *Pair {
	t.Helper()
	src := rng.New(seed)
	dep := channel.NewDeployment(src.Split(1), sc)
	return NewPair(dep, channel.DefaultImpairments(), 30*time.Millisecond, mode, src.Split(2))
}

func TestCSICacheFreshness(t *testing.T) {
	c := NewCSICache(30 * time.Millisecond)
	addr := mac.Addr{1}
	l := channel.NewLink(rng.New(1), 2, 4, 1)
	c.Put(addr, l, 0)
	if _, ok := c.Get(addr, 10*time.Millisecond); !ok {
		t.Error("fresh entry not returned")
	}
	if _, ok := c.Get(addr, 31*time.Millisecond); ok {
		t.Error("stale entry returned")
	}
	if _, ok := c.Get(mac.Addr{9}, 0); ok {
		t.Error("unknown address returned")
	}
	if age, ok := c.Age(addr, 20*time.Millisecond); !ok || age != 20*time.Millisecond {
		t.Errorf("age = %v, %v", age, ok)
	}
	if n := c.Evict(100 * time.Millisecond); n != 1 || c.Len() != 0 {
		t.Errorf("evict = %d, len = %d", n, c.Len())
	}
}

func TestCSICacheBoundedUnderChurn(t *testing.T) {
	c := NewCSICache(30 * time.Millisecond)
	c.SetMaxEntries(16)
	l := channel.NewLink(rng.New(1), 2, 4, 1)

	// Churn: a new sender address every 1ms for far more puts than the
	// bound. The table must never exceed its limit.
	for i := 0; i < 400; i++ {
		addr := mac.Addr{byte(i >> 8), byte(i)}
		now := time.Duration(i) * time.Millisecond
		c.Put(addr, l, now)
		if c.Len() > 16 {
			t.Fatalf("after put %d: len = %d exceeds bound 16", i, c.Len())
		}
	}

	// Fresh churn (all entries inside coherence): the oldest fresh entry
	// must be sacrificed, and the newest retained.
	c2 := NewCSICache(time.Hour)
	c2.SetMaxEntries(4)
	for i := 0; i < 10; i++ {
		c2.Put(mac.Addr{byte(i)}, l, time.Duration(i)*time.Millisecond)
	}
	if c2.Len() > 4 {
		t.Fatalf("fresh churn: len = %d exceeds bound 4", c2.Len())
	}
	if _, ok := c2.Get(mac.Addr{9}, 10*time.Millisecond); !ok {
		t.Error("newest entry was evicted")
	}
	if _, ok := c2.Get(mac.Addr{0}, 10*time.Millisecond); ok {
		t.Error("oldest entry survived past the bound")
	}

	// Refreshing an existing address at the bound must not evict others.
	c3 := NewCSICache(time.Hour)
	c3.SetMaxEntries(2)
	c3.Put(mac.Addr{1}, l, 0)
	c3.Put(mac.Addr{2}, l, time.Millisecond)
	c3.Put(mac.Addr{2}, l, 2*time.Millisecond)
	if _, ok := c3.Get(mac.Addr{1}, 3*time.Millisecond); !ok {
		t.Error("refresh of an existing address evicted a neighbour")
	}
}

func TestExchangeRequiresCSI(t *testing.T) {
	p := newTestPair(t, 1, channel.Scenario4x2, strategy.ModeMax)
	// No MeasureCSI yet: the follower cannot answer.
	_, err := p.RunExchange(4000)
	if err == nil {
		t.Fatal("exchange should fail without CSI")
	}
	if !strings.Contains(err.Error(), "no fresh CSI") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFullExchange4x2(t *testing.T) {
	p := newTestPair(t, 2, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	s, err := p.RunExchange(4000)
	if err != nil {
		t.Fatal(err)
	}
	if s.LeaderIdx != 0 && s.LeaderIdx != 1 {
		t.Fatalf("leader = %d", s.LeaderIdx)
	}
	if s.Tx[s.LeaderIdx] == nil {
		t.Fatal("leader has no transmission")
	}
	if s.ControlBytes <= 0 {
		t.Error("no control bytes accounted")
	}
	if s.Concurrent {
		if s.Tx[1-s.LeaderIdx] == nil {
			t.Fatal("concurrent verdict but follower has no transmission")
		}
		// The follower's reconstructed transmission respects the budget
		// (within codec quantization).
		total := s.Tx[1-s.LeaderIdx].TotalPowerMW()
		if total > channel.BudgetForAntennasMW(4)*1.05 {
			t.Errorf("follower budget %.2f mW", total)
		}
	}
	tps := p.MeasuredThroughputs(s)
	if tps[0]+tps[1] <= 0 {
		t.Error("zero measured throughput")
	}
}

func TestExchangeCoherenceExpiry(t *testing.T) {
	p := newTestPair(t, 3, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	p.Advance(31*time.Millisecond, math.Inf(1))
	if _, err := p.RunExchange(4000); err == nil {
		t.Fatal("exchange should fail once CSI is stale")
	}
	// Refreshing CSI fixes it.
	p.MeasureCSI()
	if _, err := p.RunExchange(4000); err != nil {
		t.Fatalf("exchange after refresh: %v", err)
	}
}

func TestExchange1x1(t *testing.T) {
	p := newTestPair(t, 4, channel.Scenario1x1, strategy.ModeFair)
	p.MeasureCSI()
	s, err := p.RunExchange(4000)
	if err != nil {
		t.Fatal(err)
	}
	// 1x1 can still decide concurrency (Conc-BF) or sequential; either
	// way, the strategy must be one of the 1x1-feasible kinds.
	switch s.Outcome.Kind {
	case strategy.KindCOPASeq, strategy.KindConcBF:
	default:
		t.Errorf("1x1 chose %v", s.Outcome.Kind)
	}
}

func TestExchange3x2SDA(t *testing.T) {
	p := newTestPair(t, 5, channel.Scenario3x2, strategy.ModeMax)
	p.MeasureCSI()
	s, err := p.RunExchange(4000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Concurrent && s.Outcome.Kind == strategy.KindConcNull && !s.Outcome.SDA {
		t.Error("3x2 concurrent nulling must use SDA")
	}
}

func TestFairModeNeverHurtsEitherClientPrediction(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := newTestPair(t, 20+seed, channel.Scenario4x2, strategy.ModeFair)
		p.MeasureCSI()
		s, err := p.RunExchange(4000)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Concurrent {
			continue
		}
		// The chosen concurrent outcome was admissible under fairness,
		// which the leader verified on predictions; simply require the
		// decision metadata to be coherent.
		if s.Outcome.Kind != strategy.KindConcBF && s.Outcome.Kind != strategy.KindConcNull {
			t.Errorf("seed %d: concurrent session with kind %v", seed, s.Outcome.Kind)
		}
	}
}

func TestFollowerPendingTxLifecycle(t *testing.T) {
	foundConc := false
	for seed := int64(0); seed < 8 && !foundConc; seed++ {
		p := newTestPair(t, 40+seed, channel.Scenario4x2, strategy.ModeMax)
		p.MeasureCSI()
		s, err := p.RunExchange(4000)
		if err != nil {
			t.Fatal(err)
		}
		fol := p.AP[1-s.LeaderIdx]
		if s.Concurrent {
			foundConc = true
			if fol.PendingTx() == nil {
				t.Error("follower should hold the negotiated transmission")
			}
		} else if fol.PendingTx() != nil {
			t.Error("sequential verdict should clear pending state")
		}
	}
	if !foundConc {
		t.Skip("no concurrent verdict in 8 seeds (acceptable but unusual)")
	}
}

func TestHandleITSReqWrongLeader(t *testing.T) {
	p := newTestPair(t, 6, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	req := &mac.ITSReq{Leader: mac.Addr{0xff}}
	if _, err := p.AP[0].HandleITSReq(req.Marshal(), p.Clock()); err == nil {
		t.Error("REQ for another leader should be rejected")
	}
}

func TestHandleITSAckWrongFollower(t *testing.T) {
	p := newTestPair(t, 7, channel.Scenario4x2, strategy.ModeMax)
	ack := &mac.ITSAck{Follower: mac.Addr{0xff}, Decision: mac.DecideSequential}
	if _, _, err := p.AP[0].HandleITSAck(ack.Marshal(), 0); err == nil {
		t.Error("ACK for another follower should be rejected")
	}
}

func TestGarbledFramesSurfaceErrors(t *testing.T) {
	p := newTestPair(t, 8, channel.Scenario4x2, strategy.ModeMax)
	p.MeasureCSI()
	if _, err := p.AP[1].BuildITSReq([]byte{1, 2, 3}, 0); !errors.Is(err, mac.ErrBadFrame) {
		t.Errorf("garbled INIT: %v", err)
	}
	if _, err := p.AP[0].HandleITSReq([]byte{}, 0); !errors.Is(err, mac.ErrBadFrame) {
		t.Errorf("garbled REQ: %v", err)
	}
	if _, _, err := p.AP[0].HandleITSAck([]byte{0}, 0); !errors.Is(err, mac.ErrBadFrame) {
		t.Errorf("garbled ACK: %v", err)
	}
}

func TestChannelEvolutionChangesDecisionInputs(t *testing.T) {
	p := newTestPair(t, 9, channel.Scenario4x2, strategy.ModeMax)
	before := p.Truth.H[0][0].Subcarriers[0].Clone()
	p.Advance(50*time.Millisecond, 0.030)
	after := p.Truth.H[0][0].Subcarriers[0]
	if before.Equal(after, 1e-12) {
		t.Error("channel did not evolve")
	}
}
