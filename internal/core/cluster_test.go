package core

import (
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/rng"
	"copa/internal/strategy"
)

func newTestCluster(t *testing.T, seed int64, pairs int, deference bool) *Cluster {
	t.Helper()
	src := rng.New(seed)
	dep, err := channel.NewMultiDeployment(src.Split(1), channel.Scenario4x2, pairs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(dep, channel.DefaultImpairments(), 30*time.Millisecond, strategy.ModeFair, src.Split(2))
	c.Deference = deference
	return c
}

func TestMultiDeploymentShape(t *testing.T) {
	src := rng.New(1)
	dep, err := channel.NewMultiDeployment(src, channel.Scenario4x2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Pairs != 3 || len(dep.H) != 3 || len(dep.H[0]) != 3 {
		t.Fatal("wrong shape")
	}
	for i := 0; i < 3; i++ {
		if dep.SignalDBm[i] < -70 || dep.SignalDBm[i] > -30 {
			t.Errorf("pair %d signal %.1f dBm out of range", i, dep.SignalDBm[i])
		}
		for j := 0; j < 3; j++ {
			if dep.H[i][j].NRx() != 2 || dep.H[i][j].NTx() != 4 {
				t.Fatal("link shape wrong")
			}
		}
	}
	// Sub-deployment view shares the links.
	sub := dep.Sub(0, 2)
	if sub.H[0][0] != dep.H[0][0] || sub.H[1][0] != dep.H[2][0] {
		t.Error("Sub does not share links")
	}
	if _, err := channel.NewMultiDeployment(rng.New(2), channel.Scenario4x2, 1); err == nil {
		t.Error("single-pair multi-deployment should be rejected")
	}
}

func TestClusterRound(t *testing.T) {
	c := newTestCluster(t, 3, 3, false)
	c.MeasureCSI()
	res, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader < 0 || res.Leader > 2 || res.Follower == res.Leader {
		t.Errorf("leader %d follower %d", res.Leader, res.Follower)
	}
	if res.TXOPs != 1 && res.TXOPs != 2 {
		t.Errorf("TXOPs %d", res.TXOPs)
	}
	var total float64
	for _, tp := range res.TputBps {
		total += tp
	}
	if total <= 0 {
		t.Error("round produced no throughput")
	}
}

func TestClusterRoundsAccounting(t *testing.T) {
	c := newTestCluster(t, 5, 3, false)
	stats, err := c.RunRounds(12)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 12 {
		t.Errorf("rounds %d", stats.Rounds)
	}
	var share float64
	for i, s := range stats.AirtimeShare {
		if s < 0 || s > 1 {
			t.Errorf("share[%d] = %g", i, s)
		}
		share += s
	}
	// Concurrent rounds give airtime to two pairs at once, so the sum of
	// shares lies in [1, 2].
	if share < 0.99 || share > 2.01 {
		t.Errorf("share sum %g", share)
	}
	if stats.JainIndex <= 0 || stats.JainIndex > 1.0001 {
		t.Errorf("Jain %g", stats.JainIndex)
	}
	if stats.ConcurrentFraction < 0 || stats.ConcurrentFraction > 1 {
		t.Errorf("concurrent fraction %g", stats.ConcurrentFraction)
	}
}

func TestClusterDeterministic(t *testing.T) {
	a, err := newTestCluster(t, 7, 3, false).RunRounds(6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newTestCluster(t, 7, 3, false).RunRounds(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.MeanTputBps {
		if a.MeanTputBps[i] != b.MeanTputBps[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestClusterDeferenceHelpsOutsiders(t *testing.T) {
	// With pairwise sequential verdicts, the §3.1 deference should raise
	// the minimum airtime share (or at least not lower it) across seeds.
	var minBase, minDefer float64
	runs := 0
	for seed := int64(0); seed < 2; seed++ {
		base, err := newTestCluster(t, 20+seed, 3, false).RunRounds(12)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := newTestCluster(t, 20+seed, 3, true).RunRounds(12)
		if err != nil {
			t.Fatal(err)
		}
		minBase += minOf(base.AirtimeShare)
		minDefer += minOf(fixed.AirtimeShare)
		runs++
	}
	if minDefer < minBase*0.9 {
		t.Errorf("deference materially hurt outsiders: %.3f vs %.3f", minDefer, minBase)
	}
	t.Logf("mean min-share: base %.3f, deference %.3f", minBase/float64(runs), minDefer/float64(runs))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
