package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"copa/internal/mac"
	"copa/internal/medium"
	"copa/internal/obs"
	"copa/internal/precoding"
)

// This file holds the per-station role drivers for blocking media (real
// UDP sockets): unlike runExchangeOverMedium, which single-threads both
// APs over a simulated medium, LeadExchange and FollowExchange each
// drive one side of the protocol and genuinely wait on the wire.
// cmd/copad runs one of them per process.

// ErrFallback is returned by the role drivers when the retry budget is
// exhausted and the station reverts to plain CSMA for the remainder of
// the coherence time.
var ErrFallback = errors.New("core: exchange fell back to CSMA")

// LeadExchange runs the leader role of one live ITS exchange: send INIT,
// await the follower's REQ, decide, send the ACK. Lost or garbled legs
// are retried with bounded exponential backoff; after sending the final
// ACK the leader lingers one ACK-timeout listening for a duplicate REQ
// (the follower's implicit "I missed the verdict") and retransmits the
// ACK if one arrives.
//
// On budget exhaustion it returns stats with Fallback set and an error
// wrapping ErrFallback. Protocol failures (no CSI, infeasible strategy)
// abort immediately, as in the simulated engine.
//
// The leader is where a live exchange's trace begins: obs.StartSpan
// roots one (or continues ctx's), and its identity rides inside the
// INIT frame as a compact binary field, so the follower process's
// spans share the leader's TraceID — one stitched over-the-air trace.
func (ap *AP) LeadExchange(ctx context.Context, med medium.Medium, folAddr mac.Addr, airtimeUS uint32, now time.Duration, pol RetryPolicy) (*LeadDecision, ExchangeStats, error) {
	var stats ExchangeStats
	tmo := mac.DefaultOverheadModel().ITSTimeouts().Clamp(pol.TimeoutFloor)
	mSessions.Inc()
	ctx, span := obs.StartSpan(ctx, "its.exchange")
	initFrame := ap.BuildITSInitTrace(ctx, airtimeUS)

	fail := func(cause FailCause, err error) (*LeadDecision, ExchangeStats, error) {
		stats.Cause = cause
		stats.Fallback = errors.Is(err, ErrFallback)
		mSessionFailures.Inc()
		failCounter(cause).Inc()
		if stats.Fallback {
			mFallbacks.Inc()
		}
		span.EndErr(err)
		return nil, stats, err
	}

	// Leg 1: INIT → REQ → decision.
	leg := obs.ChildSpan(ctx, "its.leg.req")
	var dec *LeadDecision
	cause := CauseTimeout
	for try := 0; dec == nil; try++ {
		if try == pol.tries() {
			leg.EndErr(errExhausted)
			return fail(cause, fmt.Errorf("%w: no usable REQ after %d tries (%v)", ErrFallback, try, cause))
		}
		if try > 0 {
			stats.Retries++
			mRetries.Inc()
			time.Sleep(pol.backoff(try))
		}
		if err := med.Send(ap.Addr, folAddr, initFrame); err != nil {
			return fail(CauseTimeout, fmt.Errorf("send INIT: %w", err))
		}
		stats.ControlBytes += len(initFrame)
		reqFrame, err := recvITS(med, ap.Addr, tmo.REQ, mac.TypeITSReq)
		if err != nil {
			if errors.Is(err, medium.ErrTimeout) {
				cause = CauseTimeout
				mLegTimeouts.Inc()
				continue
			}
			return fail(CauseTimeout, fmt.Errorf("await REQ: %w", err))
		}
		d, err := ap.HandleITSReq(reqFrame, now)
		if err != nil {
			if errors.Is(err, mac.ErrBadFrame) {
				cause = CauseCRC
				mLegCRCDrops.Inc()
				continue
			}
			return fail(CauseLeaderDecision, fmt.Errorf("leader decision: %w", err))
		}
		dec = d
	}
	leg.SetAttr("retries", strconv.Itoa(stats.Retries))
	leg.End()

	// Leg 2: ACK, with a linger window for duplicate REQs.
	leg = obs.ChildSpan(ctx, "its.leg.ack")
	for try := 0; try < pol.tries(); try++ {
		if err := med.Send(ap.Addr, folAddr, dec.Ack); err != nil {
			leg.EndErr(err)
			return fail(CauseTimeout, fmt.Errorf("send ACK: %w", err))
		}
		stats.ControlBytes += len(dec.Ack)
		if _, err := recvITS(med, ap.Addr, tmo.ACK, mac.TypeITSReq); err != nil {
			// Silence: the follower accepted the verdict (or gave up; it
			// will report its own fallback). Done either way.
			leg.End()
			span.End()
			return dec, stats, nil
		}
		// A duplicate REQ: the follower missed the ACK — resend it.
		stats.Retries++
		mRetries.Inc()
	}
	leg.End()
	span.End()
	return dec, stats, nil
}

// FollowExchange runs the follower role: wait up to `wait` for a
// leader's INIT, answer with a REQ, and await the ACK verdict, re-answering
// duplicate INITs (the leader's implicit "I missed your REQ") and
// retransmitting the REQ on ACK timeouts. Returns the parsed verdict and
// — as HandleITSAck does — the follower's transmission descriptor.
//
// When the INIT carries the leader's trace context, the follower's
// its.follow span joins the leader's trace: both processes' spans share
// one TraceID, parented across the air.
func (ap *AP) FollowExchange(ctx context.Context, med medium.Medium, wait time.Duration, now time.Duration, pol RetryPolicy) (*mac.ITSAck, *precoding.Transmission, ExchangeStats, error) {
	var stats ExchangeStats
	tmo := mac.DefaultOverheadModel().ITSTimeouts().Clamp(pol.TimeoutFloor)
	// The span opens flat and is upgraded to a hierarchical child once a
	// leader's INIT reveals the trace this exchange belongs to.
	span := obs.Trace("its.follow")
	var hier *obs.ActiveSpan

	fail := func(cause FailCause, err error) (*mac.ITSAck, *precoding.Transmission, ExchangeStats, error) {
		stats.Cause = cause
		stats.Fallback = errors.Is(err, ErrFallback)
		if stats.Fallback {
			mFallbacks.Inc()
		}
		if hier != nil {
			hier.EndErr(err)
		} else {
			span.EndErr(err)
		}
		return nil, nil, stats, err
	}

	// Wait for the opening INIT.
	var reqFrame []byte
	deadline := time.Now().Add(wait)
	for reqFrame == nil {
		remain := time.Until(deadline)
		if remain <= 0 {
			return fail(CauseTimeout, fmt.Errorf("%w: no INIT heard within %v", ErrFallback, wait))
		}
		data, err := recvITS(med, ap.Addr, remain, mac.TypeITSInit)
		if err != nil {
			if errors.Is(err, medium.ErrTimeout) {
				continue
			}
			return fail(CauseTimeout, fmt.Errorf("await INIT: %w", err))
		}
		r, err := ap.BuildITSReq(data, now)
		if err != nil {
			if errors.Is(err, mac.ErrBadFrame) {
				mLegCRCDrops.Inc()
				continue // garbled INIT: stay silent, the leader retries
			}
			return fail(CauseReqBuild, fmt.Errorf("follower REQ: %w", err))
		}
		reqFrame = r
		// Adopt the leader's trace, if the INIT carried one.
		if init, err := mac.UnmarshalITSInit(data); err == nil && len(init.TraceCtx) > 0 {
			rctx := obs.ContextWithRemoteBinary(ctx, init.TraceCtx)
			if h := obs.ChildSpan(rctx, "its.follow"); h != nil {
				hier = h
			}
		}
	}

	// Send the REQ and await the verdict; duplicate INITs mean the
	// leader missed the REQ.
	cause := CauseTimeout
	for try := 0; try < pol.tries(); try++ {
		if try > 0 {
			stats.Retries++
			mRetries.Inc()
		}
		if err := med.Send(ap.Addr, reqLeader(reqFrame), reqFrame); err != nil {
			return fail(CauseTimeout, fmt.Errorf("send REQ: %w", err))
		}
		stats.ControlBytes += len(reqFrame)
		data, err := med.Recv(ap.Addr, tmo.ACK)
		if err != nil {
			if errors.Is(err, medium.ErrTimeout) {
				cause = CauseTimeout
				mLegTimeouts.Inc()
				continue
			}
			return fail(CauseTimeout, fmt.Errorf("await ACK: %w", err))
		}
		if t, ok := mac.FrameTypeOf(data); !ok || t != mac.TypeITSAck {
			// A duplicate INIT (or garbage): fall through to resend REQ.
			cause = CauseTimeout
			continue
		}
		ack, tx, err := ap.HandleITSAck(data, now)
		if err != nil {
			if errors.Is(err, mac.ErrBadFrame) {
				cause = CauseCRC
				mLegCRCDrops.Inc()
				continue
			}
			return fail(CauseAckHandle, fmt.Errorf("follower ACK: %w", err))
		}
		if hier != nil {
			hier.SetAttr("retries", strconv.Itoa(stats.Retries))
			hier.End()
		} else {
			span.End()
		}
		return ack, tx, stats, nil
	}
	return fail(cause, fmt.Errorf("%w: no verdict after %d tries (%v)", ErrFallback, pol.tries(), cause))
}

// reqLeader extracts the leader (destination) address from a marshaled
// REQ without a full re-parse.
func reqLeader(reqFrame []byte) mac.Addr {
	var a mac.Addr
	if req, err := mac.UnmarshalITSReq(reqFrame); err == nil {
		a = req.Leader
	}
	return a
}
