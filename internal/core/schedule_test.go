package core

import (
	"math"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/strategy"
)

func TestScheduleStaticEnvironment(t *testing.T) {
	p := newTestPair(t, 101, channel.Scenario4x2, strategy.ModeFair)
	res, err := p.RunSchedule(ScheduleConfig{
		Duration:        200 * time.Millisecond,
		Coherence:       0, // static
		RefreshInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exchanges != 4 {
		t.Errorf("exchanges = %d, want 4", res.Exchanges)
	}
	if res.TXOPs != 50 {
		t.Errorf("TXOPs = %d, want 50", res.TXOPs)
	}
	if res.Aggregate() <= 0 {
		t.Error("no throughput in a static environment")
	}
	if res.ControlBytes <= 0 {
		t.Error("no control traffic accounted")
	}
}

func TestScheduleStaleCSICostsThroughput(t *testing.T) {
	// Same fast-fading environment; refreshing once per coherence time
	// must beat refreshing every 8 coherence times.
	mk := func(seed int64) *Pair {
		return newTestPair(t, seed, channel.Scenario4x2, strategy.ModeMax)
	}
	run := func(p *Pair, refresh time.Duration) float64 {
		res, err := p.RunSchedule(ScheduleConfig{
			Duration:        800 * time.Millisecond,
			Coherence:       50 * time.Millisecond,
			RefreshInterval: refresh,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Aggregate()
	}
	var fresh, stale float64
	for seed := int64(0); seed < 3; seed++ {
		fresh += run(mk(300+seed), 50*time.Millisecond)
		stale += run(mk(300+seed), 800*time.Millisecond)
	}
	if fresh <= stale {
		t.Errorf("stale CSI should cost throughput: fresh %.1f vs stale %.1f Mb/s",
			fresh/3e6, stale/3e6)
	}
}

func TestScheduleRejectsBadConfig(t *testing.T) {
	p := newTestPair(t, 103, channel.Scenario1x1, strategy.ModeMax)
	if _, err := p.RunSchedule(ScheduleConfig{Duration: 0}); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestScheduleConcurrentFractionBounded(t *testing.T) {
	p := newTestPair(t, 104, channel.Scenario4x2, strategy.ModeMax)
	res, err := p.RunSchedule(ScheduleConfig{
		Duration:        120 * time.Millisecond,
		Coherence:       0,
		RefreshInterval: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConcurrentFraction < 0 || res.ConcurrentFraction > 1 {
		t.Errorf("concurrent fraction %g", res.ConcurrentFraction)
	}
	if math.IsNaN(res.Aggregate()) {
		t.Error("NaN aggregate")
	}
}
