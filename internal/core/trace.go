package core

import (
	"context"

	"copa/internal/obs"
)

// exSpan lets the exchange engine record spans in whichever tier the
// caller is in: under a sampled trace (a copad exchange rooted by the
// CLI, or a request context handed down a pipeline) legs become
// hierarchical child spans stitched by TraceID; without one they stay
// the flat ring-buffer spans the simulators have always recorded — no
// trace-ID allocation on the million-exchange campaign paths.
type exSpan struct {
	flat obs.Span
	hier *obs.ActiveSpan
}

// startExSpan opens a span named name: hierarchical under ctx's sampled
// trace, flat otherwise. The returned context carries the span identity
// for nested legs.
func startExSpan(ctx context.Context, name string) (context.Context, exSpan) {
	if sp := obs.ChildSpan(ctx, name); sp != nil {
		return obs.ContextWithSpan(ctx, sp.Context()), exSpan{hier: sp}
	}
	return ctx, exSpan{flat: obs.Trace(name)}
}

// End finishes the span successfully.
func (s exSpan) End() {
	if s.hier != nil {
		s.hier.End()
		return
	}
	s.flat.End()
}

// EndErr finishes the span, recording err's text if non-nil.
func (s exSpan) EndErr(err error) {
	if s.hier != nil {
		s.hier.EndErr(err)
		return
	}
	s.flat.EndErr(err)
}

// SetAttr annotates hierarchical spans; flat spans carry no attributes.
func (s exSpan) SetAttr(key, value string) {
	s.hier.SetAttr(key, value)
}
