package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"copa/internal/channel"
	"copa/internal/csi"
	"copa/internal/mac"
	"copa/internal/obs"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/strategy"
)

// AP is one COPA access point: an address, a client, a scenario-shaped
// radio, and a CSI cache fed by overheard transmissions.
type AP struct {
	Addr       mac.Addr
	ClientAddr mac.Addr
	Scenario   channel.Scenario
	Imp        channel.Impairments
	Cache      *CSICache
	// Mode is the selection policy this AP applies when leading.
	Mode strategy.Mode

	// pendingTx is the transmission agreed in the latest exchange this
	// AP followed (nil after a sequential verdict).
	pendingTx *precoding.Transmission
}

// PendingTx returns the transmission negotiated in the last exchange this
// AP followed, or nil if the verdict was sequential.
func (ap *AP) PendingTx() *precoding.Transmission { return ap.pendingTx }

// NewAP constructs an AP with an empty CSI cache.
func NewAP(addr, client mac.Addr, sc channel.Scenario, imp channel.Impairments, coherence time.Duration, mode strategy.Mode) *AP {
	return &AP{
		Addr:       addr,
		ClientAddr: client,
		Scenario:   sc,
		Imp:        imp,
		Cache:      NewCSICache(coherence),
		Mode:       mode,
	}
}

// ObserveTransmission models the AP overhearing a frame from addr and
// measuring the channel from it (Step 1 of Fig. 5). By reciprocity the
// AP→addr channel is the transpose of what it measured, which is what the
// cache stores: the downlink channel this AP (or the frame's sender)
// would see. The link passed in is the sender→AP measurement.
func (ap *AP) ObserveTransmission(from mac.Addr, measured *channel.Link, now time.Duration) {
	ap.Cache.Put(from, measured.Transpose(), now)
}

// errNoCSI is returned when the cache lacks fresh CSI for a peer.
var errNoCSI = errors.New("core: no fresh CSI")

// BuildITSInit announces intent to send to this AP's client for airtime
// µs of data (Step 2).
func (ap *AP) BuildITSInit(airtimeUS uint32) []byte {
	f := &mac.ITSInit{Leader: ap.Addr, Client: ap.ClientAddr, AirtimeUS: airtimeUS}
	return f.Marshal()
}

// BuildITSInitTrace is BuildITSInit carrying ctx's trace context in the
// frame's optional TraceCtx field, so the receiving process can stitch
// its spans into the sender's trace. With no sampled span in ctx the
// frame is byte-identical to BuildITSInit's.
func (ap *AP) BuildITSInitTrace(ctx context.Context, airtimeUS uint32) []byte {
	f := &mac.ITSInit{
		Leader:    ap.Addr,
		Client:    ap.ClientAddr,
		AirtimeUS: airtimeUS,
		TraceCtx:  obs.TraceContextBinary(ctx),
	}
	return f.Marshal()
}

// BuildITSReq is the follower's response to an overheard ITS INIT: it
// looks up fresh CSI from itself to both clients, compresses it, and
// offers to join the transmission opportunity (Step 3).
func (ap *AP) BuildITSReq(initFrame []byte, now time.Duration) ([]byte, error) {
	init, err := mac.UnmarshalITSInit(initFrame)
	if err != nil {
		return nil, err
	}
	toLeaderClient, ok := ap.Cache.Get(init.Client, now)
	if !ok {
		return nil, fmt.Errorf("%w for leader's client %v", errNoCSI, init.Client)
	}
	toOwnClient, ok := ap.Cache.Get(ap.ClientAddr, now)
	if !ok {
		return nil, fmt.Errorf("%w for own client %v", errNoCSI, ap.ClientAddr)
	}
	csi1, err := csi.EncodeLink(toLeaderClient)
	if err != nil {
		return nil, err
	}
	csi2, err := csi.EncodeLink(toOwnClient)
	if err != nil {
		return nil, err
	}
	req := &mac.ITSReq{
		Leader:       init.Leader,
		Follower:     ap.Addr,
		Client1:      init.Client,
		Client2:      ap.ClientAddr,
		AirtimeUS:    init.AirtimeUS,
		CSIToClient1: csi1,
		CSIToClient2: csi2,
	}
	return req.Marshal(), nil
}

// LeadDecision is what the leader concludes from an ITS REQ.
type LeadDecision struct {
	// Outcome is the chosen strategy (predicted throughputs only; the
	// leader has no ground truth).
	Outcome strategy.Outcome
	// LeaderTx and FollowerTx are the transmission descriptors; for a
	// sequential decision FollowerTx is nil and the follower defers.
	LeaderTx   *precoding.Transmission
	FollowerTx *precoding.Transmission
	// Ack is the marshaled ITS ACK to broadcast (Step 4).
	Ack []byte
}

// HandleITSReq runs the leader's strategy computation (Fig. 8): decode the
// follower's CSI, join it with the leader's own cached CSI, evaluate all
// strategies, select per the AP's mode, and build the ITS ACK. The leader
// is AP index 0 in the evaluator's coordinates; the follower is AP 1.
func (ap *AP) HandleITSReq(reqFrame []byte, now time.Duration) (*LeadDecision, error) {
	req, err := mac.UnmarshalITSReq(reqFrame)
	if err != nil {
		return nil, err
	}
	if req.Leader != ap.Addr {
		return nil, fmt.Errorf("core: ITS REQ addressed to %v, not us", req.Leader)
	}
	ownToC1, ok := ap.Cache.Get(ap.ClientAddr, now)
	if !ok {
		return nil, fmt.Errorf("%w for own client", errNoCSI)
	}
	ownToC2, ok := ap.Cache.Get(req.Client2, now)
	if !ok {
		return nil, fmt.Errorf("%w for follower's client", errNoCSI)
	}
	folToC1, err := csi.DecodeLink(req.CSIToClient1)
	if err != nil {
		return nil, err
	}
	folToC2, err := csi.DecodeLink(req.CSIToClient2)
	if err != nil {
		return nil, err
	}

	est := [2][2]*channel.Link{{ownToC1, ownToC2}, {folToC1, folToC2}}
	ev := strategy.NewEvaluatorFromCSI(ap.Scenario, est, ap.Imp)
	outcomes, err := ev.EvaluateAll()
	if err != nil {
		return nil, err
	}
	choice := strategy.Select(ap.Mode, outcomes)

	dec := &LeadDecision{Outcome: choice}
	ack := &mac.ITSAck{
		Leader:    ap.Addr,
		Follower:  req.Follower,
		Client1:   req.Client1,
		Client2:   req.Client2,
		AirtimeUS: req.AirtimeUS,
	}
	leaderTx, followerTx, err := ev.TransmissionsFor(choice)
	if err != nil {
		return nil, err
	}
	dec.LeaderTx = leaderTx
	if choice.Concurrent {
		ack.Decision = mac.DecideConcurrent
		dec.FollowerTx = followerTx
		pre, err := csi.EncodePrecoder(followerTx.Precoder.PerSubcarrier)
		if err != nil {
			return nil, err
		}
		ack.FollowerPrecoder = pre
		ack.FollowerPowerMW = followerTx.PowerMW
	} else {
		ack.Decision = mac.DecideSequential
	}
	dec.Ack = ack.Marshal()
	return dec, nil
}

// HandleITSAck is the follower's final step: parse the leader's verdict
// and, for concurrent decisions, reconstruct the precoder and power
// allocation it must transmit with. For a sequential verdict the follower
// defers this TXOP, then transmits solo in its own turn: it computes its
// own COPA-SEQ beamforming and allocation from cached CSI, which is also
// returned so callers can score the sequential schedule.
func (ap *AP) HandleITSAck(ackFrame []byte, now time.Duration) (*mac.ITSAck, *precoding.Transmission, error) {
	ack, err := mac.UnmarshalITSAck(ackFrame)
	if err != nil {
		return nil, nil, err
	}
	if ack.Follower != ap.Addr {
		return nil, nil, fmt.Errorf("core: ITS ACK for %v, not us", ack.Follower)
	}
	if ack.Decision == mac.DecideSequential {
		ap.pendingTx = nil
		solo, err := ap.SoloTransmission(now)
		if err != nil {
			return ack, nil, nil // no fresh CSI: fall back to defaults later
		}
		return ack, solo, nil
	}
	ms, err := csi.DecodeMatrices(ack.FollowerPrecoder)
	if err != nil {
		return nil, nil, err
	}
	if len(ms) == 0 || len(ack.FollowerPowerMW) != len(ms) {
		return nil, nil, fmt.Errorf("%w: precoder/power shape", mac.ErrBadFrame)
	}
	p := &precoding.Precoder{PerSubcarrier: ms, Streams: ms[0].Cols}
	tx := precoding.NewTransmission(p, ack.FollowerPowerMW, ap.Imp)
	ap.pendingTx = tx
	return ack, tx, nil
}

// CSMATransmission is the stock-802.11n transmission this AP reverts to
// when an ITS exchange exhausts its retry budget: implicit SVD
// beamforming toward its own client with equal power on every subcarrier
// — the paper's CSMA baseline, requiring no coordination at all.
func (ap *AP) CSMATransmission(now time.Duration) (*precoding.Transmission, error) {
	own, ok := ap.Cache.Get(ap.ClientAddr, now)
	if !ok {
		return nil, fmt.Errorf("%w for own client", errNoCSI)
	}
	streams := ap.Scenario.Streams
	bf, err := precoding.Beamforming(own, streams)
	if err != nil {
		return nil, err
	}
	powers := precoding.EqualSplit(len(own.Subcarriers), streams, channel.BudgetForAntennasMW(ap.Scenario.APAntennas))
	return precoding.NewTransmission(bf, powers, ap.Imp), nil
}

// SoloTransmission computes this AP's stand-alone COPA-SEQ transmission
// toward its own client (beamforming plus Equi-SNR allocation with
// subcarrier selection) from cached CSI.
func (ap *AP) SoloTransmission(now time.Duration) (*precoding.Transmission, error) {
	own, ok := ap.Cache.Get(ap.ClientAddr, now)
	if !ok {
		return nil, fmt.Errorf("%w for own client", errNoCSI)
	}
	streams := ap.Scenario.Streams
	bf, err := precoding.Beamforming(own, streams)
	if err != nil {
		return nil, err
	}
	cfg := power.DefaultConfig()
	cfg.Impairments = ap.Imp
	res := power.Sequential(power.SenderCSI{
		Own:      own,
		Precoder: bf,
		BudgetMW: channel.BudgetForAntennasMW(ap.Scenario.APAntennas),
	}, cfg)
	return res.Tx[0], nil
}
